// The compact (hinted, locality-preserving) strategy implementing the
// paper's §V-B closing remark. It must balance like refine while keeping
// VPs next to their subdomain neighbors.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "lb/registry.hpp"
#include "lb/strategy.hpp"
#include "par/ampi.hpp"
#include "perfsim/engine.hpp"

namespace {

using picprk::lb::make_strategy;
using picprk::lb::PartLoad;
using picprk::lb::PlacementInput;

/// Builds a 1-D ring of VPs with given loads, blockwise on workers.
std::vector<PartLoad> ring(const std::vector<double>& loads, int workers) {
  const int n = static_cast<int>(loads.size());
  std::vector<PartLoad> out(loads.size());
  for (int v = 0; v < n; ++v) {
    auto& p = out[static_cast<std::size_t>(v)];
    p.part = v;
    p.load = loads[static_cast<std::size_t>(v)];
    p.owner = v * workers / n;
    p.neighbors = {(v + 1) % n, (v + n - 1) % n};
  }
  return out;
}

std::vector<int> remap(const std::string& spec, const std::vector<PartLoad>& parts,
                       int workers) {
  const auto strategy = make_strategy(spec);
  PlacementInput in;
  in.workers = workers;
  in.parts = parts;
  return strategy->rebalance_placement(in);
}

double max_worker_load(const std::vector<PartLoad>& loads,
                       const std::vector<int>& placement, int workers) {
  std::vector<double> w(static_cast<std::size_t>(workers), 0.0);
  for (std::size_t i = 0; i < loads.size(); ++i)
    w[static_cast<std::size_t>(placement[i])] += loads[i].load;
  return *std::max_element(w.begin(), w.end());
}

/// Fraction of neighbor pairs that live on the same worker.
double locality(const std::vector<PartLoad>& loads, const std::vector<int>& placement) {
  int same = 0, pairs = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    for (int nb : loads[i].neighbors) {
      ++pairs;
      same += placement[i] == placement[static_cast<std::size_t>(nb)];
    }
  }
  return static_cast<double>(same) / static_cast<double>(pairs);
}

TEST(CompactTest, BalancedInputUntouched) {
  auto loads = ring({5, 5, 5, 5, 5, 5, 5, 5}, 4);
  std::vector<int> orig;
  for (const auto& l : loads) orig.push_back(l.owner);
  EXPECT_EQ(remap("compact", loads, 4), orig);
}

TEST(CompactTest, ReducesOverload) {
  // Worker 0 (VPs 0..3) holds almost everything.
  auto loads = ring({10, 10, 10, 10, 1, 1, 1, 1, 1, 1, 1, 1}, 3);
  const auto placement = remap("compact:tolerance=1.10", loads, 3);
  std::vector<int> orig;
  for (const auto& l : loads) orig.push_back(l.owner);
  EXPECT_LT(max_worker_load(loads, placement, 3), max_worker_load(loads, orig, 3));
}

TEST(CompactTest, PreservesLocalityBetterThanGreedy) {
  auto loads = ring({9, 9, 9, 9, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, 4);
  const auto c = remap("compact:tolerance=1.10", loads, 4);
  const auto g = remap("greedy", loads, 4);
  // Both must produce a reasonable balance...
  EXPECT_LT(max_worker_load(loads, c, 4), 14.0);
  EXPECT_LT(max_worker_load(loads, g, 4), 14.0);
  // ...but compact keeps clearly more neighbor pairs co-located.
  EXPECT_GT(locality(loads, c), locality(loads, g));
}

TEST(CompactTest, ShedsBorderVpsFirst) {
  // Worker 0 holds a contiguous run 0..5; the shed VPs should come from
  // the run's edges, not its middle.
  std::vector<double> l(12, 1.0);
  for (int v = 0; v < 6; ++v) l[static_cast<std::size_t>(v)] = 4.0;
  auto loads = ring(l, 2);
  for (int v = 0; v < 6; ++v) loads[static_cast<std::size_t>(v)].owner = 0;
  for (int v = 6; v < 12; ++v) loads[static_cast<std::size_t>(v)].owner = 1;
  const auto placement = remap("compact:tolerance=1.05", loads, 2);
  // Interior heavy VPs 2 and 3 stay; any moved heavy VP is 0, 1, 4 or 5.
  EXPECT_EQ(placement[2], 0);
  EXPECT_EQ(placement[3], 0);
}

TEST(CompactTest, WorksWithoutHints) {
  // No neighbor information: degrades to refine-like behaviour.
  std::vector<PartLoad> loads(6);
  for (int v = 0; v < 6; ++v) {
    loads[static_cast<std::size_t>(v)] = PartLoad{v, v < 3 ? 10.0 : 1.0, v < 3 ? 0 : 1, {}};
  }
  const auto placement = remap("compact:tolerance=1.10", loads, 2);
  EXPECT_LT(max_worker_load(loads, placement, 2), 30.0);
}

TEST(CompactIntegration, AmpiDriverVerifiesWithCompact) {
  picprk::par::RunConfig cfg;
  cfg.init.grid = picprk::pic::GridSpec(24, 1.0);
  cfg.init.total_particles = 1500;
  cfg.init.distribution = picprk::pic::Geometric{0.8};
  cfg.steps = 40;
  cfg.workers = 2;
  cfg.overdecomposition = 8;
  cfg.lb.every = 6;
  cfg.lb.strategy = "compact";
  const auto r = picprk::par::run_ampi(cfg);
  EXPECT_TRUE(r.ok);
}

TEST(CompactModel, LessCrossNodeTrafficThanGreedyAtScale) {
  // The strong-scaling fragmentation experiment: at 384 cores (16 nodes)
  // the hinted balancer should pay significantly less per-step remote
  // communication than locality-blind greedy, at comparable balance.
  picprk::pic::InitParams params;
  params.grid = picprk::pic::GridSpec(2998, 1.0);
  params.total_particles = 600000;
  params.distribution = picprk::pic::Geometric{0.999};
  const picprk::perfsim::Engine engine(
      picprk::perfsim::MachineModel{},
      picprk::perfsim::ColumnWorkload::from_expected(params));
  picprk::perfsim::RunConfig run;
  run.steps = 600;
  picprk::perfsim::VprModelParams greedy;
  greedy.overdecomposition = 4;
  greedy.lb_interval = 100;
  picprk::perfsim::VprModelParams compact = greedy;
  compact.balancer = "compact";
  const auto g = engine.run_vpr(384, run, greedy);
  const auto c = engine.run_vpr(384, run, compact);
  // Border-only shedding moves far less state than greedy's wholesale
  // remap, and the preserved locality wins on total time.
  EXPECT_LT(c.migrated_mbytes, g.migrated_mbytes * 0.5);
  EXPECT_LT(c.seconds, g.seconds);
}

}  // namespace
