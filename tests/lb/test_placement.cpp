// Unit tests for the placement strategies of the lb registry (the
// Charm-style balancer collection of §IV-C, formerly vpr::LoadBalancer).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "lb/registry.hpp"
#include "lb/strategy.hpp"

namespace {

using picprk::lb::make_strategy;
using picprk::lb::PartLoad;
using picprk::lb::PlacementInput;
using picprk::lb::Strategy;

std::vector<PartLoad> make_loads(const std::vector<double>& loads,
                                 const std::vector<int>& workers) {
  std::vector<PartLoad> out(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    out[i] = PartLoad{static_cast<int>(i), loads[i], workers[i], {}};
  }
  return out;
}

std::vector<int> remap(const std::string& spec, const std::vector<PartLoad>& parts,
                       int workers) {
  const auto strategy = make_strategy(spec);
  PlacementInput in;
  in.workers = workers;
  in.parts = parts;
  return strategy->rebalance_placement(in);
}

std::vector<double> worker_loads(const std::vector<PartLoad>& loads,
                                 const std::vector<int>& placement, int workers) {
  std::vector<double> w(static_cast<std::size_t>(workers), 0.0);
  for (std::size_t i = 0; i < loads.size(); ++i)
    w[static_cast<std::size_t>(placement[i])] += loads[i].load;
  return w;
}

double max_over_mean(const std::vector<double>& w) {
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  const double mean = total / static_cast<double>(w.size());
  double mx = 0;
  for (double v : w) mx = std::max(mx, v);
  return mean > 0 ? mx / mean : 1.0;
}

TEST(NullStrategyTest, KeepsPlacement) {
  auto loads = make_loads({5, 1, 3, 2}, {0, 0, 1, 1});
  EXPECT_EQ(remap("null", loads, 2), (std::vector<int>{0, 0, 1, 1}));
}

TEST(GreedyStrategyTest, BalancesSkewedLoads) {
  // All heavy VPs start on worker 0 (the skewed-cloud situation).
  auto loads = make_loads({100, 90, 80, 1, 1, 1, 1, 1}, {0, 0, 0, 0, 1, 1, 1, 1});
  auto placement = remap("greedy", loads, 2);
  const auto before = max_over_mean(worker_loads(loads, {0, 0, 0, 0, 1, 1, 1, 1}, 2));
  const auto after = max_over_mean(worker_loads(loads, placement, 2));
  EXPECT_LT(after, before);
  // {100,90,80} cannot be split better than 170 vs 105 over two workers;
  // greedy reaches that optimum (ratio 170/137.5 ≈ 1.24).
  EXPECT_LT(after, 1.25);
}

TEST(GreedyStrategyTest, HeaviestGoesFirst) {
  auto loads = make_loads({10, 1, 1, 1}, {0, 0, 0, 0});
  auto placement = remap("greedy", loads, 2);
  // Heaviest VP alone on one worker, the three light ones on the other.
  const auto w = worker_loads(loads, placement, 2);
  EXPECT_DOUBLE_EQ(std::max(w[0], w[1]), 10.0);
  EXPECT_DOUBLE_EQ(std::min(w[0], w[1]), 3.0);
}

TEST(GreedyStrategyTest, IgnoresLocality) {
  // Greedy may move a VP even when the placement was already optimal —
  // the locality-agnostic behaviour the paper observes. We only check
  // that the resulting balance is never worse than the input's.
  auto loads = make_loads({4, 4, 4, 4}, {0, 0, 1, 1});
  auto placement = remap("greedy", loads, 2);
  EXPECT_LE(max_over_mean(worker_loads(loads, placement, 2)), 1.0 + 1e-12);
}

TEST(GreedyStrategyTest, SingleWorkerDegenerate) {
  auto loads = make_loads({3, 1}, {0, 0});
  EXPECT_EQ(remap("greedy", loads, 1), (std::vector<int>{0, 0}));
}

TEST(RefineStrategyTest, OnlyMovesWhatIsNeeded) {
  auto loads = make_loads({6, 1, 1, 4, 4}, {0, 0, 0, 1, 1});
  auto placement = remap("refine:tolerance=1.05", loads, 2);
  int moved = 0;
  const std::vector<int> orig{0, 0, 0, 1, 1};
  for (std::size_t i = 0; i < placement.size(); ++i) moved += placement[i] != orig[i];
  EXPECT_LE(moved, 2);
  EXPECT_LE(max_over_mean(worker_loads(loads, placement, 2)), 1.3);
}

TEST(RefineStrategyTest, BalancedInputUntouched) {
  auto loads = make_loads({5, 5, 5, 5}, {0, 1, 0, 1});
  EXPECT_EQ(remap("refine", loads, 2), (std::vector<int>{0, 1, 0, 1}));
}

TEST(DiffusionPlacementTest, NeighborSmoothing) {
  // Worker 0 overloaded, workers in a ring 0-1-2.
  auto loads = make_loads({10, 10, 10, 2, 2}, {0, 0, 0, 1, 2});
  auto placement = remap("diffusion:threshold=0.10", loads, 3);
  const auto after = max_over_mean(worker_loads(loads, placement, 3));
  const auto before = max_over_mean(worker_loads(loads, {0, 0, 0, 1, 2}, 3));
  EXPECT_LT(after, before);
}

TEST(DiffusionPlacementTest, BalancedStaysPut) {
  auto loads = make_loads({5, 5, 5}, {0, 1, 2});
  EXPECT_EQ(remap("diffusion:threshold=0.10", loads, 3), (std::vector<int>{0, 1, 2}));
}

TEST(RotateStrategyTest, ShiftsEveryVp) {
  auto loads = make_loads({1, 2, 3}, {0, 1, 2});
  EXPECT_EQ(remap("rotate", loads, 3), (std::vector<int>{1, 2, 0}));
}

TEST(StealStrategyTest, ThievesDrainTheStraggler) {
  // The async straggler scenario: one worker owns every heavy part.
  auto loads = make_loads({10, 10, 10, 10, 1, 1, 1, 1},
                          {0, 0, 0, 0, 1, 2, 3, 3});
  auto placement = remap("steal", loads, 4);
  const auto after = worker_loads(loads, placement, 4);
  EXPECT_LE(max_over_mean(after), 1.25);
  // The donor kept at least one of its own parts (steals, not eviction).
  EXPECT_NE(std::count(placement.begin(), placement.begin() + 4, 0), 0);
}

TEST(StealStrategyTest, BalancedInputUntouched) {
  auto loads = make_loads({5, 5, 5, 5}, {0, 1, 2, 3});
  EXPECT_EQ(remap("steal:tolerance=1.10", loads, 4),
            (std::vector<int>{0, 1, 2, 3}));
}

TEST(StealStrategyTest, DeterministicReplay) {
  auto loads = make_loads({9, 4, 7, 2, 5, 1}, {0, 0, 0, 1, 1, 2});
  const auto a = remap("steal", loads, 3);
  const auto b = remap("steal", loads, 3);
  EXPECT_EQ(a, b);
}

TEST(StealStrategyTest, ZeroLoadPartsNeverTransfer) {
  // Empty VPs carry no work — shipping them is pure migration cost and
  // an infinite ping-pong hazard; they must stay where they are.
  auto loads = make_loads({12, 0, 0, 0, 2, 2}, {0, 0, 0, 1, 1, 2});
  const auto placement = remap("steal", loads, 3);
  EXPECT_EQ(placement[1], 0);
  EXPECT_EQ(placement[2], 0);
  EXPECT_EQ(placement[3], 1);
}

TEST(StealStrategyTest, SingleWorkerDegenerate) {
  auto loads = make_loads({3, 1, 4}, {0, 0, 0});
  EXPECT_EQ(remap("steal", loads, 1), (std::vector<int>{0, 0, 0}));
}

}  // namespace
