// Strategy conformance suite — the contract every registry entry must
// honour, enforced over the REAL drivers:
//
//  * physics preservation: under any registered strategy, the drivers
//    still pass the closed-form position verification (Eqs. 5–6) and
//    the id checksum Σid = n(n+1)/2, on all five §III-E distributions
//    and on a run with mid-flight injection/removal events;
//  * determinism: decisions are pure functions of their input — two
//    independently constructed instances ("two ranks") replay the
//    identical plan bit for bit, including measurement-driven
//    strategies fed identical (allreduced) feedback;
//  * behaviour pinning: the pre-refactor defaults of the diffusion and
//    ampi drivers are reproduced exactly (λ series, LB actions,
//    exchange counts, checksum) — the adapters changed the plumbing,
//    not the physics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "comm/world.hpp"
#include "lb/registry.hpp"
#include "lb/strategy.hpp"
#include "par/ampi.hpp"
#include "par/diffusion.hpp"
#include "util/rng.hpp"

namespace {

using picprk::comm::Comm;
using picprk::comm::World;
using picprk::lb::BoundsInput;
using picprk::lb::Descriptor;
using picprk::lb::PlacementInput;
using picprk::par::DriverResult;
using picprk::par::RunConfig;
using picprk::pic::CellRegion;
using picprk::pic::EventSchedule;
using picprk::pic::InjectionEvent;
using picprk::pic::RemovalEvent;
using picprk::util::SplitMix64;

// The five §III-E distributions plus the dynamic-population run.
constexpr int kCases = 6;

RunConfig case_config(int kind) {
  RunConfig cfg;
  cfg.init.grid = picprk::pic::GridSpec(20, 1.0);
  cfg.init.total_particles = 700;
  cfg.steps = 20;
  cfg.lb.every = 4;
  switch (kind) {
    case 0: cfg.init.distribution = picprk::pic::Uniform{}; break;
    case 1: cfg.init.distribution = picprk::pic::Geometric{0.85}; break;
    case 2: cfg.init.distribution = picprk::pic::Sinusoidal{}; break;
    case 3: cfg.init.distribution = picprk::pic::Linear{1.0, 1.2}; break;
    case 4: cfg.init.distribution = picprk::pic::Patch{CellRegion{2, 12, 4, 16}}; break;
    default:
      // Uniform start + injection and removal mid-run: the checksum must
      // track the changing population exactly.
      cfg.init.distribution = picprk::pic::Uniform{};
      cfg.events = EventSchedule({InjectionEvent{6, CellRegion{0, 10, 0, 10}, 250}},
                                 {RemovalEvent{14, CellRegion{5, 20, 0, 20}, 0.4}});
      break;
  }
  return cfg;
}

std::string case_tag(int kind) {
  switch (kind) {
    case 0: return "uniform";
    case 1: return "geometric";
    case 2: return "sinusoidal";
    case 3: return "linear";
    case 4: return "patch";
    default: return "events";
  }
}

/// Runs one strategy through the boundary driver and checks Σid + Eqs.
/// 5–6. The checksum identity Σid = n(n+1)/2 is what
/// expected_id_checksum holds (adjusted for injected/removed ids).
void check_bounds_strategy(const std::string& spec, int kind) {
  RunConfig cfg = case_config(kind);
  cfg.lb.strategy = spec;
  World world(4);
  world.run([&](Comm& comm) {
    const DriverResult r = picprk::par::run_diffusion(comm, cfg);
    EXPECT_TRUE(r.ok) << spec << " on " << case_tag(kind)
                      << ": failures=" << r.verification.position_failures;
    EXPECT_EQ(r.verification.id_checksum, r.expected_id_checksum)
        << spec << " on " << case_tag(kind);
  });
}

void check_placement_strategy(const std::string& spec, int kind) {
  RunConfig cfg = case_config(kind);
  cfg.lb.strategy = spec;
  cfg.workers = 2;
  cfg.overdecomposition = 4;
  const DriverResult r = picprk::par::run_ampi(cfg);
  EXPECT_TRUE(r.ok) << spec << " on " << case_tag(kind)
                    << ": failures=" << r.verification.position_failures;
  EXPECT_EQ(r.verification.id_checksum, r.expected_id_checksum)
      << spec << " on " << case_tag(kind);
}

class EveryStrategy : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Cases, EveryStrategy, ::testing::Range(0, kCases),
                         [](const auto& info) { return case_tag(info.param); });

TEST_P(EveryStrategy, PreservesPhysicsInItsDrivers) {
  for (const Descriptor& d : picprk::lb::registered_strategies()) {
    if (d.bounds) check_bounds_strategy(d.name, GetParam());
    if (d.placement) check_placement_strategy(d.name, GetParam());
  }
}

// ------------------------------------------------------- determinism

BoundsInput random_bounds_input(SplitMix64& rng) {
  BoundsInput in;
  const int parts = 2 + static_cast<int>(rng.next_below(6));
  const std::int64_t cells = 8 * parts;
  in.step = static_cast<std::uint32_t>(rng.next_below(100));
  in.interval_steps = 4;
  in.bounds.resize(static_cast<std::size_t>(parts) + 1);
  for (int i = 0; i <= parts; ++i) {
    in.bounds[static_cast<std::size_t>(i)] = i * cells / parts;
  }
  in.loads.resize(static_cast<std::size_t>(parts));
  for (auto& l : in.loads) l = static_cast<double>(rng.next_below(5000));
  return in;
}

PlacementInput random_placement_input(SplitMix64& rng) {
  PlacementInput in;
  in.workers = 2 + static_cast<int>(rng.next_below(4));
  in.step = static_cast<std::uint32_t>(rng.next_below(100));
  in.interval_steps = 4;
  const int vps = in.workers * 3;
  in.parts.resize(static_cast<std::size_t>(vps));
  for (int v = 0; v < vps; ++v) {
    auto& p = in.parts[static_cast<std::size_t>(v)];
    p.part = v;
    p.load = static_cast<double>(rng.next_below(1000));
    p.owner = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(in.workers)));
    p.neighbors = {(v + 1) % vps, (v + vps - 1) % vps};
  }
  return in;
}

TEST(Determinism, TwoRanksReplayIdenticalPlans) {
  // Model two ranks as two independently constructed instances of every
  // strategy. Feed both the identical observation sequence (what the
  // allreduce guarantees in the drivers) and require bit-for-bit equal
  // plans at every round — including feedback-driven strategies, whose
  // note_applied() input is also identical on every rank by contract.
  for (const Descriptor& d : picprk::lb::registered_strategies()) {
    auto rank_a = picprk::lb::make_strategy(d.name);
    auto rank_b = picprk::lb::make_strategy(d.name);
    SplitMix64 rng(2026);
    for (int round = 0; round < 20; ++round) {
      if (d.bounds) {
        const BoundsInput in = random_bounds_input(rng);
        const auto plan_a = rank_a->rebalance_bounds(in);
        const auto plan_b = rank_b->rebalance_bounds(in);
        ASSERT_EQ(plan_a, plan_b) << d.name << " bounds round " << round;
      }
      if (d.placement) {
        const PlacementInput in = random_placement_input(rng);
        const auto plan_a = rank_a->rebalance_placement(in);
        const auto plan_b = rank_b->rebalance_placement(in);
        ASSERT_EQ(plan_a, plan_b) << d.name << " placement round " << round;
      }
      if (rank_a->wants_feedback()) {
        picprk::lb::ApplyFeedback fb;
        fb.lb_seconds = 0.001 * static_cast<double>(rng.next_below(100));
        fb.moved_load = static_cast<double>(rng.next_below(2000));
        fb.moved_bytes = rng.next_below(1 << 20);
        rank_a->note_applied(fb);
        rank_b->note_applied(fb);
      }
    }
  }
}

// -------------------------------------------------- behaviour pinning

/// The pre-refactor golden numbers for the default diffusion driver
/// (cells 32, n 4000, geometric 0.9, 48 steps, sample every 8, 4 ranks)
/// captured from the seed implementation. The strategy adapters must
/// reproduce them bit for bit.
TEST(GoldenPin, DiffusionDefaultsReproduceSeedBehaviour) {
  RunConfig cfg;
  cfg.init.grid = picprk::pic::GridSpec(32, 1.0);
  cfg.init.total_particles = 4000;
  cfg.init.distribution = picprk::pic::Geometric{0.9};
  cfg.steps = 48;
  cfg.sample_every = 8;
  cfg.ranks = 4;
  DriverResult result;
  World world(4);
  world.run([&](Comm& comm) {
    const DriverResult r = picprk::par::run_diffusion(comm, cfg);
    if (comm.rank() == 0) result = r;
  });
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.verification.id_checksum, 7898325u);
  EXPECT_EQ(result.particles_exchanged, 11946u);
  EXPECT_EQ(result.lb_actions, 8u);
  const std::vector<double> expected = {
      1.6618017111222949, 1.198792148968294,  1.6567689984901861,
      1.1816809260191243, 1.6618017111222949, 1.198792148968294};
  ASSERT_EQ(result.imbalance_series.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.imbalance_series[i], expected[i]) << "sample " << i;
  }
}

TEST(GoldenPin, AmpiDefaultsReproduceSeedBehaviour) {
  RunConfig cfg;
  cfg.init.grid = picprk::pic::GridSpec(32, 1.0);
  cfg.init.total_particles = 4000;
  cfg.init.distribution = picprk::pic::Geometric{0.9};
  cfg.steps = 48;
  cfg.sample_every = 8;
  cfg.workers = 2;
  cfg.overdecomposition = 4;
  const DriverResult r = picprk::par::run_ampi(cfg);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.verification.id_checksum, 7898325u);
  EXPECT_EQ(r.lb_actions, 6u);
  ASSERT_EQ(r.imbalance_series.size(), 6u);
  for (std::size_t i = 0; i < r.imbalance_series.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.imbalance_series[i], 1.0005032712632109) << "sample " << i;
  }
}

}  // namespace
