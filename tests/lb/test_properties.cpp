// Property tests over all placement strategies with randomized inputs:
// a plan must always be a valid placement, never increase the maximum
// worker load for the improving strategies, and be deterministic.
#include <gtest/gtest.h>

#include <algorithm>

#include "lb/registry.hpp"
#include "lb/strategy.hpp"
#include "util/rng.hpp"

namespace {

using picprk::lb::make_strategy;
using picprk::lb::PartLoad;
using picprk::lb::PlacementInput;
using picprk::util::SplitMix64;

PlacementInput random_input(SplitMix64& rng, int vps, int workers) {
  PlacementInput in;
  in.workers = workers;
  in.parts.resize(static_cast<std::size_t>(vps));
  for (int v = 0; v < vps; ++v) {
    auto& p = in.parts[static_cast<std::size_t>(v)];
    p.part = v;
    p.load = static_cast<double>(rng.next_below(1000));
    p.owner = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(workers)));
    // Ring neighbors as generic locality hints.
    p.neighbors = {(v + 1) % vps, (v + vps - 1) % vps};
  }
  return in;
}

double max_load(const PlacementInput& in, const std::vector<int>& placement) {
  std::vector<double> w(static_cast<std::size_t>(in.workers), 0.0);
  for (std::size_t i = 0; i < in.parts.size(); ++i)
    w[static_cast<std::size_t>(placement[i])] += in.parts[i].load;
  return *std::max_element(w.begin(), w.end());
}

class LbProperty : public ::testing::TestWithParam<const char*> {};
INSTANTIATE_TEST_SUITE_P(Strategies, LbProperty,
                         ::testing::Values("null", "greedy", "refine", "diffusion",
                                           "compact", "rotate", "adaptive"),
                         [](const auto& info) { return std::string(info.param); });

TEST_P(LbProperty, ValidPlacementOnRandomInputs) {
  auto lb = make_strategy(GetParam());
  SplitMix64 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const int workers = 1 + static_cast<int>(rng.next_below(8));
    const int vps = workers + static_cast<int>(rng.next_below(40));
    const auto in = random_input(rng, vps, workers);
    const auto placement = lb->rebalance_placement(in);
    ASSERT_EQ(placement.size(), in.parts.size());
    for (int w : placement) {
      EXPECT_GE(w, 0);
      EXPECT_LT(w, workers);
    }
  }
}

TEST_P(LbProperty, Deterministic) {
  // Two instances created from the same spec must replay the identical
  // plan on the identical input — the every-rank-computes-the-same-plan
  // contract of the strategy layer.
  auto a = make_strategy(GetParam());
  auto b = make_strategy(GetParam());
  SplitMix64 rng(99);
  const auto in = random_input(rng, 30, 4);
  EXPECT_EQ(a->rebalance_placement(in), b->rebalance_placement(in));
  EXPECT_EQ(a->rebalance_placement(in), a->rebalance_placement(in));
}

class ImprovingLbProperty : public ::testing::TestWithParam<const char*> {};
INSTANTIATE_TEST_SUITE_P(Strategies, ImprovingLbProperty,
                         ::testing::Values("greedy", "refine", "compact"),
                         [](const auto& info) { return std::string(info.param); });

TEST_P(ImprovingLbProperty, NeverWorsensTheMaximum) {
  auto lb = make_strategy(GetParam());
  SplitMix64 rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    const int workers = 2 + static_cast<int>(rng.next_below(6));
    const int vps = workers * (1 + static_cast<int>(rng.next_below(8)));
    const auto in = random_input(rng, vps, workers);
    std::vector<int> orig;
    for (const auto& p : in.parts) orig.push_back(p.owner);
    const auto placement = lb->rebalance_placement(in);
    EXPECT_LE(max_load(in, placement), max_load(in, orig) + 1e-9)
        << GetParam() << " trial " << trial;
  }
}

TEST_P(ImprovingLbProperty, SubstantiallyImprovesConcentratedLoad) {
  auto lb = make_strategy(GetParam());
  // Everything on worker 0.
  PlacementInput in;
  in.workers = 4;
  in.parts.resize(16);
  for (int v = 0; v < 16; ++v) {
    in.parts[static_cast<std::size_t>(v)] =
        PartLoad{v, 10.0, 0, {(v + 1) % 16, (v + 15) % 16}};
  }
  const auto placement = lb->rebalance_placement(in);
  EXPECT_LE(max_load(in, placement), 0.5 * 160.0);
}

}  // namespace
