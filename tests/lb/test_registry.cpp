// Registry and spec-parsing tests: the uniform `name[:key=val,...]`
// selector behind --balancer must resolve every built-in, reject typos
// loudly, and report capabilities truthfully.
#include <gtest/gtest.h>

#include <stdexcept>

#include "lb/registry.hpp"

namespace {

using picprk::lb::descriptor_of;
using picprk::lb::make_strategy;
using picprk::lb::parse_spec;
using picprk::lb::registered_strategies;

TEST(ParseSpec, NameOnly) {
  const auto p = parse_spec("greedy");
  EXPECT_EQ(p.name, "greedy");
  EXPECT_TRUE(p.options.empty());
}

TEST(ParseSpec, NameWithOptions) {
  const auto p = parse_spec("diffusion:threshold=0.2,border=2,two_phase=1");
  EXPECT_EQ(p.name, "diffusion");
  ASSERT_EQ(p.options.size(), 3u);
  EXPECT_EQ(p.options.at("threshold"), "0.2");
  EXPECT_EQ(p.options.at("border"), "2");
  EXPECT_EQ(p.options.at("two_phase"), "1");
}

TEST(ParseSpec, MalformedOptionThrows) {
  EXPECT_THROW(parse_spec("diffusion:threshold"), std::invalid_argument);
  EXPECT_THROW(parse_spec("diffusion:=1"), std::invalid_argument);
  EXPECT_THROW(parse_spec(""), std::invalid_argument);
}

TEST(Registry, AllNamesResolveAndReportTheirName) {
  const auto all = registered_strategies();
  ASSERT_GE(all.size(), 7u);  // the PR's acceptance floor
  for (const auto& d : all) {
    auto s = make_strategy(d.name);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), d.name);
    // Capability flags must match the descriptor.
    EXPECT_EQ(s->balances_bounds(), d.bounds) << d.name;
    EXPECT_EQ(s->balances_placement(), d.placement) << d.name;
    // Every strategy balances *something*.
    EXPECT_TRUE(d.bounds || d.placement) << d.name;
  }
}

TEST(Registry, ListingIsSortedByName) {
  const auto all = registered_strategies();
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].name, all[i].name);
  }
}

TEST(Registry, CanonicalEntriesPresent) {
  // The §IV-B / §IV-C pairing plus this PR's two new strategies.
  EXPECT_TRUE(descriptor_of("diffusion").bounds);
  EXPECT_TRUE(descriptor_of("greedy").placement);
  EXPECT_TRUE(descriptor_of("rcb").bounds);
  EXPECT_FALSE(descriptor_of("rcb").placement);
  EXPECT_TRUE(descriptor_of("adaptive").bounds);
  EXPECT_TRUE(descriptor_of("adaptive").placement);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_strategy("bogus"), std::invalid_argument);
  EXPECT_THROW(descriptor_of("bogus"), std::invalid_argument);
}

TEST(Registry, UnknownOptionThrows) {
  EXPECT_THROW(make_strategy("greedy:tolerance=1.1"), std::invalid_argument);
  EXPECT_THROW(make_strategy("diffusion:frequency=4"), std::invalid_argument);
}

TEST(Registry, MalformedOptionValueThrows) {
  EXPECT_THROW(make_strategy("diffusion:threshold=abc"), std::invalid_argument);
  EXPECT_THROW(make_strategy("diffusion:two_phase=maybe"), std::invalid_argument);
  EXPECT_THROW(make_strategy("diffusion:border=1.5"), std::invalid_argument);
}

TEST(Registry, AdaptiveInnerSelection) {
  // adaptive wraps an inner strategy for each role it implements.
  EXPECT_NE(make_strategy("adaptive:inner=rcb"), nullptr);
  EXPECT_NE(make_strategy("adaptive:inner=refine"), nullptr);
  EXPECT_THROW(make_strategy("adaptive:inner=adaptive"), std::invalid_argument);
  EXPECT_THROW(make_strategy("adaptive:inner=bogus"), std::invalid_argument);
}

TEST(Registry, AdaptiveWantsFeedback) {
  auto s = make_strategy("adaptive");
  EXPECT_TRUE(s->wants_feedback());
  // The plain strategies do not.
  EXPECT_FALSE(make_strategy("diffusion")->wants_feedback());
  EXPECT_FALSE(make_strategy("greedy")->wants_feedback());
}

}  // namespace
