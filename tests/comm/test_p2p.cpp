#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "comm/comm.hpp"
#include "comm/world.hpp"

namespace {

using picprk::comm::Comm;
using picprk::comm::kAnySource;
using picprk::comm::kAnyTag;
using picprk::comm::Status;
using picprk::comm::World;

TEST(P2P, SendRecvRoundTrip) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> data{1, 2, 3, 4};
      comm.send(data, 1, 7);
    } else {
      auto got = comm.recv<int>(0, 7);
      EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
    }
  });
}

TEST(P2P, SendValueRecvValue) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(3.14, 1, 0);
    } else {
      EXPECT_DOUBLE_EQ(comm.recv_value<double>(0, 0), 3.14);
    }
  });
}

TEST(P2P, TagMatchingSelectsRightMessage) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(10, 1, 1);
      comm.send_value(20, 1, 2);
    } else {
      // Receive in reverse tag order: matching must be by tag, not FIFO.
      EXPECT_EQ(comm.recv_value<int>(0, 2), 20);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 10);
    }
  });
}

TEST(P2P, FifoOrderPerSourceAndTag) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) comm.send_value(i, 1, 3);
    } else {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(comm.recv_value<int>(0, 3), i);
    }
  });
}

TEST(P2P, AnySourceReceivesFromAll) {
  const int p = 4;
  World world(p);
  world.run([p](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<bool> seen(static_cast<std::size_t>(p), false);
      for (int i = 1; i < p; ++i) {
        Status st;
        const int v = comm.recv_value<int>(kAnySource, 5, &st);
        EXPECT_EQ(v, st.source * 100);
        seen[static_cast<std::size_t>(st.source)] = true;
      }
      for (int r = 1; r < p; ++r) EXPECT_TRUE(seen[static_cast<std::size_t>(r)]);
    } else {
      comm.send_value(comm.rank() * 100, 0, 5);
    }
  });
}

TEST(P2P, AnyTagReceives) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(99, 1, 42);
    } else {
      Status st;
      EXPECT_EQ(comm.recv_value<int>(0, kAnyTag, &st), 99);
      EXPECT_EQ(st.tag, 42);
    }
  });
}

TEST(P2P, ProbeReportsSizeWithoutConsuming) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> data(10, 1.5);
      comm.send(data, 1, 9);
    } else {
      Status st = comm.probe(0, 9);
      EXPECT_EQ(st.bytes, 10 * sizeof(double));
      EXPECT_EQ(st.source, 0);
      auto got = comm.recv<double>(0, 9);
      EXPECT_EQ(got.size(), 10u);
    }
  });
}

TEST(P2P, IprobeReturnsNulloptWhenEmpty) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 1) {
      EXPECT_FALSE(comm.iprobe(0, 1234).has_value());
    }
    comm.barrier();
    if (comm.rank() == 0) comm.send_value(1, 1, 1234);
    comm.barrier();
    if (comm.rank() == 1) {
      EXPECT_TRUE(comm.iprobe(0, 1234).has_value());
      (void)comm.recv_value<int>(0, 1234);
    }
  });
}

TEST(P2P, SendrecvExchanges) {
  World world(2);
  world.run([](Comm& comm) {
    const int other = 1 - comm.rank();
    std::vector<int> mine{comm.rank()};
    auto theirs = comm.sendrecv(std::span<const int>(mine), other, other, 11);
    ASSERT_EQ(theirs.size(), 1u);
    EXPECT_EQ(theirs[0], other);
  });
}

TEST(P2P, EmptyMessageDelivered) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(std::vector<int>{}, 1, 8);
    } else {
      auto got = comm.recv<int>(0, 8);
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST(P2P, ThrowingRankAbortsWorld) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      throw std::runtime_error("boom");
    }
    // Rank 1 blocks forever unless the abort wakes it.
    (void)comm.recv_value<int>(0, 0);
  }),
               std::runtime_error);
}

TEST(P2P, ByteAccountingGrows) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<char> payload(1000, 'x');
      comm.send(payload, 1, 0);
    } else {
      (void)comm.recv<char>(0, 0);
    }
  });
  EXPECT_GE(world.bytes_sent(), 1000u);
  EXPECT_GE(world.messages_sent(), 1u);
}

TEST(P2P, SelfSendWorks) {
  World world(1);
  world.run([](Comm& comm) {
    comm.send_value(5, 0, 0);
    EXPECT_EQ(comm.recv_value<int>(0, 0), 5);
  });
}

struct PodTriple {
  double a;
  int b;
  char c;
};

TEST(P2P, TriviallyCopyableStructsTravel) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      PodTriple t{1.5, 2, 'z'};
      comm.send_value(t, 1, 0);
    } else {
      auto t = comm.recv_value<PodTriple>(0, 0);
      EXPECT_DOUBLE_EQ(t.a, 1.5);
      EXPECT_EQ(t.b, 2);
      EXPECT_EQ(t.c, 'z');
    }
  });
}

}  // namespace
