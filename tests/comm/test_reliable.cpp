// Property suite of the reliable transport (docs/RESILIENCE.md, level 1
// of the recovery ladder): under seeded drop/duplicate/delay schedules
// every stream must deliver exactly once and in FIFO order per
// (source, tag), and CommTimeout must fire only once the retransmit
// budget is truly exhausted — never while the pump still has retries
// left for the blocked receiver.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "comm/comm.hpp"
#include "comm/fault_hook.hpp"
#include "comm/world.hpp"
#include "util/rng.hpp"

namespace {

using namespace picprk;

/// Deterministic scripted fault schedule: the fate of send k from rank s
/// is a pure function of (seed, s, k) via a counter-based hash, so the
/// same seed produces the same wire-level fault pattern on every run
/// regardless of thread interleaving. Collective traffic (negative wire
/// tags) passes clean — these tests target application streams.
class ScriptedFaults final : public comm::FaultHook {
 public:
  ScriptedFaults(std::uint64_t seed, double drop, double dup, double delay = 0.0,
                 int delay_ms = 1)
      : seed_(seed), drop_(drop), dup_(dup), delay_(delay), delay_ms_(delay_ms) {}

  comm::FaultDecision on_send(int src, int /*dst*/, int tag,
                              std::size_t /*bytes*/) override {
    comm::FaultDecision decision;
    if (tag < 0) return decision;
    const std::uint64_t k =
        seq_[static_cast<std::size_t>(src)].fetch_add(1, std::memory_order_relaxed);
    const util::CounterRng rng(seed_, 0xFA7E5u, static_cast<std::uint64_t>(src));
    const double u = rng.double_at(k);
    if (u < drop_) {
      decision.kind = comm::FaultDecision::Kind::Drop;
    } else if (u < drop_ + dup_) {
      decision.kind = comm::FaultDecision::Kind::Duplicate;
    } else if (u < drop_ + dup_ + delay_) {
      decision.kind = comm::FaultDecision::Kind::Delay;
      decision.delay_ms = delay_ms_;
    }
    return decision;
  }

 private:
  std::uint64_t seed_;
  double drop_, dup_, delay_;
  int delay_ms_;
  std::array<std::atomic<std::uint64_t>, 16> seq_{};
};

constexpr int kTag = 7;

/// All-pairs stream exchange: every rank sends `count` sequenced values
/// to every peer, then receives each peer's stream asserting exact
/// values in exact order — the exactly-once + FIFO-per-(source, tag)
/// property. Any lost message fails via CommTimeout, any duplicate or
/// reordering fails the value assertions, any leftover fails the final
/// iprobe sweep.
void exchange_streams(comm::Comm& comm, int count) {
  for (int dst = 0; dst < comm.size(); ++dst) {
    if (dst == comm.rank()) continue;
    for (int k = 0; k < count; ++k) {
      comm.send_value<int>(comm.rank() * 100000 + k, dst, kTag);
    }
  }
  for (int src = 0; src < comm.size(); ++src) {
    if (src == comm.rank()) continue;
    for (int k = 0; k < count; ++k) {
      const int got = comm.recv_value<int>(src, kTag);
      ASSERT_EQ(got, src * 100000 + k)
          << "stream " << src << " -> " << comm.rank() << " at position " << k;
    }
  }
  comm.barrier();  // every peer done sending before the leftover sweep
  EXPECT_FALSE(comm.iprobe(comm::kAnySource, kTag).has_value())
      << "extra message survived the dedup window on rank " << comm.rank();
}

TEST(ReliableTransport, ExactlyOnceFifoUnderSeededDropAndDup) {
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    ScriptedFaults faults(seed, /*drop=*/0.25, /*dup=*/0.25);
    comm::WorldOptions options;
    options.fault_hook = &faults;
    options.timeout_ms = 10000;  // an unhealed drop must fail, not hang
    options.reliable.enabled = true;
    options.reliable.rto_ms = 5;
    comm::World world(4, options);
    world.run([](comm::Comm& comm) { exchange_streams(comm, 40); });

    const comm::TransportStats ts = world.transport_stats();
    EXPECT_GT(ts.retransmits, 0u) << "seed " << seed << ": no drop was healed";
    EXPECT_GT(ts.dup_dropped, 0u) << "seed " << seed << ": no dup was swallowed";
    EXPECT_EQ(ts.abandoned, 0u) << "seed " << seed;
    EXPECT_EQ(world.residual_messages(), 0u);
  }
}

TEST(ReliableTransport, ExactlyOnceFifoUnderMixedDropDupDelaySchedule) {
  ScriptedFaults faults(/*seed=*/101, /*drop=*/0.15, /*dup=*/0.1, /*delay=*/0.2,
                        /*delay_ms=*/2);
  comm::WorldOptions options;
  options.fault_hook = &faults;
  options.timeout_ms = 10000;
  options.reliable.enabled = true;
  options.reliable.rto_ms = 5;
  comm::World world(4, options);
  world.run([](comm::Comm& comm) { exchange_streams(comm, 30); });
  EXPECT_EQ(world.transport_stats().abandoned, 0u);
}

TEST(ReliableTransport, RetransmitHealsADeterministicDrop) {
  // Every tagged message from rank 0 is dropped on the wire; only the
  // pump's retransmissions (which bypass the fault hook) can deliver.
  ScriptedFaults faults(/*seed=*/1, /*drop=*/1.0, /*dup=*/0.0);
  comm::WorldOptions options;
  options.fault_hook = &faults;
  options.timeout_ms = 5000;
  options.reliable.enabled = true;
  options.reliable.rto_ms = 5;
  comm::World world(2, options);
  world.run([](comm::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(424242, 1, kTag);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, kTag), 424242);
    }
  });
  EXPECT_GE(world.transport_stats().retransmits, 1u);
  EXPECT_EQ(world.transport_stats().abandoned, 0u);
}

TEST(ReliableTransport, CommTimeoutFiresOnlyAfterRetransmitBudgetExhausted) {
  // The wire drops everything and lose_retransmits black-holes the
  // pump's copies too, so the message can never arrive. The receiver's
  // 20 ms deadline must NOT fire at 20 ms: retry_pending_to defers it
  // while the budget lasts. Schedule: resend at ~rto (5 ms) and ~3*rto
  // (15 ms), abandon one full backoff later (~35 ms, plus jitter); only
  // then may CommTimeout surface.
  ScriptedFaults faults(/*seed=*/1, /*drop=*/1.0, /*dup=*/0.0);
  comm::WorldOptions options;
  options.fault_hook = &faults;
  options.timeout_ms = 20;
  options.reliable.enabled = true;
  options.reliable.rto_ms = 5;
  options.reliable.max_retransmits = 2;
  options.reliable.lose_retransmits = true;
  comm::World world(2, options);

  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(world.run([](comm::Comm& comm) {
                 if (comm.rank() == 0) {
                   comm.send_value<int>(7, 1, kTag);
                 } else {
                   (void)comm.recv_value<int>(0, kTag);
                 }
               }),
               comm::CommTimeout);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 30) << "CommTimeout fired before the retransmit budget ran out";

  const comm::TransportStats ts = world.transport_stats();
  EXPECT_EQ(ts.retransmits, 2u);
  EXPECT_EQ(ts.abandoned, 1u);
}

TEST(ReliableTransport, DisabledTransportPreservesLegacyDropSymptom) {
  // With reliability off a dropped message stays dropped: the blocked
  // receiver times out at its own deadline. Pins that the opt-in flag
  // really gates the whole layer.
  ScriptedFaults faults(/*seed=*/1, /*drop=*/1.0, /*dup=*/0.0);
  comm::WorldOptions options;
  options.fault_hook = &faults;
  options.timeout_ms = 50;
  comm::World world(2, options);
  EXPECT_THROW(world.run([](comm::Comm& comm) {
                 if (comm.rank() == 0) {
                   comm.send_value<int>(7, 1, kTag);
                 } else {
                   (void)comm.recv_value<int>(0, kTag);
                 }
               }),
               comm::CommTimeout);
  const comm::TransportStats ts = world.transport_stats();
  EXPECT_EQ(ts.retransmits, 0u);
  EXPECT_EQ(ts.acked, 0u);
}

}  // namespace
