#include <gtest/gtest.h>

#include <numeric>

#include "comm/request.hpp"
#include "comm/world.hpp"

namespace {

using picprk::comm::Comm;
using picprk::comm::irecv;
using picprk::comm::RecvRequest;
using picprk::comm::wait_all;
using picprk::comm::World;

TEST(RecvRequestTest, OverlapComputeAndWait) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(std::vector<int>{1, 2, 3}, 1, 5);
    } else {
      auto req = irecv<int>(comm, 0, 5);
      // "Local work" happens here; then wait.
      const auto& data = req.wait();
      EXPECT_EQ(data, (std::vector<int>{1, 2, 3}));
      EXPECT_EQ(req.status().source, 0);
      EXPECT_EQ(req.status().tag, 5);
      // Idempotent wait.
      EXPECT_EQ(req.wait().size(), 3u);
    }
  });
}

TEST(RecvRequestTest, TestPollsWithoutConsuming) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 1) {
      auto req = irecv<double>(comm, 0, 9);
      // Rank 0 will not send until we say go, so the probe must be empty.
      EXPECT_FALSE(req.test());
      comm.send_value(1, 0, 100);  // go
      const auto& data = req.wait();
      ASSERT_EQ(data.size(), 1u);
      EXPECT_DOUBLE_EQ(data[0], 2.5);
      EXPECT_TRUE(req.test());  // after completion test() stays true
    } else {
      (void)comm.recv_value<int>(1, 100);  // wait for go
      comm.send_value(2.5, 1, 9);
    }
  });
}

TEST(RecvRequestTest, WaitAllCollectsInPostOrder) {
  const int p = 4;
  World world(p);
  world.run([p](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<RecvRequest<int>> reqs;
      for (int r = 1; r < p; ++r) reqs.push_back(irecv<int>(comm, r, 3));
      auto results = wait_all(reqs);
      for (int r = 1; r < p; ++r) {
        EXPECT_EQ(results[static_cast<std::size_t>(r - 1)],
                  std::vector<int>{r * 7});
      }
    } else {
      comm.send_value(comm.rank() * 7, 0, 3);
    }
  });
}

class ScanRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(RankCounts, ScanRanks, ::testing::Values(1, 2, 3, 4, 5, 8),
                         [](const auto& info) { return "p" + std::to_string(info.param); });

TEST_P(ScanRanks, InclusiveSum) {
  World world(GetParam());
  world.run([](Comm& comm) {
    const auto r = comm.scan_value<std::int64_t>(
        comm.rank() + 1, [](std::int64_t a, std::int64_t b) { return a + b; });
    const std::int64_t expected =
        static_cast<std::int64_t>(comm.rank() + 1) * (comm.rank() + 2) / 2;
    EXPECT_EQ(r, expected);
  });
}

TEST_P(ScanRanks, ExclusiveSum) {
  World world(GetParam());
  world.run([](Comm& comm) {
    const auto r = comm.exscan_value<std::int64_t>(
        comm.rank() + 1, [](std::int64_t a, std::int64_t b) { return a + b; });
    if (comm.rank() == 0) {
      EXPECT_FALSE(r.has_value());
    } else {
      ASSERT_TRUE(r.has_value());
      EXPECT_EQ(*r, static_cast<std::int64_t>(comm.rank()) * (comm.rank() + 1) / 2);
    }
  });
}

TEST_P(ScanRanks, VectorScan) {
  World world(GetParam());
  world.run([](Comm& comm) {
    const std::vector<int> mine{comm.rank(), 1};
    auto r = comm.scan(std::span<const int>(mine), [](int a, int b) { return a + b; });
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0], comm.rank() * (comm.rank() + 1) / 2);
    EXPECT_EQ(r[1], comm.rank() + 1);
  });
}

struct Affine {
  // x -> a·x + b; composition is associative but NOT commutative, which
  // is exactly what a scan must preserve (MPI requires associativity
  // only).
  std::int64_t a, b;
};

TEST(ScanNonCommutative, AffineCompositionOrder) {
  World world(5);
  world.run([](Comm& comm) {
    const Affine mine{comm.rank() + 2, 1};
    const auto compose = [](const Affine& f, const Affine& g) {
      // (g ∘ f)(x): apply f (the earlier rank) first.
      return Affine{g.a * f.a, g.a * f.b + g.b};
    };
    const Affine got = comm.scan_value<Affine>(mine, compose);
    // Sequential expectation.
    Affine expected{2, 1};
    for (int r = 1; r <= comm.rank(); ++r) {
      expected = compose(expected, Affine{r + 2, 1});
    }
    EXPECT_EQ(got.a, expected.a);
    EXPECT_EQ(got.b, expected.b);
  });
}

TEST(ScanUseCase, ParticleIdRanges) {
  // The classic exscan use: assigning disjoint id ranges to ranks.
  World world(4);
  world.run([](Comm& comm) {
    const std::uint64_t local_count = 10u * (static_cast<std::uint64_t>(comm.rank()) + 1);
    const auto before = comm.exscan_value<std::uint64_t>(
        local_count, [](std::uint64_t a, std::uint64_t b) { return a + b; });
    const std::uint64_t first_id = before.value_or(0) + 1;
    // Rank 0: 1; rank 1: 11; rank 2: 31; rank 3: 61.
    const std::uint64_t expected[] = {1, 11, 31, 61};
    EXPECT_EQ(first_id, expected[comm.rank()]);
  });
}

}  // namespace
