// Stress tests for threadcomm: message storms with random destinations,
// tags and sizes; interleaved collectives; conservation of every byte.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "comm/comm.hpp"
#include "comm/world.hpp"
#include "util/rng.hpp"

namespace {

using picprk::comm::Comm;
using picprk::comm::kAnySource;
using picprk::comm::kAnyTag;
using picprk::comm::Status;
using picprk::comm::World;
using picprk::util::SplitMix64;

TEST(CommStress, RandomMessageStormConservesEverything) {
  const int p = 6;
  const int messages_per_rank = 200;
  World world(p);
  world.run([p, messages_per_rank](Comm& comm) {
    SplitMix64 rng(1000 + static_cast<std::uint64_t>(comm.rank()));

    // Phase 1: everyone fires messages at random destinations. Payload
    // carries (source, sequence) so receivers can validate.
    std::uint64_t sent_sum = 0;
    std::vector<int> sent_to(static_cast<std::size_t>(p), 0);
    for (int i = 0; i < messages_per_rank; ++i) {
      const int dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(p)));
      const auto len = 1 + rng.next_below(64);
      std::vector<std::uint64_t> payload(len);
      for (auto& v : payload) v = rng.next();
      sent_sum += std::accumulate(payload.begin(), payload.end(), std::uint64_t{0});
      comm.send(payload, dst, /*tag=*/7);
      sent_to[static_cast<std::size_t>(dst)]++;
    }

    // Phase 2: tell everyone how many messages to expect from us.
    auto expected_counts = comm.alltoall(std::vector<std::vector<int>>{
        [&] {
          std::vector<std::vector<int>> out(static_cast<std::size_t>(p));
          for (int r = 0; r < p; ++r) out[static_cast<std::size_t>(r)] = {sent_to[static_cast<std::size_t>(r)]};
          return out;
        }()});

    int expected = 0;
    for (const auto& v : expected_counts) expected += v.at(0);

    std::uint64_t received_sum = 0;
    for (int i = 0; i < expected; ++i) {
      const auto payload = comm.recv<std::uint64_t>(kAnySource, 7);
      received_sum +=
          std::accumulate(payload.begin(), payload.end(), std::uint64_t{0});
    }

    // Global conservation: sum of all sent == sum of all received.
    const auto total_sent = comm.allreduce_value<std::uint64_t>(
        sent_sum, [](std::uint64_t a, std::uint64_t b) { return a + b; });
    const auto total_received = comm.allreduce_value<std::uint64_t>(
        received_sum, [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(total_sent, total_received);
  });
}

TEST(CommStress, ManyTagsMatchIndependently) {
  World world(2);
  world.run([](Comm& comm) {
    const int tags = 50;
    if (comm.rank() == 0) {
      // Send in one order...
      for (int t = 0; t < tags; ++t) comm.send_value(t * 11, 1, t);
    } else {
      // ...receive in the reverse order.
      for (int t = tags - 1; t >= 0; --t) {
        EXPECT_EQ(comm.recv_value<int>(0, t), t * 11);
      }
    }
  });
}

TEST(CommStress, InterleavedCollectivesAndP2P) {
  const int p = 4;
  World world(p);
  world.run([p](Comm& comm) {
    for (int round = 0; round < 30; ++round) {
      // P2P ring shift...
      comm.send_value(comm.rank() * 100 + round, (comm.rank() + 1) % p, 2);
      // ...interleaved with a collective before the matching receive.
      const int sum = comm.allreduce_value<int>(1, [](int a, int b) { return a + b; });
      EXPECT_EQ(sum, p);
      const int v = comm.recv_value<int>((comm.rank() + p - 1) % p, 2);
      EXPECT_EQ(v, ((comm.rank() + p - 1) % p) * 100 + round);
    }
  });
}

TEST(CommStress, SplitStorm) {
  // Repeated splits with changing colors; each sub-communicator runs a
  // collective. Exercises context allocation under load.
  const int p = 6;
  World world(p);
  world.run([p](Comm& comm) {
    for (int round = 1; round <= 10; ++round) {
      const int color = comm.rank() % round;
      Comm sub = comm.split(color, comm.rank());
      const int members = sub.allreduce_value<int>(1, [](int a, int b) { return a + b; });
      EXPECT_EQ(members, sub.size());
      // Group sizes partition the world.
      const int total = comm.allreduce_value<int>(
          sub.rank() == 0 ? sub.size() : 0, [](int a, int b) { return a + b; });
      EXPECT_EQ(total, p);
    }
  });
}

TEST(CommStress, LargePayloadRoundTrip) {
  World world(2);
  world.run([](Comm& comm) {
    const std::size_t n = 1 << 20;  // 8 MB of doubles
    if (comm.rank() == 0) {
      std::vector<double> big(n);
      for (std::size_t i = 0; i < n; ++i) big[i] = static_cast<double>(i) * 0.5;
      comm.send(big, 1, 0);
    } else {
      const auto big = comm.recv<double>(0, 0);
      ASSERT_EQ(big.size(), n);
      EXPECT_DOUBLE_EQ(big[12345], 12345 * 0.5);
      EXPECT_DOUBLE_EQ(big[n - 1], static_cast<double>(n - 1) * 0.5);
    }
  });
}

TEST(CommStress, RepeatedWorldRuns) {
  // One World object, many run() invocations (the figure benches do
  // this): no state may leak between runs.
  World world(3);
  for (int iteration = 0; iteration < 5; ++iteration) {
    world.run([iteration](Comm& comm) {
      const int sum = comm.allreduce_value<int>(
          comm.rank() + iteration, [](int a, int b) { return a + b; });
      EXPECT_EQ(sum, 3 + 3 * iteration);
    });
  }
}

}  // namespace
