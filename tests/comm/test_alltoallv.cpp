// Property tests for the flat-buffer Comm::alltoallv (the hot-path
// counterpart of the vector-of-vectors alltoall). The send matrix is
// generated from a counter-based hash of (seed, src, dst), so every rank
// can independently recompute what every other rank sent it and assert
// the received slices element-for-element — no side-channel needed.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "comm/comm.hpp"
#include "comm/world.hpp"
#include "util/rng.hpp"

namespace {

using picprk::comm::BufferPool;
using picprk::comm::Comm;
using picprk::comm::World;
using picprk::util::SplitMix64;

/// Deterministic element count sent from `src` to `dst` for a given
/// seed; any rank can evaluate the full matrix.
std::uint64_t planned_count(std::uint64_t seed, int src, int dst, std::uint64_t max) {
  SplitMix64 rng(seed ^ (static_cast<std::uint64_t>(src) * 0x9E3779B97F4A7C15ull) ^
                 (static_cast<std::uint64_t>(dst) * 0xBF58476D1CE4E5B9ull));
  return rng.next_below(max + 1);
}

/// The j-th element `src` sends to `dst`: unique and recomputable.
std::uint64_t planned_element(int src, int dst, std::uint64_t j) {
  return (static_cast<std::uint64_t>(src) << 40) |
         (static_cast<std::uint64_t>(dst) << 20) | j;
}

/// Packs this rank's sends in destination order and runs alltoallv, then
/// checks the received counts and contents against the plan.
void run_planned_round(Comm& comm, std::uint64_t seed, std::uint64_t max_count,
                       BufferPool* pool) {
  const int p = comm.size();
  const int me = comm.rank();

  std::vector<std::uint64_t> send_counts(static_cast<std::size_t>(p));
  std::vector<std::uint64_t> send_data;
  for (int dst = 0; dst < p; ++dst) {
    const std::uint64_t c = planned_count(seed, me, dst, max_count);
    send_counts[static_cast<std::size_t>(dst)] = c;
    for (std::uint64_t j = 0; j < c; ++j) send_data.push_back(planned_element(me, dst, j));
  }

  std::vector<std::uint64_t> recv_data, recv_counts;
  comm.alltoallv(std::span<const std::uint64_t>(send_data),
                 std::span<const std::uint64_t>(send_counts), recv_data, recv_counts,
                 pool);

  ASSERT_EQ(recv_counts.size(), static_cast<std::size_t>(p));
  std::size_t offset = 0;
  for (int src = 0; src < p; ++src) {
    const std::uint64_t expected = planned_count(seed, src, me, max_count);
    ASSERT_EQ(recv_counts[static_cast<std::size_t>(src)], expected)
        << "count from rank " << src;
    for (std::uint64_t j = 0; j < expected; ++j) {
      ASSERT_EQ(recv_data[offset + j], planned_element(src, me, j))
          << "element " << j << " from rank " << src;
    }
    offset += expected;
  }
  ASSERT_EQ(recv_data.size(), offset);
}

TEST(Alltoallv, RandomCountsDeliverExactSlicesInSourceOrder) {
  World world(5);
  world.run([](Comm& comm) {
    BufferPool pool;
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
      run_planned_round(comm, seed, /*max_count=*/97, &pool);
    }
  });
}

TEST(Alltoallv, AllEmptyAndSelfOnlyRounds) {
  World world(4);
  world.run([](Comm& comm) {
    const auto p = static_cast<std::size_t>(comm.size());
    // All-empty: every count zero — pure envelope traffic.
    std::vector<std::uint64_t> counts(p, 0), data, recv_data, recv_counts;
    comm.alltoallv(std::span<const std::uint64_t>(data),
                   std::span<const std::uint64_t>(counts), recv_data, recv_counts);
    EXPECT_TRUE(recv_data.empty());
    for (const std::uint64_t c : recv_counts) EXPECT_EQ(c, 0u);

    // Self-only: everything stays local (the memcpy'd self slice).
    const auto me = static_cast<std::size_t>(comm.rank());
    counts.assign(p, 0);
    counts[me] = 10;
    data.resize(10);
    std::iota(data.begin(), data.end(), 100 * static_cast<std::uint64_t>(me));
    comm.alltoallv(std::span<const std::uint64_t>(data),
                   std::span<const std::uint64_t>(counts), recv_data, recv_counts);
    ASSERT_EQ(recv_data.size(), 10u);
    EXPECT_EQ(recv_counts[me], 10u);
    EXPECT_EQ(recv_data, data);
  });
}

TEST(Alltoallv, SinglePeerHeavyPreservesIdChecksum) {
  // Every rank ships its whole block of ids to one peer (rank+1 mod p):
  // maximally skewed traffic. Ids 1..N partitioned in contiguous blocks,
  // so the global sum must stay n(n+1)/2.
  const int p = 4;
  static constexpr std::uint64_t kPerRank = 5000;
  World world(p);
  world.run([](Comm& comm) {
    const int np = comm.size();
    const auto me = static_cast<std::uint64_t>(comm.rank());
    std::vector<std::uint64_t> data(kPerRank);
    std::iota(data.begin(), data.end(), me * kPerRank + 1);

    std::vector<std::uint64_t> counts(static_cast<std::size_t>(np), 0);
    counts[static_cast<std::size_t>((comm.rank() + 1) % np)] = kPerRank;

    std::vector<std::uint64_t> recv_data, recv_counts;
    comm.alltoallv(std::span<const std::uint64_t>(data),
                   std::span<const std::uint64_t>(counts), recv_data, recv_counts);

    ASSERT_EQ(recv_data.size(), kPerRank);
    const std::uint64_t local =
        std::accumulate(recv_data.begin(), recv_data.end(), std::uint64_t{0});
    const std::uint64_t global = comm.allreduce_value<std::uint64_t>(
        local, [](std::uint64_t a, std::uint64_t b) { return a + b; });
    const std::uint64_t n = kPerRank * static_cast<std::uint64_t>(np);
    EXPECT_EQ(global, n * (n + 1) / 2);
  });
}

TEST(Alltoallv, AgreesWithVectorOfVectorsAlltoall) {
  World world(4);
  world.run([](Comm& comm) {
    const int p = comm.size();
    const int me = comm.rank();
    const std::uint64_t seed = 77;

    // Same planned matrix through both collectives.
    std::vector<std::vector<std::uint64_t>> outgoing(static_cast<std::size_t>(p));
    std::vector<std::uint64_t> send_counts(static_cast<std::size_t>(p));
    std::vector<std::uint64_t> send_data;
    for (int dst = 0; dst < p; ++dst) {
      const std::uint64_t c = planned_count(seed, me, dst, 50);
      send_counts[static_cast<std::size_t>(dst)] = c;
      for (std::uint64_t j = 0; j < c; ++j) {
        const std::uint64_t e = planned_element(me, dst, j);
        outgoing[static_cast<std::size_t>(dst)].push_back(e);
        send_data.push_back(e);
      }
    }

    const auto incoming = comm.alltoall(outgoing);
    std::vector<std::uint64_t> recv_data, recv_counts;
    comm.alltoallv(std::span<const std::uint64_t>(send_data),
                   std::span<const std::uint64_t>(send_counts), recv_data, recv_counts);

    // Flattening alltoall's buckets in ascending source order must
    // reproduce alltoallv's single buffer exactly.
    std::vector<std::uint64_t> flattened;
    for (int src = 0; src < p; ++src) {
      const auto& bucket = incoming[static_cast<std::size_t>(src)];
      EXPECT_EQ(recv_counts[static_cast<std::size_t>(src)], bucket.size());
      flattened.insert(flattened.end(), bucket.begin(), bucket.end());
    }
    EXPECT_EQ(flattened, recv_data);
  });
}

TEST(Alltoallv, BufferPoolStopsAllocatingOnRepeatedRounds) {
  World world(4);
  world.run([](Comm& comm) {
    BufferPool pool;
    run_planned_round(comm, 9, 64, &pool);
    run_planned_round(comm, 9, 64, &pool);
    const std::uint64_t after_warmup = pool.allocations();
    for (int round = 0; round < 10; ++round) run_planned_round(comm, 9, 64, &pool);
    EXPECT_EQ(pool.allocations(), after_warmup)
        << "steady-state rounds must reuse pooled buffers";
  });
}

}  // namespace
