// The annotated sync wrappers (util/thread_annotations.hpp) are drop-in
// replacements for std::mutex / std::lock_guard / std::condition_variable
// — these tests pin down that the wrapping changed nothing observable:
// mutual exclusion, condvar wakeups (including timed waits), and above
// all the Mailbox blocking semantics that every driver depends on.
#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "comm/mailbox.hpp"
#include "comm/message.hpp"
#include "util/first_error.hpp"
#include "util/thread_annotations.hpp"

namespace picprk {
namespace {

using namespace std::chrono_literals;

comm::Message make_msg(int source, int tag, std::size_t bytes = 8) {
  comm::Message m;
  m.context = 0;
  m.source = source;
  m.tag = tag;
  m.payload.assign(bytes, std::byte{0});
  return m;
}

TEST(MutexWrappers, LockGuardProvidesMutualExclusion) {
  util::Mutex mutex;
  long counter = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        util::LockGuard lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(MutexWrappers, CondVarWaitWakesOnNotify) {
  util::Mutex mutex;
  util::CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    std::this_thread::sleep_for(10ms);
    util::LockGuard lock(mutex);
    ready = true;
    cv.notify_all();
  });
  {
    util::LockGuard lock(mutex);
    while (!ready) cv.wait(mutex);
    EXPECT_TRUE(ready);
  }
  waker.join();
}

TEST(MutexWrappers, CondVarWaitUntilTimesOut) {
  util::Mutex mutex;
  util::CondVar cv;
  util::LockGuard lock(mutex);
  const auto deadline = std::chrono::steady_clock::now() + 20ms;
  // Nobody notifies: the wait must return (timeout), not hang.
  while (std::chrono::steady_clock::now() < deadline) {
    cv.wait_until(mutex, deadline);
  }
  SUCCEED();
}

TEST(MutexWrappers, FirstErrorKeepsFirstAndRethrows) {
  util::FirstError err;
  EXPECT_FALSE(err.failed());
  err.record(std::make_exception_ptr(std::runtime_error("first")));
  err.record(std::make_exception_ptr(std::runtime_error("second")));
  EXPECT_TRUE(err.failed());
  try {
    err.rethrow_if_any();
    FAIL() << "must rethrow the stored error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");  // first recording wins
  }
  // Rethrowing clears the state so the owner can be reused (vpr pool
  // dispatches the next job through the same FirstError).
  EXPECT_FALSE(err.failed());
  EXPECT_EQ(err.take(), nullptr);
  err.record(std::make_exception_ptr(std::runtime_error("again")));
  EXPECT_TRUE(err.failed());
  EXPECT_NE(err.take(), nullptr);
  EXPECT_FALSE(err.failed());
}

// ----------------------------------------------------- mailbox semantics

TEST(MailboxBlocking, PopBlocksUntilPush) {
  comm::Mailbox box;
  std::atomic<bool> popped{false};
  std::thread receiver([&] {
    const comm::Message m = box.pop(0, comm::kAnySource, comm::kAnyTag, {});
    EXPECT_EQ(m.source, 3);
    EXPECT_EQ(m.tag, 7);
    popped.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(popped.load());  // genuinely blocked, not spinning through
  box.push(make_msg(/*source=*/3, /*tag=*/7));
  receiver.join();
  EXPECT_TRUE(popped.load());
}

TEST(MailboxBlocking, FifoPerSourceAndTag) {
  comm::Mailbox box;
  box.push(make_msg(1, 5, 1));
  box.push(make_msg(2, 5, 2));
  box.push(make_msg(1, 5, 3));
  // Matching (source=1, tag=5) must deliver in push order.
  EXPECT_EQ(box.pop(0, 1, 5, {}).payload.size(), 1u);
  EXPECT_EQ(box.pop(0, 1, 5, {}).payload.size(), 3u);
  // The source=2 message is untouched and still probe-able.
  const auto st = box.probe(0, comm::kAnySource, comm::kAnyTag);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->source, 2);
  EXPECT_EQ(st->bytes, 2u);
}

TEST(MailboxBlocking, DeadlineBecomesCommTimeoutWithEnvelope) {
  comm::Mailbox box;
  comm::Mailbox::WaitParams wait;
  wait.deadline = 30ms;
  try {
    box.pop(/*context=*/2, /*source=*/4, /*tag=*/9, wait);
    FAIL() << "pop must time out";
  } catch (const comm::CommTimeout& e) {
    EXPECT_EQ(e.context(), 2);
    EXPECT_EQ(e.source(), 4);
    EXPECT_EQ(e.tag(), 9);
  }
}

TEST(MailboxBlocking, AbortWakesBlockedWaiter) {
  comm::Mailbox box;
  std::atomic<bool> abort{false};
  comm::Mailbox::WaitParams wait;
  wait.abort = &abort;
  std::atomic<bool> threw{false};
  std::thread receiver([&] {
    try {
      box.pop(0, comm::kAnySource, comm::kAnyTag, wait);
    } catch (const comm::WorldAborted&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(20ms);
  abort.store(true);
  box.notify_abort();
  receiver.join();
  EXPECT_TRUE(threw.load());
}

TEST(MailboxBlocking, ProbeWaitSeesLateMessage) {
  comm::Mailbox box;
  std::thread sender([&] {
    std::this_thread::sleep_for(15ms);
    box.push(make_msg(/*source=*/6, /*tag=*/11, /*bytes=*/24));
  });
  const comm::Status st = box.probe_wait(0, 6, 11, {});
  EXPECT_EQ(st.source, 6);
  EXPECT_EQ(st.tag, 11);
  EXPECT_EQ(st.bytes, 24u);
  EXPECT_EQ(box.queued(), 1u);  // probe is non-destructive
  sender.join();
}

}  // namespace
}  // namespace picprk
