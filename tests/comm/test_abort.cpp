// Abort semantics: when one rank throws, ranks blocked anywhere — p2p
// receives or inside collectives — must be woken so the world can shut
// down cleanly and rethrow, instead of deadlocking the process.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "comm/comm.hpp"
#include "comm/world.hpp"

namespace {

using picprk::comm::Comm;
using picprk::comm::World;
using picprk::comm::WorldAborted;

TEST(Abort, WakesRankBlockedInBarrier) {
  World world(3);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 0) throw std::runtime_error("rank 0 died");
    comm.barrier();  // ranks 1, 2 would block forever without the abort
  }),
               std::runtime_error);
}

TEST(Abort, WakesRankBlockedInAllreduce) {
  World world(4);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 2) throw std::logic_error("rank 2 died");
    (void)comm.allreduce_value<int>(1, [](int a, int b) { return a + b; });
  }),
               std::logic_error);
}

TEST(Abort, WakesRankBlockedInProbe) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 0) throw std::runtime_error("boom");
    (void)comm.probe(0, 42);
  }),
               std::runtime_error);
}

TEST(Abort, FirstExceptionWins) {
  // Both ranks throw; run() must report exactly one of them (the first)
  // and not crash.
  World world(2);
  try {
    world.run([](Comm&) { throw std::runtime_error("either"); });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "either");
  }
}

TEST(Abort, WorldIsReusableAfterAbort) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 0) throw std::runtime_error("once");
    (void)comm.recv_value<int>(0, 0);
  }),
               std::runtime_error);
  // A fresh run on the same world works (abort flag cleared). Note: a
  // correct program consumed all its messages; after an abort the ranks
  // use fresh tags, so leftovers from the aborted run cannot match.
  world.run([](Comm& comm) {
    const int sum = comm.allreduce_value<int>(1, [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, 2);
  });
}

TEST(Abort, WakesRankBlockedInSplit) {
  // Comm::split is itself a collective (allgather of color/key); a rank
  // dying mid-split must not strand the others inside it.
  World world(4);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 3) throw std::runtime_error("died before split");
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    (void)sub.allreduce_value<int>(1, [](int a, int b) { return a + b; });
  }),
               std::runtime_error);
}

TEST(Abort, WakesRankBlockedInScan) {
  World world(4);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 0) throw std::runtime_error("died before scan");
    (void)comm.scan_value<int>(comm.rank(), [](int a, int b) { return a + b; });
  }),
               std::runtime_error);
}

TEST(Abort, ResidualMessagesAreDrainedAndReported) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(7, 1, 5);  // never consumed: rank 1 dies first
      comm.send_value<int>(8, 1, 5);
      comm.barrier();
    } else {
      throw std::runtime_error("rank 1 died with mail pending");
    }
  }),
               std::runtime_error);
  EXPECT_GE(world.residual_messages(), 2u);
  // The drain means the next run starts from clean mailboxes.
  world.run([](Comm& comm) {
    const int sum = comm.allreduce_value<int>(1, [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, 2);
  });
  EXPECT_EQ(world.residual_messages(), 0u);
}

TEST(Timeout, BlockedRecvThrowsCommTimeout) {
  picprk::comm::WorldOptions options;
  options.timeout_ms = 100;
  World world(2, options);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 1) {
      (void)comm.recv_value<int>(0, 9);  // rank 0 never sends
    }
  }),
               picprk::comm::CommTimeout);
}

TEST(Timeout, DuringSplitThrowsCommTimeout) {
  // One rank never enters the split: the others' internal collectives
  // must hit the per-call deadline instead of hanging.
  picprk::comm::WorldOptions options;
  options.timeout_ms = 100;
  World world(3, options);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 2) return;  // absent from the collective
    Comm sub = comm.split(0, comm.rank());
    (void)sub.allreduce_value<int>(1, [](int a, int b) { return a + b; });
  }),
               picprk::comm::CommTimeout);
}

TEST(Timeout, CarriesBlockedEnvelopeInMessage) {
  picprk::comm::WorldOptions options;
  options.timeout_ms = 50;
  World world(2, options);
  try {
    world.run([](Comm& comm) {
      if (comm.rank() == 0) (void)comm.recv_value<int>(1, 77);
    });
    FAIL() << "expected CommTimeout";
  } catch (const picprk::comm::CommTimeout& e) {
    EXPECT_NE(std::string(e.what()).find("tag 77"), std::string::npos);
    EXPECT_EQ(e.tag(), 77);
    EXPECT_EQ(e.source(), 1);
  }
}

TEST(Deadlock, DetectorReportsAllBlockedRanks) {
  // A classic cycle: every rank receives from its left neighbor and no
  // one ever sends. With the detector on, the world must abort with a
  // DeadlockDetected naming each rank's blocked location.
  picprk::comm::WorldOptions options;
  options.deadlock_ms = 150;
  World world(3, options);
  try {
    world.run([](Comm& comm) {
      const int left = (comm.rank() + comm.size() - 1) % comm.size();
      (void)comm.recv_value<int>(left, 4);
    });
    FAIL() << "expected DeadlockDetected";
  } catch (const picprk::comm::DeadlockDetected& e) {
    const std::string report = e.what();
    EXPECT_NE(report.find("rank 0"), std::string::npos);
    EXPECT_NE(report.find("rank 1"), std::string::npos);
    EXPECT_NE(report.find("rank 2"), std::string::npos);
    EXPECT_NE(report.find("tag=4"), std::string::npos);
  }
}

TEST(Deadlock, DetectorIgnoresFinishedRanks) {
  // Ranks that returned cleanly must not count as "blocked": a world
  // where some ranks are done and the rest make progress is healthy.
  picprk::comm::WorldOptions options;
  options.deadlock_ms = 100;
  World world(3, options);
  world.run([](Comm& comm) {
    if (comm.rank() == 2) return;  // finishes immediately
    if (comm.rank() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      comm.send_value<int>(1, 1, 3);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 3), 1);
    }
  });
}

}  // namespace
