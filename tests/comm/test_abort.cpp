// Abort semantics: when one rank throws, ranks blocked anywhere — p2p
// receives or inside collectives — must be woken so the world can shut
// down cleanly and rethrow, instead of deadlocking the process.
#include <gtest/gtest.h>

#include <stdexcept>

#include "comm/comm.hpp"
#include "comm/world.hpp"

namespace {

using picprk::comm::Comm;
using picprk::comm::World;
using picprk::comm::WorldAborted;

TEST(Abort, WakesRankBlockedInBarrier) {
  World world(3);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 0) throw std::runtime_error("rank 0 died");
    comm.barrier();  // ranks 1, 2 would block forever without the abort
  }),
               std::runtime_error);
}

TEST(Abort, WakesRankBlockedInAllreduce) {
  World world(4);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 2) throw std::logic_error("rank 2 died");
    (void)comm.allreduce_value<int>(1, [](int a, int b) { return a + b; });
  }),
               std::logic_error);
}

TEST(Abort, WakesRankBlockedInProbe) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 0) throw std::runtime_error("boom");
    (void)comm.probe(0, 42);
  }),
               std::runtime_error);
}

TEST(Abort, FirstExceptionWins) {
  // Both ranks throw; run() must report exactly one of them (the first)
  // and not crash.
  World world(2);
  try {
    world.run([](Comm&) { throw std::runtime_error("either"); });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "either");
  }
}

TEST(Abort, WorldIsReusableAfterAbort) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 0) throw std::runtime_error("once");
    (void)comm.recv_value<int>(0, 0);
  }),
               std::runtime_error);
  // A fresh run on the same world works (abort flag cleared). Note: a
  // correct program consumed all its messages; after an abort the ranks
  // use fresh tags, so leftovers from the aborted run cannot match.
  world.run([](Comm& comm) {
    const int sum = comm.allreduce_value<int>(1, [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, 2);
  });
}

}  // namespace
