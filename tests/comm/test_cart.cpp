#include <gtest/gtest.h>

#include "comm/cart.hpp"
#include "util/assert.hpp"

namespace {

using picprk::comm::block_owner;
using picprk::comm::block_range;
using picprk::comm::Cart2D;
using picprk::comm::near_square_factors;

TEST(BlockRange, EvenSplit) {
  auto r0 = block_range(10, 2, 0);
  auto r1 = block_range(10, 2, 1);
  EXPECT_EQ(r0.lo, 0);
  EXPECT_EQ(r0.hi, 5);
  EXPECT_EQ(r1.lo, 5);
  EXPECT_EQ(r1.hi, 10);
}

TEST(BlockRange, RemainderGoesToFirstParts) {
  // 10 items over 3 parts: 4,3,3.
  EXPECT_EQ(block_range(10, 3, 0).count(), 4);
  EXPECT_EQ(block_range(10, 3, 1).count(), 3);
  EXPECT_EQ(block_range(10, 3, 2).count(), 3);
  EXPECT_EQ(block_range(10, 3, 2).hi, 10);
}

TEST(BlockRange, CoversWithoutGaps) {
  const std::int64_t n = 37;
  const int p = 5;
  std::int64_t expected_lo = 0;
  for (int i = 0; i < p; ++i) {
    auto r = block_range(n, p, i);
    EXPECT_EQ(r.lo, expected_lo);
    expected_lo = r.hi;
  }
  EXPECT_EQ(expected_lo, n);
}

TEST(BlockOwner, InverseOfBlockRange) {
  const std::int64_t n = 101;
  for (int p : {1, 2, 3, 7, 10, 101}) {
    for (std::int64_t v = 0; v < n; ++v) {
      const int owner = block_owner(n, p, v);
      EXPECT_TRUE(block_range(n, p, owner).contains(v))
          << "n=" << n << " p=" << p << " v=" << v;
    }
  }
}

TEST(Factors, NearSquare) {
  EXPECT_EQ(near_square_factors(1), (std::pair{1, 1}));
  EXPECT_EQ(near_square_factors(4), (std::pair{2, 2}));
  EXPECT_EQ(near_square_factors(12), (std::pair{4, 3}));
  EXPECT_EQ(near_square_factors(24), (std::pair{6, 4}));
  EXPECT_EQ(near_square_factors(7), (std::pair{7, 1}));
  EXPECT_EQ(near_square_factors(384), (std::pair{24, 16}));
}

TEST(Cart2DTest, RankCoordRoundTrip) {
  Cart2D cart(6, 4);
  for (int r = 0; r < cart.size(); ++r) {
    auto [cx, cy] = cart.coords_of(r);
    EXPECT_EQ(cart.rank_of(cx, cy), r);
  }
}

TEST(Cart2DTest, PeriodicNeighbors) {
  Cart2D cart(4, 3);
  // Right neighbor of the rightmost column wraps to column 0.
  const int r = cart.rank_of(3, 1);
  EXPECT_EQ(cart.neighbor(r, 1, 0), cart.rank_of(0, 1));
  EXPECT_EQ(cart.neighbor(r, -1, 0), cart.rank_of(2, 1));
  EXPECT_EQ(cart.neighbor(r, 0, 1), cart.rank_of(3, 2));
  EXPECT_EQ(cart.neighbor(cart.rank_of(0, 0), -1, -1), cart.rank_of(3, 2));
}

TEST(Cart2DTest, AutoFactorization) {
  Cart2D cart(24);
  EXPECT_EQ(cart.px(), 6);
  EXPECT_EQ(cart.py(), 4);
  EXPECT_EQ(cart.size(), 24);
}

TEST(Cart2DTest, InvalidInputsThrow) {
  EXPECT_THROW(Cart2D(0, 3), picprk::ContractViolation);
  Cart2D cart(2, 2);
  EXPECT_THROW(cart.rank_of(2, 0), picprk::ContractViolation);
  EXPECT_THROW(cart.coords_of(4), picprk::ContractViolation);
}

}  // namespace
