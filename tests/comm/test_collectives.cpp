#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "comm/comm.hpp"
#include "comm/world.hpp"

namespace {

using picprk::comm::Comm;
using picprk::comm::World;

// Collectives are exercised at several rank counts, including non-powers
// of two, since the binomial/dissemination algorithms branch on that.
class Collectives : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankCounts, Collectives, ::testing::Values(1, 2, 3, 4, 5, 7, 8),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST_P(Collectives, BarrierSynchronizes) {
  const int p = GetParam();
  World world(p);
  std::atomic<int> arrived{0};
  world.run([&](Comm& comm) {
    arrived.fetch_add(1);
    comm.barrier();
    // After the barrier every rank must have arrived.
    EXPECT_EQ(arrived.load(), p);
    comm.barrier();
  });
}

TEST_P(Collectives, BcastFromEveryRoot) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> data;
      if (comm.rank() == root) data = {root * 10, root * 10 + 1};
      comm.bcast(data, root);
      ASSERT_EQ(data.size(), 2u);
      EXPECT_EQ(data[0], root * 10);
      EXPECT_EQ(data[1], root * 10 + 1);
    }
  });
}

TEST_P(Collectives, ReduceSumToEveryRoot) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    for (int root = 0; root < p; ++root) {
      const std::vector<std::int64_t> mine{comm.rank() + 1, 2 * (comm.rank() + 1)};
      auto result = comm.reduce(std::span<const std::int64_t>(mine),
                                [](std::int64_t a, std::int64_t b) { return a + b; }, root);
      const std::int64_t expected = static_cast<std::int64_t>(p) * (p + 1) / 2;
      if (comm.rank() == root) {
        ASSERT_EQ(result.size(), 2u);
        EXPECT_EQ(result[0], expected);
        EXPECT_EQ(result[1], 2 * expected);
      } else {
        EXPECT_TRUE(result.empty());
      }
    }
  });
}

TEST_P(Collectives, AllreduceSumAndMax) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    const std::int64_t expected_sum = static_cast<std::int64_t>(p) * (p - 1) / 2;
    const auto sum = comm.allreduce_value<std::int64_t>(
        comm.rank(), [](std::int64_t a, std::int64_t b) { return a + b; });
    EXPECT_EQ(sum, expected_sum);

    const auto mx = comm.allreduce_value<std::int64_t>(
        comm.rank(), [](std::int64_t a, std::int64_t b) { return a > b ? a : b; });
    EXPECT_EQ(mx, p - 1);
  });
}

TEST_P(Collectives, GatherVariableLengths) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    // Rank r contributes r elements (rank 0 contributes none).
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()), comm.rank());
    auto gathered = comm.gather(std::span<const int>(mine), 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(gathered[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r));
        for (int v : gathered[static_cast<std::size_t>(r)]) EXPECT_EQ(v, r);
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
}

TEST_P(Collectives, AllgatherEveryRankSeesAll) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    std::vector<int> mine{comm.rank(), comm.rank() * 2};
    auto all = comm.allgather(std::span<const int>(mine));
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r)].size(), 2u);
      EXPECT_EQ(all[static_cast<std::size_t>(r)][0], r);
      EXPECT_EQ(all[static_cast<std::size_t>(r)][1], r * 2);
    }
  });
}

TEST_P(Collectives, AllgatherValue) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    auto all = comm.allgather_value<std::uint64_t>(
        static_cast<std::uint64_t>(comm.rank() * comm.rank()));
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)],
                static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(r));
    }
  });
}

TEST_P(Collectives, AlltoallVariableExchange) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    // Rank r sends to rank d a vector [r*100+d] repeated (d+1) times.
    std::vector<std::vector<int>> out(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      out[static_cast<std::size_t>(d)].assign(static_cast<std::size_t>(d + 1),
                                              comm.rank() * 100 + d);
    }
    auto in = comm.alltoall(out);
    ASSERT_EQ(in.size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
      const auto& v = in[static_cast<std::size_t>(s)];
      ASSERT_EQ(v.size(), static_cast<std::size_t>(comm.rank() + 1));
      for (int val : v) EXPECT_EQ(val, s * 100 + comm.rank());
    }
  });
}

TEST_P(Collectives, RepeatedCollectivesStaySequenced) {
  const int p = GetParam();
  World world(p);
  world.run([](Comm& comm) {
    for (int iter = 0; iter < 20; ++iter) {
      const auto sum = comm.allreduce_value<int>(
          iter, [](int a, int b) { return a + b; });
      EXPECT_EQ(sum, iter * comm.size());
      comm.barrier();
    }
  });
}

TEST(CollectivesEdge, SingleRankCollectivesAreIdentity) {
  World world(1);
  world.run([](Comm& comm) {
    comm.barrier();
    std::vector<int> data{1, 2, 3};
    comm.bcast(data, 0);
    EXPECT_EQ(data.size(), 3u);
    const auto sum = comm.allreduce_value<int>(7, [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, 7);
    auto all = comm.allgather_value<int>(9);
    EXPECT_EQ(all, std::vector<int>{9});
  });
}

}  // namespace
