#include <gtest/gtest.h>

#include <vector>

#include "comm/comm.hpp"
#include "comm/world.hpp"

namespace {

using picprk::comm::Comm;
using picprk::comm::World;

TEST(Split, RowsOfAProcessGrid) {
  // 6 ranks as a 3x2 grid; split into rows (color = y) — the pattern the
  // two-phase diffusion load balancer uses for its per-row reductions.
  World world(6);
  world.run([](Comm& comm) {
    const int px = 3;
    const int cx = comm.rank() % px;
    const int cy = comm.rank() / px;
    Comm row = comm.split(cy, cx);
    EXPECT_EQ(row.size(), 3);
    EXPECT_EQ(row.rank(), cx);
    // Sum of x-coordinates within a row is 0+1+2.
    const int sum = row.allreduce_value<int>(cx, [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, 3);
  });
}

TEST(Split, ColumnsCommunicateIndependently) {
  World world(4);
  world.run([](Comm& comm) {
    const int color = comm.rank() % 2;
    Comm sub = comm.split(color, comm.rank());
    EXPECT_EQ(sub.size(), 2);
    // Ping-pong within each sub-communicator using the same tags; the
    // contexts must keep them separate.
    if (sub.rank() == 0) {
      sub.send_value(color * 1000, 1, 0);
    } else {
      EXPECT_EQ(sub.recv_value<int>(0, 0), color * 1000);
    }
  });
}

TEST(Split, KeyOrdersRanks) {
  World world(4);
  world.run([](Comm& comm) {
    // All in one color, keys reverse the order.
    Comm sub = comm.split(0, -comm.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), 3 - comm.rank());
  });
}

TEST(Split, SingletonGroups) {
  World world(3);
  world.run([](Comm& comm) {
    Comm sub = comm.split(comm.rank(), 0);
    EXPECT_EQ(sub.size(), 1);
    EXPECT_EQ(sub.rank(), 0);
    // Collectives on singleton comms work.
    EXPECT_EQ(sub.allreduce_value<int>(41, [](int a, int b) { return a + b; }), 41);
  });
}

TEST(Split, NestedSplits) {
  World world(8);
  world.run([](Comm& comm) {
    Comm half = comm.split(comm.rank() / 4, comm.rank());
    EXPECT_EQ(half.size(), 4);
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    const int sum =
        quarter.allreduce_value<int>(1, [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, 2);
  });
}

TEST(Split, ParentStillUsableAfterSplit) {
  World world(4);
  world.run([](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    (void)sub;
    const int sum = comm.allreduce_value<int>(1, [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, 4);
  });
}

}  // namespace
