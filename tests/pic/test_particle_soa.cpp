// The SoA particle store: the X-macro single-definition contract
// (columns, pack/unpack and PUP all derive from PICPRK_PARTICLE_FIELDS),
// the row-mutation primitives the exchange and tiling layers build on,
// and the wire-format PUP staging.
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "pic/init.hpp"
#include "pic/particle.hpp"
#include "vpr/pup.hpp"

namespace {

using namespace picprk;
using pic::Particle;
using pic::ParticleSoA;

Particle make_particle(std::uint64_t id) {
  Particle p;
  p.x = 0.25 * static_cast<double>(id);
  p.y = 0.50 * static_cast<double>(id);
  p.vx = 1.0 + static_cast<double>(id);
  p.vy = 2.0 + static_cast<double>(id);
  p.q = static_cast<double>(id % 2 == 0 ? 3 : -3);
  p.x0 = p.x;
  p.y0 = p.y;
  p.k = static_cast<std::int32_t>(id % 4);
  p.m = static_cast<std::int32_t>(id % 3);
  p.dir = id % 2 == 0 ? 1 : -1;
  p.birth = static_cast<std::uint32_t>(id % 7);
  p.id = id;
  return p;
}

std::vector<Particle> make_particles(std::size_t n) {
  std::vector<Particle> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(make_particle(i + 1));
  return out;
}

void expect_equal(const Particle& a, const Particle& b) {
#define PICPRK_FIELD(type, name, init) EXPECT_EQ(a.name, b.name) << #name;
  PICPRK_PARTICLE_FIELDS(PICPRK_FIELD)
#undef PICPRK_FIELD
}

TEST(ParticleSoA, WireRecordIs80BytesWithNoPadding) {
  // The exchange and VP-migration buffers assume this layout; the
  // X-macro completeness static_asserts in particle.hpp enforce it at
  // compile time — this test just pins the numbers visibly.
  EXPECT_EQ(sizeof(Particle), 80u);
  EXPECT_TRUE(std::is_trivially_copyable_v<Particle>);
}

TEST(ParticleSoA, RoundTripsEveryFieldThroughBothLayouts) {
  const std::vector<Particle> aos = make_particles(37);
  const ParticleSoA soa = pic::to_soa(aos);
  ASSERT_EQ(soa.size(), aos.size());
  // Columns hold the per-field values in row order.
  for (std::size_t i = 0; i < aos.size(); ++i) {
    EXPECT_EQ(soa.x[i], aos[i].x);
    EXPECT_EQ(soa.id[i], aos[i].id);
    expect_equal(soa.get(i), aos[i]);
  }
  const std::vector<Particle> back = pic::to_aos(soa);
  ASSERT_EQ(back.size(), aos.size());
  for (std::size_t i = 0; i < aos.size(); ++i) expect_equal(back[i], aos[i]);
}

TEST(ParticleSoA, SetOverwritesOneRow) {
  ParticleSoA soa = pic::to_soa(make_particles(5));
  const Particle p = make_particle(99);
  soa.set(2, p);
  expect_equal(soa.get(2), p);
  expect_equal(soa.get(1), make_particle(2));  // neighbours untouched
  expect_equal(soa.get(3), make_particle(4));
}

TEST(ParticleSoA, SwapRemoveKeepsAllColumnsInLockstep) {
  ParticleSoA soa = pic::to_soa(make_particles(6));
  soa.swap_remove(1);  // row 6 moves into slot 1
  ASSERT_EQ(soa.size(), 5u);
  expect_equal(soa.get(1), make_particle(6));
  expect_equal(soa.get(0), make_particle(1));
  expect_equal(soa.get(4), make_particle(5));
}

TEST(ParticleSoA, MoveRowAndTruncateImplementStableCompaction) {
  // Drop the even ids the way the exchange drops emigrants: stable
  // keeper compaction via move_row + truncate.
  ParticleSoA soa = pic::to_soa(make_particles(10));
  std::size_t w = 0;
  for (std::size_t i = 0; i < soa.size(); ++i) {
    if (soa.id[i] % 2 == 0) continue;
    soa.move_row(w, i);
    ++w;
  }
  soa.truncate(w);
  ASSERT_EQ(soa.size(), 5u);
  for (std::size_t i = 0; i < soa.size(); ++i) {
    expect_equal(soa.get(i), make_particle(2 * i + 1));  // order preserved
  }
}

TEST(ParticleSoA, AppendAndAssignRebuildFromWireRecords) {
  ParticleSoA soa = pic::to_soa(make_particles(3));
  const std::vector<Particle> extra = {make_particle(50), make_particle(51)};
  soa.append(std::span<const Particle>(extra));
  ASSERT_EQ(soa.size(), 5u);
  expect_equal(soa.get(3), make_particle(50));

  const std::vector<Particle> fresh = make_particles(2);
  soa.assign(std::span<const Particle>(fresh));
  ASSERT_EQ(soa.size(), 2u);
  expect_equal(soa.get(0), make_particle(1));
  expect_equal(soa.get(1), make_particle(2));
}

TEST(ParticleSoA, ReserveRaisesCapacityOfEveryColumn) {
  ParticleSoA soa;
  soa.reserve(128);
  EXPECT_GE(soa.capacity(), 128u);
  EXPECT_GE(soa.vy.capacity(), 128u);
  EXPECT_GE(soa.id.capacity(), 128u);
  EXPECT_TRUE(soa.empty());
}

TEST(ParticleSoA, PupRoundTripsThroughTheAosWireFormat) {
  ParticleSoA original = pic::to_soa(make_particles(21));
  std::vector<std::byte> packed = vpr::pup_pack(original);
  // The payload is the same length-prefixed run of 80-byte records a
  // plain std::vector<Particle> pup produces — layout cannot leak into
  // the migration wire format.
  std::vector<Particle> wire = pic::to_aos(original);
  vpr::Pup sizer(vpr::Pup::Mode::Size);
  sizer(wire);
  EXPECT_EQ(packed.size(), sizer.bytes());

  ParticleSoA restored;
  vpr::pup_unpack(restored, std::move(packed));
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    expect_equal(restored.get(i), original.get(i));
  }
}

TEST(ParticleSoA, PupOfEmptyStoreIsJustTheLengthPrefix) {
  ParticleSoA empty;
  std::vector<std::byte> packed = vpr::pup_pack(empty);
  EXPECT_EQ(packed.size(), sizeof(std::uint64_t));
  ParticleSoA restored = pic::to_soa(make_particles(4));
  vpr::pup_unpack(restored, std::move(packed));
  EXPECT_TRUE(restored.empty());
}

}  // namespace
