#include <gtest/gtest.h>

#include <set>

#include "pic/events.hpp"

namespace {

using picprk::pic::CellRegion;
using picprk::pic::EventSchedule;
using picprk::pic::GridSpec;
using picprk::pic::InitParams;
using picprk::pic::Initializer;
using picprk::pic::InjectionEvent;
using picprk::pic::Particle;
using picprk::pic::RemovalEvent;
using picprk::pic::Uniform;

Initializer make_init(std::int64_t cells = 20, std::uint64_t n = 1000) {
  InitParams p;
  p.grid = GridSpec(cells, 1.0);
  p.total_particles = n;
  p.distribution = Uniform{};
  return Initializer(p);
}

TEST(Injection, TotalNearRequested) {
  const auto init = make_init();
  EventSchedule events({InjectionEvent{3, CellRegion{5, 15, 5, 15}, 500}}, {});
  const auto total = events.injection_total(init, 0);
  EXPECT_NEAR(static_cast<double>(total), 500.0, 60.0);
}

TEST(Injection, IdsContinueAfterInitialPopulation) {
  const auto init = make_init();
  EventSchedule events({InjectionEvent{3, CellRegion{0, 20, 0, 20}, 100}}, {});
  EXPECT_EQ(events.injection_first_id(init, 0), init.total() + 1);
}

TEST(Injection, SecondEventIdsFollowFirst) {
  const auto init = make_init();
  EventSchedule events({InjectionEvent{3, CellRegion{0, 10, 0, 10}, 100},
                        InjectionEvent{7, CellRegion{10, 20, 0, 10}, 100}},
                       {});
  EXPECT_EQ(events.injection_first_id(init, 1),
            init.total() + 1 + events.injection_total(init, 0));
}

TEST(Injection, BlockDecompositionPartitionsExactly) {
  const auto init = make_init();
  EventSchedule events({InjectionEvent{2, CellRegion{3, 17, 2, 18}, 700}}, {});

  std::vector<Particle> whole;
  events.emplace_injection_block(init, 0, 0, 20, 0, 20, whole);

  std::vector<Particle> pieces;
  for (std::int64_t bx = 0; bx < 2; ++bx) {
    for (std::int64_t by = 0; by < 2; ++by) {
      events.emplace_injection_block(init, 0, bx * 10, (bx + 1) * 10, by * 10,
                                     (by + 1) * 10, pieces);
    }
  }
  ASSERT_EQ(pieces.size(), whole.size());
  std::set<std::uint64_t> whole_ids, piece_ids;
  for (const auto& p : whole) whole_ids.insert(p.id);
  for (const auto& p : pieces) piece_ids.insert(p.id);
  EXPECT_EQ(whole_ids, piece_ids);
}

TEST(Injection, ParticlesLandInsideRegion) {
  const auto init = make_init();
  const CellRegion region{4, 8, 10, 14};
  EventSchedule events({InjectionEvent{1, region, 300}}, {});
  std::vector<Particle> out;
  events.emplace_injection_block(init, 0, 0, 20, 0, 20, out);
  for (const auto& p : out) {
    EXPECT_GE(p.x, 4.0);
    EXPECT_LT(p.x, 8.0);
    EXPECT_GE(p.y, 10.0);
    EXPECT_LT(p.y, 14.0);
    EXPECT_EQ(p.birth, 1u);
  }
}

TEST(Removal, DeterministicPerId) {
  const auto init = make_init();
  EventSchedule events({}, {RemovalEvent{5, CellRegion{0, 20, 0, 20}, 0.5}});
  for (std::uint64_t id = 1; id <= 100; ++id) {
    EXPECT_EQ(events.removes(init, 0, id), events.removes(init, 0, id));
  }
}

TEST(Removal, FractionZeroRemovesNothingFractionOneRemovesAll) {
  const auto init = make_init();
  EventSchedule none({}, {RemovalEvent{0, CellRegion{0, 20, 0, 20}, 0.0}});
  EventSchedule all({}, {RemovalEvent{0, CellRegion{0, 20, 0, 20}, 1.0}});
  auto particles = init.create_all();
  const auto n = particles.size();
  auto copy = particles;
  EXPECT_EQ(none.apply_step(init, 0, 0, 20, 0, 20, copy), 0);
  EXPECT_EQ(copy.size(), n);
  EXPECT_EQ(all.apply_step(init, 0, 0, 20, 0, 20, particles),
            -static_cast<std::int64_t>(n));
  EXPECT_TRUE(particles.empty());
}

TEST(Removal, OnlyInsideRegion) {
  const auto init = make_init();
  EventSchedule events({}, {RemovalEvent{0, CellRegion{0, 10, 0, 20}, 1.0}});
  auto particles = init.create_all();
  events.apply_step(init, 0, 0, 20, 0, 20, particles);
  for (const auto& p : particles) EXPECT_GE(p.x, 10.0);
}

TEST(ApplyStep, OnlyFiresAtScheduledStep) {
  const auto init = make_init();
  EventSchedule events({InjectionEvent{4, CellRegion{0, 20, 0, 20}, 100}},
                       {RemovalEvent{6, CellRegion{0, 20, 0, 20}, 1.0}});
  auto particles = init.create_all();
  EXPECT_EQ(events.apply_step(init, 3, 0, 20, 0, 20, particles), 0);
  const auto delta4 = events.apply_step(init, 4, 0, 20, 0, 20, particles);
  EXPECT_GT(delta4, 0);
  EXPECT_EQ(events.apply_step(init, 5, 0, 20, 0, 20, particles), 0);
  const auto delta6 = events.apply_step(init, 6, 0, 20, 0, 20, particles);
  EXPECT_EQ(particles.size(), 0u);
  EXPECT_LT(delta6, 0);
}

TEST(ApplyStep, RemovalDecisionIndependentOfDecomposition) {
  // Remove 50% over a region; applying per block must remove exactly the
  // same ids as applying to the whole domain.
  const auto init = make_init();
  EventSchedule events({}, {RemovalEvent{0, CellRegion{0, 20, 0, 20}, 0.5}});
  auto whole = init.create_all();
  events.apply_step(init, 0, 0, 20, 0, 20, whole);
  std::set<std::uint64_t> whole_ids;
  for (const auto& p : whole) whole_ids.insert(p.id);

  std::set<std::uint64_t> piece_ids;
  for (std::int64_t bx = 0; bx < 4; ++bx) {
    auto block = init.create_block(bx * 5, (bx + 1) * 5, 0, 20);
    events.apply_step(init, 0, bx * 5, (bx + 1) * 5, 0, 20, block);
    for (const auto& p : block) piece_ids.insert(p.id);
  }
  EXPECT_EQ(whole_ids, piece_ids);
}

}  // namespace
