// The cell tile index over the SoA store: the counting-sort rebuild
// (stability, exact-once coverage, out-of-region tail), the post-move
// revalidation that replaces per-step re-sorts, and the range compaction
// that keeps the index alive through particle exchanges.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "pic/geometry.hpp"
#include "pic/particle.hpp"
#include "pic/tiling.hpp"

namespace {

using namespace picprk;
using pic::CellRegion;
using pic::GridSpec;
using pic::Particle;
using pic::ParticleSoA;
using pic::TileIndex;

constexpr std::int64_t kCells = 16;
const GridSpec kGrid(kCells, 1.0);

/// A particle centred in cell (cx, cy) with a distinguishing id.
Particle in_cell(std::int64_t cx, std::int64_t cy, std::uint64_t id) {
  Particle p;
  p.x = (static_cast<double>(cx) + 0.5) * kGrid.h;
  p.y = (static_cast<double>(cy) + 0.5) * kGrid.h;
  p.id = id;
  return p;
}

/// Deterministic pseudo-random population over `region` (and a few
/// strays outside it when `with_strays`).
ParticleSoA populate(const CellRegion& region, std::size_t n, bool with_strays) {
  std::vector<Particle> aos;
  aos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t cx = region.x0 + static_cast<std::int64_t>((i * 7 + 3) %
                                static_cast<std::size_t>(region.width()));
    const std::int64_t cy = region.y0 + static_cast<std::int64_t>((i * 5 + 1) %
                                static_cast<std::size_t>(region.height()));
    aos.push_back(in_cell(cx, cy, i + 1));
  }
  if (with_strays) {
    aos.push_back(in_cell((region.x1 + 1) % kCells, region.y0, n + 1));
    aos.push_back(in_cell(region.x0, (region.y1 + 2) % kCells, n + 2));
  }
  return pic::to_soa(aos);
}

TEST(TileIndex, RebuildIndexesEveryRowExactlyOnce) {
  const CellRegion region{2, 10, 4, 12};
  ParticleSoA soa = populate(region, 200, /*with_strays=*/true);
  TileIndex tiles(region);
  EXPECT_FALSE(tiles.fresh());

  tiles.rebuild(soa, kGrid);
  ASSERT_TRUE(tiles.fresh());
  EXPECT_TRUE(tiles.check(soa, kGrid));

  // Tiles partition [0, tail_begin()) and the two strays fill the tail.
  std::size_t covered = 0;
  for (const TileIndex::Tile& t : tiles.tiles()) {
    EXPECT_EQ(t.begin, covered);
    EXPECT_GT(t.end, t.begin);
    EXPECT_TRUE(region.contains_cell(t.cx, t.cy));
    covered = t.end;
  }
  EXPECT_EQ(covered, tiles.tail_begin());
  EXPECT_EQ(soa.size() - tiles.tail_begin(), 2u);

  // Every id survives the permutation exactly once.
  std::vector<std::uint64_t> ids(soa.id);
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i + 1);
}

TEST(TileIndex, RebuildIsStableWithinACell) {
  // Three particles share a cell; the counting sort must keep their
  // original relative order (ordering is what makes the tiled mover
  // bit-identical to the flat one).
  std::vector<Particle> aos = {in_cell(5, 5, 10), in_cell(3, 3, 11), in_cell(5, 5, 12),
                               in_cell(3, 3, 13), in_cell(5, 5, 14)};
  ParticleSoA soa = pic::to_soa(aos);
  TileIndex tiles(CellRegion{0, kCells, 0, kCells});
  tiles.rebuild(soa, kGrid);

  std::map<std::pair<std::int64_t, std::int64_t>, std::vector<std::uint64_t>> by_cell;
  for (const TileIndex::Tile& t : tiles.tiles()) {
    for (std::size_t i = t.begin; i < t.end; ++i) {
      by_cell[{t.cx, t.cy}].push_back(soa.id[i]);
    }
  }
  EXPECT_EQ((by_cell[{3, 3}]), (std::vector<std::uint64_t>{11, 13}));
  EXPECT_EQ((by_cell[{5, 5}]), (std::vector<std::uint64_t>{10, 12, 14}));
}

TEST(TileIndex, RevalidateAfterUniformDriftKeepsIndexFresh) {
  const CellRegion region{0, kCells, 0, kCells};
  ParticleSoA soa = populate(region, 150, /*with_strays=*/false);
  TileIndex tiles(region);
  tiles.rebuild(soa, kGrid);

  // Shift every particle by exactly one cell in x (with periodic wrap):
  // each tile lands intact in a new cell — no re-sort needed.
  for (std::size_t i = 0; i < soa.size(); ++i) {
    soa.x[i] = pic::wrap(soa.x[i] + kGrid.h, kGrid.length());
  }
  EXPECT_TRUE(tiles.revalidate_after_move(soa, kGrid));
  EXPECT_TRUE(tiles.fresh());
  EXPECT_TRUE(tiles.check(soa, kGrid));
}

TEST(TileIndex, RevalidateDetectsAScatteredTileAndMarksDirty) {
  std::vector<Particle> aos = {in_cell(4, 4, 1), in_cell(4, 4, 2), in_cell(4, 4, 3)};
  ParticleSoA soa = pic::to_soa(aos);
  TileIndex tiles(CellRegion{0, kCells, 0, kCells});
  tiles.rebuild(soa, kGrid);

  soa.x[1] += 2.0 * kGrid.h;  // one member leaves; the tile scattered
  EXPECT_FALSE(tiles.revalidate_after_move(soa, kGrid));
  EXPECT_FALSE(tiles.fresh());
  EXPECT_FALSE(tiles.check(soa, kGrid));
}

TEST(TileIndex, CompactRangesSurvivesAStableKeeperCompaction) {
  const CellRegion region{0, 8, 0, 8};
  ParticleSoA soa = populate(region, 120, /*with_strays=*/false);
  TileIndex tiles(region);
  tiles.rebuild(soa, kGrid);

  // Every third row "emigrates" (owner 1); keepers compact stably the
  // way the exchange does it.
  const std::size_t n = soa.size();
  std::vector<int> owner(n, 0);
  for (std::size_t i = 0; i < n; i += 3) owner[i] = 1;
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (owner[i] != 0) continue;
    soa.move_row(w, i);
    ++w;
  }
  soa.truncate(w);
  tiles.compact_ranges(std::span<const int>(owner), 0);

  EXPECT_TRUE(tiles.fresh());
  EXPECT_TRUE(tiles.check(soa, kGrid));
  EXPECT_EQ(tiles.tail_begin(), soa.size());
  for (const TileIndex::Tile& t : tiles.tiles()) EXPECT_GT(t.end, t.begin);
}

TEST(TileIndex, AppendedRowsLandInTheTailWithoutDirtyingTheIndex) {
  const CellRegion region{0, kCells, 0, kCells};
  ParticleSoA soa = populate(region, 100, /*with_strays=*/false);
  TileIndex tiles(region);
  tiles.rebuild(soa, kGrid);
  EXPECT_DOUBLE_EQ(tiles.tail_fraction(soa), 0.0);

  const std::vector<Particle> immigrants = {in_cell(1, 1, 900), in_cell(2, 2, 901)};
  soa.append(std::span<const Particle>(immigrants));
  EXPECT_TRUE(tiles.fresh());
  EXPECT_TRUE(tiles.check(soa, kGrid));
  EXPECT_NEAR(tiles.tail_fraction(soa), 2.0 / 102.0, 1e-12);
}

TEST(TileIndex, DegenerateRegionFallsBackToAnAllTailIndex) {
  // A region far larger than the population: bucketing would cost more
  // than tiling saves, so everything stays in the (flat-moved) tail —
  // still a valid, fresh index.
  const GridSpec big(1 << 13, 1.0);
  const CellRegion region{0, big.cells, 0, big.cells};
  std::vector<Particle> aos;
  for (std::uint64_t i = 0; i < 10; ++i) {
    Particle p;
    p.x = 0.5 * big.h * static_cast<double>(2 * i + 1);
    p.y = p.x;
    p.id = i + 1;
    aos.push_back(p);
  }
  ParticleSoA soa = pic::to_soa(aos);
  TileIndex tiles(region);
  tiles.rebuild(soa, big);
  EXPECT_TRUE(tiles.fresh());
  EXPECT_TRUE(tiles.tiles().empty());
  EXPECT_EQ(tiles.tail_begin(), 0u);
  EXPECT_TRUE(tiles.check(soa, big));
}

TEST(TileIndex, ResetRegionRetargetsAndDirties) {
  const CellRegion region{0, 8, 0, 8};
  ParticleSoA soa = populate(region, 50, /*with_strays=*/false);
  TileIndex tiles(region);
  tiles.rebuild(soa, kGrid);
  ASSERT_TRUE(tiles.fresh());

  const CellRegion moved{4, 12, 0, 8};
  tiles.reset_region(moved);
  EXPECT_FALSE(tiles.fresh());
  tiles.rebuild(soa, kGrid);
  EXPECT_TRUE(tiles.fresh());
  EXPECT_TRUE(tiles.check(soa, kGrid));
  // Rows in cells [0,4)×... now sit in the tail of the new region.
  for (const TileIndex::Tile& t : tiles.tiles()) {
    EXPECT_TRUE(moved.contains_cell(t.cx, t.cy));
  }
}

}  // namespace
