#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "pic/init.hpp"

namespace {

using picprk::pic::ChargeSign;
using picprk::pic::Distribution;
using picprk::pic::Geometric;
using picprk::pic::GridSpec;
using picprk::pic::InitParams;
using picprk::pic::Initializer;
using picprk::pic::Linear;
using picprk::pic::Patch;
using picprk::pic::Particle;
using picprk::pic::Sinusoidal;
using picprk::pic::Uniform;

InitParams base_params(std::int64_t cells, std::uint64_t n, Distribution dist) {
  InitParams p;
  p.grid = GridSpec(cells, 1.0);
  p.total_particles = n;
  p.distribution = dist;
  return p;
}

TEST(InitializerTest, TotalNearRequest) {
  const Initializer init(base_params(100, 50000, Uniform{}));
  // Stochastic rounding keeps the realised total within a few hundred of
  // the request for 10k cells.
  EXPECT_NEAR(static_cast<double>(init.total()), 50000.0, 500.0);
}

TEST(InitializerTest, SerialCreateMatchesTotals) {
  const Initializer init(base_params(50, 5000, Geometric{0.95}));
  const auto particles = init.create_all();
  EXPECT_EQ(particles.size(), init.total());
}

TEST(InitializerTest, IdsAreUniqueAndContiguous) {
  const Initializer init(base_params(40, 2000, Uniform{}));
  const auto particles = init.create_all();
  std::set<std::uint64_t> ids;
  for (const auto& p : particles) ids.insert(p.id);
  EXPECT_EQ(ids.size(), particles.size());
  EXPECT_EQ(*ids.begin(), 1u);
  EXPECT_EQ(*ids.rbegin(), particles.size());
}

TEST(InitializerTest, BlockDecompositionIsExactPartition) {
  // The determinism contract: any tiling of the grid reproduces exactly
  // the serial particle set, ids included.
  const Initializer init(base_params(24, 3000, Geometric{0.9}));
  const auto serial = init.create_all();

  std::map<std::uint64_t, Particle> by_id;
  for (const auto& p : serial) by_id[p.id] = p;

  std::size_t total = 0;
  for (std::int64_t bx = 0; bx < 3; ++bx) {
    for (std::int64_t by = 0; by < 2; ++by) {
      const auto block = init.create_block(bx * 8, (bx + 1) * 8, by * 12, (by + 1) * 12);
      total += block.size();
      for (const auto& p : block) {
        auto it = by_id.find(p.id);
        ASSERT_NE(it, by_id.end()) << "block produced unknown id " << p.id;
        EXPECT_DOUBLE_EQ(p.x, it->second.x);
        EXPECT_DOUBLE_EQ(p.y, it->second.y);
        EXPECT_DOUBLE_EQ(p.q, it->second.q);
        EXPECT_EQ(p.dir, it->second.dir);
      }
    }
  }
  EXPECT_EQ(total, serial.size());
}

TEST(InitializerTest, GeometricSkewsLeft) {
  // With r < 1 the left half holds more particles than the right half.
  const Initializer init(base_params(100, 20000, Geometric{0.9}));
  std::uint64_t left = 0, right = 0;
  for (std::int64_t cx = 0; cx < 50; ++cx) left += init.column_total(cx);
  for (std::int64_t cx = 50; cx < 100; ++cx) right += init.column_total(cx);
  EXPECT_GT(left, right * 10);
}

TEST(InitializerTest, GeometricColumnRatioMatchesEq8) {
  // Eq. 8: particles per block column form a geometric series with ratio
  // r^(c/P). Use expectation values to avoid rounding noise.
  InitParams params = base_params(64, 100000, Geometric{0.95});
  const Initializer init(params);
  double block0 = 0, block1 = 0;
  for (std::int64_t cx = 0; cx < 16; ++cx)
    block0 += init.expected_in_cell(cx, 0) * 64.0;
  for (std::int64_t cx = 16; cx < 32; ++cx)
    block1 += init.expected_in_cell(cx, 0) * 64.0;
  EXPECT_NEAR(block1 / block0, std::pow(0.95, 16.0), 1e-9);
}

TEST(InitializerTest, UniformIsFlat) {
  const Initializer init(base_params(60, 36000, Uniform{}));
  for (std::int64_t cx = 0; cx < 60; ++cx) {
    EXPECT_NEAR(init.expected_in_cell(cx, 0), 10.0, 1e-12);
  }
}

TEST(InitializerTest, GeometricREqualOneDegeneratesToUniform) {
  const Initializer uni(base_params(60, 36000, Uniform{}));
  const Initializer geo(base_params(60, 36000, Geometric{1.0}));
  for (std::int64_t cx = 0; cx < 60; ++cx) {
    EXPECT_DOUBLE_EQ(uni.expected_in_cell(cx, 0), geo.expected_in_cell(cx, 0));
  }
}

TEST(InitializerTest, SinusoidalPeaksAtEdges) {
  const Initializer init(base_params(100, 100000, Sinusoidal{}));
  // cos(0) = 1 at i = 0 and cos(2π) = 1 at i = c−1; trough at the middle.
  EXPECT_GT(init.expected_in_cell(0, 0), init.expected_in_cell(50, 0) * 10);
  EXPECT_NEAR(init.expected_in_cell(0, 0), init.expected_in_cell(99, 0), 1e-9);
}

TEST(InitializerTest, LinearDecreases) {
  const Initializer init(base_params(100, 100000, Linear{1.0, 1.0}));
  EXPECT_GT(init.expected_in_cell(0, 0), init.expected_in_cell(80, 0));
  // With alpha = beta the density hits ~0 at the right edge.
  EXPECT_NEAR(init.expected_in_cell(99, 0), 0.0, 1e-9);
}

TEST(InitializerTest, PatchConfinesParticles) {
  InitParams params = base_params(40, 5000, Patch{{10, 20, 5, 15}});
  const Initializer init(params);
  const auto particles = init.create_all();
  EXPECT_EQ(particles.size(), init.total());
  for (const auto& p : particles) {
    EXPECT_GE(p.x, 10.0);
    EXPECT_LT(p.x, 20.0);
    EXPECT_GE(p.y, 5.0);
    EXPECT_LT(p.y, 15.0);
  }
}

TEST(InitializerTest, ParticlesSitOnCellCenters) {
  const Initializer init(base_params(20, 500, Uniform{}));
  for (const auto& p : init.create_all()) {
    EXPECT_DOUBLE_EQ(p.x - std::floor(p.x), 0.5);
    EXPECT_DOUBLE_EQ(p.y - std::floor(p.y), 0.5);
    EXPECT_DOUBLE_EQ(p.x, p.x0);
    EXPECT_DOUBLE_EQ(p.y, p.y0);
  }
}

TEST(InitializerTest, ChargeSignFollowsColumnParity) {
  InitParams params = base_params(20, 2000, Uniform{});
  params.sign = ChargeSign::DriftRight;
  const Initializer init(params);
  for (const auto& p : init.create_all()) {
    const auto cx = static_cast<std::int64_t>(std::floor(p.x));
    if (cx % 2 == 0) {
      EXPECT_GT(p.q, 0.0);
    } else {
      EXPECT_LT(p.q, 0.0);
    }
    EXPECT_EQ(p.dir, 1);
  }
}

TEST(InitializerTest, DriftLeftFlipsSignsAndDir) {
  InitParams params = base_params(20, 1000, Uniform{});
  params.sign = ChargeSign::DriftLeft;
  const Initializer init(params);
  for (const auto& p : init.create_all()) {
    const auto cx = static_cast<std::int64_t>(std::floor(p.x));
    if (cx % 2 == 0) {
      EXPECT_LT(p.q, 0.0);
    } else {
      EXPECT_GT(p.q, 0.0);
    }
    EXPECT_EQ(p.dir, -1);
  }
}

TEST(InitializerTest, RandomSignMixesDirections) {
  InitParams params = base_params(20, 4000, Uniform{});
  params.sign = ChargeSign::Random;
  const Initializer init(params);
  int left = 0, right = 0;
  for (const auto& p : init.create_all()) (p.dir > 0 ? right : left)++;
  EXPECT_GT(left, 0);
  EXPECT_GT(right, 0);
}

TEST(InitializerTest, VelocityFollowsEq4) {
  InitParams params = base_params(20, 500, Uniform{});
  params.m = 3;
  const Initializer init(params);
  for (const auto& p : init.create_all()) {
    EXPECT_DOUBLE_EQ(p.vy, 3.0);
    EXPECT_DOUBLE_EQ(p.vx, 0.0);
  }
}

TEST(InitializerTest, ChargeMagnitudeFollowsEq3WithK) {
  InitParams params = base_params(20, 500, Uniform{});
  params.k = 2;
  const Initializer init(params);
  const double expect = 5.0 * picprk::pic::charge_base();
  for (const auto& p : init.create_all()) {
    EXPECT_NEAR(std::fabs(p.q), expect, 1e-15);
  }
}

TEST(InitializerTest, SeedChangesPlacementCounts) {
  InitParams a = base_params(30, 1000, Geometric{0.9});
  InitParams b = a;
  b.seed = a.seed + 1;
  const Initializer ia(a), ib(b);
  // Same expectations, different realised per-cell draws.
  bool any_diff = false;
  for (std::int64_t cx = 0; cx < 30 && !any_diff; ++cx) {
    for (std::int64_t cy = 0; cy < 30 && !any_diff; ++cy) {
      any_diff = ia.count_in_cell(cx, cy) != ib.count_in_cell(cx, cy);
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(InitializerTest, ColumnPrefixConsistentWithTotals) {
  const Initializer init(base_params(30, 3000, Sinusoidal{}));
  std::uint64_t running = 1;
  for (std::int64_t cx = 0; cx < 30; ++cx) {
    EXPECT_EQ(init.column_first_id(cx), running);
    running += init.column_total(cx);
  }
  EXPECT_EQ(running - 1, init.total());
}

}  // namespace
