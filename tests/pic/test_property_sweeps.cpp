// Parameterized property sweeps over the specification's whole knob
// space: every distribution × horizontal speed k × vertical speed m ×
// charge-sign mode must verify, conserve particles, and respect the
// kinematic invariants of §III-D (velocity returns to zero every two
// steps; particles stay on cell centers).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "pic/simulation.hpp"

namespace {

using picprk::pic::AlternatingColumnCharges;
using picprk::pic::ChargeSign;
using picprk::pic::Distribution;
using picprk::pic::Geometric;
using picprk::pic::GridSpec;
using picprk::pic::InitParams;
using picprk::pic::Initializer;
using picprk::pic::Linear;
using picprk::pic::Particle;
using picprk::pic::Patch;
using picprk::pic::Sinusoidal;
using picprk::pic::Uniform;

Distribution make_distribution(int kind) {
  switch (kind) {
    case 0: return Uniform{};
    case 1: return Geometric{0.9};
    case 2: return Sinusoidal{};
    case 3: return Linear{1.0, 1.5};
    default: return Patch{{4, 16, 4, 16}};
  }
}

const char* distribution_tag(int kind) {
  switch (kind) {
    case 0: return "uniform";
    case 1: return "geometric";
    case 2: return "sinusoidal";
    case 3: return "linear";
    default: return "patch";
  }
}

// (distribution kind, k, m, sign mode)
using SweepParam = std::tuple<int, int, int, int>;

class SpecSweep : public ::testing::TestWithParam<SweepParam> {};

INSTANTIATE_TEST_SUITE_P(
    AllKnobs, SpecSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),   // distribution
                       ::testing::Values(0, 1, 2),          // k
                       ::testing::Values(-2, 0, 3),         // m
                       ::testing::Values(0, 1, 2)),         // sign mode
    [](const auto& info) {
      // NOTE: no structured bindings here — the commas inside `auto [..]`
      // would split the INSTANTIATE macro's arguments.
      const int kind = std::get<0>(info.param);
      const int k = std::get<1>(info.param);
      const int m = std::get<2>(info.param);
      const int sign = std::get<3>(info.param);
      std::string name = distribution_tag(kind);
      name += "_k" + std::to_string(k);
      name += m < 0 ? "_mneg" + std::to_string(-m) : "_m" + std::to_string(m);
      name += "_s" + std::to_string(sign);
      return name;
    });

TEST_P(SpecSweep, SerialRunVerifies) {
  const auto [kind, k, m, sign] = GetParam();
  picprk::pic::SimulationConfig cfg;
  cfg.init.grid = GridSpec(24, 1.0);
  cfg.init.total_particles = 600;
  cfg.init.distribution = make_distribution(kind);
  cfg.init.k = k;
  cfg.init.m = m;
  cfg.init.sign = static_cast<ChargeSign>(sign);
  cfg.steps = 37;  // odd step count: ends mid hop-pair with v != 0
  const auto result = picprk::pic::run_serial(cfg);
  EXPECT_TRUE(result.ok()) << "failures=" << result.verification.position_failures
                           << " max_err=" << result.verification.max_position_error;
  EXPECT_EQ(result.final_particles, result.verification.checked);
}

TEST_P(SpecSweep, KinematicInvariants) {
  const auto [kind, k, m, sign] = GetParam();
  InitParams params;
  params.grid = GridSpec(24, 1.0);
  params.total_particles = 300;
  params.distribution = make_distribution(kind);
  params.k = k;
  params.m = m;
  params.sign = static_cast<ChargeSign>(sign);
  const Initializer init(params);
  auto particles = init.create_all();
  const AlternatingColumnCharges charges;

  const std::size_t n = particles.size();
  for (int step = 1; step <= 6; ++step) {
    picprk::pic::move_all(std::span<Particle>(particles), params.grid, charges, 1.0);
    ASSERT_EQ(particles.size(), n);  // motion never loses particles
    for (const Particle& p : particles) {
      // Cell-center invariant: relative position stays (0.5, 0.5).
      EXPECT_NEAR(p.x - std::floor(p.x), 0.5, 1e-9);
      EXPECT_NEAR(p.y - std::floor(p.y), 0.5, 1e-9);
      // Vertical velocity is constant (Eq. 4).
      EXPECT_NEAR(p.vy, static_cast<double>(m), 1e-9);
      if (step % 2 == 0) {
        // After every complete hop pair the horizontal velocity is zero.
        EXPECT_NEAR(p.vx, 0.0, 1e-9);
      } else {
        // Mid-pair it is exactly ±2(2k+1)h/dt.
        EXPECT_NEAR(std::fabs(p.vx), 2.0 * (2.0 * k + 1.0), 1e-9);
      }
    }
  }
}

TEST_P(SpecSweep, ParallelBlockInitMatchesSerial) {
  const auto [kind, k, m, sign] = GetParam();
  InitParams params;
  params.grid = GridSpec(24, 1.0);
  params.total_particles = 500;
  params.distribution = make_distribution(kind);
  params.k = k;
  params.m = m;
  params.sign = static_cast<ChargeSign>(sign);
  const Initializer init(params);

  const auto serial = init.create_all();
  std::uint64_t pieces_total = 0;
  std::uint64_t pieces_checksum = 0;
  for (std::int64_t bx = 0; bx < 2; ++bx) {
    for (std::int64_t by = 0; by < 3; ++by) {
      const auto block = init.create_block(bx * 12, (bx + 1) * 12, by * 8, (by + 1) * 8);
      pieces_total += block.size();
      for (const auto& p : block) pieces_checksum += p.id;
    }
  }
  std::uint64_t serial_checksum = 0;
  for (const auto& p : serial) serial_checksum += p.id;
  EXPECT_EQ(pieces_total, serial.size());
  EXPECT_EQ(pieces_checksum, serial_checksum);
}

}  // namespace
