#include <gtest/gtest.h>

#include "pic/charge.hpp"
#include "pic/init.hpp"
#include "util/assert.hpp"

namespace {

using picprk::pic::AlternatingColumnCharges;
using picprk::pic::charge_base;
using picprk::pic::ChargeSlab;

TEST(AlternatingColumns, ParityPattern) {
  AlternatingColumnCharges charges(2.0);
  EXPECT_DOUBLE_EQ(charges.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(charges.at(1, 0), -2.0);
  EXPECT_DOUBLE_EQ(charges.at(2, 5), 2.0);
  EXPECT_DOUBLE_EQ(charges.at(7, 123), -2.0);
}

TEST(AlternatingColumns, IndependentOfRow) {
  AlternatingColumnCharges charges;
  for (std::int64_t py = 0; py < 10; ++py) {
    EXPECT_DOUBLE_EQ(charges.at(4, py), charges.at(4, 0));
  }
}

TEST(ChargeBase, CanonicalValue) {
  // h=1, dt=1, q=1, x=1/2: q_pi = 1 / (2*sqrt(2)) (see DESIGN.md §5).
  EXPECT_NEAR(charge_base(), 1.0 / (2.0 * std::sqrt(2.0)), 1e-15);
}

TEST(ChargeBase, ScalesWithMeshCharge) {
  // Doubling q halves the particle charge needed for the same hop.
  EXPECT_NEAR(charge_base(1.0, 1.0, 2.0), charge_base() / 2.0, 1e-15);
}

TEST(ChargeBase, OffCenterPlacementFinite) {
  const double q = charge_base(1.0, 1.0, 1.0, 0.25);
  EXPECT_GT(q, 0.0);
  EXPECT_TRUE(std::isfinite(q));
}

TEST(ChargeBase, InvalidArgumentsThrow) {
  EXPECT_THROW(charge_base(0.0, 1.0, 1.0, 0.5), picprk::ContractViolation);
  EXPECT_THROW(charge_base(1.0, 1.0, 1.0, 0.0), picprk::ContractViolation);
  EXPECT_THROW(charge_base(1.0, 1.0, 1.0, 1.0), picprk::ContractViolation);
}

TEST(ChargeSlabTest, SamplesPattern) {
  AlternatingColumnCharges pattern(1.0);
  ChargeSlab slab = ChargeSlab::sample(pattern, 3, 5, 4, 3);
  EXPECT_TRUE(slab.contains(3, 5));
  EXPECT_TRUE(slab.contains(6, 7));
  EXPECT_FALSE(slab.contains(7, 5));
  EXPECT_FALSE(slab.contains(3, 8));
  for (std::int64_t px = 3; px < 7; ++px) {
    for (std::int64_t py = 5; py < 8; ++py) {
      EXPECT_DOUBLE_EQ(slab.at(px, py), pattern.at(px, py));
    }
  }
}

TEST(ChargeSlabTest, OutOfRangeAccessThrows) {
  ChargeSlab slab = ChargeSlab::sample(AlternatingColumnCharges{}, 0, 0, 2, 2);
  EXPECT_THROW(slab.at(2, 0), picprk::ContractViolation);
}

TEST(ChargeSlabTest, ExtractColumnsRoundTrip) {
  AlternatingColumnCharges pattern(1.0);
  ChargeSlab slab = ChargeSlab::sample(pattern, 0, 0, 5, 4);
  auto cols = slab.extract_columns(2, 4);
  ASSERT_EQ(cols.size(), 2u * 4u);
  // Rebuild a slab from the extracted columns and compare values.
  ChargeSlab rebuilt = ChargeSlab::from_values(2, 0, 2, 4, cols);
  // from_values expects row-major (width*height); extract_columns emits
  // column-major, so reconstruct by sampling instead and compare.
  for (std::int64_t j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(cols[static_cast<std::size_t>(j)], pattern.at(2, j));
    EXPECT_DOUBLE_EQ(cols[static_cast<std::size_t>(4 + j)], pattern.at(3, j));
  }
  (void)rebuilt;
}

TEST(ChargeSlabTest, BytesAccounting) {
  ChargeSlab slab = ChargeSlab::sample(AlternatingColumnCharges{}, 0, 0, 10, 20);
  EXPECT_EQ(slab.bytes(), 200u * sizeof(double));
}

}  // namespace
