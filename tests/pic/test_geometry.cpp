#include <gtest/gtest.h>

#include "pic/geometry.hpp"
#include "util/assert.hpp"

namespace {

using picprk::pic::CellRegion;
using picprk::pic::GridSpec;
using picprk::pic::wrap;
using picprk::pic::wrap_index;

TEST(Wrap, IdentityInsideDomain) {
  EXPECT_DOUBLE_EQ(wrap(3.5, 10.0), 3.5);
  EXPECT_DOUBLE_EQ(wrap(0.0, 10.0), 0.0);
}

TEST(Wrap, WrapsAboveAndBelow) {
  EXPECT_DOUBLE_EQ(wrap(12.5, 10.0), 2.5);
  EXPECT_DOUBLE_EQ(wrap(-1.5, 10.0), 8.5);
  EXPECT_DOUBLE_EQ(wrap(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap(-10.0, 10.0), 0.0);
}

TEST(Wrap, ManyPeriodsAway) {
  EXPECT_NEAR(wrap(1e6 + 3.25, 10.0), 3.25, 1e-9);
  EXPECT_NEAR(wrap(-1e6 + 3.25, 10.0), 3.25, 1e-9);
}

TEST(Wrap, ResultAlwaysInRange) {
  for (double v : {-1e9, -17.3, -0.0001, 0.0, 5.0, 9.999999999, 1e9}) {
    const double r = wrap(v, 10.0);
    EXPECT_GE(r, 0.0) << v;
    EXPECT_LT(r, 10.0) << v;
  }
}

TEST(WrapIndex, Basic) {
  EXPECT_EQ(wrap_index(5, 4), 1);
  EXPECT_EQ(wrap_index(-1, 4), 3);
  EXPECT_EQ(wrap_index(-5, 4), 3);
  EXPECT_EQ(wrap_index(3, 4), 3);
}

TEST(GridSpecTest, BasicProperties) {
  GridSpec grid(100, 1.0);
  EXPECT_EQ(grid.cells, 100);
  EXPECT_DOUBLE_EQ(grid.length(), 100.0);
  EXPECT_EQ(grid.cell_of(0.5), 0);
  EXPECT_EQ(grid.cell_of(99.9), 99);
  EXPECT_DOUBLE_EQ(grid.cell_center(3), 3.5);
}

TEST(GridSpecTest, NonUnitCellSize) {
  GridSpec grid(10, 2.0);
  EXPECT_DOUBLE_EQ(grid.length(), 20.0);
  EXPECT_EQ(grid.cell_of(5.0), 2);
  EXPECT_DOUBLE_EQ(grid.cell_center(2), 5.0);
}

TEST(GridSpecTest, OddCellCountRejected) {
  // The spec requires L to be an even multiple of h (periodic charge
  // parity consistency).
  EXPECT_THROW(GridSpec(99, 1.0), picprk::ContractViolation);
}

TEST(GridSpecTest, TooSmallRejected) {
  EXPECT_THROW(GridSpec(0), picprk::ContractViolation);
}

TEST(GridSpecTest, CellOfClampsBoundary) {
  GridSpec grid(4, 1.0);
  // Exactly L should never be passed (positions are wrapped) but the
  // fringe guard must still return a valid cell.
  EXPECT_EQ(grid.cell_of(4.0), 3);
}

TEST(CellRegionTest, ContainsAndArea) {
  CellRegion r{2, 5, 1, 3};
  EXPECT_EQ(r.width(), 3);
  EXPECT_EQ(r.height(), 2);
  EXPECT_EQ(r.area(), 6);
  EXPECT_TRUE(r.contains_cell(2, 1));
  EXPECT_TRUE(r.contains_cell(4, 2));
  EXPECT_FALSE(r.contains_cell(5, 1));
  EXPECT_FALSE(r.contains_cell(2, 3));
}

TEST(CellRegionTest, ValidityWithinGrid) {
  GridSpec grid(10, 1.0);
  EXPECT_TRUE((CellRegion{0, 10, 0, 10}.valid_within(grid)));
  EXPECT_FALSE((CellRegion{0, 11, 0, 10}.valid_within(grid)));
  EXPECT_FALSE((CellRegion{3, 3, 0, 10}.valid_within(grid)));
  EXPECT_FALSE((CellRegion{-1, 5, 0, 5}.valid_within(grid)));
}

}  // namespace
