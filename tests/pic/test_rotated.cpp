// The 90°-rotated distributions (§III-E1: a row-skewed cloud defeats any
// balancing restricted to the drift direction).
#include <gtest/gtest.h>

#include "comm/world.hpp"
#include "par/baseline.hpp"
#include "par/diffusion.hpp"
#include "perfsim/workload.hpp"
#include "pic/simulation.hpp"

namespace {

using picprk::comm::Comm;
using picprk::comm::World;
using picprk::par::DriverConfig;
using picprk::par::RunConfig;
using picprk::par::DriverResult;
using picprk::pic::Geometric;
using picprk::pic::GridSpec;
using picprk::pic::InitParams;
using picprk::pic::Initializer;

InitParams rotated_params(std::int64_t cells, std::uint64_t n, double r) {
  InitParams p;
  p.grid = GridSpec(cells, 1.0);
  p.total_particles = n;
  p.distribution = Geometric{r};
  p.rotate90 = true;
  return p;
}

TEST(RotatedInit, SkewMovesToRows) {
  const Initializer init(rotated_params(40, 20000, 0.85));
  // Row 0 must hold much more than row 30; columns must be ~flat.
  std::uint64_t row0 = 0, row30 = 0;
  for (std::int64_t cx = 0; cx < 40; ++cx) {
    row0 += init.count_in_cell(cx, 0);
    row30 += init.count_in_cell(cx, 30);
  }
  EXPECT_GT(row0, row30 * 20);
  // Column totals all within a small factor of each other.
  std::uint64_t cmin = UINT64_MAX, cmax = 0;
  for (std::int64_t cx = 0; cx < 40; ++cx) {
    cmin = std::min(cmin, init.column_total(cx));
    cmax = std::max(cmax, init.column_total(cx));
  }
  EXPECT_LT(static_cast<double>(cmax), 1.5 * static_cast<double>(cmin));
}

TEST(RotatedInit, ExpectationMatchesUnrotatedTranspose) {
  InitParams rot = rotated_params(30, 9000, 0.9);
  InitParams straight = rot;
  straight.rotate90 = false;
  const Initializer a(rot), b(straight);
  for (std::int64_t i = 0; i < 30; i += 5) {
    for (std::int64_t j = 0; j < 30; j += 5) {
      EXPECT_DOUBLE_EQ(a.expected_in_cell(i, j), b.expected_in_cell(j, i));
    }
  }
}

TEST(RotatedSerial, Verifies) {
  picprk::pic::SimulationConfig cfg;
  cfg.init = rotated_params(32, 2000, 0.9);
  cfg.init.k = 0;
  cfg.init.m = 1;
  cfg.steps = 40;
  EXPECT_TRUE(picprk::pic::run_serial(cfg).ok());
}

TEST(RotatedDrivers, XOnlyDiffusionCannotFixRowSkew) {
  // The defining property: the skew lives in y, the drift in x, so an
  // x-only diffusion balancer is structurally unable to help while the
  // two-phase variant can.
  World world(4);  // 2×2 process grid
  world.run([](Comm& comm) {
    RunConfig cfg;
    cfg.init = rotated_params(32, 6000, 0.8);
    cfg.steps = 60;
    cfg.sample_every = 5;

    const DriverResult base = picprk::par::run_baseline(comm, cfg);

    RunConfig xonly = cfg;
    xonly.lb.strategy = "diffusion:threshold=0.05,border=2";
    xonly.lb.every = 4;
    const DriverResult x = picprk::par::run_diffusion(comm, xonly);

    RunConfig both = xonly;
    both.lb.strategy = "diffusion:threshold=0.05,border=2,two_phase=1";
    const DriverResult xy = picprk::par::run_diffusion(comm, both);

    ASSERT_TRUE(base.ok);
    ASSERT_TRUE(x.ok);
    ASSERT_TRUE(xy.ok);

    auto mean = [](const std::vector<double>& v) {
      double s = 0;
      for (double val : v) s += val;
      return s / static_cast<double>(v.size());
    };
    const double base_imb = mean(base.imbalance_series);
    const double x_imb = mean(x.imbalance_series);
    const double xy_imb = mean(xy.imbalance_series);

    // x-only: no meaningful improvement (row loads are untouched by
    // x-boundary moves).
    EXPECT_GT(x_imb, base_imb * 0.9);
    // two-phase: clear improvement.
    EXPECT_LT(xy_imb, base_imb * 0.8);
    EXPECT_LT(xy_imb, x_imb);
  });
}

TEST(RotatedWorkloadModel, RejectedByColumnModel) {
  EXPECT_THROW(picprk::perfsim::ColumnWorkload::from_expected(
                   rotated_params(20, 1000, 0.9)),
               picprk::ContractViolation);
}

}  // namespace
