// Equivalence of the optimised movers with the pre-optimization kernel
// (pic::reference) over long trajectories. The strength-reduced force
// kernel computes the same mathematical quantity with a different
// rounding pattern (one fused reciprocal instead of twelve divides), so
// per-step forces agree to a few ULPs; over many steps those rounding
// differences accumulate linearly in the velocities, hence the loose
// absolute tolerance on O(1) quantities. The geometry (cell lookup,
// periodic wrap) is bit-identical by construction, so any divergence
// seen here is the force kernel's.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "pic/charge.hpp"
#include "pic/events.hpp"
#include "pic/init.hpp"
#include "pic/mover.hpp"
#include "pic/particle.hpp"
#include "pic/tiling.hpp"
#include "pic/verify.hpp"

namespace {

using namespace picprk;
using pic::AlternatingColumnCharges;
using pic::GridSpec;
using pic::InitParams;
using pic::Initializer;
using pic::Particle;

/// Tolerance for trajectory comparison: a few ULPs of force error per
/// step, accumulated over kSteps steps, on coordinates of size O(grid).
constexpr double kTolerance = 1e-10;
constexpr std::uint32_t kSteps = 100;

InitParams base_params(const pic::Distribution& dist) {
  InitParams params;
  params.grid = GridSpec(32, 1.0);
  params.total_particles = 3000;
  params.distribution = dist;
  params.k = 1;
  params.m = 1;
  return params;
}

std::vector<pic::Distribution> all_distributions() {
  return {
      pic::Geometric{0.99},
      pic::Sinusoidal{},
      pic::Linear{1.0, 2.0},
      pic::Patch{pic::CellRegion{4, 12, 4, 12}},
      pic::Uniform{},
  };
}

void expect_trajectories_match(const std::vector<Particle>& expected,
                               const std::vector<Particle>& got, double length,
                               const std::string& label) {
  ASSERT_EQ(expected.size(), got.size()) << label;
  double max_pos = 0.0, max_vel = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    max_pos = std::max(max_pos,
                       pic::periodic_distance(expected[i].x, got[i].x, length));
    max_pos = std::max(max_pos,
                       pic::periodic_distance(expected[i].y, got[i].y, length));
    max_vel = std::max(max_vel, std::abs(expected[i].vx - got[i].vx));
    max_vel = std::max(max_vel, std::abs(expected[i].vy - got[i].vy));
    EXPECT_EQ(expected[i].id, got[i].id) << label << " particle " << i;
  }
  EXPECT_LE(max_pos, kTolerance) << label << ": positions diverged";
  EXPECT_LE(max_vel, kTolerance) << label << ": velocities diverged";
}

TEST(MoverEquivalence, OptimizedKernelsMatchReferenceOnAllDistributions) {
  const AlternatingColumnCharges charges;
  for (const auto& dist : all_distributions()) {
    const InitParams params = base_params(dist);
    const Initializer init(params);
    const std::string label = pic::distribution_name(dist);

    auto p_ref = init.create_all();
    auto p_new = init.create_all();
    auto soa = pic::to_soa(init.create_all());
    ASSERT_FALSE(p_ref.empty()) << label;

    for (std::uint32_t s = 0; s < kSteps; ++s) {
      pic::reference::move_all(std::span<Particle>(p_ref), params.grid, charges,
                               params.dt);
      pic::move_all(std::span<Particle>(p_new), params.grid, charges, params.dt);
      pic::move_all_soa(soa, params.grid, charges, params.dt);
    }

    expect_trajectories_match(p_ref, p_new, params.grid.length(), label + "/AoS");
    expect_trajectories_match(p_ref, pic::to_aos(soa), params.grid.length(),
                              label + "/SoA");

    // Both old and new trajectories must satisfy the closed-form
    // positions (Eqs. 5–6) and the id checksum — equivalence alone could
    // hide a bug shared by every kernel.
    for (const auto* cloud : {&p_ref, &p_new}) {
      const auto result = pic::verify_particles(std::span<const Particle>(*cloud),
                                                params.grid, kSteps);
      EXPECT_TRUE(result.ok(pic::expected_checksum(init.total())))
          << label << ": closed-form verification failed, max error "
          << result.max_position_error;
    }
  }
}

/// The tiled mover re-sorts the store, so trajectories are compared by
/// id. Equality is EXPECT_EQ on doubles: the tiled kernel must be
/// bit-identical to move_all, not merely close (same force expressions,
/// same advance expression, wrap as a separate pass — see mover.hpp).
void expect_bit_identical_by_id(std::vector<Particle> expected,
                                std::vector<Particle> got, const std::string& label) {
  ASSERT_EQ(expected.size(), got.size()) << label;
  const auto by_id = [](const Particle& a, const Particle& b) { return a.id < b.id; };
  std::sort(expected.begin(), expected.end(), by_id);
  std::sort(got.begin(), got.end(), by_id);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].id, got[i].id) << label << " particle " << i;
    EXPECT_EQ(expected[i].x, got[i].x) << label << " id " << expected[i].id;
    EXPECT_EQ(expected[i].y, got[i].y) << label << " id " << expected[i].id;
    EXPECT_EQ(expected[i].vx, got[i].vx) << label << " id " << expected[i].id;
    EXPECT_EQ(expected[i].vy, got[i].vy) << label << " id " << expected[i].id;
  }
}

TEST(MoverEquivalence, TiledMoverIsBitIdenticalToScalarOnAllDistributions) {
  const AlternatingColumnCharges charges;
  for (const auto& dist : all_distributions()) {
    const InitParams params = base_params(dist);
    const Initializer init(params);
    const std::string label = pic::distribution_name(dist);

    auto p_scalar = init.create_all();
    auto soa = pic::to_soa(init.create_all());
    pic::TileIndex tiles(pic::CellRegion{0, params.grid.cells, 0, params.grid.cells});
    ASSERT_FALSE(p_scalar.empty()) << label;

    for (std::uint32_t s = 0; s < kSteps; ++s) {
      pic::move_all(std::span<Particle>(p_scalar), params.grid, charges, params.dt);
      pic::move_all_tiled(soa, tiles, params.grid, charges, params.dt);
      ASSERT_TRUE(!tiles.fresh() || tiles.check(soa, params.grid))
          << label << " step " << s << ": tile index invariant broken";
    }

    expect_bit_identical_by_id(p_scalar, pic::to_aos(soa), label + "/tiled");
    const auto result = pic::verify_particles(
        std::span<const Particle>(pic::to_aos(soa)), params.grid, kSteps);
    EXPECT_TRUE(result.ok(pic::expected_checksum(init.total())))
        << label << ": closed-form verification failed after tiled stepping";
  }
}

TEST(MoverEquivalence, TiledMoverSurvivesInjectionAndRemovalEvents) {
  // Mid-run population changes go through the same AoS staging the
  // drivers use: the tile index is invalidated, the next tiled move
  // rebuilds it, and trajectories stay bit-identical to the scalar
  // mover throughout.
  const AlternatingColumnCharges charges;
  const InitParams params = base_params(pic::Geometric{0.99});
  const Initializer init(params);
  const pic::EventSchedule events(
      {pic::InjectionEvent{10, pic::CellRegion{8, 16, 8, 16}, 500},
       pic::InjectionEvent{40, pic::CellRegion{0, 8, 0, 8}, 250}},
      {pic::RemovalEvent{25, pic::CellRegion{4, 20, 4, 20}, 0.5},
       pic::RemovalEvent{60, pic::CellRegion{0, 32, 0, 32}, 0.25}});

  auto p_scalar = init.create_all();
  auto soa = pic::to_soa(init.create_all());
  pic::TileIndex tiles(pic::CellRegion{0, params.grid.cells, 0, params.grid.cells});

  for (std::uint32_t s = 0; s < kSteps; ++s) {
    if (events.scheduled_at(s)) {
      events.apply_step(init, s, 0, params.grid.cells, 0, params.grid.cells, p_scalar);
      std::vector<Particle> staging = pic::to_aos(soa);
      events.apply_step(init, s, 0, params.grid.cells, 0, params.grid.cells, staging);
      soa.assign(std::span<const Particle>(staging));
      tiles.mark_dirty();
    }
    pic::move_all(std::span<Particle>(p_scalar), params.grid, charges, params.dt);
    pic::move_all_tiled(soa, tiles, params.grid, charges, params.dt);
    ASSERT_TRUE(!tiles.fresh() || tiles.check(soa, params.grid))
        << "step " << s << ": tile index invariant broken";
  }

  ASSERT_GT(soa.size(), 0u);
  expect_bit_identical_by_id(p_scalar, pic::to_aos(soa), "events/tiled");
}

TEST(MoverEquivalence, SlabChargesMatchPatternChargesBitwise) {
  // The ChargeSlab fast path serves cached copies of the analytic
  // pattern values, so slab-driven trajectories are bit-identical (not
  // merely ULP-close) to pattern-driven ones.
  const AlternatingColumnCharges charges;
  const InitParams params = base_params(pic::Geometric{0.99});
  const Initializer init(params);
  const auto slab =
      pic::ChargeSlab::sample(charges, 0, 0, params.grid.cells + 1, params.grid.cells + 1);

  auto p_pattern = init.create_all();
  auto p_slab = init.create_all();
  for (std::uint32_t s = 0; s < kSteps; ++s) {
    pic::move_all(std::span<Particle>(p_pattern), params.grid, charges, params.dt);
    pic::move_all(std::span<Particle>(p_slab), params.grid, slab, params.dt);
  }
  ASSERT_EQ(p_pattern.size(), p_slab.size());
  for (std::size_t i = 0; i < p_pattern.size(); ++i) {
    EXPECT_EQ(p_pattern[i].x, p_slab[i].x);
    EXPECT_EQ(p_pattern[i].y, p_slab[i].y);
    EXPECT_EQ(p_pattern[i].vx, p_slab[i].vx);
    EXPECT_EQ(p_pattern[i].vy, p_slab[i].vy);
  }
}

}  // namespace
