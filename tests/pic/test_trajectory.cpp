#include <gtest/gtest.h>

#include "pic/mover.hpp"
#include "pic/init.hpp"
#include "pic/trajectory.hpp"

namespace {

using picprk::pic::AlternatingColumnCharges;
using picprk::pic::GridSpec;
using picprk::pic::InitParams;
using picprk::pic::Initializer;
using picprk::pic::Particle;
using picprk::pic::TrajectoryValidator;

std::vector<Particle> make_particles(std::int64_t cells, std::uint64_t n, int k = 0,
                                     int m = 0) {
  InitParams params;
  params.grid = GridSpec(cells, 1.0);
  params.total_particles = n;
  params.k = k;
  params.m = m;
  return Initializer(params).create_all();
}

TEST(TrajectoryValidatorTest, CleanRunHasNoFaults) {
  GridSpec grid(20, 1.0);
  auto particles = make_particles(20, 300, 1, -1);
  AlternatingColumnCharges charges;
  TrajectoryValidator validator;
  for (std::uint32_t step = 1; step <= 30; ++step) {
    picprk::pic::move_all(std::span<Particle>(particles), grid, charges, 1.0);
    validator.check(std::span<const Particle>(particles), grid, step);
  }
  EXPECT_TRUE(validator.ok());
  EXPECT_EQ(validator.checks_performed(), 30u * particles.size());
}

TEST(TrajectoryValidatorTest, PinpointsTheFaultingStep) {
  GridSpec grid(20, 1.0);
  auto particles = make_particles(20, 100);
  AlternatingColumnCharges charges;
  TrajectoryValidator validator;
  for (std::uint32_t step = 1; step <= 20; ++step) {
    picprk::pic::move_all(std::span<Particle>(particles), grid, charges, 1.0);
    if (step == 7) {
      particles[13].x = picprk::pic::wrap(particles[13].x + 0.125, 20.0);
    }
    validator.check(std::span<const Particle>(particles), grid, step);
  }
  ASSERT_FALSE(validator.ok());
  ASSERT_EQ(validator.faults().size(), 1u);  // one fault, reported once
  EXPECT_EQ(validator.faults()[0].step, 7u);
  EXPECT_EQ(validator.faults()[0].id, particles[13].id);
  EXPECT_NEAR(validator.faults()[0].error, 0.125, 1e-9);
}

TEST(TrajectoryValidatorTest, TracksOnlyRequestedIds) {
  GridSpec grid(16, 1.0);
  auto particles = make_particles(16, 64);
  AlternatingColumnCharges charges;
  TrajectoryValidator validator({particles[0].id, particles[5].id});
  picprk::pic::move_all(std::span<Particle>(particles), grid, charges, 1.0);
  const std::size_t checked =
      validator.check(std::span<const Particle>(particles), grid, 1);
  EXPECT_EQ(checked, 2u);
}

TEST(TrajectoryValidatorTest, CorruptedUntrackedParticleIgnored) {
  GridSpec grid(16, 1.0);
  auto particles = make_particles(16, 64);
  AlternatingColumnCharges charges;
  TrajectoryValidator validator({particles[0].id});
  picprk::pic::move_all(std::span<Particle>(particles), grid, charges, 1.0);
  particles[10].x = 0.123;  // corrupt an untracked particle
  validator.check(std::span<const Particle>(particles), grid, 1);
  EXPECT_TRUE(validator.ok());
}

TEST(TrajectoryValidatorTest, FaultExpectedPositionIsClosedForm) {
  GridSpec grid(16, 1.0);
  auto particles = make_particles(16, 10);
  AlternatingColumnCharges charges;
  TrajectoryValidator validator;
  picprk::pic::move_all(std::span<Particle>(particles), grid, charges, 1.0);
  const double good_x = particles[3].x;
  particles[3].x = picprk::pic::wrap(particles[3].x + 1.0, 16.0);  // one cell off
  validator.check(std::span<const Particle>(particles), grid, 1);
  ASSERT_FALSE(validator.ok());
  EXPECT_NEAR(validator.faults()[0].expected_x, good_x, 1e-9);
}

}  // namespace
