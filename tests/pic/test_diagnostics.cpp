#include <gtest/gtest.h>

#include "pic/diagnostics.hpp"
#include "pic/mover.hpp"
#include "pic/init.hpp"

namespace {

using picprk::pic::column_histogram;
using picprk::pic::Geometric;
using picprk::pic::GridSpec;
using picprk::pic::InitParams;
using picprk::pic::Initializer;
using picprk::pic::Particle;
using picprk::pic::Patch;
using picprk::pic::periodic_displacement;
using picprk::pic::row_histogram;
using picprk::pic::summarize_cloud;
using picprk::pic::Uniform;

TEST(Histograms, CountsMatchInitializer) {
  InitParams params;
  params.grid = GridSpec(20, 1.0);
  params.total_particles = 2000;
  params.distribution = Geometric{0.9};
  const Initializer init(params);
  const auto particles = init.create_all();
  const auto cols = column_histogram(std::span<const Particle>(particles), params.grid);
  for (std::int64_t cx = 0; cx < 20; ++cx) {
    EXPECT_EQ(cols[static_cast<std::size_t>(cx)], init.column_total(cx));
  }
  const auto rows = row_histogram(std::span<const Particle>(particles), params.grid);
  std::uint64_t total = 0;
  for (auto v : rows) total += v;
  EXPECT_EQ(total, particles.size());
}

TEST(CloudSummaryTest, PointCloudFullyConcentrated) {
  GridSpec grid(16, 1.0);
  std::vector<Particle> particles(10);
  for (auto& p : particles) {
    p.x = 4.5;
    p.y = 11.5;
  }
  const auto s = summarize_cloud(std::span<const Particle>(particles), grid);
  EXPECT_EQ(s.count, 10u);
  EXPECT_NEAR(s.com_x, 4.5, 1e-9);
  EXPECT_NEAR(s.com_y, 11.5, 1e-9);
  EXPECT_NEAR(s.concentration_x, 1.0, 1e-12);
  EXPECT_NEAR(s.concentration_y, 1.0, 1e-12);
}

TEST(CloudSummaryTest, UniformCloudUnconcentrated) {
  InitParams params;
  params.grid = GridSpec(32, 1.0);
  params.total_particles = 10000;
  params.distribution = Uniform{};
  const Initializer init(params);
  const auto particles = init.create_all();
  const auto s = summarize_cloud(std::span<const Particle>(particles), params.grid);
  EXPECT_LT(s.concentration_x, 0.05);
  EXPECT_LT(s.concentration_y, 0.05);
}

TEST(CloudSummaryTest, SeamStraddlingCloudHasCorrectCom) {
  // Half the particles just left of the seam, half just right: a naive
  // arithmetic mean would put the c.o.m. at L/2; the circular mean puts
  // it at the seam.
  GridSpec grid(16, 1.0);
  std::vector<Particle> particles;
  for (int i = 0; i < 5; ++i) {
    Particle a;
    a.x = 15.5;
    a.y = 0.5;
    particles.push_back(a);
    Particle b;
    b.x = 0.5;
    b.y = 0.5;
    particles.push_back(b);
  }
  const auto s = summarize_cloud(std::span<const Particle>(particles), grid);
  const double dist_to_seam = std::min(s.com_x, 16.0 - s.com_x);
  EXPECT_LT(dist_to_seam, 0.51);
}

TEST(CloudSummaryTest, EmptyCloud) {
  GridSpec grid(8, 1.0);
  const auto s = summarize_cloud({}, grid);
  EXPECT_EQ(s.count, 0u);
}

TEST(PeriodicDisplacement, ShortestSignedPath) {
  EXPECT_DOUBLE_EQ(periodic_displacement(2.0, 5.0, 10.0), 3.0);
  EXPECT_DOUBLE_EQ(periodic_displacement(5.0, 2.0, 10.0), -3.0);
  EXPECT_DOUBLE_EQ(periodic_displacement(9.0, 1.0, 10.0), 2.0);   // across the seam
  EXPECT_DOUBLE_EQ(periodic_displacement(1.0, 9.0, 10.0), -2.0);
  EXPECT_DOUBLE_EQ(periodic_displacement(3.0, 3.0, 10.0), 0.0);
}

TEST(Drift, CloudDriftsAtSpecifiedSpeed) {
  // The §III-E1 claim, measured with the diagnostics: a DriftRight
  // geometric cloud moves (2k+1) cells per step.
  InitParams params;
  params.grid = GridSpec(32, 1.0);
  params.total_particles = 3000;
  params.distribution = Patch{{4, 12, 0, 32}};
  params.k = 1;  // 3 cells per step
  const Initializer init(params);
  auto particles = init.create_all();
  const picprk::pic::AlternatingColumnCharges charges;

  auto before = summarize_cloud(std::span<const Particle>(particles), params.grid);
  for (int step = 0; step < 4; ++step) {
    picprk::pic::move_all(std::span<Particle>(particles), params.grid, charges, 1.0);
    const auto after = summarize_cloud(std::span<const Particle>(particles), params.grid);
    EXPECT_NEAR(periodic_displacement(before.com_x, after.com_x, 32.0), 3.0, 1e-6);
    EXPECT_NEAR(periodic_displacement(before.com_y, after.com_y, 32.0), 0.0, 1e-6);
    before = after;
  }
}

}  // namespace
