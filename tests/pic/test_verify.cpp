#include <gtest/gtest.h>

#include "pic/init.hpp"
#include "pic/mover.hpp"
#include "pic/verify.hpp"

namespace {

using picprk::pic::AlternatingColumnCharges;
using picprk::pic::expected_checksum;
using picprk::pic::expected_position;
using picprk::pic::GridSpec;
using picprk::pic::InitParams;
using picprk::pic::Initializer;
using picprk::pic::Particle;
using picprk::pic::periodic_distance;
using picprk::pic::Uniform;
using picprk::pic::verify_particles;

TEST(PeriodicDistance, ShortWayAround) {
  EXPECT_DOUBLE_EQ(periodic_distance(1.0, 9.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(periodic_distance(3.0, 5.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(periodic_distance(0.0, 0.0, 10.0), 0.0);
}

TEST(ExpectedPosition, Eq5And6) {
  GridSpec grid(10, 1.0);
  Particle p;
  p.x0 = 2.5;
  p.y0 = 3.5;
  p.k = 1;   // 3 cells per step
  p.m = 2;   // 2 cells per step
  p.dir = 1;
  const auto e = expected_position(p, grid, 4);
  EXPECT_DOUBLE_EQ(e.x, picprk::pic::wrap(2.5 + 3.0 * 4.0, 10.0));
  EXPECT_DOUBLE_EQ(e.y, picprk::pic::wrap(3.5 + 2.0 * 4.0, 10.0));
}

TEST(ExpectedPosition, NegativeDirection) {
  GridSpec grid(10, 1.0);
  Particle p;
  p.x0 = 2.5;
  p.dir = -1;
  const auto e = expected_position(p, grid, 3);
  EXPECT_DOUBLE_EQ(e.x, picprk::pic::wrap(2.5 - 3.0, 10.0));
}

TEST(ExpectedPosition, BirthOffsetsStepCount) {
  GridSpec grid(10, 1.0);
  Particle p;
  p.x0 = 0.5;
  p.dir = 1;
  p.birth = 5;
  const auto e = expected_position(p, grid, 8);  // only 3 steps participated
  EXPECT_DOUBLE_EQ(e.x, 3.5);
}

TEST(VerifyParticles, AcceptsSimulatedMotion) {
  GridSpec grid(20, 1.0);
  InitParams params;
  params.grid = grid;
  params.total_particles = 300;
  params.distribution = Uniform{};
  params.k = 1;
  params.m = -1;
  const Initializer init(params);
  auto particles = init.create_all();
  AlternatingColumnCharges charges;
  const std::uint32_t steps = 25;
  for (std::uint32_t s = 0; s < steps; ++s) {
    picprk::pic::move_all(std::span<Particle>(particles), grid, charges, 1.0);
  }
  const auto result =
      verify_particles(std::span<const Particle>(particles), grid, steps);
  EXPECT_TRUE(result.positions_ok) << "failures=" << result.position_failures
                                   << " max_err=" << result.max_position_error;
  EXPECT_EQ(result.checked, particles.size());
  EXPECT_TRUE(result.ok(expected_checksum(particles.size())));
}

TEST(VerifyParticles, DetectsSingleForceMiscalculation) {
  // The paper's claim: even one miscalculated step on one particle shows.
  GridSpec grid(20, 1.0);
  InitParams params;
  params.grid = grid;
  params.total_particles = 200;
  const Initializer init(params);
  auto particles = init.create_all();
  AlternatingColumnCharges charges;
  for (std::uint32_t s = 0; s < 10; ++s) {
    picprk::pic::move_all(std::span<Particle>(particles), grid, charges, 1.0);
    if (s == 4) particles[7].x = picprk::pic::wrap(particles[7].x + 0.25, 20.0);
  }
  const auto result =
      verify_particles(std::span<const Particle>(particles), grid, 10);
  EXPECT_FALSE(result.positions_ok);
  EXPECT_GE(result.position_failures, 1u);
}

TEST(VerifyParticles, ChecksumDetectsLostParticle) {
  GridSpec grid(20, 1.0);
  InitParams params;
  params.grid = grid;
  params.total_particles = 100;
  const Initializer init(params);
  auto particles = init.create_all();
  const std::uint64_t n = particles.size();
  particles.pop_back();  // "lose" one particle in communication
  const auto result = verify_particles(std::span<const Particle>(particles), grid, 0);
  EXPECT_TRUE(result.positions_ok);  // positions are fine...
  EXPECT_FALSE(result.ok(expected_checksum(n)));  // ...but the checksum is not
}

TEST(VerifyParticles, ChecksumDetectsDuplicatedParticle) {
  GridSpec grid(20, 1.0);
  InitParams params;
  params.grid = grid;
  params.total_particles = 100;
  const Initializer init(params);
  auto particles = init.create_all();
  const std::uint64_t n = particles.size();
  particles.push_back(particles.front());  // deliver a particle twice
  const auto result = verify_particles(std::span<const Particle>(particles), grid, 0);
  EXPECT_FALSE(result.ok(expected_checksum(n)));
}

TEST(VerifyParticles, MergeCombinesPartials) {
  GridSpec grid(20, 1.0);
  InitParams params;
  params.grid = grid;
  params.total_particles = 500;
  const Initializer init(params);
  const auto particles = init.create_all();
  const std::size_t half = particles.size() / 2;
  const auto a = verify_particles(
      std::span<const Particle>(particles.data(), half), grid, 0);
  const auto b = verify_particles(
      std::span<const Particle>(particles.data() + half, particles.size() - half), grid, 0);
  const auto whole = verify_particles(std::span<const Particle>(particles), grid, 0);
  const auto merged = picprk::pic::merge(a, b);
  EXPECT_EQ(merged.checked, whole.checked);
  EXPECT_EQ(merged.id_checksum, whole.id_checksum);
  EXPECT_EQ(merged.positions_ok, whole.positions_ok);
}

TEST(VerifyParticles, WrappedTrajectoriesVerify) {
  // Long run so trajectories wrap the domain many times.
  GridSpec grid(8, 1.0);
  InitParams params;
  params.grid = grid;
  params.total_particles = 64;
  params.k = 2;  // 5 cells per step on an 8-cell ring
  params.m = 3;
  const Initializer init(params);
  auto particles = init.create_all();
  AlternatingColumnCharges charges;
  const std::uint32_t steps = 200;
  for (std::uint32_t s = 0; s < steps; ++s) {
    picprk::pic::move_all(std::span<Particle>(particles), grid, charges, 1.0);
  }
  const auto result =
      verify_particles(std::span<const Particle>(particles), grid, steps);
  EXPECT_TRUE(result.positions_ok) << "max_err=" << result.max_position_error;
}

}  // namespace
