// The specification keeps h and dt symbolic (Eqs. 1–4); the canonical
// configuration is h = dt = 1 but nothing in the kernel depends on it:
// the Eq.-3 charge scales with h/dt² so the per-step displacement is
// exactly (2k+1)·h whatever the units. These tests pin that generality.
#include <gtest/gtest.h>

#include "comm/world.hpp"
#include "par/baseline.hpp"
#include "pic/simulation.hpp"

namespace {

using picprk::pic::GridSpec;
using picprk::pic::SimulationConfig;

class UnitSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

INSTANTIATE_TEST_SUITE_P(HandDt, UnitSweep,
                         ::testing::Combine(::testing::Values(0.5, 1.0, 2.0),
                                            ::testing::Values(0.25, 1.0, 3.0)),
                         [](const auto& info) {
                           const double h = std::get<0>(info.param);
                           const double dt = std::get<1>(info.param);
                           auto tag = [](double v) {
                             std::string s = std::to_string(v);
                             for (auto& ch : s)
                               if (ch == '.') ch = 'p';
                             return s.substr(0, 4);
                           };
                           return "h" + tag(h) + "_dt" + tag(dt);
                         });

TEST_P(UnitSweep, SerialVerifies) {
  const auto [h, dt] = GetParam();
  SimulationConfig cfg;
  cfg.init.grid = GridSpec(24, h);
  cfg.init.total_particles = 400;
  cfg.init.distribution = picprk::pic::Geometric{0.9};
  cfg.init.k = 1;
  cfg.init.m = -1;
  cfg.init.dt = dt;
  cfg.steps = 30;
  const auto result = picprk::pic::run_serial(cfg);
  EXPECT_TRUE(result.ok()) << "h=" << h << " dt=" << dt
                           << " max_err=" << result.verification.max_position_error;
}

TEST_P(UnitSweep, DisplacementPerStepIsExactlyCells) {
  const auto [h, dt] = GetParam();
  picprk::pic::InitParams params;
  params.grid = GridSpec(16, h);
  params.total_particles = 64;
  params.k = 0;
  params.m = 2;
  params.dt = dt;
  const picprk::pic::Initializer init(params);
  auto particles = init.create_all();
  const picprk::pic::AlternatingColumnCharges charges;
  const auto before = particles;
  picprk::pic::move_all(std::span<picprk::pic::Particle>(particles), params.grid,
                        charges, dt);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    const double dx = picprk::pic::periodic_distance(particles[i].x, before[i].x,
                                                     params.grid.length());
    const double dy = picprk::pic::periodic_distance(particles[i].y, before[i].y,
                                                     params.grid.length());
    EXPECT_NEAR(dx, h, 1e-9 * h) << "h=" << h << " dt=" << dt;
    EXPECT_NEAR(dy, 2.0 * h, 1e-9 * h);
  }
}

TEST(GeneralizedUnits, MeshChargeMagnitudeScales) {
  // Doubling the mesh charge halves the particle charge; the motion is
  // unchanged.
  SimulationConfig cfg;
  cfg.init.grid = GridSpec(20, 1.0);
  cfg.init.total_particles = 200;
  cfg.init.mesh_q = 2.0;
  cfg.steps = 20;
  EXPECT_TRUE(picprk::pic::run_serial(cfg).ok());
}

TEST(GeneralizedUnits, ParallelDriverWithNonUnitUnits) {
  picprk::par::DriverConfig cfg;
  cfg.init.grid = GridSpec(24, 0.5);
  cfg.init.total_particles = 800;
  cfg.init.distribution = picprk::pic::Geometric{0.85};
  cfg.init.dt = 2.0;
  cfg.init.k = 1;
  cfg.steps = 25;
  picprk::comm::World world(4);
  world.run([&](picprk::comm::Comm& comm) {
    EXPECT_TRUE(picprk::par::run_baseline(comm, cfg).ok);
  });
}

}  // namespace
