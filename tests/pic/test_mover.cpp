#include <gtest/gtest.h>

#include <cmath>

#include "pic/charge.hpp"
#include "pic/init.hpp"
#include "pic/mover.hpp"

namespace {

using picprk::pic::AlternatingColumnCharges;
using picprk::pic::charge_base;
using picprk::pic::coulomb;
using picprk::pic::Force;
using picprk::pic::GridSpec;
using picprk::pic::Particle;
using picprk::pic::total_force;

Particle canonical_particle(const GridSpec& grid, std::int64_t cx, std::int64_t cy,
                            int k = 0, int m = 0, double drift = 1.0) {
  Particle p;
  p.x = p.x0 = grid.cell_center(cx);
  p.y = p.y0 = grid.cell_center(cy);
  p.vx = 0.0;
  p.vy = static_cast<double>(m) * grid.h;
  const double col_sign = (cx % 2 == 0) ? 1.0 : -1.0;
  p.q = drift * col_sign * static_cast<double>(2 * k + 1) * charge_base();
  p.k = k;
  p.m = m;
  p.dir = drift > 0 ? 1 : -1;
  return p;
}

TEST(Coulomb, InverseSquareMagnitude) {
  const Force f = coulomb(2.0, 0.0, 1.0, 1.0);
  EXPECT_NEAR(f.fx, 1.0 / 4.0, 1e-15);
  EXPECT_NEAR(f.fy, 0.0, 1e-15);
}

TEST(Coulomb, AttractionForOppositeSigns) {
  // dx > 0 means q2 is to the LEFT of q1 (dx = x1 - x2); like charges
  // push q1 further right (+fx), unlike pull it left (−fx).
  const Force like = coulomb(1.0, 0.0, 1.0, 1.0);
  const Force unlike = coulomb(1.0, 0.0, 1.0, -1.0);
  EXPECT_GT(like.fx, 0.0);
  EXPECT_LT(unlike.fx, 0.0);
}

TEST(Coulomb, DirectionAlongJoiningLine) {
  const Force f = coulomb(3.0, 4.0, 2.0, 5.0);
  // |F| = q1 q2 / r^2 = 10/25; components split 3:4.
  EXPECT_NEAR(f.fx, (10.0 / 25.0) * (3.0 / 5.0), 1e-15);
  EXPECT_NEAR(f.fy, (10.0 / 25.0) * (4.0 / 5.0), 1e-15);
}

TEST(TotalForce, VerticalComponentCancels) {
  // On the horizontal axis of symmetry the net vertical force is ~0
  // (paper Figure 2 argument).
  GridSpec grid(10, 1.0);
  AlternatingColumnCharges charges;
  const Particle p = canonical_particle(grid, 2, 3);
  const Force f = total_force(p, grid, charges);
  EXPECT_NEAR(f.fy, 0.0, 1e-15);
  EXPECT_NE(f.fx, 0.0);
}

TEST(TotalForce, YieldsExactlyOneCellHop) {
  GridSpec grid(10, 1.0);
  AlternatingColumnCharges charges;
  const Particle p = canonical_particle(grid, 2, 3);
  const Force f = total_force(p, grid, charges);
  // Displacement in one step = f/2 (dt=1, v0=0) must equal h.
  EXPECT_NEAR(0.5 * f.fx, 1.0, 1e-12);
}

TEST(TotalForce, OddColumnReversesForce) {
  GridSpec grid(10, 1.0);
  AlternatingColumnCharges charges;
  // DriftRight particles in odd columns carry negative charge and still
  // feel a +x force.
  const Particle p = canonical_particle(grid, 3, 3);
  EXPECT_LT(p.q, 0.0);
  const Force f = total_force(p, grid, charges);
  EXPECT_NEAR(0.5 * f.fx, 1.0, 1e-12);
}

TEST(TotalForce, DriftLeftReversesDirection) {
  GridSpec grid(10, 1.0);
  AlternatingColumnCharges charges;
  const Particle p = canonical_particle(grid, 2, 3, 0, 0, -1.0);
  const Force f = total_force(p, grid, charges);
  EXPECT_NEAR(0.5 * f.fx, -1.0, 1e-12);
}

TEST(TotalForce, HigherKScalesForce) {
  GridSpec grid(10, 1.0);
  AlternatingColumnCharges charges;
  const Particle p1 = canonical_particle(grid, 2, 3, 1);  // (2k+1) = 3
  const Force f = total_force(p1, grid, charges);
  EXPECT_NEAR(0.5 * f.fx, 3.0, 1e-12);
}

TEST(MoveParticle, AlternatingHopPattern) {
  // The defining kinematics (paper Figure 2): accelerate one cell right,
  // decelerate one cell right, velocity returns to zero every 2 steps.
  GridSpec grid(10, 1.0);
  AlternatingColumnCharges charges;
  Particle p = canonical_particle(grid, 2, 3);
  picprk::pic::move_particle(p, grid, charges, 1.0);
  EXPECT_NEAR(p.x, 3.5, 1e-12);
  EXPECT_GT(p.vx, 0.0);
  picprk::pic::move_particle(p, grid, charges, 1.0);
  EXPECT_NEAR(p.x, 4.5, 1e-12);
  EXPECT_NEAR(p.vx, 0.0, 1e-12);
  EXPECT_NEAR(p.y, 3.5, 1e-12);  // no vertical motion for m = 0
}

TEST(MoveParticle, VerticalConstantVelocity) {
  GridSpec grid(10, 1.0);
  AlternatingColumnCharges charges;
  Particle p = canonical_particle(grid, 2, 3, 0, 2);
  picprk::pic::move_particle(p, grid, charges, 1.0);
  EXPECT_NEAR(p.y, 5.5, 1e-12);
  picprk::pic::move_particle(p, grid, charges, 1.0);
  EXPECT_NEAR(p.y, 7.5, 1e-12);
  EXPECT_NEAR(p.vy, 2.0, 1e-15);
}

TEST(MoveParticle, PeriodicWrapInX) {
  GridSpec grid(4, 1.0);
  AlternatingColumnCharges charges;
  Particle p = canonical_particle(grid, 3, 0);
  picprk::pic::move_particle(p, grid, charges, 1.0);
  EXPECT_NEAR(p.x, 0.5, 1e-12);  // wrapped from 3.5 + 1
}

TEST(MoveParticle, PeriodicWrapInY) {
  GridSpec grid(4, 1.0);
  AlternatingColumnCharges charges;
  Particle p = canonical_particle(grid, 0, 3, 0, 1);
  picprk::pic::move_particle(p, grid, charges, 1.0);
  EXPECT_NEAR(p.y, 0.5, 1e-12);
}

TEST(MoveParticle, NegativeMMovesDown) {
  GridSpec grid(8, 1.0);
  AlternatingColumnCharges charges;
  Particle p = canonical_particle(grid, 0, 0, 0, -1);
  picprk::pic::move_particle(p, grid, charges, 1.0);
  EXPECT_NEAR(p.y, 7.5, 1e-12);  // wrapped from -0.5
}

TEST(MoveAll, MatchesPerParticleMoves) {
  GridSpec grid(10, 1.0);
  AlternatingColumnCharges charges;
  std::vector<Particle> batch;
  for (std::int64_t cx = 0; cx < 5; ++cx) batch.push_back(canonical_particle(grid, cx, 2));
  std::vector<Particle> singles = batch;
  picprk::pic::move_all(std::span<Particle>(batch), grid, charges, 1.0);
  for (auto& p : singles) picprk::pic::move_particle(p, grid, charges, 1.0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i].x, singles[i].x);
    EXPECT_DOUBLE_EQ(batch[i].vx, singles[i].vx);
  }
}

TEST(MoveAllSoA, MatchesAoSMover) {
  GridSpec grid(12, 1.0);
  AlternatingColumnCharges charges;
  std::vector<Particle> aos;
  for (std::int64_t cx = 0; cx < 12; ++cx) {
    aos.push_back(canonical_particle(grid, cx, cx % 12, static_cast<int>(cx % 3),
                                     static_cast<int>(cx % 5) - 2));
  }
  auto soa = picprk::pic::to_soa(aos);
  for (int step = 0; step < 4; ++step) {
    picprk::pic::move_all(std::span<Particle>(aos), grid, charges, 1.0);
    picprk::pic::move_all_soa(soa, grid, charges, 1.0);
  }
  const auto back = picprk::pic::to_aos(soa);
  ASSERT_EQ(back.size(), aos.size());
  for (std::size_t i = 0; i < aos.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].x, aos[i].x) << i;
    EXPECT_DOUBLE_EQ(back[i].y, aos[i].y) << i;
    EXPECT_DOUBLE_EQ(back[i].vx, aos[i].vx) << i;
    EXPECT_DOUBLE_EQ(back[i].vy, aos[i].vy) << i;
  }
}

TEST(MoveParticle, SlabChargesMatchAnalytic) {
  GridSpec grid(10, 1.0);
  AlternatingColumnCharges pattern;
  auto slab = picprk::pic::ChargeSlab::sample(pattern, 0, 0, 11, 11);
  Particle pa = canonical_particle(grid, 4, 4);
  Particle pb = pa;
  picprk::pic::move_particle(pa, grid, pattern, 1.0);
  picprk::pic::move_particle(pb, grid, slab, 1.0);
  EXPECT_DOUBLE_EQ(pa.x, pb.x);
  EXPECT_DOUBLE_EQ(pa.vx, pb.vx);
}

}  // namespace
