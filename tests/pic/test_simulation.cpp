#include <gtest/gtest.h>

#include "pic/simulation.hpp"

namespace {

using picprk::pic::CellRegion;
using picprk::pic::ChargeSign;
using picprk::pic::EventSchedule;
using picprk::pic::Geometric;
using picprk::pic::GridSpec;
using picprk::pic::InjectionEvent;
using picprk::pic::RemovalEvent;
using picprk::pic::run_serial;
using picprk::pic::SimulationConfig;
using picprk::pic::Sinusoidal;
using picprk::pic::Uniform;

SimulationConfig base_config(std::int64_t cells, std::uint64_t n, std::uint32_t steps) {
  SimulationConfig cfg;
  cfg.init.grid = GridSpec(cells, 1.0);
  cfg.init.total_particles = n;
  cfg.steps = steps;
  return cfg;
}

TEST(SerialSimulation, UniformVerifies) {
  auto cfg = base_config(40, 2000, 50);
  const auto result = run_serial(cfg);
  EXPECT_TRUE(result.ok()) << "failures=" << result.verification.position_failures;
  EXPECT_EQ(result.final_particles, result.verification.checked);
}

TEST(SerialSimulation, GeometricSkewVerifies) {
  auto cfg = base_config(60, 3000, 80);
  cfg.init.distribution = Geometric{0.9};
  cfg.init.k = 1;
  cfg.init.m = 1;
  EXPECT_TRUE(run_serial(cfg).ok());
}

TEST(SerialSimulation, SinusoidalWithRandomSignsVerifies) {
  auto cfg = base_config(40, 2000, 60);
  cfg.init.distribution = Sinusoidal{};
  cfg.init.sign = ChargeSign::Random;
  cfg.init.m = -2;
  EXPECT_TRUE(run_serial(cfg).ok());
}

TEST(SerialSimulation, SoAMoverVerifies) {
  auto cfg = base_config(40, 2000, 50);
  cfg.init.k = 1;
  EXPECT_TRUE(run_serial(cfg, /*use_soa=*/true).ok());
}

TEST(SerialSimulation, LongRunManyWraps) {
  auto cfg = base_config(16, 400, 400);
  cfg.init.k = 1;  // 3 cells/step on a 16-cell ring: many wraps
  cfg.init.m = 2;
  const auto result = run_serial(cfg);
  EXPECT_TRUE(result.ok());
  EXPECT_LT(result.verification.max_position_error, 1e-6);
}

TEST(SerialSimulation, InjectionVerifies) {
  auto cfg = base_config(40, 1000, 60);
  cfg.events = EventSchedule({InjectionEvent{20, CellRegion{10, 30, 10, 30}, 500}}, {});
  const auto result = run_serial(cfg);
  EXPECT_TRUE(result.ok());
  EXPECT_GT(result.final_particles, 1000u);
}

TEST(SerialSimulation, RemovalVerifies) {
  auto cfg = base_config(40, 2000, 60);
  cfg.events = EventSchedule({}, {RemovalEvent{30, CellRegion{0, 40, 0, 40}, 0.5}});
  const auto result = run_serial(cfg);
  EXPECT_TRUE(result.ok());
  EXPECT_LT(result.final_particles, 2000u);
  EXPECT_GT(result.final_particles, 0u);
}

TEST(SerialSimulation, InjectionAndRemovalTogether) {
  auto cfg = base_config(40, 1500, 80);
  cfg.events = EventSchedule(
      {InjectionEvent{10, CellRegion{0, 20, 0, 40}, 400},
       InjectionEvent{40, CellRegion{20, 40, 0, 40}, 400}},
      {RemovalEvent{25, CellRegion{0, 40, 0, 20}, 0.7}});
  EXPECT_TRUE(run_serial(cfg).ok());
}

TEST(SerialSimulation, ZeroStepsIsInitialState) {
  auto cfg = base_config(20, 300, 0);
  const auto result = run_serial(cfg);
  EXPECT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.verification.max_position_error, 0.0);
}

TEST(SerialSimulation, HigherKTravelsFaster) {
  // Indirect check: k = 2 must still verify (5 cells per step).
  auto cfg = base_config(30, 600, 45);
  cfg.init.k = 2;
  EXPECT_TRUE(run_serial(cfg).ok());
}

}  // namespace
