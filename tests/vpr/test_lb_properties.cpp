// Property tests over all balancer strategies with randomized inputs:
// a remap must always be a valid placement, never increase the maximum
// worker load for the improving strategies, and be deterministic.
#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"
#include "vpr/lb.hpp"

namespace {

using picprk::util::SplitMix64;
using picprk::vpr::make_load_balancer;
using picprk::vpr::VpLoad;

std::vector<VpLoad> random_loads(SplitMix64& rng, int vps, int workers) {
  std::vector<VpLoad> loads(static_cast<std::size_t>(vps));
  for (int v = 0; v < vps; ++v) {
    auto& l = loads[static_cast<std::size_t>(v)];
    l.vp = v;
    l.load = static_cast<double>(rng.next_below(1000));
    l.worker = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(workers)));
    // Ring neighbors as generic locality hints.
    l.neighbors = {(v + 1) % vps, (v + vps - 1) % vps};
  }
  return loads;
}

double max_load(const std::vector<VpLoad>& loads, const std::vector<int>& placement,
                int workers) {
  std::vector<double> w(static_cast<std::size_t>(workers), 0.0);
  for (std::size_t i = 0; i < loads.size(); ++i)
    w[static_cast<std::size_t>(placement[i])] += loads[i].load;
  return *std::max_element(w.begin(), w.end());
}

class LbProperty : public ::testing::TestWithParam<const char*> {};
INSTANTIATE_TEST_SUITE_P(Strategies, LbProperty,
                         ::testing::Values("null", "greedy", "refine", "diffusion",
                                           "compact", "rotate"),
                         [](const auto& info) { return std::string(info.param); });

TEST_P(LbProperty, ValidPlacementOnRandomInputs) {
  auto lb = make_load_balancer(GetParam());
  SplitMix64 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const int workers = 1 + static_cast<int>(rng.next_below(8));
    const int vps = workers + static_cast<int>(rng.next_below(40));
    const auto loads = random_loads(rng, vps, workers);
    const auto placement = lb->remap(loads, workers);
    ASSERT_EQ(placement.size(), loads.size());
    for (int w : placement) {
      EXPECT_GE(w, 0);
      EXPECT_LT(w, workers);
    }
  }
}

TEST_P(LbProperty, Deterministic) {
  auto lb = make_load_balancer(GetParam());
  SplitMix64 rng(99);
  const auto loads = random_loads(rng, 30, 4);
  EXPECT_EQ(lb->remap(loads, 4), lb->remap(loads, 4));
}

class ImprovingLbProperty : public ::testing::TestWithParam<const char*> {};
INSTANTIATE_TEST_SUITE_P(Strategies, ImprovingLbProperty,
                         ::testing::Values("greedy", "refine", "compact"),
                         [](const auto& info) { return std::string(info.param); });

TEST_P(ImprovingLbProperty, NeverWorsensTheMaximum) {
  auto lb = make_load_balancer(GetParam());
  SplitMix64 rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    const int workers = 2 + static_cast<int>(rng.next_below(6));
    const int vps = workers * (1 + static_cast<int>(rng.next_below(8)));
    const auto loads = random_loads(rng, vps, workers);
    std::vector<int> orig;
    for (const auto& l : loads) orig.push_back(l.worker);
    const auto placement = lb->remap(loads, workers);
    EXPECT_LE(max_load(loads, placement, workers),
              max_load(loads, orig, workers) + 1e-9)
        << GetParam() << " trial " << trial;
  }
}

TEST_P(ImprovingLbProperty, SubstantiallyImprovesConcentratedLoad) {
  auto lb = make_load_balancer(GetParam());
  // Everything on worker 0.
  std::vector<VpLoad> loads(16);
  for (int v = 0; v < 16; ++v) {
    loads[static_cast<std::size_t>(v)] =
        VpLoad{v, 10.0, 0, {(v + 1) % 16, (v + 15) % 16}};
  }
  const auto placement = lb->remap(loads, 4);
  EXPECT_LE(max_load(loads, placement, 4), 0.5 * 160.0);
}

}  // namespace
