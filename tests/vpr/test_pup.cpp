#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "vpr/pup.hpp"

namespace {

using picprk::vpr::Pup;
using picprk::vpr::pup_pack;
using picprk::vpr::pup_size;
using picprk::vpr::pup_unpack;

struct Simple {
  int a = 0;
  double b = 0.0;
  std::vector<std::uint64_t> v;
  std::string name;

  void pup(Pup& p) {
    p(a);
    p(b);
    p(v);
    p(name);
  }
};

struct Nested {
  Simple inner;
  std::int64_t tag = 0;

  void pup(Pup& p) {
    p(inner);
    p(tag);
  }
};

TEST(PupTest, SizeMatchesPack) {
  Simple s{7, 2.5, {1, 2, 3}, "hello"};
  EXPECT_EQ(pup_size(s), pup_pack(s).size());
}

TEST(PupTest, RoundTripSimple) {
  Simple s{42, -1.25, {10, 20, 30, 40}, "pic-prk"};
  auto buffer = pup_pack(s);
  Simple t;
  pup_unpack(t, std::move(buffer));
  EXPECT_EQ(t.a, 42);
  EXPECT_DOUBLE_EQ(t.b, -1.25);
  EXPECT_EQ(t.v, (std::vector<std::uint64_t>{10, 20, 30, 40}));
  EXPECT_EQ(t.name, "pic-prk");
}

TEST(PupTest, RoundTripNested) {
  Nested n{{1, 2.0, {5}, "x"}, 99};
  Nested m;
  pup_unpack(m, pup_pack(n));
  EXPECT_EQ(m.inner.a, 1);
  EXPECT_EQ(m.inner.v, std::vector<std::uint64_t>{5});
  EXPECT_EQ(m.tag, 99);
}

TEST(PupTest, EmptyVectorsAndStrings) {
  Simple s{0, 0.0, {}, ""};
  Simple t{9, 9.0, {1}, "junk"};
  pup_unpack(t, pup_pack(s));
  EXPECT_TRUE(t.v.empty());
  EXPECT_TRUE(t.name.empty());
}

TEST(PupTest, UnpackDetectsTrailingBytes) {
  Simple s{1, 1.0, {}, ""};
  auto buffer = pup_pack(s);
  buffer.push_back(std::byte{0});
  Simple t;
  EXPECT_THROW(pup_unpack(t, std::move(buffer)), picprk::ContractViolation);
}

TEST(PupTest, UnpackDetectsTruncation) {
  Simple s{1, 1.0, {1, 2, 3}, "abc"};
  auto buffer = pup_pack(s);
  buffer.resize(buffer.size() - 2);
  Simple t;
  EXPECT_THROW(pup_unpack(t, std::move(buffer)), picprk::ContractViolation);
}

struct Holder {
  std::vector<Simple> items;
  void pup(Pup& p) { p(items); }
};

TEST(PupTest, VectorOfPupablesRoundTrips) {
  Holder h;
  h.items.push_back(Simple{1, 1.5, {9}, "one"});
  h.items.push_back(Simple{2, 2.5, {8, 7}, "two"});
  Holder out;
  pup_unpack(out, pup_pack(h));
  ASSERT_EQ(out.items.size(), 2u);
  EXPECT_EQ(out.items[0].name, "one");
  EXPECT_EQ(out.items[1].v, (std::vector<std::uint64_t>{8, 7}));
  EXPECT_EQ(pup_size(h), pup_pack(h).size());
}

TEST(PupTest, EmptyVectorOfPupables) {
  Holder h;
  Holder out;
  out.items.push_back(Simple{});
  pup_unpack(out, pup_pack(h));
  EXPECT_TRUE(out.items.empty());
}

TEST(PupTest, SizingModeWritesNothing) {
  Simple s{3, 4.0, {7, 8}, "zz"};
  Pup p(Pup::Mode::Size);
  s.pup(p);
  EXPECT_TRUE(p.sizing());
  EXPECT_GT(p.bytes(), 0u);
}

}  // namespace
