#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/assert.hpp"
#include "vpr/lb.hpp"

namespace {

using picprk::vpr::DiffusionLb;
using picprk::vpr::GreedyLb;
using picprk::vpr::make_load_balancer;
using picprk::vpr::NullLb;
using picprk::vpr::RefineLb;
using picprk::vpr::RotateLb;
using picprk::vpr::VpLoad;

std::vector<VpLoad> make_loads(const std::vector<double>& loads,
                               const std::vector<int>& workers) {
  std::vector<VpLoad> out(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    out[i] = VpLoad{static_cast<int>(i), loads[i], workers[i]};
  }
  return out;
}

std::vector<double> worker_loads(const std::vector<VpLoad>& loads,
                                 const std::vector<int>& placement, int workers) {
  std::vector<double> w(static_cast<std::size_t>(workers), 0.0);
  for (std::size_t i = 0; i < loads.size(); ++i)
    w[static_cast<std::size_t>(placement[i])] += loads[i].load;
  return w;
}

double max_over_mean(const std::vector<double>& w) {
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  const double mean = total / static_cast<double>(w.size());
  double mx = 0;
  for (double v : w) mx = std::max(mx, v);
  return mean > 0 ? mx / mean : 1.0;
}

TEST(NullLbTest, KeepsPlacement) {
  NullLb lb;
  auto loads = make_loads({5, 1, 3, 2}, {0, 0, 1, 1});
  EXPECT_EQ(lb.remap(loads, 2), (std::vector<int>{0, 0, 1, 1}));
}

TEST(GreedyLbTest, BalancesSkewedLoads) {
  GreedyLb lb;
  // All heavy VPs start on worker 0 (the skewed-cloud situation).
  auto loads = make_loads({100, 90, 80, 1, 1, 1, 1, 1}, {0, 0, 0, 0, 1, 1, 1, 1});
  auto placement = lb.remap(loads, 2);
  const auto before = max_over_mean(worker_loads(loads, {0, 0, 0, 0, 1, 1, 1, 1}, 2));
  const auto after = max_over_mean(worker_loads(loads, placement, 2));
  EXPECT_LT(after, before);
  // {100,90,80} cannot be split better than 170 vs 105 over two workers;
  // greedy reaches that optimum (ratio 170/137.5 ≈ 1.24).
  EXPECT_LT(after, 1.25);
}

TEST(GreedyLbTest, HeaviestGoesFirst) {
  GreedyLb lb;
  auto loads = make_loads({10, 1, 1, 1}, {0, 0, 0, 0});
  auto placement = lb.remap(loads, 2);
  // Heaviest VP alone on one worker, the three light ones on the other.
  const auto w = worker_loads(loads, placement, 2);
  EXPECT_DOUBLE_EQ(std::max(w[0], w[1]), 10.0);
  EXPECT_DOUBLE_EQ(std::min(w[0], w[1]), 3.0);
}

TEST(GreedyLbTest, IgnoresLocality) {
  // Greedy may move a VP even when the placement was already optimal —
  // the locality-agnostic behaviour the paper observes. We only check
  // that the resulting balance is never worse than the input's.
  GreedyLb lb;
  auto loads = make_loads({4, 4, 4, 4}, {0, 0, 1, 1});
  auto placement = lb.remap(loads, 2);
  EXPECT_LE(max_over_mean(worker_loads(loads, placement, 2)), 1.0 + 1e-12);
}

TEST(RefineLbTest, OnlyMovesWhatIsNeeded) {
  RefineLb lb(1.05);
  auto loads = make_loads({6, 1, 1, 4, 4}, {0, 0, 0, 1, 1});
  auto placement = lb.remap(loads, 2);
  int moved = 0;
  const std::vector<int> orig{0, 0, 0, 1, 1};
  for (std::size_t i = 0; i < placement.size(); ++i) moved += placement[i] != orig[i];
  EXPECT_LE(moved, 2);
  EXPECT_LE(max_over_mean(worker_loads(loads, placement, 2)), 1.3);
}

TEST(RefineLbTest, BalancedInputUntouched) {
  RefineLb lb;
  auto loads = make_loads({5, 5, 5, 5}, {0, 1, 0, 1});
  EXPECT_EQ(lb.remap(loads, 2), (std::vector<int>{0, 1, 0, 1}));
}

TEST(DiffusionLbTest, NeighborSmoothing) {
  DiffusionLb lb(0.10);
  // Worker 0 overloaded, workers in a ring 0-1-2.
  auto loads = make_loads({10, 10, 10, 2, 2}, {0, 0, 0, 1, 2});
  auto placement = lb.remap(loads, 3);
  const auto after = max_over_mean(worker_loads(loads, placement, 3));
  const auto before = max_over_mean(worker_loads(loads, {0, 0, 0, 1, 2}, 3));
  EXPECT_LT(after, before);
}

TEST(DiffusionLbTest, BalancedStaysPut) {
  DiffusionLb lb(0.10);
  auto loads = make_loads({5, 5, 5}, {0, 1, 2});
  EXPECT_EQ(lb.remap(loads, 3), (std::vector<int>{0, 1, 2}));
}

TEST(RotateLbTest, ShiftsEveryVp) {
  RotateLb lb;
  auto loads = make_loads({1, 2, 3}, {0, 1, 2});
  EXPECT_EQ(lb.remap(loads, 3), (std::vector<int>{1, 2, 0}));
}

TEST(FactoryTest, AllNamesResolve) {
  for (const char* name : {"null", "greedy", "refine", "diffusion", "rotate"}) {
    auto lb = make_load_balancer(name);
    ASSERT_NE(lb, nullptr);
    EXPECT_EQ(lb->name(), name);
  }
}

TEST(FactoryTest, UnknownNameThrows) {
  EXPECT_THROW(make_load_balancer("bogus"), picprk::ContractViolation);
}

TEST(GreedyLbTest, SingleWorkerDegenerate) {
  GreedyLb lb;
  auto loads = make_loads({3, 1}, {0, 0});
  EXPECT_EQ(lb.remap(loads, 1), (std::vector<int>{0, 0}));
}

}  // namespace
