#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>

#include "vpr/runtime.hpp"

namespace {

using picprk::vpr::Pup;
using picprk::vpr::Runtime;
using picprk::vpr::RuntimeConfig;
using picprk::vpr::VirtualProcessor;
using picprk::vpr::VpContext;

/// Each VP holds a counter and passes a token around a ring every step.
class RingVp final : public VirtualProcessor {
 public:
  explicit RingVp(int id) : VirtualProcessor(id) {}

  void step(VpContext& ctx) override {
    ++steps_;
    const int next = (id() + 1) % ctx.vps();
    std::vector<std::byte> payload(sizeof(std::uint64_t));
    const std::uint64_t value = static_cast<std::uint64_t>(id()) * 1000 + ctx.step();
    std::memcpy(payload.data(), &value, sizeof(value));
    ctx.send(next, std::move(payload));
  }

  void deliver(int src_vp, std::vector<std::byte> payload) override {
    ASSERT_EQ(payload.size(), sizeof(std::uint64_t));
    std::uint64_t value = 0;
    std::memcpy(&value, payload.data(), sizeof(value));
    EXPECT_EQ(src_vp, (id() + vps_hint_ - 1) % vps_hint_);
    received_ += value;
    ++messages_;
  }

  double load() const override { return weight_; }

  void pup(Pup& p) override {
    p(steps_);
    p(received_);
    p(messages_);
    p(weight_);
    p(vps_hint_);
  }

  std::uint64_t steps_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t messages_ = 0;
  double weight_ = 1.0;
  int vps_hint_ = 0;
};

RuntimeConfig make_config(int workers, int vps, std::uint32_t interval = 0,
                          const std::string& balancer = "greedy") {
  RuntimeConfig c;
  c.workers = workers;
  c.vps = vps;
  c.lb_interval = interval;
  c.balancer = balancer;
  return c;
}

TEST(RuntimeTest, EveryVpStepsEveryStep) {
  Runtime rt(make_config(2, 6), [](int id) {
    auto vp = std::make_unique<RingVp>(id);
    vp->vps_hint_ = 6;
    return vp;
  });
  rt.run(10);
  rt.for_each_vp([](VirtualProcessor& vp) {
    EXPECT_EQ(static_cast<RingVp&>(vp).steps_, 10u);
  });
  EXPECT_EQ(rt.stats().steps, 10u);
}

TEST(RuntimeTest, MessagesDeliveredOncePerStep) {
  const int vps = 5;
  Runtime rt(make_config(2, vps), [vps](int id) {
    auto vp = std::make_unique<RingVp>(id);
    vp->vps_hint_ = vps;
    return vp;
  });
  rt.run(7);
  rt.for_each_vp([](VirtualProcessor& vp) {
    EXPECT_EQ(static_cast<RingVp&>(vp).messages_, 7u);
  });
  EXPECT_EQ(rt.stats().messages, 7u * vps);
}

TEST(RuntimeTest, InitialPlacementIsBlockwise) {
  Runtime rt(make_config(2, 8), [](int id) {
    auto vp = std::make_unique<RingVp>(id);
    vp->vps_hint_ = 8;
    return vp;
  });
  for (int v = 0; v < 4; ++v) EXPECT_EQ(rt.worker_of(v), 0);
  for (int v = 4; v < 8; ++v) EXPECT_EQ(rt.worker_of(v), 1);
}

TEST(RuntimeTest, GreedyLbMigratesSkewedVps) {
  // VPs 0..3 (on worker 0) are heavy: greedy must move some across.
  Runtime rt(make_config(2, 8, /*interval=*/2), [](int id) {
    auto vp = std::make_unique<RingVp>(id);
    vp->vps_hint_ = 8;
    vp->weight_ = id < 4 ? 100.0 : 1.0;
    return vp;
  });
  rt.run(5);
  EXPECT_GT(rt.stats().lb_invocations, 0u);
  EXPECT_GT(rt.stats().migrations, 0u);
  EXPECT_GT(rt.stats().migrated_bytes, 0u);
  // After balancing, the heavy VPs must be spread over both workers.
  int heavy_on_0 = 0, heavy_on_1 = 0;
  for (int v = 0; v < 4; ++v) (rt.worker_of(v) == 0 ? heavy_on_0 : heavy_on_1)++;
  EXPECT_GT(heavy_on_0, 0);
  EXPECT_GT(heavy_on_1, 0);
}

TEST(RuntimeTest, MigrationPreservesVpState) {
  Runtime rt(make_config(2, 4, /*interval=*/1, "rotate"), [](int id) {
    auto vp = std::make_unique<RingVp>(id);
    vp->vps_hint_ = 4;
    return vp;
  });
  rt.run(6);  // rotate migrates every VP every step after step 0
  EXPECT_GE(rt.stats().migrations, 4u);
  rt.for_each_vp([](VirtualProcessor& vp) {
    auto& ring = static_cast<RingVp&>(vp);
    EXPECT_EQ(ring.steps_, 6u);      // state survived the pack/unpack cycles
    EXPECT_EQ(ring.messages_, 6u);
  });
}

TEST(RuntimeTest, NullLbNeverMigrates) {
  Runtime rt(make_config(2, 6, /*interval=*/1, "null"), [](int id) {
    auto vp = std::make_unique<RingVp>(id);
    vp->vps_hint_ = 6;
    return vp;
  });
  rt.run(5);
  EXPECT_GT(rt.stats().lb_invocations, 0u);
  EXPECT_EQ(rt.stats().migrations, 0u);
}

TEST(RuntimeTest, CrossWorkerBytesTracked) {
  // Ring over 2 workers: the 2 boundary messages per step cross workers.
  Runtime rt(make_config(2, 4), [](int id) {
    auto vp = std::make_unique<RingVp>(id);
    vp->vps_hint_ = 4;
    return vp;
  });
  rt.run(3);
  EXPECT_EQ(rt.stats().message_bytes, 3u * 4u * sizeof(std::uint64_t));
  EXPECT_EQ(rt.stats().cross_worker_bytes, 3u * 2u * sizeof(std::uint64_t));
}

TEST(RuntimeTest, SingleWorkerInlinePath) {
  Runtime rt(make_config(1, 3), [](int id) {
    auto vp = std::make_unique<RingVp>(id);
    vp->vps_hint_ = 3;
    return vp;
  });
  rt.run(4);
  rt.for_each_vp([](VirtualProcessor& vp) {
    EXPECT_EQ(static_cast<RingVp&>(vp).steps_, 4u);
  });
}

TEST(RuntimeTest, ImbalanceRecordedBeforeLb) {
  Runtime rt(make_config(2, 4, /*interval=*/2), [](int id) {
    auto vp = std::make_unique<RingVp>(id);
    vp->vps_hint_ = 4;
    vp->weight_ = id == 0 ? 10.0 : 1.0;
    return vp;
  });
  rt.run(3);
  ASSERT_FALSE(rt.stats().imbalance_before_lb.empty());
  EXPECT_GT(rt.stats().imbalance_before_lb.front(), 1.0);
}

TEST(RuntimeTest, VpExceptionPropagates) {
  class ThrowingVp final : public VirtualProcessor {
   public:
    explicit ThrowingVp(int id) : VirtualProcessor(id) {}
    void step(VpContext&) override { throw std::runtime_error("vp boom"); }
    void deliver(int, std::vector<std::byte>) override {}
    double load() const override { return 1.0; }
    void pup(Pup&) override {}
  };
  Runtime rt(make_config(2, 2), [](int id) { return std::make_unique<ThrowingVp>(id); });
  EXPECT_THROW(rt.run(1), std::runtime_error);
}

TEST(RuntimeTest, MoreVpsThanWorkersRequired) {
  EXPECT_THROW(Runtime(make_config(4, 2), [](int id) {
                 return std::make_unique<RingVp>(id);
               }),
               picprk::ContractViolation);
}

}  // namespace
