#include <gtest/gtest.h>

#include "perfsim/workload.hpp"

namespace {

using picprk::perfsim::ColumnWorkload;
using picprk::pic::Geometric;
using picprk::pic::GridSpec;
using picprk::pic::InitParams;
using picprk::pic::Initializer;
using picprk::pic::Patch;
using picprk::pic::Uniform;

TEST(ColumnWorkloadTest, DirectCountsAndSums) {
  ColumnWorkload w({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(w.total(), 10.0);
  EXPECT_DOUBLE_EQ(w.count(2), 3.0);
  EXPECT_DOUBLE_EQ(w.range_sum(1, 3), 5.0);
  EXPECT_DOUBLE_EQ(w.range_sum(0, 4), 10.0);
  EXPECT_DOUBLE_EQ(w.range_sum(2, 2), 0.0);
}

TEST(ColumnWorkloadTest, AdvanceRotatesRight) {
  ColumnWorkload w({1, 2, 3, 4});
  w.advance(1);
  // Column 0 now holds what used to be in column 3.
  EXPECT_DOUBLE_EQ(w.count(0), 4.0);
  EXPECT_DOUBLE_EQ(w.count(1), 1.0);
  EXPECT_DOUBLE_EQ(w.total(), 10.0);
}

TEST(ColumnWorkloadTest, AdvanceWrapsAndAccumulates) {
  ColumnWorkload w({1, 2, 3, 4});
  w.advance(3);
  w.advance(3);  // net 6 ≡ 2 (mod 4)
  EXPECT_DOUBLE_EQ(w.count(2), 1.0);
  EXPECT_DOUBLE_EQ(w.count(3), 2.0);
  w.advance(-2);
  EXPECT_DOUBLE_EQ(w.count(0), 1.0);
}

TEST(ColumnWorkloadTest, WrappedRangeSum) {
  ColumnWorkload w({1, 2, 3, 4});
  w.advance(2);  // logical: [3,4,1,2]
  EXPECT_DOUBLE_EQ(w.count(0), 3.0);
  EXPECT_DOUBLE_EQ(w.range_sum(0, 2), 7.0);
  EXPECT_DOUBLE_EQ(w.range_sum(1, 4), 7.0);
}

TEST(ColumnWorkloadTest, InjectionAndRemoval) {
  ColumnWorkload w({10, 10, 10, 10});
  w.add_uniform(0, 2, 6.0);
  EXPECT_DOUBLE_EQ(w.count(0), 13.0);
  EXPECT_DOUBLE_EQ(w.total(), 46.0);
  w.scale_range(0, 4, 0.5);
  EXPECT_DOUBLE_EQ(w.total(), 23.0);
}

TEST(ColumnWorkloadTest, EventsComposeWithRotation) {
  ColumnWorkload w({1, 1, 1, 1});
  w.advance(1);
  w.add_uniform(0, 1, 5.0);  // logical column 0 after rotation
  EXPECT_DOUBLE_EQ(w.count(0), 6.0);
  w.advance(1);
  EXPECT_DOUBLE_EQ(w.count(1), 6.0);  // the bump travels with the flow
}

TEST(ColumnWorkloadTest, FromExpectedMatchesRequestTotal) {
  InitParams params;
  params.grid = GridSpec(100, 1.0);
  params.total_particles = 50000;
  params.distribution = Geometric{0.95};
  const auto w = ColumnWorkload::from_expected(params);
  EXPECT_EQ(w.columns(), 100);
  EXPECT_NEAR(w.total(), 50000.0, 1.0);
}

TEST(ColumnWorkloadTest, FromExpectedPatchMassInsideRegion) {
  InitParams params;
  params.grid = GridSpec(40, 1.0);
  params.total_particles = 8000;
  params.distribution = Patch{{10, 20, 5, 15}};
  const auto w = ColumnWorkload::from_expected(params);
  EXPECT_NEAR(w.total(), 8000.0, 1.0);
  EXPECT_DOUBLE_EQ(w.count(0), 0.0);
  EXPECT_GT(w.count(12), 0.0);
}

TEST(ColumnWorkloadTest, FromInitializerMatchesRealColumnTotals) {
  InitParams params;
  params.grid = GridSpec(50, 1.0);
  params.total_particles = 5000;
  params.distribution = Geometric{0.9};
  const Initializer init(params);
  const auto w = ColumnWorkload::from_initializer(init);
  EXPECT_DOUBLE_EQ(w.total(), static_cast<double>(init.total()));
  for (std::int64_t cx = 0; cx < 50; cx += 7) {
    EXPECT_DOUBLE_EQ(w.count(cx), static_cast<double>(init.column_total(cx)));
  }
}

TEST(ColumnWorkloadTest, ExpectedTracksInitializerClosely) {
  InitParams params;
  params.grid = GridSpec(60, 1.0);
  params.total_particles = 60000;
  params.distribution = Geometric{0.93};
  const Initializer init(params);
  const auto exact = ColumnWorkload::from_initializer(init);
  const auto model = ColumnWorkload::from_expected(params);
  // Stochastic rounding deviates by O(√cells) per column at most.
  for (std::int64_t cx = 0; cx < 60; ++cx) {
    EXPECT_NEAR(model.count(cx), exact.count(cx), 40.0) << "column " << cx;
  }
}

}  // namespace
