#include <gtest/gtest.h>

#include "perfsim/engine.hpp"
#include "perfsim/engine2d.hpp"

namespace {

using picprk::perfsim::ColumnWorkload;
using picprk::perfsim::DiffusionModelParams;
using picprk::perfsim::Engine;
using picprk::perfsim::Engine2D;
using picprk::perfsim::Event2D;
using picprk::perfsim::MachineModel;
using picprk::perfsim::Run2DConfig;
using picprk::perfsim::RunConfig;
using picprk::perfsim::Workload2D;
using picprk::pic::CellRegion;
using picprk::pic::Geometric;
using picprk::pic::GridSpec;
using picprk::pic::InitParams;
using picprk::pic::Patch;
using picprk::pic::Uniform;

InitParams make_params(std::int64_t cells, std::uint64_t n,
                       picprk::pic::Distribution dist, bool rotate = false) {
  InitParams p;
  p.grid = GridSpec(cells, 1.0);
  p.total_particles = n;
  p.distribution = dist;
  p.rotate90 = rotate;
  return p;
}

TEST(Engine2DTest, AgreesWithColumnEngineOnYUniformWorkload) {
  const auto params = make_params(120, 120000, Geometric{0.95});
  const Engine col(MachineModel{}, ColumnWorkload::from_expected(params));
  const Engine2D two_d(MachineModel{}, Workload2D::from_expected(params));

  RunConfig c1;
  c1.steps = 100;
  Run2DConfig c2;
  c2.steps = 100;
  const auto a = col.run_static(8, c1);
  const auto b = two_d.run_static(8, c2);
  // Identical workload, identical decomposition: the imbalance and the
  // seconds must agree to rounding.
  EXPECT_NEAR(a.avg_imbalance, b.avg_imbalance, 1e-6);
  EXPECT_NEAR(a.seconds, b.seconds, a.seconds * 1e-6);
  EXPECT_NEAR(a.max_particles_final, b.max_particles_final, 1e-6);
}

TEST(Engine2DTest, Deterministic) {
  const auto params = make_params(60, 30000, Geometric{0.9});
  const Engine2D engine(MachineModel{}, Workload2D::from_expected(params));
  Run2DConfig cfg;
  cfg.steps = 80;
  const auto a = engine.run_static(6, cfg);
  const auto b = engine.run_static(6, cfg);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(Engine2DTest, TwoPhaseBeatsXOnlyOnRotatedSkew) {
  // The model-level version of RotatedDrivers.XOnlyDiffusionCannotFix:
  // with the skew in y, phase-1-only diffusion is structurally inert.
  const auto params = make_params(64, 64000, Geometric{0.85}, /*rotate=*/true);
  const Engine2D engine(MachineModel{}, Workload2D::from_expected(params));
  Run2DConfig cfg;
  cfg.steps = 200;
  DiffusionModelParams lb;
  lb.frequency = 8;
  lb.threshold = 0.05;
  lb.border_width = 2;

  const auto base = engine.run_static(4, cfg);
  const auto xonly = engine.run_diffusion(4, cfg, lb, /*two_phase=*/false);
  const auto xy = engine.run_diffusion(4, cfg, lb, /*two_phase=*/true);

  EXPECT_GT(xonly.avg_imbalance, base.avg_imbalance * 0.95);
  EXPECT_LT(xy.avg_imbalance, base.avg_imbalance * 0.8);
  EXPECT_LT(xy.seconds, xonly.seconds);
}

TEST(Engine2DTest, YDriftCostsYCommunication) {
  const auto params = make_params(64, 64000, Uniform{});
  const Engine2D engine(MachineModel{}, Workload2D::from_expected(params));
  Run2DConfig no_drift;
  no_drift.steps = 100;
  no_drift.shift_y = 0;
  Run2DConfig drift = no_drift;
  drift.shift_y = 2;
  const auto a = engine.run_static(4, no_drift);
  const auto b = engine.run_static(4, drift);
  EXPECT_GT(b.seconds, a.seconds);
}

TEST(Engine2DTest, CornerPatchImbalance) {
  const auto params =
      make_params(64, 64000, Patch{CellRegion{0, 16, 0, 16}});
  const Engine2D engine(MachineModel{}, Workload2D::from_expected(params));
  Run2DConfig cfg;
  cfg.steps = 50;
  const auto r = engine.run_static(4, cfg);
  // One of the 2×2 blocks holds (nearly) everything; the average dips
  // below 4 only while the drifting patch straddles the block boundary.
  EXPECT_GT(r.avg_imbalance, 3.0);
  EXPECT_LE(r.avg_imbalance, 4.0 + 1e-9);
}

TEST(Engine2DTest, EventsShiftWork) {
  const auto params = make_params(64, 32000, Uniform{});
  Engine2D with_events(MachineModel{}, Workload2D::from_expected(params));
  with_events.set_events(
      {Event2D{25, CellRegion{0, 16, 0, 16}, /*inject=*/64000.0, 0.0}});
  const Engine2D plain(MachineModel{}, Workload2D::from_expected(params));
  Run2DConfig cfg;
  cfg.steps = 50;
  const auto a = plain.run_static(4, cfg);
  const auto b = with_events.run_static(4, cfg);
  EXPECT_GT(b.seconds, a.seconds * 1.5);
  EXPECT_GT(b.avg_imbalance, a.avg_imbalance);
}

TEST(Engine2DTest, VprMatchesColumnEngineOnYUniformWorkload) {
  const auto params = make_params(120, 120000, Geometric{0.95});
  const Engine col(MachineModel{}, ColumnWorkload::from_expected(params));
  const Engine2D two_d(MachineModel{}, Workload2D::from_expected(params));
  picprk::perfsim::VprModelParams v;
  v.overdecomposition = 4;
  v.lb_interval = 25;
  RunConfig c1;
  c1.steps = 100;
  Run2DConfig c2;
  c2.steps = 100;
  const auto a = col.run_vpr(8, c1, v);
  const auto b = two_d.run_vpr(8, c2, v);
  // The engines compute identical VP loads up to floating-point summation
  // order; greedy tie-breaks can then diverge, so the agreement is close
  // but not bitwise.
  EXPECT_NEAR(a.seconds, b.seconds, a.seconds * 0.10);
  EXPECT_NEAR(a.avg_imbalance, b.avg_imbalance, 0.05);
  EXPECT_GT(b.migrations, 0u);
}

TEST(Engine2DTest, VprBalancesRotatedSkewWhereXOnlyDiffusionCannot) {
  // The runtime balancer is skew-direction agnostic: on a rotated
  // (row-skewed) workload it must beat x-only diffusion.
  const auto params = make_params(64, 64000, Geometric{0.85}, /*rotate=*/true);
  const Engine2D engine(MachineModel{}, Workload2D::from_expected(params));
  Run2DConfig cfg;
  cfg.steps = 200;
  DiffusionModelParams lb;
  lb.frequency = 8;
  lb.threshold = 0.05;
  lb.border_width = 2;
  picprk::perfsim::VprModelParams v;
  v.overdecomposition = 8;
  // Balance early: the rotated skew is static (the drift is in x), so
  // after the first LB the runtime stays balanced; a late first LB would
  // let the imbalanced prefix dominate the average.
  v.lb_interval = 10;
  const auto xonly = engine.run_diffusion(4, cfg, lb, /*two_phase=*/false);
  const auto vpr = engine.run_vpr(4, cfg, v);
  // The runtime balancer removes the imbalance (x-only diffusion cannot
  // touch a y-skew), which shows in the compute-critical-path integral.
  // Total wall time is NOT asserted: at this toy scale the realistically
  // priced stop-the-world LB stalls dominate — the Figure-5 F-tradeoff.
  EXPECT_LT(vpr.avg_imbalance, xonly.avg_imbalance * 0.8);
  EXPECT_LT(vpr.compute_seconds, xonly.compute_seconds * 0.85);
  EXPECT_GT(vpr.migrations, 0u);
}

TEST(Engine2DTest, SerialSecondsMatchesColumnEngine) {
  const auto params = make_params(80, 40000, Geometric{0.92});
  const Engine col(MachineModel{}, ColumnWorkload::from_expected(params));
  const Engine2D two_d(MachineModel{}, Workload2D::from_expected(params));
  RunConfig c1;
  c1.steps = 60;
  Run2DConfig c2;
  c2.steps = 60;
  EXPECT_NEAR(col.serial_seconds(c1), two_d.serial_seconds(c2), 1e-9);
}

}  // namespace
