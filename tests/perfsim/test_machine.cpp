#include <gtest/gtest.h>

#include "perfsim/machine.hpp"

namespace {

using picprk::perfsim::MachineModel;

TEST(MachineModelTest, NodeMapping) {
  MachineModel m;
  m.cores_per_node = 24;
  EXPECT_EQ(m.node_of(0), 0);
  EXPECT_EQ(m.node_of(23), 0);
  EXPECT_EQ(m.node_of(24), 1);
  EXPECT_EQ(m.node_of(383), 15);
  EXPECT_TRUE(m.same_node(0, 23));
  EXPECT_FALSE(m.same_node(23, 24));
}

TEST(MachineModelTest, MessageCostsOrdered) {
  MachineModel m;
  // Inter-node strictly slower than intra-node for any size.
  for (double bytes : {0.0, 100.0, 1e6}) {
    EXPECT_GT(m.msg_cost(bytes, false), m.msg_cost(bytes, true));
  }
  // Cost grows with size.
  EXPECT_GT(m.msg_cost(1e6, true), m.msg_cost(10, true));
}

TEST(MachineModelTest, HomogeneousSpeedDefault) {
  MachineModel m;
  EXPECT_DOUBLE_EQ(m.speed_of(0), 1.0);
  EXPECT_DOUBLE_EQ(m.speed_of(1000), 1.0);
}

TEST(MachineModelTest, ExplicitSpeeds) {
  MachineModel m;
  m.core_speed = {1.0, 0.5, 2.0};
  EXPECT_DOUBLE_EQ(m.speed_of(1), 0.5);
  EXPECT_DOUBLE_EQ(m.speed_of(2), 2.0);
  EXPECT_THROW(m.speed_of(3), picprk::ContractViolation);
}

TEST(MachineModelTest, NoiseDisabledByDefault) {
  MachineModel m;
  EXPECT_DOUBLE_EQ(m.noise(3, 17), 1.0);
}

TEST(MachineModelTest, NoiseDeterministicAndBounded) {
  MachineModel m;
  m.noise_level = 0.1;
  const double a = m.noise(3, 17);
  EXPECT_DOUBLE_EQ(a, m.noise(3, 17));           // deterministic
  EXPECT_NE(a, m.noise(3, 18));                  // varies by step
  EXPECT_NE(a, m.noise(4, 17));                  // varies by core
  for (int core = 0; core < 50; ++core) {
    for (std::uint32_t step = 0; step < 50; ++step) {
      const double v = m.noise(core, step);
      EXPECT_GE(v, 1.0 - 0.1 * 1.7321);
      EXPECT_LE(v, 1.0 + 0.1 * 1.7321);
    }
  }
}

TEST(MachineModelTest, NoiseMeanNearOne) {
  MachineModel m;
  m.noise_level = 0.2;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += m.noise(i % 97, static_cast<std::uint32_t>(i / 97));
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

}  // namespace
