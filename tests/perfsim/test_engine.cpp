#include <gtest/gtest.h>

#include "perfsim/engine.hpp"

namespace {

using picprk::perfsim::ColumnWorkload;
using picprk::perfsim::DiffusionModelParams;
using picprk::perfsim::Engine;
using picprk::perfsim::EventModel;
using picprk::perfsim::MachineModel;
using picprk::perfsim::ModelResult;
using picprk::perfsim::RunConfig;
using picprk::perfsim::VprModelParams;
using picprk::pic::Geometric;
using picprk::pic::GridSpec;
using picprk::pic::InitParams;
using picprk::pic::Uniform;

ColumnWorkload skewed_workload(std::int64_t cells = 600, std::uint64_t n = 600000,
                               double r = 0.99) {
  InitParams params;
  params.grid = GridSpec(cells, 1.0);
  params.total_particles = n;
  params.distribution = Geometric{r};
  return ColumnWorkload::from_expected(params);
}

ColumnWorkload uniform_workload(std::int64_t cells = 600, std::uint64_t n = 600000) {
  InitParams params;
  params.grid = GridSpec(cells, 1.0);
  params.total_particles = n;
  params.distribution = Uniform{};
  return ColumnWorkload::from_expected(params);
}

RunConfig short_run(std::uint32_t steps = 200) {
  RunConfig c;
  c.steps = steps;
  return c;
}

TEST(EngineTest, SerialTimeProportionalToWork) {
  Engine engine(MachineModel{}, uniform_workload());
  const double t1 = engine.serial_seconds(short_run(100));
  const double t2 = engine.serial_seconds(short_run(200));
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(EngineTest, Deterministic) {
  Engine engine(MachineModel{}, skewed_workload());
  const auto a = engine.run_static(24, short_run());
  const auto b = engine.run_static(24, short_run());
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_DOUBLE_EQ(a.avg_imbalance, b.avg_imbalance);
}

TEST(EngineTest, UniformWorkloadIsBalanced) {
  Engine engine(MachineModel{}, uniform_workload());
  const auto r = engine.run_static(24, short_run());
  EXPECT_NEAR(r.avg_imbalance, 1.0, 0.02);
}

TEST(EngineTest, SkewedWorkloadIsImbalancedWithoutLb) {
  Engine engine(MachineModel{}, skewed_workload());
  const auto r = engine.run_static(24, short_run());
  EXPECT_GT(r.avg_imbalance, 1.5);
}

TEST(EngineTest, StaticScalesButSublinearlyUnderSkew) {
  Engine engine(MachineModel{}, skewed_workload());
  const auto serial = engine.serial_seconds(short_run());
  const auto p24 = engine.run_static(24, short_run());
  const double speedup = serial / p24.seconds;
  EXPECT_GT(speedup, 4.0);
  EXPECT_LT(speedup, 24.0);  // imbalance forbids ideal scaling
}

TEST(EngineTest, DiffusionBeatsStaticOnSkew) {
  Engine engine(MachineModel{}, skewed_workload());
  DiffusionModelParams lb;
  lb.frequency = 16;
  lb.threshold = 0.05;
  lb.border_width = 2;
  const auto base = engine.run_static(24, short_run(400));
  const auto diff = engine.run_diffusion(24, short_run(400), lb);
  EXPECT_LT(diff.seconds, base.seconds);
  EXPECT_LT(diff.avg_imbalance, base.avg_imbalance);
  EXPECT_GT(diff.migrations, 0u);
  EXPECT_LT(diff.max_particles_final, base.max_particles_final);
}

TEST(EngineTest, VprGreedyBeatsStaticOnSkew) {
  Engine engine(MachineModel{}, skewed_workload());
  VprModelParams params;
  params.overdecomposition = 4;
  // LB sparse enough that the stop-the-world stalls amortize over the
  // (laptop-scale) run — the co-tuning requirement of Figure 5.
  params.lb_interval = 100;
  const auto base = engine.run_static(24, short_run(400));
  const auto vpr = engine.run_vpr(24, short_run(400), params);
  EXPECT_LT(vpr.seconds, base.seconds);
  EXPECT_GT(vpr.migrations, 0u);
}

TEST(EngineTest, VprWithoutLbPaysOverheadOnly) {
  Engine engine(MachineModel{}, uniform_workload());
  VprModelParams params;
  params.overdecomposition = 4;
  params.lb_interval = 0;
  const auto base = engine.run_static(24, short_run());
  const auto vpr = engine.run_vpr(24, short_run(), params);
  EXPECT_EQ(vpr.migrations, 0u);
  // On a uniform workload over-decomposition only costs overhead.
  EXPECT_GT(vpr.seconds, base.seconds * 0.99);
}

TEST(EngineTest, ExtremeOverdecompositionCostsMore) {
  // The right side of Figure 5's d-curve: too many VPs hurt.
  Engine engine(MachineModel{}, skewed_workload());
  VprModelParams d4;
  d4.overdecomposition = 4;
  d4.lb_interval = 32;
  VprModelParams d64 = d4;
  d64.overdecomposition = 64;
  const auto r4 = engine.run_vpr(24, short_run(400), d4);
  const auto r64 = engine.run_vpr(24, short_run(400), d64);
  EXPECT_GT(r64.seconds, r4.seconds);
}

TEST(EngineTest, TooFrequentLbCostsMore) {
  // The left side of Figure 5's F-curve: balancing every few steps pays
  // migration cost without new imbalance to remove.
  Engine engine(MachineModel{}, skewed_workload());
  VprModelParams fast;
  fast.overdecomposition = 4;
  fast.lb_interval = 2;
  VprModelParams slow = fast;
  slow.lb_interval = 64;
  const auto rf = engine.run_vpr(24, short_run(400), fast);
  const auto rs = engine.run_vpr(24, short_run(400), slow);
  EXPECT_GT(rf.seconds, rs.seconds);
}

TEST(EngineTest, NoiseRaisesMakespan) {
  MachineModel noisy;
  noisy.noise_level = 0.2;
  Engine quiet_engine(MachineModel{}, uniform_workload());
  Engine noisy_engine(noisy, uniform_workload());
  const auto quiet = quiet_engine.run_static(24, short_run());
  const auto loud = noisy_engine.run_static(24, short_run());
  EXPECT_GT(loud.seconds, quiet.seconds);
  EXPECT_GT(loud.avg_imbalance, 1.05);
}

TEST(EngineTest, SlowCoreCreatesImbalance) {
  MachineModel skew;
  skew.core_speed.assign(24, 1.0);
  skew.core_speed[7] = 0.5;  // one core at half speed (category-1 source)
  Engine engine(skew, uniform_workload());
  const auto r = engine.run_static(24, short_run());
  EXPECT_NEAR(r.avg_imbalance, 2.0, 0.1);
}

TEST(EngineTest, EventsChangeWork) {
  Engine engine(MachineModel{}, uniform_workload(600, 100000));
  Engine with_events(MachineModel{}, uniform_workload(600, 100000));
  with_events.set_events({EventModel{50, 0, 600, /*inject=*/100000.0, 0.0}});
  const auto plain = engine.run_static(8, short_run(100));
  const auto bursty = with_events.run_static(8, short_run(100));
  EXPECT_GT(bursty.seconds, plain.seconds * 1.2);
}

TEST(EngineTest, RemovalEventReducesWork) {
  Engine with_removal(MachineModel{}, uniform_workload(600, 100000));
  with_removal.set_events({EventModel{10, 0, 600, 0.0, /*remove=*/0.5}});
  Engine plain(MachineModel{}, uniform_workload(600, 100000));
  EXPECT_LT(with_removal.serial_seconds(short_run(100)),
            plain.serial_seconds(short_run(100)) * 0.7);
}

TEST(EngineTest, ImbalanceSeriesCollected) {
  Engine engine(MachineModel{}, skewed_workload());
  RunConfig cfg = short_run(50);
  cfg.collect_series = true;
  cfg.sample_every = 10;
  const auto r = engine.run_static(8, cfg);
  EXPECT_EQ(r.imbalance_series.size(), 5u);
}

TEST(EngineTest, SingleCoreDegenerates) {
  Engine engine(MachineModel{}, skewed_workload(100, 10000, 0.9));
  const auto r = engine.run_static(1, short_run(50));
  EXPECT_NEAR(r.avg_imbalance, 1.0, 1e-9);
  EXPECT_NEAR(r.seconds, engine.serial_seconds(short_run(50)), 1e-9);
}

TEST(EngineTest, BreakdownSumsToTotal) {
  Engine engine(MachineModel{}, skewed_workload());
  DiffusionModelParams lb;
  lb.frequency = 16;
  const auto r = engine.run_diffusion(24, short_run(200), lb);
  EXPECT_NEAR(r.compute_seconds + r.comm_seconds + r.lb_seconds, r.seconds, 1e-9);
}

}  // namespace
