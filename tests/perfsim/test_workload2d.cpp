#include <gtest/gtest.h>

#include "perfsim/workload.hpp"
#include "perfsim/workload2d.hpp"

namespace {

using picprk::perfsim::ColumnWorkload;
using picprk::perfsim::Workload2D;
using picprk::pic::CellRegion;
using picprk::pic::Geometric;
using picprk::pic::GridSpec;
using picprk::pic::InitParams;
using picprk::pic::Initializer;
using picprk::pic::Patch;

TEST(Workload2DTest, CountsAndTotal) {
  // 2x2 grid: counts row-major [1 2; 3 4].
  Workload2D w(2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(w.count(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(w.count(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(w.count(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(w.count(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(w.total(), 10.0);
}

TEST(Workload2DTest, RectSums) {
  Workload2D w(4, {1, 0, 0, 0,  //
                   0, 2, 0, 0,  //
                   0, 0, 3, 0,  //
                   0, 0, 0, 4});
  EXPECT_DOUBLE_EQ(w.range_sum(0, 2, 0, 2), 3.0);
  EXPECT_DOUBLE_EQ(w.range_sum(1, 4, 1, 4), 9.0);
  EXPECT_DOUBLE_EQ(w.range_sum(0, 4, 0, 4), 10.0);
  EXPECT_DOUBLE_EQ(w.range_sum(2, 2, 0, 4), 0.0);
}

TEST(Workload2DTest, AdvanceShiftsBothAxes) {
  Workload2D w(3, {1, 0, 0,  //
                   0, 0, 0,  //
                   0, 0, 0});
  w.advance(1, 2);
  EXPECT_DOUBLE_EQ(w.count(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(w.count(0, 0), 0.0);
  w.advance(2, 1);  // wraps both axes back to (0, 0)
  EXPECT_DOUBLE_EQ(w.count(0, 0), 1.0);
}

TEST(Workload2DTest, WrappedRectSumAfterAdvance) {
  Workload2D w(4, {1, 1, 1, 1,  //
                   1, 1, 1, 1,  //
                   1, 1, 1, 1,  //
                   1, 1, 1, 1});
  w.advance(3, 3);
  // Any rectangle sums to its area regardless of the wrap position.
  EXPECT_DOUBLE_EQ(w.range_sum(2, 4, 2, 4), 4.0);
  EXPECT_DOUBLE_EQ(w.range_sum(1, 4, 0, 2), 6.0);
}

TEST(Workload2DTest, EventsComposeWithRotation) {
  Workload2D w(4, std::vector<double>(16, 1.0));
  w.advance(1, 1);
  w.add_uniform(CellRegion{0, 2, 0, 2}, 4.0);  // logical lower-left quarter
  EXPECT_DOUBLE_EQ(w.count(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(w.range_sum(0, 2, 0, 2), 8.0);
  w.scale_region(CellRegion{0, 2, 0, 2}, 0.5);
  EXPECT_DOUBLE_EQ(w.range_sum(0, 2, 0, 2), 4.0);
  // The bump travels with subsequent rotation.
  w.advance(2, 0);
  EXPECT_DOUBLE_EQ(w.range_sum(2, 4, 0, 2), 4.0);
}

TEST(Workload2DTest, MatchesColumnModelForYUniform) {
  InitParams params;
  params.grid = GridSpec(32, 1.0);
  params.total_particles = 32000;
  params.distribution = Geometric{0.9};
  const auto w2 = Workload2D::from_expected(params);
  const auto wc = ColumnWorkload::from_expected(params);
  for (std::int64_t cx = 0; cx < 32; cx += 3) {
    EXPECT_NEAR(w2.range_sum(cx, cx + 1, 0, 32), wc.range_sum(cx, cx + 1), 1e-9);
  }
}

TEST(Workload2DTest, RotatedSkewInY) {
  InitParams params;
  params.grid = GridSpec(32, 1.0);
  params.total_particles = 32000;
  params.distribution = Geometric{0.8};
  params.rotate90 = true;
  const auto w = Workload2D::from_expected(params);
  EXPECT_GT(w.range_sum(0, 32, 0, 8), 10.0 * w.range_sum(0, 32, 24, 32));
  // Columns are flat.
  EXPECT_NEAR(w.range_sum(0, 8, 0, 32), w.range_sum(24, 32, 0, 32), 1e-6);
}

TEST(Workload2DTest, PatchMassConfined) {
  InitParams params;
  params.grid = GridSpec(24, 1.0);
  params.total_particles = 4800;
  params.distribution = Patch{CellRegion{4, 10, 12, 20}};
  const auto w = Workload2D::from_expected(params);
  EXPECT_NEAR(w.total(), 4800.0, 1e-9);
  EXPECT_DOUBLE_EQ(w.range_sum(0, 4, 0, 24), 0.0);
  EXPECT_NEAR(w.range_sum(4, 10, 12, 20), 4800.0, 1e-9);
}

TEST(Workload2DTest, FromInitializerExact) {
  InitParams params;
  params.grid = GridSpec(20, 1.0);
  params.total_particles = 2000;
  params.distribution = Geometric{0.9};
  const Initializer init(params);
  const auto w = Workload2D::from_initializer(init);
  EXPECT_DOUBLE_EQ(w.total(), static_cast<double>(init.total()));
  EXPECT_DOUBLE_EQ(w.count(3, 7), static_cast<double>(init.count_in_cell(3, 7)));
}

}  // namespace
