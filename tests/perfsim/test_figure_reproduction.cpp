// Reproduction guards: the qualitative claims of the paper's evaluation,
// pinned as tests at reduced step counts so a regression in any model or
// policy component that would change a figure's *shape* fails CI. The
// full-scale numbers live in the bench harnesses; these tests assert the
// orderings and crossovers (what the PRK is designed to measure).
#include <gtest/gtest.h>

#include "perfsim/engine.hpp"

namespace {

using picprk::perfsim::ColumnWorkload;
using picprk::perfsim::DiffusionModelParams;
using picprk::perfsim::Engine;
using picprk::perfsim::MachineModel;
using picprk::perfsim::RunConfig;
using picprk::perfsim::VprModelParams;
using picprk::pic::Geometric;
using picprk::pic::GridSpec;
using picprk::pic::InitParams;

MachineModel edison() {
  MachineModel m;
  m.t_particle = 140e-9;
  return m;
}

/// Figure-6 workload (2,998² cells, 600 k particles, r = 0.999, k = 0).
Engine fig6_engine() {
  InitParams p;
  p.grid = GridSpec(2998, 1.0);
  p.total_particles = 600000;
  p.distribution = Geometric{0.999};
  return Engine(edison(), ColumnWorkload::from_expected(p));
}

/// Figure-7 workload at a given core count (11,998² cells, scaled n).
Engine fig7_engine(int cores) {
  InitParams p;
  p.grid = GridSpec(11998, 1.0);
  p.total_particles =
      static_cast<std::uint64_t>(400000.0 * static_cast<double>(cores) / 48.0);
  p.distribution = Geometric{0.999};
  return Engine(edison(), ColumnWorkload::from_expected(p));
}

RunConfig steps(std::uint32_t n) {
  RunConfig c;
  c.steps = n;
  return c;
}

TEST(Fig5Guard, FSweepIsUShaped) {
  // Too-frequent LB loses to moderate F; far-too-rare F loses again.
  InitParams p;
  p.grid = GridSpec(5998, 1.0);
  p.total_particles = 6400000;
  p.distribution = Geometric{0.999};
  const Engine engine(edison(), ColumnWorkload::from_expected(p));
  auto run_f = [&](std::uint32_t f) {
    VprModelParams v;
    v.overdecomposition = 4;
    v.lb_interval = f;
    return engine.run_vpr(192, steps(1500), v).seconds;
  };
  const double f20 = run_f(20);
  const double f160 = run_f(160);
  const double f1280 = run_f(1280);
  EXPECT_GT(f20, f160);    // left side of the U (paper: 180 s vs 43 s)
  EXPECT_GT(f1280, f160);  // right side of the U
}

TEST(Fig5Guard, OverdecompositionHelps) {
  InitParams p;
  p.grid = GridSpec(5998, 1.0);
  p.total_particles = 6400000;
  p.distribution = Geometric{0.999};
  const Engine engine(edison(), ColumnWorkload::from_expected(p));
  auto run_d = [&](int d) {
    VprModelParams v;
    v.overdecomposition = d;
    v.lb_interval = 1000;
    return engine.run_vpr(192, steps(1500), v).seconds;
  };
  // Paper: d=1 → 104 s, d=16 → 47 s (≈2.2×).
  EXPECT_GT(run_d(1), 1.5 * run_d(16));
}

TEST(Fig6LeftGuard, OrderingAt24Cores) {
  const Engine engine = fig6_engine();
  const auto base = engine.run_static(24, steps(1500));
  DiffusionModelParams lb{8, 0.02, 16};
  const auto diff = engine.run_diffusion(24, steps(1500), lb);
  VprModelParams v;
  v.overdecomposition = 4;
  v.lb_interval = 320;
  const auto ampi = engine.run_vpr(24, steps(1500), v);
  // Paper: LB 1.6×, ampi 1.3× over baseline — both beat the baseline,
  // diffusion beats ampi.
  EXPECT_LT(diff.seconds, base.seconds);
  EXPECT_LT(ampi.seconds, base.seconds);
  EXPECT_LT(diff.seconds, ampi.seconds);
}

TEST(Fig6LeftGuard, MaxParticlesPerCoreStatistic) {
  // §V-B: 62,645 baseline vs ~30,585 diffusion vs 25,000 ideal. The
  // baseline value is a pure workload/decomposition consequence, so the
  // model must land within a couple of percent.
  const Engine engine = fig6_engine();
  const auto base = engine.run_static(24, steps(1500));
  EXPECT_NEAR(base.max_particles_final, 62645.0, 2500.0);
  DiffusionModelParams lb{8, 0.02, 16};
  const auto diff = engine.run_diffusion(24, steps(1500), lb);
  EXPECT_LT(diff.max_particles_final, 40000.0);
  EXPECT_GE(diff.max_particles_final, 25000.0 * 0.95);
}

TEST(Fig6RightGuard, DiffusionWinsStrongScalingAt384) {
  const Engine engine = fig6_engine();
  DiffusionModelParams lb{8, 0.02, 16};
  const auto diff = engine.run_diffusion(384, steps(1500), lb);
  VprModelParams v;
  v.overdecomposition = 4;
  v.lb_interval = 640;
  const auto ampi = engine.run_vpr(384, steps(1500), v);
  const auto base = engine.run_static(384, steps(1500));
  EXPECT_LT(diff.seconds, ampi.seconds);  // paper: LB beats ampi (~2×)
  EXPECT_LT(ampi.seconds, base.seconds);
}

// The paper tunes each implementation per point (§V-B); a fixed
// parameter choice can flip close calls, so the guards tune over the
// same small grids the bench harnesses use.
double best_diffusion_seconds(const Engine& engine, int cores, const RunConfig& run) {
  double best = 1e300;
  for (std::uint32_t freq : {4u, 8u, 16u, 32u}) {
    for (double tau : {0.02, 0.10}) {
      for (std::int64_t width : {std::int64_t{4}, std::int64_t{16}, std::int64_t{64}}) {
        best = std::min(best,
                        engine.run_diffusion(cores, run, DiffusionModelParams{freq, tau, width})
                            .seconds);
      }
    }
  }
  return best;
}

double best_vpr_seconds(const Engine& engine, int cores, const RunConfig& run) {
  double best = 1e300;
  for (int d : {2, 4, 8}) {
    for (std::uint32_t f : {160u, 320u, 640u, 1280u}) {
      VprModelParams v;
      v.overdecomposition = d;
      v.lb_interval = f;
      best = std::min(best, engine.run_vpr(cores, run, v).seconds);
    }
  }
  return best;
}

TEST(Fig7Guard, AmpiWinsWeakScalingAt3072) {
  const Engine engine = fig7_engine(3072);
  const RunConfig run = steps(6000);
  const auto base = engine.run_static(3072, run);
  const double diff = best_diffusion_seconds(engine, 3072, run);
  const double ampi = best_vpr_seconds(engine, 3072, run);
  // Paper: ampi 2.4×, LB 1.8× over baseline; ampi best.
  EXPECT_LT(ampi, base.seconds);
  EXPECT_LT(diff, base.seconds);
  EXPECT_LT(ampi, diff);
}

TEST(Fig7Guard, CrossoverExists) {
  // At small scale diffusion wins; ampi overtakes by 3,072 cores (the
  // Figure 6R vs Figure 7 contrast in one test).
  const RunConfig run = steps(6000);
  const Engine small = fig7_engine(48);
  EXPECT_LT(best_diffusion_seconds(small, 48, run), best_vpr_seconds(small, 48, run));
  const Engine big = fig7_engine(3072);
  EXPECT_GT(best_diffusion_seconds(big, 3072, run), best_vpr_seconds(big, 3072, run));
}

}  // namespace
