// Cross-validation: the performance model's load-evolution must track
// the *real* threaded drivers. The model is exact on column totals (the
// workload rotation is the true dynamics); per-rank loads differ from a
// realised run only by the stochastic y-placement (O(√n) per rank).
#include <gtest/gtest.h>

#include <numeric>

#include "comm/world.hpp"
#include "lb/bounds.hpp"
#include "par/baseline.hpp"
#include "par/diffusion.hpp"
#include "perfsim/engine.hpp"

namespace {

using picprk::comm::Comm;
using picprk::comm::World;
using picprk::par::DriverConfig;
using picprk::par::DriverResult;
using picprk::perfsim::ColumnWorkload;
using picprk::perfsim::Engine;
using picprk::perfsim::MachineModel;
using picprk::perfsim::RunConfig;
using picprk::pic::Geometric;
using picprk::pic::GridSpec;
using picprk::pic::InitParams;
using picprk::pic::Initializer;

double mean(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

TEST(CrossValidation, StaticImbalanceMatchesRealBaseline) {
  InitParams params;
  params.grid = GridSpec(48, 1.0);
  params.total_particles = 24000;
  params.distribution = Geometric{0.9};

  DriverConfig cfg;
  cfg.init = params;
  cfg.steps = 24;
  cfg.sample_every = 1;

  DriverResult real;
  World world(4);
  world.run([&](Comm& comm) {
    const auto r = picprk::par::run_baseline(comm, cfg);
    if (comm.rank() == 0) real = r;
  });

  const Initializer init(params);
  Engine engine(MachineModel{}, ColumnWorkload::from_initializer(init));
  RunConfig model_cfg;
  model_cfg.steps = 24;
  model_cfg.collect_series = true;
  const auto model = engine.run_static(4, model_cfg);

  ASSERT_FALSE(real.imbalance_series.empty());
  ASSERT_FALSE(model.imbalance_series.empty());
  // Time-averaged imbalance must agree within the y-realisation noise.
  EXPECT_NEAR(mean(model.imbalance_series), mean(real.imbalance_series), 0.12);
}

TEST(CrossValidation, ModelReproducesMeasuredMaxParticles) {
  InitParams params;
  params.grid = GridSpec(48, 1.0);
  params.total_particles = 24000;
  params.distribution = Geometric{0.9};

  DriverConfig cfg;
  cfg.init = params;
  cfg.steps = 16;

  DriverResult real;
  World world(4);
  world.run([&](Comm& comm) {
    const auto r = picprk::par::run_baseline(comm, cfg);
    if (comm.rank() == 0) real = r;
  });

  const Initializer init(params);
  Engine engine(MachineModel{}, ColumnWorkload::from_initializer(init));
  const auto model = engine.run_static(4, RunConfig{16, 1, false, 1});

  EXPECT_NEAR(model.max_particles_final,
              static_cast<double>(real.max_particles_per_rank),
              0.05 * static_cast<double>(real.max_particles_per_rank));
}

TEST(CrossValidation, DiffusionDecisionLogicIsShared) {
  // The model calls the *same* lb::diffuse_bounds as the real driver,
  // so a boundary decision divergence is impossible by construction.
  // Check a representative call to document the shared entry point.
  const auto out = picprk::lb::diffuse_bounds({0, 8, 16}, {900.0, 100.0}, 50.0, 1);
  EXPECT_EQ(out, (std::vector<std::int64_t>{0, 7, 16}));
}

}  // namespace
