// The cross-job scheduler: weighted fair share and deterministic
// placement (docs/SERVICE.md). plan_cycle is pure — the bit-for-bit
// replay guarantee of the whole server reduces to these properties.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "svc/scheduler.hpp"

namespace {

using picprk::svc::CycleInput;
using picprk::svc::CyclePlan;
using picprk::svc::JobLoad;
using picprk::svc::Scheduler;

CycleInput three_jobs() {
  CycleInput in;
  in.cycle = 3;
  in.quantum = 8;
  in.workers = 4;
  in.jobs = {
      JobLoad{1, 1.0, 0.004, 100, 0},
      JobLoad{2, 2.0, 0.001, 100, 1},
      JobLoad{3, 0.5, 0.010, 100, 2},
  };
  return in;
}

TEST(SchedulerTest, FairShareScalesStepsByWeight) {
  const Scheduler sched("greedy");
  const CyclePlan plan = sched.plan_cycle(three_jobs());
  ASSERT_EQ(plan.steps.size(), 3u);
  EXPECT_EQ(plan.steps[0], 8u);   // weight 1.0 × quantum 8
  EXPECT_EQ(plan.steps[1], 16u);  // weight 2.0
  EXPECT_EQ(plan.steps[2], 4u);   // weight 0.5
}

TEST(SchedulerTest, GrantsClipToRemainingAndNeverStarve) {
  const Scheduler sched("greedy");
  CycleInput in = three_jobs();
  in.jobs[0].remaining = 3;      // near completion: granted only what's left
  in.jobs[2].weight = 0.01;      // tiny weight still gets ≥ 1 step
  const CyclePlan plan = sched.plan_cycle(in);
  EXPECT_EQ(plan.steps[0], 3u);
  EXPECT_GE(plan.steps[2], 1u);
}

TEST(SchedulerTest, OwnersAreValidWorkers) {
  for (const char* spec : {"greedy", "refine", "null"}) {
    const Scheduler sched(spec);
    CycleInput in = three_jobs();
    for (int workers : {1, 2, 4}) {
      in.workers = workers;
      const CyclePlan plan = sched.plan_cycle(in);
      ASSERT_EQ(plan.owners.size(), in.jobs.size()) << spec;
      for (int owner : plan.owners) {
        EXPECT_GE(owner, 0) << spec;
        EXPECT_LT(owner, workers) << spec;
      }
    }
  }
}

TEST(SchedulerTest, ExpensiveJobsSpreadAcrossWorkers) {
  // Four equally expensive tenants on four workers: a placement strategy
  // worth the name gives them four distinct homes.
  const Scheduler sched("greedy");
  CycleInput in;
  in.quantum = 8;
  in.workers = 4;
  for (int j = 1; j <= 4; ++j) {
    in.jobs.push_back(JobLoad{j, 1.0, 0.005, 100, 0});
  }
  const CyclePlan plan = sched.plan_cycle(in);
  std::vector<bool> used(4, false);
  for (int owner : plan.owners) used[static_cast<std::size_t>(owner)] = true;
  EXPECT_TRUE(used[0] && used[1] && used[2] && used[3]);
}

TEST(SchedulerTest, PlanIsAPureFunctionOfItsInput) {
  // Same telemetry, two independent scheduler instances, many cycles:
  // identical canonical plans bit for bit — the replay contract.
  const Scheduler a("adaptive:inner=rcb");
  const Scheduler b("adaptive:inner=rcb");
  CycleInput in = three_jobs();
  for (std::uint32_t cycle = 0; cycle < 20; ++cycle) {
    in.cycle = cycle;
    in.jobs[0].cost_per_step = 0.001 * static_cast<double>(cycle % 7 + 1);
    in.jobs[1].owner = static_cast<int>(cycle % 4);
    const CyclePlan pa = a.plan_cycle(in);
    const CyclePlan pb = b.plan_cycle(in);
    EXPECT_EQ(pa.to_string(), pb.to_string()) << "cycle " << cycle;
    // And replaying the very same input on the same instance is stable:
    EXPECT_EQ(pa.to_string(), a.plan_cycle(in).to_string());
  }
}

TEST(SchedulerTest, CanonicalFormMentionsEveryJob) {
  const Scheduler sched("greedy");
  const CyclePlan plan = sched.plan_cycle(three_jobs());
  const std::string text = plan.to_string();
  EXPECT_NE(text.find("steps="), std::string::npos);
  EXPECT_NE(text.find("owner="), std::string::npos);
}

TEST(SchedulerTest, RejectsUnknownAndBoundsOnlyStrategies) {
  EXPECT_THROW(Scheduler("no-such-strategy"), std::invalid_argument);
  // Bounds-only strategies cannot place; tenant scheduling is a
  // placement problem. rcb only publishes bounds in this registry.
  EXPECT_THROW(Scheduler("rcb"), std::invalid_argument);
}

TEST(SchedulerTest, UnmeasuredJobsStillGetPlaced) {
  const Scheduler sched("greedy");
  CycleInput in = three_jobs();
  for (auto& j : in.jobs) j.cost_per_step = 0.0;  // cycle 0: nothing measured
  const CyclePlan plan = sched.plan_cycle(in);
  ASSERT_EQ(plan.owners.size(), 3u);
  for (int owner : plan.owners) {
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, in.workers);
  }
}

}  // namespace
