// The serve job-spec grammar: `name:key=val,...` lines (lb::parse_spec
// reuse), the submit/cancel/drain command verbs, and the loud rejection
// of malformed or nonsensical specs.
#include <gtest/gtest.h>

#include <stdexcept>

#include "pic/init.hpp"
#include "svc/spec.hpp"

namespace {

using picprk::svc::Command;
using picprk::svc::JobSpec;
using picprk::svc::parse_command;
using picprk::svc::parse_job_spec;

TEST(JobSpecTest, BareNameGetsDefaults) {
  const JobSpec spec = parse_job_spec("tenant0");
  EXPECT_EQ(spec.name, "tenant0");
  EXPECT_EQ(spec.run.workers, 1);  // jobs are super-VPs on the shared pool
  EXPECT_EQ(spec.run.overdecomposition, 4);
  EXPECT_EQ(spec.run.steps, 64u);
  EXPECT_DOUBLE_EQ(spec.weight, 1.0);
  EXPECT_EQ(spec.kill_vp, -1);
  EXPECT_EQ(picprk::pic::distribution_name(spec.run.init.distribution), "uniform");
}

TEST(JobSpecTest, FullSpecRoundTrips) {
  const JobSpec spec = parse_job_spec(
      "hot:cells=96,particles=50000,steps=128,dist=geometric,r=0.97,k=1,"
      "seed=7,d=8,lb_every=4,weight=2.5,sample_every=16");
  EXPECT_EQ(spec.name, "hot");
  EXPECT_EQ(spec.run.init.grid.cells, 96);
  EXPECT_EQ(spec.run.init.total_particles, 50000u);
  EXPECT_EQ(spec.run.steps, 128u);
  EXPECT_EQ(spec.run.init.k, 1);
  EXPECT_EQ(spec.run.init.seed, 7u);
  EXPECT_EQ(spec.run.overdecomposition, 8);
  EXPECT_EQ(spec.run.lb.every, 4u);
  EXPECT_DOUBLE_EQ(spec.weight, 2.5);
  EXPECT_EQ(spec.run.sample_every, 16u);
  // distribution_name renders the parameters too: geometric(r=0.97...).
  EXPECT_EQ(picprk::pic::distribution_name(spec.run.init.distribution)
                .rfind("geometric(", 0),
            0u);
}

TEST(JobSpecTest, BalancerValueTranslatesSlashesToNestedOptions) {
  const JobSpec spec = parse_job_spec("a:balancer=adaptive/inner=rcb/hysteresis=2");
  EXPECT_EQ(spec.run.lb.strategy, "adaptive:inner=rcb,hysteresis=2");
  const JobSpec plain = parse_job_spec("b:balancer=rcb");
  EXPECT_EQ(plain.run.lb.strategy, "rcb");
}

TEST(JobSpecTest, FaultDrillKnobs) {
  const JobSpec spec =
      parse_job_spec("drill:kill_vp=2,kill_step=10,checkpoint_every=4");
  EXPECT_EQ(spec.kill_vp, 2);
  EXPECT_EQ(spec.kill_step, 10u);
  EXPECT_EQ(spec.checkpoint_every, 4u);
}

TEST(JobSpecTest, RejectsNonsense) {
  // Unknown key, malformed value, bad combinations: all loud.
  EXPECT_THROW(parse_job_spec("a:frobnicate=1"), std::invalid_argument);
  EXPECT_THROW(parse_job_spec("a:steps=abc"), std::invalid_argument);
  EXPECT_THROW(parse_job_spec("a:weight=0"), std::invalid_argument);
  EXPECT_THROW(parse_job_spec("a:weight=-1"), std::invalid_argument);
  EXPECT_THROW(parse_job_spec("a:steps=0"), std::invalid_argument);
  EXPECT_THROW(parse_job_spec("a:dist=bogus"), std::invalid_argument);
  // kill without a checkpoint cadence is unrecoverable by construction.
  EXPECT_THROW(parse_job_spec("a:kill_vp=1"), std::invalid_argument);
  // kill_vp outside the VP range [0, d).
  EXPECT_THROW(parse_job_spec("a:d=4,kill_vp=4,checkpoint_every=2"),
               std::invalid_argument);
  // Spec-syntax errors surface from the shared splitter.
  EXPECT_THROW(parse_job_spec("a:steps"), std::invalid_argument);
  EXPECT_THROW(parse_job_spec(":steps=4"), std::invalid_argument);
}

TEST(ServeCommandTest, VerbsParse) {
  const auto submit = parse_command("submit jobA:dist=uniform,steps=8");
  ASSERT_TRUE(submit.has_value());
  EXPECT_EQ(submit->kind, Command::Kind::kSubmit);
  EXPECT_EQ(submit->spec.name, "jobA");

  const auto cancel = parse_command("  cancel jobA  ");
  ASSERT_TRUE(cancel.has_value());
  EXPECT_EQ(cancel->kind, Command::Kind::kCancel);
  EXPECT_EQ(cancel->target, "jobA");

  const auto drain = parse_command("drain");
  ASSERT_TRUE(drain.has_value());
  EXPECT_EQ(drain->kind, Command::Kind::kDrain);
}

TEST(ServeCommandTest, BlankAndCommentLinesAreSkipped) {
  EXPECT_FALSE(parse_command("").has_value());
  EXPECT_FALSE(parse_command("   \t ").has_value());
  EXPECT_FALSE(parse_command("# a comment").has_value());
}

TEST(ServeCommandTest, MalformedCommandsAreLoud) {
  EXPECT_THROW(parse_command("submit"), std::invalid_argument);
  EXPECT_THROW(parse_command("cancel"), std::invalid_argument);
  EXPECT_THROW(parse_command("drain now"), std::invalid_argument);
  EXPECT_THROW(parse_command("restart jobA"), std::invalid_argument);
}

}  // namespace
