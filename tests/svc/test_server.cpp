// End-to-end contract of the multi-tenant job server (docs/SERVICE.md):
// concurrent heterogeneous tenants all verify against the closed form,
// admission backpressure is typed and loud, a fault drill in one tenant
// never perturbs its neighbours, per-tenant metrics documents are
// disjoint, and two servers fed identical telemetry replay identical
// cross-job placement plans bit for bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "svc/job_table.hpp"
#include "svc/server.hpp"
#include "svc/spec.hpp"

namespace {

namespace fs = std::filesystem;
using picprk::svc::AdmissionError;
using picprk::svc::Job;
using picprk::svc::JobState;
using picprk::svc::Server;
using picprk::svc::ServerConfig;
using picprk::svc::parse_job_spec;

std::uint64_t closed_form(std::uint64_t n) { return n * (n + 1) / 2; }

ServerConfig quiet_config() {
  ServerConfig config;
  config.workers = 4;
  config.quantum = 8;
  return config;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// RAII temp dir for metrics-document tests.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() / ("picprk-svc-" + tag)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

TEST(ServerTest, FourHeterogeneousJobsAllVerify) {
  Server server(quiet_config());
  server.submit(parse_job_spec("uni:dist=uniform,particles=3000,steps=24,d=4"));
  server.submit(
      parse_job_spec("geo:dist=geometric,r=0.95,particles=2500,steps=32,d=4"));
  server.submit(parse_job_spec("sin:dist=sinusoidal,particles=2000,steps=16,d=2"));
  server.submit(parse_job_spec(
      "pat:dist=patch,patch_x0=0,patch_x1=16,patch_y0=0,patch_y1=16,"
      "particles=1500,steps=24,d=4,balancer=greedy"));

  std::ostringstream out;
  server.drain(out);

  const auto jobs = server.table().all();
  ASSERT_EQ(jobs.size(), 4u);
  for (const Job* job : jobs) {
    ASSERT_EQ(job->state(), JobState::kDone) << job->name() << ": " << job->failure();
    EXPECT_TRUE(job->result().ok) << job->name();
    EXPECT_EQ(job->steps_done(), job->spec().run.steps) << job->name();
    // init places approximately the requested count (per-cell rounding
    // drifts a little either way); ids are 1..placed, so the paper's
    // closed form is over the placed count: Σid = n(n+1)/2.
    const std::uint64_t n = job->result().final_particles;
    const std::uint64_t requested = job->spec().run.init.total_particles;
    EXPECT_GE(n, requested * 9 / 10) << job->name();
    EXPECT_LE(n, requested * 11 / 10) << job->name();
    EXPECT_EQ(job->result().id_checksum, closed_form(n)) << job->name();
    EXPECT_EQ(job->result().expected_checksum, closed_form(n)) << job->name();
  }
  // Every tenant got its own RESULT line with status=pass.
  const std::string text = out.str();
  for (const char* name : {"uni", "geo", "sin", "pat"}) {
    EXPECT_NE(text.find("RESULT impl=serve job=" + std::string(name) +
                        " status=pass"),
              std::string::npos)
        << name;
  }
}

TEST(ServerTest, BackpressureIsATypedLoudError) {
  ServerConfig config = quiet_config();
  config.queue_capacity = 2;
  Server server(config);
  server.submit(parse_job_spec("a:particles=1000,steps=8"));
  // Duplicate live names are a different (programming) error, checked
  // while a seat is still free.
  EXPECT_THROW(server.submit(parse_job_spec("a:particles=1000,steps=8")),
               std::invalid_argument);
  server.submit(parse_job_spec("b:particles=1000,steps=8"));
  try {
    server.submit(parse_job_spec("c:particles=1000,steps=8"));
    FAIL() << "third submit beyond capacity must throw AdmissionError";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.job(), "c");
    EXPECT_EQ(e.capacity(), 2u);
    EXPECT_NE(std::string(e.what()).find("capacity"), std::string::npos);
  }
  // Draining frees seats: the same job is admissible afterwards.
  std::ostringstream out;
  server.drain(out);
  EXPECT_NO_THROW(server.submit(parse_job_spec("c:particles=1000,steps=8")));
  server.drain(out);
}

TEST(ServerTest, FaultInOneTenantDoesNotPerturbNeighbours) {
  Server server(quiet_config());
  server.submit(parse_job_spec("left:dist=uniform,particles=2000,steps=24"));
  server.submit(parse_job_spec(
      "drill:dist=geometric,particles=2000,steps=24,"
      "kill_vp=1,kill_step=10,checkpoint_every=4"));
  server.submit(parse_job_spec("right:dist=sinusoidal,particles=2000,steps=24"));

  std::ostringstream out;
  server.drain(out);

  Job* drill = server.table().find("drill");
  ASSERT_NE(drill, nullptr);
  EXPECT_EQ(drill->state(), JobState::kDone) << drill->failure();
  EXPECT_TRUE(drill->result().ok);
  EXPECT_GE(drill->result().recoveries, 1u);  // the drill actually fired

  for (const char* name : {"left", "right"}) {
    Job* job = server.table().find(name);
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->state(), JobState::kDone) << name;
    EXPECT_TRUE(job->result().ok) << name;
    EXPECT_EQ(job->result().recoveries, 0u) << name;  // untouched by the drill
    EXPECT_EQ(job->result().id_checksum,
              closed_form(job->result().final_particles))
        << name;
  }
}

TEST(ServerTest, CancelledJobIsReportedNotVerified) {
  Server server(quiet_config());
  server.submit(parse_job_spec("keep:particles=1500,steps=16"));
  server.submit(parse_job_spec("drop:particles=1500,steps=16"));
  EXPECT_TRUE(server.cancel("drop"));
  EXPECT_FALSE(server.cancel("drop"));     // already cancelled
  EXPECT_FALSE(server.cancel("missing"));  // never existed

  std::ostringstream out;
  server.drain(out);
  EXPECT_EQ(server.table().find("drop")->state(), JobState::kCancelled);
  EXPECT_EQ(server.table().find("keep")->state(), JobState::kDone);
  EXPECT_NE(out.str().find("RESULT impl=serve job=drop status=cancelled"),
            std::string::npos);
  EXPECT_NE(out.str().find("RESULT impl=serve job=keep status=pass"),
            std::string::npos);
}

TEST(ServerTest, FairShareWeightsScaleCycleCounts) {
  // Two identical 64-step tenants, weights 1 and 2: the heavy one takes
  // 16 steps per cycle and finishes in half the cycles. The cycle count
  // is deterministic, so the ±10% bound of the acceptance gate is easy.
  ServerConfig config = quiet_config();
  config.quantum = 8;
  Server server(config);
  server.submit(parse_job_spec("light:particles=1500,steps=64,weight=1"));
  server.submit(parse_job_spec("heavy:particles=1500,steps=64,weight=2"));
  std::ostringstream out;
  server.drain(out);

  const Job* light = server.table().find("light");
  const Job* heavy = server.table().find("heavy");
  ASSERT_NE(light, nullptr);
  ASSERT_NE(heavy, nullptr);
  EXPECT_EQ(light->state(), JobState::kDone);
  EXPECT_EQ(heavy->state(), JobState::kDone);
  const double ratio = static_cast<double>(light->cycles()) /
                       static_cast<double>(heavy->cycles());
  EXPECT_NEAR(ratio, 2.0, 0.2);  // weight ratio, within ±10%
}

TEST(ServerTest, PerTenantMetricsDocumentsAreDisjoint) {
  TempDir dir("metrics");
  ServerConfig config = quiet_config();
  config.metrics_dir = dir.path.string();
  Server server(config);
  server.submit(parse_job_spec("ma:dist=uniform,particles=1200,steps=8,seed=11"));
  server.submit(parse_job_spec("mb:dist=geometric,particles=3400,steps=8,seed=22"));
  std::ostringstream out;
  server.drain(out);

  const std::string a = slurp(dir.path / "job-ma.json");
  const std::string b = slurp(dir.path / "job-mb.json");
  const std::string aggregate = slurp(dir.path / "server.json");
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  ASSERT_FALSE(aggregate.empty());

  // Each document is the picprk-bench-v1 schema describing exactly its
  // own tenant — name, distribution, size — with no bleed-through.
  // (The nested config object renders compact: "key":value.)
  for (const std::string* doc : {&a, &b, &aggregate}) {
    EXPECT_NE(doc->find("picprk-bench-v1"), std::string::npos);
  }
  EXPECT_NE(a.find("\"job\":\"ma\""), std::string::npos);
  EXPECT_NE(a.find("\"dist\":\"uniform\""), std::string::npos);
  EXPECT_NE(a.find("\"particles\":1200"), std::string::npos);
  EXPECT_EQ(a.find("geometric"), std::string::npos);
  EXPECT_NE(b.find("\"job\":\"mb\""), std::string::npos);
  EXPECT_NE(b.find("\"dist\":\"geometric("), std::string::npos);
  EXPECT_NE(b.find("\"particles\":3400"), std::string::npos);
  EXPECT_EQ(b.find("uniform"), std::string::npos);
  // The aggregate carries the server-level counters, not tenant configs.
  EXPECT_NE(aggregate.find("svc/cycles"), std::string::npos);
  EXPECT_EQ(aggregate.find("\"job\":"), std::string::npos);
}

TEST(ServerTest, TwoServersReplayPlacementPlansBitForBit) {
  // With measured cost off (uniform cost assumption) the whole telemetry
  // stream is deterministic, so two independent server instances fed the
  // same submissions must log identical placement plans — the jobs-as-
  // super-VPs analogue of the lb layer's replay contract.
  const auto run_one = [] {
    ServerConfig config;
    config.workers = 3;
    config.quantum = 4;
    config.measured_cost = false;
    config.scheduler = "greedy";
    Server server(config);
    server.submit(parse_job_spec("a:dist=uniform,particles=1500,steps=12,weight=1"));
    server.submit(
        parse_job_spec("b:dist=geometric,particles=2500,steps=20,weight=2"));
    server.submit(parse_job_spec("c:dist=sinusoidal,particles=1000,steps=8"));
    std::ostringstream out;
    server.drain(out);
    return server.placement_log();
  };
  const std::vector<std::string> first = run_one();
  const std::vector<std::string> second = run_one();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(ServerTest, RunCommandsDrivesTheFullProtocol) {
  std::istringstream in(
      "# a comment\n"
      "submit ra:particles=1200,steps=8\n"
      "submit rb:dist=geometric,particles=1200,steps=8\n"
      "cancel rb\n"
      "drain\n");
  std::ostringstream out;
  Server server(quiet_config());
  EXPECT_EQ(server.run_commands(in, out), 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("admitted job ra"), std::string::npos);
  EXPECT_NE(text.find("RESULT impl=serve job=ra status=pass"), std::string::npos);
  EXPECT_NE(text.find("RESULT impl=serve job=rb status=cancelled"),
            std::string::npos);
}

TEST(ServerTest, MalformedCommandAbortsWithUsageExit) {
  std::istringstream in("submit broken:nonsense=1\n");
  std::ostringstream out;
  Server server(quiet_config());
  EXPECT_EQ(server.run_commands(in, out), 2);
}

}  // namespace
