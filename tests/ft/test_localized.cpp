// Acceptance suite of the two-level recovery ladder
// (docs/RESILIENCE.md): localized rank-failure recovery — rebuild only
// the dead rank's state from its buddy copy, survivors replay at most
// one step — across all five paper distributions and all threadcomm
// drivers, plus the chaos soak pinning that seeded message faults heal
// entirely in-band (zero rollbacks) under the reliable transport.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "ft/fault.hpp"
#include "obs/registry.hpp"
#include "par/ampi.hpp"
#include "par/baseline.hpp"
#include "par/diffusion.hpp"
#include "par/resilient.hpp"

namespace {

using namespace picprk;

par::RunConfig small_config(std::uint32_t steps = 40) {
  par::RunConfig cfg;
  cfg.init.grid = pic::GridSpec(64, 1.0);
  cfg.init.total_particles = 6000;
  cfg.init.distribution = pic::Geometric{0.98};
  cfg.steps = steps;
  cfg.ranks = 4;
  return cfg;
}

/// Arms localized (level-2) recovery for a kill at (rank, step): the
/// coordinator rendezvous replaces the world-teardown rollback.
par::RunConfig with_local_kill(par::RunConfig cfg, int rank, std::uint32_t step) {
  cfg.resilience.plan = ft::FaultPlan::parse(
      "kill:rank=" + std::to_string(rank) + ",step=" + std::to_string(step), 1);
  cfg.resilience.recovery = par::RecoveryMode::kLocal;
  cfg.resilience.checkpoint_every = 1;  // forced to 1 in kLocal anyway
  cfg.resilience.timeout_ms = 10000;  // fail fast instead of hanging CI
  return cfg;
}

const par::DriverFn kBaseline = [](comm::Comm& comm, const par::RunConfig& rc) {
  return par::run_baseline(comm, rc);
};
const par::DriverFn kDiffusion = [](comm::Comm& comm, const par::RunConfig& rc) {
  return par::run_diffusion(comm, rc);
};

TEST(Localized, SingleKillAcrossAllFiveDistributions) {
  struct Named {
    const char* name;
    pic::Distribution dist;
  };
  const std::vector<Named> distributions = {
      {"geometric", pic::Geometric{0.98}},
      {"sinusoidal", pic::Sinusoidal{}},
      {"linear", pic::Linear{1.0, 1.0}},
      {"patch", pic::Patch{pic::CellRegion{8, 48, 8, 48}}},
      {"uniform", pic::Uniform{}},
  };
  for (const auto& d : distributions) {
    SCOPED_TRACE(d.name);
    auto clean_cfg = small_config();
    clean_cfg.init.distribution = d.dist;
    const auto clean = par::run_resilient(clean_cfg, kBaseline);
    ASSERT_TRUE(clean.ok);

    auto cfg = with_local_kill(clean_cfg, 1, 25);
    par::ResilienceTelemetry telemetry;
    const auto result = par::run_resilient(cfg, kBaseline, &telemetry);
    EXPECT_TRUE(result.ok);
    // End-state physics identical to the fault-free run — localized
    // recovery is invisible to the simulation.
    EXPECT_EQ(result.verification.id_checksum, clean.verification.id_checksum);
    EXPECT_EQ(result.final_particles, clean.final_particles);
    EXPECT_EQ(telemetry.localized_recoveries, 1u);
    EXPECT_EQ(telemetry.rollbacks, 0u);
    EXPECT_LE(telemetry.replayed_steps, 1u);
    EXPECT_EQ(telemetry.kills, 1u);
  }
}

TEST(Localized, DiffusionKillAfterBoundariesMoved) {
  // The kill lands after the boundary balancer has moved rows/columns,
  // so the buddy restore must also reinstate the checkpointed
  // decomposition on every survivor.
  auto cfg = with_local_kill(small_config(), 1, 27);
  cfg.lb.every = 6;
  par::ResilienceTelemetry telemetry;
  const auto result = par::run_resilient(cfg, kDiffusion, &telemetry);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.verification.id_checksum, result.expected_id_checksum);
  EXPECT_EQ(telemetry.localized_recoveries, 1u);
  EXPECT_EQ(telemetry.rollbacks, 0u);
  EXPECT_LE(telemetry.replayed_steps, 1u);
}

TEST(Localized, DualKillSameStepStillLocalized) {
  // Two ranks die at the same step. The buddy copies live in the shared
  // in-process store, so both victims restore regardless of which
  // primaries were dropped; depending on interleaving the coordinator
  // repairs them in one rendezvous round or two — never via rollback.
  auto cfg = with_local_kill(small_config(), 1, 20);
  cfg.resilience.plan =
      ft::FaultPlan::parse("kill:rank=1,step=20;kill:rank=2,step=20", 1);
  par::ResilienceTelemetry telemetry;
  const auto result = par::run_resilient(cfg, kBaseline, &telemetry);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.verification.id_checksum, result.expected_id_checksum);
  EXPECT_EQ(telemetry.rollbacks, 0u);
  EXPECT_GE(telemetry.localized_recoveries, 1u);
  EXPECT_LE(telemetry.localized_recoveries, 2u);
  EXPECT_LE(telemetry.replayed_steps, 2u);
  EXPECT_EQ(telemetry.kills, 2u);
}

TEST(Localized, AmpiVpDeathContinuesOnShrunkenWorkerSet) {
  // A VP kill takes its whole host worker down; the runtime retires the
  // worker, re-places its VPs through the balancer's degraded path and
  // continues on the survivors — replaying at most one superstep.
  auto cfg = small_config();
  ft::FaultInjector injector(ft::FaultPlan::parse("kill:rank=3,step=21", 1));
  ft::CheckpointStore store;
  cfg.ft.injector = &injector;
  cfg.ft.store = &store;
  cfg.ft.checkpoint_every = 8;  // forced to cadence 1 by kLocal
  cfg.resilience.recovery = par::RecoveryMode::kLocal;
  cfg.resilience.checkpoint_every = 8;

  cfg.workers = 2;
  cfg.overdecomposition = 3;
  cfg.lb.every = 5;
  const auto result = par::run_ampi(cfg);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.verification.id_checksum, result.expected_id_checksum);
  EXPECT_EQ(result.recoveries, 1u);
  EXPECT_EQ(result.localized_recoveries, 1u);
  EXPECT_LE(result.replayed_steps, 1u);
  EXPECT_EQ(injector.kills(), 1u);
}

/// Chaos soak: seeded 1% drop + 0.5% dup + 1% delay over a full run.
/// With the reliable transport armed every fault heals in-band: the run
/// completes bit-for-bit identical to the clean run with ZERO recoveries
/// of either kind (the obs ft/rollbacks counter stays at 0).
void chaos_soak(const par::DriverFn& driver, const std::string& strategy) {
  auto clean_cfg = small_config();
  clean_cfg.lb.every = 6;
  clean_cfg.lb.strategy = strategy;
  const auto clean = par::run_resilient(clean_cfg, driver);
  ASSERT_TRUE(clean.ok);

  auto cfg = clean_cfg;
  cfg.resilience.plan = ft::FaultPlan::parse(
      "drop:prob=0.01;dup:prob=0.005;delay:prob=0.01,ms=1", 4242);
  cfg.resilience.reliable = true;
  cfg.resilience.rto_ms = 5;
  cfg.resilience.timeout_ms = 10000;
  obs::Registry registry;
  cfg.obs.registry = &registry;
  par::ResilienceTelemetry telemetry;
  const auto result = par::run_resilient(cfg, driver, &telemetry);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.verification.id_checksum, clean.verification.id_checksum);
  EXPECT_EQ(result.final_particles, clean.final_particles);
  EXPECT_EQ(result.recoveries, 0u);
  EXPECT_EQ(telemetry.rollbacks, 0u);
  EXPECT_GT(telemetry.dropped + telemetry.duplicated + telemetry.delayed, 0u)
      << "the schedule never fired — the soak proved nothing";
  EXPECT_GT(telemetry.retransmits, 0u) << "no drop was healed in-band";
  ASSERT_NE(registry.find_counter("ft/rollbacks"), nullptr);
  EXPECT_EQ(registry.find_counter("ft/rollbacks")->value(), 0u);
}

TEST(ChaosSoak, BaselineHealsInBand) { chaos_soak(kBaseline, ""); }

TEST(ChaosSoak, DiffusionHealsInBand) { chaos_soak(kDiffusion, ""); }

TEST(ChaosSoak, DiffusionRcbStrategyHealsInBand) { chaos_soak(kDiffusion, "rcb"); }

TEST(ChaosSoak, DiffusionAdaptiveStrategyHealsInBand) {
  chaos_soak(kDiffusion, "adaptive");
}

}  // namespace
