// End-to-end recovery: kill a rank (or VP) mid-run and require the
// driver to roll back to the last consistent buddy checkpoint, replay,
// and still pass the closed-form verification and id-checksum test —
// the acceptance criterion of the resilience layer.
#include <gtest/gtest.h>

#include <cstdint>

#include "comm/comm.hpp"
#include "ft/fault.hpp"
#include "par/ampi.hpp"
#include "par/baseline.hpp"
#include "par/diffusion.hpp"
#include "par/resilient.hpp"

namespace {

using namespace picprk;

par::RunConfig small_config(std::uint32_t steps = 40) {
  par::RunConfig cfg;
  cfg.init.grid = pic::GridSpec(64, 1.0);
  cfg.init.total_particles = 6000;
  cfg.init.distribution = pic::Geometric{0.98};
  cfg.steps = steps;
  return cfg;
}

par::RunConfig with_kill(par::RunConfig cfg, int rank, std::uint32_t step,
                         std::uint32_t checkpoint_every = 8) {
  cfg.resilience.plan = ft::FaultPlan::parse(
      "kill:rank=" + std::to_string(rank) + ",step=" + std::to_string(step), 1);
  cfg.resilience.checkpoint_every = checkpoint_every;
  cfg.resilience.timeout_ms = 10000;  // safety net: fail fast instead of hanging CI
  return cfg;
}

const par::DriverFn kBaseline = [](comm::Comm& comm, const par::RunConfig& rc) {
  return par::run_baseline(comm, rc);
};

TEST(Recovery, BaselineSurvivesRankDeath) {
  auto cfg = with_kill(small_config(), 1, 25);
  cfg.ranks = 4;
  par::ResilienceTelemetry telemetry;
  const auto result = par::run_resilient(cfg, kBaseline, &telemetry);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.verification.id_checksum, result.expected_id_checksum);
  EXPECT_EQ(result.recoveries, 1u);
  EXPECT_EQ(telemetry.kills, 1u);
  ASSERT_EQ(telemetry.trace.size(), 1u);
  EXPECT_EQ(telemetry.trace[0].kind, ft::FaultKind::Kill);
  EXPECT_EQ(telemetry.trace[0].rank, 1);
}

TEST(Recovery, BaselineRecoversWithEventsInFlight) {
  // Injection + removal events across the kill step: the restored
  // EventTracker sum must keep the checksum exact through the replay.
  auto cfg = small_config();
  cfg.events = pic::EventSchedule(
      {pic::InjectionEvent{12, pic::CellRegion{0, 32, 0, 32}, 500}},
      {pic::RemovalEvent{28, pic::CellRegion{0, 64, 0, 64}, 0.1}});
  cfg = with_kill(cfg, 2, 30);
  cfg.ranks = 4;
  const auto result = par::run_resilient(cfg, kBaseline);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.recoveries, 1u);
}

TEST(Recovery, DiffusionSurvivesRankDeath) {
  // The kill lands after LB has moved boundaries, so the restored
  // decomposition must match the checkpointed boundary vectors.
  auto cfg = with_kill(small_config(), 1, 27);
  cfg.ranks = 4;
  cfg.lb.every = 6;
  const auto result = par::run_resilient(
      cfg, [](comm::Comm& comm, const par::RunConfig& rc) {
        return par::run_diffusion(comm, rc);
      });
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.verification.id_checksum, result.expected_id_checksum);
  EXPECT_EQ(result.recoveries, 1u);
}

TEST(Recovery, AmpiSurvivesVpDeath) {
  auto cfg = small_config();
  ft::FaultInjector injector(ft::FaultPlan::parse("kill:rank=3,step=21", 1));
  ft::CheckpointStore store;
  cfg.ft.injector = &injector;
  cfg.ft.store = &store;
  cfg.ft.checkpoint_every = 8;

  cfg.workers = 2;
  cfg.overdecomposition = 3;
  cfg.lb.every = 5;
  const auto result = par::run_ampi(cfg);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.verification.id_checksum, result.expected_id_checksum);
  EXPECT_EQ(result.recoveries, 1u);
  EXPECT_EQ(injector.kills(), 1u);
}

TEST(Recovery, UnrecoverableWithoutCheckpointsRethrows) {
  auto cfg = small_config();
  cfg.ranks = 2;
  cfg.resilience.plan = ft::FaultPlan::parse("kill:rank=0,step=5", 1);
  // checkpoint_every = 0: nothing to roll back to.
  EXPECT_THROW(par::run_resilient(cfg, kBaseline), ft::RankKilled);
}

TEST(Recovery, ResultsMatchFaultFreeRun) {
  // The recovered run must produce the same verification numbers as an
  // undisturbed one — rollback is invisible to the physics.
  auto cfg = small_config();
  cfg.ranks = 4;
  const auto clean = par::run_resilient(cfg, kBaseline);
  auto killed = with_kill(cfg, 3, 19);
  const auto recovered = par::run_resilient(killed, kBaseline);
  EXPECT_TRUE(clean.ok);
  EXPECT_TRUE(recovered.ok);
  EXPECT_EQ(clean.verification.id_checksum, recovered.verification.id_checksum);
  EXPECT_EQ(clean.final_particles, recovered.final_particles);
  EXPECT_EQ(clean.max_particles_per_rank, recovered.max_particles_per_rank);
}

TEST(Recovery, StallWithTimeoutRollsBackAndCompletes) {
  // An infinite stall surfaces as CommTimeout; with checkpoints on, the
  // wrapper rolls back and the (one-shot) stall does not re-fire.
  auto cfg = small_config();
  cfg.ranks = 4;
  cfg.resilience.plan = ft::FaultPlan::parse("stall:rank=2,step=18,ms=inf", 1);
  cfg.resilience.checkpoint_every = 8;
  cfg.resilience.timeout_ms = 300;
  par::ResilienceTelemetry telemetry;
  const auto result = par::run_resilient(cfg, kBaseline, &telemetry);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.recoveries, 1u);
  EXPECT_EQ(telemetry.stalls, 1u);
  ASSERT_EQ(telemetry.failures.size(), 1u);
  EXPECT_NE(telemetry.failures[0].find("comm-timeout"), std::string::npos);
}

}  // namespace
