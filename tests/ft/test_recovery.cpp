// End-to-end recovery: kill a rank (or VP) mid-run and require the
// driver to roll back to the last consistent buddy checkpoint, replay,
// and still pass the closed-form verification and id-checksum test —
// the acceptance criterion of the resilience layer.
#include <gtest/gtest.h>

#include <cstdint>

#include "comm/comm.hpp"
#include "ft/fault.hpp"
#include "par/ampi.hpp"
#include "par/baseline.hpp"
#include "par/diffusion.hpp"
#include "par/resilient.hpp"

namespace {

using namespace picprk;

par::DriverConfig small_config(std::uint32_t steps = 40) {
  par::DriverConfig cfg;
  cfg.init.grid = pic::GridSpec(64, 1.0);
  cfg.init.total_particles = 6000;
  cfg.init.distribution = pic::Geometric{0.98};
  cfg.steps = steps;
  return cfg;
}

par::ResilienceOptions kill_plan(int rank, std::uint32_t step,
                                 std::uint32_t checkpoint_every = 8) {
  par::ResilienceOptions opts;
  opts.plan = ft::FaultPlan::parse(
      "kill:rank=" + std::to_string(rank) + ",step=" + std::to_string(step), 1);
  opts.checkpoint_every = checkpoint_every;
  opts.timeout_ms = 10000;  // safety net: fail fast instead of hanging CI
  return opts;
}

TEST(Recovery, BaselineSurvivesRankDeath) {
  const auto cfg = small_config();
  par::ResilienceTelemetry telemetry;
  const auto result = par::run_resilient(
      4, cfg, kill_plan(1, 25),
      [](comm::Comm& comm, const par::DriverConfig& dc) {
        return par::run_baseline(comm, dc);
      },
      &telemetry);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.verification.id_checksum, result.expected_id_checksum);
  EXPECT_EQ(result.recoveries, 1u);
  EXPECT_EQ(telemetry.kills, 1u);
  ASSERT_EQ(telemetry.trace.size(), 1u);
  EXPECT_EQ(telemetry.trace[0].kind, ft::FaultKind::Kill);
  EXPECT_EQ(telemetry.trace[0].rank, 1);
}

TEST(Recovery, BaselineRecoversWithEventsInFlight) {
  // Injection + removal events across the kill step: the restored
  // EventTracker sum must keep the checksum exact through the replay.
  auto cfg = small_config();
  cfg.events = pic::EventSchedule(
      {pic::InjectionEvent{12, pic::CellRegion{0, 32, 0, 32}, 500}},
      {pic::RemovalEvent{28, pic::CellRegion{0, 64, 0, 64}, 0.1}});
  const auto result = par::run_resilient(
      4, cfg, kill_plan(2, 30),
      [](comm::Comm& comm, const par::DriverConfig& dc) {
        return par::run_baseline(comm, dc);
      });
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.recoveries, 1u);
}

TEST(Recovery, DiffusionSurvivesRankDeath) {
  // The kill lands after LB has moved boundaries, so the restored
  // decomposition must match the checkpointed boundary vectors.
  const auto cfg = small_config();
  par::DiffusionParams lb;
  lb.frequency = 6;
  const auto result = par::run_resilient(
      4, cfg, kill_plan(1, 27),
      [&lb](comm::Comm& comm, const par::DriverConfig& dc) {
        return par::run_diffusion(comm, dc, lb);
      });
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.verification.id_checksum, result.expected_id_checksum);
  EXPECT_EQ(result.recoveries, 1u);
}

TEST(Recovery, AmpiSurvivesVpDeath) {
  auto cfg = small_config();
  ft::FaultInjector injector(ft::FaultPlan::parse("kill:rank=3,step=21", 1));
  ft::CheckpointStore store;
  cfg.ft.injector = &injector;
  cfg.ft.store = &store;
  cfg.ft.checkpoint_every = 8;

  par::AmpiParams params;
  params.workers = 2;
  params.overdecomposition = 3;
  params.lb_interval = 5;
  const auto result = par::run_ampi(cfg, params);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.verification.id_checksum, result.expected_id_checksum);
  EXPECT_EQ(result.recoveries, 1u);
  EXPECT_EQ(injector.kills(), 1u);
}

TEST(Recovery, UnrecoverableWithoutCheckpointsRethrows) {
  const auto cfg = small_config();
  par::ResilienceOptions opts;
  opts.plan = ft::FaultPlan::parse("kill:rank=0,step=5", 1);
  // checkpoint_every = 0: nothing to roll back to.
  EXPECT_THROW(par::run_resilient(2, cfg, opts,
                                  [](comm::Comm& comm, const par::DriverConfig& dc) {
                                    return par::run_baseline(comm, dc);
                                  }),
               ft::RankKilled);
}

TEST(Recovery, ResultsMatchFaultFreeRun) {
  // The recovered run must produce the same verification numbers as an
  // undisturbed one — rollback is invisible to the physics.
  const auto cfg = small_config();
  const par::DriverFn driver = [](comm::Comm& comm, const par::DriverConfig& dc) {
    return par::run_baseline(comm, dc);
  };
  const auto clean = par::run_resilient(4, cfg, par::ResilienceOptions{}, driver);
  const auto recovered = par::run_resilient(4, cfg, kill_plan(3, 19), driver);
  EXPECT_TRUE(clean.ok);
  EXPECT_TRUE(recovered.ok);
  EXPECT_EQ(clean.verification.id_checksum, recovered.verification.id_checksum);
  EXPECT_EQ(clean.final_particles, recovered.final_particles);
  EXPECT_EQ(clean.max_particles_per_rank, recovered.max_particles_per_rank);
}

TEST(Recovery, StallWithTimeoutRollsBackAndCompletes) {
  // An infinite stall surfaces as CommTimeout; with checkpoints on, the
  // wrapper rolls back and the (one-shot) stall does not re-fire.
  const auto cfg = small_config();
  par::ResilienceOptions opts;
  opts.plan = ft::FaultPlan::parse("stall:rank=2,step=18,ms=inf", 1);
  opts.checkpoint_every = 8;
  opts.timeout_ms = 300;
  par::ResilienceTelemetry telemetry;
  const auto result = par::run_resilient(
      4, cfg, opts,
      [](comm::Comm& comm, const par::DriverConfig& dc) {
        return par::run_baseline(comm, dc);
      },
      &telemetry);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.recoveries, 1u);
  EXPECT_EQ(telemetry.stalls, 1u);
  ASSERT_EQ(telemetry.failures.size(), 1u);
  EXPECT_NE(telemetry.failures[0].find("comm-timeout"), std::string::npos);
}

}  // namespace
