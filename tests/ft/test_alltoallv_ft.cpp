// Comm::alltoallv under message-fault injection. Delay faults are the
// interesting ones for a collective with a two-round wire protocol
// (count envelope, then payload on the same tag): delays are sender-side
// sleeps, so they stress timing without breaking the per-source FIFO the
// protocol relies on — the collective must still deliver every element
// exactly once, in source order, with the id checksum intact.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "comm/comm.hpp"
#include "comm/world.hpp"
#include "ft/fault.hpp"
#include "util/rng.hpp"

namespace {

using namespace picprk;
using ft::FaultInjector;
using ft::FaultPlan;

TEST(AlltoallvFt, DelayedMessagesPreserveContentAndChecksum) {
  // Every message delayed (prob=1.0): the worst-case timing skew the
  // injector can produce without losing traffic.
  FaultInjector injector(FaultPlan::parse("delay:prob=1.0,ms=2", /*seed=*/99));
  comm::WorldOptions options;
  options.fault_hook = &injector;
  options.timeout_ms = 10000;
  comm::World world(4, options);

  constexpr std::uint64_t kPerRank = 200;
  constexpr int kRounds = 3;

  world.run([](comm::Comm& comm) {
    const int p = comm.size();
    const auto me = static_cast<std::uint64_t>(comm.rank());

    for (int round = 0; round < kRounds; ++round) {
      // Contiguous id block 1..N split across ranks, scattered with
      // round-dependent random counts (including empty slices).
      std::vector<std::uint64_t> ids(kPerRank);
      std::iota(ids.begin(), ids.end(), me * kPerRank + 1);

      util::SplitMix64 rng(static_cast<std::uint64_t>(round) * 1000 + me);
      std::vector<std::uint64_t> counts(static_cast<std::size_t>(p), 0);
      std::uint64_t remaining = kPerRank;
      for (int dst = 0; dst + 1 < p; ++dst) {
        const std::uint64_t c = rng.next_below(remaining + 1);
        counts[static_cast<std::size_t>(dst)] = c;
        remaining -= c;
      }
      counts[static_cast<std::size_t>(p - 1)] = remaining;

      std::vector<std::uint64_t> recv_data, recv_counts;
      comm.alltoallv(std::span<const std::uint64_t>(ids),
                     std::span<const std::uint64_t>(counts), recv_data, recv_counts);

      // Nothing lost, nothing duplicated: the global id sum is n(n+1)/2.
      const std::uint64_t local =
          std::accumulate(recv_data.begin(), recv_data.end(), std::uint64_t{0});
      const std::uint64_t global = comm.allreduce_value<std::uint64_t>(
          local, [](std::uint64_t a, std::uint64_t b) { return a + b; });
      const std::uint64_t n = kPerRank * static_cast<std::uint64_t>(p);
      ASSERT_EQ(global, n * (n + 1) / 2) << "round " << round;

      // Source-major ordering survives the skew: each received slice is
      // ascending (every sender's ids are ascending within a slice).
      std::size_t offset = 0;
      for (int src = 0; src < p; ++src) {
        const auto c = static_cast<std::size_t>(recv_counts[static_cast<std::size_t>(src)]);
        for (std::size_t j = offset + 1; j < offset + c; ++j) {
          ASSERT_LT(recv_data[j - 1], recv_data[j]);
        }
        offset += c;
      }
    }
  });

  EXPECT_GT(injector.delayed(), 0u) << "prob=1.0 plan must have fired";
}

}  // namespace
