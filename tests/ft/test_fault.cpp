// FaultPlan parsing and the determinism contract of FaultInjector: the
// same seeded plan must fire the same faults at the same (src, seq)
// coordinates on every run, regardless of thread interleaving.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "comm/comm.hpp"
#include "comm/world.hpp"
#include "ft/fault.hpp"

namespace {

using namespace picprk;
using ft::FaultInjector;
using ft::FaultKind;
using ft::FaultPlan;

TEST(FaultPlan, ParsesTheDocumentedGrammar) {
  const auto plan = FaultPlan::parse(
      "kill:rank=1,step=40;drop:prob=0.01,src=0;stall:rank=2,step=5,ms=inf;"
      "dup:prob=0.5,dst=3;delay:prob=0.25,ms=7",
      /*seed=*/42);
  ASSERT_EQ(plan.specs.size(), 5u);
  EXPECT_EQ(plan.seed, 42u);

  EXPECT_EQ(plan.specs[0].kind, FaultKind::Kill);
  EXPECT_EQ(plan.specs[0].rank, 1);
  EXPECT_EQ(plan.specs[0].step, 40u);

  EXPECT_EQ(plan.specs[1].kind, FaultKind::Drop);
  EXPECT_DOUBLE_EQ(plan.specs[1].probability, 0.01);
  EXPECT_EQ(plan.specs[1].src, 0);
  EXPECT_EQ(plan.specs[1].dst, -1);

  EXPECT_EQ(plan.specs[2].kind, FaultKind::Stall);
  EXPECT_LE(plan.specs[2].ms, 0);  // inf encodes as non-positive

  EXPECT_EQ(plan.specs[3].kind, FaultKind::Duplicate);
  EXPECT_EQ(plan.specs[3].dst, 3);

  EXPECT_EQ(plan.specs[4].kind, FaultKind::Delay);
  EXPECT_EQ(plan.specs[4].ms, 7);
}

TEST(FaultPlan, EmptyTextIsAnEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("", 1).empty());
}

TEST(FaultPlan, RejectsMalformedInput) {
  EXPECT_THROW(FaultPlan::parse("explode:rank=0", 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill:rank", 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop:prob=2.0", 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill:step=3", 1), std::invalid_argument);  // no rank
}

TEST(FaultPlan, RejectsSemanticallyInvalidKeyCombinations) {
  // Step faults take no message-fault keys and vice versa; each rejection
  // must name the offending construct (mirrors the lb spec parser).
  EXPECT_THROW(FaultPlan::parse("kill:rank=1,step=2,prob=0.5", 1),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill:rank=1,step=2,src=0", 1),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill:rank=1,step=2,ms=5", 1),
               std::invalid_argument);  // a killed rank never comes back
  EXPECT_THROW(FaultPlan::parse("stall:rank=1,step=2,dst=3,ms=5", 1),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop:prob=0.5,rank=1", 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop:prob=0.5,step=3", 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop:prob=0.5,ms=2", 1),
               std::invalid_argument);  // only stall and delay take ms=
  EXPECT_THROW(FaultPlan::parse("dup:dst=1", 1), std::invalid_argument);  // no prob
  EXPECT_THROW(FaultPlan::parse("delay:prob=0.5,ms=inf", 1),
               std::invalid_argument);  // inf is stall-only
  EXPECT_THROW(FaultPlan::parse("delay:prob=0.5,ms=-3", 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop:prob=0.5,src=-2", 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill:rank=-1,step=2", 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill:rank=1,step=-4", 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop:prob=half", 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill:rank=two,step=2", 1), std::invalid_argument);
}

TEST(FaultPlan, RejectionMessagesNameTheOffendingKey) {
  try {
    FaultPlan::parse("kill:rank=1,step=2,prob=0.5", 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("prob"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("kill"), std::string::npos);
  }
  try {
    FaultPlan::parse("drop:prob=0.5,rank=1", 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("rank"), std::string::npos);
  }
}

TEST(FaultPlan, RejectsConflictingStepFaults) {
  // Two one-shot latches on the same (rank, step) would race for the
  // same firing slot.
  EXPECT_THROW(FaultPlan::parse("kill:rank=1,step=2;stall:rank=1,step=2,ms=5", 1),
               std::invalid_argument);
  // Different rank or step is fine.
  EXPECT_NO_THROW(FaultPlan::parse("kill:rank=1,step=2;stall:rank=2,step=2,ms=5", 1));
  EXPECT_NO_THROW(FaultPlan::parse("kill:rank=1,step=2;kill:rank=1,step=3", 1));
}

TEST(FaultInjector, KillThrowsTypedExceptionOnceOnly) {
  FaultInjector injector(FaultPlan::parse("kill:rank=2,step=7", 1));
  injector.begin_step(2, 6);  // wrong step: nothing
  injector.begin_step(1, 7);  // wrong rank: nothing
  try {
    injector.begin_step(2, 7);
    FAIL() << "expected RankKilled";
  } catch (const ft::RankKilled& e) {
    EXPECT_EQ(e.rank(), 2);
    EXPECT_EQ(e.step(), 7u);
  }
  // One-shot: the recovery rerun passes the same (rank, step) unharmed.
  EXPECT_NO_THROW(injector.begin_step(2, 7));
  EXPECT_EQ(injector.kills(), 1u);
}

/// Runs a fixed communication pattern under the injector and returns
/// its trace.
std::vector<ft::FaultEvent> traced_run(std::uint64_t seed) {
  FaultInjector injector(FaultPlan::parse("drop:prob=0.2;dup:prob=0.1", seed));
  comm::WorldOptions options;
  options.fault_hook = &injector;
  options.timeout_ms = 2000;  // dropped messages must not hang the test
  comm::World world(4, options);
  try {
    world.run([](comm::Comm& comm) {
      // All-pairs sends; receives tolerate drops via iprobe polling.
      for (int dst = 0; dst < comm.size(); ++dst) {
        if (dst != comm.rank()) comm.send_value<int>(comm.rank(), dst, 1);
      }
      // Consume whatever actually arrived (drops and dups change the
      // count, so poll instead of expecting size()-1 messages).
      while (comm.iprobe(comm::kAnySource, 1)) {
        (void)comm.recv<int>(comm::kAnySource, 1);
      }
    });
  } catch (const comm::CommTimeout&) {
    // Possible if a collective internally loses a message; irrelevant —
    // the trace up to this point is what we compare.
  }
  return injector.trace();
}

TEST(FaultInjector, SameSeedSameTrace) {
  const auto a = traced_run(1234);
  const auto b = traced_run(1234);
  EXPECT_FALSE(a.empty()) << "plan with prob=0.2 over 12 sends should fire";
  EXPECT_EQ(a, b);
}

TEST(FaultInjector, DifferentSeedDifferentTrace) {
  const auto a = traced_run(1234);
  const auto b = traced_run(99999);
  EXPECT_NE(a, b);
}

TEST(FaultInjector, EndpointFiltersRestrictFaults) {
  FaultInjector injector(FaultPlan::parse("drop:prob=1.0,src=1,dst=2", 7));
  using comm::FaultDecision;
  EXPECT_EQ(injector.on_send(0, 2, 5, 8).kind, FaultDecision::Kind::Deliver);
  EXPECT_EQ(injector.on_send(1, 3, 5, 8).kind, FaultDecision::Kind::Deliver);
  EXPECT_EQ(injector.on_send(1, 2, 5, 8).kind, FaultDecision::Kind::Drop);
  EXPECT_EQ(injector.dropped(), 1u);
}

TEST(FaultInjector, StallSleepsForItsDuration) {
  FaultInjector injector(FaultPlan::parse("stall:rank=0,step=3,ms=80", 1));
  const auto start = std::chrono::steady_clock::now();
  injector.begin_step(0, 3);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 60);
  EXPECT_EQ(injector.stalls(), 1u);
}

TEST(FaultInjector, InfiniteStallBailsOutOnAbort) {
  FaultInjector injector(FaultPlan::parse("stall:rank=0,step=0,ms=inf", 1));
  std::atomic<bool> abort{true};  // already aborting: must return immediately
  EXPECT_THROW(injector.begin_step(0, 0, &abort), comm::WorldAborted);
}

}  // namespace
