// CheckpointStore: history eviction, buddy fallback after a dropped
// primary, and the consistent-recovery-line computation.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "ft/checkpoint.hpp"

namespace {

using picprk::ft::CheckpointStore;

std::vector<std::byte> blob(unsigned char fill, std::size_t n = 8) {
  return std::vector<std::byte>(n, std::byte{fill});
}

TEST(CheckpointStore, SaveAndLoadRoundTrip) {
  CheckpointStore store;
  store.save(0, 10, blob(0xAA));
  const auto loaded = store.load(0, 10);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, blob(0xAA));
  EXPECT_FALSE(store.load(0, 11).has_value());
  EXPECT_FALSE(store.load(1, 10).has_value());
}

TEST(CheckpointStore, HistoryKeepsOnlyTheNewestTwo) {
  CheckpointStore store;
  store.save(0, 10, blob(1));
  store.save(0, 20, blob(2));
  store.save(0, 30, blob(3));
  EXPECT_FALSE(store.load(0, 10).has_value());  // evicted
  EXPECT_TRUE(store.load(0, 20).has_value());
  EXPECT_TRUE(store.load(0, 30).has_value());
}

TEST(CheckpointStore, SameStepOverwritesInsteadOfEvicting) {
  CheckpointStore store;
  store.save(0, 10, blob(1));
  store.save(0, 20, blob(2));
  store.save(0, 20, blob(9));  // recovery rerun re-checkpoints step 20
  EXPECT_EQ(*store.load(0, 20), blob(9));
  EXPECT_TRUE(store.load(0, 10).has_value());  // not evicted by overwrite
}

TEST(CheckpointStore, ConsistentStepIsNewestCommonStep) {
  CheckpointStore store;
  EXPECT_FALSE(store.consistent_step(2).has_value());
  store.save(0, 10, blob(1));
  EXPECT_FALSE(store.consistent_step(2).has_value());  // slot 1 has nothing
  store.save(1, 10, blob(2));
  EXPECT_EQ(store.consistent_step(2), 10u);
  // Slot 0 advances alone: the line stays at the last common step.
  store.save(0, 20, blob(3));
  EXPECT_EQ(store.consistent_step(2), 10u);
  store.save(1, 20, blob(4));
  EXPECT_EQ(store.consistent_step(2), 20u);
}

TEST(CheckpointStore, BuddyCopySurvivesDroppedPrimary) {
  CheckpointStore store;
  store.save(0, 10, blob(1));
  store.save(1, 10, blob(2));
  store.save_buddy(0, 10, blob(1));  // rank 1 holds rank 0's copy
  store.drop_primary(0);             // rank 0 "died"
  // Primary gone, buddy still answers; the line survives.
  EXPECT_EQ(*store.load(0, 10), blob(1));
  EXPECT_EQ(store.consistent_step(2), 10u);
  // Without the buddy copy the line would have been lost entirely.
  store.drop_primary(1);
  EXPECT_FALSE(store.consistent_step(2).has_value());
}

TEST(CheckpointStore, AccountingTracksBytesAndSaves) {
  CheckpointStore store;
  EXPECT_EQ(store.stored_bytes(), 0u);
  store.save(0, 1, blob(1, 16));
  store.save_buddy(0, 1, blob(1, 16));
  EXPECT_EQ(store.stored_bytes(), 32u);
  EXPECT_EQ(store.saves(), 2u);
  store.clear();
  EXPECT_EQ(store.stored_bytes(), 0u);
}

}  // namespace
