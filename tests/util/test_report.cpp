#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/report.hpp"

namespace {

using picprk::util::CsvWriter;
using picprk::util::JsonObject;
using picprk::util::write_json_file;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name) : path(std::string("/tmp/picprk_test_") + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(CsvWriterTest, HeaderAndRows) {
  TempFile f("basic.csv");
  {
    CsvWriter csv(f.path, {"cores", "seconds"});
    ASSERT_TRUE(csv.ok());
    csv.add_row(std::vector<std::string>{"24", "43.5"});
    csv.add_row(std::vector<double>{48, 21.7});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(read_file(f.path), "cores,seconds\n24,43.5\n48,21.7\n");
}

TEST(CsvWriterTest, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(CsvWriterTest, WrongWidthThrows) {
  TempFile f("width.csv");
  CsvWriter csv(f.path, {"a", "b"});
  EXPECT_THROW(csv.add_row(std::vector<std::string>{"only"}), picprk::ContractViolation);
}

TEST(JsonObjectTest, ScalarsAndArrays) {
  JsonObject o;
  o.add("name", std::string("fig7"))
      .add("cores", std::int64_t{3072})
      .add("ok", true)
      .add("seconds", 16.25)
      .add("series", std::vector<double>{1.0, 2.5});
  EXPECT_EQ(o.to_string(),
            "{\"name\":\"fig7\",\"cores\":3072,\"ok\":true,"
            "\"seconds\":16.25,\"series\":[1,2.5]}");
}

TEST(JsonObjectTest, NestedObjects) {
  JsonObject child;
  child.add("f", std::int64_t{160});
  JsonObject o;
  o.add("params", child);
  EXPECT_EQ(o.to_string(), "{\"params\":{\"f\":160}}");
}

TEST(JsonObjectTest, EscapesStrings) {
  JsonObject o;
  o.add("msg", std::string("line1\n\"quoted\""));
  EXPECT_EQ(o.to_string(), "{\"msg\":\"line1\\n\\\"quoted\\\"\"}");
}

TEST(JsonObjectTest, PrettyPrintRoundTrips) {
  JsonObject o;
  o.add("a", std::int64_t{1}).add("b", 2.0);
  const std::string pretty = o.to_string(2);
  EXPECT_NE(pretty.find("\n  \"a\": 1"), std::string::npos);
}

TEST(JsonFileTest, WriteAndReadBack) {
  TempFile f("out.json");
  JsonObject o;
  o.add("experiment", std::string("fig5")).add("points", std::vector<double>{1, 2, 4});
  ASSERT_TRUE(write_json_file(f.path, o));
  const std::string content = read_file(f.path);
  EXPECT_NE(content.find("\"experiment\": \"fig5\""), std::string::npos);
  EXPECT_NE(content.find("[1,2,4]"), std::string::npos);
}

TEST(JsonFileTest, BadPathFails) {
  JsonObject o;
  EXPECT_FALSE(write_json_file("/nonexistent_dir_xyz/file.json", o));
}

TEST(ResultLineTest, BuildsStableGrammar) {
  picprk::util::ResultLine line("baseline");
  line.add("status", "pass")
      .add("particles", std::uint64_t{19937})
      .add("checksum", std::uint64_t{198751953});
  EXPECT_EQ(line.str(),
            "RESULT impl=baseline status=pass particles=19937 "
            "checksum=198751953");
}

TEST(ResultLineTest, DoublesUseSixDigitFormat) {
  picprk::util::ResultLine line("serial");
  line.add("seconds", 0.0511674);
  // Table::fmt(v, 6) — the format the CI greps have always parsed.
  EXPECT_EQ(line.str(), "RESULT impl=serial seconds=0.051167");
}

TEST(ResultLineTest, KeysKeepInsertionOrder) {
  picprk::util::ResultLine line("serve");
  line.add("job", std::string("a")).add("status", "rejected").add("steps", 0);
  EXPECT_EQ(line.str(), "RESULT impl=serve job=a status=rejected steps=0");
}

}  // namespace
