#include <gtest/gtest.h>

#include "util/cli.hpp"

namespace {

using picprk::util::ArgParser;

ArgParser make_parser() {
  ArgParser p("prog", "test program");
  p.add_int("cells", 100, "grid cells");
  p.add_double("r", 0.999, "geometric ratio");
  p.add_flag("verbose", false, "chatty output");
  p.add_string("dist", "geometric", "distribution");
  return p;
}

TEST(CliTest, DefaultsApply) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_int("cells"), 100);
  EXPECT_DOUBLE_EQ(p.get_double("r"), 0.999);
  EXPECT_FALSE(p.get_flag("verbose"));
  EXPECT_EQ(p.get_string("dist"), "geometric");
  EXPECT_FALSE(p.supplied("cells"));
}

TEST(CliTest, SpaceSeparatedValues) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--cells", "256", "--dist", "linear"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_EQ(p.get_int("cells"), 256);
  EXPECT_EQ(p.get_string("dist"), "linear");
  EXPECT_TRUE(p.supplied("cells"));
}

TEST(CliTest, EqualsSeparatedValues) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--r=0.5", "--verbose"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_DOUBLE_EQ(p.get_double("r"), 0.5);
  EXPECT_TRUE(p.get_flag("verbose"));
}

TEST(CliTest, UnknownOptionThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(p.parse(3, argv), std::invalid_argument);
}

TEST(CliTest, BadIntValueThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--cells", "abc"};
  EXPECT_THROW(p.parse(3, argv), std::invalid_argument);
}

TEST(CliTest, MissingValueThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--cells"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(CliTest, HelpReturnsFalse) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--help"};
  testing::internal::CaptureStdout();
  EXPECT_FALSE(p.parse(2, argv));
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("--cells"), std::string::npos);
}

TEST(CliTest, UsageListsDefaults) {
  auto p = make_parser();
  EXPECT_NE(p.usage().find("0.999"), std::string::npos);
}

}  // namespace
