#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hpp"

namespace {

using picprk::util::CounterRng;
using picprk::util::SplitMix64;
using picprk::util::stochastic_round;

TEST(SplitMix64Test, DeterministicForSameSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64Test, DoublesInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64Test, NextBelowRespectsBound) {
  SplitMix64 rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(SplitMix64Test, NextBelowCoversRange) {
  SplitMix64 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(CounterRngTest, PureFunctionOfKeyAndCounter) {
  CounterRng a(5, 10, 20);
  CounterRng b(5, 10, 20);
  EXPECT_EQ(a.at(0), b.at(0));
  EXPECT_EQ(a.at(123456), b.at(123456));
}

TEST(CounterRngTest, KeysSeparateStreams) {
  CounterRng a(5, 10, 20), b(5, 10, 21), c(5, 11, 20), d(6, 10, 20);
  EXPECT_NE(a.at(0), b.at(0));
  EXPECT_NE(a.at(0), c.at(0));
  EXPECT_NE(a.at(0), d.at(0));
}

TEST(CounterRngTest, DoubleAtUniformish) {
  // Mean of 10k uniform draws should be near 0.5.
  CounterRng rng(1234, 0, 0);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) sum += rng.double_at(static_cast<std::uint64_t>(i));
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(StochasticRound, IntegerExpectationIsExact) {
  EXPECT_EQ(stochastic_round(3.0, 0.99), 3u);
  EXPECT_EQ(stochastic_round(0.0, 0.0), 0u);
}

TEST(StochasticRound, FractionDecidesExtra) {
  EXPECT_EQ(stochastic_round(2.75, 0.5), 3u);   // 0.5 < 0.75 -> round up
  EXPECT_EQ(stochastic_round(2.75, 0.9), 2u);   // 0.9 >= 0.75 -> keep floor
}

TEST(StochasticRound, MeanMatchesExpectation) {
  CounterRng rng(77, 0, 0);
  const double mu = 1.37;
  double total = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(
        stochastic_round(mu, rng.double_at(static_cast<std::uint64_t>(i))));
  }
  EXPECT_NEAR(total / trials, mu, 0.02);
}

}  // namespace
