#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace {

using picprk::ContractViolation;

int checked_divide(int a, int b) {
  PICPRK_EXPECTS(b != 0);
  return a / b;
}

TEST(Contracts, ExpectsPassesOnValidInput) { EXPECT_EQ(checked_divide(10, 2), 5); }

TEST(Contracts, ExpectsThrowsOnViolation) {
  EXPECT_THROW(checked_divide(1, 0), ContractViolation);
}

TEST(Contracts, MessageNamesTheExpression) {
  try {
    checked_divide(1, 0);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("b != 0"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("Precondition"), std::string::npos);
  }
}

TEST(Contracts, EnsuresThrows) {
  auto broken = [] {
    int result = -1;
    PICPRK_ENSURES(result >= 0);
    return result;
  };
  EXPECT_THROW(broken(), ContractViolation);
}

TEST(Contracts, AssertMsgCarriesMessage) {
  try {
    PICPRK_ASSERT_MSG(false, "custom detail 42");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"), std::string::npos);
  }
}

}  // namespace
