#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "util/assert.hpp"

namespace {

using picprk::ContractViolation;

int checked_divide(int a, int b) {
  PICPRK_EXPECTS(b != 0);
  return a / b;
}

TEST(Contracts, ExpectsPassesOnValidInput) { EXPECT_EQ(checked_divide(10, 2), 5); }

TEST(Contracts, ExpectsThrowsOnViolation) {
  EXPECT_THROW(checked_divide(1, 0), ContractViolation);
}

TEST(Contracts, MessageNamesTheExpression) {
  try {
    checked_divide(1, 0);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("b != 0"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("Precondition"), std::string::npos);
  }
}

TEST(Contracts, EnsuresThrows) {
  auto broken = [] {
    int result = -1;
    PICPRK_ENSURES(result >= 0);
    return result;
  };
  EXPECT_THROW(broken(), ContractViolation);
}

TEST(Contracts, AssertMsgCarriesMessage) {
  try {
    PICPRK_ASSERT_MSG(false, "custom detail 42");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"), std::string::npos);
  }
}

TEST(Contracts, AssertionErrorIsTypedAndCatchable) {
  // The historical alias and the new name are the same type, rooted in
  // std::logic_error so generic handlers still work.
  static_assert(std::is_same_v<ContractViolation, picprk::util::AssertionError>);
  EXPECT_THROW(checked_divide(1, 0), picprk::util::AssertionError);
  EXPECT_THROW(checked_divide(1, 0), std::logic_error);
}

TEST(Contracts, AccessorsExposeStructuredLocation) {
  try {
    checked_divide(1, 0);
    FAIL() << "expected AssertionError";
  } catch (const picprk::util::AssertionError& e) {
    EXPECT_STREQ(e.kind(), "Precondition");
    EXPECT_STREQ(e.expression(), "b != 0");
    EXPECT_NE(std::string(e.file()).find("test_assert.cpp"), std::string::npos);
    EXPECT_GT(e.line(), 0u);
    EXPECT_TRUE(e.message().empty());
  }
  try {
    PICPRK_ASSERT_MSG(1 == 2, "impossible arithmetic");
    FAIL() << "expected AssertionError";
  } catch (const picprk::util::AssertionError& e) {
    EXPECT_STREQ(e.kind(), "Invariant");
    EXPECT_EQ(e.message(), "impossible arithmetic");
  }
}

TEST(ContractsDeathTest, EnvSwitchTurnsViolationsIntoAborts) {
#ifdef PICPRK_ASSERT_ABORT
  GTEST_SKIP() << "compile-time abort mode is already on";
#else
  // assert_aborts() caches the env read, so flip the variable in a child
  // process (death test) where the first read sees it set.
  EXPECT_DEATH(
      {
        setenv("PICPRK_ASSERT_ABORT", "1", 1);
        checked_divide(1, 0);
      },
      "Precondition failed");
#endif
}

}  // namespace
