#include <gtest/gtest.h>

#include <vector>

#include "util/stats.hpp"

namespace {

using picprk::util::Accumulator;
using picprk::util::Histogram;
using picprk::util::imbalance;
using picprk::util::percentile;

TEST(AccumulatorTest, BasicMoments) {
  Accumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 1.25, 1e-12);
}

TEST(AccumulatorTest, EmptyIsSafe) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(ImbalanceTest, PerfectBalance) {
  std::vector<double> loads{5, 5, 5, 5};
  auto r = imbalance(loads);
  EXPECT_DOUBLE_EQ(r.ratio, 1.0);
  EXPECT_DOUBLE_EQ(r.lost_fraction, 0.0);
}

TEST(ImbalanceTest, SkewedLoads) {
  // Mirrors the paper's §V-B observation: max 62645 vs ideal 25000.
  std::vector<double> loads(24, 0.0);
  loads[23] = 62645;
  double rest = (600000.0 - 62645.0) / 23.0;
  for (int i = 0; i < 23; ++i) loads[static_cast<std::size_t>(i)] = rest;
  auto r = imbalance(loads);
  EXPECT_NEAR(r.mean, 25000.0, 1.0);
  EXPECT_NEAR(r.ratio, 62645.0 / 25000.0, 1e-3);
}

TEST(PercentileTest, MedianAndExtremes) {
  std::vector<double> v{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 9.0);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps into the first bucket
  h.add(42.0);   // clamps into the last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[9], 2u);
}

TEST(HistogramTest, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1, 7);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.counts()[0], 7u);
}

}  // namespace
