#include <gtest/gtest.h>

#include <sstream>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace {

using picprk::util::print_series_csv;
using picprk::util::Series;
using picprk::util::Table;

TEST(TableTest, AlignsColumns) {
  Table t({"cores", "seconds"});
  t.add_row({"1", "512.3"});
  t.add_row({"384", "2.9"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("cores"), std::string::npos);
  EXPECT_NE(out.find("512.3"), std::string::npos);
  // Header separator line exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), picprk::ContractViolation);
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt_u64(42), "42");
}

TEST(SeriesTest, CsvFormat) {
  Series s{"ampi", {24, 48}, {10.5, 5.25}};
  std::ostringstream os;
  print_series_csv(os, {s});
  EXPECT_EQ(os.str(), "# series,ampi,24,10.5\n# series,ampi,48,5.25\n");
}

TEST(SeriesTest, MismatchedLengthsThrow) {
  Series s{"bad", {1.0}, {}};
  std::ostringstream os;
  EXPECT_THROW(print_series_csv(os, {s}), picprk::ContractViolation);
}

}  // namespace
