// Multi-client reuse contract of the work-stealing pool
// (docs/SERVICE.md): the pool is a long-lived shared resource, so every
// run() must leave it exactly as a fresh construction would — deques
// drained (even when a task threw), per-run stats from zero, placement
// honoured on the next batch. These tests pin the submit → drain →
// submit cycles the job server depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "ws/pool.hpp"

namespace {

using picprk::ws::PoolStats;
using picprk::ws::WorkStealingPool;

TEST(PoolReuseTest, BackToBackRunsEachCompleteAndStatsStartFromZero) {
  WorkStealingPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::uint64_t> sum{0};
    const std::size_t count = 90 + static_cast<std::size_t>(round) * 30;
    const PoolStats stats = pool.run(count, [&](std::size_t t, int) {
      sum.fetch_add(t, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), count * (count - 1) / 2);
    EXPECT_EQ(stats.tasks, count);  // not cumulative across rounds
    std::uint64_t executed = 0;
    for (auto e : stats.executed_per_worker) executed += e;
    EXPECT_EQ(executed, count);
  }
}

TEST(PoolReuseTest, RunAfterTaskExceptionExecutesEverything) {
  WorkStealingPool pool(2);
  EXPECT_THROW(pool.run(50,
                        [](std::size_t t, int) {
                          if (t == 7) throw std::runtime_error("tenant crash");
                        }),
               std::runtime_error);
  // The failed batch must not leak queued tasks into the next client's
  // run: the second batch executes its own tasks exactly once each.
  std::vector<std::atomic<int>> executed(64);
  const PoolStats stats =
      pool.run(64, [&](std::size_t t, int) { executed[t].fetch_add(1); });
  EXPECT_EQ(stats.tasks, 64u);
  for (const auto& e : executed) EXPECT_EQ(e.load(), 1);
}

TEST(PoolReuseTest, RepeatedExceptionRoundsStayReusable) {
  WorkStealingPool pool(2);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.run(30,
                          [](std::size_t t, int) {
                            if (t % 10 == 3) throw std::runtime_error("boom");
                          }),
                 std::runtime_error);
    std::atomic<int> count{0};
    pool.run(30, [&](std::size_t, int) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 30);
  }
}

TEST(PoolReuseTest, PlacedRunHonoursOwnersWithoutStealing) {
  WorkStealingPool pool(3);
  // Deliberately unbalanced placement: worker 2 owns everything.
  std::vector<int> owners(12, 2);
  std::vector<std::atomic<int>> ran_on(12);
  const PoolStats stats = pool.run_placed(
      12, owners, [&](std::size_t t, int w) { ran_on[t].store(w); },
      /*allow_steal=*/false);
  EXPECT_EQ(stats.steals, 0u);
  EXPECT_EQ(stats.executed_per_worker[0], 0u);
  EXPECT_EQ(stats.executed_per_worker[1], 0u);
  EXPECT_EQ(stats.executed_per_worker[2], 12u);
  for (const auto& w : ran_on) EXPECT_EQ(w.load(), 2);
}

TEST(PoolReuseTest, PlacedRunWithStealingStillRunsEveryTaskOnce) {
  WorkStealingPool pool(4);
  std::vector<int> owners(200);
  for (std::size_t t = 0; t < owners.size(); ++t) {
    owners[t] = static_cast<int>(t % 2);  // leave workers 2 and 3 idle
  }
  std::vector<std::atomic<int>> executed(200);
  const PoolStats stats = pool.run_placed(
      200, owners,
      [&](std::size_t t, int) {
        volatile double x = 1.0;
        for (int i = 0; i < 20000; ++i) x = x * 1.0000001;
        (void)x;
        executed[t].fetch_add(1);
      },
      /*allow_steal=*/true);
  for (const auto& e : executed) EXPECT_EQ(e.load(), 1);
  std::uint64_t total = 0;
  for (auto e : stats.executed_per_worker) total += e;
  EXPECT_EQ(total, 200u);
}

TEST(PoolReuseTest, PlacedThenBlockwiseThenPlacedCycles) {
  // A server interleaving placement-driven cycles with plain runs (two
  // different clients of one pool) must see clean state each time.
  WorkStealingPool pool(2);
  std::vector<int> owners = {1, 1, 0, 0, 1, 0};
  std::atomic<int> count{0};
  pool.run_placed(6, owners, [&](std::size_t, int) { count.fetch_add(1); },
                  /*allow_steal=*/false);
  EXPECT_EQ(count.load(), 6);
  count.store(0);
  pool.run(100, [&](std::size_t, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
  count.store(0);
  const PoolStats stats = pool.run_placed(
      6, owners, [&](std::size_t, int) { count.fetch_add(1); },
      /*allow_steal=*/false);
  EXPECT_EQ(count.load(), 6);
  EXPECT_EQ(stats.executed_per_worker[0], 3u);
  EXPECT_EQ(stats.executed_per_worker[1], 3u);
}

TEST(PoolReuseTest, SingleWorkerPlacedRunsInline) {
  WorkStealingPool pool(1);
  std::vector<int> owners(8, 0);
  int count = 0;
  const PoolStats stats =
      pool.run_placed(8, owners, [&](std::size_t, int w) {
        EXPECT_EQ(w, 0);
        ++count;
      });
  EXPECT_EQ(count, 8);
  EXPECT_EQ(stats.executed_per_worker[0], 8u);
}

}  // namespace
