#include <gtest/gtest.h>

#include "pic/simulation.hpp"
#include "ws/binned.hpp"

namespace {

using picprk::pic::CellRegion;
using picprk::pic::EventSchedule;
using picprk::pic::Geometric;
using picprk::pic::GridSpec;
using picprk::pic::InjectionEvent;
using picprk::pic::RemovalEvent;
using picprk::pic::SimulationConfig;
using picprk::ws::run_worksteal;
using picprk::ws::WsParams;

SimulationConfig base_config(std::int64_t cells, std::uint64_t n, std::uint32_t steps) {
  SimulationConfig cfg;
  cfg.init.grid = GridSpec(cells, 1.0);
  cfg.init.total_particles = n;
  cfg.steps = steps;
  return cfg;
}

class WsWorkers : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(WorkerCounts, WsWorkers, ::testing::Values(1, 2, 4),
                         [](const auto& info) { return "w" + std::to_string(info.param); });

TEST_P(WsWorkers, UniformVerifies) {
  auto cfg = base_config(40, 3000, 40);
  WsParams params;
  params.workers = GetParam();
  const auto r = run_worksteal(cfg, params);
  EXPECT_TRUE(r.ok) << "failures=" << r.verification.position_failures;
  EXPECT_EQ(r.final_particles, r.verification.checked);
}

TEST_P(WsWorkers, RotatedSkewVerifies) {
  auto cfg = base_config(40, 4000, 40);
  cfg.init.distribution = Geometric{0.85};
  cfg.init.rotate90 = true;  // skew the rows: unequal task costs
  cfg.init.k = 1;
  WsParams params;
  params.workers = GetParam();
  params.rows_per_task = 4;
  EXPECT_TRUE(run_worksteal(cfg, params).ok);
}

TEST(WsBinned, VerticalMotionRebinsCorrectly) {
  auto cfg = base_config(32, 2000, 60);
  cfg.init.m = 3;  // rows change every step: the re-bin path
  WsParams params;
  params.workers = 2;
  EXPECT_TRUE(run_worksteal(cfg, params).ok);
}

TEST(WsBinned, NegativeVerticalMotion) {
  auto cfg = base_config(32, 1500, 50);
  cfg.init.m = -2;
  WsParams params;
  params.workers = 2;
  EXPECT_TRUE(run_worksteal(cfg, params).ok);
}

TEST(WsBinned, MatchesSerialResult) {
  auto cfg = base_config(36, 2500, 30);
  cfg.init.distribution = Geometric{0.9};
  cfg.init.m = 1;
  const auto serial = picprk::pic::run_serial(cfg);
  WsParams params;
  params.workers = 2;
  const auto ws = run_worksteal(cfg, params);
  EXPECT_TRUE(serial.ok());
  EXPECT_TRUE(ws.ok);
  EXPECT_EQ(ws.final_particles, serial.final_particles);
  EXPECT_EQ(ws.verification.id_checksum, serial.verification.id_checksum);
}

TEST(WsBinned, StealingOccursOnRowSkew) {
  auto cfg = base_config(64, 30000, 20);
  cfg.init.distribution = Geometric{0.8};
  cfg.init.rotate90 = true;
  WsParams on;
  on.workers = 2;
  on.rows_per_task = 2;
  const auto r = run_worksteal(cfg, on);
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.steals, 0u);
}

TEST(WsBinned, StaticModeVerifiesWithoutSteals) {
  auto cfg = base_config(40, 3000, 20);
  cfg.init.distribution = Geometric{0.85};
  cfg.init.rotate90 = true;
  WsParams params;
  params.workers = 2;
  params.stealing = false;
  const auto r = run_worksteal(cfg, params);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.steals, 0u);
}

TEST(WsBinned, EventsVerify) {
  auto cfg = base_config(32, 1500, 40);
  cfg.events = EventSchedule({InjectionEvent{10, CellRegion{4, 28, 4, 28}, 800}},
                             {RemovalEvent{25, CellRegion{0, 32, 0, 16}, 0.5}});
  cfg.init.m = 1;
  WsParams params;
  params.workers = 2;
  const auto r = run_worksteal(cfg, params);
  EXPECT_TRUE(r.ok);
}

TEST(WsBinned, FineTasksVerify) {
  auto cfg = base_config(32, 1000, 20);
  WsParams params;
  params.workers = 4;
  params.rows_per_task = 1;
  EXPECT_TRUE(run_worksteal(cfg, params).ok);
}

}  // namespace
