#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "ws/pool.hpp"

namespace {

using picprk::ws::PoolStats;
using picprk::ws::WorkStealingPool;

TEST(PoolTest, EveryTaskRunsExactlyOnce) {
  WorkStealingPool pool(2);
  std::vector<std::atomic<int>> executed(100);
  const PoolStats stats = pool.run(100, [&](std::size_t t, int) {
    executed[t].fetch_add(1);
  });
  EXPECT_EQ(stats.tasks, 100u);
  for (const auto& e : executed) EXPECT_EQ(e.load(), 1);
}

TEST(PoolTest, ZeroTasksIsNoop) {
  WorkStealingPool pool(2);
  const PoolStats stats = pool.run(0, [](std::size_t, int) { FAIL(); });
  EXPECT_EQ(stats.tasks, 0u);
  EXPECT_EQ(stats.steals, 0u);
}

TEST(PoolTest, SingleWorkerRunsInline) {
  WorkStealingPool pool(1);
  int count = 0;
  const PoolStats stats = pool.run(10, [&](std::size_t, int w) {
    EXPECT_EQ(w, 0);
    ++count;
  });
  EXPECT_EQ(count, 10);
  EXPECT_EQ(stats.steals, 0u);
  EXPECT_EQ(stats.executed_per_worker[0], 10u);
}

TEST(PoolTest, StealingBalancesSkewedTaskCosts) {
  // First half of the tasks is 50x more expensive; the second worker
  // must steal some of them.
  WorkStealingPool pool(2);
  const PoolStats stats = pool.run(40, [&](std::size_t t, int) {
    const int spins = t < 20 ? 200000 : 4000;
    volatile double x = 1.0;
    for (int i = 0; i < spins; ++i) x = x * 1.0000001;
    (void)x;
  });
  EXPECT_GT(stats.steals, 0u);
  // Both workers executed something.
  EXPECT_GT(stats.executed_per_worker[0], 0u);
  EXPECT_GT(stats.executed_per_worker[1], 0u);
}

TEST(PoolTest, StaticScheduleNeverSteals) {
  WorkStealingPool pool(2);
  const PoolStats stats = pool.run(
      40,
      [&](std::size_t t, int) {
        volatile double x = 1.0;
        for (int i = 0; i < (t < 20 ? 100000 : 1000); ++i) x = x * 1.0000001;
        (void)x;
      },
      /*allow_steal=*/false);
  EXPECT_EQ(stats.steals, 0u);
  EXPECT_EQ(stats.executed_per_worker[0], 20u);
  EXPECT_EQ(stats.executed_per_worker[1], 20u);
}

TEST(PoolTest, TaskExceptionPropagates) {
  WorkStealingPool pool(2);
  EXPECT_THROW(pool.run(10,
                        [](std::size_t t, int) {
                          if (t == 3) throw std::runtime_error("task boom");
                        }),
               std::runtime_error);
}

TEST(PoolTest, WorkerIndexInRange) {
  WorkStealingPool pool(3);
  std::atomic<bool> ok{true};
  pool.run(60, [&](std::size_t, int w) {
    if (w < 0 || w >= 3) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(PoolTest, ManyTasksComplete) {
  WorkStealingPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  const PoolStats stats = pool.run(5000, [&](std::size_t t, int) {
    sum.fetch_add(t, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 5000ull * 4999 / 2);
  std::uint64_t executed = 0;
  for (auto e : stats.executed_per_worker) executed += e;
  EXPECT_EQ(executed, 5000u);
}

}  // namespace
