#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "field/poisson.hpp"

namespace {

using picprk::field::apply_neg_laplacian;
using picprk::field::gradient_to_field;
using picprk::field::ScalarField;
using picprk::field::solve_poisson;
using picprk::field::VectorField;
using picprk::pic::GridSpec;

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Fills f(i,j) = sin(2π·kx·i/C)·cos(2π·ky·j/C).
ScalarField make_mode(const GridSpec& grid, int kx, int ky) {
  ScalarField f(grid);
  const double c = static_cast<double>(grid.cells);
  for (std::int64_t j = 0; j < grid.cells; ++j) {
    for (std::int64_t i = 0; i < grid.cells; ++i) {
      f.at(i, j) = std::sin(kTwoPi * kx * static_cast<double>(i) / c) *
                   std::cos(kTwoPi * ky * static_cast<double>(j) / c);
    }
  }
  return f;
}

/// Discrete eigenvalue of −∇² for mode (kx, ky) on a C-periodic grid.
double discrete_eigenvalue(const GridSpec& grid, int kx, int ky) {
  const double c = static_cast<double>(grid.cells);
  const double lx = 2.0 - 2.0 * std::cos(kTwoPi * kx / c);
  const double ly = 2.0 - 2.0 * std::cos(kTwoPi * ky / c);
  return (lx + ly) / (grid.h * grid.h);
}

TEST(Laplacian, AnnihilatesConstants) {
  GridSpec grid(16, 1.0);
  ScalarField f(grid), out(grid);
  f.fill(7.0);
  apply_neg_laplacian(f, out);
  for (std::int64_t j = 0; j < 16; ++j) {
    for (std::int64_t i = 0; i < 16; ++i) EXPECT_NEAR(out.at(i, j), 0.0, 1e-12);
  }
}

TEST(Laplacian, FourierModesAreEigenfunctions) {
  GridSpec grid(32, 1.0);
  for (int kx : {1, 3}) {
    for (int ky : {0, 2}) {
      const ScalarField f = make_mode(grid, kx, ky);
      ScalarField out(grid);
      apply_neg_laplacian(f, out);
      const double lambda = discrete_eigenvalue(grid, kx, ky);
      for (std::int64_t j = 0; j < 32; j += 5) {
        for (std::int64_t i = 0; i < 32; i += 5) {
          EXPECT_NEAR(out.at(i, j), lambda * f.at(i, j), 1e-10)
              << "mode (" << kx << "," << ky << ") at (" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST(Laplacian, RespectsSpacing) {
  GridSpec fine(16, 0.5);
  const ScalarField f = make_mode(fine, 1, 0);
  ScalarField out(fine);
  apply_neg_laplacian(f, out);
  const double lambda = discrete_eigenvalue(fine, 1, 0);
  EXPECT_NEAR(out.at(3, 3), lambda * f.at(3, 3), 1e-10);
}

TEST(PoissonSolve, RecoversKnownSolution) {
  // −∇²φ = λ·mode  has solution φ = mode (discrete-exact).
  GridSpec grid(32, 1.0);
  const ScalarField mode = make_mode(grid, 2, 1);
  const double lambda = discrete_eigenvalue(grid, 2, 1);
  ScalarField rho = mode;
  for (auto& v : rho.data()) v *= lambda;

  ScalarField phi;
  const auto r = solve_poisson(rho, phi, 1e-10);
  EXPECT_TRUE(r.converged);
  for (std::int64_t j = 0; j < 32; j += 3) {
    for (std::int64_t i = 0; i < 32; i += 3) {
      EXPECT_NEAR(phi.at(i, j), mode.at(i, j), 1e-7);
    }
  }
}

TEST(PoissonSolve, ResidualBelowTolerance) {
  GridSpec grid(24, 1.0);
  ScalarField rho(grid);
  // An arbitrary neutral-ish charge blob; solver neutralises anyway.
  rho.at(5, 5) = 10.0;
  rho.at(15, 15) = -6.0;
  ScalarField phi;
  const auto r = solve_poisson(rho, phi, 1e-9);
  EXPECT_TRUE(r.converged);

  // Check the residual directly: −∇²φ must equal the neutralised rho.
  ScalarField b = rho;
  b.remove_mean();
  ScalarField ap(grid);
  apply_neg_laplacian(phi, ap);
  double err2 = 0, b2 = 0;
  for (std::size_t i = 0; i < b.data().size(); ++i) {
    const double d = ap.data()[i] - b.data()[i];
    err2 += d * d;
    b2 += b.data()[i] * b.data()[i];
  }
  EXPECT_LT(std::sqrt(err2), 1e-8 * std::sqrt(b2) + 1e-12);
}

TEST(PoissonSolve, ZeroRhsTrivial) {
  GridSpec grid(8, 1.0);
  ScalarField rho(grid);
  ScalarField phi;
  const auto r = solve_poisson(rho, phi);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
  EXPECT_NEAR(phi.sum(), 0.0, 1e-12);
}

TEST(PoissonSolve, SolutionHasZeroMean) {
  GridSpec grid(16, 1.0);
  ScalarField rho(grid);
  rho.at(3, 4) = 5.0;
  ScalarField phi;
  (void)solve_poisson(rho, phi);
  EXPECT_NEAR(phi.mean(), 0.0, 1e-10);
}

TEST(Gradient, LinearInModeAmplitude) {
  GridSpec grid(32, 1.0);
  const ScalarField phi = make_mode(grid, 1, 0);
  VectorField e(grid);
  gradient_to_field(phi, e);
  // E_x = −∂φ/∂x: for sin(2πi/C) the central difference gives
  // −cos(2πi/C)·sin(2π/C)/h at each point.
  const double c = 32.0;
  const double factor = std::sin(kTwoPi / c);
  for (std::int64_t i = 0; i < 32; i += 4) {
    const double expected = -std::cos(kTwoPi * static_cast<double>(i) / c) * factor;
    EXPECT_NEAR(e.x.at(i, 0), expected, 1e-12);
    EXPECT_NEAR(e.y.at(i, 0), 0.0, 1e-12);  // no y variation for ky = 0
  }
}

}  // namespace
