#include <gtest/gtest.h>

#include <cmath>

#include "field/mini_pic.hpp"
#include "util/rng.hpp"

namespace {

using picprk::field::interpolate;
using picprk::field::MiniPic;
using picprk::field::MiniPicConfig;
using picprk::field::VectorField;
using picprk::pic::GridSpec;
using picprk::pic::Particle;

Particle make_particle(double x, double y, double q, double vx = 0, double vy = 0) {
  Particle p;
  p.x = x;
  p.y = y;
  p.q = q;
  p.vx = vx;
  p.vy = vy;
  return p;
}

TEST(Interpolate, ReproducesConstantField) {
  GridSpec grid(8, 1.0);
  VectorField e(grid);
  e.x.fill(3.0);
  e.y.fill(-1.0);
  for (double x : {0.1, 3.7, 7.9}) {
    const auto s = interpolate(e, x, 2.3, grid);
    EXPECT_NEAR(s.ex, 3.0, 1e-12);
    EXPECT_NEAR(s.ey, -1.0, 1e-12);
  }
}

TEST(Interpolate, BilinearBetweenPoints) {
  GridSpec grid(8, 1.0);
  VectorField e(grid);
  e.x.at(2, 2) = 0.0;
  e.x.at(3, 2) = 4.0;
  // Midway in x between the two points, on the j = 2 row.
  const auto s = interpolate(e, 2.5, 2.0, grid);
  EXPECT_NEAR(s.ex, 2.0, 1e-12);
}

TEST(MiniPicTest, NeutralUniformPlasmaStaysQuiet) {
  // Equal + and − charges at the same positions: zero density, zero
  // field, particles drift ballistically.
  GridSpec grid(16, 1.0);
  std::vector<Particle> particles;
  for (int i = 0; i < 8; ++i) {
    particles.push_back(make_particle(i + 0.5, 8.5, +1.0, 0.5, 0.0));
    particles.push_back(make_particle(i + 0.5, 8.5, -1.0, 0.5, 0.0));
  }
  MiniPicConfig cfg;
  cfg.grid = grid;
  cfg.dt = 0.1;
  MiniPic sim(cfg, std::move(particles));
  const auto d = sim.run(20);
  EXPECT_NEAR(d.field_energy, 0.0, 1e-12);
  for (const auto& p : sim.particles()) {
    EXPECT_NEAR(p.vx, 0.5, 1e-12);  // never accelerated
    EXPECT_NEAR(p.vy, 0.0, 1e-12);
  }
}

TEST(MiniPicTest, LikeChargesRepel) {
  GridSpec grid(32, 1.0);
  std::vector<Particle> particles{make_particle(14.0, 16.0, 1.0),
                                  make_particle(18.0, 16.0, 1.0)};
  MiniPicConfig cfg;
  cfg.grid = grid;
  cfg.dt = 0.2;
  MiniPic sim(cfg, std::move(particles));
  sim.run(10);
  const auto& ps = sim.particles();
  // They move apart in x, symmetrically.
  EXPECT_LT(ps[0].vx, -1e-6);
  EXPECT_GT(ps[1].vx, 1e-6);
  EXPECT_NEAR(ps[0].vx, -ps[1].vx, 1e-9);
}

TEST(MiniPicTest, OppositeChargesAttract) {
  GridSpec grid(32, 1.0);
  std::vector<Particle> particles{make_particle(14.0, 16.0, 1.0),
                                  make_particle(18.0, 16.0, -1.0)};
  MiniPicConfig cfg;
  cfg.grid = grid;
  MiniPic sim(cfg, std::move(particles));
  sim.run(10);
  const auto& ps = sim.particles();
  EXPECT_GT(ps[0].vx, 1e-6);
  EXPECT_LT(ps[1].vx, -1e-6);
}

TEST(MiniPicTest, ChargeAndMomentumConserved) {
  GridSpec grid(24, 1.0);
  picprk::util::SplitMix64 rng(404);
  std::vector<Particle> particles;
  for (int i = 0; i < 60; ++i) {
    particles.push_back(make_particle(rng.next_double() * 24.0, rng.next_double() * 24.0,
                                      i % 2 == 0 ? 1.0 : -1.0,
                                      rng.next_double() - 0.5, rng.next_double() - 0.5));
  }
  MiniPicConfig cfg;
  cfg.grid = grid;
  cfg.dt = 0.05;
  MiniPic sim(cfg, std::move(particles));
  const auto before = sim.diagnostics();
  const auto after = sim.run(40);
  EXPECT_DOUBLE_EQ(after.total_charge, before.total_charge);
  // CIC deposition + bilinear gather conserve momentum up to grid error.
  EXPECT_NEAR(after.momentum_x, before.momentum_x,
              0.05 * (std::fabs(before.momentum_x) + 1.0));
  EXPECT_NEAR(after.momentum_y, before.momentum_y,
              0.05 * (std::fabs(before.momentum_y) + 1.0));
}

TEST(MiniPicTest, CloudExpansionConvertsFieldToKineticEnergy) {
  // A compact like-charged cloud blows apart: field energy decreases,
  // kinetic energy grows.
  GridSpec grid(32, 1.0);
  std::vector<Particle> particles;
  picprk::util::SplitMix64 rng(7);
  for (int i = 0; i < 40; ++i) {
    particles.push_back(make_particle(15.0 + rng.next_double() * 2.0,
                                      15.0 + rng.next_double() * 2.0, 0.5));
  }
  MiniPicConfig cfg;
  cfg.grid = grid;
  cfg.dt = 0.05;
  MiniPic sim(cfg, std::move(particles));
  const auto before = sim.diagnostics();
  const auto after = sim.run(30);
  EXPECT_GT(after.kinetic_energy, before.kinetic_energy);
  EXPECT_GT(before.field_energy, 0.0);
}

TEST(MiniPicTest, SolverConvergesEachStep) {
  GridSpec grid(16, 1.0);
  std::vector<Particle> particles{make_particle(4.5, 4.5, 2.0),
                                  make_particle(11.5, 11.5, -2.0)};
  MiniPicConfig cfg;
  cfg.grid = grid;
  MiniPic sim(cfg, std::move(particles));
  for (int s = 0; s < 5; ++s) {
    const auto d = sim.step();
    EXPECT_GT(d.cg_iterations, 0);
    EXPECT_LT(d.cg_residual, 1e-5);
  }
}

}  // namespace
