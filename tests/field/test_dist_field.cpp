#include <gtest/gtest.h>

#include "comm/world.hpp"
#include "field/dist_field.hpp"

namespace {

using picprk::comm::Cart2D;
using picprk::comm::Comm;
using picprk::comm::World;
using picprk::field::DistributedField;
using picprk::par::Decomposition2D;
using picprk::pic::GridSpec;

/// A recognisable global test function.
double pattern(std::int64_t gi, std::int64_t gj) {
  return static_cast<double>(gi * 1000 + gj);
}

class DistFieldRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(RankCounts, DistFieldRanks, ::testing::Values(1, 2, 4, 6),
                         [](const auto& info) { return "p" + std::to_string(info.param); });

TEST_P(DistFieldRanks, HaloExchangeDeliversNeighborValues) {
  World world(GetParam());
  world.run([](Comm& comm) {
    GridSpec grid(12, 1.0);
    Cart2D cart(comm.size());
    Decomposition2D decomp(grid, cart);
    DistributedField f(grid, decomp, comm.rank());

    for (std::int64_t lj = 0; lj < f.height(); ++lj) {
      for (std::int64_t li = 0; li < f.width(); ++li) {
        f.at(f.x0() + li, f.y0() + lj) = pattern(f.x0() + li, f.y0() + lj);
      }
    }
    f.halo_exchange(comm);

    // Every halo point (including corners) now holds the global pattern
    // value of the periodic point it mirrors.
    for (std::int64_t gj = f.y0() - 1; gj <= f.y0() + f.height(); ++gj) {
      for (std::int64_t gi = f.x0() - 1; gi <= f.x0() + f.width(); ++gi) {
        const auto wi = picprk::pic::wrap_index(gi, 12);
        const auto wj = picprk::pic::wrap_index(gj, 12);
        EXPECT_DOUBLE_EQ(f.at(gi, gj), pattern(wi, wj))
            << "point (" << gi << "," << gj << ")";
      }
    }
  });
}

TEST_P(DistFieldRanks, HaloFoldAccumulatesIntoOwners) {
  World world(GetParam());
  world.run([](Comm& comm) {
    GridSpec grid(12, 1.0);
    Cart2D cart(comm.size());
    Decomposition2D decomp(grid, cart);
    DistributedField f(grid, decomp, comm.rank());

    // Every rank adds 1 to every point of its block AND its halo ring
    // (as CIC deposition does at block borders). After folding, each
    // point must hold exactly the number of blocks it is adjacent to.
    for (std::int64_t gj = f.y0() - 1; gj <= f.y0() + f.height(); ++gj) {
      for (std::int64_t gi = f.x0() - 1; gi <= f.x0() + f.width(); ++gi) {
        f.at(gi, gj) += 1.0;
      }
    }
    f.halo_fold(comm);

    // Total over all owned points must equal the global number of
    // (point, adjacent-ring) incidences: every rank wrote
    // (w+2)(h+2) points.
    const double local_expected_writes =
        static_cast<double>((f.width() + 2) * (f.height() + 2));
    const double total_written = comm.allreduce_value<double>(
        local_expected_writes, [](double a, double b) { return a + b; });
    const double total_after_fold = comm.allreduce_value<double>(
        f.local_sum(), [](double a, double b) { return a + b; });
    EXPECT_NEAR(total_after_fold, total_written, 1e-9);
  });
}

TEST(DistFieldSingle, SingleRankAliasesPeriodically) {
  World world(1);
  world.run([](Comm& comm) {
    GridSpec grid(8, 1.0);
    Cart2D cart(1);
    Decomposition2D decomp(grid, cart);
    DistributedField f(grid, decomp, comm.rank());
    f.at(0, 0) = 5.0;
    // Periodic aliases read the same storage on a single rank.
    EXPECT_DOUBLE_EQ(f.at(8, 0), 5.0);
    EXPECT_DOUBLE_EQ(f.at(0, 8), 5.0);
    EXPECT_DOUBLE_EQ(f.at(-8, -8), 5.0);
  });
}

TEST_P(DistFieldRanks, LinearAlgebraOps) {
  World world(GetParam());
  world.run([](Comm& comm) {
    GridSpec grid(12, 1.0);
    Cart2D cart(comm.size());
    Decomposition2D decomp(grid, cart);
    DistributedField a(grid, decomp, comm.rank());
    DistributedField b(grid, decomp, comm.rank());
    a.fill(2.0);
    b.fill(3.0);
    const double dot = comm.allreduce_value<double>(
        DistributedField::local_dot(a, b), [](double x, double y) { return x + y; });
    EXPECT_DOUBLE_EQ(dot, 6.0 * 144.0);
    a.axpy(2.0, b);  // 2 + 6 = 8 on owned points
    EXPECT_DOUBLE_EQ(a.at(a.x0(), a.y0()), 8.0);
    const double total = comm.allreduce_value<double>(
        a.local_sum(), [](double x, double y) { return x + y; });
    EXPECT_DOUBLE_EQ(total, 8.0 * 144.0);
  });
}

}  // namespace
