#include <gtest/gtest.h>

#include "field/grid_field.hpp"

namespace {

using picprk::field::ScalarField;
using picprk::field::VectorField;
using picprk::pic::GridSpec;

TEST(ScalarFieldTest, IndexingAndPeriodicWrap) {
  ScalarField f(GridSpec(8, 1.0));
  f.at(3, 5) = 2.5;
  EXPECT_DOUBLE_EQ(f.at(3, 5), 2.5);
  // Periodic: index -5 wraps to 3, index 13 wraps to 5.
  EXPECT_DOUBLE_EQ(f.at(-5, 13), 2.5);
  EXPECT_DOUBLE_EQ(f.at(11, -3), 2.5);
}

TEST(ScalarFieldTest, FillSumMean) {
  ScalarField f(GridSpec(4, 1.0));
  f.fill(3.0);
  EXPECT_DOUBLE_EQ(f.sum(), 48.0);
  EXPECT_DOUBLE_EQ(f.mean(), 3.0);
  f.remove_mean();
  EXPECT_NEAR(f.sum(), 0.0, 1e-12);
}

TEST(ScalarFieldTest, DotAndAxpy) {
  GridSpec grid(4, 1.0);
  ScalarField a(grid), b(grid);
  a.fill(2.0);
  b.fill(3.0);
  EXPECT_DOUBLE_EQ(ScalarField::dot(a, b), 2.0 * 3.0 * 16.0);
  a.axpy(0.5, b);  // a = 2 + 1.5
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
  a.xpby(b, 2.0);  // a = 3 + 2*3.5 = 10
  EXPECT_DOUBLE_EQ(a.at(1, 1), 10.0);
}

TEST(ScalarFieldTest, NonUnitSpacing) {
  ScalarField f(GridSpec(4, 0.5));
  EXPECT_DOUBLE_EQ(f.h(), 0.5);
  EXPECT_EQ(f.cells(), 4);
}

TEST(VectorFieldTest, TwoComponents) {
  VectorField e(GridSpec(6, 1.0));
  e.x.at(1, 1) = 1.0;
  e.y.at(1, 1) = -2.0;
  EXPECT_DOUBLE_EQ(e.x.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(e.y.at(1, 1), -2.0);
}

}  // namespace
