// The distributed field pipeline must reproduce the serial one exactly
// (deposition, SpMV) or to solver tolerance (CG), for every rank count.
#include <gtest/gtest.h>

#include "comm/world.hpp"
#include "field/dist_pic.hpp"
#include "field/dist_solver.hpp"
#include "pic/init.hpp"

namespace {

using picprk::comm::Cart2D;
using picprk::comm::Comm;
using picprk::comm::World;
using picprk::field::DistributedField;
using picprk::field::DistributedMiniPic;
using picprk::field::MiniPic;
using picprk::field::MiniPicConfig;
using picprk::field::ScalarField;
using picprk::par::Decomposition2D;
using picprk::pic::GridSpec;
using picprk::pic::Particle;

std::vector<Particle> test_particles(std::int64_t cells, std::uint64_t n) {
  picprk::pic::InitParams params;
  params.grid = GridSpec(cells, 1.0);
  params.total_particles = n;
  params.distribution = picprk::pic::Geometric{0.9};
  auto particles = picprk::pic::Initializer(params).create_all();
  // Give them off-center positions and alternating signs so the density
  // is non-trivial and roughly neutral.
  for (std::size_t i = 0; i < particles.size(); ++i) {
    particles[i].x = picprk::pic::wrap(particles[i].x + 0.171 * static_cast<double>(i % 7),
                                       static_cast<double>(cells));
    particles[i].y = picprk::pic::wrap(particles[i].y + 0.233 * static_cast<double>(i % 5),
                                       static_cast<double>(cells));
    particles[i].q = (i % 2 == 0) ? 1.0 : -1.0;
    particles[i].vx = 0.1 * static_cast<double>(i % 3);
  }
  return particles;
}

class DistSolverRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(RankCounts, DistSolverRanks, ::testing::Values(1, 2, 4, 6),
                         [](const auto& info) { return "p" + std::to_string(info.param); });

TEST_P(DistSolverRanks, DepositionMatchesSerialExactly) {
  const GridSpec grid(16, 1.0);
  const auto all = test_particles(16, 600);

  // Serial reference density.
  ScalarField serial_rho(grid);
  picprk::field::deposit_cic(std::span<const Particle>(all), grid, serial_rho);

  World world(GetParam());
  world.run([&](Comm& comm) {
    Cart2D cart(comm.size());
    Decomposition2D decomp(grid, cart);
    DistributedField rho(grid, decomp, comm.rank());
    // Each rank deposits only its own particles.
    std::vector<Particle> mine;
    for (const auto& p : all) {
      if (decomp.owner_of_position(p.x, p.y) == comm.rank()) mine.push_back(p);
    }
    picprk::field::deposit_cic_distributed(comm, std::span<const Particle>(mine), grid,
                                           rho);
    for (std::int64_t gj = 0; gj < 16; ++gj) {
      for (std::int64_t gi = 0; gi < 16; ++gi) {
        if (!rho.owns(gi, gj)) continue;
        EXPECT_NEAR(rho.at(gi, gj), serial_rho.at(gi, gj), 1e-12)
            << "point (" << gi << "," << gj << ")";
      }
    }
  });
}

TEST_P(DistSolverRanks, LaplacianMatchesSerial) {
  const GridSpec grid(16, 1.0);
  ScalarField in(grid), serial_out(grid);
  for (std::int64_t j = 0; j < 16; ++j) {
    for (std::int64_t i = 0; i < 16; ++i) {
      in.at(i, j) = std::sin(0.3 * static_cast<double>(i)) +
                    0.5 * std::cos(0.7 * static_cast<double>(j));
    }
  }
  picprk::field::apply_neg_laplacian(in, serial_out);

  World world(GetParam());
  world.run([&](Comm& comm) {
    Cart2D cart(comm.size());
    Decomposition2D decomp(grid, cart);
    DistributedField din(grid, decomp, comm.rank());
    DistributedField dout(grid, decomp, comm.rank());
    for (std::int64_t lj = 0; lj < din.height(); ++lj) {
      for (std::int64_t li = 0; li < din.width(); ++li) {
        din.at(din.x0() + li, din.y0() + lj) = in.at(din.x0() + li, din.y0() + lj);
      }
    }
    picprk::field::apply_neg_laplacian_distributed(comm, din, dout, 1.0);
    for (std::int64_t lj = 0; lj < dout.height(); ++lj) {
      for (std::int64_t li = 0; li < dout.width(); ++li) {
        EXPECT_NEAR(dout.at(dout.x0() + li, dout.y0() + lj),
                    serial_out.at(dout.x0() + li, dout.y0() + lj), 1e-12);
      }
    }
  });
}

TEST_P(DistSolverRanks, PoissonSolutionMatchesSerial) {
  const GridSpec grid(16, 1.0);
  ScalarField rho(grid);
  rho.at(3, 4) = 8.0;
  rho.at(12, 11) = -5.0;
  ScalarField serial_phi;
  const auto serial = picprk::field::solve_poisson(rho, serial_phi, 1e-10);
  ASSERT_TRUE(serial.converged);

  World world(GetParam());
  world.run([&](Comm& comm) {
    Cart2D cart(comm.size());
    Decomposition2D decomp(grid, cart);
    DistributedField drho(grid, decomp, comm.rank());
    for (std::int64_t lj = 0; lj < drho.height(); ++lj) {
      for (std::int64_t li = 0; li < drho.width(); ++li) {
        drho.at(drho.x0() + li, drho.y0() + lj) = rho.at(drho.x0() + li, drho.y0() + lj);
      }
    }
    DistributedField dphi(grid, decomp, comm.rank());
    const auto result =
        picprk::field::solve_poisson_distributed(comm, drho, dphi, grid, 1e-10);
    EXPECT_TRUE(result.converged);
    for (std::int64_t lj = 0; lj < dphi.height(); ++lj) {
      for (std::int64_t li = 0; li < dphi.width(); ++li) {
        EXPECT_NEAR(dphi.at(dphi.x0() + li, dphi.y0() + lj),
                    serial_phi.at(dphi.x0() + li, dphi.y0() + lj), 1e-6);
      }
    }
  });
}

TEST_P(DistSolverRanks, FullCycleTracksSerialMiniPic) {
  const GridSpec grid(16, 1.0);
  const auto all = test_particles(16, 200);
  MiniPicConfig cfg;
  cfg.grid = grid;
  cfg.dt = 0.05;
  cfg.cg_rtol = 1e-10;

  MiniPic serial(cfg, all);
  const auto serial_d = serial.run(8);

  World world(GetParam());
  world.run([&](Comm& comm) {
    // Feed the full set on rank 0 only; the constructor routes them.
    DistributedMiniPic dist(comm, cfg,
                            comm.rank() == 0 ? all : std::vector<Particle>{});
    const auto d = dist.run(8);
    EXPECT_NEAR(d.total_charge, serial_d.total_charge, 1e-12);
    EXPECT_NEAR(d.kinetic_energy, serial_d.kinetic_energy,
                1e-6 * (serial_d.kinetic_energy + 1.0));
    EXPECT_NEAR(d.field_energy, serial_d.field_energy,
                1e-5 * (serial_d.field_energy + 1.0));
    EXPECT_NEAR(d.momentum_x, serial_d.momentum_x, 1e-6);

    // Global particle count conserved.
    const std::uint64_t count = comm.allreduce_value<std::uint64_t>(
        dist.particles().size(),
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(count, all.size());
  });
}

TEST(DistSolver, GlobalReductionHelpers) {
  World world(4);
  world.run([](Comm& comm) {
    GridSpec grid(8, 1.0);
    Cart2D cart(comm.size());
    Decomposition2D decomp(grid, cart);
    DistributedField f(grid, decomp, comm.rank());
    f.fill(1.0);
    // fill() also writes the halo ring, but global_sum only counts owned.
    EXPECT_DOUBLE_EQ(picprk::field::global_sum(comm, f), 64.0);
    picprk::field::remove_global_mean(comm, f, 8);
    EXPECT_NEAR(picprk::field::global_sum(comm, f), 0.0, 1e-12);
  });
}

}  // namespace
