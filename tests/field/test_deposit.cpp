#include <gtest/gtest.h>

#include "field/deposit.hpp"

namespace {

using picprk::field::cic_weights;
using picprk::field::deposit_cic;
using picprk::field::ScalarField;
using picprk::pic::GridSpec;
using picprk::pic::Particle;

Particle make_particle(double x, double y, double q) {
  Particle p;
  p.x = x;
  p.y = y;
  p.q = q;
  return p;
}

TEST(CicWeightsTest, PartitionOfUnity) {
  GridSpec grid(8, 1.0);
  for (double x : {0.1, 0.5, 0.73, 7.999}) {
    for (double y : {0.0, 0.25, 6.5}) {
      const auto w = cic_weights(x, y, grid);
      EXPECT_NEAR(w.w_bl + w.w_br + w.w_tl + w.w_tr, 1.0, 1e-14);
      EXPECT_GE(w.w_bl, 0.0);
      EXPECT_GE(w.w_tr, 0.0);
    }
  }
}

TEST(CicWeightsTest, OnMeshPointAllWeightThere) {
  GridSpec grid(8, 1.0);
  const auto w = cic_weights(3.0, 5.0, grid);
  EXPECT_EQ(w.i, 3);
  EXPECT_EQ(w.j, 5);
  EXPECT_DOUBLE_EQ(w.w_bl, 1.0);
  EXPECT_DOUBLE_EQ(w.w_br + w.w_tl + w.w_tr, 0.0);
}

TEST(CicWeightsTest, CellCenterQuarters) {
  GridSpec grid(8, 1.0);
  const auto w = cic_weights(2.5, 4.5, grid);
  EXPECT_DOUBLE_EQ(w.w_bl, 0.25);
  EXPECT_DOUBLE_EQ(w.w_br, 0.25);
  EXPECT_DOUBLE_EQ(w.w_tl, 0.25);
  EXPECT_DOUBLE_EQ(w.w_tr, 0.25);
}

TEST(DepositTest, ConservesTotalCharge) {
  GridSpec grid(16, 1.0);
  ScalarField rho(grid);
  std::vector<Particle> particles;
  double total_q = 0;
  for (int i = 0; i < 50; ++i) {
    const double q = (i % 2 == 0) ? 1.5 : -0.5;
    particles.push_back(make_particle(0.3 + 0.31 * i, 0.7 + 0.17 * i, q));
    particles.back().x = picprk::pic::wrap(particles.back().x, 16.0);
    particles.back().y = picprk::pic::wrap(particles.back().y, 16.0);
    total_q += q;
  }
  deposit_cic(std::span<const Particle>(particles), grid, rho);
  // ∑ρ·h² == total charge.
  EXPECT_NEAR(rho.sum() * grid.h * grid.h, total_q, 1e-10);
}

TEST(DepositTest, PeriodicSeamWrapsContributions) {
  GridSpec grid(8, 1.0);
  ScalarField rho(grid);
  // Particle in the last cell near the corner: deposits onto points
  // (7,7), (0,7), (7,0), (0,0) through the periodic wrap.
  const auto particles = std::vector<Particle>{make_particle(7.75, 7.75, 4.0)};
  deposit_cic(std::span<const Particle>(particles), grid, rho);
  EXPECT_GT(rho.at(0, 0), 0.0);
  EXPECT_GT(rho.at(7, 0), 0.0);
  EXPECT_GT(rho.at(0, 7), 0.0);
  EXPECT_NEAR(rho.sum(), 4.0, 1e-12);
}

TEST(DepositTest, NonUnitCellAreaScaling) {
  GridSpec grid(8, 2.0);
  ScalarField rho(grid);
  const auto particles = std::vector<Particle>{make_particle(4.0, 4.0, 1.0)};
  deposit_cic(std::span<const Particle>(particles), grid, rho);
  // Density integrates to the charge: ∑ρ·h² = q.
  EXPECT_NEAR(rho.sum() * 4.0, 1.0, 1e-12);
}

TEST(DepositTest, AccumulatesOverCalls) {
  GridSpec grid(8, 1.0);
  ScalarField rho(grid);
  const auto particles = std::vector<Particle>{make_particle(1.0, 1.0, 1.0)};
  deposit_cic(std::span<const Particle>(particles), grid, rho);
  deposit_cic(std::span<const Particle>(particles), grid, rho);
  EXPECT_DOUBLE_EQ(rho.at(1, 1), 2.0);
}

}  // namespace
