// Instance hygiene of the obs and ft layers (docs/SERVICE.md): nothing
// funnels through process-global state, so two registries — or two
// fault injectors, two checkpoint stores, two traces — are as isolated
// as two processes. The multi-tenant job server leans on this: every
// tenant owns its instances, and these tests pin that a same-named
// instrument in another instance never bleeds through.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "ft/checkpoint.hpp"
#include "ft/fault.hpp"
#include "obs/phase.hpp"
#include "obs/registry.hpp"

namespace {

using picprk::obs::Registry;

TEST(RegistryIsolationTest, SameNamesInTwoRegistriesAreIndependent) {
  Registry a, b;
  auto& ca = a.register_counter("svc/steps");
  auto& cb = b.register_counter("svc/steps");
  ca.add(41);
  cb.add(1);
  EXPECT_EQ(ca.value(), 41u);
  EXPECT_EQ(cb.value(), 1u);

  auto& ga = a.register_gauge("svc/lambda");
  auto& gb = b.register_gauge("svc/lambda");
  ga.set(3.5);
  EXPECT_DOUBLE_EQ(ga.value(), 3.5);
  EXPECT_DOUBLE_EQ(gb.value(), 0.0);

  auto& ha = a.register_histogram("svc/step_seconds", 0.0, 1.0, 10);
  auto& hb = b.register_histogram("svc/step_seconds", 0.0, 1.0, 10);
  ha.observe(0.25);
  ha.observe(0.75);
  EXPECT_EQ(ha.count(), 2u);
  EXPECT_EQ(hb.count(), 0u);
}

TEST(RegistryIsolationTest, RegistrationIsIdempotentPerInstanceOnly) {
  Registry a, b;
  auto& first = a.register_counter("ws/tasks");
  auto& again = a.register_counter("ws/tasks");
  EXPECT_EQ(&first, &again);  // same registry: same instrument
  auto& other = b.register_counter("ws/tasks");
  EXPECT_NE(&first, &other);  // different registry: different instrument
}

TEST(RegistryIsolationTest, FaultInjectorCountsStayWithTheInstance) {
  using picprk::ft::FaultInjector;
  using picprk::ft::FaultPlan;
  FaultInjector a(FaultPlan::parse("kill:rank=0,step=3", 1));
  FaultInjector b(FaultPlan::parse("kill:rank=0,step=3", 1));
  EXPECT_THROW(a.begin_step(0, 3), picprk::ft::RankKilled);
  EXPECT_EQ(a.kills(), 1u);
  EXPECT_EQ(b.kills(), 0u);  // b's identical plan has not fired
  b.begin_step(0, 2);        // non-matching step: still armed
  EXPECT_EQ(b.kills(), 0u);
}

TEST(RegistryIsolationTest, CheckpointStoresAreDisjointNamespaces) {
  picprk::ft::CheckpointStore a, b;
  a.save(0, 5, std::vector<std::byte>(16));
  EXPECT_TRUE(a.consistent_step(1).has_value());
  // Tenant b never checkpointed: slot 0 at step 5 must not exist there.
  EXPECT_FALSE(b.consistent_step(1).has_value());
  EXPECT_FALSE(b.load(0, 5).has_value());
  EXPECT_EQ(a.saves(), 1u);
  EXPECT_EQ(b.saves(), 0u);
}

TEST(RegistryIsolationTest, TracesKeepSeparateLaneSets) {
  picprk::obs::Trace a, b;
  auto& lane_a = a.lane(1, "job a", 0, "steps");
  auto& lane_b = b.lane(1, "job b", 0, "steps");
  lane_a.record("step", 0.0, 10.0);
  if (picprk::obs::kEnabled) {
    EXPECT_EQ(a.event_count(), 1u);
    EXPECT_EQ(b.event_count(), 0u);
    EXPECT_NE(&lane_a, &lane_b);
  }
}

}  // namespace
