#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/registry.hpp"

namespace {

using picprk::obs::Counter;
using picprk::obs::Gauge;
using picprk::obs::Histogram;
using picprk::obs::Registry;

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, LastWriterWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(1.5);
  g.set(2.25);
  EXPECT_EQ(g.value(), 2.25);
}

TEST(HistogramTest, ObserveCountsAndSums) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.observe(static_cast<double>(i) + 0.5);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.sum(), 50.0);
  const auto buckets = h.snapshot();
  ASSERT_EQ(buckets.size(), 10u);
  for (const auto b : buckets) EXPECT_EQ(b, 1u);
}

TEST(HistogramTest, OutOfRangeObservationsClampIntoEdgeBuckets) {
  Histogram h(0.0, 1.0, 4);
  h.observe(-100.0);
  h.observe(100.0);
  h.observe(1.0);  // hi itself lands in the last bucket
  const auto buckets = h.snapshot();
  EXPECT_EQ(buckets.front(), 1u);
  EXPECT_EQ(buckets.back(), 2u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, QuantileInterpolatesWithinBuckets) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.observe(static_cast<double>(i) + 0.5);
  // Uniform sample over [0, 100): the median must sit near 50.
  EXPECT_NEAR(h.quantile(50.0), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(99.0), 99.0, 2.0);
  EXPECT_GE(h.quantile(0.0), 0.0);
  EXPECT_LE(h.quantile(100.0), 100.0);
}

TEST(RegistryTest, RegistrationIsIdempotentByName) {
  Registry r;
  Counter& a = r.register_counter("steps");
  Counter& b = r.register_counter("steps");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  Gauge& g1 = r.register_gauge("lambda");
  Gauge& g2 = r.register_gauge("lambda");
  EXPECT_EQ(&g1, &g2);

  Histogram& h1 = r.register_histogram("t", 0.0, 1.0, 8);
  Histogram& h2 = r.register_histogram("t", 0.0, 1.0, 8);
  EXPECT_EQ(&h1, &h2);
}

TEST(RegistryTest, FindReturnsNullForUnknownNames) {
  Registry r;
  r.register_counter("present");
  EXPECT_NE(r.find_counter("present"), nullptr);
  EXPECT_EQ(r.find_counter("absent"), nullptr);
  EXPECT_EQ(r.find_gauge("absent"), nullptr);
  EXPECT_EQ(r.find_histogram("absent"), nullptr);
}

TEST(RegistryTest, HandlesStayStableAcrossManyRegistrations) {
  Registry r;
  Counter& first = r.register_counter("c0");
  first.add();
  // Deque storage: later registrations must not move earlier instruments.
  for (int i = 1; i < 200; ++i) r.register_counter("c" + std::to_string(i));
  EXPECT_EQ(&first, r.find_counter("c0"));
  EXPECT_EQ(first.value(), 1u);
}

TEST(RegistryTest, ViewsAreNameSortedSnapshots) {
  Registry r;
  r.register_counter("zeta").add(1);
  r.register_counter("alpha").add(2);
  r.register_gauge("mid").set(0.5);
  r.register_histogram("h", 0.0, 1.0, 4).observe(0.25);

  const auto counters = r.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].name, "alpha");
  EXPECT_EQ(counters[0].value, 2u);
  EXPECT_EQ(counters[1].name, "zeta");

  const auto gauges = r.gauges();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].value, 0.5);

  const auto histograms = r.histograms();
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_EQ(histograms[0].count, 1u);
  EXPECT_EQ(histograms[0].buckets.size(), 4u);
}

TEST(RegistryTest, ConcurrentIncrementsThroughOneHandleAreExact) {
  Registry r;
  Counter& c = r.register_counter("shared");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(RegistryTest, ConcurrentRegistrationOfTheSameNameYieldsOneInstrument) {
  Registry r;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r, &seen, t] {
      seen[static_cast<std::size_t>(t)] = &r.register_counter("raced");
      seen[static_cast<std::size_t>(t)]->add();
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[static_cast<std::size_t>(t)]);
  EXPECT_EQ(seen[0]->value(), static_cast<std::uint64_t>(kThreads));
}

TEST(RegistryTest, ResetValuesZeroesInstrumentsButKeepsNames) {
  Registry r;
  r.register_counter("c").add(7);
  r.register_gauge("g").set(3.0);
  r.register_histogram("h", 0.0, 1.0, 4).observe(0.5);
  r.reset_values();
  EXPECT_EQ(r.find_counter("c")->value(), 0u);
  EXPECT_EQ(r.find_gauge("g")->value(), 0.0);
  EXPECT_EQ(r.find_histogram("h")->count(), 0u);
  EXPECT_EQ(r.size(), 3u);
}

}  // namespace
