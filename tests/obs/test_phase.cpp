#include <gtest/gtest.h>

#include <string>

#include "obs/phase.hpp"
#include "obs/registry.hpp"

namespace {

using picprk::obs::Hooks;
using picprk::obs::Phase;
using picprk::obs::Registry;
using picprk::obs::StepInstruments;
using picprk::obs::Trace;

void spin_briefly() {
  // A few thousand iterations: enough for elapsed() > 0 on any clock.
  volatile double x = 1.0;
  for (int i = 0; i < 5000; ++i) x = x * 1.0000001;
}

TEST(PhaseTest, AccumulatesSecondsRegardlessOfBuildMode) {
  // The accumulation target is functional driver state (PhaseBreakdown),
  // so it must work even in PICPRK_OBS=OFF builds.
  double total = 0.0;
  {
    Phase phase(picprk::obs::kPhaseCompute, &total);
    spin_briefly();
  }
  EXPECT_GT(total, 0.0);

  const double first = total;
  {
    Phase phase(picprk::obs::kPhaseCompute, &total);
    spin_briefly();
  }
  EXPECT_GT(total, first);
}

TEST(PhaseTest, FinishIsIdempotent) {
  double total = 0.0;
  Phase phase(picprk::obs::kPhaseExchange, &total);
  spin_briefly();
  phase.finish();
  const double after_finish = total;
  EXPECT_GT(after_finish, 0.0);
  phase.finish();               // explicit second call: no double count
  EXPECT_EQ(total, after_finish);
  // The destructor runs after finish(): also a no-op.
}

TEST(PhaseTest, NestedPhasesAccumulateIndependently) {
  double outer = 0.0;
  double inner = 0.0;
  {
    Phase outer_phase(picprk::obs::kPhaseStep, &outer);
    {
      Phase inner_phase(picprk::obs::kPhaseCompute, &inner);
      spin_briefly();
    }
    spin_briefly();
  }
  EXPECT_GT(inner, 0.0);
  // The outer phase covers the inner one plus its own work.
  EXPECT_GE(outer, inner);
}

TEST(PhaseTest, NullTargetsAreSafe) {
  {
    Phase phase(picprk::obs::kPhaseLb);  // no accum, lane or histogram
    spin_briefly();
  }
  SUCCEED();
}

TEST(PhaseTest, ObservesHistogramWhenEnabled) {
  Registry registry;
  auto& hist = registry.register_histogram("t", 0.0, 1.0, 10);
  {
    Phase phase(picprk::obs::kPhaseCompute, nullptr, nullptr, &hist);
    spin_briefly();
  }
  if (picprk::obs::kEnabled) {
    EXPECT_EQ(hist.count(), 1u);
    EXPECT_GT(hist.sum(), 0.0);
  } else {
    EXPECT_EQ(hist.count(), 0u);
  }
}

TEST(PhaseTest, RecordsTraceSpanWhenEnabled) {
  Trace trace;
  auto& lane = trace.lane(0, "test", 0, "thread 0", 16);
  double total = 0.0;
  {
    Phase phase(picprk::obs::kPhaseExchange, &total, &lane);
    spin_briefly();
  }
  if (picprk::obs::kEnabled) {
    EXPECT_EQ(trace.event_count(), 1u);
    EXPECT_EQ(trace.lane_count(), 1u);
  } else {
    EXPECT_EQ(trace.event_count(), 0u);
  }
  EXPECT_GT(total, 0.0);  // accumulation works in both modes
}

TEST(TraceTest, LaneIsIdempotentPerPidTid) {
  Trace trace;
  auto& a = trace.lane(1, "vpr", 3, "vp 3", 16);
  auto& b = trace.lane(1, "vpr", 3, "vp 3", 16);
  EXPECT_EQ(&a, &b);
  if (picprk::obs::kEnabled) {
    auto& c = trace.lane(1, "vpr", 4, "vp 4", 16);
    EXPECT_NE(&a, &c);
    EXPECT_EQ(trace.lane_count(), 2u);
  }
}

TEST(TraceTest, RecordDropsBeyondReservedCapacityInsteadOfGrowing) {
  if (!picprk::obs::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Trace trace;
  auto& lane = trace.lane(0, "test", 0, "t", 4);
  for (int i = 0; i < 10; ++i) lane.record("span", 0.0, 1.0);
  EXPECT_EQ(trace.event_count(), 4u);
  EXPECT_EQ(trace.dropped_count(), 6u);
}

TEST(HooksTest, ActiveOnlyWhenEnabledAndWired) {
  Hooks dark;
  EXPECT_FALSE(dark.active());

  Registry registry;
  Trace trace;
  Hooks wired{&registry, &trace};
  EXPECT_EQ(wired.active(), picprk::obs::kEnabled);
}

TEST(StepInstrumentsTest, DefaultConstructedHasNullHandles) {
  StepInstruments inst;
  EXPECT_EQ(inst.lane, nullptr);
  EXPECT_EQ(inst.compute, nullptr);
  EXPECT_EQ(inst.steps, nullptr);
}

TEST(StepInstrumentsTest, RegistersCanonicalInstrumentsWhenEnabled) {
  Registry registry;
  Trace trace;
  const Hooks hooks{&registry, &trace};
  const StepInstruments inst(hooks, "baseline", 0, "rank 2", 2, 64);
  if (!picprk::obs::kEnabled) {
    EXPECT_EQ(inst.compute, nullptr);
    EXPECT_EQ(registry.size(), 0u);
    return;
  }
  ASSERT_NE(inst.lane, nullptr);
  ASSERT_NE(inst.compute, nullptr);
  ASSERT_NE(inst.exchange, nullptr);
  ASSERT_NE(inst.lb, nullptr);
  ASSERT_NE(inst.checkpoint, nullptr);
  ASSERT_NE(inst.steps, nullptr);
  ASSERT_NE(inst.exchange_sent, nullptr);
  ASSERT_NE(inst.exchange_received, nullptr);
  ASSERT_NE(inst.exchange_bytes, nullptr);
  // Names carry the thread label so ranks don't collide in one registry.
  EXPECT_EQ(registry.find_histogram("rank 2/phase_compute_seconds"), inst.compute);
  EXPECT_EQ(registry.find_counter("rank 2/steps"), inst.steps);
  // The lane is the trace row for (pid 0, tid 2).
  EXPECT_EQ(&trace.lane(0, "baseline", 2, "rank 2", 64), inst.lane);
}

}  // namespace
