#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/phase.hpp"
#include "obs/registry.hpp"
#include "obs/sinks.hpp"

namespace {

using picprk::obs::Registry;
using picprk::obs::StepSample;
using picprk::obs::Trace;

// ------------------------------------------------- minimal JSON checker
// A strict recursive-descent syntax validator — enough to catch every
// way hand-built emission goes wrong (trailing commas, unquoted keys,
// unbalanced brackets, bad numbers) without a JSON library dependency.

struct JsonParser {
  std::string_view s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool string() {
    ws();
    if (i >= s.size() || s[i] != '"') return false;
    for (++i; i < s.size(); ++i) {
      if (s[i] == '\\') {
        ++i;
      } else if (s[i] == '"') {
        ++i;
        return true;
      }
    }
    return false;
  }
  bool number() {
    ws();
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                            s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                            s[i] == '+' || s[i] == '-')) {
      ++i;
    }
    return i > start;
  }
  bool literal(std::string_view word) {
    ws();
    if (s.substr(i, word.size()) != word) return false;
    i += word.size();
    return true;
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      if (!string() || !eat(':') || !value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
  bool document() {
    if (!value()) return false;
    ws();
    return i == s.size();
  }
};

bool valid_json(const std::string& text) {
  JsonParser p{text};
  return p.document();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name) : path(std::string("/tmp/picprk_obs_") + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

void populate(Registry& r) {
  r.register_counter("rank 0/steps").add(20);
  r.register_counter("run/particles_exchanged").add(6850);
  r.register_gauge("run/seconds").set(0.125);
  auto& h = r.register_histogram("rank 0/phase_compute_seconds", 0.0, 0.05, 100);
  for (int i = 0; i < 20; ++i) h.observe(0.001 * i);
}

std::vector<StepSample> sample_series() {
  std::vector<StepSample> samples;
  for (int step = 0; step < 5; ++step) {
    samples.push_back(StepSample{step, 1.2 - 0.01 * step, 5000.0 - 10 * step,
                                 4000.0, 1.5});
  }
  return samples;
}

// ----------------------------------------------------------- the tests

TEST(JsonParserSelfTest, AcceptsAndRejectsTheRightThings) {
  EXPECT_TRUE(valid_json("{}"));
  EXPECT_TRUE(valid_json(R"({"a":[1,2.5,-3e-2],"b":{"c":"x\"y"},"d":true})"));
  EXPECT_FALSE(valid_json("{"));
  EXPECT_FALSE(valid_json(R"({"a":1,})"));
  EXPECT_FALSE(valid_json(R"({a:1})"));
  EXPECT_FALSE(valid_json(R"({"a":1} trailing)"));
}

TEST(MetricsDocumentTest, IsValidJsonWithTheBenchSchema) {
  Registry registry;
  populate(registry);
  picprk::util::JsonObject config;
  config.add("impl", std::string("baseline"));
  const auto doc = picprk::obs::metrics_document("picprk", config, registry,
                                                 sample_series());
  const std::string text = doc.to_string(2);
  EXPECT_TRUE(valid_json(text)) << text;
  EXPECT_NE(text.find("\"schema\""), std::string::npos);
  EXPECT_NE(text.find("picprk-bench-v1"), std::string::npos);
  EXPECT_NE(text.find("\"imbalance\""), std::string::npos);
  EXPECT_NE(text.find("rank 0/steps"), std::string::npos);
}

TEST(MetricsDocumentTest, EmptyRegistryAndSamplesStillValid) {
  const Registry registry;
  picprk::util::JsonObject config;
  const auto doc = picprk::obs::metrics_document("picprk", config, registry, {});
  EXPECT_TRUE(valid_json(doc.to_string(2)));
}

TEST(WriteMetricsJsonTest, RoundTripsThroughAFile) {
  TempFile f("metrics.json");
  Registry registry;
  populate(registry);
  picprk::util::JsonObject config;
  config.add("impl", std::string("diffusion"));
  ASSERT_TRUE(picprk::obs::write_metrics_json(f.path, "picprk", config, registry,
                                              sample_series()));
  const std::string text = read_file(f.path);
  EXPECT_TRUE(valid_json(text)) << text;
}

TEST(TraceJsonTest, EmptyTraceIsAValidDocument) {
  const Trace trace;
  const std::string text = trace.to_json();
  EXPECT_TRUE(valid_json(text)) << text;
  EXPECT_NE(text.find("traceEvents"), std::string::npos);
}

TEST(TraceJsonTest, PopulatedTraceIsValidAndCarriesLaneMetadata) {
  Trace trace;
  auto& lane = trace.lane(0, "baseline", 1, "rank 1", 16);
  lane.record(picprk::obs::kPhaseCompute, 10.0, 250.0);
  lane.record(picprk::obs::kPhaseExchange, 260.0, 40.5);
  const std::string text = trace.to_json();
  EXPECT_TRUE(valid_json(text)) << text;
  if (!picprk::obs::kEnabled) return;  // stub emits the empty document
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"rank 1\""), std::string::npos);
  EXPECT_NE(text.find("\"compute\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceJsonTest, WriteJsonProducesAReadableFile) {
  TempFile f("trace.json");
  Trace trace;
  trace.lane(2, "ws", 0, "worker 0", 8).record("tasks", 0.0, 100.0);
  ASSERT_TRUE(trace.write_json(f.path));
  EXPECT_TRUE(valid_json(read_file(f.path)));
}

TEST(PrintSummaryTest, EmitsTablesWithoutThrowing) {
  Registry registry;
  populate(registry);
  std::ostringstream os;
  picprk::obs::print_summary(os, registry, sample_series());
  const std::string text = os.str();
  EXPECT_NE(text.find("rank 0/steps"), std::string::npos);
  EXPECT_NE(text.find("lambda"), std::string::npos);
}

TEST(PrintSummaryTest, EmptyRegistryPrintsNothingFatal) {
  const Registry registry;
  std::ostringstream os;
  picprk::obs::print_summary(os, registry, {});
  SUCCEED();
}

}  // namespace
