// Unit suite for the picprk-lint v2 symbol indexer and call graph,
// built over a synthetic in-memory fixture tree: function and class
// recognition (inline, out-of-line, attributes), member variables,
// mutex and guard sites, and name-resolved call edges.
#include "lint/index.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace lint = picprk::lint;

namespace {

lint::Index index_of(std::vector<std::pair<std::string, std::string>> files) {
  std::vector<lint::SourceFile> sf;
  for (auto& [path, text] : files) {
    sf.push_back({std::filesystem::path(path), std::move(text), {}});
  }
  return lint::build_index(std::move(sf));
}

const lint::FunctionDef* find_fn(const lint::Index& idx, const std::string& q) {
  for (const lint::FunctionDef& f : idx.functions) {
    if (f.qualified == q) return &f;
  }
  return nullptr;
}

TEST(Index, FreeAndMemberFunctions) {
  const lint::Index idx = index_of({{"a.hpp", R"(
#pragma once
namespace ns {
int free_fn(int x) { return x + 1; }
class Widget {
 public:
  void method() { helper(); }
 private:
  void helper() {}
  int state_ = 0;
};
}  // namespace ns
)"}});
  ASSERT_NE(find_fn(idx, "ns::free_fn"), nullptr);
  ASSERT_NE(find_fn(idx, "ns::Widget::method"), nullptr);
  ASSERT_NE(find_fn(idx, "ns::Widget::helper"), nullptr);
  ASSERT_EQ(idx.classes.size(), 1u);
  ASSERT_EQ(idx.classes[0].members.size(), 1u);
  EXPECT_EQ(idx.classes[0].members[0].name, "state_");
}

TEST(Index, OutOfLineDefinitionAndHotAttribute) {
  const lint::Index idx = index_of({{"b.cpp", R"(
#define PICPRK_HOT __attribute__((hot))
namespace ns {
struct Mover { void push(); };
PICPRK_HOT void Mover::push() {}
}  // namespace ns
)"}});
  const lint::FunctionDef* push = find_fn(idx, "ns::Mover::push");
  ASSERT_NE(push, nullptr);
  EXPECT_EQ(push->class_name, "Mover");
  EXPECT_TRUE(push->is_hot);
}

TEST(Index, MemberVariableWithInitializerAndTransientComment) {
  const lint::Index idx = index_of({{"c.hpp", R"(
#pragma once
struct S {
  int counted = 0;
  double plain;
  int scratch = 0;  // pup:transient
};
)"}});
  ASSERT_EQ(idx.classes.size(), 1u);
  const lint::ClassDef& s = idx.classes[0];
  ASSERT_EQ(s.members.size(), 3u);
  const auto& comments =
      idx.files[0].comments_on_line(s.members[2].line);
  ASSERT_EQ(comments.size(), 1u);
  EXPECT_NE(comments[0]->text.find("pup:transient"), std::string::npos);
}

TEST(Index, PureVirtualPupIsNotADeclaration) {
  const lint::Index idx = index_of({{"d.hpp", R"(
#pragma once
struct Pup;
struct Iface {
  virtual void pup(Pup& p) = 0;
};
struct Holder {
  void pup(Pup& p);
  int x = 0;
};
)"}});
  ASSERT_EQ(idx.classes.size(), 2u);
  EXPECT_FALSE(idx.classes[0].declares_pup);
  EXPECT_TRUE(idx.classes[1].declares_pup);
}

TEST(Index, MutexAndGuardSites) {
  const lint::Index idx = index_of({{"e.hpp", R"(
#pragma once
struct Mutex {};
struct LockGuard { explicit LockGuard(Mutex& m); };
class Box {
 public:
  void touch() {
    LockGuard lock(mutex_);
  }
 private:
  Mutex mutex_;
  int held_ = 0;
};
)"}});
  bool found = false;
  for (const lint::MutexDecl& m : idx.mutexes) {
    if (m.class_name == "Box" && m.member == "mutex_") found = true;
  }
  EXPECT_TRUE(found);
  const lint::FunctionDef* touch = find_fn(idx, "Box::touch");
  ASSERT_NE(touch, nullptr);
  ASSERT_EQ(touch->guards.size(), 1u);
  EXPECT_EQ(touch->guards[0].arg, "mutex_");
}

TEST(CallGraph, ResolvesAcrossFilesBySimpleName) {
  const lint::Index idx = index_of({
      {"f.hpp", R"(
#pragma once
namespace ns { void leaf(); }
)"},
      {"g.cpp", R"(
#include "f.hpp"
namespace ns {
void leaf() {}
void mid() { leaf(); }
void root() { mid(); }
}  // namespace ns
)"}});
  const lint::CallGraph g = lint::build_call_graph(idx);
  const lint::FunctionDef* root = find_fn(idx, "ns::root");
  const lint::FunctionDef* mid = find_fn(idx, "ns::mid");
  const lint::FunctionDef* leaf = find_fn(idx, "ns::leaf");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(mid, nullptr);
  ASSERT_NE(leaf, nullptr);
  const std::size_t root_i = static_cast<std::size_t>(root - idx.functions.data());
  const std::size_t mid_i = static_cast<std::size_t>(mid - idx.functions.data());
  const std::size_t leaf_i = static_cast<std::size_t>(leaf - idx.functions.data());
  auto has_edge = [&g](std::size_t a, std::size_t b) {
    for (std::size_t c : g.callees[a]) {
      if (c == b) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_edge(root_i, mid_i));
  EXPECT_TRUE(has_edge(mid_i, leaf_i));
  EXPECT_FALSE(has_edge(leaf_i, root_i));
}

TEST(CallGraph, AmbiguousStdMethodNamesAreNotResolved) {
  const lint::Index idx = index_of({{"h.hpp", R"(
#pragma once
struct Store {
  void insert() { impure_(); }
  void impure_() {}
};
struct User {
  void go() { list_.insert(); named_step(); }
  Store list_;
  void named_step() {}
};
)"}});
  EXPECT_TRUE(lint::ambiguous_std_method("insert"));
  EXPECT_FALSE(lint::ambiguous_std_method("named_step"));
  const lint::CallGraph g = lint::build_call_graph(idx);
  const lint::FunctionDef* go = find_fn(idx, "User::go");
  const lint::FunctionDef* ins = find_fn(idx, "Store::insert");
  ASSERT_NE(go, nullptr);
  ASSERT_NE(ins, nullptr);
  const std::size_t go_i = static_cast<std::size_t>(go - idx.functions.data());
  const std::size_t ins_i = static_cast<std::size_t>(ins - idx.functions.data());
  for (std::size_t c : g.callees[go_i]) {
    EXPECT_NE(c, ins_i) << "member .insert() must not resolve to Store::insert";
  }
}

TEST(Index, HeldOnEntryFromAnnotationMacros) {
  const lint::Index idx = index_of({{"i.hpp", R"(
#pragma once
#define PICPRK_REQUIRES(...) __attribute__((requires_capability(__VA_ARGS__)))
struct Mutex {};
class Pool {
 public:
  void drain_locked() PICPRK_REQUIRES(mutex_) { count_ = 0; }
 private:
  Mutex mutex_;
  int count_ = 0;
};
)"}});
  const lint::FunctionDef* fn = find_fn(idx, "Pool::drain_locked");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->held_on_entry.size(), 1u);
  EXPECT_EQ(fn->held_on_entry[0], "mutex_");
}

}  // namespace
