// Fixture: every member is either pupped or tagged pup:transient.
// (Lint fixtures are scanned, never compiled.)
#pragma once

#include <cstdint>
#include <vector>

namespace fixture {

class Pup;  // stand-in for vpr::Pup

struct Complete {
  std::uint32_t step = 0;
  std::vector<double> values;
  double* scratch_ = nullptr;  // pup:transient — rebuilt on unpack

  void pup(Pup& p) {
    p | step;
    p | values;
  }
};

/// Out-of-line pup: the checker resolves ClassName::pup across files.
struct OutOfLine {
  int a = 0;
  int b = 0;

  void pup(Pup& p);
};

inline void OutOfLine::pup(Pup& p) {
  p | a;
  p | b;
}

/// Pure-virtual pup is an interface, not state: exempt.
class VirtualBase {
 public:
  virtual ~VirtualBase() = default;
  virtual void pup(Pup& p) = 0;
};

/// No pup() at all: the rule does not apply.
struct PlainData {
  int not_serialized = 0;
};

}  // namespace fixture
