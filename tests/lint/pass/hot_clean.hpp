// Fixture: a PICPRK_HOT body with none of the banned tokens passes.
// "throw" and "new" in this comment must not trip the checker, nor may
// the string literal below.
#pragma once

#define PICPRK_HOT __attribute__((hot))

inline const char* kNote = "this string says throw and push_back";

PICPRK_HOT inline double wrap(double x, double period) {
  while (x >= period) x -= period;
  while (x < 0.0) x += period;
  return x;
}

// Declaration only: nothing to scan.
PICPRK_HOT double advance(double x, double v, double dt);
