// Fixture: all tag arguments name registry constants (or forward a
// `tag` parameter inside generic plumbing); two-argument send overloads
// belong to a different API and are ignored.
#include "message.hpp"

namespace fixture {

struct Comm {
  template <typename T>
  void send(const T&, int, int) {}
  template <typename T>
  void send(const T&, int) {}
  template <typename T>
  int recv_into(T&, int, int) { return 0; }
};

inline void exchange(Comm& comm, const int* payload, int neighbor, int tag) {
  comm.send(payload, neighbor, comm::kMeshTag);
  comm.send(payload, neighbor, fixture::comm::kHaloTag);
  comm.send(payload, neighbor, tag);  // forwarded tag parameter: fine
  comm.send(payload, neighbor);       // two-arg overload: not the comm API
  int buf = 0;
  comm.recv_into(buf, neighbor, comm::kMeshTag);
}

}  // namespace fixture
