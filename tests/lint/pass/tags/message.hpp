// Fixture registry: the one legitimate home for k...Tag constants.
#pragma once

namespace fixture::comm {

inline constexpr int kAnyTag = -1;
inline constexpr int kMeshTag = 1000;
inline constexpr int kHaloTag = 1001;

}  // namespace fixture::comm
