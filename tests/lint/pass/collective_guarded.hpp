// Fixture: collectives under replicated conditions are fine, and a
// rank-derived branch with an explicit collective-guard justification
// passes. Mirrors the shapes the tree actually uses: every rank
// evaluates `step % every == 0` or `config.active()` identically, so
// the collective sequence stays replicated.
#pragma once

namespace fixture {

struct World {
  int rank() const { return 0; }
  void barrier() {}
  double allreduce_value(double v) { return v; }
};

struct Config {
  bool active() const { return true; }
};

/// Replicated condition: every rank computes the same truth value.
inline void maybe_checkpoint(World& world, const Config& config, int step) {
  if (config.active() && step % 16 == 0) {
    world.barrier();
  }
}

/// Rank-derived branch, but every arm re-joins the same collective: the
/// guard documents why this cannot desequence the world.
inline double staged_reduce(World& world, int rank) {
  double contribution = 0.0;
  if (rank == 0) {
    contribution = 1.0;
    // picprk-lint: collective-guard(all ranks reach this allreduce; the branch only changes the local contribution)
    contribution = world.allreduce_value(contribution);
  }
  return contribution;
}

}  // namespace fixture
