// Fixture: the suppression grammar, used correctly. Each directive
// names a real rule, carries a reason, and silences a finding that
// actually exists — so the suppress audit has nothing to say either.
#pragma once

#include <cstddef>
#include <vector>

#define PICPRK_HOT __attribute__((hot))

struct Scratch {
  std::vector<double> buf;
};

/// Startup-only resize inside a hot-tagged wrapper: the allocation is
/// real but intentional, so it is suppressed with a reason.
PICPRK_HOT inline void warm(Scratch& s, std::size_t n) {
  // picprk-lint: suppress(hot: one-time warmup before the step loop; never on the per-step path)
  s.buf.resize(n);
}

/// Same-line form.
PICPRK_HOT inline void warm2(Scratch& s, std::size_t n) {
  s.buf.reserve(n);  // picprk-lint: suppress(hot: capacity pre-touch at startup only)
}
