// Fixture: a PICPRK_HOT body that reads SoA columns passes, and the
// banned tokens are legal outside hot functions. "to_aos" in this
// comment must not trip the checker.
#pragma once

#include <cstddef>
#include <vector>

#define PICPRK_HOT __attribute__((hot))

struct Particle {
  double x = 0.0;
};

struct ParticleSoA {
  std::vector<double> x;
};

// Mentioning the SoA store is fine: whole-word matching on "Particle"
// must not fire on "ParticleSoA".
PICPRK_HOT inline void advance_columns(ParticleSoA& soa, double dt) {
  for (std::size_t i = 0; i < soa.x.size(); ++i) soa.x[i] += dt;
}

// Cold boundary code converts layouts freely.
inline std::vector<Particle> to_aos(const ParticleSoA& soa) {
  std::vector<Particle> out(soa.x.size());
  for (std::size_t i = 0; i < soa.x.size(); ++i) out[i].x = soa.x[i];
  return out;
}

inline void checkpoint(const ParticleSoA& soa, std::vector<Particle>& wire) {
  wire = to_aos(soa);
  for (const Particle& p : wire) (void)p;  // AoS loop outside a hot body: fine
}
