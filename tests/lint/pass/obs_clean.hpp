// Fixture: the allowed obs pattern — registration at setup (cold code),
// the PICPRK_HOT body recording only through a pre-registered handle.
// The token register_counter in this comment must not trip the checker.
#pragma once

#define PICPRK_HOT __attribute__((hot))

struct FakeCounter {
  void add() {}
};

struct FakeRegistry {
  FakeCounter& register_counter(const char*);
};

struct Instrumented {
  explicit Instrumented(FakeRegistry& registry)
      : steps_(&registry.register_counter("steps")) {}  // cold: allowed

  PICPRK_HOT void step() { steps_->add(); }  // hot: handle only

 private:
  FakeCounter* steps_;
};
