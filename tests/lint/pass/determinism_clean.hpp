// Fixture: a decision chain that only touches pure std:: math passes.
// Unresolved calls (std::sqrt, std::accumulate, container methods) are
// the implicit whitelist — the walk only follows calls that resolve to
// indexed project definitions.
#pragma once

#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

namespace fixture {

inline double smoothed(double w) {
  return std::sqrt(std::abs(w)) + 0.5;
}

inline double total_weight(const std::vector<double>& weights) {
  return std::accumulate(weights.begin(), weights.end(), 0.0);
}

struct Plan {
  std::vector<int> owner;
};

inline Plan rebalance_placement(const std::vector<double>& weights) {
  Plan plan;
  plan.owner.resize(weights.size());
  const double mean = total_weight(weights) / static_cast<double>(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    plan.owner[i] = smoothed(weights[i]) > mean ? 1 : 0;
  }
  return plan;
}

}  // namespace fixture
