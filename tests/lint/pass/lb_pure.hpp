// Fixture: the allowed lb::Strategy shape — decision bodies are pure
// arithmetic over their input. The tokens steady_clock and allreduce in
// this comment must not trip the checker, and banned names outside the
// decision bodies (setup code, other members) are fine too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

struct FakeBoundsInput {
  std::vector<std::int64_t> bounds;
  std::vector<double> loads;
};

struct PureStrategy {
  std::vector<std::int64_t> rebalance_bounds(const FakeBoundsInput& in) {
    std::vector<std::int64_t> out = in.bounds;
    double total = 0.0;
    for (const double l : in.loads) total += l;
    if (total <= 0.0) return out;  // deterministic arithmetic only
    return out;
  }

  std::vector<int> rebalance_placement(const FakeBoundsInput& in) {
    std::vector<int> owners(in.loads.size(), 0);
    for (std::size_t i = 0; i < owners.size(); ++i) {
      owners[i] = static_cast<int>(i % 2);
    }
    return owners;
  }

  // Declarations without bodies are not checked.
  std::vector<int> rebalance_placement(const std::vector<double>& loads);

  // Outside a decision body the runtime vocabulary is allowed: feedback
  // arrives through note_applied() with already-allreduced values.
  void note_applied(double allreduced_seconds) { last_cost_ = allreduced_seconds; }

 private:
  double last_cost_ = 0.0;
};
