// Fixture: self-contained header — #pragma once, resolvable project
// includes, and a direct include for every std:: vocabulary type used.
#pragma once

#include <cstdint>
#include <vector>

#include "pup_complete.hpp"

namespace fixture {

struct Record {
  std::uint64_t id = 0;
  std::vector<double> samples;
};

}  // namespace fixture
