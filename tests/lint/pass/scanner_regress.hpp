// Fixture: false-positive regressions for the v1 token scanner. Every
// construct here is legal, clean code that the old line-oriented
// find_word scan misread; the v2 lexer (which splices continuations and
// lexes strings, comments and whole preprocessor directives before the
// rules run) must stay quiet on all of it.
#pragma once

#define PICPRK_HOT __attribute__((hot))

// 1. An identifier split across a line continuation. The raw text puts
//    the word "new" alone at the start of the next physical line, which
//    the per-line scanner flagged as the banned allocator token; after
//    phase-2 splicing it is the single identifier `count_new`.
PICPRK_HOT inline int splice_ident(int x) {
  int count_\
new = 0;
  count_\
new += x;
  return count_\
new;
}

// 2. A multi-line macro definition. The old scanner only skipped lines
//    that themselves start with '#', so the tag argument in the
//    replacement text — never live code — tripped the file-wide tags
//    rule. The whole directive is one token in v2, invisible to rules.
#define REGRESS_SEND(world, dst, buf) \
  (world).send(dst, buf, 42)

// 3. A raw string with embedded quotes in a hot body. Naive quote
//    matching resynchronises at the first inner '"' and reads the rest
//    of the payload as code, flagging the banned words; the v2 lexer
//    consumes the literal, delimiter to delimiter, as one token.
PICPRK_HOT inline const char* hot_label() {
  return R"lbl(say "throw new push_back" loudly)lbl";
}

// 4. A // comment continued into the next physical line by a trailing
//    backslash inside a hot body: the second physical line is still
//    comment text, but per-line stripping saw it as code.
PICPRK_HOT inline double identity(double x) {
  // the next physical line belongs to this comment \
     fmod(x, resize(new))
  return x;
}
