// Unit suite for the picprk-lint v2 lexer: the constructs the rules
// depend on getting right — line-continuation splicing, raw strings,
// digraphs, whole-directive tokens, comment capture — plus the plain
// token taxonomy.
#include "lint/lexer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace lint = picprk::lint;

namespace {

std::vector<std::string> texts(const lint::LexResult& lx, lint::TokKind kind) {
  std::vector<std::string> out;
  for (const lint::Token& t : lx.tokens) {
    if (t.kind == kind) out.push_back(t.text);
  }
  return out;
}

bool has_ident(const lint::LexResult& lx, const std::string& s) {
  const auto ids = texts(lx, lint::TokKind::kIdentifier);
  return std::find(ids.begin(), ids.end(), s) != ids.end();
}

TEST(Lexer, SplicesIdentifierAcrossContinuation) {
  const lint::LexResult lx = lint::lex("int count_\\\nnew = 0;\n");
  EXPECT_TRUE(has_ident(lx, "count_new"));
  EXPECT_FALSE(has_ident(lx, "new"));
}

TEST(Lexer, ContinuedLineCommentSwallowsNextPhysicalLine) {
  const lint::LexResult lx = lint::lex("// comment \\\nfmod(x)\nint y;\n");
  EXPECT_FALSE(has_ident(lx, "fmod"));
  EXPECT_TRUE(has_ident(lx, "y"));
  ASSERT_EQ(lx.comments.size(), 1u);
  EXPECT_NE(lx.comments[0].text.find("fmod"), std::string::npos);
}

TEST(Lexer, RawStringWithEmbeddedQuotesIsOneToken) {
  const lint::LexResult lx =
      lint::lex("const char* s = R\"lbl(say \"new throw\" loudly)lbl\";\n");
  EXPECT_FALSE(has_ident(lx, "new"));
  EXPECT_FALSE(has_ident(lx, "throw"));
  const auto strs = texts(lx, lint::TokKind::kString);
  ASSERT_EQ(strs.size(), 1u);
  EXPECT_NE(strs[0].find("loudly"), std::string::npos);
}

TEST(Lexer, EncodedRawStringPrefixes) {
  const lint::LexResult lx = lint::lex("auto a = u8R\"(new)\"; auto b = LR\"(throw)\";\n");
  EXPECT_FALSE(has_ident(lx, "new"));
  EXPECT_FALSE(has_ident(lx, "throw"));
  EXPECT_EQ(texts(lx, lint::TokKind::kString).size(), 2u);
}

TEST(Lexer, MultiLineDefineIsOneDirectiveToken) {
  const lint::LexResult lx =
      lint::lex("#define APPEND(v, x) \\\n  (v).push_back(x)\nint z;\n");
  const auto dirs = texts(lx, lint::TokKind::kDirective);
  ASSERT_EQ(dirs.size(), 1u);
  EXPECT_NE(dirs[0].find("push_back"), std::string::npos);
  EXPECT_FALSE(has_ident(lx, "push_back"));
  EXPECT_TRUE(has_ident(lx, "z"));
}

TEST(Lexer, IncludeDirectiveKeepsAnglePayload) {
  const lint::LexResult lx = lint::lex("#include <vector>\n#include \"a/b.hpp\"\n");
  const auto dirs = texts(lx, lint::TokKind::kDirective);
  ASSERT_EQ(dirs.size(), 2u);
  EXPECT_NE(dirs[0].find("<vector"), std::string::npos);
  EXPECT_NE(dirs[1].find("a/b.hpp"), std::string::npos);
}

TEST(Lexer, DigraphsNormalise) {
  const lint::LexResult lx = lint::lex("int a<:2:> = <%1, 2%>;\n");
  const auto ps = texts(lx, lint::TokKind::kPunct);
  EXPECT_NE(std::find(ps.begin(), ps.end(), "["), ps.end());
  EXPECT_NE(std::find(ps.begin(), ps.end(), "]"), ps.end());
  EXPECT_NE(std::find(ps.begin(), ps.end(), "{"), ps.end());
  EXPECT_NE(std::find(ps.begin(), ps.end(), "}"), ps.end());
}

TEST(Lexer, BlockCommentSpansLinesAndIsCaptured) {
  const lint::LexResult lx = lint::lex("int a; /* new\nthrow */ int b;\n");
  EXPECT_FALSE(has_ident(lx, "new"));
  EXPECT_TRUE(has_ident(lx, "b"));
  ASSERT_EQ(lx.comments.size(), 1u);
  EXPECT_EQ(lx.comments[0].line, 1);
  EXPECT_EQ(lx.comments[0].end_line, 2);
}

TEST(Lexer, PpNumberWithSeparatorsAndExponent) {
  const lint::LexResult lx = lint::lex("double d = 1'000'000.5e-3;\n");
  const auto nums = texts(lx, lint::TokKind::kNumber);
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_EQ(nums[0], "1'000'000.5e-3");
}

TEST(Lexer, MultiCharPunctuatorsLongestMatch) {
  const lint::LexResult lx = lint::lex("a <<= b; c <=> d; e->*f; x::y;\n");
  const auto ps = texts(lx, lint::TokKind::kPunct);
  EXPECT_NE(std::find(ps.begin(), ps.end(), "<<="), ps.end());
  EXPECT_NE(std::find(ps.begin(), ps.end(), "<=>"), ps.end());
  EXPECT_NE(std::find(ps.begin(), ps.end(), "->*"), ps.end());
  EXPECT_NE(std::find(ps.begin(), ps.end(), "::"), ps.end());
}

TEST(Lexer, LinePositionsSurviveSplicing) {
  const lint::LexResult lx = lint::lex("int a;\nint b_\\\nc;\nint d;\n");
  int line_bc = 0, line_d = 0;
  for (const lint::Token& t : lx.tokens) {
    if (t.text == "b_c") line_bc = t.line;
    if (t.text == "d") line_d = t.line;
  }
  EXPECT_EQ(line_bc, 2);
  EXPECT_EQ(line_d, 4);
}

TEST(Lexer, StringsAndCharsKeepKindAndEscapes) {
  const lint::LexResult lx =
      lint::lex("const char* s = \"a\\\"new\\\"b\"; char c = '\\'';\n");
  EXPECT_FALSE(has_ident(lx, "new"));
  EXPECT_EQ(texts(lx, lint::TokKind::kString).size(), 1u);
  EXPECT_EQ(texts(lx, lint::TokKind::kChar).size(), 1u);
}

TEST(Lexer, KeywordPredicate) {
  EXPECT_TRUE(lint::is_keyword("constexpr"));
  EXPECT_TRUE(lint::is_keyword("co_await"));
  EXPECT_FALSE(lint::is_keyword("rebalance_bounds"));
}

}  // namespace
