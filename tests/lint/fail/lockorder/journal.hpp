// Fixture (1/2): lock-order cycle across translation units. Journal
// takes journal_mutex_ then calls into Ledger, which takes
// ledger_mutex_ (see ledger.hpp for the opposite order). Neither file
// is wrong in isolation — only the project-wide acquisition graph sees
// the deadlock, which is exactly what the token scanner could not do.
#pragma once

namespace fixture {

struct Mutex {};
struct LockGuard {
  explicit LockGuard(Mutex& m) { (void)m; }
};

void ledger_audit();

class Journal {
 public:
  void append() {
    LockGuard lock(journal_mutex_);
    ledger_audit();  // acquires Ledger::ledger_mutex_ while we hold ours
  }

  void journal_note() {
    LockGuard lock(journal_mutex_);
  }

 private:
  Mutex journal_mutex_;
};

}  // namespace fixture
