// Fixture (2/2): the other half of the cycle. Ledger takes
// ledger_mutex_ then calls Journal::journal_note(), which takes
// journal_mutex_ — the opposite order from journal.hpp. Two threads
// running append() and reconcile() concurrently deadlock.
#pragma once

#include "journal.hpp"

namespace fixture {

class Ledger {
 public:
  void reconcile(Journal& journal) {
    LockGuard lock(ledger_mutex_);
    journal.journal_note();  // acquires Journal::journal_mutex_ under ours
  }

  void audit() {
    LockGuard lock(ledger_mutex_);
  }

 private:
  Mutex ledger_mutex_;
};

inline void ledger_audit() {
  Ledger ledger;
  ledger.audit();
}

}  // namespace fixture
