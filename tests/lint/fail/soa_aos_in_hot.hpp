// Fixture: PICPRK_HOT bodies that convert layouts or loop over AoS
// Particle records must fail the soa rule.
#pragma once

#include <cstddef>
#include <vector>

#define PICPRK_HOT __attribute__((hot))

struct Particle {
  double x = 0.0;
};

struct ParticleSoA {
  std::vector<double> x;
};

inline std::vector<Particle> to_aos(const ParticleSoA& soa) {
  std::vector<Particle> out(soa.x.size());
  for (std::size_t i = 0; i < soa.x.size(); ++i) out[i].x = soa.x[i];
  return out;
}

PICPRK_HOT inline double bad_convert(const ParticleSoA& soa) {
  double sum = 0.0;
  for (const Particle& p : to_aos(soa)) sum += p.x;  // banned: to_aos + AoS loop
  return sum;
}

PICPRK_HOT inline void bad_aos_loop(std::vector<Particle>& particles, double dt) {
  for (Particle& p : particles) p.x += dt;  // banned: AoS traversal in a hot body
}
