// Fixture: registering a telemetry instrument inside a PICPRK_HOT body
// must fail the `obs` rule — registration allocates and takes a mutex.
#pragma once

#define PICPRK_HOT __attribute__((hot))

struct FakeCounter {
  void add() {}
};

struct FakeRegistry {
  FakeCounter& register_counter(const char*);
  FakeCounter& register_gauge(const char*);
  FakeCounter& register_histogram(const char*, double, double, int);
};

PICPRK_HOT inline void bad_count(FakeRegistry& registry) {
  registry.register_counter("steps").add();  // banned: registration in hot code
}

PICPRK_HOT inline void bad_hist(FakeRegistry& registry) {
  registry.register_histogram("seconds", 0.0, 1.0, 10);  // banned
}
