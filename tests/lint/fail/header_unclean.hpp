// Fixture: three header violations — no #pragma once, a std:: type
// spelled without its include, and an unresolvable project include.

#include <cstdint>

#include "no/such/file.hpp"

namespace fixture {

struct Record {
  std::uint64_t id = 0;
  std::vector<double> samples;  // std::vector without <vector>
};

}  // namespace fixture
