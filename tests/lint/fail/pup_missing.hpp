// Fixture: a pup()-able struct with an unserialized, untagged member
// must fail — this is the silent-checkpoint-corruption bug class.
#pragma once

#include <cstdint>
#include <vector>

namespace fixture {

class Pup;

struct Leaky {
  std::uint32_t step = 0;
  std::vector<double> values;
  std::uint64_t forgotten_sum = 0;  // not pupped, not tagged: violation

  void pup(Pup& p) {
    p | step;
    p | values;
  }
};

}  // namespace fixture
