// Fixture: transitive impurity below an LB decision entry point must
// fail. The rebalance_placement body itself is spotless — the clock
// read hides two calls down, where the per-function token scan (the v1
// `lb` rule) never looks. A wall-clock-seeded decision diverges across
// ranks and the replicated plan replay desynchronises.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

namespace fixture {

/// Level 2: the actual impurity.
inline double weight_noise() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<double>(t.count() % 7);
}

/// Level 1: pure-looking plumbing.
inline double adjusted_weight(double w) {
  return w + weight_noise();
}

struct Plan {
  std::vector<int> owner;
};

/// Entry point: every token in this body passes the v1 scan.
inline Plan rebalance_placement(const std::vector<double>& weights) {
  Plan plan;
  plan.owner.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    plan.owner[i] = adjusted_weight(weights[i]) > 1.0 ? 1 : 0;
  }
  return plan;
}

}  // namespace fixture
