// Fixture: a collective reached under a rank-derived branch must fail.
// The token scanner could never catch this — the collective here is two
// calls deep, and the branch is in the caller, not next to the
// comm::World call. A rank that takes the other arm of the branch never
// enters the collective and the rest of the world deadlocks in it.
#pragma once

namespace fixture {

struct World {
  int rank() const { return 0; }
  void barrier() {}
  double allreduce_value(double v) { return v; }
};

/// Transitively performs a collective: callers inherit the obligation.
inline void flush_epoch(World& world) {
  world.barrier();
}

inline void step(World& world, int rank) {
  if (rank == 0) {
    flush_epoch(world);  // violation: collective under a rank branch
  }
}

inline double reduce_if_root(World& world) {
  double sum = 0.0;
  if (world.rank() == 0) {
    sum = world.allreduce_value(1.0);  // violation: direct conditional collective
  }
  return sum;
}

}  // namespace fixture
