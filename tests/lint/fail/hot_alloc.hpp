// Fixture: PICPRK_HOT bodies that allocate, fmod, or throw must fail.
#pragma once

#include <cmath>
#include <stdexcept>
#include <vector>

#define PICPRK_HOT __attribute__((hot))

PICPRK_HOT inline double bad_wrap(double x, double period) {
  return std::fmod(x, period);  // banned: fmod in a hot body
}

PICPRK_HOT inline void bad_push(std::vector<int>& v, int x) {
  v.push_back(x);  // banned: container growth in a hot body
}

PICPRK_HOT inline void bad_throw(int x) {
  if (x < 0) throw std::runtime_error("negative");  // banned: throw
}
