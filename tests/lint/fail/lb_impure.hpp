// Fixture: nondeterminism inside a rebalance decision body must fail
// the `lb` rule — clocks, RNG, environment reads and communication all
// desynchronise the replicated strategy state across ranks.
#pragma once

#include <chrono>
#include <cstdlib>
#include <vector>

struct FakeComm {
  double allreduce_max(double v);
};

struct ImpureStrategy {
  std::vector<int> rebalance_placement(const std::vector<double>& loads) {
    std::vector<int> owners(loads.size(), 0);
    if (std::rand() % 2 == 0) owners[0] = 1;  // banned: per-rank RNG
    return owners;
  }

  std::vector<long> rebalance_bounds(const std::vector<long>& bounds,
                                     FakeComm& comm) {
    const auto t0 = std::chrono::steady_clock::now();  // banned: clock read
    (void)t0;
    comm.allreduce_max(1.0);  // banned: communication inside a decision
    return bounds;
  }
};
