// Fixture: the suppression grammar is itself linted. Every directive
// below is bad in a different way and must be reported under the
// `suppress` meta-rule: reasons are mandatory, rules must exist, and a
// suppression with nothing to suppress is stale documentation.
#pragma once

#include <cstddef>

#define PICPRK_HOT __attribute__((hot))

// Unknown rule name: violation.
// picprk-lint: suppress(hotpath: misspelled rule)
PICPRK_HOT inline int a(int x) { return x; }

// Empty reason: violation.
// picprk-lint: suppress(hot:)
PICPRK_HOT inline int b(int x) { return x; }

// Unknown directive: violation.
// picprk-lint: silence(hot: no such directive)
PICPRK_HOT inline int c(int x) { return x; }

// Well-formed but nothing to suppress on the next line: violation
// (unused suppression).
// picprk-lint: suppress(hot: there is no finding here)
PICPRK_HOT inline int d(int x) { return x; }
