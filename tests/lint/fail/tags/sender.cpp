// Fixture: literal tags at call sites and tag constants defined outside
// the registry must both fail.
#include "message.hpp"

namespace fixture {

// Violation: a tag constant living outside message.hpp.
inline constexpr int kRogueTag = 7;

struct Comm {
  template <typename T>
  void send(const T&, int, int) {}
};

inline void exchange(Comm& comm, const int* payload, int neighbor) {
  comm.send(payload, neighbor, 42);         // violation: literal tag
  comm.send(payload, neighbor, kRogueTag);  // named, but not in the registry
}

}  // namespace fixture
