// Fixture registry for the failing-tags tree.
#pragma once

namespace fixture::comm {

inline constexpr int kAnyTag = -1;
inline constexpr int kMeshTag = 1000;

}  // namespace fixture::comm
