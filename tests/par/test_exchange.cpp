#include <gtest/gtest.h>

#include <set>

#include "comm/world.hpp"
#include "par/exchange.hpp"
#include "pic/init.hpp"
#include "pic/mover.hpp"
#include "pic/verify.hpp"

namespace {

using picprk::comm::Cart2D;
using picprk::comm::Comm;
using picprk::comm::World;
using picprk::par::Decomposition2D;
using picprk::par::exchange_particles;
using picprk::pic::GridSpec;
using picprk::pic::InitParams;
using picprk::pic::Initializer;
using picprk::pic::Particle;

TEST(Exchange, RoutesDisplacedParticlesToOwners) {
  const int p = 4;
  World world(p);
  world.run([](Comm& comm) {
    GridSpec grid(16, 1.0);
    Cart2D cart(comm.size());
    Decomposition2D decomp(grid, cart);
    const auto block = decomp.block_of(comm.rank());

    InitParams params;
    params.grid = grid;
    params.total_particles = 800;
    const Initializer init(params);
    auto mine = init.create_block(block.x0, block.x1, block.y0, block.y1);
    const std::uint64_t local_before = mine.size();

    // Shift every particle 5 cells right (wrapped): most leave the block.
    for (auto& particle : mine) particle.x = picprk::pic::wrap(particle.x + 5.0, 16.0);

    const auto stats = exchange_particles(comm, decomp, mine);

    // Global particle count is conserved.
    const std::uint64_t total_after = comm.allreduce_value<std::uint64_t>(
        mine.size(), [](std::uint64_t a, std::uint64_t b) { return a + b; });
    const std::uint64_t total_before = comm.allreduce_value<std::uint64_t>(
        local_before, [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(total_after, total_before);

    // Everything this rank holds is in its block (also asserted inside).
    for (const auto& particle : mine) {
      EXPECT_TRUE(block.contains_cell(grid.cell_of(particle.x), grid.cell_of(particle.y)));
    }

    // Id checksum is conserved.
    std::uint64_t local_sum = 0;
    for (const auto& particle : mine) local_sum += particle.id;
    const std::uint64_t sum = comm.allreduce_value<std::uint64_t>(
        local_sum, [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(sum, picprk::pic::expected_checksum(init.total()));
    (void)stats;
  });
}

TEST(Exchange, NoMovementMeansNoTraffic) {
  World world(4);
  world.run([](Comm& comm) {
    GridSpec grid(8, 1.0);
    Cart2D cart(comm.size());
    Decomposition2D decomp(grid, cart);
    const auto block = decomp.block_of(comm.rank());

    InitParams params;
    params.grid = grid;
    params.total_particles = 200;
    const Initializer init(params);
    auto mine = init.create_block(block.x0, block.x1, block.y0, block.y1);

    const auto stats = exchange_particles(comm, decomp, mine);
    EXPECT_EQ(stats.sent, 0u);
    EXPECT_EQ(stats.received, 0u);
  });
}

TEST(Exchange, LongJumpsRouteAcrossMultipleRanks) {
  // A 1-wide process grid in x: moving +9 cells crosses two owners.
  World world(3);
  world.run([](Comm& comm) {
    GridSpec grid(12, 1.0);
    Cart2D cart(3, 1);
    Decomposition2D decomp(grid, cart);
    const auto block = decomp.block_of(comm.rank());

    std::vector<Particle> mine;
    if (comm.rank() == 0) {
      Particle p;
      p.x = 0.5;
      p.y = 6.5;
      p.id = 7;
      mine.push_back(p);
      mine.back().x = picprk::pic::wrap(0.5 + 9.0, 12.0);  // lands in rank 2
    }
    const auto stats = exchange_particles(comm, decomp, mine);
    if (comm.rank() == 2) {
      ASSERT_EQ(mine.size(), 1u);
      EXPECT_EQ(mine.front().id, 7u);
    } else {
      EXPECT_TRUE(mine.empty());
    }
    (void)stats;
    (void)block;
  });
}

TEST(Exchange, WorkspaceReusePerformsNoSteadyStateAllocations) {
  // The zero-allocation contract of the hot path: drive steady,
  // stationary traffic (uniform particles hopping exact cell distances
  // every step) through a reused ExchangeBuffers workspace and assert
  // the growth counter stops moving once the buffers reach their
  // high-water marks.
  World world(4);
  world.run([](Comm& comm) {
    GridSpec grid(32, 1.0);
    Cart2D cart(comm.size());
    Decomposition2D decomp(grid, cart);
    const auto block = decomp.block_of(comm.rank());

    InitParams params;
    params.grid = grid;
    params.total_particles = 8000;
    params.distribution = picprk::pic::Uniform{};
    params.k = 1;
    params.m = 1;
    const Initializer init(params);
    auto mine = init.create_block(block.x0, block.x1, block.y0, block.y1);

    const picprk::pic::AlternatingColumnCharges charges;
    picprk::par::ExchangeBuffers buffers;
    const std::uint32_t warmup = 10, steady = 30;
    for (std::uint32_t s = 0; s < warmup; ++s) {
      picprk::pic::move_all(std::span<Particle>(mine), grid, charges, params.dt);
      exchange_particles(comm, decomp, mine, buffers);
    }
    const std::uint64_t after_warmup = buffers.allocations();
    std::uint64_t traffic = 0;
    for (std::uint32_t s = 0; s < steady; ++s) {
      picprk::pic::move_all(std::span<Particle>(mine), grid, charges, params.dt);
      traffic += exchange_particles(comm, decomp, mine, buffers).sent;
    }
    EXPECT_GT(traffic, 0u) << "test must actually exercise the send path";
    EXPECT_EQ(buffers.allocations(), after_warmup)
        << "steady-state exchange must reuse the workspace";
  });
}

TEST(Exchange, WorkspaceAndThrowawayOverloadsAgree) {
  // Same traffic through a reused workspace and through the throwaway
  // convenience overload: identical particle sets, identical order
  // (keepers first in original order, then immigrants by source rank).
  World world(4);
  world.run([](Comm& comm) {
    GridSpec grid(16, 1.0);
    Cart2D cart(comm.size());
    Decomposition2D decomp(grid, cart);
    const auto block = decomp.block_of(comm.rank());

    InitParams params;
    params.grid = grid;
    params.total_particles = 1200;
    params.distribution = picprk::pic::Geometric{0.95};
    const Initializer init(params);
    auto with_workspace = init.create_block(block.x0, block.x1, block.y0, block.y1);
    auto throwaway = with_workspace;
    for (auto& particle : with_workspace)
      particle.x = picprk::pic::wrap(particle.x + 3.0, grid.length());
    for (auto& particle : throwaway)
      particle.x = picprk::pic::wrap(particle.x + 3.0, grid.length());

    picprk::par::ExchangeBuffers buffers;
    const auto a = exchange_particles(comm, decomp, with_workspace, buffers);
    const auto b = exchange_particles(comm, decomp, throwaway);

    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.received, b.received);
    ASSERT_EQ(with_workspace.size(), throwaway.size());
    for (std::size_t i = 0; i < with_workspace.size(); ++i) {
      EXPECT_EQ(with_workspace[i].id, throwaway[i].id);
      EXPECT_EQ(with_workspace[i].x, throwaway[i].x);
      EXPECT_EQ(with_workspace[i].y, throwaway[i].y);
    }
  });
}

TEST(Exchange, ByteAccountingMatchesTraffic) {
  World world(2);
  world.run([](Comm& comm) {
    GridSpec grid(8, 1.0);
    Cart2D cart(2, 1);
    Decomposition2D decomp(grid, cart);

    std::vector<Particle> mine;
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        Particle p;
        p.x = 6.5;  // belongs to rank 1
        p.y = 0.5;
        p.id = static_cast<std::uint64_t>(i + 1);
        mine.push_back(p);
      }
    }
    const auto stats = exchange_particles(comm, decomp, mine);
    if (comm.rank() == 0) {
      EXPECT_EQ(stats.sent, 10u);
      EXPECT_EQ(stats.bytes, 10u * sizeof(Particle));
    } else {
      EXPECT_EQ(stats.received, 10u);
    }
  });
}

}  // namespace
