// The §IV-B alternative (8-neighbor, non-rectangular) scheme: must be
// correct (verification), must balance, and must exhibit the drawback
// the paper cites — growing subdomain perimeter (fragmentation) compared
// to the rectangular two-phase scheme.
#include <gtest/gtest.h>

#include "comm/world.hpp"
#include "par/baseline.hpp"
#include "par/diffusion.hpp"
#include "par/irregular.hpp"

namespace {

using picprk::comm::Cart2D;
using picprk::comm::Comm;
using picprk::comm::World;
using picprk::par::CellOwnerMap;
using picprk::par::DriverConfig;
using picprk::par::IrregularParams;
using picprk::par::irregular_lb_pass;
using picprk::par::run_irregular;
using picprk::pic::Geometric;
using picprk::pic::GridSpec;

TEST(CellOwnerMapTest, InitialRectangularOwnership) {
  GridSpec grid(12, 1.0);
  Cart2D cart(2, 2);
  CellOwnerMap map(grid, cart);
  EXPECT_EQ(map.owner(0, 0), 0);
  EXPECT_EQ(map.owner(11, 0), 1);
  EXPECT_EQ(map.owner(0, 11), 2);
  EXPECT_EQ(map.owner(11, 11), 3);
  EXPECT_EQ(map.count_owned(0), 36);
  // 2×2 blocks of 6×6 on a 12² torus: 4 boundary lines each way, 12
  // cells long: perimeter = 4 · 12 = 48.
  EXPECT_EQ(map.total_perimeter(), 48);
}

TEST(CellOwnerMapTest, PeriodicIndexing) {
  GridSpec grid(8, 1.0);
  Cart2D cart(2, 1);
  CellOwnerMap map(grid, cart);
  EXPECT_EQ(map.owner(-1, 0), map.owner(7, 0));
  EXPECT_EQ(map.owner(8, 3), map.owner(0, 3));
}

TEST(CellOwnerMapTest, BorderCellsDetectsEdges) {
  GridSpec grid(8, 1.0);
  Cart2D cart(2, 1);
  CellOwnerMap map(grid, cart);
  const auto border = map.border_cells(0);
  // Rank 0 owns columns 0..3; with periodic wrap, columns 0 and 3 are
  // borders: 2 columns × 8 rows.
  EXPECT_EQ(border.size(), 16u);
}

TEST(IrregularLbPass, MovesCellsFromLoadedToLight) {
  GridSpec grid(12, 1.0);
  Cart2D cart(2, 1);
  CellOwnerMap map(grid, cart);
  IrregularParams params;
  params.threshold = 0.05;
  params.quota = 100;
  const std::int64_t before = map.count_owned(0);
  const auto moved = irregular_lb_pass(map, {1000.0, 10.0}, params);
  EXPECT_GT(moved, 0);
  EXPECT_LT(map.count_owned(0), before);
  EXPECT_EQ(map.count_owned(0) + map.count_owned(1), 144);
}

TEST(IrregularLbPass, BalancedLoadsUntouched) {
  GridSpec grid(12, 1.0);
  Cart2D cart(2, 2);
  CellOwnerMap map(grid, cart);
  IrregularParams params;
  EXPECT_EQ(irregular_lb_pass(map, {100, 100, 100, 100}, params), 0);
  EXPECT_EQ(map.total_perimeter(), 48);
}

TEST(IrregularLbPass, Deterministic) {
  GridSpec grid(12, 1.0);
  Cart2D cart(2, 2);
  CellOwnerMap a(grid, cart), b(grid, cart);
  IrregularParams params;
  irregular_lb_pass(a, {500, 100, 100, 100}, params);
  irregular_lb_pass(b, {500, 100, 100, 100}, params);
  for (std::int64_t cy = 0; cy < 12; ++cy) {
    for (std::int64_t cx = 0; cx < 12; ++cx) {
      EXPECT_EQ(a.owner(cx, cy), b.owner(cx, cy));
    }
  }
}

class IrregularRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(RankCounts, IrregularRanks, ::testing::Values(2, 4, 6),
                         [](const auto& info) { return "p" + std::to_string(info.param); });

TEST_P(IrregularRanks, SkewedWorkloadVerifies) {
  World world(GetParam());
  world.run([](Comm& comm) {
    DriverConfig cfg;
    cfg.init.grid = GridSpec(24, 1.0);
    cfg.init.total_particles = 1500;
    cfg.init.distribution = Geometric{0.85};
    cfg.steps = 40;
    IrregularParams params;
    params.frequency = 4;
    params.threshold = 0.05;
    params.quota = 6;
    const auto r = run_irregular(comm, cfg, params);
    EXPECT_TRUE(r.driver.ok) << "failures=" << r.driver.verification.position_failures;
  });
}

TEST(Irregular, ImprovesBalanceButFragments) {
  // The paper's trade-off in one test: the 8-neighbor scheme balances
  // (like the rectangular diffusion) but its subdomain perimeter grows,
  // while the rectangular scheme's stays at the rectangular value.
  World world(4);
  world.run([](Comm& comm) {
    DriverConfig cfg;
    cfg.init.grid = GridSpec(32, 1.0);
    cfg.init.total_particles = 4000;
    cfg.init.distribution = Geometric{0.8};
    cfg.steps = 60;
    cfg.sample_every = 5;

    const auto base = picprk::par::run_baseline(comm, cfg);

    IrregularParams params;
    params.frequency = 4;
    params.threshold = 0.05;
    params.quota = 8;
    const auto irr = run_irregular(comm, cfg, params);

    ASSERT_TRUE(base.ok);
    ASSERT_TRUE(irr.driver.ok);

    auto mean = [](const std::vector<double>& v) {
      double s = 0;
      for (double x : v) s += x;
      return s / static_cast<double>(v.size());
    };
    // It balances…
    EXPECT_LT(mean(irr.driver.imbalance_series), mean(base.imbalance_series));
    // …but fragments: the perimeter grows beyond the rectangular value.
    EXPECT_GT(irr.final_perimeter, irr.initial_perimeter);
  });
}

TEST(Irregular, EventsVerify) {
  World world(4);
  world.run([](Comm& comm) {
    DriverConfig cfg;
    cfg.init.grid = GridSpec(20, 1.0);
    cfg.init.total_particles = 800;
    cfg.steps = 30;
    cfg.events = picprk::pic::EventSchedule(
        {picprk::pic::InjectionEvent{10, picprk::pic::CellRegion{0, 10, 0, 10}, 300}},
        {picprk::pic::RemovalEvent{20, picprk::pic::CellRegion{10, 20, 0, 20}, 0.5}});
    IrregularParams params;
    params.frequency = 6;
    EXPECT_TRUE(run_irregular(comm, cfg, params).driver.ok);
  });
}

}  // namespace
