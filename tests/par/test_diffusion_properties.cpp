// Property tests for the boundary decision functions: randomized loads,
// widths and thresholds must always yield valid boundaries, and repeated
// application on a static workload must monotonically approach balance.
#include <gtest/gtest.h>

#include "lb/bounds.hpp"
#include "util/rng.hpp"

namespace {

using picprk::lb::diffuse_bounds;
using picprk::lb::rcb_bounds;
using picprk::util::SplitMix64;

std::vector<std::int64_t> balanced_bounds(std::int64_t cells, int parts) {
  std::vector<std::int64_t> b(static_cast<std::size_t>(parts) + 1);
  for (int i = 0; i <= parts; ++i) b[static_cast<std::size_t>(i)] = i * cells / parts;
  return b;
}

/// Loads implied by boundaries over a per-column weight vector (whole
/// particles, as the drivers count them).
std::vector<double> loads_for(const std::vector<std::int64_t>& bounds,
                              const std::vector<double>& column_weight) {
  std::vector<double> loads(bounds.size() - 1, 0);
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    double sum = 0;
    for (std::int64_t c = bounds[i]; c < bounds[i + 1]; ++c) {
      sum += column_weight[static_cast<std::size_t>(c)];
    }
    loads[i] = static_cast<double>(static_cast<std::uint64_t>(sum));
  }
  return loads;
}

TEST(DiffusePropertyTest, RandomInputsAlwaysYieldValidBounds) {
  SplitMix64 rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    const int parts = 2 + static_cast<int>(rng.next_below(10));
    const std::int64_t cells = parts + static_cast<std::int64_t>(rng.next_below(200));
    auto bounds = balanced_bounds(cells, parts);
    // Random perturbation of the interior boundaries (still valid).
    for (int i = 1; i < parts; ++i) {
      const std::int64_t lo = bounds[static_cast<std::size_t>(i - 1)] + 1;
      const std::int64_t hi = bounds[static_cast<std::size_t>(i + 1)] - 1;
      if (hi > lo) {
        bounds[static_cast<std::size_t>(i)] =
            lo + static_cast<std::int64_t>(rng.next_below(
                     static_cast<std::uint64_t>(hi - lo)));
      }
    }
    std::sort(bounds.begin(), bounds.end());
    std::vector<double> loads(static_cast<std::size_t>(parts));
    for (auto& l : loads) l = static_cast<double>(rng.next_below(100000));
    const double threshold = static_cast<double>(rng.next_below(5000));
    const auto width = static_cast<std::int64_t>(1 + rng.next_below(8));

    const auto out = diffuse_bounds(bounds, loads, threshold, width);
    ASSERT_EQ(out.size(), bounds.size());
    EXPECT_EQ(out.front(), 0);
    EXPECT_EQ(out.back(), cells);
    for (std::size_t i = 1; i < out.size(); ++i) {
      EXPECT_GT(out[i], out[i - 1]) << "trial " << trial;
      // No boundary ever moves more than `width`.
      EXPECT_LE(std::llabs(out[i] - bounds[i]), width);
      // A left move never jumps past the old previous boundary (the
      // sender's slab constraint).
      EXPECT_GT(out[i], bounds[i - 1]);
    }
  }
}

TEST(DiffusePropertyTest, RepeatedApplicationApproachesBalance) {
  // Static exponential column weights; iterate the decision function
  // with the implied loads. The max part load must not increase and
  // must end well below its starting value.
  const std::int64_t cells = 120;
  const int parts = 6;
  std::vector<double> weight(static_cast<std::size_t>(cells));
  double w = 1000.0;
  for (auto& v : weight) {
    v = w;
    w *= 0.94;
  }
  auto bounds = balanced_bounds(cells, parts);
  auto loads = loads_for(bounds, weight);
  const double start_max = *std::max_element(loads.begin(), loads.end());
  double total = 0;
  for (double l : loads) total += l;
  const double tau = 0.02 * total / parts;

  // One border-column move changes a part's load by at most the largest
  // column weight, so that is the legal oscillation amplitude.
  const double max_column = *std::max_element(weight.begin(), weight.end());
  double prev_max = start_max;
  for (int iteration = 0; iteration < 60; ++iteration) {
    bounds = diffuse_bounds(bounds, loads, tau, 1);
    loads = loads_for(bounds, weight);
    const double now_max = *std::max_element(loads.begin(), loads.end());
    EXPECT_LE(now_max, prev_max + max_column + 1.0) << "iteration " << iteration;
    prev_max = now_max;
  }
  EXPECT_LT(prev_max, 0.55 * start_max);
}

TEST(DiffusePropertyTest, BalancedLoadsAreFixedPoint) {
  const auto bounds = balanced_bounds(100, 5);
  const std::vector<double> loads(5, 1000.0);
  EXPECT_EQ(diffuse_bounds(bounds, loads, 10.0, 3), bounds);
}

TEST(DiffusePropertyTest, ThresholdGatesAction) {
  const auto bounds = balanced_bounds(100, 2);
  // Difference of 100 with threshold 150: no action.
  EXPECT_EQ(diffuse_bounds(bounds, {600.0, 500.0}, 150.0, 2), bounds);
  // Threshold 50: action.
  EXPECT_NE(diffuse_bounds(bounds, {600.0, 500.0}, 50.0, 2), bounds);
}

// ------------------------------------------------------------- rcb

TEST(RcbPropertyTest, RandomInputsAlwaysYieldValidBounds) {
  SplitMix64 rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const int parts = 2 + static_cast<int>(rng.next_below(10));
    const std::int64_t cells = parts + static_cast<std::int64_t>(rng.next_below(200));
    const auto bounds = balanced_bounds(cells, parts);
    std::vector<double> loads(static_cast<std::size_t>(parts));
    for (auto& l : loads) l = static_cast<double>(rng.next_below(100000));
    const auto out = rcb_bounds(bounds, loads);
    ASSERT_EQ(out.size(), bounds.size());
    EXPECT_EQ(out.front(), 0);
    EXPECT_EQ(out.back(), cells);
    // Every part keeps at least one cell.
    for (std::size_t i = 1; i < out.size(); ++i) {
      EXPECT_GT(out[i], out[i - 1]) << "trial " << trial;
    }
  }
}

TEST(RcbPropertyTest, OneShotBeatsSkewedStart) {
  // The §IV-B setup: exponential column weights, one RCB invocation must
  // land near balance where diffusion needs many rounds.
  const std::int64_t cells = 120;
  const int parts = 6;
  std::vector<double> weight(static_cast<std::size_t>(cells));
  double w = 1000.0;
  for (auto& v : weight) {
    v = w;
    w *= 0.94;
  }
  auto bounds = balanced_bounds(cells, parts);
  auto loads = loads_for(bounds, weight);
  const double start_max = *std::max_element(loads.begin(), loads.end());
  bounds = rcb_bounds(bounds, loads);
  loads = loads_for(bounds, weight);
  const double after_max = *std::max_element(loads.begin(), loads.end());
  EXPECT_LT(after_max, 0.55 * start_max);
}

TEST(RcbPropertyTest, UniformLoadsKeepEqualWidths) {
  const auto bounds = balanced_bounds(100, 4);
  const std::vector<double> loads(4, 500.0);
  const auto out = rcb_bounds(bounds, loads);
  EXPECT_EQ(out, bounds);
}

}  // namespace
