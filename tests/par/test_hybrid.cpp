// Hybrid (threadcomm ranks × OpenMP threads) configuration tests.
#include <gtest/gtest.h>

#include "comm/world.hpp"
#include "par/baseline.hpp"
#include "pic/mover.hpp"

namespace {

using picprk::comm::Comm;
using picprk::comm::World;
using picprk::par::DriverConfig;
using picprk::pic::AlternatingColumnCharges;
using picprk::pic::GridSpec;
using picprk::pic::InitParams;
using picprk::pic::Initializer;
using picprk::pic::Particle;

TEST(HybridMover, OmpLoopMatchesSerialLoop) {
  GridSpec grid(24, 1.0);
  InitParams params;
  params.grid = grid;
  params.total_particles = 2000;
  params.distribution = picprk::pic::Geometric{0.9};
  params.k = 1;
  params.m = -1;
  const Initializer init(params);
  auto serial = init.create_all();
  auto omp = serial;
  const AlternatingColumnCharges charges;
  for (int step = 0; step < 10; ++step) {
    picprk::pic::move_all(std::span<Particle>(serial), grid, charges, 1.0);
    picprk::pic::move_all_omp(std::span<Particle>(omp), grid, charges, 1.0);
  }
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(omp[i].x, serial[i].x) << i;
    EXPECT_DOUBLE_EQ(omp[i].y, serial[i].y) << i;
    EXPECT_DOUBLE_EQ(omp[i].vx, serial[i].vx) << i;
  }
}

TEST(HybridDriver, RanksTimesThreadsVerifies) {
  DriverConfig cfg;
  cfg.init.grid = GridSpec(24, 1.0);
  cfg.init.total_particles = 1200;
  cfg.init.distribution = picprk::pic::Geometric{0.85};
  cfg.steps = 30;
  cfg.omp_mover = true;
  World world(2);  // 2 ranks, each with its own OpenMP team
  world.run([&](Comm& comm) {
    const auto r = picprk::par::run_baseline(comm, cfg);
    EXPECT_TRUE(r.ok);
  });
}

TEST(HybridDriver, SameChecksumAsPlainDriver) {
  DriverConfig cfg;
  cfg.init.grid = GridSpec(20, 1.0);
  cfg.init.total_particles = 800;
  cfg.steps = 20;

  std::uint64_t plain_checksum = 0, hybrid_checksum = 0;
  World world(2);
  world.run([&](Comm& comm) {
    const auto plain = picprk::par::run_baseline(comm, cfg);
    DriverConfig hybrid_cfg = cfg;
    hybrid_cfg.omp_mover = true;
    const auto hybrid = picprk::par::run_baseline(comm, hybrid_cfg);
    if (comm.rank() == 0) {
      plain_checksum = plain.verification.id_checksum;
      hybrid_checksum = hybrid.verification.id_checksum;
    }
    EXPECT_TRUE(plain.ok);
    EXPECT_TRUE(hybrid.ok);
  });
  EXPECT_EQ(plain_checksum, hybrid_checksum);
}

}  // namespace
