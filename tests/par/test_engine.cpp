// The Engine facade: make_engine must cover every driver behind one
// interface, and RunReport must render the one RESULT grammar every
// entry point shares. These tests pin the key set per impl so a drive-by
// change to the line format breaks here, not in a CI grep.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "ft/fault.hpp"
#include "par/engine.hpp"
#include "pic/init.hpp"

namespace {

using picprk::par::Engine;
using picprk::par::RunConfig;
using picprk::par::RunReport;
using picprk::par::engine_names;
using picprk::par::make_engine;

RunConfig small_config(const std::string& impl) {
  RunConfig cfg;
  cfg.impl = impl;
  cfg.init.grid = picprk::pic::GridSpec(24, 1.0);
  cfg.init.total_particles = 600;
  cfg.init.distribution = picprk::pic::Geometric{0.9};
  cfg.steps = 12;
  cfg.ranks = 2;
  cfg.workers = 2;
  cfg.overdecomposition = 2;
  cfg.lb.every = 4;
  if (impl == "async") cfg.lb.strategy = "steal";
  return cfg;
}

bool has_key(const std::string& line, const std::string& key) {
  return line.find(' ' + key + '=') != std::string::npos;
}

TEST(Engine, NamesCoverEveryDriver) {
  const auto& names = engine_names();
  for (const char* expected :
       {"serial", "baseline", "diffusion", "ampi", "async"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(Engine, UnknownImplThrows) {
  EXPECT_THROW(make_engine(small_config("model")), std::invalid_argument);
  EXPECT_THROW(make_engine(small_config("")), std::invalid_argument);
}

TEST(Engine, InvalidResilienceKnobsThrowAtConstruction) {
  RunConfig cfg = small_config("baseline");
  cfg.resilience.reliable = true;
  cfg.resilience.rto_ms = 0;
  EXPECT_THROW(make_engine(cfg), std::invalid_argument);
}

class EveryEngine : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(Impls, EveryEngine,
                         ::testing::ValuesIn(engine_names()),
                         [](const auto& info) { return info.param; });

TEST_P(EveryEngine, RunsAndReportsPass) {
  const std::string impl = GetParam();
  const auto engine = make_engine(small_config(impl));
  EXPECT_EQ(engine->name(), impl);
  const RunReport report = engine->run();
  EXPECT_TRUE(report.result.ok);
  EXPECT_EQ(report.exit_code(), 0);
  EXPECT_FALSE(report.ft_telemetry);

  const std::string line = report.result_line();
  EXPECT_EQ(line.rfind("RESULT impl=" + impl + " ", 0), 0u) << line;
  EXPECT_TRUE(has_key(line, "status")) << line;
  EXPECT_TRUE(has_key(line, "particles")) << line;
  EXPECT_TRUE(has_key(line, "seconds")) << line;
  // The checksum tail belongs to the parallel drivers only.
  EXPECT_EQ(has_key(line, "checksum"), impl != "serial") << line;
  EXPECT_FALSE(has_key(line, "rollbacks")) << line;

  const std::string banner = report.human_summary();
  EXPECT_EQ(banner.rfind(impl + ": VERIFIED", 0), 0u) << banner;
}

TEST(Engine, ResilientRunCarriesFtTelemetry) {
  RunConfig cfg = small_config("baseline");
  cfg.resilience.plan = picprk::ft::FaultPlan::parse("kill:rank=1,step=6", 1);
  cfg.resilience.checkpoint_every = 4;
  cfg.resilience.timeout_ms = 10000;
  const RunReport report = make_engine(cfg)->run();
  EXPECT_TRUE(report.result.ok);
  EXPECT_TRUE(report.ft_telemetry);
  EXPECT_GE(report.ft.recoveries, 1u);
  const std::string line = report.result_line();
  EXPECT_TRUE(has_key(line, "rollbacks")) << line;
  EXPECT_TRUE(has_key(line, "retransmits")) << line;
  EXPECT_TRUE(has_key(line, "dup_dropped")) << line;
}

}  // namespace
