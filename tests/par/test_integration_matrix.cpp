// The full integration matrix: every parallel implementation (baseline /
// diffusion / two-phase diffusion / ampi / work-stealing) × every §III-E
// distribution × static-or-dynamic population must verify against the
// closed form AND agree with the serial reference on the global particle
// count and id checksum. This is the repository's strongest end-to-end
// statement: five independently-implemented runtimes producing the same
// verified physics.
#include <gtest/gtest.h>

#include <tuple>

#include "comm/world.hpp"
#include "par/ampi.hpp"
#include "par/baseline.hpp"
#include "par/diffusion.hpp"
#include "pic/simulation.hpp"
#include "ws/binned.hpp"

namespace {

using picprk::comm::Comm;
using picprk::comm::World;
using picprk::par::DriverConfig;
using picprk::par::DriverResult;
using picprk::par::RunConfig;
using picprk::pic::CellRegion;
using picprk::pic::EventSchedule;
using picprk::pic::InjectionEvent;
using picprk::pic::RemovalEvent;

constexpr std::int64_t kCells = 24;
constexpr std::uint64_t kParticles = 900;
constexpr std::uint32_t kSteps = 32;

picprk::pic::Distribution matrix_distribution(int kind) {
  switch (kind) {
    case 0: return picprk::pic::Uniform{};
    case 1: return picprk::pic::Geometric{0.85};
    case 2: return picprk::pic::Sinusoidal{};
    case 3: return picprk::pic::Linear{1.0, 1.2};
    default: return picprk::pic::Patch{CellRegion{2, 14, 6, 20}};
  }
}

const char* matrix_tag(int kind) {
  switch (kind) {
    case 0: return "uniform";
    case 1: return "geometric";
    case 2: return "sinusoidal";
    case 3: return "linear";
    default: return "patch";
  }
}

RunConfig matrix_config(int kind, bool events) {
  RunConfig cfg;
  cfg.init.grid = picprk::pic::GridSpec(kCells, 1.0);
  cfg.init.total_particles = kParticles;
  cfg.init.distribution = matrix_distribution(kind);
  cfg.init.k = 1;
  cfg.init.m = -1;
  cfg.steps = kSteps;
  if (events) {
    cfg.events = EventSchedule(
        {InjectionEvent{kSteps / 3, CellRegion{0, kCells / 2, 0, kCells}, 300}},
        {RemovalEvent{2 * kSteps / 3, CellRegion{0, kCells, kCells / 2, kCells}, 0.4}});
  }
  return cfg;
}

struct Reference {
  std::uint64_t particles;
  std::uint64_t checksum;
};

Reference serial_reference(const DriverConfig& cfg) {
  picprk::pic::SimulationConfig scfg;
  scfg.init = cfg.init;
  scfg.steps = cfg.steps;
  scfg.events = cfg.events;
  const auto r = picprk::pic::run_serial(scfg);
  EXPECT_TRUE(r.ok());
  return Reference{r.final_particles, r.verification.id_checksum};
}

// (distribution kind, events on/off)
class Matrix : public ::testing::TestWithParam<std::tuple<int, bool>> {};

INSTANTIATE_TEST_SUITE_P(DistributionsAndEvents, Matrix,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Bool()),
                         [](const auto& info) {
                           const int kind = std::get<0>(info.param);
                           const bool events = std::get<1>(info.param);
                           return std::string(matrix_tag(kind)) +
                                  (events ? "_events" : "_static");
                         });

TEST_P(Matrix, BaselineMatchesSerial) {
  const auto [kind, events] = GetParam();
  const auto cfg = matrix_config(kind, events);
  const auto ref = serial_reference(cfg);
  World world(4);
  world.run([&](Comm& comm) {
    const DriverResult r = picprk::par::run_baseline(comm, cfg);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.final_particles, ref.particles);
    EXPECT_EQ(r.verification.id_checksum, ref.checksum);
  });
}

TEST_P(Matrix, DiffusionMatchesSerial) {
  const auto [kind, events] = GetParam();
  const auto cfg = matrix_config(kind, events);
  const auto ref = serial_reference(cfg);
  World world(4);
  world.run([&](Comm& comm) {
    RunConfig dcfg = cfg;
    dcfg.lb.strategy = "diffusion:threshold=0.05,border=2";
    dcfg.lb.every = 4;
    const DriverResult r = picprk::par::run_diffusion(comm, dcfg);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.final_particles, ref.particles);
    EXPECT_EQ(r.verification.id_checksum, ref.checksum);
  });
}

TEST_P(Matrix, TwoPhaseDiffusionMatchesSerial) {
  const auto [kind, events] = GetParam();
  const auto cfg = matrix_config(kind, events);
  const auto ref = serial_reference(cfg);
  World world(4);
  world.run([&](Comm& comm) {
    RunConfig dcfg = cfg;
    dcfg.lb.strategy = "diffusion:threshold=0.05,border=1,two_phase=1";
    dcfg.lb.every = 6;
    const DriverResult r = picprk::par::run_diffusion(comm, dcfg);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.final_particles, ref.particles);
    EXPECT_EQ(r.verification.id_checksum, ref.checksum);
  });
}

TEST_P(Matrix, RcbMatchesSerial) {
  const auto [kind, events] = GetParam();
  const auto cfg = matrix_config(kind, events);
  const auto ref = serial_reference(cfg);
  World world(4);
  world.run([&](Comm& comm) {
    RunConfig dcfg = cfg;
    dcfg.lb.strategy = "rcb:two_phase=1";
    dcfg.lb.every = 6;
    const DriverResult r = picprk::par::run_diffusion(comm, dcfg);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.final_particles, ref.particles);
    EXPECT_EQ(r.verification.id_checksum, ref.checksum);
  });
}

TEST_P(Matrix, AdaptiveMatchesSerial) {
  const auto [kind, events] = GetParam();
  const auto cfg = matrix_config(kind, events);
  const auto ref = serial_reference(cfg);
  World world(4);
  world.run([&](Comm& comm) {
    RunConfig dcfg = cfg;
    dcfg.lb.strategy = "adaptive";
    dcfg.lb.every = 6;
    const DriverResult r = picprk::par::run_diffusion(comm, dcfg);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.final_particles, ref.particles);
    EXPECT_EQ(r.verification.id_checksum, ref.checksum);
  });
}

TEST_P(Matrix, AmpiMatchesSerial) {
  const auto [kind, events] = GetParam();
  const auto cfg = matrix_config(kind, events);
  const auto ref = serial_reference(cfg);
  RunConfig acfg = cfg;
  acfg.workers = 2;
  acfg.overdecomposition = 4;
  acfg.lb.every = 5;
  const DriverResult r = picprk::par::run_ampi(acfg);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.final_particles, ref.particles);
  EXPECT_EQ(r.verification.id_checksum, ref.checksum);
}

TEST_P(Matrix, WorkStealingMatchesSerial) {
  const auto [kind, events] = GetParam();
  const auto cfg = matrix_config(kind, events);
  const auto ref = serial_reference(cfg);
  picprk::pic::SimulationConfig scfg;
  scfg.init = cfg.init;
  scfg.steps = cfg.steps;
  scfg.events = cfg.events;
  picprk::ws::WsParams params;
  params.workers = 2;
  params.rows_per_task = 3;
  const auto r = picprk::ws::run_worksteal(scfg, params);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.final_particles, ref.particles);
  EXPECT_EQ(r.verification.id_checksum, ref.checksum);
}

}  // namespace
