// Nonblocking progress under message faults: the async engine's drain
// loop never blocks in a recv, so every retransmit/dedup/late-delivery
// path of the transport stack is exercised through try_recv polling
// plus the termination token. Delay faults must be absorbed outright;
// drop and duplicate faults must heal through the reliable transport
// (whose pump thread retransmits independently of the engine); a total
// blackout without the transport must surface as a CommTimeout instead
// of a hang.
#include <gtest/gtest.h>

#include <stdexcept>

#include "comm/comm.hpp"
#include "ft/fault.hpp"
#include "par/async.hpp"
#include "pic/simulation.hpp"

namespace {

using picprk::comm::CommTimeout;
using picprk::ft::FaultPlan;
using picprk::par::DriverResult;
using picprk::par::RunConfig;
using picprk::par::run_async;

RunConfig faulted_config() {
  RunConfig cfg;
  cfg.init.grid = picprk::pic::GridSpec(24, 1.0);
  cfg.init.total_particles = 900;
  cfg.init.distribution = picprk::pic::Geometric{0.85};
  cfg.init.k = 1;
  cfg.init.m = -1;
  cfg.steps = 24;
  cfg.ranks = 4;
  cfg.overdecomposition = 4;
  cfg.lb.strategy = "steal";
  cfg.lb.every = 4;
  return cfg;
}

std::uint64_t serial_checksum(const RunConfig& cfg) {
  picprk::pic::SimulationConfig scfg;
  scfg.init = cfg.init;
  scfg.steps = cfg.steps;
  scfg.events = cfg.events;
  const auto r = picprk::pic::run_serial(scfg);
  EXPECT_TRUE(r.ok());
  return r.verification.id_checksum;
}

// Delay is the one message fault that needs no transport to heal: the
// payload arrives late but intact, which stresses exactly the paths the
// sync drivers never see — deliveries landing in the drain phase, or
// stamped for the *next* step while the receiver still finishes this
// one (parked in the StepInbox).
TEST(AsyncFt, DelayedMessagesVerifyWithoutTransport) {
  RunConfig cfg = faulted_config();
  cfg.resilience.plan = FaultPlan::parse("delay:prob=0.5,ms=2", /*seed=*/71);
  cfg.resilience.timeout_ms = 20000;
  const std::uint64_t ref = serial_checksum(cfg);
  const DriverResult r = run_async(cfg);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.verification.id_checksum, ref);
}

// Dropped payloads (and dropped termination tokens) heal via seq/ack
// retransmission; the four counters must not double-count the replays.
TEST(AsyncFt, DroppedMessagesHealThroughReliableTransport) {
  RunConfig cfg = faulted_config();
  cfg.resilience.plan = FaultPlan::parse("drop:prob=0.2", /*seed=*/13);
  cfg.resilience.reliable = true;
  cfg.resilience.rto_ms = 5;
  cfg.resilience.timeout_ms = 20000;
  const std::uint64_t ref = serial_checksum(cfg);
  const DriverResult r = run_async(cfg);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.verification.id_checksum, ref);
}

// Duplicates must be absorbed by the receiver's dedup window — an
// uncaught copy would bump `received` past `sent` and break (or worse,
// satisfy early) the termination balance, and deliver particles twice.
TEST(AsyncFt, DuplicatedMessagesDedupThroughReliableTransport) {
  RunConfig cfg = faulted_config();
  cfg.resilience.plan = FaultPlan::parse("dup:prob=0.3", /*seed=*/29);
  cfg.resilience.reliable = true;
  cfg.resilience.rto_ms = 5;
  cfg.resilience.timeout_ms = 20000;
  const std::uint64_t ref = serial_checksum(cfg);
  const DriverResult r = run_async(cfg);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.verification.id_checksum, ref);
}

// The full message-chaos schedule at once, all healed in-band.
TEST(AsyncFt, MixedFaultScheduleVerifies) {
  RunConfig cfg = faulted_config();
  cfg.resilience.plan = FaultPlan::parse(
      "drop:prob=0.1;dup:prob=0.1;delay:prob=0.2,ms=1", /*seed=*/4242);
  cfg.resilience.reliable = true;
  cfg.resilience.rto_ms = 5;
  cfg.resilience.timeout_ms = 30000;
  const std::uint64_t ref = serial_checksum(cfg);
  const DriverResult r = run_async(cfg);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.verification.id_checksum, ref);
}

// A total blackout with no transport can never terminate a step — the
// drain loop must convert "no progress within timeout_ms" into the
// typed CommTimeout rather than spinning forever.
TEST(AsyncFt, TotalDropWithoutTransportTimesOut) {
  RunConfig cfg = faulted_config();
  cfg.lb.every = 0;  // LB collectives would block before the drain does
  cfg.resilience.plan = FaultPlan::parse("drop:prob=1.0", /*seed=*/3);
  cfg.resilience.timeout_ms = 300;
  EXPECT_THROW(run_async(cfg), CommTimeout);
}

// Kill/stall faults and checkpointing belong to the sync drivers'
// recovery ladder; the standalone wrapper rejects them loudly instead
// of silently ignoring the plan.
TEST(AsyncFt, KillAndStallAndCheckpointingAreRejected) {
  RunConfig kill = faulted_config();
  kill.resilience.plan = FaultPlan::parse("kill:rank=1,step=4", 1);
  EXPECT_THROW(run_async(kill), std::invalid_argument);

  RunConfig stall = faulted_config();
  stall.resilience.plan = FaultPlan::parse("stall:rank=1,step=4,ms=10", 1);
  EXPECT_THROW(run_async(stall), std::invalid_argument);

  RunConfig ckpt = faulted_config();
  ckpt.resilience.checkpoint_every = 8;
  EXPECT_THROW(run_async(ckpt), std::invalid_argument);
}

}  // namespace
