#include <gtest/gtest.h>

#include "par/decomposition.hpp"

namespace {

using picprk::comm::Cart2D;
using picprk::par::Decomposition2D;
using picprk::pic::GridSpec;

TEST(Decomposition, BalancedInitialBlocks) {
  GridSpec grid(12, 1.0);
  Cart2D cart(3, 2);
  Decomposition2D d(grid, cart);
  EXPECT_EQ(d.x_bounds(), (std::vector<std::int64_t>{0, 4, 8, 12}));
  EXPECT_EQ(d.y_bounds(), (std::vector<std::int64_t>{0, 6, 12}));
}

TEST(Decomposition, BlocksTileTheGrid) {
  GridSpec grid(10, 1.0);
  Cart2D cart(3, 3);
  Decomposition2D d(grid, cart);
  std::int64_t total = 0;
  for (int r = 0; r < cart.size(); ++r) total += d.block_of(r).area();
  EXPECT_EQ(total, 100);
}

TEST(Decomposition, OwnerLookupMatchesBlocks) {
  GridSpec grid(14, 1.0);
  Cart2D cart(4, 2);
  Decomposition2D d(grid, cart);
  for (std::int64_t cx = 0; cx < 14; ++cx) {
    for (std::int64_t cy = 0; cy < 14; ++cy) {
      const int owner = d.owner_of_cell(cx, cy);
      EXPECT_TRUE(d.block_of(owner).contains_cell(cx, cy))
          << "cell (" << cx << "," << cy << ")";
    }
  }
}

TEST(Decomposition, OwnerOfPosition) {
  GridSpec grid(8, 1.0);
  Cart2D cart(2, 2);
  Decomposition2D d(grid, cart);
  EXPECT_EQ(d.owner_of_position(0.5, 0.5), d.owner_of_cell(0, 0));
  EXPECT_EQ(d.owner_of_position(7.5, 7.5), d.owner_of_cell(7, 7));
  EXPECT_EQ(d.owner_of_position(4.0, 0.0), d.owner_of_cell(4, 0));
}

TEST(Decomposition, MovedBoundsChangeOwnership) {
  GridSpec grid(12, 1.0);
  Cart2D cart(3, 1);
  Decomposition2D d(grid, cart);
  EXPECT_EQ(d.owner_of_cell(4, 0), 1);
  d.set_x_bounds({0, 6, 8, 12});
  EXPECT_EQ(d.owner_of_cell(4, 0), 0);
  EXPECT_EQ(d.owner_of_cell(7, 0), 1);
  EXPECT_EQ(d.owner_of_cell(8, 0), 2);
  EXPECT_EQ(d.block_of(0).width(), 6);
}

TEST(Decomposition, InvalidBoundsRejected) {
  GridSpec grid(12, 1.0);
  Cart2D cart(3, 1);
  Decomposition2D d(grid, cart);
  EXPECT_THROW(d.set_x_bounds({0, 6, 6, 12}), picprk::ContractViolation);   // not increasing
  EXPECT_THROW(d.set_x_bounds({0, 4, 8, 11}), picprk::ContractViolation);   // wrong end
  EXPECT_THROW(d.set_x_bounds({1, 4, 8, 12}), picprk::ContractViolation);   // wrong start
  EXPECT_THROW(d.set_x_bounds({0, 4, 12}), picprk::ContractViolation);      // wrong size
}

TEST(Decomposition, GridSmallerThanProcessGridRejected) {
  GridSpec grid(2, 1.0);
  Cart2D cart(4, 1);
  EXPECT_THROW(Decomposition2D(grid, cart), picprk::ContractViolation);
}

}  // namespace
