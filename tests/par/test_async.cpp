// The async engine's correctness contract: removing both per-step
// barriers (incremental iexchange delivery + Mattern four-counter
// termination) must change *nothing* observable about the physics. For
// every §III-E distribution, with and without population events, the
// engine must reproduce the serial reference's final particle count and
// id checksum bit-for-bit — the same bar the sync drivers clear in
// test_integration_matrix.cpp.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <tuple>

#include "comm/world.hpp"
#include "obs/registry.hpp"
#include "par/ampi.hpp"
#include "par/async.hpp"
#include "pic/simulation.hpp"

namespace {

using picprk::comm::Comm;
using picprk::comm::World;
using picprk::par::DriverResult;
using picprk::par::RunConfig;
using picprk::par::run_async;
using picprk::pic::CellRegion;
using picprk::pic::EventSchedule;
using picprk::pic::InjectionEvent;
using picprk::pic::RemovalEvent;

constexpr std::int64_t kCells = 24;
constexpr std::uint64_t kParticles = 900;
constexpr std::uint32_t kSteps = 32;

picprk::pic::Distribution async_distribution(int kind) {
  switch (kind) {
    case 0: return picprk::pic::Uniform{};
    case 1: return picprk::pic::Geometric{0.85};
    case 2: return picprk::pic::Sinusoidal{};
    case 3: return picprk::pic::Linear{1.0, 1.2};
    default: return picprk::pic::Patch{CellRegion{2, 14, 6, 20}};
  }
}

const char* async_tag(int kind) {
  switch (kind) {
    case 0: return "uniform";
    case 1: return "geometric";
    case 2: return "sinusoidal";
    case 3: return "linear";
    default: return "patch";
  }
}

RunConfig async_config(int kind, bool events) {
  RunConfig cfg;
  cfg.init.grid = picprk::pic::GridSpec(kCells, 1.0);
  cfg.init.total_particles = kParticles;
  cfg.init.distribution = async_distribution(kind);
  cfg.init.k = 1;
  cfg.init.m = -1;
  cfg.steps = kSteps;
  cfg.ranks = 4;
  cfg.overdecomposition = 4;
  cfg.lb.strategy = "steal";
  cfg.lb.every = 4;
  if (events) {
    cfg.events = EventSchedule(
        {InjectionEvent{kSteps / 3, CellRegion{0, kCells / 2, 0, kCells}, 300}},
        {RemovalEvent{2 * kSteps / 3, CellRegion{0, kCells, kCells / 2, kCells}, 0.4}});
  }
  return cfg;
}

struct Reference {
  std::uint64_t particles;
  std::uint64_t checksum;
};

Reference serial_reference(const RunConfig& cfg) {
  picprk::pic::SimulationConfig scfg;
  scfg.init = cfg.init;
  scfg.steps = cfg.steps;
  scfg.events = cfg.events;
  const auto r = picprk::pic::run_serial(scfg);
  EXPECT_TRUE(r.ok());
  return Reference{r.final_particles, r.verification.id_checksum};
}

// (distribution kind, events on/off)
class AsyncMatrix : public ::testing::TestWithParam<std::tuple<int, bool>> {};

INSTANTIATE_TEST_SUITE_P(DistributionsAndEvents, AsyncMatrix,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Bool()),
                         [](const auto& info) {
                           const int kind = std::get<0>(info.param);
                           const bool events = std::get<1>(info.param);
                           return std::string(async_tag(kind)) +
                                  (events ? "_events" : "_static");
                         });

TEST_P(AsyncMatrix, MatchesSerialBitForBit) {
  const auto [kind, events] = GetParam();
  const RunConfig cfg = async_config(kind, events);
  const Reference ref = serial_reference(cfg);
  const DriverResult r = run_async(cfg);
  EXPECT_TRUE(r.ok) << "failures=" << r.verification.position_failures
                    << " checksum=" << r.verification.id_checksum << "/"
                    << r.expected_id_checksum;
  EXPECT_EQ(r.final_particles, ref.particles);
  EXPECT_EQ(r.verification.id_checksum, ref.checksum);
  EXPECT_EQ(r.verification.checked, r.final_particles);
}

// The two overlap-free barriers are gone, but the engine must still
// agree with the barriered vpr driver at the same decomposition —
// 16 VPs either way — including LB migration effects on the tallies.
TEST(Async, MatchesAmpiAtEqualDecomposition) {
  RunConfig cfg = async_config(1, /*events=*/false);
  const DriverResult async_r = run_async(cfg);

  RunConfig ampi_cfg = cfg;
  ampi_cfg.workers = 4;  // workers * d == ranks * d == 16 VPs
  ampi_cfg.lb.strategy = "greedy";
  const DriverResult ampi_r = picprk::par::run_ampi(ampi_cfg);

  ASSERT_TRUE(async_r.ok);
  ASSERT_TRUE(ampi_r.ok);
  EXPECT_EQ(async_r.final_particles, ampi_r.final_particles);
  EXPECT_EQ(async_r.verification.id_checksum, ampi_r.verification.id_checksum);
  EXPECT_EQ(async_r.expected_id_checksum, ampi_r.expected_id_checksum);
}

// Collective form inside an existing world: every rank must return the
// same (allreduced) result.
TEST(Async, CollectiveFormAgreesOnAllRanks) {
  const RunConfig cfg = async_config(0, /*events=*/false);
  World world(cfg.ranks);
  world.run([&](Comm& comm) {
    const DriverResult r = run_async(comm, cfg);
    EXPECT_TRUE(r.ok);
    const std::uint64_t lo = comm.allreduce_value(
        r.verification.id_checksum,
        [](std::uint64_t a, std::uint64_t b) { return a < b ? a : b; });
    const std::uint64_t hi = comm.allreduce_value(
        r.verification.id_checksum,
        [](std::uint64_t a, std::uint64_t b) { return a < b ? b : a; });
    EXPECT_EQ(lo, hi);
    EXPECT_EQ(r.verification.checked, r.final_particles);
  });
}

// Termination detection must not hinge on every rank having traffic: a
// patch crammed into one corner leaves most ranks (and their VPs) with
// zero particles, so their (sent, received) contributions stay (0, 0)
// every step. The token ring must still complete each step promptly.
TEST(Async, ZeroParticleRanksTerminate) {
  RunConfig cfg = async_config(4, /*events=*/false);
  cfg.init.distribution = picprk::pic::Patch{CellRegion{0, 4, 0, 4}};
  cfg.lb.every = 0;  // no rebalancing: the empty ranks stay empty
  const Reference ref = serial_reference(cfg);
  const DriverResult r = run_async(cfg);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.final_particles, ref.particles);
  EXPECT_EQ(r.verification.id_checksum, ref.checksum);
}

// The engine requires a placement-capable strategy; bounds-only specs
// are a configuration error, caught before any thread spawns.
TEST(Async, RejectsNonPlacementBalancer) {
  RunConfig cfg = async_config(0, false);
  cfg.lb.strategy = "rcb";  // bounds-only: no placement support
  EXPECT_THROW(run_async(cfg), std::invalid_argument);
}

// Overlap proof: with a registry attached, compute-phase deliveries
// land in async/overlap_deliveries — arrivals drained *while other VPs
// of the same rank were still stepping*.
TEST(Async, RecordsOverlapTelemetry) {
  picprk::obs::Registry registry;
  RunConfig cfg = async_config(1, /*events=*/false);
  cfg.obs.registry = &registry;
  const DriverResult r = run_async(cfg);
  ASSERT_TRUE(r.ok);
  std::uint64_t overlap = 0, drain = 0;
  for (const auto& c : registry.counters()) {
    if (c.name == "async/overlap_deliveries") overlap = c.value;
    if (c.name == "async/drain_deliveries") drain = c.value;
  }
  // Every remote arrival is accounted to exactly one of the two paths.
  EXPECT_GT(overlap + drain, 0u);
}

}  // namespace
