// Integration tests: the three parallel drivers must reproduce exactly
// what the serial specification produces — verified positions (Eqs. 5–6)
// and the id checksum — for every distribution, under real particle
// communication, boundary migration and VP migration.
#include <gtest/gtest.h>

#include "comm/world.hpp"
#include "lb/bounds.hpp"
#include "par/ampi.hpp"
#include "par/baseline.hpp"
#include "par/diffusion.hpp"

namespace {

using picprk::comm::Comm;
using picprk::comm::World;
using picprk::par::DriverResult;
using picprk::par::RunConfig;
using picprk::par::run_ampi;
using picprk::par::run_baseline;
using picprk::par::run_diffusion;
using picprk::pic::CellRegion;
using picprk::pic::ChargeSign;
using picprk::pic::EventSchedule;
using picprk::pic::Geometric;
using picprk::pic::GridSpec;
using picprk::pic::InjectionEvent;
using picprk::pic::RemovalEvent;
using picprk::pic::Sinusoidal;
using picprk::pic::Uniform;

RunConfig make_config(std::int64_t cells, std::uint64_t n, std::uint32_t steps) {
  RunConfig cfg;
  cfg.init.grid = GridSpec(cells, 1.0);
  cfg.init.total_particles = n;
  cfg.steps = steps;
  return cfg;
}

// ---------------------------------------------------------- baseline

class BaselineRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(RankCounts, BaselineRanks, ::testing::Values(1, 2, 3, 4, 6),
                         [](const auto& info) { return "p" + std::to_string(info.param); });

TEST_P(BaselineRanks, UniformVerifies) {
  World world(GetParam());
  world.run([](Comm& comm) {
    auto cfg = make_config(24, 1200, 30);
    const DriverResult r = run_baseline(comm, cfg);
    EXPECT_TRUE(r.ok) << "failures=" << r.verification.position_failures
                      << " checksum=" << r.verification.id_checksum << "/"
                      << r.expected_id_checksum;
    EXPECT_EQ(r.verification.checked, r.final_particles);
  });
}

TEST_P(BaselineRanks, GeometricSkewVerifies) {
  World world(GetParam());
  world.run([](Comm& comm) {
    auto cfg = make_config(24, 1500, 40);
    cfg.init.distribution = Geometric{0.85};
    cfg.init.k = 1;
    cfg.init.m = 1;
    EXPECT_TRUE(run_baseline(comm, cfg).ok);
  });
}

TEST(Baseline, EventsVerifyInParallel) {
  World world(4);
  world.run([](Comm& comm) {
    auto cfg = make_config(20, 800, 30);
    cfg.events = EventSchedule({InjectionEvent{10, CellRegion{5, 15, 5, 15}, 300}},
                               {RemovalEvent{20, CellRegion{0, 10, 0, 20}, 0.5}});
    const DriverResult r = run_baseline(comm, cfg);
    EXPECT_TRUE(r.ok);
  });
}

TEST(Baseline, RandomSignDistributionVerifies) {
  World world(4);
  world.run([](Comm& comm) {
    auto cfg = make_config(20, 900, 25);
    cfg.init.sign = ChargeSign::Random;
    cfg.init.m = -1;
    EXPECT_TRUE(run_baseline(comm, cfg).ok);
  });
}

TEST(Baseline, ImbalanceSeriesShowsSkew) {
  World world(4);
  world.run([](Comm& comm) {
    auto cfg = make_config(24, 3000, 12);
    cfg.init.distribution = Geometric{0.7};
    cfg.sample_every = 4;
    const DriverResult r = run_baseline(comm, cfg);
    ASSERT_FALSE(r.imbalance_series.empty());
    // A strongly skewed distribution on a static decomposition starts
    // far out of balance (the cloud drifts right over time, so the first
    // sample is the cleanest observation).
    EXPECT_GT(r.imbalance_series.front(), 1.5);
    EXPECT_GT(r.max_particles_per_rank,
              static_cast<std::uint64_t>(r.ideal_particles_per_rank));
  });
}

// --------------------------------------------------------- diffusion

class DiffusionRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(RankCounts, DiffusionRanks, ::testing::Values(2, 3, 4, 6),
                         [](const auto& info) { return "p" + std::to_string(info.param); });

TEST_P(DiffusionRanks, SkewedDistributionVerifies) {
  World world(GetParam());
  world.run([](Comm& comm) {
    auto cfg = make_config(24, 1500, 40);
    cfg.init.distribution = Geometric{0.8};
    cfg.lb.strategy = "diffusion:threshold=0.05";
    cfg.lb.every = 5;
    const DriverResult r = run_diffusion(comm, cfg);
    EXPECT_TRUE(r.ok) << "failures=" << r.verification.position_failures;
  });
}

TEST(Diffusion, ImprovesBalanceOverBaseline) {
  World world(4);
  world.run([](Comm& comm) {
    auto cfg = make_config(32, 4000, 60);
    cfg.init.distribution = Geometric{0.8};
    const DriverResult base = run_baseline(comm, cfg);
    cfg.lb.strategy = "diffusion:threshold=0.05,border=1";
    cfg.lb.every = 4;
    const DriverResult diff = run_diffusion(comm, cfg);
    EXPECT_TRUE(base.ok);
    EXPECT_TRUE(diff.ok);
    // The §V-B comparison: max particles per rank must improve.
    EXPECT_LT(diff.max_particles_per_rank, base.max_particles_per_rank);
    EXPECT_GT(diff.lb_actions, 0u);
    EXPECT_GT(diff.lb_bytes, 0u);
  });
}

TEST(Diffusion, TwoPhaseVerifies) {
  World world(4);
  world.run([](Comm& comm) {
    auto cfg = make_config(24, 2000, 40);
    // A patch in one corner stresses both directions.
    cfg.init.distribution = picprk::pic::Patch{CellRegion{0, 8, 0, 8}};
    cfg.lb.strategy = "diffusion:threshold=0.05,two_phase=1";
    cfg.lb.every = 5;
    const DriverResult r = run_diffusion(comm, cfg);
    EXPECT_TRUE(r.ok);
  });
}

TEST(Diffusion, EventsAndLbTogether) {
  World world(4);
  world.run([](Comm& comm) {
    auto cfg = make_config(24, 1200, 40);
    cfg.init.distribution = Geometric{0.85};
    cfg.events = EventSchedule({InjectionEvent{12, CellRegion{16, 24, 0, 24}, 600}},
                               {RemovalEvent{25, CellRegion{0, 12, 0, 24}, 0.6}});
    cfg.lb.strategy = "diffusion:threshold=0.05";
    cfg.lb.every = 6;
    EXPECT_TRUE(run_diffusion(comm, cfg).ok);
  });
}

TEST(Diffusion, WiderBorderVerifies) {
  World world(3);
  world.run([](Comm& comm) {
    auto cfg = make_config(30, 1500, 30);
    cfg.init.distribution = Geometric{0.8};
    cfg.lb.strategy = "diffusion:threshold=0.02,border=3";
    cfg.lb.every = 4;
    EXPECT_TRUE(run_diffusion(comm, cfg).ok);
  });
}

TEST(Diffusion, RcbStrategyVerifies) {
  World world(4);
  world.run([](Comm& comm) {
    auto cfg = make_config(32, 3000, 40);
    cfg.init.distribution = Geometric{0.8};
    cfg.lb.strategy = "rcb";
    cfg.lb.every = 8;
    const DriverResult r = run_diffusion(comm, cfg);
    EXPECT_TRUE(r.ok) << "failures=" << r.verification.position_failures;
  });
}

TEST(Diffusion, AdaptiveStrategyVerifies) {
  World world(4);
  world.run([](Comm& comm) {
    auto cfg = make_config(32, 3000, 40);
    cfg.init.distribution = Geometric{0.8};
    cfg.lb.strategy = "adaptive";
    cfg.lb.every = 8;
    EXPECT_TRUE(run_diffusion(comm, cfg).ok);
  });
}

TEST(Diffusion, PlacementOnlyStrategyIsRejected) {
  World world(2);
  // World::run rethrows the first worker exception to the caller.
  EXPECT_THROW(world.run([](Comm& comm) {
    auto cfg = make_config(16, 400, 5);
    cfg.lb.strategy = "greedy";  // placement-only, cannot move bounds
    (void)run_diffusion(comm, cfg);
  }),
               std::invalid_argument);
}

TEST(DiffuseBoundsFn, MovesTowardLighterSide) {
  using picprk::lb::diffuse_bounds;
  // Column 0 heavily loaded: boundary 1 must move left.
  const auto out = diffuse_bounds({0, 10, 20}, {1000.0, 10.0}, 100.0, 2);
  EXPECT_EQ(out, (std::vector<std::int64_t>{0, 8, 20}));
  // Balanced: no movement.
  EXPECT_EQ(diffuse_bounds({0, 10, 20}, {500.0, 505.0}, 100.0, 2),
            (std::vector<std::int64_t>{0, 10, 20}));
  // Column 1 loaded: boundary moves right.
  EXPECT_EQ(diffuse_bounds({0, 10, 20}, {10.0, 1000.0}, 100.0, 2),
            (std::vector<std::int64_t>{0, 12, 20}));
}

TEST(DiffuseBoundsFn, ClampKeepsBoundsValid) {
  using picprk::lb::diffuse_bounds;
  // Narrow columns: movement is clamped to keep widths >= 1 and to never
  // jump past the old adjacent boundary.
  const auto out = diffuse_bounds({0, 1, 2, 30}, {1000.0, 1000.0, 1.0}, 10.0, 5);
  for (std::size_t i = 1; i < out.size(); ++i) EXPECT_GT(out[i], out[i - 1]);
  EXPECT_EQ(out.front(), 0);
  EXPECT_EQ(out.back(), 30);
}

// -------------------------------------------------------------- ampi

class AmpiWorkers : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(WorkerCounts, AmpiWorkers, ::testing::Values(1, 2, 4),
                         [](const auto& info) { return "w" + std::to_string(info.param); });

TEST_P(AmpiWorkers, SkewedDistributionVerifies) {
  auto cfg = make_config(24, 1500, 40);
  cfg.init.distribution = Geometric{0.8};
  cfg.workers = GetParam();
  cfg.overdecomposition = 4;
  cfg.lb.every = 8;
  const DriverResult r = run_ampi(cfg);
  EXPECT_TRUE(r.ok) << "failures=" << r.verification.position_failures
                    << " checksum=" << r.verification.id_checksum << "/"
                    << r.expected_id_checksum;
}

TEST(Ampi, MigrationHappensAndStateSurvives) {
  auto cfg = make_config(24, 2500, 30);
  cfg.init.distribution = Geometric{0.7};
  cfg.workers = 2;
  cfg.overdecomposition = 8;
  cfg.lb.every = 5;
  const DriverResult r = run_ampi(cfg);
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.lb_actions, 0u);     // migrations occurred
  EXPECT_GT(r.lb_bytes, 0u);       // and carried PUPed state
}

TEST(Ampi, GreedyImprovesWorkerBalance) {
  auto cfg = make_config(32, 4000, 40);
  cfg.init.distribution = Geometric{0.75};
  // workers=4, d=2 gives 8 VPs on a 4×2 grid: each worker initially
  // holds half a VP row, so the column-skewed load lands on the workers
  // owning the left half — the imbalanced starting point the balancer
  // must fix. (With full VP rows per worker the placement would be
  // accidentally balanced for any y-uniform distribution.)
  RunConfig off = cfg;
  off.workers = 4;
  off.overdecomposition = 2;
  off.lb.every = 0;  // never balance
  off.sample_every = 2;
  RunConfig on = off;
  on.lb.every = 5;
  const DriverResult r_off = run_ampi(off);
  const DriverResult r_on = run_ampi(on);
  EXPECT_TRUE(r_off.ok);
  EXPECT_TRUE(r_on.ok);
  // Compare time-averaged imbalance: the end-of-run snapshot is noisy
  // because the cloud drifts between the last LB epoch and the end.
  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  ASSERT_FALSE(r_off.imbalance_series.empty());
  ASSERT_FALSE(r_on.imbalance_series.empty());
  EXPECT_LT(mean(r_on.imbalance_series), mean(r_off.imbalance_series));
}

TEST(Ampi, EventsVerify) {
  auto cfg = make_config(20, 800, 30);
  cfg.events = EventSchedule({InjectionEvent{8, CellRegion{0, 10, 0, 10}, 400}},
                             {RemovalEvent{20, CellRegion{10, 20, 0, 20}, 0.5}});
  cfg.workers = 2;
  cfg.overdecomposition = 4;
  cfg.lb.every = 6;
  EXPECT_TRUE(run_ampi(cfg).ok);
}

TEST(Ampi, AllPlacementBalancersVerify) {
  for (const char* balancer :
       {"null", "greedy", "refine", "diffusion", "rotate", "compact", "adaptive"}) {
    auto cfg = make_config(20, 900, 20);
    cfg.init.distribution = Sinusoidal{};
    cfg.workers = 2;
    cfg.overdecomposition = 4;
    cfg.lb.every = 4;
    cfg.lb.strategy = balancer;
    EXPECT_TRUE(run_ampi(cfg).ok) << balancer;
  }
}

TEST(Ampi, BoundsOnlyStrategyIsRejected) {
  auto cfg = make_config(16, 400, 5);
  cfg.workers = 2;
  cfg.overdecomposition = 2;
  cfg.lb.strategy = "rcb";  // bounds-only, cannot place VPs
  EXPECT_THROW((void)run_ampi(cfg), std::invalid_argument);
}

TEST(Ampi, MeasuredLoadModeVerifies) {
  auto cfg = make_config(20, 900, 20);
  cfg.init.distribution = Geometric{0.8};
  cfg.workers = 2;
  cfg.overdecomposition = 4;
  cfg.lb.every = 4;
  cfg.lb.measured = true;
  EXPECT_TRUE(run_ampi(cfg).ok);
}

// --------------------------------------------- cross-implementation

TEST(CrossImplementation, AllThreeAgreeWithSerialChecksum) {
  // Same problem through all drivers: all must verify and see the same
  // global particle count.
  auto cfg = make_config(24, 1600, 36);
  cfg.init.distribution = Geometric{0.85};
  cfg.init.k = 1;

  DriverResult base, diff;
  World world(4);
  world.run([&](Comm& comm) {
    const auto b = run_baseline(comm, cfg);
    RunConfig dcfg = cfg;
    dcfg.lb.every = 6;
    const auto d = run_diffusion(comm, dcfg);
    if (comm.rank() == 0) {
      base = b;
      diff = d;
    }
  });
  RunConfig acfg = cfg;
  acfg.workers = 2;
  acfg.overdecomposition = 4;
  acfg.lb.every = 6;
  const DriverResult ampi = run_ampi(acfg);

  EXPECT_TRUE(base.ok);
  EXPECT_TRUE(diff.ok);
  EXPECT_TRUE(ampi.ok);
  EXPECT_EQ(base.final_particles, diff.final_particles);
  EXPECT_EQ(base.final_particles, ampi.final_particles);
  EXPECT_EQ(base.verification.id_checksum, diff.verification.id_checksum);
  EXPECT_EQ(base.verification.id_checksum, ampi.verification.id_checksum);
}

}  // namespace
