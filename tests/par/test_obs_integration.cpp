// Integration tests for the obs subsystem against a real driver run:
// the per-step imbalance telemetry must match the closed-form load of
// the drifting distribution, and the trace/registry must be populated
// exactly when the build carries telemetry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "comm/cart.hpp"
#include "comm/world.hpp"
#include "obs/phase.hpp"
#include "obs/registry.hpp"
#include "obs/sinks.hpp"
#include "par/ampi.hpp"
#include "par/baseline.hpp"
#include "par/decomposition.hpp"
#include "par/driver_common.hpp"
#include "pic/init.hpp"

namespace {

using picprk::comm::Cart2D;
using picprk::comm::Comm;
using picprk::comm::World;
using picprk::obs::Hooks;
using picprk::obs::Registry;
using picprk::obs::StepSample;
using picprk::obs::Trace;
using picprk::par::Decomposition2D;
using picprk::par::DriverConfig;
using picprk::par::DriverResult;
using picprk::pic::Geometric;
using picprk::pic::GridSpec;
using picprk::pic::Initializer;

constexpr std::int64_t kCells = 24;
constexpr std::uint64_t kParticles = 20000;
constexpr std::uint32_t kSteps = 12;
constexpr int kRanks = 4;

DriverConfig make_config() {
  DriverConfig cfg;
  cfg.init.grid = GridSpec(kCells, 1.0);
  cfg.init.total_particles = kParticles;
  cfg.init.distribution = Geometric{0.8};  // skewed: lambda > 1 under a 2-D grid
  cfg.init.k = 0;                          // drift: +1 cell per step in x
  cfg.init.m = 0;                          // no vertical drift
  cfg.steps = kSteps;
  cfg.sample_every = 1;
  return cfg;
}

std::int64_t wrap_column(std::int64_t cx) {
  return ((cx % kCells) + kCells) % kCells;
}

/// Closed-form per-rank particle count after the sample at loop step s:
/// the drift has applied s+1 single-cell x-shifts to the initial counts,
/// so the load of a block is the initial count summed over the
/// back-shifted columns.
std::vector<std::uint64_t> expected_rank_loads(const Initializer& init,
                                               const Decomposition2D& decomp,
                                               int ranks, std::uint32_t s) {
  std::vector<std::uint64_t> loads(static_cast<std::size_t>(ranks), 0);
  for (int rank = 0; rank < ranks; ++rank) {
    const auto block = decomp.block_of(rank);
    std::uint64_t total = 0;
    for (std::int64_t cx = block.x0; cx < block.x1; ++cx) {
      const std::int64_t source = wrap_column(cx - static_cast<std::int64_t>(s) - 1);
      for (std::int64_t cy = block.y0; cy < block.y1; ++cy) {
        total += init.count_in_cell(source, cy);
      }
    }
    loads[static_cast<std::size_t>(rank)] = total;
  }
  return loads;
}

double lambda_of(const std::vector<std::uint64_t>& loads) {
  std::uint64_t max = 0, sum = 0;
  for (const auto l : loads) {
    max = std::max(max, l);
    sum += l;
  }
  const double mean = static_cast<double>(sum) / static_cast<double>(loads.size());
  return mean > 0.0 ? static_cast<double>(max) / mean : 1.0;
}

TEST(ObsIntegration, BaselineLambdaMatchesClosedFormPerStep) {
  Registry registry;
  Trace trace;
  DriverConfig cfg = make_config();
  cfg.obs = Hooks{&registry, &trace};

  DriverResult result;
  World world(kRanks);
  world.run([&](Comm& comm) {
    const DriverResult r = picprk::par::run_baseline(comm, cfg);
    if (comm.rank() == 0) result = r;
  });
  ASSERT_TRUE(result.ok);

  if (!picprk::obs::kEnabled) {
    // Telemetry compiled out: drivers fall back to the legacy sampler.
    EXPECT_TRUE(result.step_samples.empty());
    EXPECT_EQ(result.imbalance_series.size(), kSteps);
    return;
  }

  ASSERT_EQ(result.step_samples.size(), kSteps);
  const Initializer init(cfg.init);
  const Cart2D cart(kRanks);
  const Decomposition2D decomp(cfg.init.grid, cart);

  for (std::uint32_t s = 0; s < kSteps; ++s) {
    const StepSample& sample = result.step_samples[s];
    EXPECT_EQ(sample.step, static_cast<int>(s));
    const auto loads = expected_rank_loads(init, decomp, kRanks, s);
    const auto max_it = *std::max_element(loads.begin(), loads.end());
    EXPECT_NEAR(sample.max_load, static_cast<double>(max_it), 1e-9)
        << "step " << s;
    EXPECT_NEAR(sample.lambda, lambda_of(loads), 1e-9) << "step " << s;
    // The legacy series and the telemetry samples are one measurement.
    EXPECT_DOUBLE_EQ(result.imbalance_series[s], sample.lambda);
  }
}

TEST(ObsIntegration, BaselineLambdaTracksAnalyticExpectation) {
  Registry registry;
  Trace trace;
  DriverConfig cfg = make_config();
  cfg.obs = Hooks{&registry, &trace};

  DriverResult result;
  World world(kRanks);
  world.run([&](Comm& comm) {
    const DriverResult r = picprk::par::run_baseline(comm, cfg);
    if (comm.rank() == 0) result = r;
  });
  ASSERT_TRUE(result.ok);
  if (!picprk::obs::kEnabled) GTEST_SKIP() << "telemetry compiled out";

  // Analytic lambda from the distribution's continuous column weights:
  // the realised counts are integer roundings of these expectations, so
  // at 20k particles the sampled ratio must sit within a few percent.
  const auto weights = picprk::pic::column_cell_expectations(cfg.init);
  const Cart2D cart(kRanks);
  const Decomposition2D decomp(cfg.init.grid, cart);
  for (std::uint32_t s = 0; s < kSteps; ++s) {
    std::vector<double> loads(kRanks, 0.0);
    for (int rank = 0; rank < kRanks; ++rank) {
      const auto block = decomp.block_of(rank);
      for (std::int64_t cx = block.x0; cx < block.x1; ++cx) {
        const std::int64_t source = wrap_column(cx - static_cast<std::int64_t>(s) - 1);
        loads[static_cast<std::size_t>(rank)] +=
            weights[static_cast<std::size_t>(source)] *
            static_cast<double>(block.height());
      }
    }
    double max = 0.0, sum = 0.0;
    for (const double l : loads) {
      max = std::max(max, l);
      sum += l;
    }
    const double analytic = max / (sum / kRanks);
    EXPECT_NEAR(result.step_samples[s].lambda, analytic, 0.05 * analytic)
        << "step " << s;
  }
}

TEST(ObsIntegration, ObservedAndDarkRunsProduceTheSameImbalanceSeries) {
  // The telemetry path must not change what is measured: lambda from
  // sample_step_telemetry equals lambda from the legacy sampler.
  DriverConfig dark_cfg = make_config();
  DriverResult dark;
  {
    World world(kRanks);
    world.run([&](Comm& comm) {
      const DriverResult r = picprk::par::run_baseline(comm, dark_cfg);
      if (comm.rank() == 0) dark = r;
    });
  }

  Registry registry;
  Trace trace;
  DriverConfig obs_cfg = make_config();
  obs_cfg.obs = Hooks{&registry, &trace};
  DriverResult observed;
  {
    World world(kRanks);
    world.run([&](Comm& comm) {
      const DriverResult r = picprk::par::run_baseline(comm, obs_cfg);
      if (comm.rank() == 0) observed = r;
    });
  }

  ASSERT_EQ(dark.imbalance_series.size(), observed.imbalance_series.size());
  for (std::size_t i = 0; i < dark.imbalance_series.size(); ++i) {
    EXPECT_DOUBLE_EQ(dark.imbalance_series[i], observed.imbalance_series[i]);
  }
}

TEST(ObsIntegration, BaselineRegistersPerRankInstrumentsAndTraceLanes) {
  Registry registry;
  Trace trace;
  DriverConfig cfg = make_config();
  cfg.obs = Hooks{&registry, &trace};

  World world(kRanks);
  world.run([&](Comm& comm) { picprk::par::run_baseline(comm, cfg); });

  if (!picprk::obs::kEnabled) {
    EXPECT_EQ(registry.size(), 0u);
    EXPECT_EQ(trace.event_count(), 0u);
    return;
  }
  for (int rank = 0; rank < kRanks; ++rank) {
    const std::string prefix = "rank " + std::to_string(rank) + "/";
    const auto* steps = registry.find_counter(prefix + "steps");
    ASSERT_NE(steps, nullptr) << prefix;
    EXPECT_EQ(steps->value(), kSteps);
    const auto* compute = registry.find_histogram(prefix + "phase_compute_seconds");
    ASSERT_NE(compute, nullptr);
    EXPECT_EQ(compute->count(), kSteps);
  }
  // One lane per rank, each with compute + exchange spans per step, and
  // nothing dropped at the drivers' reserve sizing.
  EXPECT_EQ(trace.lane_count(), static_cast<std::size_t>(kRanks));
  EXPECT_GE(trace.event_count(), static_cast<std::uint64_t>(kRanks) * kSteps * 2);
  EXPECT_EQ(trace.dropped_count(), 0u);
  // Exchange conservation: particles received must equal particles sent.
  std::uint64_t sent = 0, received = 0;
  for (const auto& view : registry.counters()) {
    if (view.name.find("exchange_particles_sent") != std::string::npos) sent += view.value;
    if (view.name.find("exchange_particles_received") != std::string::npos) {
      received += view.value;
    }
  }
  EXPECT_EQ(sent, received);
}

TEST(ObsIntegration, AmpiDriverPopulatesSamplesAndVpLanes) {
  Registry registry;
  Trace trace;
  DriverConfig cfg = make_config();
  cfg.obs = Hooks{&registry, &trace};
  picprk::par::RunConfig acfg;
  static_cast<DriverConfig&>(acfg) = cfg;
  acfg.workers = 2;
  acfg.overdecomposition = 4;
  acfg.lb.every = 4;

  const auto r = picprk::par::run_ampi(acfg);
  ASSERT_TRUE(r.ok);

  if (!picprk::obs::kEnabled) {
    EXPECT_TRUE(r.step_samples.empty());
    return;
  }
  ASSERT_EQ(r.step_samples.size(), kSteps);
  for (const auto& sample : r.step_samples) {
    EXPECT_GE(sample.lambda, 1.0);
    EXPECT_GT(sample.max_load, 0.0);
  }
  // The vpr runtime registers one lane per VP (pid 1) plus the driver
  // lane (pid 0), and its canonical instruments.
  EXPECT_GE(trace.lane_count(), static_cast<std::size_t>(acfg.workers *
                                                         acfg.overdecomposition));
  EXPECT_NE(registry.find_histogram("vpr/phase_step_seconds"), nullptr);
  EXPECT_NE(registry.find_counter("vpr/messages"), nullptr);
}

}  // namespace
