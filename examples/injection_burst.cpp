// Injection burst: the §III-E5 adaptiveness stress test.
//
// A uniform workload runs in balance until, at T/2, a large particle
// population is injected into one corner region — "injections/removals
// adjust abruptly the local amount of work". We watch how fast the
// diffusion scheme and the vpr runtime re-balance, comparing the sampled
// imbalance before and after the event.
//
//   ./injection_burst --ranks 4 --burst 80000
#include <iostream>

#include "comm/world.hpp"
#include "par/ampi.hpp"
#include "par/baseline.hpp"
#include "par/diffusion.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

struct Phases {
  double before = 1.0;  ///< mean sampled imbalance pre-burst
  double shock = 1.0;   ///< peak imbalance right after the burst
  double after = 1.0;   ///< mean imbalance over the last quarter of the run
};

Phases split_series(const std::vector<double>& series, std::size_t burst_sample) {
  Phases p;
  if (series.empty()) return p;
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < burst_sample && i < series.size(); ++i) {
    sum += series[i];
    ++n;
  }
  p.before = n ? sum / static_cast<double>(n) : 1.0;
  p.shock = 1.0;
  for (std::size_t i = burst_sample; i < series.size(); ++i) {
    p.shock = std::max(p.shock, series[i]);
  }
  sum = 0;
  n = 0;
  for (std::size_t i = series.size() * 3 / 4; i < series.size(); ++i) {
    sum += series[i];
    ++n;
  }
  p.after = n ? sum / static_cast<double>(n) : 1.0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace picprk;

  util::ArgParser args("injection_burst", "abrupt work injection vs load balancers");
  args.add_int("cells", 200, "mesh cells per dimension");
  args.add_int("particles", 40000, "initial particle count");
  args.add_int("burst", 80000, "particles injected at T/2");
  args.add_int("steps", 240, "time steps");
  args.add_int("ranks", 4, "ranks / workers");
  if (!args.parse(argc, argv)) return 0;

  const auto cells = args.get_int("cells");
  const auto steps = static_cast<std::uint32_t>(args.get_int("steps"));

  par::RunConfig cfg;
  cfg.init.grid = pic::GridSpec(cells, 1.0);
  cfg.init.total_particles = static_cast<std::uint64_t>(args.get_int("particles"));
  cfg.init.distribution = pic::Uniform{};
  cfg.steps = steps;
  cfg.sample_every = std::max(1u, steps / 60);
  // Inject into the lower-left quarter at T/2; removal of a slice near
  // the end keeps the checksum machinery honest too.
  cfg.events = pic::EventSchedule(
      {pic::InjectionEvent{steps / 2, pic::CellRegion{0, cells / 2, 0, cells / 2},
                           static_cast<std::uint64_t>(args.get_int("burst"))}},
      {pic::RemovalEvent{steps * 7 / 8, pic::CellRegion{0, cells, 0, cells / 4}, 0.3}});

  const int ranks = static_cast<int>(args.get_int("ranks"));
  const std::size_t burst_sample = (steps / 2) / cfg.sample_every;

  par::DriverResult base, diff;
  comm::World world(ranks);
  world.run([&](comm::Comm& comm) {
    const auto b = par::run_baseline(comm, cfg);
    par::RunConfig dcfg = cfg;
    // The burst region is skewed in both directions: two-phase diffusion.
    dcfg.lb.strategy = "diffusion:threshold=0.05,border=2,two_phase=1";
    dcfg.lb.every = 4;
    const auto d = par::run_diffusion(comm, dcfg);
    if (comm.rank() == 0) {
      base = b;
      diff = d;
    }
  });

  par::RunConfig acfg = cfg;
  acfg.workers = 2;
  acfg.overdecomposition = 8;
  acfg.lb.every = 8;
  const auto ampi = par::run_ampi(acfg);

  std::cout << "uniform workload, burst of " << args.get_int("burst")
            << " particles into one quarter at step " << steps / 2 << "\n\n";

  util::Table table({"impl", "verified", "imb before", "imb peak after burst",
                     "imb settled", "final particles"});
  auto row = [&](const char* name, const par::DriverResult& r) {
    const Phases p = split_series(r.imbalance_series, burst_sample);
    table.add_row({name, r.ok ? "yes" : "NO", util::Table::fmt(p.before, 2),
                   util::Table::fmt(p.shock, 2), util::Table::fmt(p.after, 2),
                   util::Table::fmt_u64(r.final_particles)});
  };
  row("mpi-2d (none)", base);
  row("mpi-2d-LB (2-phase)", diff);
  row("ampi (vpr greedy)", ampi);
  table.print(std::cout);

  std::cout << "\nThe static decomposition stays at its post-burst imbalance; the\n"
               "balancers pull it back toward 1.0 — the §III-E5 adaptiveness test.\n";

  return base.ok && diff.ok && ampi.ok ? 0 : 1;
}
