// Noisy machine: category-1 imbalance (system non-uniformity) on the
// performance model.
//
// The paper notes (§I, §II) that application-level work balancing cannot
// remove category-1 imbalance (OS noise, heterogeneous core speeds), but
// that runtime balancers which measure *time* rather than *work* can.
// This example builds a machine with one slow core and OS noise, runs a
// perfectly uniform workload, and shows that (a) the static and
// diffusion schemes — which balance particle counts — cannot fix it,
// while (b) the vpr runtime, balancing on measured load, largely can.
//
//   ./noisy_machine --cores 24 --slow-core 7 --slow-factor 0.5
#include <iostream>

#include "perfsim/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace picprk;

  util::ArgParser args("noisy_machine", "category-1 imbalance on the perf model");
  args.add_int("cores", 24, "modeled cores");
  args.add_int("slow-core", 7, "index of the degraded core (-1: none)");
  args.add_double("slow-factor", 0.5, "speed of the degraded core");
  args.add_double("noise", 0.05, "relative OS-noise amplitude");
  args.add_int("steps", 2000, "time steps");
  if (!args.parse(argc, argv)) return 0;

  const int cores = static_cast<int>(args.get_int("cores"));

  pic::InitParams workload;
  workload.grid = pic::GridSpec(1198, 1.0);
  workload.total_particles = 1200000;
  workload.distribution = pic::Uniform{};

  perfsim::MachineModel machine;
  machine.t_particle = 140e-9;
  machine.noise_level = args.get_double("noise");
  machine.core_speed.assign(static_cast<std::size_t>(cores), 1.0);
  const auto slow = args.get_int("slow-core");
  if (slow >= 0 && slow < cores) {
    machine.core_speed[static_cast<std::size_t>(slow)] = args.get_double("slow-factor");
  }

  const perfsim::Engine engine(machine, perfsim::ColumnWorkload::from_expected(workload));
  perfsim::RunConfig run;
  run.steps = static_cast<std::uint32_t>(args.get_int("steps"));

  const auto base = engine.run_static(cores, run);
  perfsim::DiffusionModelParams dp;
  dp.frequency = 8;
  dp.threshold = 0.05;
  dp.border_width = 4;
  const auto diff = engine.run_diffusion(cores, run, dp);
  perfsim::VprModelParams vp;
  vp.overdecomposition = 8;
  vp.lb_interval = 100;
  vp.measured_load = true;   // balance on time, not counts
  // RefineLB rather than GreedyLB: greedy re-packs the slow core to the
  // same *measured* load as everyone else every epoch (its stale loads
  // don't know the core is slow), oscillating forever — a real pathology
  // of measured-load greedy strategies on heterogeneous machines. Refine
  // only sheds load off the overloaded core, which converges.
  vp.balancer = "refine";
  const auto vpr = engine.run_vpr(cores, run, vp);

  std::cout << "uniform workload on a machine with core " << slow << " at "
            << args.get_double("slow-factor") << "x speed and "
            << args.get_double("noise") * 100 << "% OS noise (" << cores << " cores)\n\n";

  util::Table table({"scheme", "seconds", "avg makespan imbalance"});
  table.add_row({"mpi-2d (static)", util::Table::fmt(base.seconds, 2),
                 util::Table::fmt(base.avg_imbalance, 2)});
  table.add_row({"mpi-2d-LB (counts diffusion)", util::Table::fmt(diff.seconds, 2),
                 util::Table::fmt(diff.avg_imbalance, 2)});
  table.add_row({"vpr (work redistribution)", util::Table::fmt(vpr.seconds, 2),
                 util::Table::fmt(vpr.avg_imbalance, 2)});
  table.print(std::cout);

  std::cout << "\nNote: the count-based schemes cannot see that core " << slow
            << " is slow — their particle counts are already equal. The\n"
               "over-decomposed runtime can shift whole VPs off the slow core\n"
               "(paper §I: category-2 mechanisms substituting for category 1).\n";
  return 0;
}
