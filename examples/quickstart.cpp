// Quickstart: the PIC PRK in ~60 lines.
//
// Sets up the canonical configuration — an L×L periodic mesh with
// alternating column charges, particles whose Eq.-3 charge makes them hop
// exactly (2k+1) cells per step — runs the simulation serially and with
// the baseline parallel driver, and verifies both against the closed
// form (Eqs. 5–6) and the id checksum.
//
//   ./quickstart --cells 200 --particles 100000 --steps 200 --ranks 4
#include <iostream>

#include "comm/world.hpp"
#include "par/baseline.hpp"
#include "pic/simulation.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace picprk;

  util::ArgParser args("quickstart", "serial + parallel PIC PRK in a nutshell");
  args.add_int("cells", 200, "mesh cells per dimension (even)");
  args.add_int("particles", 100000, "requested particle count");
  args.add_int("steps", 200, "time steps");
  args.add_int("ranks", 4, "threadcomm ranks for the parallel run");
  args.add_double("r", 0.99, "geometric distribution ratio (1 = uniform)");
  args.add_int("k", 0, "horizontal speed parameter: (2k+1) cells/step");
  args.add_int("m", 1, "vertical speed parameter: m cells/step");
  if (!args.parse(argc, argv)) return 0;

  pic::SimulationConfig config;
  config.init.grid = pic::GridSpec(args.get_int("cells"), 1.0);
  config.init.total_particles = static_cast<std::uint64_t>(args.get_int("particles"));
  config.init.distribution = pic::Geometric{args.get_double("r")};
  config.init.k = static_cast<std::int32_t>(args.get_int("k"));
  config.init.m = static_cast<std::int32_t>(args.get_int("m"));
  config.steps = static_cast<std::uint32_t>(args.get_int("steps"));

  // --- serial reference ---------------------------------------------------
  const auto serial = pic::run_serial(config);
  std::cout << "serial:   " << serial.final_particles << " particles, "
            << config.steps << " steps in " << serial.seconds << " s — "
            << (serial.ok() ? "VERIFIED" : "FAILED")
            << " (max position error " << serial.verification.max_position_error << ")\n";

  // --- parallel (threadcomm baseline driver) -------------------------------
  par::DriverConfig driver;
  driver.init = config.init;
  driver.steps = config.steps;
  par::DriverResult parallel;
  comm::World world(static_cast<int>(args.get_int("ranks")));
  world.run([&](comm::Comm& comm) {
    const auto r = par::run_baseline(comm, driver);
    if (comm.rank() == 0) parallel = r;
  });
  std::cout << "parallel: " << parallel.final_particles << " particles on "
            << args.get_int("ranks") << " ranks in " << parallel.seconds << " s — "
            << (parallel.ok ? "VERIFIED" : "FAILED") << " ("
            << parallel.particles_exchanged << " particles exchanged, max/rank "
            << parallel.max_particles_per_rank << ")\n";

  return serial.ok() && parallel.ok ? 0 : 1;
}
