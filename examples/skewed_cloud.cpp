// Skewed drifting cloud: the paper's §III-E1 scenario end to end.
//
// An exponentially skewed particle cloud (geometric ratio r) drifts one
// cell per step across a statically decomposed domain; we race the three
// reference implementations — no LB, diffusion LB, and runtime (vpr) LB
// — on the real threaded runtimes, print their per-phase breakdowns and
// balance statistics, and verify every one of them.
//
//   ./skewed_cloud --ranks 4 --r 0.98 --steps 300
#include <iostream>

#include "comm/world.hpp"
#include "par/ampi.hpp"
#include "par/baseline.hpp"
#include "par/diffusion.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 1.0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace picprk;

  util::ArgParser args("skewed_cloud",
                       "three load-balancing strategies on a drifting skewed cloud");
  args.add_int("cells", 256, "mesh cells per dimension");
  args.add_int("particles", 60000, "requested particle count");
  args.add_int("steps", 300, "time steps");
  args.add_int("ranks", 4, "ranks / workers");
  args.add_double("r", 0.98, "geometric skew ratio");
  // Note the co-tuning constraint of §IV-B: the boundaries must be able
  // to track the cloud's drift, i.e. border/frequency >= (2k+1) cells
  // per step — otherwise diffusion cannot catch the moving cloud at all.
  args.add_int("lb-frequency", 4, "diffusion: steps between LB attempts");
  args.add_double("lb-threshold", 0.05, "diffusion: trigger threshold tau");
  args.add_int("lb-border", 8, "diffusion: cell columns moved per action");
  args.add_int("ampi-d", 8, "vpr: over-decomposition degree");
  args.add_int("ampi-F", 16, "vpr: LB interval");
  args.add_string("ampi-balancer", "greedy", "lb strategy spec for the vpr runtime (see picprk --balancer list)");
  if (!args.parse(argc, argv)) return 0;

  par::RunConfig cfg;
  cfg.init.grid = pic::GridSpec(args.get_int("cells"), 1.0);
  cfg.init.total_particles = static_cast<std::uint64_t>(args.get_int("particles"));
  cfg.init.distribution = pic::Geometric{args.get_double("r")};
  cfg.steps = static_cast<std::uint32_t>(args.get_int("steps"));
  cfg.sample_every = std::max(1u, cfg.steps / 50);

  const int ranks = static_cast<int>(args.get_int("ranks"));

  par::DriverResult base, diff;
  comm::World world(ranks);
  world.run([&](comm::Comm& comm) {
    const auto b = par::run_baseline(comm, cfg);
    par::RunConfig dcfg = cfg;
    dcfg.lb.every = static_cast<std::uint32_t>(args.get_int("lb-frequency"));
    dcfg.lb.strategy = "diffusion:threshold=" +
                       std::to_string(args.get_double("lb-threshold")) +
                       ",border=" + std::to_string(args.get_int("lb-border"));
    const auto d = par::run_diffusion(comm, dcfg);
    if (comm.rank() == 0) {
      base = b;
      diff = d;
    }
  });

  par::RunConfig acfg = cfg;
  acfg.workers = std::max(1, ranks / 2);  // 2 hardware threads per worker here
  acfg.overdecomposition = static_cast<int>(args.get_int("ampi-d"));
  acfg.lb.every = static_cast<std::uint32_t>(args.get_int("ampi-F"));
  acfg.lb.strategy = args.get_string("ampi-balancer");
  const auto ampi = par::run_ampi(acfg);

  std::cout << "drifting geometric cloud, r = " << args.get_double("r") << ", "
            << cfg.steps << " steps, " << ranks << " ranks\n\n";

  util::Table table({"impl", "verified", "seconds", "avg imb", "max/rank", "exchanged",
                     "LB actions", "LB bytes"});
  auto row = [&](const char* name, const par::DriverResult& r) {
    table.add_row({name, r.ok ? "yes" : "NO", util::Table::fmt(r.seconds, 3),
                   util::Table::fmt(mean(r.imbalance_series), 2),
                   util::Table::fmt_u64(r.max_particles_per_rank),
                   util::Table::fmt_u64(r.particles_exchanged),
                   util::Table::fmt_u64(r.lb_actions), util::Table::fmt_u64(r.lb_bytes)});
  };
  row("mpi-2d (none)", base);
  row("mpi-2d-LB (diffusion)", diff);
  row("ampi (vpr greedy)", ampi);
  table.print(std::cout);

  std::cout << "\nideal particles per rank: "
            << util::Table::fmt(base.ideal_particles_per_rank, 0) << "\n"
            << "phase breakdown (diffusion): compute " << util::Table::fmt(diff.phases.compute, 3)
            << " s, exchange " << util::Table::fmt(diff.phases.exchange, 3) << " s, lb "
            << util::Table::fmt(diff.phases.lb, 3) << " s\n";

  return base.ok && diff.ok && ampi.ok ? 0 : 1;
}
