// The full Particle-in-Cell cycle (paper §III-A) next to the PRK.
//
// Runs a real electrostatic simulation — two oppositely-drifting
// particle streams (the classic two-stream setup) — through the complete
// cycle: push → deposit (CIC) → Poisson solve (CG/SpMV) → gather. Prints
// per-phase timings and conservation diagnostics.
//
// The point of the printout: the mover ("the computational challenge of
// steps (1) and (4)") is the phase whose cost follows the particles, and
// hence the phase whose imbalance the PIC PRK isolates; deposition needs
// atomic updates (the Refcount PRK's pattern) and the solve is SpMV (the
// SpMV PRK's pattern) — exactly the paper's decomposition of the cycle.
//
//   ./mini_pic_cycle --cells 64 --particles 4000 --steps 50
#include <iostream>

#include "field/mini_pic.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace picprk;

  util::ArgParser args("mini_pic_cycle", "the full PIC cycle (§III-A) end to end");
  args.add_int("cells", 64, "mesh cells per dimension");
  args.add_int("particles", 4000, "particles per stream");
  args.add_int("steps", 50, "PIC cycles");
  args.add_double("dt", 0.1, "time step");
  args.add_double("drift", 1.0, "stream drift speed");
  if (!args.parse(argc, argv)) return 0;

  const auto cells = args.get_int("cells");
  const double length = static_cast<double>(cells);
  const auto n = static_cast<int>(args.get_int("particles"));

  // Two counter-streaming, overall-neutral particle populations.
  std::vector<pic::Particle> particles;
  util::SplitMix64 rng(0xBEEF);
  for (int i = 0; i < n; ++i) {
    pic::Particle a;
    a.x = rng.next_double() * length;
    a.y = rng.next_double() * length;
    a.vx = args.get_double("drift");
    a.q = 1.0;
    particles.push_back(a);
    pic::Particle b = a;
    b.x = rng.next_double() * length;
    b.y = rng.next_double() * length;
    b.vx = -args.get_double("drift");
    b.q = -1.0;
    particles.push_back(b);
  }

  field::MiniPicConfig cfg;
  cfg.grid = pic::GridSpec(cells, 1.0);
  cfg.dt = args.get_double("dt");
  field::MiniPic sim(cfg, std::move(particles));

  const auto steps = static_cast<std::uint32_t>(args.get_int("steps"));
  const auto initial = sim.diagnostics();

  std::cout << "two-stream setup: " << 2 * n << " particles on " << cells << "^2 cells, "
            << steps << " cycles\n\n";
  util::Table table({"step", "kinetic E", "field E", "total E", "CG iters"});
  util::Timer wall;
  for (std::uint32_t s = 1; s <= steps; ++s) {
    const auto d = sim.step();
    if (s % std::max(1u, steps / 10) == 0) {
      table.add_row({std::to_string(s), util::Table::fmt(d.kinetic_energy, 3),
                     util::Table::fmt(d.field_energy, 3),
                     util::Table::fmt(d.kinetic_energy + d.field_energy, 3),
                     std::to_string(d.cg_iterations)});
    }
  }
  const double seconds = wall.elapsed();
  table.print(std::cout);

  const auto final = sim.diagnostics();
  std::cout << "\n" << steps << " cycles in " << util::Table::fmt(seconds, 2)
            << " s\ncharge conserved: " << (final.total_charge == initial.total_charge
                                                ? "exactly"
                                                : "NO")
            << "\nmomentum drift: x "
            << util::Table::fmt(final.momentum_x - initial.momentum_x, 6) << ", y "
            << util::Table::fmt(final.momentum_y - initial.momentum_y, 6)
            << "\n\nThe PIC PRK isolates the push/gather phase of this cycle (its cost\n"
               "follows the particles); deposition and the CG solve are the patterns\n"
               "of the Refcount and SpMV PRKs respectively (paper §III-A).\n";
  return 0;
}
