#!/usr/bin/env bash
# Runs picprk-lint over the project sources, building the tool first if
# the build tree doesn't have it yet.
#
#   tools/run_lint.sh [build-dir] [picprk-lint args ...]
#
# Default build dir: build/. With no extra args, lints src/ under every
# rule with the project include root — the same invocation as the
# lint.tree ctest entry and the CI lint step. Extra args are passed
# through, so `tools/run_lint.sh build --rule determinism src/lb` or
# `tools/run_lint.sh build --gha src` work as expected.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift $(( $# > 0 ? 1 : 0 ))

lint_bin="${build_dir}/tools/picprk-lint"
if [ ! -x "${lint_bin}" ]; then
  echo "run_lint.sh: building picprk-lint in ${build_dir}" >&2
  cmake -B "${build_dir}" -S "${repo_root}" >/dev/null || exit 2
  cmake --build "${build_dir}" --target picprk-lint -j >/dev/null || exit 2
fi

if [ "$#" -gt 0 ]; then
  exec "${lint_bin}" "$@"
fi
exec "${lint_bin}" --include-root "${repo_root}/src" "${repo_root}/src"
