// picprk-lint: project-specific invariant checks the compiler cannot
// express (docs/STATIC_ANALYSIS.md). Runs as a ctest over src/ and over
// pass/fail fixtures in tests/lint/. Rules:
//
//   hot      PICPRK_HOT function bodies contain no allocation, container
//            growth, fmod or throw tokens — the PR 2 hot-path guarantees
//            as build failures instead of benchmark folklore.
//   pup      every data member of a pup()-able class is either pupped or
//            explicitly tagged `// pup:transient` — un-PUP'ed state is
//            how buddy-checkpoint restarts silently corrupt.
//   tags     user-facing message tags come from the registry in
//            comm/message.hpp: no literal tags at call sites, no tag
//            constants defined elsewhere — tag collisions between
//            subsystems become impossible.
//   headers  headers are self-contained: #pragma once, every project
//            #include resolves, and every spelled std:: vocabulary type
//            has its own direct #include (include-what-you-spell).
//   obs      PICPRK_HOT function bodies never register telemetry
//            instruments (obs::Registry::register_*): registration
//            allocates and takes a mutex, so it belongs at setup; hot
//            code records through pre-registered handles only.
//   lb       lb::Strategy decision bodies (rebalance_bounds /
//            rebalance_placement definitions) are pure: no RNG, no
//            clocks, no environment reads, no communication. Every
//            rank must replay the identical plan from the identical
//            (allreduced) input — a single clock read inside a decision
//            desynchronises the replicated strategy state forever.
//   soa      PICPRK_HOT function bodies operate on the SoA particle
//            store: no layout conversion (to_aos / to_soa — an O(n)
//            copy hidden in a hot path) and no loops over AoS Particle
//            records (the wire form exists for communication
//            boundaries; compute kernels read columns).
//
// The checker is deliberately textual (comment/string-stripped token
// scanning, not a C++ parser): it is fast, has zero dependencies, and
// the conventions it enforces are written so that textual matching is
// exact enough. False positives are handled by fixing the code to be
// more explicit, which is the point.
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct SourceFile {
  fs::path path;
  std::string raw;    ///< original text
  std::string clean;  ///< comments and string/char literals blanked, same length
  std::vector<std::size_t> line_starts;

  int line_of(std::size_t offset) const {
    auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
    return static_cast<int>(it - line_starts.begin());
  }

  std::string_view raw_line(int line) const {
    const std::size_t begin = line_starts[static_cast<std::size_t>(line - 1)];
    const std::size_t end = static_cast<std::size_t>(line) < line_starts.size()
                                ? line_starts[static_cast<std::size_t>(line)]
                                : raw.size();
    return std::string_view(raw).substr(begin, end - begin);
  }

  bool is_header() const { return path.extension() == ".hpp" || path.extension() == ".h"; }
};

struct Violation {
  fs::path file;
  int line;
  std::string rule;
  std::string message;
};

bool is_word(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Blanks comments and string/char literals with spaces (newlines kept so
/// offsets and line numbers survive).
std::string strip_comments_and_strings(const std::string& s) {
  std::string out = s;
  enum class State { Code, Line, Block, Str, Chr } st = State::Code;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    switch (st) {
      case State::Code:
        if (c == '/' && next == '/') {
          st = State::Line;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = State::Block;
          out[i] = ' ';
        } else if (c == '"') {
          st = State::Str;  // keep the quote so call-arg splitting sees a token
        } else if (c == '\'' && i > 0 && !is_word(s[i - 1])) {
          st = State::Chr;  // skip digit separators like 1'000'000
        }
        break;
      case State::Line:
        if (c == '\n') {
          st = State::Code;
        } else {
          out[i] = ' ';
        }
        break;
      case State::Block:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::Str:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < s.size() && s[i + 1] != '\n') out[++i] = ' ';
        } else if (c == '"') {
          st = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::Chr:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < s.size() && s[i + 1] != '\n') out[++i] = ' ';
        } else if (c == '\'') {
          st = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

/// Finds `token` as a whole word in `text` at or after `from`; npos if absent.
std::size_t find_word(std::string_view text, std::string_view token, std::size_t from) {
  for (std::size_t pos = text.find(token, from); pos != std::string_view::npos;
       pos = text.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !is_word(text[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !is_word(text[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string_view::npos;
}

bool contains_word(std::string_view text, std::string_view token) {
  return find_word(text, token, 0) != std::string_view::npos;
}

/// Offset of the matching close for the open bracket at `open` (clean
/// text); npos if unbalanced. Handles one bracket kind at a time.
std::size_t matching(std::string_view text, std::size_t open, char oc, char cc) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == oc) ++depth;
    if (text[i] == cc && --depth == 0) return i;
  }
  return std::string_view::npos;
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

/// Splits a balanced argument list body on top-level commas.
std::vector<std::string> split_args(std::string_view body) {
  std::vector<std::string> args;
  int paren = 0, angle = 0, brace = 0, bracket = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < body.size(); ++i) {
    switch (body[i]) {
      case '(': ++paren; break;
      case ')': --paren; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      case '<': ++angle; break;
      case '>': if (angle > 0) --angle; break;
      case ',':
        if (paren == 0 && brace == 0 && bracket == 0 && angle == 0) {
          args.push_back(trim(body.substr(start, i - start)));
          start = i + 1;
        }
        break;
      default: break;
    }
  }
  const std::string last = trim(body.substr(start));
  if (!last.empty() || !args.empty()) args.push_back(last);
  return args;
}

std::string last_identifier(std::string_view s) {
  std::size_t e = s.size();
  while (e > 0 && !is_word(s[e - 1])) --e;
  std::size_t b = e;
  while (b > 0 && is_word(s[b - 1])) --b;
  return std::string(s.substr(b, e - b));
}

// ------------------------------------------------------------- rule: hot

const char* const kHotBanned[] = {
    "new",       "delete",    "malloc",       "calloc",       "realloc",
    "fmod",      "throw",     "push_back",    "emplace_back", "resize",
    "reserve",   "insert",    "to_string",    "ostringstream", "stringstream",
    "printf",    "string",
};

void check_hot(const SourceFile& f, std::vector<Violation>& out) {
  const std::string_view clean = f.clean;
  for (std::size_t pos = find_word(clean, "PICPRK_HOT", 0);
       pos != std::string_view::npos; pos = find_word(clean, "PICPRK_HOT", pos + 1)) {
    // Skip the macro's own definition.
    const std::string_view line = f.raw_line(f.line_of(pos));
    if (line.find("#define") != std::string_view::npos) continue;
    // Find the function body: the first top-level '{' before any ';'
    // (a ';' first means declaration-only, nothing to check).
    std::size_t brace = std::string_view::npos;
    for (std::size_t i = pos; i < clean.size(); ++i) {
      if (clean[i] == ';') break;
      if (clean[i] == '{') {
        brace = i;
        break;
      }
    }
    if (brace == std::string_view::npos) continue;
    const std::size_t close = matching(clean, brace, '{', '}');
    if (close == std::string_view::npos) {
      out.push_back({f.path, f.line_of(pos), "hot", "unbalanced braces after PICPRK_HOT"});
      continue;
    }
    const std::string_view body = clean.substr(brace, close - brace + 1);
    for (const char* banned : kHotBanned) {
      const std::size_t hit = find_word(body, banned, 0);
      if (hit != std::string_view::npos) {
        out.push_back({f.path, f.line_of(brace + hit), "hot",
                       std::string("banned token '") + banned +
                           "' in a PICPRK_HOT function body (hot paths are "
                           "allocation-, fmod- and throw-free)"});
      }
    }
  }
}

// ------------------------------------------------------------- rule: obs

const char* const kObsBanned[] = {
    "register_counter",
    "register_gauge",
    "register_histogram",
};

/// Registration (mutex + allocation) inside a PICPRK_HOT body defeats
/// the obs design contract: instruments are registered at setup and hot
/// code only touches the returned handles (relaxed atomics).
void check_obs(const SourceFile& f, std::vector<Violation>& out) {
  const std::string_view clean = f.clean;
  for (std::size_t pos = find_word(clean, "PICPRK_HOT", 0);
       pos != std::string_view::npos; pos = find_word(clean, "PICPRK_HOT", pos + 1)) {
    const std::string_view line = f.raw_line(f.line_of(pos));
    if (line.find("#define") != std::string_view::npos) continue;
    std::size_t brace = std::string_view::npos;
    for (std::size_t i = pos; i < clean.size(); ++i) {
      if (clean[i] == ';') break;
      if (clean[i] == '{') {
        brace = i;
        break;
      }
    }
    if (brace == std::string_view::npos) continue;
    const std::size_t close = matching(clean, brace, '{', '}');
    if (close == std::string_view::npos) continue;  // `hot` already reports this
    const std::string_view body = clean.substr(brace, close - brace + 1);
    for (const char* banned : kObsBanned) {
      const std::size_t hit = find_word(body, banned, 0);
      if (hit != std::string_view::npos) {
        out.push_back({f.path, f.line_of(brace + hit), "obs",
                       std::string("'") + banned +
                           "' in a PICPRK_HOT function body — instrument "
                           "registration allocates and locks; register at setup "
                           "and record through the returned handle"});
      }
    }
  }
}

// -------------------------------------------------------------- rule: lb

/// Whole-word identifiers banned inside a decision body.
const char* const kLbBannedWords[] = {
    "rand",         "srand",        "random_device", "mt19937",
    "getenv",       "steady_clock", "system_clock",  "high_resolution_clock",
    "clock_gettime", "time",        "thread",
};

/// Substring tokens banned inside a decision body (identifier-prefix or
/// member-call shapes a whole-word match cannot express).
const char* const kLbBannedSubstrings[] = {
    "allreduce", "comm::", ".send(", ".recv", ".sendrecv(", ".probe(",
};

/// Enforces the lb::Strategy purity contract: the bodies of
/// rebalance_bounds / rebalance_placement *definitions* must be pure
/// functions of their input. State mutation belongs in note_applied(),
/// which the drivers feed only with allreduced values.
void check_lb(const SourceFile& f, std::vector<Violation>& out) {
  const std::string_view clean = f.clean;
  for (const char* fn : {"rebalance_bounds", "rebalance_placement"}) {
    for (std::size_t pos = find_word(clean, fn, 0); pos != std::string_view::npos;
         pos = find_word(clean, fn, pos + 1)) {
      // The parameter list must follow directly.
      std::size_t open = pos + std::string_view(fn).size();
      while (open < clean.size() &&
             std::isspace(static_cast<unsigned char>(clean[open]))) {
        ++open;
      }
      if (open >= clean.size() || clean[open] != '(') continue;
      const std::size_t args_close = matching(clean, open, '(', ')');
      if (args_close == std::string_view::npos) continue;
      // Definition, not declaration or call site: a body '{' appears
      // after the parameter list before any ';' or '=' (declarations
      // end in ';', pure-virtuals in '= 0;', call sites in ';' or ',').
      std::size_t brace = std::string_view::npos;
      for (std::size_t i = args_close + 1; i < clean.size(); ++i) {
        if (clean[i] == ';' || clean[i] == '=' || clean[i] == ',' ||
            clean[i] == ')') {
          break;
        }
        if (clean[i] == '{') {
          brace = i;
          break;
        }
      }
      if (brace == std::string_view::npos) continue;
      const std::size_t close = matching(clean, brace, '{', '}');
      if (close == std::string_view::npos) {
        out.push_back({f.path, f.line_of(pos), "lb",
                       std::string("unbalanced braces after ") + fn});
        continue;
      }
      const std::string_view body = clean.substr(brace, close - brace + 1);
      for (const char* banned : kLbBannedWords) {
        const std::size_t hit = find_word(body, banned, 0);
        if (hit != std::string_view::npos) {
          out.push_back({f.path, f.line_of(brace + hit), "lb",
                         std::string("banned token '") + banned + "' in a " + fn +
                             " body — decisions are pure functions of their "
                             "input; every rank must replay the identical plan"});
        }
      }
      for (const char* banned : kLbBannedSubstrings) {
        const std::size_t hit = body.find(banned);
        if (hit != std::string_view::npos) {
          out.push_back({f.path, f.line_of(brace + hit), "lb",
                         std::string("communication token '") + banned +
                             "' in a " + fn +
                             " body — decisions see only pre-aggregated "
                             "loads, they never talk to the runtime"});
        }
      }
    }
  }
}

// ------------------------------------------------------------- rule: soa

/// Layout-conversion helpers: each hides an O(n) copy of the whole
/// particle population. Fine at setup/checkpoint/verify boundaries,
/// never inside a hot kernel.
const char* const kSoaBannedWords[] = {"to_aos", "to_soa"};

/// Enforces the SoA compute contract: hot kernels read the columnar
/// store. A `for (... Particle ...)` loop in a hot body means someone
/// re-introduced per-record AoS traversal (one cache line per particle
/// touched for every attribute, and no vectorization).
void check_soa(const SourceFile& f, std::vector<Violation>& out) {
  const std::string_view clean = f.clean;
  for (std::size_t pos = find_word(clean, "PICPRK_HOT", 0);
       pos != std::string_view::npos; pos = find_word(clean, "PICPRK_HOT", pos + 1)) {
    const std::string_view line = f.raw_line(f.line_of(pos));
    if (line.find("#define") != std::string_view::npos) continue;
    std::size_t brace = std::string_view::npos;
    for (std::size_t i = pos; i < clean.size(); ++i) {
      if (clean[i] == ';') break;
      if (clean[i] == '{') {
        brace = i;
        break;
      }
    }
    if (brace == std::string_view::npos) continue;
    const std::size_t close = matching(clean, brace, '{', '}');
    if (close == std::string_view::npos) continue;  // `hot` already reports this
    const std::string_view body = clean.substr(brace, close - brace + 1);
    for (const char* banned : kSoaBannedWords) {
      const std::size_t hit = find_word(body, banned, 0);
      if (hit != std::string_view::npos) {
        out.push_back({f.path, f.line_of(brace + hit), "soa",
                       std::string("'") + banned +
                           "' in a PICPRK_HOT function body — layout "
                           "conversion is an O(n) copy; hot kernels operate "
                           "on the SoA store directly"});
      }
    }
    // Loops whose header names the AoS record: `for (const Particle& p
    // : v)` and friends. Whole-word matching keeps ParticleSoA legal.
    for (std::size_t fp = find_word(body, "for", 0); fp != std::string_view::npos;
         fp = find_word(body, "for", fp + 1)) {
      std::size_t open = fp + 3;
      while (open < body.size() && std::isspace(static_cast<unsigned char>(body[open]))) ++open;
      if (open >= body.size() || body[open] != '(') continue;
      const std::size_t head_close = matching(body, open, '(', ')');
      if (head_close == std::string_view::npos) continue;
      const std::string_view head = body.substr(open, head_close - open + 1);
      const std::size_t hit = find_word(head, "Particle", 0);
      if (hit != std::string_view::npos) {
        out.push_back({f.path, f.line_of(brace + open + hit), "soa",
                       "loop over AoS Particle records in a PICPRK_HOT "
                       "function body — the wire form is for communication "
                       "boundaries; compute kernels read SoA columns"});
      }
    }
  }
}

// ------------------------------------------------------------- rule: pup

struct PupClass {
  std::string name;
  const SourceFile* file;
  std::size_t body_begin, body_end;  ///< offsets of '{' and '}' in clean
  std::string pup_body;              ///< empty if declared out-of-line
  bool has_pup = false;
};

/// Collects struct/class bodies that declare `void pup(` directly.
void collect_pup_classes(const SourceFile& f, std::vector<PupClass>& out) {
  const std::string_view clean = f.clean;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    std::size_t kw = find_word(clean, "struct", i);
    const std::size_t kw2 = find_word(clean, "class", i);
    if (kw2 < kw) kw = kw2;
    if (kw == std::string_view::npos) return;
    i = kw;  // continue scanning after this keyword next iteration
    // Reject `enum class` and template parameters `<class T>`.
    std::size_t before = kw;
    while (before > 0 && std::isspace(static_cast<unsigned char>(clean[before - 1]))) --before;
    if (before > 0 && (clean[before - 1] == '<' || clean[before - 1] == ',')) continue;
    if (before >= 4 && clean.substr(before - 4, 4) == "enum") continue;
    // Name, then body brace before any ';' (forward declarations skip).
    std::size_t p = kw + (clean[kw] == 's' ? 6 : 5);
    while (p < clean.size() && std::isspace(static_cast<unsigned char>(clean[p]))) ++p;
    std::size_t name_end = p;
    while (name_end < clean.size() && is_word(clean[name_end])) ++name_end;
    if (name_end == p) continue;  // anonymous
    const std::string name(clean.substr(p, name_end - p));
    std::size_t brace = std::string_view::npos;
    for (std::size_t j = name_end; j < clean.size(); ++j) {
      if (clean[j] == ';' || clean[j] == '(') break;  // fwd decl or constructor-ish
      if (clean[j] == '{') {
        brace = j;
        break;
      }
    }
    if (brace == std::string_view::npos) continue;
    const std::size_t close = matching(clean, brace, '{', '}');
    if (close == std::string_view::npos) continue;

    PupClass pc{name, &f, brace, close, {}, false};
    // Find a direct `void pup(` member (depth 1 inside the body).
    const std::string_view body = clean.substr(brace, close - brace + 1);
    for (std::size_t pp = body.find("void pup("); pp != std::string_view::npos;
         pp = body.find("void pup(", pp + 1)) {
      int depth = 0;
      for (std::size_t k = 0; k < pp; ++k) {
        if (body[k] == '{') ++depth;
        if (body[k] == '}') --depth;
      }
      if (depth != 1) continue;
      const std::size_t args_open = brace + pp + 8;  // '(' of pup(
      const std::size_t args_close = matching(clean, args_open, '(', ')');
      if (args_close == std::string_view::npos) break;
      std::size_t after = args_close + 1;
      // Skip qualifiers (override, final, const) up to '{', ';' or '='.
      while (after < close && clean[after] != '{' && clean[after] != ';' &&
             clean[after] != '=') {
        ++after;
      }
      if (after >= close) break;
      if (clean[after] == '=') break;  // pure virtual `= 0`: interface, skip
      pc.has_pup = true;
      if (clean[after] == '{') {
        const std::size_t pup_close = matching(clean, after, '{', '}');
        if (pup_close != std::string_view::npos)
          pc.pup_body = std::string(clean.substr(after, pup_close - after + 1));
      }
      break;
    }
    if (pc.has_pup) out.push_back(std::move(pc));
  }
}

/// Member variable names declared at the top level of a class body.
std::vector<std::pair<std::string, int>> member_names(const PupClass& pc) {
  std::vector<std::pair<std::string, int>> members;
  const std::string_view clean = pc.file->clean;
  const std::size_t begin = pc.body_begin + 1;
  int depth = 0;
  std::size_t stmt_start = begin;
  for (std::size_t i = begin; i < pc.body_end; ++i) {
    const char c = clean[i];
    if (c == '{' || c == '(') ++depth;
    if (c == '}' || c == ')') --depth;
    if (depth < 0) break;
    if (depth == 0 && (c == ';' || c == '}')) {
      std::string stmt = trim(clean.substr(stmt_start, i - stmt_start));
      stmt_start = i + 1;
      // Strip a leading access specifier.
      for (const char* spec : {"public:", "private:", "protected:"}) {
        if (stmt.rfind(spec, 0) == 0) stmt = trim(std::string_view(stmt).substr(std::string(spec).size()));
      }
      if (stmt.empty()) continue;
      if (c == '}') continue;  // function/aggregate body end, not a member
      // Skip non-member statements.
      bool skip = false;
      for (const char* kw : {"using", "typedef", "friend", "static", "constexpr",
                             "enum", "template", "struct", "class", "union"}) {
        if (stmt.rfind(kw, 0) == 0 && (stmt.size() == std::string(kw).size() ||
                                       !is_word(stmt[std::string(kw).size()]))) {
          skip = true;
          break;
        }
      }
      if (skip) continue;
      // Function declarations: the last ')' is followed only by
      // qualifiers; data members never contain a top-of-decl '('
      // except in the initializer, which we cut first.
      std::string decl = stmt;
      const std::size_t eq = decl.find('=');
      if (eq != std::string::npos) decl = trim(std::string_view(decl).substr(0, eq));
      const std::size_t brace_init = decl.find('{');
      if (brace_init != std::string::npos)
        decl = trim(std::string_view(decl).substr(0, brace_init));
      if (decl.empty()) continue;
      if (decl.back() == ')' || decl.find(") const") != std::string::npos ||
          contains_word(decl, "override") || contains_word(decl, "noexcept")) {
        continue;  // member function
      }
      // Arrays: strip trailing [N].
      const std::size_t bracket = decl.find('[');
      if (bracket != std::string::npos) decl = trim(std::string_view(decl).substr(0, bracket));
      const std::string name = last_identifier(decl);
      if (name.empty() || name == "const" || name == "default" || name == "delete")
        continue;
      // A lone identifier can't be both type and name.
      if (name.size() == decl.size()) continue;
      members.emplace_back(name, pc.file->line_of(stmt_start - 1));
    }
  }
  return members;
}

void check_pup(const std::vector<SourceFile>& files, std::vector<Violation>& out) {
  std::vector<PupClass> classes;
  for (const auto& f : files) collect_pup_classes(f, classes);
  for (auto& pc : classes) {
    std::string pup_body = pc.pup_body;
    if (pup_body.empty()) {
      // Out-of-line definition: ClassName::pup( ... ) { ... } anywhere.
      const std::string needle = pc.name + "::pup(";
      for (const auto& f : files) {
        const std::size_t pos = f.clean.find(needle);
        if (pos == std::string::npos) continue;
        const std::size_t brace = f.clean.find('{', pos);
        if (brace == std::string::npos) continue;
        const std::size_t close = matching(f.clean, brace, '{', '}');
        if (close == std::string::npos) continue;
        pup_body = f.clean.substr(brace, close - brace + 1);
        break;
      }
      if (pup_body.empty()) {
        out.push_back({pc.file->path, pc.file->line_of(pc.body_begin), "pup",
                       "class " + pc.name +
                           " declares pup() but no definition was found in the "
                           "scanned files"});
        continue;
      }
    }
    for (const auto& [member, line] : member_names(pc)) {
      if (contains_word(pup_body, member)) continue;
      // `// pup:transient` on the declaration line opts a member out.
      if (pc.file->raw_line(line).find("pup:transient") != std::string_view::npos)
        continue;
      out.push_back({pc.file->path, line, "pup",
                     pc.name + "::" + member +
                         " is neither serialized in pup() nor tagged "
                         "'// pup:transient' — a checkpoint restore would "
                         "silently lose it"});
    }
  }
}

// ------------------------------------------------------------ rule: tags

bool is_tag_name(std::string_view s) {
  return s.size() > 4 && s[0] == 'k' &&
         std::isupper(static_cast<unsigned char>(s[1])) &&
         s.substr(s.size() - 3) == "Tag";
}

void check_tags(const std::vector<SourceFile>& files, std::vector<Violation>& out) {
  // Registry: k...Tag constants defined in a file named message.hpp.
  std::set<std::string> registry;
  registry.insert("kAnyTag");
  for (const auto& f : files) {
    const bool is_registry = f.path.filename() == "message.hpp";
    for (std::size_t pos = find_word(f.clean, "constexpr", 0);
         pos != std::string::npos; pos = find_word(f.clean, "constexpr", pos + 1)) {
      const std::size_t eol = f.clean.find_first_of("=;\n", pos);
      const std::string decl(std::string_view(f.clean).substr(pos, eol - pos));
      const std::string name = last_identifier(decl);
      if (!is_tag_name(name)) continue;
      if (is_registry) {
        registry.insert(name);
      } else {
        out.push_back({f.path, f.line_of(pos), "tags",
                       "tag constant " + name +
                           " defined outside the registry (comm/message.hpp) — "
                           "scattered tags are how subsystems collide"});
      }
    }
  }

  // Call sites: the tag argument must be a registry constant (or a
  // forwarded `tag` variable inside generic plumbing).
  struct Method {
    const char* needle;
    int tag_index;    ///< 0-based position of the tag argument
    int min_args;     ///< skip calls with fewer args (a different API)
  };
  const Method methods[] = {
      {".send(", 2, 3},      {".send_value(", 2, 3}, {".send_buffer(", 2, 3},
      {".sendrecv(", 3, 4},  {".recv_into(", 2, 3},  {".probe(", 1, 2},
      {".iprobe(", 1, 2},    {".recv<", 1, 2},       {".recv_value<", 1, 2},
  };
  for (const auto& f : files) {
    const std::string dir = f.path.parent_path().filename().string();
    if (dir == "comm") continue;  // the runtime's own internals
    for (const auto& m : methods) {
      const std::string_view clean = f.clean;
      for (std::size_t pos = clean.find(m.needle); pos != std::string_view::npos;
           pos = clean.find(m.needle, pos + 1)) {
        std::size_t open = pos + std::string_view(m.needle).size() - 1;
        if (clean[open] == '<') {  // skip template argument list
          const std::size_t close_angle = matching(clean, open, '<', '>');
          if (close_angle == std::string_view::npos) continue;
          open = close_angle + 1;
          if (open >= clean.size() || clean[open] != '(') continue;
        }
        const std::size_t close = matching(clean, open, '(', ')');
        if (close == std::string_view::npos) continue;
        const auto args = split_args(clean.substr(open + 1, close - open - 1));
        if (static_cast<int>(args.size()) < m.min_args) continue;
        const std::string& arg = args[static_cast<std::size_t>(m.tag_index)];
        const std::string name = last_identifier(arg);
        const bool qualified_only = name.size() == arg.size() ||
                                    arg.find('(') == std::string::npos;
        if (is_tag_name(name) && qualified_only) {
          if (registry.count(name) == 0) {
            out.push_back({f.path, f.line_of(pos), "tags",
                           "tag " + name + " is not defined in comm/message.hpp"});
          }
          continue;
        }
        if (name == "kAnyTag" || name == "tag") continue;
        out.push_back({f.path, f.line_of(pos), "tags",
                       "tag argument '" + arg +
                           "' is not a named k...Tag constant from the "
                           "comm/message.hpp registry"});
      }
    }
  }
}

// --------------------------------------------------------- rule: headers

struct StdRequirement {
  const char* token;
  const char* header;
};

const StdRequirement kStdTokens[] = {
    {"std::vector", "vector"},
    {"std::deque", "deque"},
    {"std::string", "string"},
    {"std::array", "array"},
    {"std::optional", "optional"},
    {"std::span", "span"},
    {"std::function", "functional"},
    {"std::atomic", "atomic"},
    {"std::mutex", "mutex"},
    {"std::scoped_lock", "mutex"},
    {"std::unique_lock", "mutex"},
    {"std::lock_guard", "mutex"},
    {"std::condition_variable", "condition_variable"},
    {"std::thread", "thread"},
    {"std::chrono", "chrono"},
    {"std::byte", "cstddef"},
    {"std::size_t", "cstddef"},
    {"std::uint8_t", "cstdint"},
    {"std::uint16_t", "cstdint"},
    {"std::uint32_t", "cstdint"},
    {"std::uint64_t", "cstdint"},
    {"std::int8_t", "cstdint"},
    {"std::int16_t", "cstdint"},
    {"std::int32_t", "cstdint"},
    {"std::int64_t", "cstdint"},
    {"std::runtime_error", "stdexcept"},
    {"std::logic_error", "stdexcept"},
    {"std::out_of_range", "stdexcept"},
    {"std::exception_ptr", "exception"},
    {"std::current_exception", "exception"},
    {"std::rethrow_exception", "exception"},
    {"std::unordered_map", "unordered_map"},
    {"std::map", "map"},
    {"std::set", "set"},
    {"std::memcpy", "cstring"},
    {"std::memset", "cstring"},
    {"std::shared_ptr", "memory"},
    {"std::unique_ptr", "memory"},
    {"std::make_shared", "memory"},
    {"std::make_unique", "memory"},
    {"std::ostringstream", "sstream"},
    {"std::istringstream", "sstream"},
    {"std::stringstream", "sstream"},
};

void check_headers(const SourceFile& f, const std::vector<fs::path>& include_roots,
                   std::vector<Violation>& out) {
  if (!f.is_header()) return;
  // Searched in the stripped text so a comment *about* the guard (or a
  // string literal) cannot satisfy the rule.
  if (f.clean.find("#pragma once") == std::string::npos) {
    out.push_back({f.path, 1, "headers", "missing #pragma once"});
  }

  // Gather direct includes.
  std::set<std::string> angle_includes;
  std::vector<std::pair<std::string, int>> project_includes;
  std::istringstream is(f.raw);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t inc = line.find("#include");
    if (inc == std::string::npos) continue;
    const std::size_t a = line.find('<', inc);
    const std::size_t q = line.find('"', inc);
    if (a != std::string::npos && (q == std::string::npos || a < q)) {
      const std::size_t b = line.find('>', a);
      if (b != std::string::npos) angle_includes.insert(line.substr(a + 1, b - a - 1));
    } else if (q != std::string::npos) {
      const std::size_t b = line.find('"', q + 1);
      if (b != std::string::npos)
        project_includes.emplace_back(line.substr(q + 1, b - q - 1), lineno);
    }
  }

  // Project includes must resolve against an include root (or the file's
  // own directory, for fixture trees).
  for (const auto& [inc, at] : project_includes) {
    bool found = fs::exists(f.path.parent_path() / inc);
    for (const auto& root : include_roots) {
      if (found) break;
      found = fs::exists(root / inc);
    }
    if (!found) {
      out.push_back({f.path, at, "headers",
                     "project include \"" + inc + "\" does not resolve"});
    }
  }

  // Include-what-you-spell for std vocabulary types.
  for (const auto& req : kStdTokens) {
    if (angle_includes.count(req.header)) continue;
    const std::size_t pos = find_word(f.clean, req.token, 0);
    if (pos == std::string::npos) continue;
    out.push_back({f.path, f.line_of(pos), "headers",
                   std::string("uses ") + req.token + " but does not include <" +
                       req.header + "> directly (include-what-you-spell)"});
  }
}

// ------------------------------------------------------------------ main

void collect_files(const fs::path& p, std::vector<fs::path>& out) {
  if (fs::is_directory(p)) {
    for (const auto& e : fs::recursive_directory_iterator(p)) {
      if (!e.is_regular_file()) continue;
      const auto ext = e.path().extension();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h") out.push_back(e.path());
    }
  } else if (fs::exists(p)) {
    out.push_back(p);
  } else {
    throw std::runtime_error("no such path: " + p.string());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::set<std::string> rules = {"hot", "pup", "tags", "headers", "obs", "lb", "soa"};
  std::set<std::string> enabled;
  std::vector<fs::path> include_roots;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rule") {
      if (++i >= argc || rules.count(argv[i]) == 0) {
        std::cerr << "picprk-lint: --rule needs one of: hot pup tags headers obs lb soa\n";
        return 2;
      }
      enabled.insert(argv[i]);
    } else if (arg == "--include-root") {
      if (++i >= argc) {
        std::cerr << "picprk-lint: --include-root needs a directory\n";
        return 2;
      }
      include_roots.emplace_back(argv[i]);
    } else if (arg == "--list-rules") {
      for (const auto& r : rules) std::cout << r << '\n';
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "picprk-lint: unknown option " << arg << "\n"
                << "usage: picprk-lint [--rule R]... [--include-root DIR] PATH...\n";
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "usage: picprk-lint [--rule R]... [--include-root DIR] PATH...\n";
    return 2;
  }
  if (enabled.empty()) enabled = rules;

  std::vector<fs::path> paths;
  try {
    for (const auto& p : inputs) collect_files(p, paths);
  } catch (const std::exception& e) {
    std::cerr << "picprk-lint: " << e.what() << '\n';
    return 2;
  }
  std::sort(paths.begin(), paths.end());
  if (include_roots.empty()) {
    // Default: treat each scanned directory input as an include root.
    for (const auto& p : inputs) {
      if (fs::is_directory(p)) include_roots.push_back(p);
    }
  }

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const auto& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "picprk-lint: cannot read " << p << '\n';
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    SourceFile f;
    f.path = p;
    f.raw = ss.str();
    f.clean = strip_comments_and_strings(f.raw);
    f.line_starts.push_back(0);
    for (std::size_t i = 0; i < f.raw.size(); ++i) {
      if (f.raw[i] == '\n') f.line_starts.push_back(i + 1);
    }
    files.push_back(std::move(f));
  }

  std::vector<Violation> violations;
  for (const auto& f : files) {
    if (enabled.count("hot")) check_hot(f, violations);
    if (enabled.count("obs")) check_obs(f, violations);
    if (enabled.count("lb")) check_lb(f, violations);
    if (enabled.count("soa")) check_soa(f, violations);
    if (enabled.count("headers")) check_headers(f, include_roots, violations);
  }
  if (enabled.count("pup")) check_pup(files, violations);
  if (enabled.count("tags")) check_tags(files, violations);

  std::sort(violations.begin(), violations.end(), [](const auto& a, const auto& b) {
    return std::tie(a.file, a.line) < std::tie(b.file, b.line);
  });
  for (const auto& v : violations) {
    std::cout << v.file.string() << ':' << v.line << ": [" << v.rule << "] "
              << v.message << '\n';
  }
  if (!violations.empty()) {
    std::cout << violations.size() << " violation(s)\n";
    return 1;
  }
  return 0;
}
