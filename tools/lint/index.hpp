// picprk-lint v2 analysis core, stage 2: the symbol index and the
// project-wide call graph.
//
// The indexer is a single forward pass over each file's token stream
// with a scope stack (namespace / class / function). It is a heuristic
// recognizer, not a C++ parser: it finds the constructs the rules need
// — function definitions (free, member, out-of-line member), class
// bodies with their data members, mutex declarations — and for every
// function body records the call sites, lock-acquisition sites and
// PICPRK_* annotations inside it. The call graph resolves call sites to
// indexed definitions by simple name (an over-approximation: a call may
// resolve to several same-named definitions; rules that walk the graph
// treat every resolution as reachable).
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "lint/lexer.hpp"

namespace picprk::lint {

struct SourceFile {
  std::filesystem::path path;
  std::string text;
  LexResult lx;

  bool is_header() const {
    return path.extension() == ".hpp" || path.extension() == ".h";
  }
  /// All comments that start or end on `line` (block comments count on
  /// both their first and last line).
  std::vector<const Comment*> comments_on_line(int line) const;
};

/// A call site inside a function body: `name(...)`, `recv<T>(...)`,
/// `obj.name(...)` or `obj->name(...)`.
struct CallSite {
  std::string name;
  std::string receiver;  ///< last identifier before . or ->; empty for free calls
  std::size_t tok = 0;   ///< token index of the callee identifier
  int line = 0;
  bool member = false;   ///< preceded by . or ->
};

/// A scoped lock-acquisition site: util::LockGuard (or std lock_guard /
/// scoped_lock / unique_lock) constructed over a mutex expression.
struct GuardSite {
  std::string arg;       ///< last identifier of the first constructor argument
  std::size_t tok = 0;   ///< token index of the guard type name
  int line = 0;
  int depth = 0;         ///< brace depth inside the body where it was declared
};

struct FunctionDef {
  std::string name;        ///< simple name ("pup", "rebalance_bounds", ...)
  std::string class_name;  ///< innermost class (inline or out-of-line); "" = free
  std::string qualified;   ///< ns::Class::name as spelled at the definition
  int file_index = -1;
  std::size_t name_tok = 0;
  std::size_t body_begin = 0;  ///< token index of '{'
  std::size_t body_end = 0;    ///< token index of the matching '}'
  int line = 0;
  bool is_hot = false;                       ///< carries PICPRK_HOT
  std::vector<std::string> attrs;            ///< all PICPRK_* attribute names seen
  std::vector<std::string> held_on_entry;    ///< PICPRK_REQUIRES/ACQUIRE arguments
  std::vector<CallSite> calls;
  std::vector<GuardSite> guards;
};

struct MemberVar {
  std::string name;
  int line = 0;
};

struct ClassDef {
  std::string name;
  std::string qualified;
  int file_index = -1;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  int line = 0;
  /// A non-pure `void pup(...)` member declaration or definition.
  bool declares_pup = false;
  std::vector<MemberVar> members;
};

/// A mutex-typed declaration (util::Mutex / std::mutex member or global).
struct MutexDecl {
  std::string class_name;  ///< "" for namespace scope
  std::string member;
  int file_index = -1;
  int line = 0;
};

struct Index {
  std::vector<SourceFile> files;
  std::vector<FunctionDef> functions;
  std::vector<ClassDef> classes;
  std::vector<MutexDecl> mutexes;
  /// simple name -> indices into `functions`
  std::unordered_map<std::string, std::vector<std::size_t>> functions_by_name;

  const SourceFile& file_of(const FunctionDef& fn) const {
    return files[static_cast<std::size_t>(fn.file_index)];
  }
};

/// Lexes and indexes every file. Takes ownership of the file list.
Index build_index(std::vector<SourceFile> files);

/// Call edges resolved by simple name: callees[i] lists the indices of
/// every indexed definition any call in functions[i] may reach.
struct CallGraph {
  std::vector<std::vector<std::size_t>> callees;
};

CallGraph build_call_graph(const Index& index);

/// True for member-function names that collide with the std container /
/// string / smart-pointer vocabulary (`size`, `pop`, `insert`, ...).
/// Such call sites are ambiguous by construction under simple-name
/// resolution, so the call graph does not resolve them to project
/// definitions; graph-walking rules accept the precision over recall.
bool ambiguous_std_method(const std::string& name);

/// Token-level matcher: index of the token closing the bracket opened at
/// `open` ("(", "{", "[") in `toks`; npos when unbalanced.
std::size_t match_bracket(const std::vector<Token>& toks, std::size_t open);

}  // namespace picprk::lint
