// picprk-lint v2 output back-ends: plain text, one-JSON-object-per-line
// (machine-readable findings for CI post-processing), SARIF 2.1.0, and
// GitHub Actions ::error annotations.
#pragma once

#include <ostream>
#include <vector>

#include "lint/rules.hpp"

namespace picprk::lint {

void report_text(const std::vector<Violation>& vs, std::ostream& os);
void report_json(const std::vector<Violation>& vs, std::ostream& os);
void report_gha(const std::vector<Violation>& vs, std::ostream& os);
void report_sarif(const std::vector<Violation>& vs, std::ostream& os);

}  // namespace picprk::lint
