#include "lint/index.hpp"

#include <algorithm>
#include <set>

namespace picprk::lint {

namespace {

bool is_ident(const Token& t) { return t.kind == TokKind::kIdentifier; }
bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool is_word(const Token& t, const char* s) {
  return t.kind == TokKind::kIdentifier && t.text == s;
}

bool is_guard_type(const std::string& s) {
  return s == "LockGuard" || s == "lock_guard" || s == "scoped_lock" ||
         s == "unique_lock";
}

bool is_attr_macro(const std::string& s) {
  return s.rfind("PICPRK_", 0) == 0;
}

/// Matches a template argument list opened at `open` (`<`). Fails (npos)
/// when the angle run looks like a comparison: hits a statement
/// boundary, an unbalanced closer, or runs too long.
std::size_t match_angle(const std::vector<Token>& toks, std::size_t open) {
  int angle = 0;
  int paren = 0;
  for (std::size_t i = open; i < toks.size() && i < open + 64; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(" || t.text == "[") ++paren;
    if (t.text == ")" || t.text == "]") {
      if (--paren < 0) return std::string::npos;
    }
    if (paren > 0) continue;
    if (t.text == "<") ++angle;
    if (t.text == "<<") return std::string::npos;
    if (t.text == ">") {
      if (--angle == 0) return i;
    }
    if (t.text == ">>") {
      angle -= 2;
      if (angle <= 0) return i;  // close of a nested template: treat as done
    }
    if (t.text == ";" || t.text == "{" || t.text == "}") return std::string::npos;
  }
  return std::string::npos;
}

/// Last identifier within [begin, end).
std::string last_identifier(const std::vector<Token>& toks, std::size_t begin,
                            std::size_t end) {
  for (std::size_t i = end; i > begin; --i) {
    if (is_ident(toks[i - 1]) && !is_keyword(toks[i - 1].text))
      return toks[i - 1].text;
  }
  return {};
}

struct Scanner {
  Index& out;
  int file_index;
  const std::vector<Token>& t;

  Scanner(Index& index, int fi)
      : out(index), file_index(fi),
        t(index.files[static_cast<std::size_t>(fi)].lx.tokens) {}

  // ------------------------------------------------------- scope walker

  static constexpr std::size_t kNoClass = static_cast<std::size_t>(-1);

  void scan_scope(std::size_t begin, std::size_t end, const std::string& ns,
                  const std::string& cls, std::size_t cls_idx) {
    std::size_t i = begin;
    while (i < end) {
      const Token& tok = t[i];
      if (tok.kind == TokKind::kDirective || tok.kind == TokKind::kEof) {
        ++i;
        continue;
      }
      if (is_word(tok, "namespace")) {
        i = scan_namespace(i, end, ns);
        continue;
      }
      if (is_word(tok, "enum")) {
        i = skip_enum(i, end);
        continue;
      }
      if (is_word(tok, "template")) {
        ++i;
        if (i < end && is_punct(t[i], "<")) {
          const std::size_t close = match_angle(t, i);
          if (close != std::string::npos) i = close + 1;
        }
        continue;
      }
      if (is_word(tok, "using") || is_word(tok, "typedef") ||
          is_word(tok, "friend")) {
        i = skip_statement(i, end);
        continue;
      }
      if (is_word(tok, "extern") && i + 2 < end &&
          t[i + 1].kind == TokKind::kString && is_punct(t[i + 2], "{")) {
        const std::size_t close = match_bracket(t, i + 2);
        if (close == std::string::npos) return;
        scan_scope(i + 3, close, ns, cls, cls_idx);
        i = close + 1;
        continue;
      }
      if ((is_word(tok, "public") || is_word(tok, "private") ||
           is_word(tok, "protected")) &&
          i + 1 < end && is_punct(t[i + 1], ":")) {
        i += 2;
        continue;
      }
      if (is_word(tok, "struct") || is_word(tok, "class") ||
          is_word(tok, "union")) {
        const std::size_t next = scan_class(i, end, ns, cls);
        if (next != i) {
          i = next;
          continue;
        }
        // Not a definition here (elaborated type in a declaration):
        // fall through to the statement scanner from the same position,
        // skipping the keyword so it cannot recurse.
        i = scan_statement(i + 1, end, ns, cls, cls_idx);
        continue;
      }
      if (is_punct(tok, ";")) {
        ++i;
        continue;
      }
      i = scan_statement(i, end, ns, cls, cls_idx);
    }
  }

  std::size_t scan_namespace(std::size_t i, std::size_t end, const std::string& ns) {
    std::size_t j = i + 1;
    std::string name;
    while (j < end && (is_ident(t[j]) || is_punct(t[j], "::"))) {
      if (is_ident(t[j])) {
        if (!name.empty()) name += "::";
        name += t[j].text;
      }
      ++j;
    }
    if (j < end && is_punct(t[j], "=")) return skip_statement(j, end);  // alias
    if (j >= end || !is_punct(t[j], "{")) return j + 1;
    const std::size_t close = match_bracket(t, j);
    if (close == std::string::npos) return end;
    std::string inner = ns;
    if (!name.empty()) inner = ns.empty() ? name : ns + "::" + name;
    scan_scope(j + 1, close, inner, "", kNoClass);
    return close + 1;
  }

  std::size_t skip_enum(std::size_t i, std::size_t end) {
    std::size_t j = i + 1;
    while (j < end && !is_punct(t[j], "{") && !is_punct(t[j], ";")) ++j;
    if (j < end && is_punct(t[j], "{")) {
      const std::size_t close = match_bracket(t, j);
      if (close == std::string::npos) return end;
      j = close + 1;
    }
    return skip_statement(j, end);
  }

  /// struct/class/union definition: records the ClassDef and recurses.
  /// Returns `i` unchanged when this is not a definition.
  std::size_t scan_class(std::size_t i, std::size_t end, const std::string& ns,
                         const std::string& cls) {
    std::size_t j = i + 1;
    // Skip attribute macros / [[...]] between keyword and name.
    while (j < end) {
      if (is_ident(t[j]) && is_attr_macro(t[j].text)) {
        ++j;
        if (j < end && is_punct(t[j], "(")) {
          const std::size_t c = match_bracket(t, j);
          if (c == std::string::npos) return i;
          j = c + 1;
        }
        continue;
      }
      if (is_punct(t[j], "[") && j + 1 < end && is_punct(t[j + 1], "[")) {
        while (j < end && !is_punct(t[j], "]")) ++j;
        ++j;
        if (j < end && is_punct(t[j], "]")) ++j;
        continue;
      }
      break;
    }
    if (j >= end || !is_ident(t[j]) || is_keyword(t[j].text)) return i;
    const std::size_t name_tok = j;
    const std::string name = t[j].text;
    ++j;
    if (j < end && is_punct(t[j], "<")) {  // explicit specialization
      const std::size_t c = match_angle(t, j);
      if (c == std::string::npos) return i;
      j = c + 1;
    }
    if (j < end && is_word(t[j], "final")) ++j;
    if (j < end && is_punct(t[j], ":")) {  // base clause
      while (j < end && !is_punct(t[j], "{") && !is_punct(t[j], ";")) ++j;
    }
    if (j >= end || !is_punct(t[j], "{")) return i;
    const std::size_t close = match_bracket(t, j);
    if (close == std::string::npos) return i;

    ClassDef cd;
    cd.name = name;
    const std::string outer = cls.empty() ? ns : (ns.empty() ? cls : ns + "::" + cls);
    cd.qualified = outer.empty() ? name : outer + "::" + name;
    cd.file_index = file_index;
    cd.body_begin = j;
    cd.body_end = close;
    cd.line = t[name_tok].line;
    out.classes.push_back(cd);
    const std::size_t class_idx = out.classes.size() - 1;

    const std::string inner_ns = cls.empty() ? ns : (ns.empty() ? cls : ns + "::" + cls);
    scan_scope(j + 1, close, inner_ns, name, class_idx);
    return close + 1;
  }

  std::size_t skip_statement(std::size_t i, std::size_t end) {
    std::size_t j = i;
    while (j < end) {
      if (is_punct(t[j], ";")) return j + 1;
      if (is_punct(t[j], "{")) {
        const std::size_t c = match_bracket(t, j);
        if (c == std::string::npos) return end;
        j = c + 1;
        continue;
      }
      ++j;
    }
    return end;
  }

  // ----------------------------------------------- statement / function

  /// Scans one declaration-ish statement at namespace or class scope.
  /// Detects function definitions; otherwise records member variables /
  /// mutex declarations and skips to the terminator.
  std::size_t scan_statement(std::size_t i, std::size_t end, const std::string& ns,
                             const std::string& cls, std::size_t cls_idx) {
    std::size_t last_open = std::string::npos;  // last top-level ( ... )
    std::size_t last_close = std::string::npos;
    std::size_t j = i;
    while (j < end) {
      const Token& tok = t[j];
      if (tok.kind == TokKind::kDirective) {
        ++j;
        continue;
      }
      if (is_punct(tok, ";")) {
        handle_plain_statement(i, j, cls, cls_idx, last_open, last_close);
        return j + 1;
      }
      if (is_punct(tok, "(")) {
        const std::size_t c = match_bracket(t, j);
        if (c == std::string::npos) return end;
        last_open = j;
        last_close = c;
        j = c + 1;
        continue;
      }
      if (is_punct(tok, "=")) {
        // Initializer: no function body can follow at this statement's
        // top level (covers `= default`, `= delete`, `= 0`). What
        // precedes the '=' may still be a member variable declaration —
        // but never a function declaration (pure-virtual pup() is an
        // interface, not state).
        if (last_open == std::string::npos) {
          handle_plain_statement(i, j, cls, cls_idx, last_open, last_close);
        }
        return skip_statement(j, end);
      }
      if (is_punct(tok, "{")) {
        const std::size_t close = match_bracket(t, j);
        if (close == std::string::npos) return end;
        if (last_open != std::string::npos &&
            try_function(i, last_open, last_close, j, close, ns, cls)) {
          return close + 1;
        }
        // Braced initializer or similar: skip and keep scanning the
        // statement for its terminator.
        j = close + 1;
        continue;
      }
      ++j;
    }
    return end;
  }

  /// Statement that ended in ';' with no body: member variables, mutex
  /// declarations, and non-pure pup() declarations.
  void handle_plain_statement(std::size_t begin, std::size_t semi,
                              const std::string& cls, std::size_t cls_idx,
                              std::size_t last_open, std::size_t last_close) {
    (void)last_close;
    const bool is_function_decl = last_open != std::string::npos &&
                                  last_open > begin && is_ident(t[last_open - 1]);
    if (is_function_decl && cls_idx != kNoClass) {
      // `void pup(...)` declared but possibly defined out-of-line; a
      // pure-virtual `= 0` never reaches here (the '=' branch skips).
      if (is_word(t[last_open - 1], "pup") && last_open >= 2 &&
          is_word(t[last_open - 2], "void")) {
        out.classes[cls_idx].declares_pup = true;
      }
      return;
    }
    if (is_function_decl) return;
    if (last_open != std::string::npos) return;  // function pointer etc.
    // Member variable: last identifier before the terminator, with any
    // initializer or array extent stripped.
    std::size_t decl_end = semi;
    for (std::size_t k = begin; k < semi; ++k) {
      if (is_punct(t[k], "=") || is_punct(t[k], "{") || is_punct(t[k], "[")) {
        decl_end = k;
        break;
      }
    }
    if (decl_end <= begin) return;
    // Skip non-member statements (the v1 keyword list).
    static const std::set<std::string> kSkip = {
        "using", "typedef", "friend",   "static", "constexpr",
        "enum",  "template", "struct",  "class",  "union",
        "public", "private", "protected"};
    if (is_ident(t[begin]) && kSkip.count(t[begin].text) != 0) return;
    const std::string name = last_identifier(t, begin, decl_end);
    if (name.empty()) return;
    // A lone identifier cannot be both type and name.
    std::size_t toks = 0;
    for (std::size_t k = begin; k < decl_end; ++k) ++toks;
    if (toks < 2) return;
    int line = t[begin].line;
    for (std::size_t k = decl_end; k > begin; --k) {
      if (is_ident(t[k - 1])) {
        line = t[k - 1].line;
        break;
      }
    }
    if (cls_idx != kNoClass) out.classes[cls_idx].members.push_back({name, line});
    // Mutex declaration (member or namespace scope).
    bool mutexish = false;
    for (std::size_t k = begin; k < decl_end; ++k) {
      if (is_word(t[k], "Mutex")) mutexish = true;
      if (is_word(t[k], "mutex") && k >= 2 && is_word(t[k - 2], "std")) {
        mutexish = true;
      }
    }
    if (mutexish) out.mutexes.push_back({cls, name, file_index, line});
  }

  /// Decides whether `params_open..body_open` is a function definition
  /// head; if so, records the FunctionDef (scanning its body) and
  /// returns true.
  bool try_function(std::size_t stmt_begin, std::size_t params_open,
                    std::size_t params_close, std::size_t body_open,
                    std::size_t body_close, const std::string& ns,
                    const std::string& cls) {
    // The last top-level paren group may belong to a trailing annotation
    // macro (`void f() PICPRK_REQUIRES(mutex_) { ... }`): rewind to the
    // real parameter list and let check_qualifiers consume the macro.
    while (params_open > stmt_begin + 1 && is_ident(t[params_open - 1]) &&
           is_attr_macro(t[params_open - 1].text)) {
      std::size_t k = params_open - 1;  // the macro name
      while (k > stmt_begin + 1 &&
             (is_word(t[k - 1], "const") || is_word(t[k - 1], "noexcept") ||
              is_word(t[k - 1], "override") || is_word(t[k - 1], "final") ||
              is_punct(t[k - 1], "&") || is_punct(t[k - 1], "&&"))) {
        --k;
      }
      if (k <= stmt_begin || !is_punct(t[k - 1], ")")) return false;
      int depth = 0;
      std::size_t p = k - 1;
      while (true) {
        if (is_punct(t[p], ")")) {
          ++depth;
        } else if (is_punct(t[p], "(") && --depth == 0) {
          break;
        }
        if (p == stmt_begin) return false;
        --p;
      }
      params_open = p;
      params_close = k - 1;
    }
    // Name: identifier (or operator / destructor) directly before '('.
    if (params_open == stmt_begin) return false;
    std::size_t name_tok = params_open - 1;
    std::string name;
    if (is_ident(t[name_tok]) && !is_keyword(t[name_tok].text)) {
      name = t[name_tok].text;
    } else if (is_ident(t[name_tok]) && t[name_tok].text == "operator") {
      name = "operator()";
    } else {
      // operator symbols: walk back at most 2 punct tokens to `operator`.
      std::size_t k = name_tok;
      std::string symbols;
      while (k > stmt_begin && t[k].kind == TokKind::kPunct &&
             name_tok - k < 2) {
        symbols = t[k].text + symbols;
        --k;
      }
      if (k >= stmt_begin && is_word(t[k], "operator")) {
        name = "operator" + symbols;
        name_tok = k;
      } else {
        return false;
      }
    }
    // Destructor / qualified name chain.
    std::string qualifier;
    std::size_t q = name_tok;
    if (q > stmt_begin && is_punct(t[q - 1], "~")) {
      name = "~" + name;
      --q;
    }
    std::vector<std::string> quals;
    while (q >= stmt_begin + 2 && is_punct(t[q - 1], "::") && is_ident(t[q - 2])) {
      quals.insert(quals.begin(), t[q - 2].text);
      q -= 2;
      // skip template args on the qualifier (Foo<T>::bar)
      if (q > stmt_begin && is_punct(t[q - 1], ">")) break;
    }
    for (const auto& part : quals) {
      if (!qualifier.empty()) qualifier += "::";
      qualifier += part;
    }

    // Everything between ')' and '{' must be qualifier-ish.
    std::vector<std::string> attrs;
    std::vector<std::string> held;
    bool ok = check_qualifiers(params_close + 1, body_open, attrs, held);
    if (!ok) return false;

    FunctionDef fn;
    fn.name = name;
    fn.class_name = !quals.empty() ? quals.back() : cls;
    std::string prefix = cls.empty() ? ns : (ns.empty() ? cls : ns + "::" + cls);
    if (!qualifier.empty())
      prefix = prefix.empty() ? qualifier : prefix + "::" + qualifier;
    fn.qualified = prefix.empty() ? name : prefix + "::" + name;
    fn.file_index = file_index;
    fn.name_tok = name_tok;
    fn.body_begin = body_open;
    fn.body_end = body_close;
    fn.line = t[name_tok].line;
    // Attributes before the name (PICPRK_HOT precedes the return type).
    for (std::size_t k = stmt_begin; k < name_tok; ++k) {
      if (is_ident(t[k]) && is_attr_macro(t[k].text)) attrs.push_back(t[k].text);
    }
    fn.attrs = attrs;
    fn.held_on_entry = held;
    for (const auto& a : attrs) {
      if (a == "PICPRK_HOT") fn.is_hot = true;
    }
    scan_body(fn);
    out.functions.push_back(std::move(fn));
    return true;
  }

  /// True when every token in [begin, end) may legally sit between a
  /// parameter list and a function body. Collects PICPRK_* attributes
  /// and the mutex arguments of PICPRK_REQUIRES / PICPRK_ACQUIRE.
  bool check_qualifiers(std::size_t begin, std::size_t end,
                        std::vector<std::string>& attrs,
                        std::vector<std::string>& held) {
    std::size_t k = begin;
    while (k < end) {
      const Token& tok = t[k];
      if (is_punct(tok, ":")) return true;   // constructor init list
      if (is_punct(tok, "->")) return true;  // trailing return type
      if (is_word(tok, "const") || is_word(tok, "noexcept") ||
          is_word(tok, "override") || is_word(tok, "final") ||
          is_word(tok, "try") || is_word(tok, "mutable") ||
          is_word(tok, "requires") || is_punct(tok, "&") ||
          is_punct(tok, "&&")) {
        ++k;
        if (k < end && is_punct(t[k], "(")) {  // noexcept(...) / requires(...)
          const std::size_t c = match_bracket(t, k);
          if (c == std::string::npos || c >= end) return false;
          k = c + 1;
        }
        continue;
      }
      if (is_ident(tok) && is_attr_macro(tok.text)) {
        const std::string attr = tok.text;
        attrs.push_back(attr);
        ++k;
        if (k < end && is_punct(t[k], "(")) {
          const std::size_t c = match_bracket(t, k);
          if (c == std::string::npos || c >= end) return false;
          if (attr == "PICPRK_REQUIRES" || attr == "PICPRK_ACQUIRE") {
            for (std::size_t a = k + 1; a < c; ++a) {
              if (is_ident(t[a]) && !is_keyword(t[a].text)) held.push_back(t[a].text);
            }
          }
          k = c + 1;
        }
        continue;
      }
      if (is_punct(tok, "[") && k + 1 < end && is_punct(t[k + 1], "[")) {
        while (k < end && !is_punct(t[k], "]")) ++k;
        ++k;
        if (k < end && is_punct(t[k], "]")) ++k;
        continue;
      }
      return false;
    }
    return true;
  }

  // --------------------------------------------------------- body scan

  void scan_body(FunctionDef& fn) {
    int depth = 0;
    for (std::size_t i = fn.body_begin; i <= fn.body_end && i < t.size(); ++i) {
      const Token& tok = t[i];
      if (is_punct(tok, "{")) ++depth;
      if (is_punct(tok, "}")) --depth;
      if (!is_ident(tok)) continue;
      if (is_keyword(tok.text)) continue;
      // Guard declaration: LockGuard [<...>] var ( args ) / { args }.
      if (is_guard_type(tok.text)) {
        std::size_t j = i + 1;
        if (j < t.size() && is_punct(t[j], "<")) {
          const std::size_t c = match_angle(t, j);
          if (c != std::string::npos) j = c + 1;
        }
        if (j < t.size() && is_ident(t[j]) && !is_keyword(t[j].text) &&
            j + 1 < t.size() &&
            (is_punct(t[j + 1], "(") || is_punct(t[j + 1], "{"))) {
          const std::size_t open = j + 1;
          const std::size_t close = match_bracket(t, open);
          if (close != std::string::npos) {
            std::size_t first_arg_end = close;
            int nest = 0;
            for (std::size_t a = open + 1; a < close; ++a) {
              if (t[a].kind != TokKind::kPunct) continue;
              if (t[a].text == "(" || t[a].text == "[" || t[a].text == "{") ++nest;
              if (t[a].text == ")" || t[a].text == "]" || t[a].text == "}") --nest;
              if (nest == 0 && t[a].text == ",") {
                first_arg_end = a;
                break;
              }
            }
            const std::string arg = last_identifier(t, open + 1, first_arg_end);
            if (!arg.empty()) {
              fn.guards.push_back({arg, i, tok.line, depth});
            }
            i = close;
            continue;
          }
        }
      }
      // Call site: identifier followed by '(' or by a template argument
      // list then '('.
      std::size_t after = i + 1;
      if (after < t.size() && is_punct(t[after], "<")) {
        const std::size_t c = match_angle(t, after);
        if (c != std::string::npos && c + 1 < t.size() &&
            is_punct(t[c + 1], "(")) {
          after = c + 1;
        }
      }
      if (after < t.size() && is_punct(t[after], "(")) {
        CallSite cs;
        cs.name = tok.text;
        cs.tok = i;
        cs.line = tok.line;
        if (i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) {
          cs.member = true;
          if (i > 1 && is_ident(t[i - 2])) cs.receiver = t[i - 2].text;
        }
        fn.calls.push_back(std::move(cs));
      }
    }
  }
};

}  // namespace

std::vector<const Comment*> SourceFile::comments_on_line(int line) const {
  std::vector<const Comment*> out;
  for (const Comment& c : lx.comments) {
    if (c.line == line || c.end_line == line) out.push_back(&c);
  }
  return out;
}

std::size_t match_bracket(const std::vector<Token>& toks, std::size_t open) {
  if (open >= toks.size() || toks[open].kind != TokKind::kPunct)
    return std::string::npos;
  const std::string& oc = toks[open].text;
  std::string cc;
  if (oc == "(") cc = ")";
  else if (oc == "{") cc = "}";
  else if (oc == "[") cc = "]";
  else return std::string::npos;
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == oc) ++depth;
    if (toks[i].text == cc && --depth == 0) return i;
  }
  return std::string::npos;
}

Index build_index(std::vector<SourceFile> files) {
  Index index;
  index.files = std::move(files);
  for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
    index.files[fi].lx = lex(index.files[fi].text);
    Scanner sc(index, static_cast<int>(fi));
    if (!index.files[fi].lx.tokens.empty()) {
      sc.scan_scope(0, index.files[fi].lx.tokens.size() - 1, "", "",
                    Scanner::kNoClass);
    }
  }
  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    index.functions_by_name[index.functions[i].name].push_back(i);
  }
  return index;
}

bool ambiguous_std_method(const std::string& name) {
  static const std::set<std::string> kNames = {
      "begin",    "end",        "rbegin",     "rend",      "cbegin",
      "cend",     "size",       "length",     "empty",     "clear",
      "insert",   "erase",      "emplace",    "emplace_back",
      "emplace_front",          "push_back",  "pop_back",  "push_front",
      "pop_front", "push",      "pop",        "top",       "front",
      "back",     "at",         "find",       "count",     "contains",
      "reserve",  "resize",     "capacity",   "shrink_to_fit",
      "data",     "swap",       "assign",     "append",    "substr",
      "c_str",    "str",        "get",        "reset",     "release",
      "lock",     "unlock",     "try_lock",   "first",     "second",
      "value",    "value_or",   "has_value",  "load",      "store",
      "exchange", "wait",       "notify_one", "notify_all",
  };
  return kNames.count(name) != 0;
}

CallGraph build_call_graph(const Index& index) {
  CallGraph g;
  g.callees.resize(index.functions.size());
  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    std::set<std::size_t> dedup;
    for (const CallSite& cs : index.functions[i].calls) {
      if (cs.member && ambiguous_std_method(cs.name)) continue;
      auto it = index.functions_by_name.find(cs.name);
      if (it == index.functions_by_name.end()) continue;
      for (std::size_t callee : it->second) dedup.insert(callee);
    }
    g.callees[i].assign(dedup.begin(), dedup.end());
  }
  return g;
}

}  // namespace picprk::lint
