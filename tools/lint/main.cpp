// picprk-lint v2 — call-graph-aware SPMD safety analysis for the picprk
// tree. Pipeline: lexer (lint/lexer.*) -> symbol index + call graph
// (lint/index.*) -> rules + suppression audit (lint/rules.*) -> report
// back-ends (lint/report.*). See docs/STATIC_ANALYSIS.md.
//
// Usage:
//   picprk-lint [--rule R]... [--include-root DIR]...
//               [--json] [--gha] [--sarif FILE] [--list-rules] PATH...
//
// Exit codes: 0 clean, 1 violations found, 2 usage/IO error.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/index.hpp"
#include "lint/report.hpp"
#include "lint/rules.hpp"

namespace {

namespace fs = std::filesystem;
using picprk::lint::SourceFile;

bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

int usage(std::ostream& os) {
  os << "usage: picprk-lint [--rule R]... [--include-root DIR]...\n"
        "                   [--json] [--gha] [--sarif FILE] [--list-rules]\n"
        "                   PATH...\n"
        "rules: ";
  bool first = true;
  for (const std::string& r : picprk::lint::all_rules()) {
    if (!first) os << " ";
    first = false;
    os << r;
  }
  os << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::set<std::string> enabled;
  picprk::lint::RuleOptions opts;
  std::vector<fs::path> paths;
  bool json = false;
  bool gha = false;
  std::string sarif_path;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--rule") {
      if (++a >= argc) return usage(std::cerr);
      if (picprk::lint::all_rules().count(argv[a]) == 0) {
        std::cerr << "picprk-lint: unknown rule '" << argv[a] << "'\n";
        return usage(std::cerr);
      }
      enabled.insert(argv[a]);
    } else if (arg == "--include-root") {
      if (++a >= argc) return usage(std::cerr);
      opts.include_roots.emplace_back(argv[a]);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--gha") {
      gha = true;
    } else if (arg == "--sarif") {
      if (++a >= argc) return usage(std::cerr);
      sarif_path = argv[a];
    } else if (arg == "--dump-index") {
      json = false;
      gha = false;
      enabled.insert("__dump__");
    } else if (arg == "--list-rules") {
      for (const std::string& r : picprk::lint::all_rules()) {
        std::cout << r << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "picprk-lint: unknown option '" << arg << "'\n";
      return usage(std::cerr);
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) return usage(std::cerr);
  if (enabled.empty()) enabled = picprk::lint::all_rules();

  std::vector<SourceFile> files;
  for (const fs::path& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && is_source_file(it->path())) {
          files.push_back({it->path(), "", {}});
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back({p, "", {}});
    } else {
      std::cerr << "picprk-lint: cannot read '" << p.string() << "'\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  for (SourceFile& f : files) {
    std::ifstream in(f.path);
    if (!in) {
      std::cerr << "picprk-lint: cannot open '" << f.path.string() << "'\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    f.text = ss.str();
  }

  const picprk::lint::Index index = picprk::lint::build_index(std::move(files));
  const picprk::lint::CallGraph graph = picprk::lint::build_call_graph(index);
  if (enabled.count("__dump__")) {
    // Debug view of what the indexer recognised (not a stable format).
    for (const auto& fn : index.functions) {
      std::cout << "fn " << fn.qualified << " @" << fn.line
                << (fn.is_hot ? " [hot]" : "") << " calls:";
      for (const auto& c : fn.calls) std::cout << " " << c.name;
      for (const auto& g : fn.guards) std::cout << " guard(" << g.arg << ")";
      std::cout << "\n";
    }
    for (const auto& cd : index.classes) {
      std::cout << "class " << cd.qualified << " @" << cd.line
                << (cd.declares_pup ? " [pup]" : "") << " members:";
      for (const auto& m : cd.members) std::cout << " " << m.name;
      std::cout << "\n";
    }
    for (const auto& m : index.mutexes) {
      std::cout << "mutex " << m.class_name << "::" << m.member << "\n";
    }
    return 0;
  }
  const std::vector<picprk::lint::Violation> vs =
      picprk::lint::run_rules(index, graph, enabled, opts);

  if (json) {
    picprk::lint::report_json(vs, std::cout);
  } else {
    picprk::lint::report_text(vs, std::cout);
  }
  if (gha) picprk::lint::report_gha(vs, std::cout);
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path);
    if (!out) {
      std::cerr << "picprk-lint: cannot write '" << sarif_path << "'\n";
      return 2;
    }
    picprk::lint::report_sarif(vs, out);
  }
  if (!vs.empty() && !json && !gha) {
    std::cerr << "picprk-lint: " << vs.size() << " violation"
              << (vs.size() == 1 ? "" : "s") << "\n";
  }
  return vs.empty() ? 0 : 1;
}
