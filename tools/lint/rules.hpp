// picprk-lint v2 analysis core, stage 3: the rules.
//
// Every rule runs over the symbol index (and, for the three
// graph-aware families, the project call graph) instead of raw text.
// The engine also owns the suppression grammar:
//
//   // picprk-lint: suppress(<rule>: <reason>)
//   // picprk-lint: collective-guard(<reason>)
//
// A suppress directive silences findings of <rule> on its own line or
// the line directly below it; a collective-guard justifies one
// conditional collective (on the guarded call or its branch condition).
// The grammar is audited by the lint itself: a directive with an
// unknown name, an unknown rule, an empty reason, or no finding to
// suppress is a violation of the `suppress` meta-rule.
#pragma once

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "lint/index.hpp"

namespace picprk::lint {

struct Violation {
  std::filesystem::path file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleOptions {
  std::vector<std::filesystem::path> include_roots;
};

/// All rule names, the six ported families first:
/// hot obs lb soa pup tags headers collective lockorder determinism
/// (plus the implicit `suppress` audit, always on).
const std::set<std::string>& all_rules();

/// Runs the enabled rules, applies suppressions, audits the directive
/// grammar, and returns the surviving violations sorted by file/line.
std::vector<Violation> run_rules(const Index& index, const CallGraph& graph,
                                 const std::set<std::string>& enabled,
                                 const RuleOptions& opts);

}  // namespace picprk::lint
