#include "lint/report.hpp"

#include <map>
#include <string>

namespace picprk::lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void report_text(const std::vector<Violation>& vs, std::ostream& os) {
  for (const Violation& v : vs) {
    os << v.file.string() << ":" << v.line << ": [" << v.rule << "] "
       << v.message << "\n";
  }
}

void report_json(const std::vector<Violation>& vs, std::ostream& os) {
  for (const Violation& v : vs) {
    os << "{\"file\":\"" << json_escape(v.file.string()) << "\",\"line\":"
       << v.line << ",\"rule\":\"" << json_escape(v.rule)
       << "\",\"message\":\"" << json_escape(v.message) << "\"}\n";
  }
}

void report_gha(const std::vector<Violation>& vs, std::ostream& os) {
  for (const Violation& v : vs) {
    // ::error annotation values must escape %, CR and LF.
    std::string msg = "[" + v.rule + "] " + v.message;
    std::string escaped;
    for (const char c : msg) {
      if (c == '%') escaped += "%25";
      else if (c == '\n') escaped += "%0A";
      else if (c == '\r') escaped += "%0D";
      else escaped += c;
    }
    os << "::error file=" << v.file.string() << ",line=" << v.line
       << ",title=picprk-lint::" << escaped << "\n";
  }
}

void report_sarif(const std::vector<Violation>& vs, std::ostream& os) {
  std::map<std::string, std::size_t> rule_ids;
  for (const Violation& v : vs) rule_ids.emplace(v.rule, rule_ids.size());
  os << "{\n"
        "  \"version\": \"2.1.0\",\n"
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        "  \"runs\": [{\n"
        "    \"tool\": {\"driver\": {\n"
        "      \"name\": \"picprk-lint\",\n"
        "      \"informationUri\": \"docs/STATIC_ANALYSIS.md\",\n"
        "      \"rules\": [";
  bool first = true;
  for (const auto& [rule, unused] : rule_ids) {
    (void)unused;
    if (!first) os << ", ";
    first = false;
    os << "{\"id\": \"" << json_escape(rule) << "\"}";
  }
  os << "]\n    }},\n    \"results\": [";
  first = true;
  for (const Violation& v : vs) {
    if (!first) os << ",";
    first = false;
    os << "\n      {\"ruleId\": \"" << json_escape(v.rule)
       << "\", \"level\": \"error\", \"message\": {\"text\": \""
       << json_escape(v.message)
       << "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
          "{\"uri\": \""
       << json_escape(v.file.generic_string())
       << "\"}, \"region\": {\"startLine\": " << v.line << "}}}]}";
  }
  os << "\n    ]\n  }]\n}\n";
}

}  // namespace picprk::lint
