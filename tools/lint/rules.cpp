#include "lint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>
#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

namespace picprk::lint {

namespace fs = std::filesystem;

namespace {

bool is_ident(const Token& t) { return t.kind == TokKind::kIdentifier; }
bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool is_word(const Token& t, const char* s) {
  return t.kind == TokKind::kIdentifier && t.text == s;
}

bool in_dir(const SourceFile& f, const char* dir) {
  return f.path.parent_path().filename() == dir;
}

// ---------------------------------------------------------------- hot/obs/soa

const char* const kHotBanned[] = {
    "new",      "delete",   "malloc",     "calloc",        "realloc",
    "fmod",     "throw",    "push_back",  "emplace_back",  "resize",
    "reserve",  "insert",   "to_string",  "ostringstream", "stringstream",
    "printf",   "string",
};

const char* const kObsBanned[] = {
    "register_counter",
    "register_gauge",
    "register_histogram",
};

void check_hot_family(const Index& idx, std::vector<Violation>& out) {
  for (const FunctionDef& fn : idx.functions) {
    if (!fn.is_hot) continue;
    const SourceFile& f = idx.file_of(fn);
    const auto& t = f.lx.tokens;
    for (std::size_t i = fn.body_begin; i <= fn.body_end && i < t.size(); ++i) {
      if (!is_ident(t[i])) continue;
      for (const char* banned : kHotBanned) {
        if (t[i].text == banned) {
          out.push_back({f.path, t[i].line, "hot",
                         std::string("banned token '") + banned +
                             "' in a PICPRK_HOT function body (hot paths are "
                             "allocation-, fmod- and throw-free)"});
        }
      }
      for (const char* banned : kObsBanned) {
        if (t[i].text == banned) {
          out.push_back({f.path, t[i].line, "obs",
                         std::string("'") + banned +
                             "' in a PICPRK_HOT function body — instrument "
                             "registration allocates and locks; register at "
                             "setup and record through the returned handle"});
        }
      }
      if (t[i].text == "to_aos" || t[i].text == "to_soa") {
        out.push_back({f.path, t[i].line, "soa",
                       std::string("'") + t[i].text +
                           "' in a PICPRK_HOT function body — layout "
                           "conversion is an O(n) copy; hot kernels operate "
                           "on the SoA store directly"});
      }
      // Loops whose header names the AoS record.
      if (is_word(t[i], "for") && i + 1 < t.size() && is_punct(t[i + 1], "(")) {
        const std::size_t close = match_bracket(t, i + 1);
        if (close == std::string::npos) continue;
        for (std::size_t k = i + 2; k < close; ++k) {
          if (is_word(t[k], "Particle")) {
            out.push_back({f.path, t[k].line, "soa",
                           "loop over AoS Particle records in a PICPRK_HOT "
                           "function body — the wire form is for communication "
                           "boundaries; compute kernels read SoA columns"});
          }
        }
      }
    }
  }
}

// --------------------------------------------------------- purity (lb + det)

const char* const kImpureWords[] = {
    "rand",          "srand",        "random_device", "mt19937",
    "getenv",        "steady_clock", "system_clock",  "high_resolution_clock",
    "clock_gettime", "time",         "thread",
};

/// Member-call name prefixes that mean "talks to the runtime".
const char* const kCommCallPrefixes[] = {
    "send", "recv", "probe", "iprobe", "sendrecv",
    "allreduce", "alltoallv", "bcast", "barrier", "gather",
};

bool comm_call_name(const std::string& name) {
  for (const char* p : kCommCallPrefixes) {
    if (name.rfind(p, 0) == 0) return true;
  }
  return false;
}

/// First impure token inside a function body; empty Violation (line 0)
/// when the body is clean. `what` receives the offending token.
bool find_impure_token(const Index& idx, const FunctionDef& fn,
                       std::string& what, int& line) {
  const SourceFile& f = idx.file_of(fn);
  const auto& t = f.lx.tokens;
  for (std::size_t i = fn.body_begin; i <= fn.body_end && i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    for (const char* banned : kImpureWords) {
      if (t[i].text == banned) {
        what = banned;
        line = t[i].line;
        return true;
      }
    }
    // comm:: qualification.
    if (is_word(t[i], "comm") && i + 1 < t.size() && is_punct(t[i + 1], "::")) {
      what = "comm::";
      line = t[i].line;
      return true;
    }
    // Member calls into the runtime: x.send(...), x->allreduce_max(...).
    if (i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")) &&
        comm_call_name(t[i].text) && i + 1 < t.size() &&
        (is_punct(t[i + 1], "(") || is_punct(t[i + 1], "<"))) {
      what = t[i].text;
      line = t[i].line;
      return true;
    }
  }
  return false;
}

bool is_decision_fn(const FunctionDef& fn) {
  return fn.name == "rebalance_bounds" || fn.name == "rebalance_placement";
}

void check_lb(const Index& idx, std::vector<Violation>& out) {
  for (const FunctionDef& fn : idx.functions) {
    if (!is_decision_fn(fn)) continue;
    std::string what;
    int line = 0;
    if (find_impure_token(idx, fn, what, line)) {
      out.push_back({idx.file_of(fn).path, line, "lb",
                     "banned token '" + what + "' in a " + fn.name +
                         " body — decisions are pure functions of their "
                         "input; every rank must replay the identical plan"});
    }
  }
}

/// determinism: the lb purity contract made transitive. Walk the call
/// graph from every decision entry point and report any reachable
/// definition whose body reads clocks/RNG/environment or talks to the
/// runtime. Calls that resolve to no indexed definition (std:: math and
/// friends) are implicitly whitelisted.
void check_determinism(const Index& idx, const CallGraph& graph,
                       std::vector<Violation>& out) {
  const std::size_t n = idx.functions.size();
  std::vector<int> taint_line(n, 0);
  std::vector<std::string> taint_what(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string what;
    int line = 0;
    if (find_impure_token(idx, idx.functions[i], what, line)) {
      taint_line[i] = line;
      taint_what[i] = what;
    }
  }
  for (std::size_t root = 0; root < n; ++root) {
    const FunctionDef& fn = idx.functions[root];
    if (!is_decision_fn(fn) && fn.name != "plan_degraded") continue;
    // BFS so the reported chain is a shortest path.
    std::vector<std::size_t> parent(n, static_cast<std::size_t>(-1));
    std::vector<bool> seen(n, false);
    std::vector<std::size_t> queue{root};
    seen[root] = true;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::size_t cur = queue[qi];
      if (taint_line[cur] != 0 && cur != root) {
        std::string chain = idx.functions[cur].qualified;
        for (std::size_t p = parent[cur]; p != static_cast<std::size_t>(-1);
             p = parent[p]) {
          chain = idx.functions[p].qualified + " -> " + chain;
        }
        out.push_back(
            {idx.file_of(idx.functions[cur]).path, taint_line[cur], "determinism",
             "banned token '" + taint_what[cur] + "' is reachable from the " +
                 fn.name + " decision entry point (" + chain +
                 ") — transitive nondeterminism desynchronises the "
                 "replicated strategy state"});
        continue;  // do not walk past a tainted node; one report suffices
      }
      for (std::size_t callee : graph.callees[cur]) {
        if (seen[callee]) continue;
        seen[callee] = true;
        parent[callee] = cur;
        queue.push_back(callee);
      }
    }
  }
}

// ----------------------------------------------------------------- collective

const char* const kCollectives[] = {
    "barrier", "allreduce", "allreduce_value", "alltoallv",
    "bcast",   "reduce",    "gather",
};

bool collective_name(const std::string& s) {
  for (const char* c : kCollectives) {
    if (s == c) return true;
  }
  return false;
}

/// A token range a branch controls, plus whether its condition diverges
/// across ranks.
struct CondRegion {
  std::size_t begin = 0, end = 0;  // token range (inclusive)
  int cond_line = 0;
  bool divergent = false;
};

bool rank_token(const std::string& s) {
  return s == "rank" || s == "rank_" || s == "world_rank" || s == "my_rank" ||
         s == "myrank" || s == "vrank" || s == "self_rank" || s == "lrank";
}

/// End of the statement-or-block that starts right after token `from`:
/// a braced block ends at its matching '}', a plain statement at the
/// first ';' at nesting level zero.
std::size_t region_end(const std::vector<Token>& t, std::size_t from,
                       std::size_t limit) {
  std::size_t i = from;
  while (i < limit && t[i].kind == TokKind::kDirective) ++i;
  if (i >= limit) return limit;
  if (is_punct(t[i], "{")) {
    const std::size_t close = match_bracket(t, i);
    return close == std::string::npos ? limit : close;
  }
  int nest = 0;
  for (; i < limit; ++i) {
    if (t[i].kind != TokKind::kPunct) continue;
    if (t[i].text == "(" || t[i].text == "{" || t[i].text == "[") ++nest;
    if (t[i].text == ")" || t[i].text == "}" || t[i].text == "]") --nest;
    if (nest == 0 && t[i].text == ";") return i;
    if (nest < 0) return i;
  }
  return limit;
}

/// Collects every rank-divergent conditional region in a function body.
std::vector<CondRegion> divergent_regions(const Index& idx, const FunctionDef& fn) {
  const auto& t = idx.file_of(fn).lx.tokens;
  std::vector<CondRegion> regions;
  bool last_if_divergent = false;
  int last_if_line = 0;
  for (std::size_t i = fn.body_begin; i <= fn.body_end && i < t.size(); ++i) {
    const Token& tok = t[i];
    if (!is_ident(tok)) continue;
    const bool is_if = tok.text == "if";
    const bool is_loop = tok.text == "while" || tok.text == "for";
    const bool is_switch = tok.text == "switch";
    if (tok.text == "else") {
      std::size_t j = i + 1;
      if (j < t.size() && is_word(t[j], "if")) continue;  // handled as `if`
      const std::size_t end = region_end(t, j, fn.body_end);
      if (last_if_divergent) {
        regions.push_back({j, end, last_if_line, true});
      }
      continue;
    }
    if (!is_if && !is_loop && !is_switch) continue;
    std::size_t j = i + 1;
    bool is_constexpr = false;
    if (is_if && j < t.size() && is_word(t[j], "constexpr")) {
      is_constexpr = true;
      ++j;
    }
    if (j >= t.size() || !is_punct(t[j], "(")) continue;
    const std::size_t cond_close = match_bracket(t, j);
    if (cond_close == std::string::npos) continue;
    bool divergent = false;
    if (!is_constexpr) {
      for (std::size_t k = j + 1; k < cond_close; ++k) {
        if (is_ident(t[k]) && rank_token(t[k].text)) {
          divergent = true;
          break;
        }
      }
    }
    if (is_if) {
      last_if_divergent = divergent;
      last_if_line = tok.line;
    }
    if (!divergent) continue;
    const std::size_t end = region_end(t, cond_close + 1, fn.body_end);
    regions.push_back({cond_close + 1, end, tok.line, true});
  }
  return regions;
}

/// collective: every comm collective must execute unconditionally with
/// respect to rank-local state within its function; a collective (or a
/// call that transitively performs one) under a rank-derived branch
/// needs an explicit `// picprk-lint: collective-guard(<reason>)`.
void check_collective(const Index& idx, const CallGraph& graph,
                      std::vector<Violation>& out) {
  const std::size_t n = idx.functions.size();
  // performs[i]: functions[i] executes a collective, directly or below.
  std::vector<bool> performs(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const FunctionDef& fn = idx.functions[i];
    if (collective_name(fn.name)) performs[i] = true;
    const auto& t = idx.file_of(fn).lx.tokens;
    for (const CallSite& cs : fn.calls) {
      if (!collective_name(cs.name)) continue;
      // std::reduce / std::gather etc. are not comm collectives.
      if (cs.tok >= 2 && is_punct(t[cs.tok - 1], "::") &&
          is_word(t[cs.tok - 2], "std")) {
        continue;
      }
      performs[i] = true;
      break;
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (performs[i]) continue;
      for (std::size_t callee : graph.callees[i]) {
        if (performs[callee]) {
          performs[i] = changed = true;
          break;
        }
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const FunctionDef& fn = idx.functions[i];
    const SourceFile& f = idx.file_of(fn);
    if (in_dir(f, "comm")) continue;  // collectives are implemented there
    const std::vector<CondRegion> regions = divergent_regions(idx, fn);
    if (regions.empty()) continue;
    const auto& t = f.lx.tokens;
    for (const CallSite& cs : fn.calls) {
      bool direct = collective_name(cs.name);
      if (direct && cs.tok >= 2 && is_punct(t[cs.tok - 1], "::") &&
          is_word(t[cs.tok - 2], "std")) {
        direct = false;
      }
      bool transitive = false;
      if (!direct && !cs.member) {
        auto it = idx.functions_by_name.find(cs.name);
        if (it != idx.functions_by_name.end()) {
          for (std::size_t callee : it->second) {
            if (performs[callee]) {
              transitive = true;
              break;
            }
          }
        }
      }
      if (!direct && !transitive) continue;
      for (const CondRegion& r : regions) {
        if (cs.tok < r.begin || cs.tok > r.end) continue;
        out.push_back(
            {f.path, cs.line, "collective",
             std::string(direct ? "collective '" : "call '") + cs.name +
                 (direct ? "'" : "' (which performs a collective)") +
                 " executes under a rank-derived branch (condition at line " +
                 std::to_string(r.cond_line) +
                 ") — a rank that skips it deadlocks or desequences the "
                 "world; hoist it or justify with "
                 "// picprk-lint: collective-guard(<reason>)"});
        break;  // one report per call site
      }
    }
  }
}

// ------------------------------------------------------------------ lockorder

struct LockEdge {
  std::string from, to;
  fs::path file;
  int line = 0;
};

/// Resolves a mutex expression (its last identifier) to a stable node
/// name, preferring a declaration in the function's own class.
std::string resolve_mutex(const Index& idx, const FunctionDef& fn,
                          const std::string& name) {
  const MutexDecl* match = nullptr;
  int candidates = 0;
  for (const MutexDecl& m : idx.mutexes) {
    if (m.member != name) continue;
    ++candidates;
    if (!match) match = &m;
    if (!fn.class_name.empty() && m.class_name == fn.class_name) {
      return m.class_name + "::" + m.member;
    }
  }
  if (match && candidates == 1) {
    return match->class_name.empty() ? match->member
                                     : match->class_name + "::" + match->member;
  }
  return name;
}

/// lockorder: builds the static mutex-acquisition graph (edge A -> B
/// when B is acquired while A is held, directly or through a call) and
/// fails on cycles. Complements Clang TSA, which checks annotated
/// requirements but not a global order.
void check_lockorder(const Index& idx, const CallGraph& graph,
                     std::vector<Violation>& out) {
  const std::size_t n = idx.functions.size();
  // acquires[i]: mutex nodes functions[i] may acquire, transitively.
  std::vector<std::set<std::string>> acquires(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const GuardSite& g : idx.functions[i].guards) {
      acquires[i].insert(resolve_mutex(idx, idx.functions[i], g.arg));
    }
    // Direct mutex.lock() calls on a named mutex.
    for (const CallSite& cs : idx.functions[i].calls) {
      if (cs.name == "lock" && cs.member && !cs.receiver.empty()) {
        for (const MutexDecl& m : idx.mutexes) {
          if (m.member == cs.receiver) {
            acquires[i].insert(resolve_mutex(idx, idx.functions[i], cs.receiver));
            break;
          }
        }
      }
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t callee : graph.callees[i]) {
        for (const std::string& m : acquires[callee]) {
          if (acquires[i].insert(m).second) changed = true;
        }
      }
    }
  }

  // Edges: from every held mutex to every mutex acquired in its scope.
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  auto add_edge = [&edges](const std::string& a, const std::string& b,
                           const fs::path& file, int line) {
    if (a == b) return;  // recursive re-acquisition is TSA's department
    edges.emplace(std::make_pair(a, b), LockEdge{a, b, file, line});
  };
  for (std::size_t i = 0; i < n; ++i) {
    const FunctionDef& fn = idx.functions[i];
    const SourceFile& f = idx.file_of(fn);
    const auto& t = f.lx.tokens;
    // Scope of each guard: from its site until brace depth drops below
    // the depth it was declared at.
    for (const GuardSite& g : fn.guards) {
      const std::string held = resolve_mutex(idx, fn, g.arg);
      int depth = 0;
      std::size_t scope_end = fn.body_end;
      for (std::size_t k = g.tok; k <= fn.body_end && k < t.size(); ++k) {
        if (is_punct(t[k], "{")) ++depth;
        if (is_punct(t[k], "}")) {
          --depth;
          if (depth < 0) {
            scope_end = k;
            break;
          }
        }
      }
      for (const GuardSite& g2 : fn.guards) {
        if (g2.tok > g.tok && g2.tok <= scope_end) {
          add_edge(held, resolve_mutex(idx, fn, g2.arg), f.path, g2.line);
        }
      }
      for (const CallSite& cs : fn.calls) {
        if (cs.tok <= g.tok || cs.tok > scope_end) continue;
        if (cs.member && ambiguous_std_method(cs.name)) continue;
        auto it = idx.functions_by_name.find(cs.name);
        if (it == idx.functions_by_name.end()) continue;
        for (std::size_t callee : it->second) {
          for (const std::string& m : acquires[callee]) {
            add_edge(held, m, f.path, cs.line);
          }
        }
      }
    }
    // PICPRK_REQUIRES / PICPRK_ACQUIRE on the signature: held on entry.
    for (const std::string& pre : fn.held_on_entry) {
      const std::string held = resolve_mutex(idx, fn, pre);
      for (const GuardSite& g : fn.guards) {
        add_edge(held, resolve_mutex(idx, fn, g.arg), f.path, g.line);
      }
      for (const CallSite& cs : fn.calls) {
        if (cs.member && ambiguous_std_method(cs.name)) continue;
        auto it = idx.functions_by_name.find(cs.name);
        if (it == idx.functions_by_name.end()) continue;
        for (std::size_t callee : it->second) {
          for (const std::string& m : acquires[callee]) {
            add_edge(held, m, f.path, cs.line);
          }
        }
      }
    }
  }

  // Cycle detection over the edge set (DFS, iterative coloring).
  std::map<std::string, std::vector<const LockEdge*>> adj;
  for (const auto& [key, e] : edges) adj[e.from].push_back(&e);
  std::set<std::string> done;
  std::set<std::string> reported;
  for (const auto& [start, unused] : adj) {
    (void)unused;
    if (done.count(start)) continue;
    std::vector<std::pair<std::string, const LockEdge*>> path;
    std::set<std::string> on_path;
    std::function<void(const std::string&)> dfs = [&](const std::string& node) {
      on_path.insert(node);
      for (const LockEdge* e : adj[node]) {
        if (on_path.count(e->to)) {
          // Found a cycle: from e->to ... node -> e->to.
          std::string cycle = e->to;
          std::string sig = e->to;
          bool in_cycle = false;
          for (const auto& [pnode, pedge] : path) {
            if (pnode == e->to) in_cycle = true;
            if (in_cycle && pedge) {
              cycle += " -> " + pedge->to;
              sig += "|" + pedge->to;
            }
          }
          cycle += " -> " + e->to;
          if (reported.insert(sig).second) {
            out.push_back(
                {e->file, e->line, "lockorder",
                 "mutex acquisition cycle: " + cycle +
                     " — two threads taking these locks in opposite order "
                     "deadlock; establish one global order (see "
                     "docs/STATIC_ANALYSIS.md)"});
          }
          continue;
        }
        if (done.count(e->to)) continue;
        path.emplace_back(e->to, e);
        dfs(e->to);
        path.pop_back();
      }
      on_path.erase(node);
      done.insert(node);
    };
    path.emplace_back(start, nullptr);
    dfs(start);
    path.pop_back();
  }
}

// ------------------------------------------------------------------------ pup

void check_pup(const Index& idx, std::vector<Violation>& out) {
  for (const ClassDef& cd : idx.classes) {
    // Inline pup definition inside this class body?
    const FunctionDef* pup_def = nullptr;
    for (const FunctionDef& fn : idx.functions) {
      if (fn.name != "pup" || fn.class_name != cd.name) continue;
      if (fn.file_index == cd.file_index && fn.name_tok > cd.body_begin &&
          fn.name_tok < cd.body_end) {
        pup_def = &fn;  // inline definition
        break;
      }
    }
    if (pup_def == nullptr && !cd.declares_pup) continue;
    if (pup_def == nullptr) {
      // Out-of-line: any indexed Class::pup definition.
      for (const FunctionDef& fn : idx.functions) {
        if (fn.name == "pup" && fn.class_name == cd.name) {
          pup_def = &fn;
          break;
        }
      }
    }
    const SourceFile& f = idx.files[static_cast<std::size_t>(cd.file_index)];
    if (pup_def == nullptr) {
      out.push_back({f.path, cd.line, "pup",
                     "class " + cd.name +
                         " declares pup() but no definition was found in the "
                         "scanned files"});
      continue;
    }
    const SourceFile& pf = idx.file_of(*pup_def);
    const auto& pt = pf.lx.tokens;
    std::unordered_set<std::string> pupped;
    for (std::size_t k = pup_def->body_begin; k <= pup_def->body_end && k < pt.size();
         ++k) {
      if (is_ident(pt[k])) pupped.insert(pt[k].text);
    }
    for (const MemberVar& m : cd.members) {
      if (pupped.count(m.name)) continue;
      bool transient = false;
      for (const Comment* c : f.comments_on_line(m.line)) {
        if (c->text.find("pup:transient") != std::string::npos) transient = true;
      }
      if (transient) continue;
      out.push_back({f.path, m.line, "pup",
                     cd.name + "::" + m.name +
                         " is neither serialized in pup() nor tagged "
                         "'// pup:transient' — a checkpoint restore would "
                         "silently lose it"});
    }
  }
}

// ----------------------------------------------------------------------- tags

bool is_tag_name(const std::string& s) {
  return s.size() > 4 && s[0] == 'k' &&
         std::isupper(static_cast<unsigned char>(s[1])) &&
         s.substr(s.size() - 3) == "Tag";
}

void check_tags(const Index& idx, std::vector<Violation>& out) {
  std::set<std::string> registry;
  registry.insert("kAnyTag");
  // Pass 1: k...Tag constants must live in comm/message.hpp.
  for (const SourceFile& f : idx.files) {
    const bool is_registry = f.path.filename() == "message.hpp";
    const auto& t = f.lx.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_word(t[i], "constexpr")) continue;
      std::size_t end = i + 1;
      while (end < t.size() && !is_punct(t[end], "=") && !is_punct(t[end], ";") &&
             t[end].kind != TokKind::kEof) {
        ++end;
      }
      std::string name;
      for (std::size_t k = end; k > i; --k) {
        if (is_ident(t[k - 1]) && !is_keyword(t[k - 1].text)) {
          name = t[k - 1].text;
          break;
        }
      }
      if (!is_tag_name(name)) continue;
      if (is_registry) {
        registry.insert(name);
      } else {
        out.push_back({f.path, t[i].line, "tags",
                       "tag constant " + name +
                           " defined outside the registry (comm/message.hpp) — "
                           "scattered tags are how subsystems collide"});
      }
    }
  }

  struct Method {
    const char* name;
    int tag_index;
    int min_args;
    bool templated;
  };
  const Method methods[] = {
      {"send", 2, 3, false},      {"send_value", 2, 3, false},
      {"send_buffer", 2, 3, false}, {"sendrecv", 3, 4, false},
      {"recv_into", 2, 3, false}, {"probe", 1, 2, false},
      {"iprobe", 1, 2, false},    {"recv", 1, 2, true},
      {"recv_value", 1, 2, true},
  };
  for (const SourceFile& f : idx.files) {
    if (in_dir(f, "comm")) continue;  // the runtime's own internals
    const auto& t = f.lx.tokens;
    for (std::size_t i = 1; i + 1 < t.size(); ++i) {
      if (!is_ident(t[i])) continue;
      if (!is_punct(t[i - 1], ".") && !is_punct(t[i - 1], "->")) continue;
      const Method* method = nullptr;
      for (const Method& m : methods) {
        if (t[i].text == m.name) {
          method = &m;
          break;
        }
      }
      if (method == nullptr) continue;
      std::size_t open = i + 1;
      if (is_punct(t[open], "<")) {
        if (!method->templated) continue;
        int angle = 0;
        std::size_t k = open;
        for (; k < t.size() && k < open + 64; ++k) {
          if (is_punct(t[k], "<")) ++angle;
          if (is_punct(t[k], ">") && --angle == 0) break;
          if (is_punct(t[k], ">>")) {
            angle -= 2;
            if (angle <= 0) break;
          }
        }
        if (k >= t.size() || k >= open + 64) continue;
        open = k + 1;
      } else if (method->templated) {
        // recv(...) without template args is some other API; still check.
      }
      if (open >= t.size() || !is_punct(t[open], "(")) continue;
      const std::size_t close = match_bracket(t, open);
      if (close == std::string::npos) continue;
      // Split arguments on top-level commas.
      std::vector<std::pair<std::size_t, std::size_t>> args;  // [begin, end)
      int paren = 0, brace = 0, bracket = 0, angle = 0;
      std::size_t start = open + 1;
      for (std::size_t k = open + 1; k < close; ++k) {
        if (t[k].kind != TokKind::kPunct) continue;
        if (t[k].text == "(") ++paren;
        if (t[k].text == ")") --paren;
        if (t[k].text == "{") ++brace;
        if (t[k].text == "}") --brace;
        if (t[k].text == "[") ++bracket;
        if (t[k].text == "]") --bracket;
        if (t[k].text == "<") ++angle;
        if (t[k].text == ">" && angle > 0) --angle;
        if (t[k].text == "," && paren == 0 && brace == 0 && bracket == 0 &&
            angle == 0) {
          args.emplace_back(start, k);
          start = k + 1;
        }
      }
      if (start < close || !args.empty()) args.emplace_back(start, close);
      if (static_cast<int>(args.size()) < method->min_args) continue;
      const auto [abegin, aend] = args[static_cast<std::size_t>(method->tag_index)];
      std::string name;
      for (std::size_t k = aend; k > abegin; --k) {
        if (is_ident(t[k - 1]) && !is_keyword(t[k - 1].text)) {
          name = t[k - 1].text;
          break;
        }
      }
      bool has_call = false;
      for (std::size_t k = abegin; k < aend; ++k) {
        if (is_punct(t[k], "(")) has_call = true;
      }
      if (is_tag_name(name) && !has_call) {
        if (registry.count(name) == 0) {
          out.push_back({f.path, t[i].line, "tags",
                         "tag " + name + " is not defined in comm/message.hpp"});
        }
        continue;
      }
      if (name == "kAnyTag" || name == "tag") continue;
      std::string arg_text;
      for (std::size_t k = abegin; k < aend; ++k) {
        if (!arg_text.empty()) arg_text += ' ';
        arg_text += t[k].text;
      }
      out.push_back({f.path, t[i].line, "tags",
                     "tag argument '" + arg_text +
                         "' is not a named k...Tag constant from the "
                         "comm/message.hpp registry"});
    }
  }
}

// -------------------------------------------------------------------- headers

struct StdRequirement {
  const char* token;   ///< identifier directly after std::
  const char* header;
};

const StdRequirement kStdTokens[] = {
    {"vector", "vector"},     {"deque", "deque"},
    {"string", "string"},     {"array", "array"},
    {"optional", "optional"}, {"span", "span"},
    {"function", "functional"}, {"atomic", "atomic"},
    {"mutex", "mutex"},       {"scoped_lock", "mutex"},
    {"unique_lock", "mutex"}, {"lock_guard", "mutex"},
    {"condition_variable", "condition_variable"},
    {"thread", "thread"},     {"chrono", "chrono"},
    {"byte", "cstddef"},      {"size_t", "cstddef"},
    {"uint8_t", "cstdint"},   {"uint16_t", "cstdint"},
    {"uint32_t", "cstdint"},  {"uint64_t", "cstdint"},
    {"int8_t", "cstdint"},    {"int16_t", "cstdint"},
    {"int32_t", "cstdint"},   {"int64_t", "cstdint"},
    {"runtime_error", "stdexcept"}, {"logic_error", "stdexcept"},
    {"out_of_range", "stdexcept"},  {"exception_ptr", "exception"},
    {"current_exception", "exception"}, {"rethrow_exception", "exception"},
    {"unordered_map", "unordered_map"}, {"map", "map"},
    {"set", "set"},           {"memcpy", "cstring"},
    {"memset", "cstring"},    {"shared_ptr", "memory"},
    {"unique_ptr", "memory"}, {"make_shared", "memory"},
    {"make_unique", "memory"}, {"ostringstream", "sstream"},
    {"istringstream", "sstream"}, {"stringstream", "sstream"},
};

/// Directive text: "#include <vector>" / "# include \"comm/comm.hpp\"".
bool parse_include(const std::string& text, std::string& payload, bool& angled) {
  std::size_t i = 0;
  while (i < text.size() && (text[i] == '#' || std::isspace(
                                 static_cast<unsigned char>(text[i])))) {
    ++i;
  }
  if (text.compare(i, 7, "include") != 0) return false;
  i += 7;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  if (i >= text.size()) return false;
  const char open = text[i];
  const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
  if (close == '\0') return false;
  const std::size_t end = text.find(close, i + 1);
  if (end == std::string::npos) return false;
  payload = text.substr(i + 1, end - i - 1);
  angled = open == '<';
  return true;
}

void check_headers(const Index& idx, const RuleOptions& opts,
                   std::vector<Violation>& out) {
  for (const SourceFile& f : idx.files) {
    if (!f.is_header()) continue;
    const auto& t = f.lx.tokens;
    bool pragma_once = false;
    std::set<std::string> angle_includes;
    std::vector<std::pair<std::string, int>> project_includes;
    for (const Token& tok : t) {
      if (tok.kind != TokKind::kDirective) continue;
      if (tok.text.find("pragma") != std::string::npos &&
          tok.text.find("once") != std::string::npos) {
        pragma_once = true;
      }
      std::string payload;
      bool angled = false;
      if (parse_include(tok.text, payload, angled)) {
        if (angled) {
          angle_includes.insert(payload);
        } else {
          project_includes.emplace_back(payload, tok.line);
        }
      }
    }
    if (!pragma_once) {
      out.push_back({f.path, 1, "headers", "missing #pragma once"});
    }
    for (const auto& [inc, at] : project_includes) {
      bool found = fs::exists(f.path.parent_path() / inc);
      for (const auto& root : opts.include_roots) {
        if (found) break;
        found = fs::exists(root / inc);
      }
      if (!found) {
        out.push_back({f.path, at, "headers",
                       "project include \"" + inc + "\" does not resolve"});
      }
    }
    std::set<std::string> flagged;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (!is_word(t[i], "std") || !is_punct(t[i + 1], "::") ||
          !is_ident(t[i + 2])) {
        continue;
      }
      for (const StdRequirement& req : kStdTokens) {
        if (t[i + 2].text != req.token) continue;
        if (angle_includes.count(req.header)) continue;
        if (!flagged.insert(req.token).second) continue;
        out.push_back({f.path, t[i].line, "headers",
                       std::string("uses std::") + req.token +
                           " but does not include <" + req.header +
                           "> directly (include-what-you-spell)"});
      }
    }
  }
}

// ----------------------------------------------------- suppression directives

struct Directive {
  enum class Kind { kSuppress, kGuard, kMalformed } kind = Kind::kMalformed;
  std::string rule;    ///< suppress only
  std::string reason;
  std::string problem; ///< malformed only
  int file_index = -1;
  int line = 0;
  int end_line = 0;
  bool used = false;
};

std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<Directive> parse_directives(const Index& idx) {
  std::vector<Directive> out;
  for (std::size_t fi = 0; fi < idx.files.size(); ++fi) {
    for (const Comment& c : idx.files[fi].lx.comments) {
      const std::size_t at = c.text.find("picprk-lint:");
      if (at == std::string::npos) continue;
      Directive d;
      d.file_index = static_cast<int>(fi);
      d.line = c.line;
      d.end_line = c.end_line;
      std::string rest = trimmed(c.text.substr(at + 12));
      const std::size_t open = rest.find('(');
      const std::size_t close = rest.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        d.problem = "directive is not of the form <name>(<...>)";
        out.push_back(d);
        continue;
      }
      const std::string name = trimmed(rest.substr(0, open));
      const std::string body = trimmed(rest.substr(open + 1, close - open - 1));
      if (name == "suppress") {
        const std::size_t colon = body.find(':');
        if (colon == std::string::npos) {
          d.problem = "suppress needs `suppress(<rule>: <reason>)`";
          out.push_back(d);
          continue;
        }
        d.kind = Directive::Kind::kSuppress;
        d.rule = trimmed(body.substr(0, colon));
        d.reason = trimmed(body.substr(colon + 1));
        if (all_rules().count(d.rule) == 0) {
          d.kind = Directive::Kind::kMalformed;
          d.problem = "suppress names unknown rule '" + d.rule + "'";
        } else if (d.reason.empty()) {
          d.kind = Directive::Kind::kMalformed;
          d.problem = "suppress(" + d.rule + ") carries no reason";
        }
        out.push_back(d);
        continue;
      }
      if (name == "collective-guard") {
        d.kind = Directive::Kind::kGuard;
        d.reason = body;
        if (d.reason.empty()) {
          d.kind = Directive::Kind::kMalformed;
          d.problem = "collective-guard carries no reason";
        }
        out.push_back(d);
        continue;
      }
      d.problem = "unknown directive '" + name + "'";
      out.push_back(d);
    }
  }
  return out;
}

}  // namespace

const std::set<std::string>& all_rules() {
  static const std::set<std::string> rules = {
      "hot", "obs", "lb", "soa", "pup", "tags", "headers",
      "collective", "lockorder", "determinism"};
  return rules;
}

std::vector<Violation> run_rules(const Index& index, const CallGraph& graph,
                                 const std::set<std::string>& enabled,
                                 const RuleOptions& opts) {
  std::vector<Violation> raw;
  if (enabled.count("hot") || enabled.count("obs") || enabled.count("soa")) {
    std::vector<Violation> fam;
    check_hot_family(index, fam);
    for (auto& v : fam) {
      if (enabled.count(v.rule)) raw.push_back(std::move(v));
    }
  }
  if (enabled.count("lb")) check_lb(index, raw);
  if (enabled.count("pup")) check_pup(index, raw);
  if (enabled.count("tags")) check_tags(index, raw);
  if (enabled.count("headers")) check_headers(index, opts, raw);
  if (enabled.count("collective")) check_collective(index, graph, raw);
  if (enabled.count("lockorder")) check_lockorder(index, graph, raw);
  if (enabled.count("determinism")) check_determinism(index, graph, raw);

  // Suppressions: a finding is silenced by a well-formed suppress(<rule>:
  // <reason>) on its own line or the line directly above. The collective
  // rule honours collective-guard on the call line, the line above, or
  // the branch-condition line named in the message.
  std::vector<Directive> directives = parse_directives(index);
  std::unordered_map<std::string, std::size_t> file_to_index;
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    file_to_index[index.files[i].path.string()] = i;
  }
  std::vector<Violation> kept;
  for (Violation& v : raw) {
    bool suppressed = false;
    const auto fit = file_to_index.find(v.file.string());
    if (fit != file_to_index.end()) {
      for (Directive& d : directives) {
        if (d.file_index != static_cast<int>(fit->second)) continue;
        if (d.kind == Directive::Kind::kSuppress && d.rule == v.rule &&
            (d.line == v.line || d.end_line == v.line || d.end_line == v.line - 1)) {
          d.used = true;
          suppressed = true;
        }
        if (d.kind == Directive::Kind::kGuard && v.rule == "collective") {
          // Extract the condition line from the message.
          int cond_line = 0;
          const std::size_t at = v.message.find("condition at line ");
          if (at != std::string::npos) {
            cond_line = std::atoi(v.message.c_str() + at + 18);
          }
          if (d.line == v.line || d.end_line == v.line ||
              d.end_line == v.line - 1 || d.line == cond_line ||
              d.end_line == cond_line || d.end_line == cond_line - 1) {
            d.used = true;
            suppressed = true;
          }
        }
      }
    }
    if (!suppressed) kept.push_back(std::move(v));
  }

  // Audit the directives themselves.
  for (const Directive& d : directives) {
    const fs::path& path = index.files[static_cast<std::size_t>(d.file_index)].path;
    if (d.kind == Directive::Kind::kMalformed) {
      kept.push_back({path, d.line, "suppress",
                      "malformed picprk-lint directive: " + d.problem +
                          " (grammar: docs/STATIC_ANALYSIS.md)"});
      continue;
    }
    if (d.kind == Directive::Kind::kSuppress && !d.used &&
        enabled.count(d.rule) != 0) {
      kept.push_back({path, d.line, "suppress",
                      "unused suppression for rule '" + d.rule +
                          "' — the finding it silenced is gone; delete the "
                          "directive"});
    }
  }

  std::sort(kept.begin(), kept.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Violation& a, const Violation& b) {
                           return a.file == b.file && a.line == b.line &&
                                  a.rule == b.rule && a.message == b.message;
                         }),
             kept.end());
  return kept;
}

}  // namespace picprk::lint
