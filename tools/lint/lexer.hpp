// picprk-lint v2 analysis core, stage 1: a self-contained C++ lexer.
//
// The v1 checker scanned comment-stripped text with substring matching,
// which cannot see identifiers spliced across line continuations, raw
// string literals, or multi-line preprocessor definitions. This lexer
// produces a token stream with source positions so the rules operate on
// real lexical structure:
//
//  * line continuations (backslash-newline) are spliced away before
//    tokenization, so `count_\<newline>new` is one identifier;
//  * comments never reach the token stream but are retained separately
//    (with line spans) for the suppression directives and the
//    `pup:transient` / `collective-guard` annotations the rules read;
//  * string/char literals are single tokens — banned words inside them
//    can never match — including raw strings R"delim(...)delim" and
//    encoding prefixes (u8, u, U, L);
//  * a preprocessor directive is one token carrying its full spliced
//    text, so a multi-line #define can be recognised (and skipped) as a
//    unit instead of line-by-line;
//  * digit separators (1'000'000) are part of the number token, and the
//    primary digraphs (<% %> <: :> %:) are normalised to their
//    canonical spellings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace picprk::lint {

enum class TokKind : std::uint8_t {
  kIdentifier,  ///< identifiers and keywords (see is_keyword)
  kNumber,      ///< pp-number, digit separators included
  kString,      ///< string literal, prefixes and raw strings included
  kChar,        ///< character literal
  kPunct,       ///< operator / punctuator, longest-match, digraphs mapped
  kDirective,   ///< whole preprocessor directive, continuations spliced
  kEof,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;        ///< spelling with line continuations spliced out
  std::size_t offset = 0;  ///< byte offset of the first character in the raw text
  int line = 0;            ///< 1-based line of the first character
};

/// A comment, kept out-of-band: rules consult comments by line for the
/// suppression / annotation grammar (docs/STATIC_ANALYSIS.md).
struct Comment {
  int line = 0;      ///< line the comment starts on
  int end_line = 0;  ///< line it ends on (block comments may span)
  std::string text;  ///< body without the // or /* */ markers
};

struct LexResult {
  std::vector<Token> tokens;  ///< terminated by one kEof token
  std::vector<Comment> comments;
};

/// Tokenizes a C++ translation unit. Never fails: unterminated literals
/// lex to end-of-input, unknown bytes become single-char punctuators.
LexResult lex(const std::string& src);

/// True for C++ keywords (alternative operator spellings included).
bool is_keyword(const std::string& s);

}  // namespace picprk::lint
