#include "lint/lexer.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace picprk::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// One logical character after phase-2 translation (line splicing):
/// the character plus where it came from in the raw text.
struct LChar {
  char c;
  std::size_t offset;
  int line;
};

/// Splices backslash-newline pairs away, keeping raw positions. This is
/// the phase the v1 scanner lacked: after it, an identifier broken by a
/// continuation is contiguous, and a continued // comment or #define is
/// one logical line.
std::vector<LChar> splice(const std::string& src) {
  std::vector<LChar> out;
  out.reserve(src.size());
  int line = 1;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    if (c == '\\' && i + 1 < src.size() &&
        (src[i + 1] == '\n' || (src[i + 1] == '\r' && i + 2 < src.size() &&
                                src[i + 2] == '\n'))) {
      i += src[i + 1] == '\r' ? 2 : 1;
      ++line;
      continue;
    }
    out.push_back({c, i, line});
    if (c == '\n') ++line;
  }
  return out;
}

const std::set<std::string>& keywords() {
  static const std::set<std::string> kw = {
      "alignas",   "alignof",  "and",        "and_eq",   "asm",
      "auto",      "bitand",   "bitor",      "bool",     "break",
      "case",      "catch",    "char",       "char8_t",  "char16_t",
      "char32_t",  "class",    "compl",      "concept",  "const",
      "consteval", "constexpr", "constinit", "const_cast", "continue",
      "co_await",  "co_return", "co_yield",  "decltype", "default",
      "delete",    "do",       "double",     "dynamic_cast", "else",
      "enum",      "explicit", "export",     "extern",   "false",
      "float",     "for",      "friend",     "goto",     "if",
      "inline",    "int",      "long",       "mutable",  "namespace",
      "new",       "noexcept", "not",        "not_eq",   "nullptr",
      "operator",  "or",       "or_eq",      "private",  "protected",
      "public",    "register", "reinterpret_cast", "requires", "return",
      "short",     "signed",   "sizeof",     "static",   "static_assert",
      "static_cast", "struct", "switch",     "template", "this",
      "thread_local", "throw", "true",       "try",      "typedef",
      "typeid",    "typename", "union",      "unsigned", "using",
      "virtual",   "void",     "volatile",   "wchar_t",  "while",
      "xor",       "xor_eq",
  };
  return kw;
}

/// Multi-character punctuators, longest first within each head char.
/// >> and << stay fused (stream operators); rules that match template
/// angle brackets treat ">>" as two closers.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>",
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*", "##",
};

struct Lexer {
  const std::vector<LChar>& s;
  std::size_t i = 0;
  LexResult out;

  explicit Lexer(const std::vector<LChar>& spliced) : s(spliced) {}

  bool eof() const { return i >= s.size(); }
  char at(std::size_t k) const { return k < s.size() ? s[k].c : '\0'; }
  char cur() const { return at(i); }
  char peek(std::size_t n = 1) const { return at(i + n); }

  void push(TokKind kind, std::size_t begin, std::size_t end) {
    Token t;
    t.kind = kind;
    t.text.reserve(end - begin);
    for (std::size_t k = begin; k < end; ++k) t.text.push_back(s[k].c);
    t.offset = s[begin].offset;
    t.line = s[begin].line;
    out.tokens.push_back(std::move(t));
  }

  /// Consumes // to end of logical line; records the comment.
  void line_comment() {
    const std::size_t begin = i;
    i += 2;
    const std::size_t text_begin = i;
    while (!eof() && cur() != '\n') ++i;
    Comment c;
    c.line = s[begin].line;
    c.end_line = i > 0 && i <= s.size() ? s[i - 1].line : c.line;
    for (std::size_t k = text_begin; k < i; ++k) c.text.push_back(s[k].c);
    out.comments.push_back(std::move(c));
  }

  /// Consumes a (non-nesting) block comment; records it.
  void block_comment() {
    const std::size_t begin = i;
    i += 2;
    const std::size_t text_begin = i;
    std::size_t text_end = i;
    while (!eof()) {
      if (cur() == '*' && peek() == '/') {
        text_end = i;
        i += 2;
        break;
      }
      ++i;
      text_end = i;
    }
    Comment c;
    c.line = s[begin].line;
    c.end_line = text_end > 0 ? s[std::min(text_end, s.size() - 1)].line : c.line;
    for (std::size_t k = text_begin; k < text_end; ++k) c.text.push_back(s[k].c);
    out.comments.push_back(std::move(c));
  }

  /// Ordinary string/char literal body after the opening quote.
  void quoted(char quote) {
    ++i;  // opening quote
    while (!eof()) {
      if (cur() == '\\' && i + 1 < s.size()) {
        i += 2;
        continue;
      }
      if (cur() == quote || cur() == '\n') {  // unterminated: stop at EOL
        ++i;
        return;
      }
      ++i;
    }
  }

  /// Raw string body after `R"`: d-char-seq ( ... ) d-char-seq ".
  void raw_string() {
    ++i;  // opening quote
    std::string delim;
    while (!eof() && cur() != '(' && cur() != '\n') {
      delim.push_back(cur());
      ++i;
    }
    if (eof() || cur() != '(') return;  // malformed; give up at this point
    ++i;
    const std::string closer = ")" + delim + "\"";
    std::string window;
    while (!eof()) {
      window.push_back(cur());
      ++i;
      if (window.size() > closer.size())
        window.erase(window.begin());
      if (window == closer) return;
    }
  }

  /// A whole preprocessor directive (continuations already spliced), with
  /// embedded comments handled: // ends the text, /* */ is skipped even
  /// across newlines inside the comment.
  void directive() {
    const std::size_t begin = i;
    Token t;
    t.kind = TokKind::kDirective;
    t.offset = s[begin].offset;
    t.line = s[begin].line;
    while (!eof() && cur() != '\n') {
      if (cur() == '/' && peek() == '/') {
        line_comment();
        break;
      }
      if (cur() == '/' && peek() == '*') {
        block_comment();
        t.text.push_back(' ');
        continue;
      }
      if (cur() == '"') {
        const std::size_t q = i;
        quoted('"');
        for (std::size_t k = q; k < i; ++k) t.text.push_back(s[k].c);
        continue;
      }
      if (cur() == '<' && t.text.find("include") != std::string::npos) {
        while (!eof() && cur() != '\n' && cur() != '>') {
          t.text.push_back(cur());
          ++i;
        }
        continue;
      }
      t.text.push_back(cur());
      ++i;
    }
    out.tokens.push_back(std::move(t));
  }

  void run() {
    bool at_line_start = true;
    while (!eof()) {
      const char c = cur();
      if (c == '\n') {
        at_line_start = true;
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '/' && peek() == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek() == '*') {
        block_comment();
        continue;
      }
      if (at_line_start && (c == '#' || (c == '%' && peek() == ':'))) {
        directive();
        at_line_start = true;
        continue;
      }
      at_line_start = false;
      if (ident_start(c)) {
        const std::size_t begin = i;
        while (!eof() && ident_cont(cur())) ++i;
        // String-literal encoding prefixes: u8R"(..)", LR"(..)", R"(..)",
        // u"..", L'x' — the identifier chars are part of the literal.
        std::string word;
        for (std::size_t k = begin; k < i; ++k) word.push_back(s[k].c);
        const bool str_prefix = word == "R" || word == "u8R" || word == "uR" ||
                                word == "UR" || word == "LR";
        const bool plain_prefix =
            word == "u8" || word == "u" || word == "U" || word == "L";
        if (str_prefix && cur() == '"') {
          raw_string();
          push(TokKind::kString, begin, i);
          continue;
        }
        if (plain_prefix && cur() == '"') {
          quoted('"');
          push(TokKind::kString, begin, i);
          continue;
        }
        if (plain_prefix && cur() == '\'') {
          quoted('\'');
          push(TokKind::kChar, begin, i);
          continue;
        }
        push(TokKind::kIdentifier, begin, i);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek())))) {
        // pp-number: digits, identifier chars, '.', digit separators, and
        // sign chars after an exponent.
        const std::size_t begin = i;
        ++i;
        while (!eof()) {
          const char d = cur();
          if (ident_cont(d) || d == '.') {
            ++i;
          } else if (d == '\'' && ident_cont(peek())) {
            i += 2;
          } else if ((d == '+' || d == '-') &&
                     (at(i - 1) == 'e' || at(i - 1) == 'E' ||
                      at(i - 1) == 'p' || at(i - 1) == 'P')) {
            ++i;
          } else {
            break;
          }
        }
        push(TokKind::kNumber, begin, i);
        continue;
      }
      if (c == '"') {
        const std::size_t begin = i;
        quoted('"');
        push(TokKind::kString, begin, i);
        continue;
      }
      if (c == '\'') {
        const std::size_t begin = i;
        quoted('\'');
        push(TokKind::kChar, begin, i);
        continue;
      }
      // Digraphs normalise to the primary spelling.
      if (c == '<' && peek() == '%') {
        Token t{TokKind::kPunct, "{", s[i].offset, s[i].line};
        out.tokens.push_back(std::move(t));
        i += 2;
        continue;
      }
      if (c == '%' && peek() == '>') {
        Token t{TokKind::kPunct, "}", s[i].offset, s[i].line};
        out.tokens.push_back(std::move(t));
        i += 2;
        continue;
      }
      if (c == '<' && peek() == ':' && peek(2) != ':' && peek(2) != '>') {
        Token t{TokKind::kPunct, "[", s[i].offset, s[i].line};
        out.tokens.push_back(std::move(t));
        i += 2;
        continue;
      }
      if (c == ':' && peek() == '>') {
        Token t{TokKind::kPunct, "]", s[i].offset, s[i].line};
        out.tokens.push_back(std::move(t));
        i += 2;
        continue;
      }
      // Multi-char punctuators, longest match.
      bool matched = false;
      for (const char* p : kPuncts) {
        const std::size_t n = std::string_view(p).size();
        bool ok = true;
        for (std::size_t k = 0; k < n; ++k) {
          if (at(i + k) != p[k]) {
            ok = false;
            break;
          }
        }
        if (ok) {
          push(TokKind::kPunct, i, i + n);
          i += n;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      push(TokKind::kPunct, i, i + 1);
      ++i;
    }
    Token eof_tok;
    eof_tok.kind = TokKind::kEof;
    eof_tok.offset = s.empty() ? 0 : s.back().offset + 1;
    eof_tok.line = s.empty() ? 1 : s.back().line;
    out.tokens.push_back(std::move(eof_tok));
  }
};

}  // namespace

LexResult lex(const std::string& src) {
  const std::vector<LChar> spliced = splice(src);
  Lexer lx(spliced);
  lx.run();
  return std::move(lx.out);
}

bool is_keyword(const std::string& s) { return keywords().count(s) != 0; }

}  // namespace picprk::lint
