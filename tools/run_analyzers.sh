#!/usr/bin/env bash
# Deep static analysis over src/ with the compilers' own analyzers:
# GCC -fanalyzer and, when clang is available, the Clang static
# analyzer (scan-build's --analyze mode). Complements picprk-lint —
# the lint checks project invariants, the compiler analyzers check
# memory/UB properties the lint does not model.
#
#   tools/run_analyzers.sh [--update-baseline]
#
# Findings are normalised (path:line: analyzer: message) and diffed
# against the checked-in baseline in tools/analyzer_baseline.txt:
# the run fails only on findings NOT in the baseline, so known
# (triaged) findings don't block CI while new ones do. Pass
# --update-baseline to rewrite the baseline from the current run.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
baseline="${repo_root}/tools/analyzer_baseline.txt"
update=0
[ "${1:-}" = "--update-baseline" ] && update=1

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
findings="${workdir}/findings.txt"
: > "${findings}"

mapfile -t tus < <(find "${repo_root}/src" -name '*.cpp' | sort)
common_flags=( -std=c++20 -I "${repo_root}/src" -c -o /dev/null )

# ---- GCC -fanalyzer -------------------------------------------------------
if command -v g++ >/dev/null 2>&1; then
  echo "run_analyzers.sh: g++ -fanalyzer over ${#tus[@]} TU(s)"
  for tu in "${tus[@]}"; do
    g++ -fanalyzer "${common_flags[@]}" "${tu}" 2>> "${workdir}/gcc_raw.txt" || true
  done
  # Keep only the primary diagnostic lines; strip the repo prefix and
  # column so the baseline is stable across checkouts and compiler
  # point releases.
  sed -n 's/^\([^:]*\):\([0-9]*\):[0-9]*: warning: \(.*\) \[\(-Wanalyzer[^]]*\)\]$/\1:\2: gcc: \3 [\4]/p' \
      "${workdir}/gcc_raw.txt" \
    | sed "s|^${repo_root}/||" | sort -u >> "${findings}"
else
  echo "run_analyzers.sh: g++ not found; skipping -fanalyzer leg" >&2
fi

# ---- Clang static analyzer ------------------------------------------------
clangxx=""
for candidate in clang++ clang++-19 clang++-18 clang++-17; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    clangxx="${candidate}"
    break
  fi
done
if [ -n "${clangxx}" ]; then
  echo "run_analyzers.sh: ${clangxx} --analyze over ${#tus[@]} TU(s)"
  for tu in "${tus[@]}"; do
    "${clangxx}" --analyze --analyzer-output text \
      "${common_flags[@]}" "${tu}" 2>> "${workdir}/clang_raw.txt" || true
  done
  sed -n 's/^\([^:]*\):\([0-9]*\):[0-9]*: warning: \(.*\)$/\1:\2: clang: \3/p' \
      "${workdir}/clang_raw.txt" \
    | sed "s|^${repo_root}/||" | sort -u >> "${findings}"
else
  echo "run_analyzers.sh: clang++ not found; skipping clang --analyze leg" >&2
fi

sort -u "${findings}" -o "${findings}"

if [ "${update}" -eq 1 ]; then
  {
    echo "# Known findings from tools/run_analyzers.sh, one per line"
    echo "# (path:line: analyzer: message). Each entry has been triaged:"
    echo "# it is either a false positive or an accepted risk with the"
    echo "# reasoning recorded in docs/STATIC_ANALYSIS.md. New findings"
    echo "# fail CI until triaged here."
    cat "${findings}"
  } > "${baseline}"
  echo "run_analyzers.sh: baseline rewritten with $(wc -l < "${findings}") finding(s)"
  exit 0
fi

grep -v '^#' "${baseline}" 2>/dev/null | sed '/^$/d' | sort -u > "${workdir}/known.txt"
new=$(comm -23 "${findings}" "${workdir}/known.txt")
fixed=$(comm -13 "${findings}" "${workdir}/known.txt")

if [ -n "${fixed}" ]; then
  echo "run_analyzers.sh: baseline entries no longer reported (prune them):"
  printf '%s\n' "${fixed}"
fi
if [ -n "${new}" ]; then
  echo "run_analyzers.sh: NEW analyzer findings (triage, then either fix or"
  echo "add to tools/analyzer_baseline.txt with a note):"
  printf '%s\n' "${new}"
  exit 1
fi
echo "run_analyzers.sh: clean ($(wc -l < "${findings}") known finding(s) in baseline)"
exit 0
