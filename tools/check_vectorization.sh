#!/usr/bin/env bash
# Asserts that the hot SoA mover loop actually vectorizes: compiles
# tools/vec_probe.cpp (which instantiates move_all_tiled / move_all_soa
# exactly as the drivers do) with the production optimization flags and
# the compiler's vectorization report turned on, then greps the report
# for src/pic/mover.hpp. If the compiler stops reporting the loop as
# vectorized — a regression someone could introduce with one innocent
# branch or aliasing pointer — this exits non-zero and CI fails.
#
#   tools/check_vectorization.sh [compiler ...]
#
# Default: g++ always, plus clang++ when it is on PATH (the dev
# container bakes in gcc only; CI images with clang get both legs).
# The missed-report (-fopt-info-vec-missed / -Rpass-missed) is printed
# for the mover so the failure message says WHY the loop was left
# scalar, not just that it was.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
probe="${repo_root}/tools/vec_probe.cpp"
# Keep in lockstep with the CMakeLists optimization block: RelWithDebInfo
# is -O2, and the project adds -ftree-vectorize -fno-math-errno globally.
common_flags=(-std=c++20 -O2 -ftree-vectorize -fno-math-errno
              -I "${repo_root}/src" -c -o /dev/null "${probe}")

if [ "$#" -gt 0 ]; then
  compilers=( "$@" )
else
  compilers=( g++ )
  if command -v clang++ >/dev/null 2>&1; then
    compilers+=( clang++ )
  else
    echo "check_vectorization.sh: clang++ not on PATH; running the gcc leg only"
  fi
fi

status=0
for cxx in "${compilers[@]}"; do
  if ! command -v "${cxx}" >/dev/null 2>&1; then
    echo "check_vectorization.sh: ${cxx} not found; skipping" >&2
    continue
  fi
  case "$("${cxx}" --version 2>/dev/null | head -n1)" in
    *clang*) report_flags=(-Rpass=loop-vectorize -Rpass-missed=loop-vectorize)
             vectorized_re='mover\.hpp.*vectorized' ;;
    *)       report_flags=(-fopt-info-vec-optimized -fopt-info-vec-missed)
             vectorized_re='mover\.hpp.*optimized: loop vectorized' ;;
  esac

  echo "=== ${cxx}: ${report_flags[*]} over tools/vec_probe.cpp ==="
  if ! report="$("${cxx}" "${report_flags[@]}" "${common_flags[@]}" 2>&1)"; then
    echo "${report}"
    echo "check_vectorization.sh: ${cxx} failed to compile the probe" >&2
    status=1
    continue
  fi

  mover_report="$(grep 'mover\.hpp' <<<"${report}" || true)"
  if grep -qE "${vectorized_re}" <<<"${mover_report}"; then
    echo "${cxx}: mover loops vectorized:"
    grep -E "${vectorized_re}" <<<"${mover_report}"
  else
    echo "${cxx}: NO vectorized loop reported for src/pic/mover.hpp." >&2
    echo "Missed-vectorization report for the mover:" >&2
    if [ -n "${mover_report}" ]; then
      echo "${mover_report}" >&2
    else
      echo "(compiler emitted no report lines for mover.hpp at all)" >&2
    fi
    status=1
  fi
done

exit "${status}"
