// Vectorization probe: a translation unit that instantiates the
// production SoA movers exactly as the drivers do, built by
// tools/check_vectorization.sh (and the CI vectorization-report job)
// with -fopt-info-vec so the reports can be asserted on. Nothing links
// against this file; it only has to compile the hot loops.
#include "pic/mover.hpp"

namespace picprk::pic {

template void move_all_tiled<AlternatingColumnCharges>(ParticleSoA&, TileIndex&,
                                                       const GridSpec&,
                                                       const AlternatingColumnCharges&,
                                                       double);
template void move_all_tiled<ChargeSlab>(ParticleSoA&, TileIndex&, const GridSpec&,
                                         const ChargeSlab&, double);
template void move_all_soa<AlternatingColumnCharges>(ParticleSoA&, const GridSpec&,
                                                     const AlternatingColumnCharges&,
                                                     double);
template void move_all_soa<ChargeSlab>(ParticleSoA&, const GridSpec&, const ChargeSlab&,
                                       double);

}  // namespace picprk::pic
