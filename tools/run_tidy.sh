#!/usr/bin/env bash
# Runs clang-tidy over the project sources with the repo profile
# (.clang-tidy) against the compile database in the build tree.
#
#   tools/run_tidy.sh [build-dir] [source ...]
#
# Default build dir: build/. Default sources: every .cpp under src/ and
# tools/. Exits 0 when clang-tidy is unavailable (the container bakes in
# gcc only) so the CI step and local habit stay in place without making
# the toolchain a hard dependency; CI images that do ship clang-tidy get
# the real gate. Honours $CLANG_TIDY to select a specific binary and
# $TIDY_JOBS for parallelism.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift $(( $# > 0 ? 1 : 0 ))

tidy_bin="${CLANG_TIDY:-}"
if [ -z "${tidy_bin}" ]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      tidy_bin="${candidate}"
      break
    fi
  done
fi
if [ -z "${tidy_bin}" ]; then
  echo "run_tidy.sh: clang-tidy not found on PATH; skipping (install clang-tidy" \
       "or set CLANG_TIDY to run the profile in .clang-tidy)" >&2
  exit 0
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "run_tidy.sh: ${build_dir}/compile_commands.json missing —" \
       "configure first: cmake --preset default" >&2
  exit 2
fi

# A reconfigure (new flags, new targets) leaves the compile database
# stale; regenerate it so tidy sees the commands the build actually
# uses.
if [ "${build_dir}/CMakeCache.txt" -nt "${build_dir}/compile_commands.json" ]; then
  echo "run_tidy.sh: CMakeCache.txt is newer than compile_commands.json; reconfiguring"
  cmake -B "${build_dir}" -S "${repo_root}" >/dev/null || exit 2
fi

echo "run_tidy.sh: using $("${tidy_bin}" --version | sed -n 's/^.*version/version/p' | head -1) (${tidy_bin})"

if [ "$#" -gt 0 ]; then
  files=( "$@" )
else
  mapfile -t files < <(find "${repo_root}/src" "${repo_root}/tools" -name '*.cpp' | sort)
fi

jobs="${TIDY_JOBS:-$(nproc 2>/dev/null || echo 4)}"
echo "run_tidy.sh: ${tidy_bin} -p ${build_dir} over ${#files[@]} file(s), ${jobs} job(s)"
printf '%s\n' "${files[@]}" \
  | xargs -P "${jobs}" -n 4 "${tidy_bin}" -p "${build_dir}" --quiet
status=$?
if [ "${status}" -ne 0 ]; then
  echo "run_tidy.sh: clang-tidy reported findings (see above)" >&2
fi
exit "${status}"
