// picprk — the command-line front end to the PIC PRK, in the spirit of
// the official Parallel Research Kernels binaries: every knob of the
// specification (§III) and of the three reference implementations (§IV)
// is a flag, and the run ends with the verification verdict.
//
// Examples:
//   picprk --impl serial --cells 400 --particles 200000 --steps 400
//   picprk --impl diffusion --ranks 6 --dist geometric --r 0.98
//          --balancer diffusion:border=4,two_phase=1 --lb-every 8
//   picprk --impl ampi --workers 2 --d 8 --lb-every 16 --balancer compact
//   picprk --impl async --ranks 4 --d 4 --balancer steal --lb-every 8
//   picprk --balancer list                     # the lb strategy registry
//   picprk --impl model --cores 384 --steps 6000   # performance model
//   picprk --impl baseline --ranks 4 --faults kill:rank=1,step=40
//          --checkpoint-every 16 --timeout-ms 2000   # resilience drill
//   picprk --impl diffusion --faults "drop:prob=0.01;kill:rank=1,step=40"
//          --reliable --recover local --checkpoint-every 1   # full ladder
//   echo "submit a:dist=geometric,particles=50000" | picprk serve
//          --workers 4 --metrics-dir out          # multi-tenant job server
//
// Exit codes: 0 verified, 1 verification failed, 2 usage/unhandled error,
// 3 comm timeout, 4 deadlock detected, 5 unrecovered rank death. Every
// run additionally prints one machine-readable "RESULT key=value ..."
// line on stdout for harnesses to parse.
#include <fstream>
#include <iostream>

#include "comm/world.hpp"
#include "ft/fault.hpp"
#include "lb/registry.hpp"
#include "obs/registry.hpp"
#include "obs/sinks.hpp"
#include "par/engine.hpp"
#include "perfsim/engine.hpp"
#include "svc/server.hpp"
#include "util/cli.hpp"
#include "util/report.hpp"
#include "util/table.hpp"

namespace {

using namespace picprk;

pic::Distribution parse_distribution(const util::ArgParser& args) {
  const std::string name = args.get_string("dist");
  if (name == "uniform") return pic::Uniform{};
  if (name == "geometric") return pic::Geometric{args.get_double("r")};
  if (name == "sinusoidal") return pic::Sinusoidal{};
  if (name == "linear")
    return pic::Linear{args.get_double("alpha"), args.get_double("beta")};
  if (name == "patch") {
    const auto cells = args.get_int("cells");
    return pic::Patch{pic::CellRegion{args.get_int("patch-x0"),
                                      std::min(args.get_int("patch-x1"), cells),
                                      args.get_int("patch-y0"),
                                      std::min(args.get_int("patch-y1"), cells)}};
  }
  throw std::invalid_argument("unknown --dist: " + name +
                              " (uniform|geometric|sinusoidal|linear|patch)");
}

pic::EventSchedule parse_events(const util::ArgParser& args, std::int64_t cells) {
  std::vector<pic::InjectionEvent> injections;
  std::vector<pic::RemovalEvent> removals;
  if (args.get_int("inject-count") > 0) {
    injections.push_back(pic::InjectionEvent{
        static_cast<std::uint32_t>(args.get_int("inject-step")),
        pic::CellRegion{0, cells / 2, 0, cells / 2},
        static_cast<std::uint64_t>(args.get_int("inject-count"))});
  }
  if (args.get_double("remove-fraction") > 0) {
    removals.push_back(pic::RemovalEvent{
        static_cast<std::uint32_t>(args.get_int("remove-step")),
        pic::CellRegion{0, cells, 0, cells}, args.get_double("remove-fraction")});
  }
  return pic::EventSchedule(std::move(injections), std::move(removals));
}

/// `--balancer list`: the registry as a table (name, capabilities,
/// summary) — the enumerable assessment matrix of the lb subsystem.
int print_balancer_list() {
  util::Table table({"name", "bounds", "placement", "degraded", "summary"});
  for (const lb::Descriptor& d : lb::registered_strategies()) {
    table.add_row({d.name, d.bounds ? "yes" : "-", d.placement ? "yes" : "-",
                   d.degraded ? "yes" : "-", d.summary});
  }
  table.print(std::cout);
  return 0;
}

/// Resolves the uniform --balancer/--lb-every selection into LbOptions.
/// The strategy-specific knobs travel inside the spec string only —
/// the pre-v10 per-driver flags (--lb-threshold, --lb-border,
/// --two-phase, --lb-frequency, --F) were removed; see
/// docs/LOAD_BALANCING.md "Migrating from the removed flags".
par::LbOptions resolve_lb_options(const util::ArgParser& args) {
  par::LbOptions lb;
  lb.strategy = args.get_string("balancer");
  lb.every = static_cast<std::uint32_t>(args.get_int("lb-every"));
  lb.measured = args.get_flag("measured-load");
  return lb;
}

/// The run's knobs as the "config" object of the metrics document, so
/// archived runs are self-describing (same idea as bench_json.hpp).
util::JsonObject run_config_json(const util::ArgParser& args, const std::string& impl) {
  util::JsonObject config;
  config.add("impl", impl);
  config.add("cells", args.get_int("cells"));
  config.add("particles", args.get_int("particles"));
  config.add("steps", args.get_int("steps"));
  config.add("k", args.get_int("k"));
  config.add("m", args.get_int("m"));
  config.add("dist", args.get_string("dist"));
  config.add("ranks", args.get_int("ranks"));
  config.add("workers", args.get_int("workers"));
  config.add("overdecomposition", args.get_int("d"));
  config.add("balancer", args.get_string("balancer"));
  config.add("lb_every", args.get_int("lb-every"));
  return config;
}

/// Post-run sink flush: writes the requested trace/metrics files and
/// prints the instrument summary tables. No-op when neither --trace-out
/// nor --metrics-out was given.
void flush_observability(const util::ArgParser& args, const std::string& impl,
                         const obs::Registry& registry, const obs::Trace& trace,
                         const std::vector<obs::StepSample>& samples) {
  const std::string trace_path = args.get_string("trace-out");
  const std::string metrics_path = args.get_string("metrics-out");
  if (trace_path.empty() && metrics_path.empty()) return;
  if (!trace_path.empty() && !trace.write_json(trace_path)) {
    std::cerr << "picprk: cannot write trace to " << trace_path << '\n';
  }
  if (!metrics_path.empty() &&
      !obs::write_metrics_json(metrics_path, "picprk", run_config_json(args, impl),
                               registry, samples)) {
    std::cerr << "picprk: cannot write metrics to " << metrics_path << '\n';
  }
  obs::print_summary(std::cout, registry, samples);
}

/// `picprk serve`: the multi-tenant job server (docs/SERVICE.md). Jobs
/// arrive as submit/cancel/drain lines on stdin or from --jobs; every
/// tenant prints its own RESULT line and (with --metrics-dir) its own
/// picprk-bench-v1 document.
int run_serve(int argc, char** argv) {
  util::ArgParser args("picprk serve",
                       "multi-tenant job server: many kernels, one shared runtime");
  args.add_int("workers", 4, "shared-pool worker threads");
  args.add_string("scheduler", "greedy",
                  "cross-job placement strategy (lb registry spec)");
  args.add_int("quantum", 8, "supersteps granted per cycle at weight 1");
  args.add_int("queue-capacity", 16,
               "admission bound: live jobs beyond this are rejected");
  args.add_string("jobs", "-", "command file with submit/cancel/drain lines "
                               "('-' = stdin)");
  args.add_string("metrics-dir", "",
                  "write per-job metrics JSON documents into this directory");
  args.add_string("trace-out", "",
                  "write a Chrome trace with one lane per job (pid = job id)");
  args.add_flag("no-steal", false,
                "execute the cross-job placement verbatim (no work stealing)");
  args.add_flag("static-cost", false,
                "ignore measured step cost in placement (reproducible plans)");
  if (!args.parse(argc, argv)) return 0;

  svc::ServerConfig cfg;
  cfg.workers = static_cast<int>(args.get_int("workers"));
  cfg.scheduler = args.get_string("scheduler");
  cfg.quantum = static_cast<std::uint32_t>(args.get_int("quantum"));
  cfg.queue_capacity = static_cast<std::size_t>(args.get_int("queue-capacity"));
  cfg.metrics_dir = args.get_string("metrics-dir");
  cfg.trace_path = args.get_string("trace-out");
  cfg.allow_steal = !args.get_flag("no-steal");
  cfg.measured_cost = !args.get_flag("static-cost");
  svc::Server server(cfg);

  const std::string jobs_path = args.get_string("jobs");
  if (jobs_path == "-") return server.run_commands(std::cin, std::cout);
  std::ifstream in(jobs_path);
  if (!in) {
    std::cerr << "picprk serve: cannot open " << jobs_path << '\n';
    return 2;
  }
  return server.run_commands(in, std::cout);
}

/// Selected implementation, for the RESULT line of a faulted run.
std::string g_impl = "unknown";

/// Machine-readable failure line + exit code for a typed fault outcome.
int report_fault(const char* status, const std::string& what, int code) {
  std::cerr << "picprk: " << what << '\n';
  std::cout << util::ResultLine(g_impl).add("status", status).str() << '\n';
  return code;
}

}  // namespace

int main(int argc, char** argv) try {
  // Subcommand dispatch: `picprk serve` owns its own flag set.
  if (argc >= 2 && std::string(argv[1]) == "serve") {
    return run_serve(argc - 1, argv + 1);
  }

  // Targeted rejection of the pre-v10 LB flags: the generic "unknown
  // option" would leave users guessing where the knob went.
  for (int i = 1; i < argc; ++i) {
    const std::string flag(argv[i]);
    if (flag == "--lb-threshold" || flag == "--lb-border" ||
        flag == "--two-phase" || flag == "--lb-frequency" || flag == "--F") {
      std::cerr << "picprk: " << flag
                << " was removed; use --balancer name[:key=val,...] and "
                   "--lb-every (see docs/LOAD_BALANCING.md \"Migrating from "
                   "the removed flags\")\n";
      return 2;
    }
  }

  util::ArgParser args("picprk", "the PIC Parallel Research Kernel");
  args.add_string("impl", "serial",
                  "serial | baseline | diffusion | ampi | async | model");
  args.add_int("cells", 200, "mesh cells per dimension (even)");
  args.add_int("particles", 100000, "requested particle count");
  args.add_int("steps", 200, "time steps");
  args.add_int("k", 0, "charge multiple: (2k+1) cells/step in x");
  args.add_int("m", 0, "initial vertical speed: m cells/step");
  args.add_int("seed", 0x5EEDF00D, "initialisation seed");
  args.add_flag("rotate90", false, "rotate the distribution by 90 degrees");
  // Distribution.
  args.add_string("dist", "geometric", "uniform|geometric|sinusoidal|linear|patch");
  args.add_double("r", 0.99, "geometric ratio");
  args.add_double("alpha", 1.0, "linear distribution alpha");
  args.add_double("beta", 1.0, "linear distribution beta");
  args.add_int("patch-x0", 0, "patch region x0 (cells)");
  args.add_int("patch-x1", 100, "patch region x1");
  args.add_int("patch-y0", 0, "patch region y0");
  args.add_int("patch-y1", 100, "patch region y1");
  // Events.
  args.add_int("inject-count", 0, "particles injected into the lower-left quarter");
  args.add_int("inject-step", 0, "injection time step");
  args.add_double("remove-fraction", 0.0, "fraction removed domain-wide");
  args.add_int("remove-step", 0, "removal time step");
  // Parallel knobs.
  args.add_int("ranks", 4, "threadcomm ranks (baseline/diffusion)");
  args.add_string("balancer", "",
                  "lb strategy spec name[:key=val,...]; 'list' prints the registry; "
                  "empty = impl default (diffusion / greedy)");
  args.add_int("lb-every", 16, "steps between LB invocations (0 = never)");
  args.add_flag("measured-load", false, "balance on measured compute time");
  args.add_int("workers", 2, "ampi: worker threads");
  args.add_int("d", 4, "ampi/async: over-decomposition degree");
  // Resilience (docs/RESILIENCE.md).
  args.add_string("faults", "",
                  "fault plan, e.g. kill:rank=1,step=40;drop:prob=0.01,src=0");
  args.add_int("fault-seed", 1, "seed for probabilistic message faults");
  args.add_int("checkpoint-every", 0, "buddy-checkpoint every N steps (0 = off)");
  args.add_int("timeout-ms", 0, "blocking recv/probe deadline in ms (0 = none)");
  args.add_int("deadlock-ms", 0, "deadlock-detector window in ms (0 = off)");
  args.add_int("max-recoveries", 3, "rollbacks before giving up");
  args.add_string("recover", "rollback",
                  "repair rung for confirmed rank failures: rollback | local "
                  "(local = in-place buddy restore, survivors replay <= 1 step)");
  args.add_flag("reliable", false,
                "in-band reliable transport (seq/ack/retransmit): message "
                "faults heal without any rollback");
  args.add_int("rto-ms", 20, "reliable transport: base retransmit timer in ms");
  args.add_int("retransmit-budget", 8,
               "reliable transport: retransmissions per message before the "
               "transport abandons it");
  // Performance model.
  args.add_int("cores", 96, "model: core count");
  // Observability (docs/OBSERVABILITY.md); parallel drivers only.
  args.add_string("metrics-out", "", "write metrics JSON (picprk-bench-v1 schema)");
  args.add_string("trace-out", "", "write a Chrome trace_event JSON timeline");
  args.add_int("sample-every", 0,
               "steps between imbalance samples (0 = every step when observing)");
  if (!args.parse(argc, argv)) return 0;

  if (args.get_string("balancer") == "list") return print_balancer_list();

  pic::InitParams init;
  init.grid = pic::GridSpec(args.get_int("cells"), 1.0);
  init.total_particles = static_cast<std::uint64_t>(args.get_int("particles"));
  init.distribution = parse_distribution(args);
  init.k = static_cast<std::int32_t>(args.get_int("k"));
  init.m = static_cast<std::int32_t>(args.get_int("m"));
  init.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  init.rotate90 = args.get_flag("rotate90");
  const auto steps = static_cast<std::uint32_t>(args.get_int("steps"));
  const std::string impl = args.get_string("impl");
  g_impl = impl;

  if (impl == "model") {
    perfsim::MachineModel machine;
    machine.t_particle = 140e-9;
    const perfsim::Engine engine(machine, perfsim::ColumnWorkload::from_expected(init));
    perfsim::RunConfig run;
    run.steps = steps;
    run.shift_per_step = 2 * init.k + 1;
    const int cores = static_cast<int>(args.get_int("cores"));
    const auto base = engine.run_static(cores, run);
    // The diffusion column of the model reads its knobs from the same
    // --balancer spec as the real driver (defaults match lb/diffusion).
    perfsim::DiffusionModelParams dp;
    dp.frequency = static_cast<std::uint32_t>(args.get_int("lb-every"));
    dp.threshold = 0.1;
    dp.border_width = 1;
    const std::string spec_text = args.get_string("balancer");
    const lb::ParsedSpec spec =
        lb::parse_spec(spec_text.empty() ? "diffusion" : spec_text);
    if (auto it = spec.options.find("threshold"); it != spec.options.end()) {
      dp.threshold = std::stod(it->second);
    }
    if (auto it = spec.options.find("border"); it != spec.options.end()) {
      dp.border_width = std::stol(it->second);
    }
    const auto diff = engine.run_diffusion(cores, run, dp);
    perfsim::VprModelParams vp;
    vp.overdecomposition = static_cast<int>(args.get_int("d"));
    vp.lb_interval = static_cast<std::uint32_t>(args.get_int("lb-every"));
    if (!spec_text.empty()) vp.balancer = spec_text;
    const auto ampi = engine.run_vpr(cores, run, vp);
    util::Table table({"impl", "seconds", "avg imbalance", "max particles/core"});
    table.add_row({"mpi-2d", util::Table::fmt(base.seconds, 2),
                   util::Table::fmt(base.avg_imbalance, 2),
                   util::Table::fmt(base.max_particles_final, 0)});
    table.add_row({"mpi-2d-LB", util::Table::fmt(diff.seconds, 2),
                   util::Table::fmt(diff.avg_imbalance, 2),
                   util::Table::fmt(diff.max_particles_final, 0)});
    table.add_row({"ampi", util::Table::fmt(ampi.seconds, 2),
                   util::Table::fmt(ampi.avg_imbalance, 2),
                   util::Table::fmt(ampi.max_particles_final, 0)});
    table.print(std::cout);
    return 0;
  }

  // Everything below runs a real kernel: parse the command line into
  // one RunConfig and hand it to the engine named by --impl.
  par::RunConfig cfg;
  cfg.impl = impl;
  cfg.init = init;
  cfg.steps = steps;
  cfg.events = parse_events(args, init.grid.cells);
  cfg.ranks = static_cast<int>(args.get_int("ranks"));
  cfg.workers = static_cast<int>(args.get_int("workers"));
  cfg.overdecomposition = static_cast<int>(args.get_int("d"));
  cfg.lb = resolve_lb_options(args);

  // Telemetry sinks live in main so one registry/trace spans the whole
  // run regardless of driver; with neither flag given the hooks stay
  // null and the drivers run dark.
  const bool observing = !args.get_string("metrics-out").empty() ||
                         !args.get_string("trace-out").empty();
  obs::Registry registry;
  obs::Trace trace;
  if (observing) {
    cfg.obs.registry = &registry;
    cfg.obs.trace = &trace;
    const auto stride = static_cast<std::uint32_t>(args.get_int("sample-every"));
    cfg.sample_every = stride > 0 ? stride : 1;
  } else if (args.get_int("sample-every") > 0) {
    cfg.sample_every = static_cast<std::uint32_t>(args.get_int("sample-every"));
  }

  const std::string fault_text = args.get_string("faults");
  cfg.resilience.plan = ft::FaultPlan::parse(
      fault_text, static_cast<std::uint64_t>(args.get_int("fault-seed")));
  cfg.resilience.checkpoint_every =
      static_cast<std::uint32_t>(args.get_int("checkpoint-every"));
  cfg.resilience.timeout_ms = static_cast<int>(args.get_int("timeout-ms"));
  cfg.resilience.deadlock_ms = static_cast<int>(args.get_int("deadlock-ms"));
  cfg.resilience.max_recoveries =
      static_cast<std::uint32_t>(args.get_int("max-recoveries"));
  const std::string recover = args.get_string("recover");
  if (recover == "local") {
    cfg.resilience.recovery = par::RecoveryMode::kLocal;
  } else if (recover != "rollback") {
    throw std::invalid_argument("unknown --recover: " + recover +
                                " (rollback|local)");
  }
  cfg.resilience.reliable = args.get_flag("reliable");
  cfg.resilience.rto_ms = static_cast<int>(args.get_int("rto-ms"));
  cfg.resilience.retransmit_budget =
      static_cast<int>(args.get_int("retransmit-budget"));
  // make_engine validates the resilience knobs and resolves --impl; an
  // unknown impl surfaces as std::invalid_argument (exit 2) below. The
  // engine owns the whole run: world/hook wiring, the resilient re-run
  // loop and telemetry absorption into cfg.obs.registry.
  const std::unique_ptr<par::Engine> engine = par::make_engine(cfg);
  const par::RunReport result = engine->run();
  if (observing) {
    flush_observability(args, impl, registry, trace, result.result.step_samples);
  }
  std::cout << result.human_summary() << '\n' << result.result_line() << '\n';
  return result.exit_code();
} catch (const picprk::comm::CommTimeout& e) {
  return report_fault("comm-timeout", e.what(), 3);
} catch (const picprk::comm::DeadlockDetected& e) {
  return report_fault("deadlock", e.what(), 4);
} catch (const picprk::ft::RankKilled& e) {
  return report_fault("rank-killed", e.what(), 5);
} catch (const std::exception& e) {
  std::cerr << "picprk: " << e.what() << '\n';
  return 2;
}
