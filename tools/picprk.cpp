// picprk — the command-line front end to the PIC PRK, in the spirit of
// the official Parallel Research Kernels binaries: every knob of the
// specification (§III) and of the three reference implementations (§IV)
// is a flag, and the run ends with the verification verdict.
//
// Examples:
//   picprk --impl serial --cells 400 --particles 200000 --steps 400
//   picprk --impl diffusion --ranks 6 --dist geometric --r 0.98
//          --balancer diffusion:border=4,two_phase=1 --lb-every 8
//   picprk --impl ampi --workers 2 --d 8 --lb-every 16 --balancer compact
//   picprk --balancer list                     # the lb strategy registry
//   picprk --impl model --cores 384 --steps 6000   # performance model
//   picprk --impl baseline --ranks 4 --faults kill:rank=1,step=40
//          --checkpoint-every 16 --timeout-ms 2000   # resilience drill
//   picprk --impl diffusion --faults "drop:prob=0.01;kill:rank=1,step=40"
//          --reliable --recover local --checkpoint-every 1   # full ladder
//   echo "submit a:dist=geometric,particles=50000" | picprk serve
//          --workers 4 --metrics-dir out          # multi-tenant job server
//
// Exit codes: 0 verified, 1 verification failed, 2 usage/unhandled error,
// 3 comm timeout, 4 deadlock detected, 5 unrecovered rank death. Every
// run additionally prints one machine-readable "RESULT key=value ..."
// line on stdout for harnesses to parse.
#include <fstream>
#include <iostream>

#include "comm/world.hpp"
#include "ft/checkpoint.hpp"
#include "ft/fault.hpp"
#include "lb/registry.hpp"
#include "obs/phase.hpp"
#include "obs/registry.hpp"
#include "obs/sinks.hpp"
#include "par/ampi.hpp"
#include "par/baseline.hpp"
#include "par/diffusion.hpp"
#include "par/resilient.hpp"
#include "perfsim/engine.hpp"
#include "pic/simulation.hpp"
#include "svc/server.hpp"
#include "util/cli.hpp"
#include "util/report.hpp"
#include "util/table.hpp"

namespace {

using namespace picprk;

pic::Distribution parse_distribution(const util::ArgParser& args) {
  const std::string name = args.get_string("dist");
  if (name == "uniform") return pic::Uniform{};
  if (name == "geometric") return pic::Geometric{args.get_double("r")};
  if (name == "sinusoidal") return pic::Sinusoidal{};
  if (name == "linear")
    return pic::Linear{args.get_double("alpha"), args.get_double("beta")};
  if (name == "patch") {
    const auto cells = args.get_int("cells");
    return pic::Patch{pic::CellRegion{args.get_int("patch-x0"),
                                      std::min(args.get_int("patch-x1"), cells),
                                      args.get_int("patch-y0"),
                                      std::min(args.get_int("patch-y1"), cells)}};
  }
  throw std::invalid_argument("unknown --dist: " + name +
                              " (uniform|geometric|sinusoidal|linear|patch)");
}

pic::EventSchedule parse_events(const util::ArgParser& args, std::int64_t cells) {
  std::vector<pic::InjectionEvent> injections;
  std::vector<pic::RemovalEvent> removals;
  if (args.get_int("inject-count") > 0) {
    injections.push_back(pic::InjectionEvent{
        static_cast<std::uint32_t>(args.get_int("inject-step")),
        pic::CellRegion{0, cells / 2, 0, cells / 2},
        static_cast<std::uint64_t>(args.get_int("inject-count"))});
  }
  if (args.get_double("remove-fraction") > 0) {
    removals.push_back(pic::RemovalEvent{
        static_cast<std::uint32_t>(args.get_int("remove-step")),
        pic::CellRegion{0, cells, 0, cells}, args.get_double("remove-fraction")});
  }
  return pic::EventSchedule(std::move(injections), std::move(removals));
}

/// `--balancer list`: the registry as a table (name, capabilities,
/// summary) — the enumerable assessment matrix of the lb subsystem.
int print_balancer_list() {
  util::Table table({"name", "bounds", "placement", "degraded", "summary"});
  for (const lb::Descriptor& d : lb::registered_strategies()) {
    table.add_row({d.name, d.bounds ? "yes" : "-", d.placement ? "yes" : "-",
                   d.degraded ? "yes" : "-", d.summary});
  }
  table.print(std::cout);
  return 0;
}

/// Resolves the uniform --balancer/--lb-every selection plus the
/// deprecated per-driver flags into LbOptions. Legacy flags warn once on
/// stderr and overlay onto the spec only when the named strategy accepts
/// the key (and the spec does not already pin it).
par::LbOptions resolve_lb_options(const util::ArgParser& args, const std::string& impl) {
  par::LbOptions lb;
  lb.strategy = args.get_string("balancer");
  lb.every = static_cast<std::uint32_t>(args.get_int("lb-every"));
  lb.measured = args.get_flag("measured-load");

  const auto deprecated = [&](const char* flag, const std::string& instead) {
    std::cerr << "picprk: --" << flag << " is deprecated; use " << instead << '\n';
  };
  if (!args.supplied("lb-every")) {
    if (args.supplied("lb-frequency")) {
      deprecated("lb-frequency", "--lb-every");
      lb.every = static_cast<std::uint32_t>(args.get_int("lb-frequency"));
    } else if (args.supplied("F")) {
      deprecated("F", "--lb-every");
      lb.every = static_cast<std::uint32_t>(args.get_int("F"));
    }
  }

  // Overlay legacy strategy knobs onto the spec. The overlay targets the
  // effective strategy (impl default when the spec is empty); keys the
  // strategy does not accept are dropped with the warning only.
  lb::ParsedSpec spec = lb::parse_spec(
      lb.strategy.empty() ? (impl == "ampi" ? "greedy" : "diffusion") : lb.strategy);
  const auto accepts = [&](const std::string& key) {
    if (spec.name == "diffusion")
      return key == "threshold" || key == "border" || key == "two_phase";
    if (spec.name == "rcb") return key == "threshold" || key == "two_phase";
    return false;
  };
  const auto overlay = [&](const std::string& key, const std::string& value) {
    if (accepts(key) && spec.options.find(key) == spec.options.end()) {
      spec.options[key] = value;
    }
  };
  bool overlaid = false;
  if (args.supplied("lb-threshold")) {
    deprecated("lb-threshold", "--balancer " + spec.name + ":threshold=...");
    overlay("threshold", std::to_string(args.get_double("lb-threshold")));
    overlaid = true;
  }
  if (args.supplied("lb-border")) {
    deprecated("lb-border", "--balancer diffusion:border=...");
    overlay("border", std::to_string(args.get_int("lb-border")));
    overlaid = true;
  }
  if (args.supplied("two-phase")) {
    deprecated("two-phase", "--balancer " + spec.name + ":two_phase=1");
    overlay("two_phase", "1");
    overlaid = true;
  }
  if (overlaid || !lb.strategy.empty()) {
    std::string rebuilt = spec.name;
    char sep = ':';
    for (const auto& [key, value] : spec.options) {
      rebuilt += sep;
      rebuilt += key + "=" + value;
      sep = ',';
    }
    lb.strategy = rebuilt;
  }
  return lb;
}

int report(const char* impl, bool ok, std::uint64_t particles, double seconds,
           const std::string& extra = {}, const std::string& machine_extra = {}) {
  std::cout << impl << ": " << (ok ? "VERIFIED" : "VERIFICATION FAILED") << " — "
            << particles << " particles, " << util::Table::fmt(seconds, 3) << " s";
  if (!extra.empty()) std::cout << " (" << extra << ')';
  std::cout << '\n';
  // One-line machine-readable summary (stable key=value grammar).
  std::cout << "RESULT impl=" << impl << " status=" << (ok ? "pass" : "fail")
            << " particles=" << particles << " seconds="
            << util::Table::fmt(seconds, 6);
  if (!machine_extra.empty()) std::cout << ' ' << machine_extra;
  std::cout << '\n';
  return ok ? 0 : 1;
}

/// RESULT trailer shared by the threadcomm/vpr drivers.
std::string driver_machine_extra(const picprk::par::DriverResult& r) {
  return "checksum=" + std::to_string(r.verification.id_checksum) +
         " expected=" + std::to_string(r.expected_id_checksum) +
         " exchanged=" + std::to_string(r.particles_exchanged) +
         " checkpoints=" + std::to_string(r.checkpoints) +
         " checkpoint_bytes=" + std::to_string(r.checkpoint_bytes) +
         " recoveries=" + std::to_string(r.recoveries) +
         " localized=" + std::to_string(r.localized_recoveries) +
         " replayed=" + std::to_string(r.replayed_steps);
}

/// The run's knobs as the "config" object of the metrics document, so
/// archived runs are self-describing (same idea as bench_json.hpp).
util::JsonObject run_config_json(const util::ArgParser& args, const std::string& impl) {
  util::JsonObject config;
  config.add("impl", impl);
  config.add("cells", args.get_int("cells"));
  config.add("particles", args.get_int("particles"));
  config.add("steps", args.get_int("steps"));
  config.add("k", args.get_int("k"));
  config.add("m", args.get_int("m"));
  config.add("dist", args.get_string("dist"));
  config.add("ranks", args.get_int("ranks"));
  config.add("workers", args.get_int("workers"));
  config.add("overdecomposition", args.get_int("d"));
  config.add("balancer", args.get_string("balancer"));
  config.add("lb_every", args.get_int("lb-every"));
  return config;
}

/// Folds a finished driver result into the run registry as gauges and
/// counters, so the metrics document carries the headline scalars next
/// to the per-phase instruments.
void absorb_result(obs::Registry& registry, const picprk::par::DriverResult& r) {
  registry.register_gauge("run/seconds").set(r.seconds);
  registry.register_gauge("run/final_particles").set(static_cast<double>(r.final_particles));
  registry.register_gauge("run/max_particles_per_rank")
      .set(static_cast<double>(r.max_particles_per_rank));
  registry.register_gauge("run/phase_compute_seconds").set(r.phases.compute);
  registry.register_gauge("run/phase_exchange_seconds").set(r.phases.exchange);
  registry.register_gauge("run/phase_lb_seconds").set(r.phases.lb);
  registry.register_gauge("run/phase_checkpoint_seconds").set(r.phases.checkpoint);
  registry.register_counter("run/particles_exchanged").add(r.particles_exchanged);
  registry.register_counter("run/exchange_bytes").add(r.exchange_bytes);
  registry.register_counter("run/lb_actions").add(r.lb_actions);
  registry.register_counter("run/checkpoints").add(r.checkpoints);
  registry.register_counter("run/recoveries").add(r.recoveries);
}

/// Copies every counter of a per-instance registry (fault injector,
/// checkpoint store) into the run registry for export.
void absorb_counters(obs::Registry& registry, const obs::Registry& source) {
  for (const auto& view : source.counters()) {
    registry.register_counter(view.name).add(view.value);
  }
}

/// Post-run sink flush: writes the requested trace/metrics files and
/// prints the instrument summary tables. No-op when neither --trace-out
/// nor --metrics-out was given.
void flush_observability(const util::ArgParser& args, const std::string& impl,
                         const obs::Registry& registry, const obs::Trace& trace,
                         const std::vector<obs::StepSample>& samples) {
  const std::string trace_path = args.get_string("trace-out");
  const std::string metrics_path = args.get_string("metrics-out");
  if (trace_path.empty() && metrics_path.empty()) return;
  if (!trace_path.empty() && !trace.write_json(trace_path)) {
    std::cerr << "picprk: cannot write trace to " << trace_path << '\n';
  }
  if (!metrics_path.empty() &&
      !obs::write_metrics_json(metrics_path, "picprk", run_config_json(args, impl),
                               registry, samples)) {
    std::cerr << "picprk: cannot write metrics to " << metrics_path << '\n';
  }
  obs::print_summary(std::cout, registry, samples);
}

/// `picprk serve`: the multi-tenant job server (docs/SERVICE.md). Jobs
/// arrive as submit/cancel/drain lines on stdin or from --jobs; every
/// tenant prints its own RESULT line and (with --metrics-dir) its own
/// picprk-bench-v1 document.
int run_serve(int argc, char** argv) {
  util::ArgParser args("picprk serve",
                       "multi-tenant job server: many kernels, one shared runtime");
  args.add_int("workers", 4, "shared-pool worker threads");
  args.add_string("scheduler", "greedy",
                  "cross-job placement strategy (lb registry spec)");
  args.add_int("quantum", 8, "supersteps granted per cycle at weight 1");
  args.add_int("queue-capacity", 16,
               "admission bound: live jobs beyond this are rejected");
  args.add_string("jobs", "-", "command file with submit/cancel/drain lines "
                               "('-' = stdin)");
  args.add_string("metrics-dir", "",
                  "write per-job metrics JSON documents into this directory");
  args.add_string("trace-out", "",
                  "write a Chrome trace with one lane per job (pid = job id)");
  args.add_flag("no-steal", false,
                "execute the cross-job placement verbatim (no work stealing)");
  args.add_flag("static-cost", false,
                "ignore measured step cost in placement (reproducible plans)");
  if (!args.parse(argc, argv)) return 0;

  svc::ServerConfig cfg;
  cfg.workers = static_cast<int>(args.get_int("workers"));
  cfg.scheduler = args.get_string("scheduler");
  cfg.quantum = static_cast<std::uint32_t>(args.get_int("quantum"));
  cfg.queue_capacity = static_cast<std::size_t>(args.get_int("queue-capacity"));
  cfg.metrics_dir = args.get_string("metrics-dir");
  cfg.trace_path = args.get_string("trace-out");
  cfg.allow_steal = !args.get_flag("no-steal");
  cfg.measured_cost = !args.get_flag("static-cost");
  svc::Server server(cfg);

  const std::string jobs_path = args.get_string("jobs");
  if (jobs_path == "-") return server.run_commands(std::cin, std::cout);
  std::ifstream in(jobs_path);
  if (!in) {
    std::cerr << "picprk serve: cannot open " << jobs_path << '\n';
    return 2;
  }
  return server.run_commands(in, std::cout);
}

/// Selected implementation, for the RESULT line of a faulted run.
std::string g_impl = "unknown";

/// Machine-readable failure line + exit code for a typed fault outcome.
int report_fault(const char* status, const std::string& what, int code) {
  std::cerr << "picprk: " << what << '\n';
  std::cout << "RESULT impl=" << g_impl << " status=" << status << '\n';
  return code;
}

}  // namespace

int main(int argc, char** argv) try {
  // Subcommand dispatch: `picprk serve` owns its own flag set.
  if (argc >= 2 && std::string(argv[1]) == "serve") {
    return run_serve(argc - 1, argv + 1);
  }

  util::ArgParser args("picprk", "the PIC Parallel Research Kernel");
  args.add_string("impl", "serial",
                  "serial | baseline | diffusion | ampi | model");
  args.add_int("cells", 200, "mesh cells per dimension (even)");
  args.add_int("particles", 100000, "requested particle count");
  args.add_int("steps", 200, "time steps");
  args.add_int("k", 0, "charge multiple: (2k+1) cells/step in x");
  args.add_int("m", 0, "initial vertical speed: m cells/step");
  args.add_int("seed", 0x5EEDF00D, "initialisation seed");
  args.add_flag("rotate90", false, "rotate the distribution by 90 degrees");
  // Distribution.
  args.add_string("dist", "geometric", "uniform|geometric|sinusoidal|linear|patch");
  args.add_double("r", 0.99, "geometric ratio");
  args.add_double("alpha", 1.0, "linear distribution alpha");
  args.add_double("beta", 1.0, "linear distribution beta");
  args.add_int("patch-x0", 0, "patch region x0 (cells)");
  args.add_int("patch-x1", 100, "patch region x1");
  args.add_int("patch-y0", 0, "patch region y0");
  args.add_int("patch-y1", 100, "patch region y1");
  // Events.
  args.add_int("inject-count", 0, "particles injected into the lower-left quarter");
  args.add_int("inject-step", 0, "injection time step");
  args.add_double("remove-fraction", 0.0, "fraction removed domain-wide");
  args.add_int("remove-step", 0, "removal time step");
  // Parallel knobs.
  args.add_int("ranks", 4, "threadcomm ranks (baseline/diffusion)");
  args.add_string("balancer", "",
                  "lb strategy spec name[:key=val,...]; 'list' prints the registry; "
                  "empty = impl default (diffusion / greedy)");
  args.add_int("lb-every", 16, "steps between LB invocations (0 = never)");
  args.add_flag("measured-load", false, "balance on measured compute time");
  args.add_int("workers", 2, "ampi: worker threads");
  args.add_int("d", 4, "ampi: over-decomposition degree");
  // Deprecated aliases, kept for script compatibility (the model impl
  // still reads them as plain perfsim parameters, without warnings).
  args.add_int("lb-frequency", 16, "deprecated alias of --lb-every");
  args.add_double("lb-threshold", 0.1,
                  "deprecated: use --balancer <name>:threshold=...");
  args.add_int("lb-border", 1, "deprecated: use --balancer diffusion:border=...");
  args.add_flag("two-phase", false,
                "deprecated: use --balancer <name>:two_phase=1");
  args.add_int("F", 16, "deprecated alias of --lb-every");
  // Resilience (docs/RESILIENCE.md).
  args.add_string("faults", "",
                  "fault plan, e.g. kill:rank=1,step=40;drop:prob=0.01,src=0");
  args.add_int("fault-seed", 1, "seed for probabilistic message faults");
  args.add_int("checkpoint-every", 0, "buddy-checkpoint every N steps (0 = off)");
  args.add_int("timeout-ms", 0, "blocking recv/probe deadline in ms (0 = none)");
  args.add_int("deadlock-ms", 0, "deadlock-detector window in ms (0 = off)");
  args.add_int("max-recoveries", 3, "rollbacks before giving up");
  args.add_string("recover", "rollback",
                  "repair rung for confirmed rank failures: rollback | local "
                  "(local = in-place buddy restore, survivors replay <= 1 step)");
  args.add_flag("reliable", false,
                "in-band reliable transport (seq/ack/retransmit): message "
                "faults heal without any rollback");
  args.add_int("rto-ms", 20, "reliable transport: base retransmit timer in ms");
  args.add_int("retransmit-budget", 8,
               "reliable transport: retransmissions per message before the "
               "transport abandons it");
  // Performance model.
  args.add_int("cores", 96, "model: core count");
  // Observability (docs/OBSERVABILITY.md); parallel drivers only.
  args.add_string("metrics-out", "", "write metrics JSON (picprk-bench-v1 schema)");
  args.add_string("trace-out", "", "write a Chrome trace_event JSON timeline");
  args.add_int("sample-every", 0,
               "steps between imbalance samples (0 = every step when observing)");
  if (!args.parse(argc, argv)) return 0;

  if (args.get_string("balancer") == "list") return print_balancer_list();

  pic::InitParams init;
  init.grid = pic::GridSpec(args.get_int("cells"), 1.0);
  init.total_particles = static_cast<std::uint64_t>(args.get_int("particles"));
  init.distribution = parse_distribution(args);
  init.k = static_cast<std::int32_t>(args.get_int("k"));
  init.m = static_cast<std::int32_t>(args.get_int("m"));
  init.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  init.rotate90 = args.get_flag("rotate90");
  const auto steps = static_cast<std::uint32_t>(args.get_int("steps"));
  const std::string impl = args.get_string("impl");
  g_impl = impl;

  if (impl == "serial") {
    pic::SimulationConfig cfg;
    cfg.init = init;
    cfg.steps = steps;
    cfg.events = parse_events(args, init.grid.cells);
    const auto r = pic::run_serial(cfg);
    return report("serial", r.ok(), r.final_particles, r.seconds,
                  "max err " + util::Table::fmt(r.verification.max_position_error, 9));
  }

  if (impl == "model") {
    perfsim::MachineModel machine;
    machine.t_particle = 140e-9;
    const perfsim::Engine engine(machine, perfsim::ColumnWorkload::from_expected(init));
    perfsim::RunConfig run;
    run.steps = steps;
    run.shift_per_step = 2 * init.k + 1;
    const int cores = static_cast<int>(args.get_int("cores"));
    const auto base = engine.run_static(cores, run);
    const auto diff = engine.run_diffusion(
        cores, run,
        perfsim::DiffusionModelParams{
            static_cast<std::uint32_t>(args.get_int("lb-frequency")),
            args.get_double("lb-threshold"), args.get_int("lb-border")});
    perfsim::VprModelParams vp;
    vp.overdecomposition = static_cast<int>(args.get_int("d"));
    vp.lb_interval = static_cast<std::uint32_t>(
        args.supplied("F") ? args.get_int("F") : args.get_int("lb-every"));
    if (!args.get_string("balancer").empty()) vp.balancer = args.get_string("balancer");
    const auto ampi = engine.run_vpr(cores, run, vp);
    util::Table table({"impl", "seconds", "avg imbalance", "max particles/core"});
    table.add_row({"mpi-2d", util::Table::fmt(base.seconds, 2),
                   util::Table::fmt(base.avg_imbalance, 2),
                   util::Table::fmt(base.max_particles_final, 0)});
    table.add_row({"mpi-2d-LB", util::Table::fmt(diff.seconds, 2),
                   util::Table::fmt(diff.avg_imbalance, 2),
                   util::Table::fmt(diff.max_particles_final, 0)});
    table.add_row({"ampi", util::Table::fmt(ampi.seconds, 2),
                   util::Table::fmt(ampi.avg_imbalance, 2),
                   util::Table::fmt(ampi.max_particles_final, 0)});
    table.print(std::cout);
    return 0;
  }

  // Everything below runs a real parallel driver: parse the command line
  // into one RunConfig and pass it by const reference everywhere.
  par::RunConfig cfg;
  cfg.init = init;
  cfg.steps = steps;
  cfg.events = parse_events(args, init.grid.cells);
  cfg.ranks = static_cast<int>(args.get_int("ranks"));
  cfg.workers = static_cast<int>(args.get_int("workers"));
  cfg.overdecomposition = static_cast<int>(args.get_int("d"));
  cfg.lb = resolve_lb_options(args, impl);

  // Telemetry sinks live in main so one registry/trace spans the whole
  // run regardless of driver; with neither flag given the hooks stay
  // null and the drivers run dark.
  const bool observing = !args.get_string("metrics-out").empty() ||
                         !args.get_string("trace-out").empty();
  obs::Registry registry;
  obs::Trace trace;
  if (observing) {
    cfg.obs.registry = &registry;
    cfg.obs.trace = &trace;
    const auto stride = static_cast<std::uint32_t>(args.get_int("sample-every"));
    cfg.sample_every = stride > 0 ? stride : 1;
  } else if (args.get_int("sample-every") > 0) {
    cfg.sample_every = static_cast<std::uint32_t>(args.get_int("sample-every"));
  }

  const std::string fault_text = args.get_string("faults");
  cfg.resilience.plan = ft::FaultPlan::parse(
      fault_text, static_cast<std::uint64_t>(args.get_int("fault-seed")));
  cfg.resilience.checkpoint_every =
      static_cast<std::uint32_t>(args.get_int("checkpoint-every"));
  cfg.resilience.timeout_ms = static_cast<int>(args.get_int("timeout-ms"));
  cfg.resilience.deadlock_ms = static_cast<int>(args.get_int("deadlock-ms"));
  cfg.resilience.max_recoveries =
      static_cast<std::uint32_t>(args.get_int("max-recoveries"));
  const std::string recover = args.get_string("recover");
  if (recover == "local") {
    cfg.resilience.recovery = par::RecoveryMode::kLocal;
  } else if (recover != "rollback") {
    throw std::invalid_argument("unknown --recover: " + recover +
                                " (rollback|local)");
  }
  cfg.resilience.reliable = args.get_flag("reliable");
  cfg.resilience.rto_ms = static_cast<int>(args.get_int("rto-ms"));
  cfg.resilience.retransmit_budget =
      static_cast<int>(args.get_int("retransmit-budget"));
  cfg.resilience.validate();  // loud cross-knob rejection at parse time
  const bool resilient = cfg.resilience.active();

  if (impl == "ampi") {
    // Under vpr there is no World: install the hooks directly; the driver
    // recovers in-process (rewind + pup_unpack).
    ft::FaultInjector injector(cfg.resilience.plan);
    ft::CheckpointStore store;
    if (resilient) {
      cfg.ft.injector = cfg.resilience.plan.empty() ? nullptr : &injector;
      cfg.ft.store = cfg.resilience.checkpoint_every > 0 ? &store : nullptr;
      cfg.ft.checkpoint_every = cfg.resilience.checkpoint_every;
    }
    const auto r = par::run_ampi(cfg);
    if (observing) {
      absorb_result(registry, r);
      if (resilient) {
        absorb_counters(registry, injector.metrics());
        absorb_counters(registry, store.metrics());
      }
      flush_observability(args, impl, registry, trace, r.step_samples);
    }
    return report("ampi", r.ok, r.final_particles, r.seconds,
                  std::to_string(r.lb_actions) + " migrations, max/worker " +
                      std::to_string(r.max_particles_per_rank),
                  driver_machine_extra(r));
  }

  if (impl == "baseline" || impl == "diffusion") {
    const par::DriverFn driver = [&](comm::Comm& comm, const par::RunConfig& rc) {
      return impl == "baseline" ? par::run_baseline(comm, rc)
                                : par::run_diffusion(comm, rc);
    };

    par::DriverResult result;
    std::string ft_extra;
    if (resilient) {
      par::ResilienceTelemetry rtel;
      result = par::run_resilient(cfg, driver, &rtel);
      // "ft/rollbacks", "ft/localized_recoveries" and "ft/replayed_steps"
      // are registered by run_resilient itself on cfg.obs.registry.
      if (observing) {
        registry.register_counter("ft/dropped").add(rtel.dropped);
        registry.register_counter("ft/duplicated").add(rtel.duplicated);
        registry.register_counter("ft/delayed").add(rtel.delayed);
        registry.register_counter("ft/kills").add(rtel.kills);
        registry.register_counter("ft/stalls").add(rtel.stalls);
        registry.register_counter("ft/checkpoint_saves").add(rtel.checkpoint_saves);
        registry.register_counter("ft/residual_messages").add(rtel.residual_messages);
        registry.register_counter("ft/retransmits").add(rtel.retransmits);
        registry.register_counter("ft/dup_dropped").add(rtel.dup_dropped);
        registry.register_counter("ft/abandoned").add(rtel.abandoned);
      }
      ft_extra = " rollbacks=" + std::to_string(rtel.rollbacks) +
                 " retransmits=" + std::to_string(rtel.retransmits) +
                 " dup_dropped=" + std::to_string(rtel.dup_dropped);
    } else {
      comm::World world(cfg.ranks);
      world.run([&](comm::Comm& comm) {
        par::DriverResult r = driver(comm, cfg);
        if (comm.rank() == 0) result = r;
      });
    }
    if (observing) {
      absorb_result(registry, result);
      flush_observability(args, impl, registry, trace, result.step_samples);
    }
    return report(impl.c_str(), result.ok, result.final_particles, result.seconds,
                  std::to_string(result.particles_exchanged) + " exchanged, max/rank " +
                      std::to_string(result.max_particles_per_rank),
                  driver_machine_extra(result) + ft_extra);
  }

  std::cerr << "unknown --impl: " << impl << "\n" << args.usage();
  return 2;
} catch (const picprk::comm::CommTimeout& e) {
  return report_fault("comm-timeout", e.what(), 3);
} catch (const picprk::comm::DeadlockDetected& e) {
  return report_fault("deadlock", e.what(), 4);
} catch (const picprk::ft::RankKilled& e) {
  return report_fault("rank-killed", e.what(), 5);
} catch (const std::exception& e) {
  std::cerr << "picprk: " << e.what() << '\n';
  return 2;
}
