// Reproduces Figure 6 (Right): strong scaling across nodes, 24–384
// cores. Paper headlines: the diffusion-LB implementation scales to 384
// cores and beats ampi by ~2× there; best speedups over serial are 179×
// (mpi-2d-LB) and 92× (ampi).
//
// Same workload as Figure 6 Left (2,998² cells, 600,000 particles,
// 6,000 steps, geometric r = 0.999, k = 0); per-point tuning.
#include <cstdint>
#include <iostream>

#include "common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace picprk;
  util::ArgParser args("bench_fig6_strong_multi",
                       "Figure 6 Right: strong scaling across nodes");
  args.add_int("steps", 6000, "time steps (paper: 6000)");
  args.add_string("csv", "", "optional path for machine-readable series output");
  if (!args.parse(argc, argv)) return 0;

  const auto run = bench::paper_run(static_cast<std::uint32_t>(args.get_int("steps")));
  const perfsim::Engine engine(bench::edison_model(),
                               perfsim::ColumnWorkload::from_expected(bench::fig6_workload()));
  const double serial = engine.serial_seconds(run);

  std::cout << "=== Figure 6 Right: strong scaling, multiple nodes (model) ===\n"
            << "serial reference: " << util::Table::fmt(serial, 1) << " s\n\n";

  util::Table table({"cores", "mpi-2d", "ampi", "mpi-2d-LB", "LB speedup", "ampi speedup",
                     "LB/ampi"});
  std::vector<double> xs, base_s, ampi_s, lb_s;
  double lb384 = 0, ampi384 = 0;
  for (int cores : {24, 48, 96, 192, 384}) {
    const auto base = engine.run_static(cores, run);
    const auto ampi = bench::tune_vpr(engine, cores, run).result;
    const auto lb = bench::tune_diffusion(engine, cores, run).result;
    table.add_row({std::to_string(cores), util::Table::fmt(base.seconds, 1),
                   util::Table::fmt(ampi.seconds, 1), util::Table::fmt(lb.seconds, 1),
                   util::Table::fmt(serial / lb.seconds, 0),
                   util::Table::fmt(serial / ampi.seconds, 0),
                   util::Table::fmt(ampi.seconds / lb.seconds, 2)});
    xs.push_back(cores);
    base_s.push_back(base.seconds);
    ampi_s.push_back(ampi.seconds);
    lb_s.push_back(lb.seconds);
    if (cores == 384) {
      lb384 = lb.seconds;
      ampi384 = ampi.seconds;
    }
  }
  table.print(std::cout);
  std::cout << "\nat 384 cores (paper: LB beats ampi ~2x; speedups 179x LB / 92x ampi):\n"
            << "  model LB speedup:      " << util::Table::fmt(serial / lb384, 0) << "x\n"
            << "  model ampi speedup:    " << util::Table::fmt(serial / ampi384, 0) << "x\n"
            << "  model ampi/LB ratio:   " << util::Table::fmt(ampi384 / lb384, 2) << "x\n\n";

  const std::vector<util::Series> series = {{"fig6R_mpi2d", xs, base_s},
                                            {"fig6R_ampi", xs, ampi_s},
                                            {"fig6R_mpi2dLB", xs, lb_s}};
  util::print_series_csv(std::cout, series);
  bench::maybe_write_series_csv(args.get_string("csv"), series);
  return 0;
}
