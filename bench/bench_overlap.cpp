// The async engine's performance claim (ROADMAP item 1): on a straggler
// workload the barriered sync loop serialises the world behind its most
// loaded ranks every step, while the async engine spreads the load by
// stealing VPs onto idle ranks and hides exchange latency behind
// compute via incremental iexchange delivery.
//
// The scenario is a particle band covering only rank 0's VP row: the
// k=1 horizontal streaming (3 cells/step in x) disperses any
// x-concentration within a few steps, but nothing moves in y, so the
// band is a *persistent* straggler. The sync baseline (no placement LB)
// is stuck with it for the whole run; async + `steal` flattens it at
// the first LB point.
//
// The gate follows the bench_service convention of scaling with the
// machine's actual parallelism: flattening a straggler can only pay
// when the idle ranks own real cores. With P usable cores a rank
// thread's wall share is max(load share, 1/P), so the achievable
// sync/async ratio is
//     bound(P) = max(1/px, 1/P) / max(1/ranks, 1/P)
// (px bottom-row ranks share the band under the sync Cart2D grid; async
// levels to 1/ranks). On a full machine (P >= ranks) the gate is the
// hard 1.15x; on starved machines (CI containers with 1-2 cores,
// bound = 1) the gate degrades to an overhead bound: async may not run
// worse than 0.5x sync even with zero parallelism to exploit. The
// overlap telemetry assertion holds everywhere.
#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "comm/cart.hpp"
#include "comm/world.hpp"
#include "obs/registry.hpp"
#include "obs/sinks.hpp"
#include "par/async.hpp"
#include "par/baseline.hpp"
#include "par/run_config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace picprk;
  util::ArgParser args("bench_overlap",
                       "async engine vs sync loop on a straggler workload");
  args.add_int("cells", 64, "mesh cells per dimension");
  args.add_int("particles", 800000, "global particle count (all in the band)");
  args.add_int("steps", 24, "time steps per run");
  args.add_int("ranks", 4, "threadcomm ranks");
  args.add_int("d", 4, "async: over-decomposition degree");
  args.add_int("reps", 3, "repetitions per engine (best reported)");
  args.add_flag("smoke", false, "smaller sizes for CI");
  args.add_string("trace-out", "",
                  "write the async run's Chrome trace (shows compute/wait overlap)");
  if (!args.parse(argc, argv)) return 0;

  const bool smoke = args.get_flag("smoke");
  const int ranks = static_cast<int>(args.get_int("ranks"));
  const int reps = smoke ? 2 : static_cast<int>(args.get_int("reps"));

  // The persistent straggler: full-width band over rank 0's VP row.
  // Under the sync Cart2D(ranks) grid the band lands on the px
  // bottom-row ranks; under the async block VP assignment it lands
  // entirely on rank 0 until `steal` redistributes it.
  par::RunConfig cfg;
  const std::int64_t cells = args.get_int("cells");
  cfg.init.grid = pic::GridSpec(cells, 1.0);
  cfg.init.total_particles =
      static_cast<std::uint64_t>(smoke ? 300000 : args.get_int("particles"));
  const comm::BlockRange band = comm::block_range(cells, ranks, 0);
  cfg.init.distribution = pic::Patch{pic::CellRegion{0, cells, band.lo, band.hi}};
  cfg.init.k = 1;  // 3 cells/step in x: steady exchange, no y transport
  cfg.steps = static_cast<std::uint32_t>(smoke ? 12 : args.get_int("steps"));
  cfg.ranks = ranks;
  // Smoke halves the over-decomposition: d=4's narrower VP tiles inflate
  // single-core compute (cache pressure), and the starved-machine gate
  // is an overhead bound, not a parallelism claim.
  cfg.overdecomposition = smoke ? 2 : static_cast<int>(args.get_int("d"));
  cfg.lb.strategy = "steal";
  cfg.lb.every = 4;  // flatten early, then amortise the quiet-point cost

  const auto sync_once = [&] {
    double seconds = 0.0;
    bool ok = false;
    comm::World world(ranks);
    world.run([&](comm::Comm& comm) {
      const par::DriverResult r = par::run_baseline(comm, cfg);
      if (comm.rank() == 0) {
        seconds = r.seconds;
        ok = r.ok;
      }
    });
    if (!ok) {
      std::cerr << "bench_overlap: sync verification failed\n";
      std::exit(1);
    }
    return seconds;
  };

  const auto async_once = [&] {
    const par::DriverResult r = par::run_async(cfg);
    if (!r.ok) {
      std::cerr << "bench_overlap: async verification failed\n";
      std::exit(1);
    }
    return r.seconds;
  };

  std::cout << "=== overlap: sync baseline vs async+steal, straggler band ===\n"
            << cfg.init.total_particles << " particles on rank 0's row of "
            << ranks << ", " << cells << "^2 cells, " << cfg.steps
            << " steps, d=" << cfg.overdecomposition << "\n\n";

  // Warm-up both paths (thread pools, allocators), then time.
  sync_once();
  async_once();

  double sync_best = 1e300, async_best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    sync_best = std::min(sync_best, sync_once());
    async_best = std::min(async_best, async_once());
  }

  // One observed async run (untimed): prove the overlap actually
  // happened — payloads delivered while other VPs were still computing —
  // and optionally write the trace that shows compute/wait interleaving.
  obs::Registry registry;
  obs::Trace trace;
  par::RunConfig observed = cfg;
  observed.obs.registry = &registry;
  observed.obs.trace = &trace;
  const par::DriverResult or_ = par::run_async(observed);
  std::uint64_t overlap = 0, drained = 0, tokens = 0;
  for (const auto& c : registry.counters()) {
    if (c.name == "async/overlap_deliveries") overlap = c.value;
    if (c.name == "async/drain_deliveries") drained = c.value;
    if (c.name == "async/token_rounds") tokens = c.value;
  }
  const std::string trace_path = args.get_string("trace-out");
  if (!trace_path.empty() && !trace.write_json(trace_path)) {
    std::cerr << "bench_overlap: cannot write trace to " << trace_path << '\n';
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const double p = static_cast<double>(std::min<unsigned>(hw, static_cast<unsigned>(ranks)));
  const comm::Cart2D sync_cart(ranks);
  const double sync_share = 1.0 / static_cast<double>(sync_cart.px());
  const double bound = std::max(sync_share, 1.0 / p) /
                       std::max(1.0 / static_cast<double>(ranks), 1.0 / p);
  const bool full_machine = hw >= static_cast<unsigned>(ranks);
  // Starved machines measure 0.56-0.68x here (the async engine's per-step
  // token ring and VP bookkeeping priced against zero parallel payoff);
  // 0.5 keeps headroom against timer noise while still catching a
  // catastrophic regression in the engine's serial overheads.
  const double gate = full_machine ? 1.15 : 0.5;

  const double speedup = async_best > 0 ? sync_best / async_best : 0.0;
  util::Table table({"engine", "seconds", "exchanged", "notes"});
  table.add_row({"sync baseline", util::Table::fmt(sync_best, 3), "-",
                 "stuck at lambda ~= " +
                     std::to_string(sync_cart.px()) + " all run"});
  table.add_row({"async + steal", util::Table::fmt(async_best, 3),
                 std::to_string(or_.particles_exchanged),
                 std::to_string(overlap) + " overlapped + " +
                     std::to_string(drained) + " drained deliveries, " +
                     std::to_string(tokens) + " token rounds"});
  table.print(std::cout);
  std::cout << "\nspeedup: " << util::Table::fmt(speedup, 2) << "x (gate "
            << util::Table::fmt(gate, 2) << "x; " << hw
            << " usable cores, achievable bound " << util::Table::fmt(bound, 2)
            << "x)\n";

  if (overlap + drained == 0) {
    std::cerr << "bench_overlap: no incremental deliveries recorded — the "
                 "engine did not overlap\n";
    return 1;
  }
  if (speedup < gate) {
    std::cerr << "bench_overlap: FAILED the overlap gate ("
              << (full_machine ? "full-parallelism 1.15x"
                               : "starved-machine 0.5x overhead bound")
              << ")\n";
    return 1;
  }
  std::cout << "OVERLAP GATE: pass\n";
  return 0;
}
