// Telemetry overhead of the obs subsystem (docs/OBSERVABILITY.md): the
// same baseline-driver run executed dark (hooks null — the default every
// caller gets) and observed (registry + trace attached), repeated and
// compared. The claim under test: attaching full per-step telemetry —
// four Phase spans, histogram observations, counters and a trace lane
// per rank per step, plus the per-step imbalance allreduce — costs under
// 2% of wall time; a PICPRK_OBS=OFF build removes even that.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_json.hpp"
#include "comm/world.hpp"
#include "obs/phase.hpp"
#include "obs/registry.hpp"
#include "obs/sinks.hpp"
#include "par/baseline.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace picprk;
  util::ArgParser args("bench_observability", "obs subsystem overhead (dark vs observed)");
  args.add_int("cells", 64, "mesh cells per dimension");
  args.add_int("particles", 200000, "global particle count");
  args.add_int("steps", 60, "time steps per run");
  args.add_int("ranks", 4, "threadcomm ranks");
  args.add_int("reps", 5, "repetitions per mode (median reported)");
  args.add_flag("smoke", false, "tiny sizes for CI");
  args.add_flag("json", false, "also write BENCH_observability.json");
  args.add_string("json-path", "BENCH_observability.json", "output path for --json");
  if (!args.parse(argc, argv)) return 0;

  const bool smoke = args.get_flag("smoke");
  const int ranks = static_cast<int>(args.get_int("ranks"));
  const int reps = smoke ? 2 : static_cast<int>(args.get_int("reps"));

  par::DriverConfig base_cfg;
  base_cfg.init.grid = pic::GridSpec(smoke ? 24 : args.get_int("cells"), 1.0);
  base_cfg.init.total_particles =
      static_cast<std::uint64_t>(smoke ? 20000 : args.get_int("particles"));
  base_cfg.init.distribution = pic::Geometric{0.95};
  base_cfg.steps = static_cast<std::uint32_t>(smoke ? 10 : args.get_int("steps"));

  // One run, returning the driver-reported stepping-loop seconds (max
  // over ranks — the same figure the CLI prints).
  const auto run_once = [&](const obs::Hooks& hooks, std::uint32_t sample_every) {
    par::DriverConfig cfg = base_cfg;
    cfg.obs = hooks;
    cfg.sample_every = sample_every;
    double seconds = 0.0;
    bool ok = false;
    comm::World world(ranks);
    world.run([&](comm::Comm& comm) {
      const par::DriverResult r = par::run_baseline(comm, cfg);
      if (comm.rank() == 0) {
        seconds = r.seconds;
        ok = r.ok;
      }
    });
    if (!ok) {
      std::cerr << "bench_observability: verification failed\n";
      std::exit(1);
    }
    return seconds;
  };

  std::cout << "=== obs overhead: baseline driver, dark vs observed ===\n"
            << base_cfg.init.total_particles << " particles, "
            << base_cfg.init.grid.cells << "^2 cells, " << base_cfg.steps
            << " steps, " << ranks << " ranks, " << reps << " reps\n"
            << "telemetry compiled " << (obs::kEnabled ? "IN" : "OUT (PICPRK_OBS=OFF)")
            << "\n\n";

  // Warm-up: touch every code path (thread pools, allocators) once.
  run_once(obs::Hooks{}, 0);

  std::vector<double> dark_runs, observed_runs;
  for (int rep = 0; rep < reps; ++rep) {
    // Alternate modes so slow drift (turbo, thermal) hits both equally.
    dark_runs.push_back(run_once(obs::Hooks{}, 0));
    obs::Registry registry;
    obs::Trace trace;
    observed_runs.push_back(run_once(obs::Hooks{&registry, &trace}, 1));
  }
  std::sort(dark_runs.begin(), dark_runs.end());
  std::sort(observed_runs.begin(), observed_runs.end());
  const double dark = util::percentile(dark_runs, 50.0);
  const double observed = util::percentile(observed_runs, 50.0);
  const double overhead = dark > 0.0 ? (observed - dark) / dark * 100.0 : 0.0;

  util::Table table({"mode", "median seconds", "min", "max"});
  table.add_row({"dark (hooks null)", util::Table::fmt(dark, 4),
                 util::Table::fmt(dark_runs.front(), 4),
                 util::Table::fmt(dark_runs.back(), 4)});
  table.add_row({"observed (registry+trace)", util::Table::fmt(observed, 4),
                 util::Table::fmt(observed_runs.front(), 4),
                 util::Table::fmt(observed_runs.back(), 4)});
  table.print(std::cout);
  std::cout << "\ntelemetry overhead: " << util::Table::fmt(overhead, 2)
            << "% of dark wall time\n";

  if (args.get_flag("json")) {
    util::JsonObject config;
    config.add("cells", base_cfg.init.grid.cells)
        .add("particles", base_cfg.init.total_particles)
        .add("steps", static_cast<std::int64_t>(base_cfg.steps))
        .add("ranks", static_cast<std::int64_t>(ranks))
        .add("reps", static_cast<std::int64_t>(reps))
        .add("obs_compiled_in", obs::kEnabled);
    util::JsonObject result;
    result.add("dark_seconds_p50", dark)
        .add("observed_seconds_p50", observed)
        .add("overhead_percent", overhead)
        .add("dark_runs", dark_runs)
        .add("observed_runs", observed_runs);
    if (!bench::write_bench_json(args.get_string("json-path"), "observability", config,
                                 {result})) {
      std::cerr << "bench_observability: cannot write " << args.get_string("json-path")
                << '\n';
      return 1;
    }
    std::cout << "wrote " << args.get_string("json-path") << '\n';
  }
  return 0;
}
