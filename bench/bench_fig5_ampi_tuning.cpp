// Reproduces Figure 5: sensitivity of the ampi implementation to the
// load-balancer interval F and the over-decomposition degree d.
//
// Paper setup (§V-A): 5,998² cells, 6,400,000 particles, 6,000 steps,
// 192 cores (8 nodes), geometric r = 0.999, k = 0. F-sweep holds d = 4
// and scales F = 20·{1,2,4,8,16,32,64}; d-sweep holds F = 1,000 and
// scales d = {1,2,4,8,16,32,64}.
//
// Paper headlines: F = 20 → 180 s vs F = 160 → 43 s (≈4.2×); d = 1 →
// 104 s vs d = 16 → 47 s (≈2.2×). We reproduce the curve shapes (a
// minimum at moderate F; improvement then flattening/worsening with d)
// on the performance model; see EXPERIMENTS.md for measured numbers.
#include <cstdint>
#include <iostream>

#include "common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace picprk;

  util::ArgParser args("bench_fig5_ampi_tuning", "Figure 5: AMPI F and d tuning");
  args.add_int("cores", 192, "core count (paper: 192)");
  args.add_int("steps", 6000, "time steps (paper: 6000)");
  if (!args.parse(argc, argv)) return 0;

  const int cores = static_cast<int>(args.get_int("cores"));
  const auto run = bench::paper_run(static_cast<std::uint32_t>(args.get_int("steps")));

  const perfsim::Engine engine(bench::edison_model(),
                               perfsim::ColumnWorkload::from_expected(bench::fig5_workload()));

  std::cout << "=== Figure 5: AMPI tuning (model, " << cores << " cores, "
            << run.steps << " steps) ===\n\n";

  // --- F sweep at d = 4 --------------------------------------------------
  util::Table f_table({"F", "increase", "seconds", "imbalance", "migrations"});
  std::vector<double> f_x, f_y;
  double f20 = 0.0, f160 = 0.0;
  for (int factor = 1; factor <= 64; factor *= 2) {
    const std::uint32_t f = 20u * static_cast<std::uint32_t>(factor);
    perfsim::VprModelParams p;
    p.overdecomposition = 4;
    p.lb_interval = f;
    const auto r = engine.run_vpr(cores, run, p);
    if (f == 20) f20 = r.seconds;
    if (f == 160) f160 = r.seconds;
    f_table.add_row({std::to_string(f), std::to_string(factor) + "x",
                     util::Table::fmt(r.seconds, 1), util::Table::fmt(r.avg_imbalance, 2),
                     util::Table::fmt_u64(r.migrations)});
    f_x.push_back(factor);
    f_y.push_back(r.seconds);
  }
  std::cout << "F sweep (d = 4 fixed; paper: 180 s @F=20 -> 43 s @F=160, 4.2x):\n";
  f_table.print(std::cout);
  std::cout << "model F=20/F=160 improvement: " << util::Table::fmt(f20 / f160, 2)
            << "x (paper: 4.2x)\n\n";

  // --- d sweep at F = 1000 ------------------------------------------------
  util::Table d_table({"d", "VPs", "seconds", "imbalance", "migrations"});
  std::vector<double> d_x, d_y;
  double d1 = 0.0, d16 = 0.0;
  for (int d = 1; d <= 64; d *= 2) {
    perfsim::VprModelParams p;
    p.overdecomposition = d;
    p.lb_interval = 1000;
    const auto r = engine.run_vpr(cores, run, p);
    if (d == 1) d1 = r.seconds;
    if (d == 16) d16 = r.seconds;
    d_table.add_row({std::to_string(d), std::to_string(d * cores),
                     util::Table::fmt(r.seconds, 1), util::Table::fmt(r.avg_imbalance, 2),
                     util::Table::fmt_u64(r.migrations)});
    d_x.push_back(d);
    d_y.push_back(r.seconds);
  }
  std::cout << "d sweep (F = 1000 fixed; paper: 104 s @d=1 -> 47 s @d=16, 2.2x):\n";
  d_table.print(std::cout);
  std::cout << "model d=1/d=16 improvement: " << util::Table::fmt(d1 / d16, 2)
            << "x (paper: 2.2x)\n\n";

  util::print_series_csv(std::cout, {{"fig5_F_sweep", f_x, f_y}, {"fig5_d_sweep", d_x, d_y}});
  return 0;
}
