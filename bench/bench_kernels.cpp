// Kernel micro-benchmarks (google-benchmark): the per-particle force and
// move kernel in AoS, SoA and OpenMP form, particle routing, the
// closed-form verification, initialisation and PUP serialization.
// These measure the building blocks whose relative costs the perfsim
// machine model abstracts (t_particle, particle_bytes, ...).
#include <benchmark/benchmark.h>

#include "par/decomposition.hpp"
#include "pic/init.hpp"
#include "pic/mover.hpp"
#include "pic/simulation.hpp"
#include "pic/verify.hpp"
#include "vpr/pup.hpp"

namespace {

using namespace picprk;

pic::InitParams bench_params(std::int64_t cells, std::uint64_t n) {
  pic::InitParams p;
  p.grid = pic::GridSpec(cells, 1.0);
  p.total_particles = n;
  p.distribution = pic::Geometric{0.99};
  p.k = 1;
  p.m = 1;
  return p;
}

void BM_MoverAoS(benchmark::State& state) {
  const auto params = bench_params(512, static_cast<std::uint64_t>(state.range(0)));
  const pic::Initializer init(params);
  auto particles = init.create_all();
  const pic::AlternatingColumnCharges charges;
  for (auto _ : state) {
    pic::move_all(std::span<pic::Particle>(particles), params.grid, charges, 1.0);
    benchmark::DoNotOptimize(particles.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(particles.size()));
}
BENCHMARK(BM_MoverAoS)->Arg(10000)->Arg(100000);

void BM_MoverSoA(benchmark::State& state) {
  const auto params = bench_params(512, static_cast<std::uint64_t>(state.range(0)));
  const pic::Initializer init(params);
  auto soa = pic::to_soa(init.create_all());
  const pic::AlternatingColumnCharges charges;
  for (auto _ : state) {
    pic::move_all_soa(soa, params.grid, charges, 1.0);
    benchmark::DoNotOptimize(soa.x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(soa.size()));
}
BENCHMARK(BM_MoverSoA)->Arg(10000)->Arg(100000);

void BM_MoverSlabCharges(benchmark::State& state) {
  const auto params = bench_params(512, 100000);
  const pic::Initializer init(params);
  auto particles = init.create_all();
  const auto slab = pic::ChargeSlab::sample(pic::AlternatingColumnCharges{}, 0, 0, 513, 513);
  for (auto _ : state) {
    pic::move_all(std::span<pic::Particle>(particles), params.grid, slab, 1.0);
    benchmark::DoNotOptimize(particles.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(particles.size()));
}
BENCHMARK(BM_MoverSlabCharges);

void BM_Verification(benchmark::State& state) {
  const auto params = bench_params(512, 100000);
  const pic::Initializer init(params);
  const auto particles = init.create_all();
  for (auto _ : state) {
    auto r = pic::verify_particles(std::span<const pic::Particle>(particles), params.grid, 0);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(particles.size()));
}
BENCHMARK(BM_Verification);

void BM_OwnerRouting(benchmark::State& state) {
  // The bucketing step of the exchange (without communication).
  const auto params = bench_params(512, 100000);
  const pic::Initializer init(params);
  auto particles = init.create_all();
  const comm::Cart2D cart(16);
  const par::Decomposition2D decomp(params.grid, cart);
  std::vector<int> owners(particles.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < particles.size(); ++i) {
      owners[i] = decomp.owner_of_position(particles[i].x, particles[i].y);
    }
    benchmark::DoNotOptimize(owners.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(particles.size()));
}
BENCHMARK(BM_OwnerRouting);

void BM_Initializer(benchmark::State& state) {
  const auto params = bench_params(static_cast<std::int64_t>(state.range(0)), 100000);
  for (auto _ : state) {
    const pic::Initializer init(params);
    benchmark::DoNotOptimize(init.total());
  }
}
BENCHMARK(BM_Initializer)->Arg(128)->Arg(512);

void BM_CreateParticles(benchmark::State& state) {
  const auto params = bench_params(256, 100000);
  const pic::Initializer init(params);
  for (auto _ : state) {
    auto particles = init.create_all();
    benchmark::DoNotOptimize(particles.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(init.total()));
}
BENCHMARK(BM_CreateParticles);

struct PupState {
  std::vector<pic::Particle> particles;
  std::vector<double> slab;
  void pup(vpr::Pup& p) {
    p(particles);
    p(slab);
  }
};

void BM_PupPackUnpack(benchmark::State& state) {
  const auto params = bench_params(256, static_cast<std::uint64_t>(state.range(0)));
  const pic::Initializer init(params);
  PupState vp{init.create_all(), std::vector<double>(64 * 64, 1.0)};
  for (auto _ : state) {
    auto buffer = vpr::pup_pack(vp);
    PupState out;
    vpr::pup_unpack(out, std::move(buffer));
    benchmark::DoNotOptimize(out.particles.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(vpr::pup_size(vp)));
}
BENCHMARK(BM_PupPackUnpack)->Arg(10000)->Arg(50000);

void BM_SerialStep(benchmark::State& state) {
  // One full serial simulation step including event checks.
  pic::SimulationConfig cfg;
  cfg.init = bench_params(256, 50000);
  cfg.steps = 1;
  const pic::Initializer init(cfg.init);
  auto particles = init.create_all();
  const pic::AlternatingColumnCharges charges;
  for (auto _ : state) {
    pic::serial_step(particles, cfg.init.grid, charges, 1.0);
    benchmark::DoNotOptimize(particles.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(particles.size()));
}
BENCHMARK(BM_SerialStep);

}  // namespace

BENCHMARK_MAIN();
