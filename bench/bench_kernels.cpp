// Kernel micro-benchmarks (google-benchmark): the per-particle force and
// move kernel in AoS, SoA and OpenMP form, particle routing, the
// closed-form verification, initialisation and PUP serialization.
// These measure the building blocks whose relative costs the perfsim
// machine model abstracts (t_particle, particle_bytes, ...).
#include <benchmark/benchmark.h>

#include <cstring>
#include <functional>
#include <iostream>
#include <string>

#include "bench_json.hpp"
#include "par/decomposition.hpp"
#include "pic/init.hpp"
#include "pic/mover.hpp"
#include "pic/simulation.hpp"
#include "pic/verify.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "vpr/pup.hpp"

namespace {

using namespace picprk;

pic::InitParams bench_params(std::int64_t cells, std::uint64_t n) {
  pic::InitParams p;
  p.grid = pic::GridSpec(cells, 1.0);
  p.total_particles = n;
  p.distribution = pic::Geometric{0.99};
  p.k = 1;
  p.m = 1;
  return p;
}

void BM_MoverAoS(benchmark::State& state) {
  const auto params = bench_params(512, static_cast<std::uint64_t>(state.range(0)));
  const pic::Initializer init(params);
  auto particles = init.create_all();
  const pic::AlternatingColumnCharges charges;
  for (auto _ : state) {
    pic::move_all(std::span<pic::Particle>(particles), params.grid, charges, 1.0);
    benchmark::DoNotOptimize(particles.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(particles.size()));
}
BENCHMARK(BM_MoverAoS)->Arg(10000)->Arg(100000);

void BM_MoverSoA(benchmark::State& state) {
  const auto params = bench_params(512, static_cast<std::uint64_t>(state.range(0)));
  const pic::Initializer init(params);
  auto soa = pic::to_soa(init.create_all());
  const pic::AlternatingColumnCharges charges;
  for (auto _ : state) {
    pic::move_all_soa(soa, params.grid, charges, 1.0);
    benchmark::DoNotOptimize(soa.x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(soa.size()));
}
BENCHMARK(BM_MoverSoA)->Arg(10000)->Arg(100000);

void BM_MoverSlabCharges(benchmark::State& state) {
  const auto params = bench_params(512, 100000);
  const pic::Initializer init(params);
  auto particles = init.create_all();
  const auto slab = pic::ChargeSlab::sample(pic::AlternatingColumnCharges{}, 0, 0, 513, 513);
  for (auto _ : state) {
    pic::move_all(std::span<pic::Particle>(particles), params.grid, slab, 1.0);
    benchmark::DoNotOptimize(particles.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(particles.size()));
}
BENCHMARK(BM_MoverSlabCharges);

void BM_Verification(benchmark::State& state) {
  const auto params = bench_params(512, 100000);
  const pic::Initializer init(params);
  const auto particles = init.create_all();
  for (auto _ : state) {
    auto r = pic::verify_particles(std::span<const pic::Particle>(particles), params.grid, 0);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(particles.size()));
}
BENCHMARK(BM_Verification);

void BM_OwnerRouting(benchmark::State& state) {
  // The bucketing step of the exchange (without communication).
  const auto params = bench_params(512, 100000);
  const pic::Initializer init(params);
  auto particles = init.create_all();
  const comm::Cart2D cart(16);
  const par::Decomposition2D decomp(params.grid, cart);
  std::vector<int> owners(particles.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < particles.size(); ++i) {
      owners[i] = decomp.owner_of_position(particles[i].x, particles[i].y);
    }
    benchmark::DoNotOptimize(owners.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(particles.size()));
}
BENCHMARK(BM_OwnerRouting);

void BM_Initializer(benchmark::State& state) {
  const auto params = bench_params(static_cast<std::int64_t>(state.range(0)), 100000);
  for (auto _ : state) {
    const pic::Initializer init(params);
    benchmark::DoNotOptimize(init.total());
  }
}
BENCHMARK(BM_Initializer)->Arg(128)->Arg(512);

void BM_CreateParticles(benchmark::State& state) {
  const auto params = bench_params(256, 100000);
  const pic::Initializer init(params);
  for (auto _ : state) {
    auto particles = init.create_all();
    benchmark::DoNotOptimize(particles.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(init.total()));
}
BENCHMARK(BM_CreateParticles);

struct PupState {
  std::vector<pic::Particle> particles;
  std::vector<double> slab;
  void pup(vpr::Pup& p) {
    p(particles);
    p(slab);
  }
};

void BM_PupPackUnpack(benchmark::State& state) {
  const auto params = bench_params(256, static_cast<std::uint64_t>(state.range(0)));
  const pic::Initializer init(params);
  PupState vp{init.create_all(), std::vector<double>(64 * 64, 1.0)};
  for (auto _ : state) {
    auto buffer = vpr::pup_pack(vp);
    PupState out;
    vpr::pup_unpack(out, std::move(buffer));
    benchmark::DoNotOptimize(out.particles.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(vpr::pup_size(vp)));
}
BENCHMARK(BM_PupPackUnpack)->Arg(10000)->Arg(50000);

void BM_SerialStep(benchmark::State& state) {
  // One full serial simulation step including event checks.
  pic::SimulationConfig cfg;
  cfg.init = bench_params(256, 50000);
  cfg.steps = 1;
  const pic::Initializer init(cfg.init);
  auto particles = init.create_all();
  const pic::AlternatingColumnCharges charges;
  for (auto _ : state) {
    pic::serial_step(particles, cfg.init.grid, charges, 1.0);
    benchmark::DoNotOptimize(particles.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(particles.size()));
}
BENCHMARK(BM_SerialStep);

// ------------------------------------------------------------- --json
// Hand-timed mover subset with the standard picprk-bench-v1 document
// (google-benchmark's own JSON reporter has a different shape; this one
// matches the other BENCH_*.json emitters, see docs/PERFORMANCE.md).

util::JsonObject time_kernel(const std::string& name, std::size_t particles, int passes,
                             const std::function<void()>& pass) {
  std::vector<double> pass_seconds;
  pass_seconds.reserve(static_cast<std::size_t>(passes));
  for (int i = 0; i < passes; ++i) {
    util::Timer t;
    pass();
    pass_seconds.push_back(t.elapsed());
  }
  double total = 0.0;
  for (double s : pass_seconds) total += s;
  util::JsonObject c;
  c.add("kernel", name);
  c.add("particles", static_cast<std::uint64_t>(particles));
  c.add("passes", static_cast<std::int64_t>(passes));
  c.add("particles_per_sec",
        total > 0 ? static_cast<double>(particles) * passes / total : 0.0);
  c.add("pass_seconds_p50", util::percentile(pass_seconds, 50.0));
  c.add("pass_seconds_p99", util::percentile(pass_seconds, 99.0));
  return c;
}

int run_json_mode(const std::string& path) {
  constexpr std::uint64_t kParticles = 100000;
  constexpr int kPasses = 50;
  const auto params = bench_params(512, kParticles);
  const pic::Initializer init(params);
  const pic::AlternatingColumnCharges charges;
  const auto slab = pic::ChargeSlab::sample(charges, 0, 0, 513, 513);

  auto aos_ref = init.create_all();
  auto aos = init.create_all();
  auto aos_slab = init.create_all();
  auto soa = pic::to_soa(init.create_all());

  std::vector<util::JsonObject> cases;
  cases.push_back(time_kernel("mover_aos_reference", aos_ref.size(), kPasses, [&] {
    pic::reference::move_all(std::span<pic::Particle>(aos_ref), params.grid, charges, 1.0);
  }));
  cases.push_back(time_kernel("mover_aos", aos.size(), kPasses, [&] {
    pic::move_all(std::span<pic::Particle>(aos), params.grid, charges, 1.0);
  }));
  cases.push_back(time_kernel("mover_aos_slab", aos_slab.size(), kPasses, [&] {
    pic::move_all(std::span<pic::Particle>(aos_slab), params.grid, slab, 1.0);
  }));
  cases.push_back(time_kernel("mover_soa", soa.size(), kPasses, [&] {
    pic::move_all_soa(soa, params.grid, charges, 1.0);
  }));

  util::JsonObject config;
  config.add("particles", kParticles);
  config.add("cells", static_cast<std::int64_t>(512));
  config.add("passes", static_cast<std::int64_t>(kPasses));
  if (!bench::write_bench_json(path, "bench_kernels", config, cases)) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --json diverts to the schema emitter; anything else flows through to
  // google-benchmark (--benchmark_filter etc. keep working).
  bool json = false;
  std::string json_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--json-path=", 12) == 0) {
      json = true;
      json_path = argv[i] + 12;
    }
  }
  if (json) return run_json_mode(json_path);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
