// Multi-tenant scaling of the job server (docs/SERVICE.md): the same
// heterogeneous job mix run at 1/2/4/8 concurrent tenants on one shared
// pool, reporting aggregate throughput (particle-steps/s across all
// tenants) and the per-job p99 superstep latency from each tenant's own
// svc/step_seconds histogram. The claim under test: co-scheduling N
// kernels onto the shared pool recovers most of the throughput N
// isolated runs would get from the same cores — consolidation costs
// scheduling, not capacity.
//
// --smoke asserts the 4-tenant aggregate ≥ 0.7 × (sum of 4 isolated
// runs), scaled by the machine's actual parallelism: with P usable
// cores, 4 tenants can at best run 4/min(P,4)× slower than 4 isolated
// sequential runs, so the gate compares against sum × min(P,4)/4.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "svc/server.hpp"
#include "svc/spec.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace picprk;

/// The rotating heterogeneous mix: tenant i gets mix[i % 4].
std::string job_spec_of(int index, std::int64_t particles, std::int64_t steps) {
  static const char* kDists[] = {
      "dist=uniform",
      "dist=geometric,r=0.95",
      "dist=sinusoidal",
      "dist=patch,patch_x0=0,patch_x1=24,patch_y0=0,patch_y1=24",
  };
  return "t" + std::to_string(index) + ":" + kDists[index % 4] +
         ",particles=" + std::to_string(particles) +
         ",steps=" + std::to_string(steps) +
         ",seed=" + std::to_string(index + 1);
}

struct CaseResult {
  int tenants = 0;
  double seconds = 0.0;
  double throughput = 0.0;  ///< particle-steps per second, all tenants
  double p99_mean = 0.0;    ///< mean over tenants of per-job p99 step seconds
  double p99_max = 0.0;     ///< worst tenant's p99
};

double job_step_p99(const svc::Job& job) {
  for (const auto& h : job.registry().histograms()) {
    if (h.name == "svc/step_seconds") return h.p99;
  }
  return 0.0;
}

CaseResult run_case(int tenants, int workers, std::uint32_t quantum,
                    std::int64_t particles, std::int64_t steps) {
  svc::ServerConfig config;
  config.workers = workers;
  config.quantum = quantum;
  config.queue_capacity = static_cast<std::size_t>(tenants);
  svc::Server server(config);
  for (int i = 0; i < tenants; ++i) {
    server.submit(svc::parse_job_spec(job_spec_of(i, particles, steps)));
  }

  std::ostringstream sink;  // per-job reports are not the measurement
  util::Timer timer;
  server.drain(sink);
  CaseResult result;
  result.seconds = timer.elapsed();
  result.tenants = tenants;

  std::uint64_t particle_steps = 0;
  for (const svc::Job* job : server.table().all()) {
    if (job->state() != svc::JobState::kDone || !job->result().ok) {
      std::cerr << "bench_service: job " << job->name() << " did not verify ("
                << svc::to_string(job->state()) << " " << job->failure() << ")\n";
      std::exit(1);
    }
    particle_steps += job->result().final_particles * job->steps_done();
    const double p99 = job_step_p99(*job);
    result.p99_mean += p99;
    result.p99_max = std::max(result.p99_max, p99);
  }
  result.p99_mean /= static_cast<double>(tenants);
  result.throughput =
      result.seconds > 0 ? static_cast<double>(particle_steps) / result.seconds : 0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_service",
                       "job-server throughput and per-tenant p99 vs tenant count");
  args.add_int("workers", 4, "shared-pool worker threads");
  args.add_int("quantum", 8, "supersteps per cycle at weight 1");
  args.add_int("particles", 40000, "particles per tenant");
  args.add_int("steps", 48, "supersteps per tenant");
  args.add_flag("smoke", false, "tiny sizes + the consolidation gate for CI");
  args.add_flag("json", false, "also write BENCH_service.json");
  args.add_string("json-path", "BENCH_service.json", "output path for --json");
  if (!args.parse(argc, argv)) return 0;

  const bool smoke = args.get_flag("smoke");
  const int workers = static_cast<int>(args.get_int("workers"));
  const auto quantum = static_cast<std::uint32_t>(args.get_int("quantum"));
  const std::int64_t particles = smoke ? 6000 : args.get_int("particles");
  const std::int64_t steps = smoke ? 16 : args.get_int("steps");

  std::cout << "=== svc scaling: shared pool, heterogeneous tenants ===\n"
            << particles << " particles and " << steps << " steps per tenant, "
            << workers << " workers, quantum " << quantum << "\n\n";

  // Baseline: each job of the 4-mix run alone on the same server config
  // (the pool is there, but a lone single-runtime tenant can only use
  // one worker at a time — that is precisely what consolidation buys).
  std::vector<CaseResult> isolated;
  double isolated_sum = 0.0;
  for (int i = 0; i < 4; ++i) {
    // Warm-up on the first: thread pool + allocator paths.
    if (i == 0) run_case(1, workers, quantum, particles / 4, steps);
    CaseResult r = run_case(1, workers, quantum, particles, steps);
    isolated_sum += r.throughput;
    isolated.push_back(r);
  }

  const std::vector<int> tenant_counts = {1, 2, 4, 8};
  std::vector<CaseResult> cases;
  for (int tenants : tenant_counts) {
    cases.push_back(run_case(tenants, workers, quantum, particles, steps));
  }

  util::Table table({"tenants", "seconds", "Mpart-steps/s", "p99 ms (mean)",
                     "p99 ms (worst)"});
  for (const CaseResult& r : cases) {
    table.add_row({std::to_string(r.tenants), util::Table::fmt(r.seconds, 3),
                   util::Table::fmt(r.throughput / 1e6, 2),
                   util::Table::fmt(r.p99_mean * 1e3, 3),
                   util::Table::fmt(r.p99_max * 1e3, 3)});
  }
  table.print(std::cout);
  std::cout << "sum of 4 isolated runs: "
            << util::Table::fmt(isolated_sum / 1e6, 2) << " Mpart-steps/s\n";

  const CaseResult& four = cases[2];
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const double parallelism = static_cast<double>(
      std::min<unsigned>(std::min<unsigned>(hw, static_cast<unsigned>(workers)), 4));
  const double gate = 0.7 * isolated_sum * parallelism / 4.0;
  std::cout << "consolidation: 4-tenant aggregate "
            << util::Table::fmt(four.throughput / 1e6, 2) << " vs gate "
            << util::Table::fmt(gate / 1e6, 2) << " Mpart-steps/s ("
            << parallelism << " usable cores)\n";

  if (args.get_flag("json")) {
    util::JsonObject config;
    config.add("workers", static_cast<std::int64_t>(workers));
    config.add("quantum", static_cast<std::int64_t>(quantum));
    config.add("particles", particles);
    config.add("steps", steps);
    config.add("smoke", smoke);
    std::vector<util::JsonObject> results;
    for (const CaseResult& r : cases) {
      util::JsonObject o;
      o.add("tenants", static_cast<std::int64_t>(r.tenants));
      o.add("seconds", r.seconds);
      o.add("particle_steps_per_sec", r.throughput);
      o.add("step_seconds_p99_mean", r.p99_mean);
      o.add("step_seconds_p99_max", r.p99_max);
      results.push_back(o);
    }
    util::JsonObject o;
    o.add("tenants", std::string("4x isolated"));
    o.add("particle_steps_per_sec", isolated_sum);
    results.push_back(o);
    const std::string path = args.get_string("json-path");
    if (!bench::write_bench_json(path, "service", config, results)) {
      std::cerr << "bench_service: cannot write " << path << '\n';
      return 1;
    }
    std::cout << "wrote " << path << '\n';
  }

  if (smoke && four.throughput < gate) {
    std::cerr << "bench_service: consolidation gate FAILED — 4-tenant aggregate "
              << four.throughput << " < " << gate << " particle-steps/s\n";
    return 1;
  }
  return 0;
}
