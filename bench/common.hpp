// Shared scaffolding for the figure-reproduction benches: the paper's
// workload configurations, the calibrated machine model, and the
// per-point parameter tuning the paper applies ("For each implementation
// we tuned the relevant parameters and picked the best performing
// execution at each level of concurrency", §V-B).
#pragma once

#include <iostream>
#include <limits>
#include <vector>

#include "perfsim/engine.hpp"
#include "util/report.hpp"
#include "util/table.hpp"

namespace picprk::bench {

/// Edison-like calibration (see EXPERIMENTS.md): t_particle chosen so the
/// serial time of the Figure-6 workload (~504 s) matches the paper's
/// single-core measurement (~512 s); communication constants are typical
/// Aries-class numbers.
inline perfsim::MachineModel edison_model() {
  perfsim::MachineModel m;
  m.cores_per_node = 24;
  m.t_particle = 140e-9;
  return m;
}

/// Figure 5 workload: 5,998×5,998 cells, 6,400,000 particles, 6,000 time
/// steps, geometric r = 0.999, k = 0, on 192 cores (§V-A).
inline pic::InitParams fig5_workload() {
  pic::InitParams p;
  p.grid = pic::GridSpec(5998, 1.0);
  p.total_particles = 6400000;
  p.distribution = pic::Geometric{0.999};
  return p;
}

/// Figure 6 workload: 2,998×2,998 cells, 600,000 particles, 6,000 time
/// steps, geometric r = 0.999, k = 0 (§V-B).
inline pic::InitParams fig6_workload() {
  pic::InitParams p;
  p.grid = pic::GridSpec(2998, 1.0);
  p.total_particles = 600000;
  p.distribution = pic::Geometric{0.999};
  return p;
}

/// Figure 7 base workload: 11,998×11,998 cells, 400,000 particles at 48
/// cores, particles scaled proportionally with cores (§V-C).
inline pic::InitParams fig7_workload(int cores) {
  pic::InitParams p;
  p.grid = pic::GridSpec(11998, 1.0);
  p.total_particles =
      static_cast<std::uint64_t>(400000.0 * static_cast<double>(cores) / 48.0);
  p.distribution = pic::Geometric{0.999};
  return p;
}

inline perfsim::RunConfig paper_run(std::uint32_t steps = 6000) {
  perfsim::RunConfig c;
  c.steps = steps;
  c.shift_per_step = 1;  // k = 0
  return c;
}

/// Best diffusion configuration at one core count (small tuning grid).
struct TunedDiffusion {
  perfsim::ModelResult result;
  perfsim::DiffusionModelParams params;
};

inline TunedDiffusion tune_diffusion(const perfsim::Engine& engine, int cores,
                                     const perfsim::RunConfig& run) {
  TunedDiffusion best;
  best.result.seconds = std::numeric_limits<double>::infinity();
  for (std::uint32_t freq : {4u, 8u, 16u, 32u}) {
    for (double tau : {0.02, 0.10}) {
      for (std::int64_t width : {std::int64_t{4}, std::int64_t{16}, std::int64_t{64}}) {
        perfsim::DiffusionModelParams p{freq, tau, width};
        const auto r = engine.run_diffusion(cores, run, p);
        if (r.seconds < best.result.seconds) {
          best.result = r;
          best.params = p;
        }
      }
    }
  }
  return best;
}

/// Best ampi configuration at one core count (F × d tuning grid, the
/// co-tuning Figure 5 calls for).
struct TunedVpr {
  perfsim::ModelResult result;
  perfsim::VprModelParams params;
};

inline TunedVpr tune_vpr(const perfsim::Engine& engine, int cores,
                         const perfsim::RunConfig& run) {
  TunedVpr best;
  best.result.seconds = std::numeric_limits<double>::infinity();
  for (int d : {2, 4, 8}) {
    for (std::uint32_t f : {160u, 320u, 640u, 1280u}) {
      perfsim::VprModelParams p;
      p.overdecomposition = d;
      p.lb_interval = f;
      const auto r = engine.run_vpr(cores, run, p);
      if (r.seconds < best.result.seconds) {
        best.result = r;
        best.params = p;
      }
    }
  }
  return best;
}

/// Optionally writes all series to a CSV file (column per series name)
/// when `path` is non-empty; every figure bench exposes this via --csv.
inline void maybe_write_series_csv(const std::string& path,
                                   const std::vector<util::Series>& series) {
  if (path.empty()) return;
  util::CsvWriter csv(path, {"series", "x", "y"});
  if (!csv.ok()) {
    std::cerr << "warning: cannot open " << path << " for CSV output\n";
    return;
  }
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      csv.add_row(std::vector<std::string>{s.name, util::Table::fmt(s.x[i], 6),
                                           util::Table::fmt(s.y[i], 6)});
    }
  }
  std::cout << "wrote " << csv.rows_written() << " rows to " << path << '\n';
}

}  // namespace picprk::bench
