// Distribution gallery (§III-E): the induced load imbalance of every
// initial particle distribution the specification provides — geometric
// (with the Eq. 7/8 analysis), sinusoidal, linear, patch, uniform — and
// the abrupt imbalance of injection/removal events (§III-E5).
#include <cmath>
#include <iostream>

#include "comm/cart.hpp"
#include "common.hpp"
#include "util/cli.hpp"

namespace {

using namespace picprk;

perfsim::ModelResult measure(const pic::InitParams& params, int cores, std::uint32_t steps,
                             std::vector<perfsim::EventModel> events = {}) {
  perfsim::Engine engine(bench::edison_model(),
                         perfsim::ColumnWorkload::from_expected(params));
  engine.set_events(std::move(events));
  perfsim::RunConfig run;
  run.steps = steps;
  run.collect_series = true;
  run.sample_every = steps / 20;
  return engine.run_static(cores, run);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_distributions",
                       "imbalance induced by each §III-E distribution");
  args.add_int("cores", 48, "modeled core count");
  args.add_int("steps", 2000, "time steps");
  args.add_int("cells", 2998, "grid cells per dimension");
  if (!args.parse(argc, argv)) return 0;

  const int cores = static_cast<int>(args.get_int("cores"));
  const auto steps = static_cast<std::uint32_t>(args.get_int("steps"));
  const auto cells = args.get_int("cells");

  pic::InitParams base;
  base.grid = pic::GridSpec(cells, 1.0);
  base.total_particles = 600000;

  std::cout << "=== Distribution gallery: induced imbalance on a static "
            << "decomposition (" << cores << " cores, model) ===\n\n";

  struct Case {
    std::string name;
    pic::Distribution dist;
  };
  const std::vector<Case> cases = {
      {"uniform", pic::Uniform{}},
      {"geometric r=0.999", pic::Geometric{0.999}},
      {"geometric r=0.99", pic::Geometric{0.99}},
      {"sinusoidal", pic::Sinusoidal{}},
      {"linear a=1 b=1", pic::Linear{1.0, 1.0}},
      {"patch (1/16 domain)", pic::Patch{pic::CellRegion{0, cells / 4, 0, cells / 4}}},
  };

  util::Table table({"distribution", "avg imbalance", "seconds", "vs uniform"});
  std::vector<util::Series> series;
  double uniform_seconds = 0.0;
  for (const auto& c : cases) {
    pic::InitParams params = base;
    params.distribution = c.dist;
    const auto r = measure(params, cores, steps);
    if (c.name == "uniform") uniform_seconds = r.seconds;
    table.add_row({c.name, util::Table::fmt(r.avg_imbalance, 2),
                   util::Table::fmt(r.seconds, 1),
                   util::Table::fmt(r.seconds / uniform_seconds, 2)});
    util::Series s;
    s.name = "imbalance_" + c.name;
    for (std::size_t i = 0; i < r.imbalance_series.size(); ++i) {
      s.x.push_back(static_cast<double>(i * (steps / 20)));
      s.y.push_back(r.imbalance_series[i]);
    }
    series.push_back(std::move(s));
  }
  table.print(std::cout);

  // Eq. 7/8 check: per-block-column loads of the geometric distribution
  // form a geometric series with ratio r^(c/P).
  {
    pic::InitParams params = base;
    const double r = 0.99;
    params.distribution = pic::Geometric{r};
    const auto w = perfsim::ColumnWorkload::from_expected(params);
    const auto [px, py] = comm::near_square_factors(cores);
    const std::int64_t width = cells / px;
    const double n0 = w.range_sum(0, width);
    const double n1 = w.range_sum(width, 2 * width);
    std::cout << "\nEq. 8 check (r=0.99, " << px << " block columns): measured "
              << "N(I+1)/N(I) = " << util::Table::fmt(n1 / n0, 4) << ", predicted r^(c/P) = "
              << util::Table::fmt(std::pow(r, static_cast<double>(width)), 4) << "\n";
  }

  // Injection/removal events: abrupt imbalance changes (§III-E5).
  {
    std::cout << "\n--- injection / removal events on the uniform workload ---\n";
    pic::InitParams params = base;
    params.distribution = pic::Uniform{};
    const auto quiet = measure(params, cores, steps);
    const auto burst = measure(
        params, cores, steps,
        {perfsim::EventModel{steps / 2, 0, cells / 8, /*inject=*/600000.0, 0.0}});
    const auto drain = measure(
        params, cores, steps,
        {perfsim::EventModel{steps / 2, 0, cells / 2, 0.0, /*remove=*/0.9}});
    util::Table table2({"scenario", "avg imbalance", "seconds"});
    table2.add_row({"no events", util::Table::fmt(quiet.avg_imbalance, 2),
                    util::Table::fmt(quiet.seconds, 1)});
    table2.add_row({"inject n in 1/8 of columns at T/2",
                    util::Table::fmt(burst.avg_imbalance, 2),
                    util::Table::fmt(burst.seconds, 1)});
    table2.add_row({"remove 90% of left half at T/2",
                    util::Table::fmt(drain.avg_imbalance, 2),
                    util::Table::fmt(drain.seconds, 1)});
    table2.print(std::cout);
  }

  std::cout << '\n';
  util::print_series_csv(std::cout, series);
  return 0;
}
