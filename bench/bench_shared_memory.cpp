// Shared-memory runtimes on real hardware: the one benchmark in this
// suite whose numbers are wall-clock on this machine rather than model
// outputs. Compares, on a row-skewed workload (rotated §III-E1):
//
//   * static task schedule (no balancing — the shared-memory analogue of
//     the mpi-2d baseline),
//   * work stealing (dynamic scheduling, §VI future-work runtime style),
//   * the OpenMP SoA mover over a flat particle array (no spatial
//     binning: imbalance dissolves in the layout — the reason the paper
//     targets distributed memory, where ownership is unavoidable).
#include <iostream>

#include "pic/mover.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "ws/binned.hpp"

int main(int argc, char** argv) {
  using namespace picprk;
  util::ArgParser args("bench_shared_memory", "static vs stealing vs flat-OpenMP");
  args.add_int("cells", 256, "mesh cells per dimension");
  args.add_int("particles", 400000, "particle count");
  args.add_int("steps", 60, "time steps");
  args.add_int("workers", 2, "worker threads");
  if (!args.parse(argc, argv)) return 0;

  pic::SimulationConfig cfg;
  cfg.init.grid = pic::GridSpec(args.get_int("cells"), 1.0);
  cfg.init.total_particles = static_cast<std::uint64_t>(args.get_int("particles"));
  cfg.init.distribution = pic::Geometric{0.97};
  cfg.init.rotate90 = true;  // skew the rows so binned tasks are unequal
  cfg.steps = static_cast<std::uint32_t>(args.get_int("steps"));

  const int workers = static_cast<int>(args.get_int("workers"));
  std::cout << "=== shared-memory drivers (real wall-clock, " << workers
            << " workers) ===\nrow-skewed geometric r=0.97, "
            << args.get_int("particles") << " particles, " << cfg.steps << " steps\n\n";

  util::Table table({"scheme", "verified", "seconds", "steals"});

  ws::WsParams stat;
  stat.workers = workers;
  stat.stealing = false;
  stat.rows_per_task = 4;
  const auto r_static = ws::run_worksteal(cfg, stat);
  table.add_row({"binned static", r_static.ok ? "yes" : "NO",
                 util::Table::fmt(r_static.seconds, 3), util::Table::fmt_u64(r_static.steals)});

  ws::WsParams steal = stat;
  steal.stealing = true;
  const auto r_steal = ws::run_worksteal(cfg, steal);
  table.add_row({"binned stealing", r_steal.ok ? "yes" : "NO",
                 util::Table::fmt(r_steal.seconds, 3), util::Table::fmt_u64(r_steal.steals)});

  // Flat OpenMP mover: one array, static index partition — balanced by
  // construction because every particle costs the same.
  {
    const pic::Initializer init(cfg.init);
    auto soa = pic::to_soa(init.create_all());
    const pic::AlternatingColumnCharges charges;
    util::Timer t;
    for (std::uint32_t s = 0; s < cfg.steps; ++s) {
      pic::move_all_soa(soa, cfg.init.grid, charges, 1.0);
    }
    const double seconds = t.elapsed();
    const auto aos = pic::to_aos(soa);
    const auto verify = pic::verify_particles(std::span<const pic::Particle>(aos),
                                              cfg.init.grid, cfg.steps);
    table.add_row({"flat OpenMP SoA",
                   verify.ok(pic::expected_checksum(init.total())) ? "yes" : "NO",
                   util::Table::fmt(seconds, 3), "-"});
  }

  table.print(std::cout);
  std::cout << "\nstealing speedup over static: "
            << util::Table::fmt(r_static.seconds / r_steal.seconds, 2) << "x\n";
  return r_static.ok && r_steal.ok ? 0 : 1;
}
