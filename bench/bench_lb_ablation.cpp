// Ablation benches for the design choices the paper discusses:
//
//  (a) §IV-B: the diffusion scheme's three parameters (frequency,
//      threshold τ, border width) "have interfering results ... and
//      therefore should be co-tuned" — a full parameter grid.
//  (b) §IV-C: "Charm++ provides not just one but a collection of load
//      balancing strategies" — a strategy shoot-out on the vpr model.
//  (c) §IV-B: x-only vs two-phase diffusion, on a workload whose skew is
//      not aligned with x (real threaded drivers, laptop scale).
#include <iostream>

#include "comm/world.hpp"
#include "common.hpp"
#include "par/baseline.hpp"
#include "par/diffusion.hpp"
#include "par/irregular.hpp"
#include "util/cli.hpp"

namespace {

using namespace picprk;

void diffusion_grid(std::uint32_t steps) {
  const perfsim::Engine engine(bench::edison_model(),
                               perfsim::ColumnWorkload::from_expected(bench::fig6_workload()));
  const auto run = bench::paper_run(steps);
  const int cores = 96;

  std::cout << "--- (a) diffusion parameter co-tuning grid (model, " << cores
            << " cores) ---\n";
  util::Table table({"frequency", "tau", "border", "seconds", "imbalance", "moves"});
  double best = 1e300, worst = 0;
  for (std::uint32_t freq : {4u, 16u, 64u}) {
    for (double tau : {0.02, 0.10, 0.50}) {
      for (std::int64_t width : {std::int64_t{1}, std::int64_t{16}, std::int64_t{64}}) {
        const auto r =
            engine.run_diffusion(cores, run, perfsim::DiffusionModelParams{freq, tau, width});
        best = std::min(best, r.seconds);
        worst = std::max(worst, r.seconds);
        table.add_row({std::to_string(freq), util::Table::fmt(tau, 2),
                       std::to_string(width), util::Table::fmt(r.seconds, 1),
                       util::Table::fmt(r.avg_imbalance, 2),
                       util::Table::fmt_u64(r.migrations)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "worst/best over the grid: " << util::Table::fmt(worst / best, 2)
            << "x  (mistuning penalty — the co-tuning claim of §IV-B)\n\n";
}

void balancer_shootout(std::uint32_t steps) {
  const perfsim::Engine engine(bench::edison_model(),
                               perfsim::ColumnWorkload::from_expected(bench::fig6_workload()));
  const auto run = bench::paper_run(steps);
  const int cores = 96;

  std::cout << "--- (b) vpr balancer strategy shoot-out (model, " << cores
            << " cores, d=4, F=640) ---\n";
  util::Table table({"strategy", "seconds", "imbalance", "migrations", "migrated MB"});
  for (const char* name : {"null", "greedy", "refine", "diffusion", "compact", "rotate"}) {
    perfsim::VprModelParams p;
    p.overdecomposition = 4;
    p.lb_interval = 640;
    p.balancer = name;
    const auto r = engine.run_vpr(cores, run, p);
    table.add_row({name, util::Table::fmt(r.seconds, 1),
                   util::Table::fmt(r.avg_imbalance, 2), util::Table::fmt_u64(r.migrations),
                   util::Table::fmt(r.migrated_mbytes, 0)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void hinted_balancer_at_scale(std::uint32_t steps) {
  // The paper's closing §V-B remark, quantified: a locality-hinted
  // balancer vs locality-blind greedy in the strong-scaling regime where
  // fragmentation hurts (384 cores, 16 nodes).
  const perfsim::Engine engine(bench::edison_model(),
                               perfsim::ColumnWorkload::from_expected(bench::fig6_workload()));
  const auto run = bench::paper_run(steps);

  std::cout << "--- (d) hinted (compact) vs unhinted (greedy) balancer at 384 cores ---\n";
  util::Table table({"strategy", "seconds", "imbalance", "migrated MB"});
  for (const char* name : {"greedy", "compact"}) {
    perfsim::VprModelParams p;
    p.overdecomposition = 4;
    p.lb_interval = 640;
    p.balancer = name;
    const auto r = engine.run_vpr(384, run, p);
    table.add_row({name, util::Table::fmt(r.seconds, 2),
                   util::Table::fmt(r.avg_imbalance, 2),
                   util::Table::fmt(r.migrated_mbytes, 0)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void two_phase_ablation() {
  std::cout << "--- (c) x-only vs two-phase diffusion (real drivers, 4 ranks) ---\n"
            << "workload: corner patch (skew in both directions), 200 steps\n";
  par::RunConfig cfg;
  cfg.init.grid = pic::GridSpec(128, 1.0);
  cfg.init.total_particles = 30000;
  cfg.init.distribution = pic::Patch{pic::CellRegion{0, 40, 0, 40}};
  cfg.steps = 200;
  cfg.sample_every = 10;

  par::DriverResult base, xonly, both;
  comm::World world(4);
  world.run([&](comm::Comm& comm) {
    const auto b = par::run_baseline(comm, cfg);
    par::RunConfig xcfg = cfg;
    xcfg.lb.strategy = "diffusion:threshold=0.05,border=2";
    xcfg.lb.every = 8;
    const auto x = par::run_diffusion(comm, xcfg);
    par::RunConfig xycfg = xcfg;
    xycfg.lb.strategy = "diffusion:threshold=0.05,border=2,two_phase=1";
    const auto xy = par::run_diffusion(comm, xycfg);
    if (comm.rank() == 0) {
      base = b;
      xonly = x;
      both = xy;
    }
  });

  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return v.empty() ? 1.0 : s / static_cast<double>(v.size());
  };
  util::Table table({"scheme", "verified", "avg imbalance", "max particles/rank"});
  table.add_row({"static", base.ok ? "yes" : "NO", util::Table::fmt(mean(base.imbalance_series), 2),
                 util::Table::fmt_u64(base.max_particles_per_rank)});
  table.add_row({"diffusion x-only", xonly.ok ? "yes" : "NO",
                 util::Table::fmt(mean(xonly.imbalance_series), 2),
                 util::Table::fmt_u64(xonly.max_particles_per_rank)});
  table.add_row({"diffusion two-phase", both.ok ? "yes" : "NO",
                 util::Table::fmt(mean(both.imbalance_series), 2),
                 util::Table::fmt_u64(both.max_particles_per_rank)});
  table.print(std::cout);
}

void irregular_vs_rectangular() {
  // (e) The §IV-B alternative the paper rejected, measured: the
  // 8-neighbor irregular scheme balances too, but its subdomains
  // fragment (growing perimeter ⇒ irregular communication), while the
  // rectangular two-phase scheme keeps the Cartesian product structure.
  std::cout << "--- (e) irregular 8-neighbor scheme vs rectangular diffusion "
               "(real drivers, 4 ranks) ---\n";
  par::RunConfig cfg;
  cfg.init.grid = pic::GridSpec(64, 1.0);
  cfg.init.total_particles = 20000;
  cfg.init.distribution = pic::Geometric{0.9};
  cfg.steps = 200;
  cfg.sample_every = 10;

  par::DriverResult rect;
  par::IrregularResult irr;
  comm::World world(4);
  world.run([&](comm::Comm& comm) {
    par::RunConfig dcfg = cfg;
    dcfg.lb.strategy = "diffusion:threshold=0.05,border=4";
    dcfg.lb.every = 4;
    const auto r = par::run_diffusion(comm, dcfg);
    par::IrregularParams ip;
    ip.frequency = 4;
    ip.threshold = 0.05;
    ip.quota = 16;
    const auto i = par::run_irregular(comm, cfg, ip);
    if (comm.rank() == 0) {
      rect = r;
      irr = i;
    }
  });
  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return v.empty() ? 1.0 : s / static_cast<double>(v.size());
  };
  util::Table table({"scheme", "verified", "avg imbalance", "final perimeter (cells)"});
  table.add_row({"rectangular diffusion", rect.ok ? "yes" : "NO",
                 util::Table::fmt(mean(rect.imbalance_series), 2),
                 "rectangular (bounded)"});
  table.add_row({"irregular 8-neighbor", irr.driver.ok ? "yes" : "NO",
                 util::Table::fmt(mean(irr.driver.imbalance_series), 2),
                 util::Table::fmt_u64(static_cast<std::uint64_t>(irr.final_perimeter)) +
                     " (from " +
                     util::Table::fmt_u64(
                         static_cast<std::uint64_t>(irr.initial_perimeter)) +
                     ")"});
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_lb_ablation", "load-balancing ablations (§IV-B/§IV-C)");
  args.add_int("steps", 2000, "model steps for the parameter grids");
  if (!args.parse(argc, argv)) return 0;

  std::cout << "=== Load-balancing ablations ===\n\n";
  const auto steps = static_cast<std::uint32_t>(args.get_int("steps"));
  diffusion_grid(steps);
  balancer_shootout(steps);
  hinted_balancer_at_scale(steps);
  two_phase_ablation();
  irregular_vs_rectangular();
  return 0;
}
