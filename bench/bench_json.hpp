// Shared schema for machine-readable benchmark output (--json modes).
// Every BENCH_*.json document has the same top-level shape so runs can
// be archived and diffed by tools/compare_bench.py-style scripts:
//
//   {
//     "schema":    "picprk-bench-v1",
//     "benchmark": "<tool name>",
//     "config":    { <the knobs this run was invoked with> },
//     "results":   [ { <one object per measured case> }, ... ]
//   }
//
// Case objects carry benchmark-specific keys; the common ones are
// "particles_per_sec", "exchange_bytes", "step_seconds_p50" and
// "step_seconds_p99" (see docs/PERFORMANCE.md for the full schema).
#pragma once

#include <string>
#include <vector>

#include "util/report.hpp"

namespace picprk::bench {

inline constexpr const char* kBenchSchema = "picprk-bench-v1";

inline util::JsonObject bench_document(const std::string& name,
                                       const util::JsonObject& config,
                                       const std::vector<util::JsonObject>& results) {
  util::JsonObject doc;
  doc.add("schema", std::string(kBenchSchema));
  doc.add("benchmark", name);
  doc.add("config", config);
  doc.add("results", results);
  return doc;
}

/// Writes the standard document to `path`; returns success.
inline bool write_bench_json(const std::string& path, const std::string& name,
                             const util::JsonObject& config,
                             const std::vector<util::JsonObject>& results) {
  return util::write_json_file(path, bench_document(name, config, results));
}

}  // namespace picprk::bench
