// Strategy shoot-out on the real threaded drivers: every registered lb
// strategy runs the paper's §III-E1 drifting geometric cloud (r = 0.98)
// through the driver(s) matching its capabilities, reporting the
// steady-state imbalance λ it converges to and the migration volume it
// paid to get there — the two axes of the §IV cost/benefit trade-off.
//
// --smoke shrinks the problem for CI and additionally asserts the
// headline claim of the `adaptive` wrapper: at equal final λ (±10%),
// its migration volume never exceeds that of always-on diffusion.
// --json writes BENCH_lb.json (schema picprk-bench-v1).
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_json.hpp"
#include "comm/world.hpp"
#include "lb/registry.hpp"
#include "par/ampi.hpp"
#include "par/diffusion.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace picprk;

/// Mean of the second half of the sampled λ series — the steady state
/// after the balancer has caught the drifting cloud (or failed to).
double steady_lambda(const std::vector<double>& series) {
  if (series.empty()) return 1.0;
  const std::size_t from = series.size() / 2;
  double s = 0;
  for (std::size_t i = from; i < series.size(); ++i) s += series[i];
  return s / static_cast<double>(series.size() - from);
}

struct Case {
  std::string driver;
  std::string strategy;
  par::DriverResult result;
};

par::RunConfig base_config(bool smoke) {
  par::RunConfig cfg;
  cfg.init.grid = pic::GridSpec(smoke ? 48 : 96, 1.0);
  cfg.init.total_particles = smoke ? 8000 : 40000;
  cfg.init.distribution = pic::Geometric{0.98};
  cfg.steps = smoke ? 96 : 240;
  cfg.sample_every = 4;
  cfg.lb.every = 8;
  cfg.ranks = 4;
  cfg.workers = 2;
  cfg.overdecomposition = 4;
  return cfg;
}

par::DriverResult run_bounds(const par::RunConfig& cfg) {
  par::DriverResult result;
  comm::World world(cfg.ranks);
  world.run([&](comm::Comm& comm) {
    const auto r = par::run_diffusion(comm, cfg);
    if (comm.rank() == 0) result = r;
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_lb",
                       "steady-state λ and migration volume per lb strategy");
  args.add_flag("smoke", false,
                "tiny sizes for CI + the adaptive-vs-diffusion volume assertion");
  args.add_flag("json", false, "also write BENCH_lb.json (schema picprk-bench-v1)");
  args.add_string("json-path", "BENCH_lb.json", "output path for --json");
  if (!args.parse(argc, argv)) return 0;
  const bool smoke = args.get_flag("smoke");
  const par::RunConfig base = base_config(smoke);

  std::cout << "=== lb strategy shoot-out (geometric r=0.98, "
            << base.init.grid.cells << " cells, " << base.init.total_particles
            << " particles, " << base.steps << " steps) ===\n\n";

  std::vector<Case> cases;
  for (const lb::Descriptor& d : lb::registered_strategies()) {
    if (d.bounds) {
      par::RunConfig cfg = base;
      cfg.lb.strategy = d.name;
      cases.push_back({"diffusion", d.name, run_bounds(cfg)});
    }
    if (d.placement) {
      par::RunConfig cfg = base;
      cfg.lb.strategy = d.name;
      cases.push_back({"ampi", d.name, par::run_ampi(cfg)});
    }
  }

  util::Table table({"driver", "strategy", "verified", "steady λ", "final λ",
                     "LB actions", "LB bytes", "seconds"});
  std::vector<util::JsonObject> results;
  for (const Case& c : cases) {
    const auto& r = c.result;
    const double steady = steady_lambda(r.imbalance_series);
    const double final_lambda =
        r.imbalance_series.empty() ? 1.0 : r.imbalance_series.back();
    table.add_row({c.driver, c.strategy, r.ok ? "yes" : "NO",
                   util::Table::fmt(steady, 3), util::Table::fmt(final_lambda, 3),
                   util::Table::fmt_u64(r.lb_actions), util::Table::fmt_u64(r.lb_bytes),
                   util::Table::fmt(r.seconds, 3)});
    util::JsonObject o;
    o.add("driver", c.driver);
    o.add("strategy", c.strategy);
    o.add("verified", r.ok);
    o.add("steady_lambda", steady);
    o.add("final_lambda", final_lambda);
    o.add("lb_actions", r.lb_actions);
    o.add("lb_bytes", r.lb_bytes);
    o.add("particles_exchanged", r.particles_exchanged);
    o.add("seconds", r.seconds);
    results.push_back(o);
  }
  table.print(std::cout);

  bool all_ok = true;
  for (const Case& c : cases) all_ok = all_ok && c.result.ok;
  if (!all_ok) {
    std::cout << "\nFAIL: at least one strategy failed verification\n";
    return 1;
  }

  // The adaptive claim: equal steady-state balance, never more volume.
  const auto find = [&](const char* driver, const char* name) -> const Case* {
    for (const Case& c : cases) {
      if (c.driver == driver && c.strategy == name) return &c;
    }
    return nullptr;
  };
  const Case* diff = find("diffusion", "diffusion");
  const Case* adpt = find("diffusion", "adaptive");
  if (diff != nullptr && adpt != nullptr) {
    const double l_diff = steady_lambda(diff->result.imbalance_series);
    const double l_adpt = steady_lambda(adpt->result.imbalance_series);
    std::cout << "\nadaptive vs always-on diffusion (bounds driver): λ "
              << util::Table::fmt(l_adpt, 3) << " vs " << util::Table::fmt(l_diff, 3)
              << ", bytes " << adpt->result.lb_bytes << " vs "
              << diff->result.lb_bytes << "\n";
    if (smoke) {
      const bool lambda_equal = l_adpt <= l_diff * 1.10;
      const bool volume_ok = adpt->result.lb_bytes <= diff->result.lb_bytes;
      if (!lambda_equal || !volume_ok) {
        std::cout << "FAIL: adaptive must match diffusion's steady λ within 10% "
                     "without exceeding its migration volume\n";
        return 1;
      }
      std::cout << "smoke assertion passed\n";
    }
  }

  if (args.get_flag("json")) {
    util::JsonObject config;
    config.add("cells", static_cast<std::int64_t>(base.init.grid.cells));
    config.add("particles", base.init.total_particles);
    config.add("steps", static_cast<std::uint64_t>(base.steps));
    config.add("r", 0.98);
    config.add("ranks", static_cast<std::int64_t>(base.ranks));
    config.add("workers", static_cast<std::int64_t>(base.workers));
    config.add("overdecomposition", static_cast<std::int64_t>(base.overdecomposition));
    config.add("lb_every", static_cast<std::uint64_t>(base.lb.every));
    config.add("smoke", smoke);
    if (!bench::write_bench_json(args.get_string("json-path"), "bench_lb", config,
                                 results)) {
      std::cout << "could not write " << args.get_string("json-path") << "\n";
      return 1;
    }
    std::cout << "wrote " << args.get_string("json-path") << "\n";
  }
  return 0;
}
