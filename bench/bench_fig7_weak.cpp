// Reproduces Figure 7: weak scaling 48–3,072 cores. The grid is fixed at
// 11,998² cells; particles scale proportionally with cores from 400,000
// at 48 cores; 6,000 steps; geometric r = 0.999, k = 0.
//
// Paper headlines at 3,072 cores: ampi is 2.4× and diffusion-LB 1.8×
// faster than the baseline, and ampi outperforms every other
// implementation in weak scaling (migration of the now-tiny subgrids is
// cheap relative to the particle work, so the runtime's better balance
// wins despite its locality blindness).
#include <cstdint>
#include <iostream>

#include "common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace picprk;
  util::ArgParser args("bench_fig7_weak", "Figure 7: weak scaling");
  args.add_int("steps", 6000, "time steps (paper: 6000)");
  args.add_string("csv", "", "optional path for machine-readable series output");
  if (!args.parse(argc, argv)) return 0;

  const auto run = bench::paper_run(static_cast<std::uint32_t>(args.get_int("steps")));

  std::cout << "=== Figure 7: weak scaling (model) ===\n\n";
  util::Table table({"cores", "particles", "mpi-2d", "ampi", "mpi-2d-LB", "ampi/base",
                     "LB/base"});
  std::vector<double> xs, base_s, ampi_s, lb_s;
  double base3072 = 0, ampi3072 = 0, lb3072 = 0;

  for (int cores : {48, 96, 192, 384, 768, 1536, 3072}) {
    const auto workload_params = bench::fig7_workload(cores);
    const perfsim::Engine engine(bench::edison_model(),
                                 perfsim::ColumnWorkload::from_expected(workload_params));
    const auto base = engine.run_static(cores, run);
    const auto ampi = bench::tune_vpr(engine, cores, run).result;
    const auto lb = bench::tune_diffusion(engine, cores, run).result;
    table.add_row({std::to_string(cores),
                   util::Table::fmt_u64(workload_params.total_particles),
                   util::Table::fmt(base.seconds, 1), util::Table::fmt(ampi.seconds, 1),
                   util::Table::fmt(lb.seconds, 1),
                   util::Table::fmt(base.seconds / ampi.seconds, 2),
                   util::Table::fmt(base.seconds / lb.seconds, 2)});
    xs.push_back(cores);
    base_s.push_back(base.seconds);
    ampi_s.push_back(ampi.seconds);
    lb_s.push_back(lb.seconds);
    if (cores == 3072) {
      base3072 = base.seconds;
      ampi3072 = ampi.seconds;
      lb3072 = lb.seconds;
    }
  }
  table.print(std::cout);
  std::cout << "\nat 3,072 cores (paper: ampi 2.4x, LB 1.8x over baseline; ampi wins):\n"
            << "  model ampi speedup over baseline: "
            << util::Table::fmt(base3072 / ampi3072, 2) << "x\n"
            << "  model LB speedup over baseline:   "
            << util::Table::fmt(base3072 / lb3072, 2) << "x\n\n";

  const std::vector<util::Series> series = {{"fig7_mpi2d", xs, base_s},
                                            {"fig7_ampi", xs, ampi_s},
                                            {"fig7_mpi2dLB", xs, lb_s}};
  util::print_series_csv(std::cout, series);
  bench::maybe_write_series_csv(args.get_string("csv"), series);
  return 0;
}
