// Reproduces Figure 6 (Left): strong scaling on a single node, 1–24
// cores, of the three implementations (mpi-2d / ampi / mpi-2d-LB), plus
// the §V-B balance statistic (max particles per core at 24 cores:
// baseline 62,645 vs diffusion-LB 30,585 vs ideal 25,000).
//
// Paper setup: 2,998² cells, 600,000 particles, 6,000 steps, geometric
// r = 0.999, k = 0; parameters of each implementation tuned per point.
// Paper headlines at 24 cores: ampi 1.3× and diffusion-LB 1.6× faster
// than the baseline; near-identical performance up to 12 cores.
//
// The harness runs the performance model at paper scale and, with
// --real, additionally validates the ordering with the *real* threaded
// drivers at laptop scale.
#include <cstdint>
#include <iostream>

#include "comm/world.hpp"
#include "common.hpp"
#include "par/ampi.hpp"
#include "par/baseline.hpp"
#include "par/diffusion.hpp"
#include "util/cli.hpp"

namespace {

void run_model(std::uint32_t steps) {
  using namespace picprk;
  const perfsim::Engine engine(bench::edison_model(),
                               perfsim::ColumnWorkload::from_expected(bench::fig6_workload()));
  const auto run = bench::paper_run(steps);

  std::cout << "=== Figure 6 Left: strong scaling, single node (model) ===\n\n";
  util::Table table({"cores", "mpi-2d", "ampi", "mpi-2d-LB", "LB/base", "ampi/base"});
  std::vector<double> xs, base_s, ampi_s, lb_s;
  double base24 = 0, ampi24 = 0, lb24 = 0;
  perfsim::ModelResult base24_full, lb24_full;

  for (int cores : {1, 4, 8, 12, 16, 20, 24}) {
    const auto base = engine.run_static(cores, run);
    const auto ampi = cores == 1 ? base : bench::tune_vpr(engine, cores, run).result;
    const auto lb = cores == 1 ? base : bench::tune_diffusion(engine, cores, run).result;
    table.add_row({std::to_string(cores), util::Table::fmt(base.seconds, 1),
                   util::Table::fmt(ampi.seconds, 1), util::Table::fmt(lb.seconds, 1),
                   util::Table::fmt(base.seconds / lb.seconds, 2),
                   util::Table::fmt(base.seconds / ampi.seconds, 2)});
    xs.push_back(cores);
    base_s.push_back(base.seconds);
    ampi_s.push_back(ampi.seconds);
    lb_s.push_back(lb.seconds);
    if (cores == 24) {
      base24 = base.seconds;
      ampi24 = ampi.seconds;
      lb24 = lb.seconds;
      base24_full = base;
      lb24_full = lb;
    }
  }
  table.print(std::cout);
  std::cout << "\nat 24 cores (paper: LB 1.6x, ampi 1.3x over baseline):\n"
            << "  model LB speedup over baseline:   " << util::Table::fmt(base24 / lb24, 2)
            << "x\n"
            << "  model ampi speedup over baseline: " << util::Table::fmt(base24 / ampi24, 2)
            << "x\n\n";

  std::cout << "max particles per core at 24 cores (paper: 62,645 baseline / "
               "30,585 LB / 25,000 ideal):\n"
            << "  model baseline: " << util::Table::fmt(base24_full.max_particles_final, 0)
            << "\n  model LB:       " << util::Table::fmt(lb24_full.max_particles_final, 0)
            << "\n  ideal:          " << util::Table::fmt(600000.0 / 24.0, 0) << "\n\n";

  util::print_series_csv(std::cout, {{"fig6L_mpi2d", xs, base_s},
                                     {"fig6L_ampi", xs, ampi_s},
                                     {"fig6L_mpi2dLB", xs, lb_s}});
}

void run_real() {
  using namespace picprk;
  std::cout << "\n=== laptop-scale validation with the real threaded drivers ===\n"
            << "(scaled: 256 cells, 40,000 particles, 200 steps, 4 ranks)\n\n";
  par::RunConfig cfg;
  cfg.init.grid = pic::GridSpec(256, 1.0);
  cfg.init.total_particles = 40000;
  cfg.init.distribution = pic::Geometric{0.99};
  cfg.steps = 200;
  cfg.sample_every = 10;

  par::DriverResult base, diff;
  comm::World world(4);
  world.run([&](comm::Comm& comm) {
    const auto b = par::run_baseline(comm, cfg);
    par::RunConfig dcfg = cfg;
    dcfg.lb.strategy = "diffusion:threshold=0.05,border=2";
    dcfg.lb.every = 8;
    const auto d = par::run_diffusion(comm, dcfg);
    if (comm.rank() == 0) {
      base = b;
      diff = d;
    }
  });
  par::RunConfig acfg = cfg;
  acfg.workers = 2;
  acfg.overdecomposition = 8;
  acfg.lb.every = 16;
  const auto ampi = par::run_ampi(acfg);

  util::Table table({"impl", "verified", "max particles/rank", "avg imbalance (sampled)"});
  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return v.empty() ? 1.0 : s / static_cast<double>(v.size());
  };
  table.add_row({"mpi-2d", base.ok ? "yes" : "NO",
                 util::Table::fmt_u64(base.max_particles_per_rank),
                 util::Table::fmt(mean(base.imbalance_series), 2)});
  table.add_row({"mpi-2d-LB", diff.ok ? "yes" : "NO",
                 util::Table::fmt_u64(diff.max_particles_per_rank),
                 util::Table::fmt(mean(diff.imbalance_series), 2)});
  table.add_row({"ampi", ampi.ok ? "yes" : "NO",
                 util::Table::fmt_u64(ampi.max_particles_per_rank),
                 util::Table::fmt(mean(ampi.imbalance_series), 2)});
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace picprk;
  util::ArgParser args("bench_fig6_strong_single",
                       "Figure 6 Left: strong scaling on one node");
  args.add_int("steps", 6000, "time steps (paper: 6000)");
  args.add_flag("real", true, "also run the real threaded drivers at laptop scale");
  if (!args.parse(argc, argv)) return 0;

  run_model(static_cast<std::uint32_t>(args.get_int("steps")));
  if (args.get_flag("real")) run_real();
  return 0;
}
