// The full distributed PIC cycle (deposit → CG solve → gather/push) at
// several rank counts — real execution on threadcomm, not the model.
// Shows where the cycle's time goes: the CG field solve does fixed mesh
// work per step while the push follows the particles; the PRK isolates
// the latter (paper §III-A), and this bench shows the context it was
// carved from.
#include <iostream>

#include "bench_json.hpp"
#include "comm/world.hpp"
#include "field/dist_pic.hpp"
#include "pic/init.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace picprk;
  util::ArgParser args("bench_full_cycle", "distributed PIC cycle scaling (real)");
  args.add_int("cells", 48, "mesh cells per dimension");
  args.add_int("particles", 6000, "global particle count");
  args.add_int("steps", 20, "PIC cycles");
  args.add_flag("json", false, "also write BENCH_full_cycle.json (schema picprk-bench-v1)");
  args.add_string("json-path", "BENCH_full_cycle.json", "output path for --json");
  if (!args.parse(argc, argv)) return 0;

  const auto cells = args.get_int("cells");
  const auto steps = static_cast<std::uint32_t>(args.get_int("steps"));

  // Neutral two-population plasma, geometric spatial skew.
  pic::InitParams init;
  init.grid = pic::GridSpec(cells, 1.0);
  init.total_particles = static_cast<std::uint64_t>(args.get_int("particles"));
  init.distribution = pic::Geometric{0.95};
  std::vector<pic::Particle> all = pic::Initializer(init).create_all();
  for (std::size_t i = 0; i < all.size(); ++i) {
    // Small charges keep the plasma frequency well below 1/dt (explicit
    // leapfrog stability); unit charges at this density would blow up.
    all[i].q = (i % 2 == 0) ? 0.05 : -0.05;
    all[i].vx = 0.2 * (static_cast<double>(i % 5) - 2.0);
  }

  field::MiniPicConfig cfg;
  cfg.grid = init.grid;
  cfg.dt = 0.05;
  cfg.cg_rtol = 1e-8;

  std::cout << "=== distributed PIC cycle (real threaded execution) ===\n"
            << all.size() << " particles, " << cells << "^2 mesh, " << steps
            << " cycles\n\n";
  util::Table table({"ranks", "seconds", "CG iters/step", "particles exchanged",
                     "momentum drift", "energy (kin+field)"});

  std::vector<util::JsonObject> cases;
  for (int ranks : {1, 2, 4}) {
    double seconds = 0;
    int cg_iters = 0;
    std::uint64_t exchanged = 0;
    double drift = 0, energy = 0;
    std::vector<double> step_seconds;
    comm::World world(ranks);
    world.run([&](comm::Comm& comm) {
      field::DistributedMiniPic sim(comm, cfg,
                                    comm.rank() == 0 ? all
                                                     : std::vector<pic::Particle>{});
      const auto before = sim.diagnostics();
      field::MiniPicDiagnostics after;
      util::Timer t;
      // Stepped loop (not run(steps)) so rank 0 can collect the per-step
      // wall-time distribution for the JSON p50/p99 fields.
      for (std::uint32_t s = 0; s < steps; ++s) {
        util::Timer step_t;
        after = sim.step();
        if (comm.rank() == 0) step_seconds.push_back(step_t.elapsed());
      }
      if (comm.rank() == 0) {
        seconds = t.elapsed();
        cg_iters = after.cg_iterations;
        exchanged = sim.particles_exchanged();
        drift = std::abs(after.momentum_x - before.momentum_x) +
                std::abs(after.momentum_y - before.momentum_y);
        energy = after.kinetic_energy + after.field_energy;
      }
    });
    table.add_row({std::to_string(ranks), util::Table::fmt(seconds, 3),
                   std::to_string(cg_iters), util::Table::fmt_u64(exchanged),
                   util::Table::fmt(drift, 6), util::Table::fmt(energy, 2)});

    util::JsonObject c;
    c.add("ranks", static_cast<std::int64_t>(ranks));
    c.add("seconds", seconds);
    c.add("particles_per_sec",
          seconds > 0 ? static_cast<double>(all.size()) * steps / seconds : 0.0);
    c.add("particles_exchanged", exchanged);
    c.add("exchange_bytes", exchanged * static_cast<std::uint64_t>(sizeof(pic::Particle)));
    c.add("step_seconds_p50", util::percentile(step_seconds, 50.0));
    c.add("step_seconds_p99", util::percentile(step_seconds, 99.0));
    c.add("cg_iterations_last_step", static_cast<std::int64_t>(cg_iters));
    c.add("momentum_drift", drift);
    c.add("total_energy", energy);
    cases.push_back(std::move(c));
  }
  table.print(std::cout);
  std::cout << "\nEvery configuration runs the same physics (energies agree); the\n"
               "CG iteration count is rank-independent because the solve is a\n"
               "collective over the same global system.\n";

  if (args.get_flag("json")) {
    util::JsonObject config;
    config.add("cells", args.get_int("cells"));
    config.add("particles", args.get_int("particles"));
    config.add("steps", args.get_int("steps"));
    const std::string path = args.get_string("json-path");
    if (!bench::write_bench_json(path, "bench_full_cycle", config, cases)) {
      std::cerr << "failed to write " << path << "\n";
      return 1;
    }
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}
