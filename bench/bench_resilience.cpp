// Resilience cost benchmark (docs/RESILIENCE.md):
//
//  (a) checkpoint overhead — the same fault-free run with buddy
//      checkpointing off vs on at several cadences, reporting the wall-
//      time overhead and the snapshot bytes shipped;
//  (b) recovery latency — an injected rank death mid-run, reporting the
//      extra wall time of rollback + replay over the fault-free run.
//
// Both sections verify every run (closed-form positions + id checksum),
// so the numbers are only reported for runs that stayed correct.
#include <iostream>

#include "par/baseline.hpp"
#include "par/resilient.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace picprk;

par::RunConfig make_config(std::int64_t cells, std::uint64_t particles,
                           std::uint32_t steps) {
  par::RunConfig cfg;
  cfg.init.grid = pic::GridSpec(cells, 1.0);
  cfg.init.total_particles = particles;
  cfg.init.distribution = pic::Geometric{0.99};
  cfg.steps = steps;
  return cfg;
}

par::DriverResult run_once(int ranks, const par::RunConfig& cfg,
                           const par::ResilienceOptions& opts,
                           par::ResilienceTelemetry* telemetry = nullptr) {
  par::RunConfig run = cfg;
  run.ranks = ranks;
  run.resilience = opts;
  return par::run_resilient(
      run,
      [](comm::Comm& comm, const par::RunConfig& rc) {
        return par::run_baseline(comm, rc);
      },
      telemetry);
}

void checkpoint_overhead(int ranks, const par::RunConfig& cfg) {
  std::cout << "--- (a) buddy-checkpoint overhead (baseline, " << ranks
            << " ranks, " << cfg.steps << " steps) ---\n";

  const auto base = run_once(ranks, cfg, par::ResilienceOptions{});
  if (!base.ok) {
    std::cout << "fault-free reference failed verification; aborting\n";
    return;
  }

  util::Table table({"checkpoint every", "verified", "seconds", "overhead",
                     "rounds", "snapshot MB"});
  table.add_row({"off", "yes", util::Table::fmt(base.seconds, 3), "--", "0", "0.0"});
  for (std::uint32_t every : {64u, 16u, 4u}) {
    par::ResilienceOptions opts;
    opts.checkpoint_every = every;
    const auto r = run_once(ranks, cfg, opts);
    const double overhead = base.seconds > 0 ? r.seconds / base.seconds - 1.0 : 0.0;
    table.add_row({std::to_string(every), r.ok ? "yes" : "NO",
                   util::Table::fmt(r.seconds, 3),
                   util::Table::fmt(100.0 * overhead, 1) + "%",
                   util::Table::fmt_u64(r.checkpoints),
                   util::Table::fmt(static_cast<double>(r.checkpoint_bytes) / 1.0e6, 1)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void recovery_latency(int ranks, const par::RunConfig& cfg) {
  std::cout << "--- (b) rank-death recovery latency (baseline, " << ranks
            << " ranks, kill at step " << cfg.steps / 2 << ") ---\n";

  // DriverResult::seconds covers only the final (successful) stepping
  // loop; recovery latency is the *total* wall time including the
  // aborted attempt, so time the whole run_resilient call.
  par::ResilienceOptions ckpt_only;
  ckpt_only.checkpoint_every = 16;
  util::Timer base_wall;
  const auto base = run_once(ranks, cfg, ckpt_only);
  const double base_seconds = base_wall.elapsed();

  util::Table table({"scenario", "verified", "wall s", "recoveries", "replayed steps"});
  table.add_row({"fault-free", base.ok ? "yes" : "NO",
                 util::Table::fmt(base_seconds, 3), "0", "0"});

  par::ResilienceOptions faulty = ckpt_only;
  faulty.plan = ft::FaultPlan::parse(
      "kill:rank=1,step=" + std::to_string(cfg.steps / 2), /*seed=*/1);
  par::ResilienceTelemetry telemetry;
  util::Timer faulty_wall;
  const auto r = run_once(ranks, cfg, faulty, &telemetry);
  const double faulty_seconds = faulty_wall.elapsed();
  // The kill fires at steps/2; the rollback target is the last checkpoint
  // at or below it, so the replay distance is steps/2 mod cadence.
  const std::uint32_t replayed = (cfg.steps / 2) % ckpt_only.checkpoint_every;
  table.add_row({"kill + rollback", r.ok ? "yes" : "NO",
                 util::Table::fmt(faulty_seconds, 3), std::to_string(r.recoveries),
                 std::to_string(replayed)});
  table.print(std::cout);
  std::cout << "recovery cost: " << util::Table::fmt(faulty_seconds - base_seconds, 3)
            << " s over the fault-free run (" << telemetry.residual_messages
            << " residual messages drained at abort)\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_resilience", "checkpoint/recovery cost of the ft layer");
  args.add_int("ranks", 4, "threadcomm ranks");
  args.add_int("cells", 200, "mesh cells per dimension");
  args.add_int("particles", 200000, "particle count");
  args.add_int("steps", 200, "time steps");
  if (!args.parse(argc, argv)) return 0;

  const auto cfg = make_config(args.get_int("cells"),
                               static_cast<std::uint64_t>(args.get_int("particles")),
                               static_cast<std::uint32_t>(args.get_int("steps")));
  const int ranks = static_cast<int>(args.get_int("ranks"));

  checkpoint_overhead(ranks, cfg);
  recovery_latency(ranks, cfg);
  return 0;
}
