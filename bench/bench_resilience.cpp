// Resilience cost benchmark (docs/RESILIENCE.md):
//
//  (a) checkpoint overhead — the same fault-free run with buddy
//      checkpointing off vs on at several cadences, reporting the wall-
//      time overhead and the snapshot bytes shipped;
//  (b) recovery latency — an injected rank death mid-run, reporting the
//      extra wall time of rollback + replay over the fault-free run;
//  (c) the recovery ladder — total overhead of each rung at matched
//      fault pressure: in-band retry (reliable transport healing seeded
//      message faults), localized recovery (buddy restore of a killed
//      rank, survivors replay <= 1 step) and classical full rollback of
//      the same kill. Repeated --reps times with p50/p99 over the wall
//      times (util::histogram_quantile); --json writes the legs as a
//      picprk-bench-v1 document.
//
// All sections verify every run (closed-form positions + id checksum),
// so the numbers are only reported for runs that stayed correct.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "par/baseline.hpp"
#include "par/resilient.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace picprk;

par::RunConfig make_config(std::int64_t cells, std::uint64_t particles,
                           std::uint32_t steps) {
  par::RunConfig cfg;
  cfg.init.grid = pic::GridSpec(cells, 1.0);
  cfg.init.total_particles = particles;
  cfg.init.distribution = pic::Geometric{0.99};
  cfg.steps = steps;
  return cfg;
}

par::DriverResult run_once(int ranks, const par::RunConfig& cfg,
                           const par::ResilienceOptions& opts,
                           par::ResilienceTelemetry* telemetry = nullptr) {
  par::RunConfig run = cfg;
  run.ranks = ranks;
  run.resilience = opts;
  return par::run_resilient(
      run,
      [](comm::Comm& comm, const par::RunConfig& rc) {
        return par::run_baseline(comm, rc);
      },
      telemetry);
}

void checkpoint_overhead(int ranks, const par::RunConfig& cfg) {
  std::cout << "--- (a) buddy-checkpoint overhead (baseline, " << ranks
            << " ranks, " << cfg.steps << " steps) ---\n";

  const auto base = run_once(ranks, cfg, par::ResilienceOptions{});
  if (!base.ok) {
    std::cout << "fault-free reference failed verification; aborting\n";
    return;
  }

  util::Table table({"checkpoint every", "verified", "seconds", "overhead",
                     "rounds", "snapshot MB"});
  table.add_row({"off", "yes", util::Table::fmt(base.seconds, 3), "--", "0", "0.0"});
  for (std::uint32_t every : {64u, 16u, 4u}) {
    par::ResilienceOptions opts;
    opts.checkpoint_every = every;
    const auto r = run_once(ranks, cfg, opts);
    const double overhead = base.seconds > 0 ? r.seconds / base.seconds - 1.0 : 0.0;
    table.add_row({std::to_string(every), r.ok ? "yes" : "NO",
                   util::Table::fmt(r.seconds, 3),
                   util::Table::fmt(100.0 * overhead, 1) + "%",
                   util::Table::fmt_u64(r.checkpoints),
                   util::Table::fmt(static_cast<double>(r.checkpoint_bytes) / 1.0e6, 1)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void recovery_latency(int ranks, const par::RunConfig& cfg) {
  std::cout << "--- (b) rank-death recovery latency (baseline, " << ranks
            << " ranks, kill at step " << cfg.steps / 2 << ") ---\n";

  // DriverResult::seconds covers only the final (successful) stepping
  // loop; recovery latency is the *total* wall time including the
  // aborted attempt, so time the whole run_resilient call.
  par::ResilienceOptions ckpt_only;
  ckpt_only.checkpoint_every = 16;
  util::Timer base_wall;
  const auto base = run_once(ranks, cfg, ckpt_only);
  const double base_seconds = base_wall.elapsed();

  util::Table table({"scenario", "verified", "wall s", "recoveries", "replayed steps"});
  table.add_row({"fault-free", base.ok ? "yes" : "NO",
                 util::Table::fmt(base_seconds, 3), "0", "0"});

  par::ResilienceOptions faulty = ckpt_only;
  faulty.plan = ft::FaultPlan::parse(
      "kill:rank=1,step=" + std::to_string(cfg.steps / 2), /*seed=*/1);
  par::ResilienceTelemetry telemetry;
  util::Timer faulty_wall;
  const auto r = run_once(ranks, cfg, faulty, &telemetry);
  const double faulty_seconds = faulty_wall.elapsed();
  // The kill fires at steps/2; the rollback target is the last checkpoint
  // at or below it, so the replay distance is steps/2 mod cadence.
  const std::uint32_t replayed = (cfg.steps / 2) % ckpt_only.checkpoint_every;
  table.add_row({"kill + rollback", r.ok ? "yes" : "NO",
                 util::Table::fmt(faulty_seconds, 3), std::to_string(r.recoveries),
                 std::to_string(replayed)});
  table.print(std::cout);
  std::cout << "recovery cost: " << util::Table::fmt(faulty_seconds - base_seconds, 3)
            << " s over the fault-free run (" << telemetry.residual_messages
            << " residual messages drained at abort)\n";
}

/// p50/p99 of a small sample through the shared bucketed-quantile path
/// (util::histogram_quantile), so the bench reports the same quantile
/// semantics as the obs subsystem's histograms.
struct Quantiles {
  double p50 = 0.0, p99 = 0.0;
};

Quantiles bucketed_quantiles(const std::vector<double>& values) {
  if (values.empty()) return {};
  const double hi = *std::max_element(values.begin(), values.end());
  util::Histogram hist(0.0, hi > 0.0 ? hi * 1.01 : 1.0, 64);
  for (double v : values) hist.add(v);
  return {hist.quantile(0.5), hist.quantile(0.99)};
}

/// (c) One rung of the recovery ladder, run `reps` times.
struct LadderLeg {
  std::string name;
  par::ResilienceOptions opts;
};

void recovery_ladder(int ranks, const par::RunConfig& cfg, int reps,
                     std::vector<util::JsonObject>* json_legs) {
  std::cout << "--- (c) the recovery ladder: total overhead per rung ("
            << ranks << " ranks, " << reps << " reps) ---\n";

  // Fault-free reference (no ft at all): the baseline every rung's
  // total overhead is charged against, checkpointing cost included.
  std::vector<double> clean_walls;
  for (int i = 0; i < reps; ++i) {
    util::Timer wall;
    const auto r = run_once(ranks, cfg, par::ResilienceOptions{});
    if (!r.ok) {
      std::cout << "fault-free reference failed verification; aborting\n";
      return;
    }
    clean_walls.push_back(wall.elapsed());
  }
  const double clean_p50 = bucketed_quantiles(clean_walls).p50;

  const std::string kill_spec =
      "kill:rank=1,step=" + std::to_string(cfg.steps / 2);
  std::vector<LadderLeg> legs;
  {
    // Rung 1: message faults only, healed entirely in-band — the run
    // never aborts, never even checkpoints.
    LadderLeg leg{"inband-retry", {}};
    leg.opts.plan = ft::FaultPlan::parse(
        "drop:prob=0.01;dup:prob=0.005;delay:prob=0.01,ms=1", /*seed=*/4242);
    leg.opts.reliable = true;
    leg.opts.rto_ms = 5;
    leg.opts.timeout_ms = 10000;
    legs.push_back(leg);
  }
  {
    // Rung 2: a confirmed rank death repaired in place from the buddy
    // copy; survivors replay at most one step (cadence forced to 1).
    LadderLeg leg{"localized", {}};
    leg.opts.plan = ft::FaultPlan::parse(kill_spec, /*seed=*/1);
    leg.opts.recovery = par::RecoveryMode::kLocal;
    leg.opts.checkpoint_every = 1;
    leg.opts.timeout_ms = 10000;
    legs.push_back(leg);
  }
  {
    // Rung 3: the same kill repaired by tearing the world down and
    // replaying every rank from the last consistent checkpoint.
    LadderLeg leg{"rollback", {}};
    leg.opts.plan = ft::FaultPlan::parse(kill_spec, /*seed=*/1);
    leg.opts.checkpoint_every = 16;
    leg.opts.timeout_ms = 10000;
    legs.push_back(leg);
  }

  util::Table table({"rung", "verified", "wall p50", "wall p99", "overhead p50",
                     "recoveries", "replayed", "retransmits"});
  table.add_row({"fault-free", "yes", util::Table::fmt(clean_p50, 3),
                 util::Table::fmt(bucketed_quantiles(clean_walls).p99, 3), "--",
                 "0", "0", "0"});
  for (const LadderLeg& leg : legs) {
    std::vector<double> walls;
    bool all_ok = true;
    std::uint64_t rollbacks = 0, localized = 0, replayed = 0, retransmits = 0;
    for (int i = 0; i < reps; ++i) {
      par::ResilienceTelemetry telemetry;
      util::Timer wall;
      const auto r = run_once(ranks, cfg, leg.opts, &telemetry);
      walls.push_back(wall.elapsed());
      all_ok = all_ok && r.ok;
      rollbacks += telemetry.rollbacks;
      localized += telemetry.localized_recoveries;
      replayed = std::max<std::uint64_t>(replayed, telemetry.replayed_steps);
      retransmits += telemetry.retransmits;
    }
    const Quantiles q = bucketed_quantiles(walls);
    table.add_row({leg.name, all_ok ? "yes" : "NO", util::Table::fmt(q.p50, 3),
                   util::Table::fmt(q.p99, 3),
                   util::Table::fmt(q.p50 - clean_p50, 3),
                   util::Table::fmt_u64(rollbacks + localized),
                   util::Table::fmt_u64(replayed),
                   util::Table::fmt_u64(retransmits)});
    if (json_legs != nullptr) {
      util::JsonObject obj;
      obj.add("scenario", leg.name);
      obj.add("reps", static_cast<std::int64_t>(reps));
      obj.add("verified", all_ok);
      obj.add("wall_seconds_p50", q.p50);
      obj.add("wall_seconds_p99", q.p99);
      obj.add("overhead_seconds_p50", q.p50 - clean_p50);
      obj.add("clean_wall_seconds_p50", clean_p50);
      obj.add("rollbacks", rollbacks);
      obj.add("localized_recoveries", localized);
      obj.add("max_replayed_steps", replayed);
      obj.add("retransmits", retransmits);
      json_legs->push_back(obj);
    }
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_resilience", "checkpoint/recovery cost of the ft layer");
  args.add_int("ranks", 4, "threadcomm ranks");
  args.add_int("cells", 200, "mesh cells per dimension");
  args.add_int("particles", 200000, "particle count");
  args.add_int("steps", 200, "time steps");
  args.add_int("reps", 5, "repetitions per recovery-ladder rung (section c)");
  args.add_string("json", "", "write the ladder legs as picprk-bench-v1 JSON");
  if (!args.parse(argc, argv)) return 0;

  const auto cfg = make_config(args.get_int("cells"),
                               static_cast<std::uint64_t>(args.get_int("particles")),
                               static_cast<std::uint32_t>(args.get_int("steps")));
  const int ranks = static_cast<int>(args.get_int("ranks"));

  checkpoint_overhead(ranks, cfg);
  recovery_latency(ranks, cfg);

  std::vector<util::JsonObject> legs;
  recovery_ladder(ranks, cfg, static_cast<int>(args.get_int("reps")), &legs);
  const std::string json_path = args.get_string("json");
  if (!json_path.empty()) {
    util::JsonObject config;
    config.add("ranks", static_cast<std::int64_t>(ranks));
    config.add("cells", args.get_int("cells"));
    config.add("particles", args.get_int("particles"));
    config.add("steps", args.get_int("steps"));
    config.add("reps", args.get_int("reps"));
    if (!bench::write_bench_json(json_path, "bench_resilience", config, legs)) {
      std::cerr << "bench_resilience: cannot write " << json_path << '\n';
      return 1;
    }
    std::cout << "wrote " << json_path << '\n';
  }
  return 0;
}
