// Old-vs-new micro-benchmark for the two hot paths this repo optimises:
//
//  1. The force/move kernel — the pre-strength-reduction kernel
//     (pic::reference, one sqrt + three divides per corner, four at()
//     charge lookups) against the current kernel (1/r³ form, fused
//     corners() lookup) in AoS, flat-SoA and tiled-SoA form. The tiled
//     leg runs the production configuration (cell tiles + post-move
//     revalidation; rebuild cost reported separately) at the acceptance
//     geometry: 200k geometric particles on a 64² grid. Headline numbers
//     are particles/sec, the speedup over the reference, and the tiled
//     kernel's speedup over the scalar AoS baseline (gate: >= 1.5x).
//
//  2. The particle exchange — the pre-flat-buffer exchange
//     (vector-of-vectors bucketing + Comm::alltoall, reproduced verbatim
//     below) against exchange_particles with a reusable ExchangeBuffers
//     workspace. Reports per-step p50/p99 times and the workspace's
//     allocation counter across the steady-state steps (expected: 0).
//
// --smoke shrinks sizes for the `perf` ctest label; --json writes
// BENCH_hotpath.json in the picprk-bench-v1 schema (docs/PERFORMANCE.md).
#include <iostream>
#include <string>

#include "bench_json.hpp"
#include "comm/world.hpp"
#include "par/decomposition.hpp"
#include "par/exchange.hpp"
#include "pic/init.hpp"
#include "pic/mover.hpp"
#include "pic/tiling.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace picprk;

/// The exchange as it was before the flat-buffer rewrite: per-destination
/// vector-of-vectors, Comm::alltoall, keep-vector rebuild. Every line
/// allocates; kept here verbatim as the "old" side of the comparison.
par::ExchangeStats legacy_exchange(comm::Comm& comm, const par::Decomposition2D& decomp,
                                   std::vector<pic::Particle>& mine) {
  const int p = comm.size();
  const int me = comm.rank();

  std::vector<std::vector<pic::Particle>> outgoing(static_cast<std::size_t>(p));
  std::vector<pic::Particle> keep;
  keep.reserve(mine.size());
  for (const pic::Particle& particle : mine) {
    const int owner = decomp.owner_of_position(particle.x, particle.y);
    if (owner == me) {
      keep.push_back(particle);
    } else {
      outgoing[static_cast<std::size_t>(owner)].push_back(particle);
    }
  }

  par::ExchangeStats stats;
  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    const auto& bucket = outgoing[static_cast<std::size_t>(r)];
    stats.sent += bucket.size();
    stats.bytes += bucket.size() * sizeof(pic::Particle);
  }

  auto incoming = comm.alltoall(outgoing);
  mine = std::move(keep);
  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    const auto& bucket = incoming[static_cast<std::size_t>(r)];
    stats.received += bucket.size();
    mine.insert(mine.end(), bucket.begin(), bucket.end());
  }
  return stats;
}

struct Timing {
  double particles_per_sec = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

template <typename Fn>
Timing time_passes(int passes, std::size_t particles, Fn&& pass) {
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(passes));
  for (int i = 0; i < passes; ++i) {
    util::Timer t;
    pass();
    seconds.push_back(t.elapsed());
  }
  double total = 0.0;
  for (double s : seconds) total += s;
  Timing out;
  out.particles_per_sec =
      total > 0 ? static_cast<double>(particles) * passes / total : 0.0;
  out.p50 = util::percentile(seconds, 50.0);
  out.p99 = util::percentile(seconds, 99.0);
  return out;
}

util::JsonObject mover_case(const std::string& kernel, std::uint64_t particles,
                            const Timing& t, double speedup) {
  util::JsonObject c;
  c.add("kind", std::string("mover"));
  c.add("kernel", kernel);
  c.add("particles", particles);
  c.add("particles_per_sec", t.particles_per_sec);
  c.add("pass_seconds_p50", t.p50);
  c.add("pass_seconds_p99", t.p99);
  c.add("speedup_vs_reference", speedup);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_hotpath",
                       "old-vs-new comparison of the mover kernel and particle exchange");
  args.add_int("particles", 200000, "particle count for the mover comparison");
  args.add_int("passes", 40, "timed passes per mover kernel");
  args.add_int("ranks", 4, "threadcomm ranks for the exchange comparison");
  args.add_int("steps", 60, "steps for the exchange comparison");
  args.add_flag("smoke", false, "tiny sizes for CI (the `perf` ctest label)");
  args.add_flag("json", false, "also write BENCH_hotpath.json (schema picprk-bench-v1)");
  args.add_string("json-path", "BENCH_hotpath.json", "output path for --json");
  if (!args.parse(argc, argv)) return 0;

  const bool smoke = args.get_flag("smoke");
  const auto n = static_cast<std::uint64_t>(smoke ? 20000 : args.get_int("particles"));
  const int passes = smoke ? 8 : static_cast<int>(args.get_int("passes"));
  const int ranks = static_cast<int>(args.get_int("ranks"));
  const auto steps = static_cast<std::uint32_t>(smoke ? 24 : args.get_int("steps"));

  // ------------------------------------------------------------- movers
  // The acceptance geometry of docs/PERFORMANCE.md: geometric skew on a
  // 64² grid (~50 particles/cell at the default population), where the
  // tiled mover's per-cell corner broadcast pays off.
  pic::InitParams params;
  params.grid = pic::GridSpec(64, 1.0);
  params.total_particles = n;
  params.distribution = pic::Geometric{0.99};
  const pic::Initializer init(params);
  const pic::AlternatingColumnCharges charges;
  const auto slab = pic::ChargeSlab::sample(charges, 0, 0, 65, 65);

  auto p_ref = init.create_all();
  auto p_new = init.create_all();
  auto p_slab = init.create_all();
  auto soa = pic::to_soa(init.create_all());
  auto soa_tiled = pic::to_soa(init.create_all());
  pic::TileIndex tiles(pic::CellRegion{0, params.grid.cells, 0, params.grid.cells});

  // One forced counting-sort, timed on its own: the rebuild is the cost
  // the revalidate/remap design amortises away (the steady state below
  // re-sorts only when tiles scatter or the untiled tail grows).
  util::Timer rebuild_timer;
  tiles.rebuild(soa_tiled, params.grid);
  const double rebuild_seconds = rebuild_timer.elapsed();

  const Timing ref = time_passes(passes, p_ref.size(), [&] {
    pic::reference::move_all(std::span<pic::Particle>(p_ref), params.grid, charges, 1.0);
  });
  const Timing aos = time_passes(passes, p_new.size(), [&] {
    pic::move_all(std::span<pic::Particle>(p_new), params.grid, charges, 1.0);
  });
  const Timing aos_slab = time_passes(passes, p_slab.size(), [&] {
    pic::move_all(std::span<pic::Particle>(p_slab), params.grid, slab, 1.0);
  });
  const Timing soa_t = time_passes(passes, soa.size(), [&] {
    pic::move_all_soa(soa, params.grid, charges, 1.0);
  });
  const Timing tiled = time_passes(passes, soa_tiled.size(), [&] {
    pic::move_all_tiled(soa_tiled, tiles, params.grid, charges, 1.0);
  });

  const auto speedup = [&](const Timing& t) {
    return ref.particles_per_sec > 0 ? t.particles_per_sec / ref.particles_per_sec : 0.0;
  };
  const double tiled_vs_scalar = aos.particles_per_sec > 0
                                     ? tiled.particles_per_sec / aos.particles_per_sec
                                     : 0.0;

  std::cout << "=== hot-path comparison: mover kernel (" << n << " particles, " << passes
            << " passes, grid " << params.grid.cells << "^2) ===\n";
  util::Table mover_table({"kernel", "Mparticles/s", "p50 ms", "p99 ms", "vs reference"});
  const auto mover_row = [&](const std::string& name, const Timing& t) {
    mover_table.add_row({name, util::Table::fmt(t.particles_per_sec / 1e6, 2),
                         util::Table::fmt(t.p50 * 1e3, 3), util::Table::fmt(t.p99 * 1e3, 3),
                         util::Table::fmt(speedup(t), 2) + "x"});
  };
  mover_row("reference AoS", ref);
  mover_row("AoS", aos);
  mover_row("AoS (slab)", aos_slab);
  mover_row("SoA flat", soa_t);
  mover_row("SoA tiled", tiled);
  mover_table.print(std::cout);
  std::cout << "mover speedup (AoS vs reference): " << util::Table::fmt(speedup(aos), 2)
            << "x\n"
            << "mover speedup (tiled vs scalar AoS): "
            << util::Table::fmt(tiled_vs_scalar, 2) << "x (gate: >= 1.5x)\n"
            << "tile rebuild (counting sort, all columns): "
            << util::Table::fmt(rebuild_seconds * 1e3, 3) << " ms, steady state fresh="
            << (tiles.fresh() ? "yes" : "no") << "\n\n";

  // ----------------------------------------------------------- exchange
  // Uniformly distributed particles on a rank grid, hopping exact cell
  // distances every step (k=1, m=1): heavy but STATIONARY cross-boundary
  // traffic, which is what "zero steady-state allocations" is defined
  // over (a skewed cloud drifting across rank boundaries keeps setting
  // new payload-size maxima, and each new maximum is a legitimate buffer
  // growth). Only the exchange call is timed; the same move phase drives
  // both paths.
  pic::InitParams xparams;
  xparams.grid = pic::GridSpec(smoke ? 64 : 128, 1.0);
  xparams.total_particles = smoke ? 20000 : 200000;
  xparams.distribution = pic::Uniform{};

  struct ExchangeRun {
    std::vector<double> step_seconds;
    std::uint64_t sent = 0;
    std::uint64_t steady_allocations = 0;
    std::uint64_t warmup_allocations = 0;
  };
  const std::uint32_t warmup = steps / 4 + 1;

  const auto run_exchange = [&](bool flat) {
    ExchangeRun out;
    comm::World world(ranks);
    world.run([&](comm::Comm& comm) {
      const comm::Cart2D cart(comm.size());
      const par::Decomposition2D decomp(xparams.grid, cart);
      const pic::CellRegion block = decomp.block_of(comm.rank());
      const pic::Initializer xinit(xparams);
      std::vector<pic::Particle> mine =
          xinit.create_block(block.x0, block.x1, block.y0, block.y1);
      par::ExchangeBuffers buffers;
      for (std::uint32_t s = 0; s < steps; ++s) {
        pic::move_all(std::span<pic::Particle>(mine), xparams.grid, charges, 1.0);
        util::Timer t;
        const par::ExchangeStats stats =
            flat ? par::exchange_particles(comm, decomp, mine, buffers)
                 : legacy_exchange(comm, decomp, mine);
        if (comm.rank() == 0) {
          out.step_seconds.push_back(t.elapsed());
          out.sent += stats.sent;
          if (s + 1 == warmup) out.warmup_allocations = buffers.allocations();
        }
      }
      if (comm.rank() == 0) {
        out.steady_allocations = buffers.allocations() - out.warmup_allocations;
      }
    });
    return out;
  };

  const ExchangeRun legacy = run_exchange(false);
  const ExchangeRun flat = run_exchange(true);

  const auto total = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s;
  };
  const double exchange_speedup =
      total(flat.step_seconds) > 0 ? total(legacy.step_seconds) / total(flat.step_seconds)
                                   : 0.0;

  std::cout << "=== hot-path comparison: particle exchange (" << ranks << " ranks, "
            << steps << " steps, " << xparams.total_particles << " particles) ===\n";
  util::Table ex_table({"path", "total s", "p50 ms", "p99 ms", "particles sent"});
  ex_table.add_row({"legacy (alltoall)", util::Table::fmt(total(legacy.step_seconds), 3),
                    util::Table::fmt(util::percentile(legacy.step_seconds, 50.0) * 1e3, 3),
                    util::Table::fmt(util::percentile(legacy.step_seconds, 99.0) * 1e3, 3),
                    util::Table::fmt_u64(legacy.sent)});
  ex_table.add_row({"flat (alltoallv)", util::Table::fmt(total(flat.step_seconds), 3),
                    util::Table::fmt(util::percentile(flat.step_seconds, 50.0) * 1e3, 3),
                    util::Table::fmt(util::percentile(flat.step_seconds, 99.0) * 1e3, 3),
                    util::Table::fmt_u64(flat.sent)});
  ex_table.print(std::cout);
  std::cout << "exchange speedup (total time): " << util::Table::fmt(exchange_speedup, 2)
            << "x\n"
            << "workspace allocations after warm-up (" << warmup
            << " steps): " << flat.steady_allocations << " (expected 0)\n";

  if (args.get_flag("json")) {
    std::vector<util::JsonObject> cases;
    cases.push_back(mover_case("mover_aos_reference", n, ref, 1.0));
    cases.push_back(mover_case("mover_aos", n, aos, speedup(aos)));
    cases.push_back(mover_case("mover_aos_slab", n, aos_slab, speedup(aos_slab)));
    cases.push_back(mover_case("mover_soa", n, soa_t, speedup(soa_t)));
    {
      util::JsonObject c = mover_case("mover_soa_tiled", n, tiled, speedup(tiled));
      c.add("speedup_vs_scalar_aos", tiled_vs_scalar);
      c.add("tile_rebuild_seconds", rebuild_seconds);
      cases.push_back(std::move(c));
    }
    for (const bool is_flat : {false, true}) {
      const ExchangeRun& r = is_flat ? flat : legacy;
      util::JsonObject c;
      c.add("kind", std::string("exchange"));
      c.add("path", std::string(is_flat ? "flat_alltoallv" : "legacy_alltoall"));
      c.add("ranks", static_cast<std::int64_t>(ranks));
      c.add("steps", static_cast<std::int64_t>(steps));
      c.add("particles_sent", r.sent);
      c.add("exchange_bytes", r.sent * static_cast<std::uint64_t>(sizeof(pic::Particle)));
      c.add("total_seconds", total(r.step_seconds));
      c.add("step_seconds_p50", util::percentile(r.step_seconds, 50.0));
      c.add("step_seconds_p99", util::percentile(r.step_seconds, 99.0));
      if (is_flat) {
        c.add("speedup_vs_legacy", exchange_speedup);
        c.add("steady_state_allocations", r.steady_allocations);
      }
      cases.push_back(std::move(c));
    }
    util::JsonObject config;
    config.add("smoke", smoke);
    config.add("particles", n);
    config.add("passes", static_cast<std::int64_t>(passes));
    config.add("ranks", static_cast<std::int64_t>(ranks));
    config.add("steps", static_cast<std::int64_t>(steps));
    const std::string path = args.get_string("json-path");
    if (!bench::write_bench_json(path, "bench_hotpath", config, cases)) {
      std::cerr << "failed to write " << path << "\n";
      return 1;
    }
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}
