// Observation helpers for the PRK: density profiles and a periodic-aware
// summary of the particle cloud (center of mass, angular spread, drift).
// These are measurement tools for experiments — e.g. confirming that a
// geometric cloud drifts at exactly (2k+1) cells per step, or feeding
// the distribution gallery — not part of the kernel specification.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pic/geometry.hpp"
#include "pic/particle.hpp"

namespace picprk::pic {

/// Particle counts per cell column.
std::vector<std::uint64_t> column_histogram(std::span<const Particle> particles,
                                            const GridSpec& grid);

/// Particle counts per cell row.
std::vector<std::uint64_t> row_histogram(std::span<const Particle> particles,
                                         const GridSpec& grid);

/// Periodic-aware cloud summary. Positions on a ring have no ordinary
/// mean; the center of mass is the circular mean (argument of the
/// resultant of unit vectors at angle 2πx/L) and the concentration is
/// the resultant length R ∈ [0, 1]: R → 1 for a point cloud, R → 0 for
/// a uniform one.
struct CloudSummary {
  std::uint64_t count = 0;
  double com_x = 0.0;  ///< circular mean position, in [0, L)
  double com_y = 0.0;
  double concentration_x = 0.0;  ///< resultant length R in x
  double concentration_y = 0.0;
};

CloudSummary summarize_cloud(std::span<const Particle> particles, const GridSpec& grid);

/// Signed shortest displacement from `before` to `after` on a ring of
/// circumference L (positive = rightward): the per-step drift estimator.
double periodic_displacement(double before, double after, double length);

}  // namespace picprk::pic
