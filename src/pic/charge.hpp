// Mesh-point charges. The PRK specification fixes the pattern: mesh-point
// columns with even x-index carry +q, odd columns carry −q (paper §III-C,
// Figure 2). Two representations are provided:
//
//  * AlternatingColumnCharges — the analytic pattern, O(1) storage; what
//    the verification mathematics assumes.
//  * ChargeSlab — an explicit array over a rectangle of mesh points.
//    The parallel drivers hold their owned subgrid in this form so that
//    load balancing really has grid *data* to migrate (the paper's
//    category-3 imbalance: work moves together with data).
//
// The kernel code is oblivious to which one it reads (paper: "the code
// implementing the simulation is oblivious of the mesh charges ... and
// should be able to handle any possible initialization mode"), so the
// mover is templated on the charge source.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pic/geometry.hpp"
#include "util/annotations.hpp"
#include "util/assert.hpp"

namespace picprk::pic {

/// The four mesh-point charges at the corners of one cell, in the fixed
/// corner order of the mover: (cx,cy), (cx,cy+1), (cx+1,cy), (cx+1,cy+1).
/// Charge sources that can produce all four cheaper than four `at` calls
/// expose `corners(cx, cy)`; the mover detects and prefers it.
struct CornerCharges {
  double q00 = 0.0;  ///< (cx,   cy)
  double q01 = 0.0;  ///< (cx,   cy+1)
  double q10 = 0.0;  ///< (cx+1, cy)
  double q11 = 0.0;  ///< (cx+1, cy+1)
};

/// Analytic alternating-column pattern: charge(px, py) = ±q by parity of
/// the mesh-point x-index.
class AlternatingColumnCharges {
 public:
  explicit AlternatingColumnCharges(double q = 1.0) : by_parity_{q, -q}, q_(q) {}

  double q() const { return q_; }

  /// Charge at mesh point (px, py); indices may be any integers (callers
  /// pass cell corners, which are always in range after wrapping).
  PICPRK_HOT double at(std::int64_t px, std::int64_t py) const {
    (void)py;
    return by_parity_[static_cast<std::size_t>(px & 1)];
  }

  /// Hot-path corner lookup: both corners of a mesh-point column carry
  /// the same charge and the right column is the negation of the left,
  /// so one parity test yields all four values. Branch-free (table
  /// indexed by the low bit), which keeps the SoA mover vectorizable.
  PICPRK_HOT CornerCharges corners(std::int64_t cx, std::int64_t /*cy*/) const {
    const double left = by_parity_[static_cast<std::size_t>(cx & 1)];
    return {left, left, -left, -left};
  }

 private:
  double by_parity_[2];
  double q_;
};

/// Explicit charges for mesh points [x0, x0+width) × [y0, y0+height).
/// A driver owning cells [cx0, cx1) × [cy0, cy1) needs mesh points
/// [cx0, cx1] × [cy0, cy1], i.e. width = cx1-cx0+1 — the "replicated
/// fringe" (ghost) points of paper §IV-A.
class ChargeSlab {
 public:
  ChargeSlab() = default;

  /// Builds the slab by sampling `pattern` (typically the alternating
  /// columns) over the given mesh-point rectangle. Point indices are
  /// *global* and may exceed the grid (callers on the periodic seam);
  /// the pattern itself is periodic with period 2 in x, so no wrapping
  /// is needed for the canonical pattern.
  template <typename Pattern>
  static ChargeSlab sample(const Pattern& pattern, std::int64_t x0, std::int64_t y0,
                           std::int64_t width, std::int64_t height) {
    PICPRK_EXPECTS(width >= 1 && height >= 1);
    ChargeSlab slab;
    slab.x0_ = x0;
    slab.y0_ = y0;
    slab.width_ = width;
    slab.height_ = height;
    slab.values_.resize(static_cast<std::size_t>(width * height));
    for (std::int64_t j = 0; j < height; ++j) {
      for (std::int64_t i = 0; i < width; ++i) {
        slab.values_[static_cast<std::size_t>(j * width + i)] = pattern.at(x0 + i, y0 + j);
      }
    }
    return slab;
  }

  /// Builds a slab directly from values (used when receiving migrated
  /// subgrid columns from a neighbor rank).
  static ChargeSlab from_values(std::int64_t x0, std::int64_t y0, std::int64_t width,
                                std::int64_t height, std::vector<double> values);

  PICPRK_HOT double at(std::int64_t px, std::int64_t py) const {
    PICPRK_ASSERT_MSG(contains(px, py), "mesh point outside owned slab");
    return values_[static_cast<std::size_t>((py - y0_) * width_ + (px - x0_))];
  }

  /// Hot-path corner lookup: one bounds check for the whole 2×2 block
  /// and a single base-index computation instead of four `at` calls.
  PICPRK_HOT CornerCharges corners(std::int64_t cx, std::int64_t cy) const {
    PICPRK_ASSERT_MSG(contains(cx, cy) && contains(cx + 1, cy + 1),
                      "cell corners outside owned slab");
    const auto base = static_cast<std::size_t>((cy - y0_) * width_ + (cx - x0_));
    const auto stride = static_cast<std::size_t>(width_);
    return {values_[base], values_[base + stride], values_[base + 1],
            values_[base + stride + 1]};
  }

  bool contains(std::int64_t px, std::int64_t py) const {
    return px >= x0_ && px < x0_ + width_ && py >= y0_ && py < y0_ + height_;
  }

  std::int64_t x0() const { return x0_; }
  std::int64_t y0() const { return y0_; }
  std::int64_t width() const { return width_; }
  std::int64_t height() const { return height_; }
  std::size_t bytes() const { return values_.size() * sizeof(double); }

  /// Extracts the values of mesh-point columns [cx0, cx1) as a flat
  /// column-major buffer — the payload migrated by the diffusion load
  /// balancer when a border region changes owner.
  std::vector<double> extract_columns(std::int64_t cx0, std::int64_t cx1) const;

  /// Extracts mesh-point rows [ry0, ry1) as a flat row-major buffer (the
  /// y-phase of the two-phase diffusion balancer).
  std::vector<double> extract_rows(std::int64_t ry0, std::int64_t ry1) const;

 private:
  std::int64_t x0_ = 0, y0_ = 0, width_ = 0, height_ = 0;
  std::vector<double> values_;
};

}  // namespace picprk::pic
