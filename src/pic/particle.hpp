// The particle record of the PIC PRK. Like the official PRK reference
// code, each particle carries its initial condition and motion parameters
// so that the closed-form verification (paper Eqs. 5–6) is O(1) per
// particle at the end of the run. The struct is trivially copyable: it is
// what travels between ranks during particle exchange and VP migration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace picprk::pic {

struct Particle {
  double x = 0.0;   ///< position, in [0, L)
  double y = 0.0;
  double vx = 0.0;  ///< velocity
  double vy = 0.0;
  double q = 0.0;   ///< signed charge, ±(2k+1)·q_base (Eq. 3)

  double x0 = 0.0;  ///< position at birth (for verification)
  double y0 = 0.0;

  std::int32_t k = 0;    ///< charge multiple: horizontal speed = (2k+1) cells/step
  std::int32_t m = 0;    ///< initial vy = m·h/dt: vertical speed = m cells/step
  std::int32_t dir = 1;  ///< sign of the initial x-acceleration (±1)
  std::uint32_t birth = 0;  ///< time step at which the particle entered

  std::uint64_t id = 0;  ///< unique id, 1..n for the initial population
};

static_assert(sizeof(Particle) == 80, "particle exchange buffers assume 80-byte records");

/// Structure-of-arrays particle container for the vectorized/OpenMP
/// mover and for the AoS-vs-SoA micro-benchmark.
struct ParticleSoA {
  std::vector<double> x, y, vx, vy, q, x0, y0;
  std::vector<std::int32_t> k, m, dir;
  std::vector<std::uint32_t> birth;
  std::vector<std::uint64_t> id;

  std::size_t size() const { return x.size(); }

  void reserve(std::size_t n) {
    x.reserve(n); y.reserve(n); vx.reserve(n); vy.reserve(n); q.reserve(n);
    x0.reserve(n); y0.reserve(n); k.reserve(n); m.reserve(n); dir.reserve(n);
    birth.reserve(n); id.reserve(n);
  }

  void push_back(const Particle& p) {
    x.push_back(p.x); y.push_back(p.y); vx.push_back(p.vx); vy.push_back(p.vy);
    q.push_back(p.q); x0.push_back(p.x0); y0.push_back(p.y0);
    k.push_back(p.k); m.push_back(p.m); dir.push_back(p.dir);
    birth.push_back(p.birth); id.push_back(p.id);
  }

  Particle get(std::size_t i) const {
    Particle p;
    p.x = x[i]; p.y = y[i]; p.vx = vx[i]; p.vy = vy[i]; p.q = q[i];
    p.x0 = x0[i]; p.y0 = y0[i]; p.k = k[i]; p.m = m[i]; p.dir = dir[i];
    p.birth = birth[i]; p.id = id[i];
    return p;
  }
};

/// Converts between layouts (bench/test helper).
inline ParticleSoA to_soa(const std::vector<Particle>& aos) {
  ParticleSoA soa;
  soa.reserve(aos.size());
  for (const auto& p : aos) soa.push_back(p);
  return soa;
}

inline std::vector<Particle> to_aos(const ParticleSoA& soa) {
  std::vector<Particle> aos;
  aos.reserve(soa.size());
  for (std::size_t i = 0; i < soa.size(); ++i) aos.push_back(soa.get(i));
  return aos;
}

}  // namespace picprk::pic
