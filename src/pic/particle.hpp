// The particle record of the PIC PRK. Like the official PRK reference
// code, each particle carries its initial condition and motion parameters
// so that the closed-form verification (paper Eqs. 5–6) is O(1) per
// particle at the end of the run.
//
// Two layouts share ONE field list (the PICPRK_PARTICLE_FIELDS X-macro):
//
//  * Particle — the AoS wire record. Trivially copyable; it is what
//    travels between ranks during particle exchange and VP migration
//    (comm::alltoallv flat buffers, DriverSnapshot, PUP payloads).
//  * ParticleSoA — the structure-of-arrays compute store. The movers,
//    the tiled gather/deposit and the drivers operate on its columns;
//    records are packed to/from the AoS form only at communication
//    boundaries.
//
// Adding a field means editing the X-macro once: struct member, SoA
// column, pack/unpack and PUP all derive from it, and the static_assert
// below fails the build if the list and the struct ever disagree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace picprk::pic {

// One row per particle attribute: X(type, name, initial value).
//  x, y    position, in [0, L)
//  vx, vy  velocity
//  q       signed charge, ±(2k+1)·q_base (Eq. 3)
//  x0, y0  position at birth (for verification)
//  k       charge multiple: horizontal speed = (2k+1) cells/step
//  m       initial vy = m·h/dt: vertical speed = m cells/step
//  dir     sign of the initial x-acceleration (±1)
//  birth   time step at which the particle entered
//  id      unique id, 1..n for the initial population
#define PICPRK_PARTICLE_FIELDS(X) \
  X(double, x, 0.0)               \
  X(double, y, 0.0)               \
  X(double, vx, 0.0)              \
  X(double, vy, 0.0)              \
  X(double, q, 0.0)               \
  X(double, x0, 0.0)              \
  X(double, y0, 0.0)              \
  X(std::int32_t, k, 0)           \
  X(std::int32_t, m, 0)           \
  X(std::int32_t, dir, 1)         \
  X(std::uint32_t, birth, 0)      \
  X(std::uint64_t, id, 0)

struct Particle {
#define PICPRK_FIELD(type, name, init) type name = init;
  PICPRK_PARTICLE_FIELDS(PICPRK_FIELD)
#undef PICPRK_FIELD
};

static_assert(sizeof(Particle) == 80, "particle exchange buffers assume 80-byte records");

namespace detail {
/// Sum of the field sizes in the X-macro list. Equal to sizeof(Particle)
/// exactly when the list names every member and the struct has no
/// padding — the completeness check for the single-definition contract.
constexpr std::size_t particle_field_bytes() {
  std::size_t total = 0;
#define PICPRK_FIELD(type, name, init) total += sizeof(type);
  PICPRK_PARTICLE_FIELDS(PICPRK_FIELD)
#undef PICPRK_FIELD
  return total;
}
}  // namespace detail

static_assert(detail::particle_field_bytes() == sizeof(Particle),
              "PICPRK_PARTICLE_FIELDS is out of sync with struct Particle");

/// Structure-of-arrays particle store: the production layout of the
/// movers and drivers. Columns are generated from the same X-macro as
/// the AoS record, so push_back/get/pup cannot drift from the struct.
/// Element order is significant (tiling sorts by cell); mutating
/// operations keep all twelve columns in lockstep.
struct ParticleSoA {
  // The columns ARE serialized — pup() stages them through the AoS wire
  // form — but the textual pup lint cannot see through to_vector() /
  // assign(), so the declaration carries its opt-out tag.
#define PICPRK_FIELD(type, name, init) std::vector<type> name;  // pup:transient (wire-staged)
  PICPRK_PARTICLE_FIELDS(PICPRK_FIELD)
#undef PICPRK_FIELD

  std::size_t size() const { return x.size(); }
  bool empty() const { return x.empty(); }
  std::size_t capacity() const { return x.capacity(); }

  void reserve(std::size_t n) {
#define PICPRK_FIELD(type, name, init) name.reserve(n);
    PICPRK_PARTICLE_FIELDS(PICPRK_FIELD)
#undef PICPRK_FIELD
  }

  void resize(std::size_t n) {
#define PICPRK_FIELD(type, name, init) name.resize(n);
    PICPRK_PARTICLE_FIELDS(PICPRK_FIELD)
#undef PICPRK_FIELD
  }

  void clear() {
#define PICPRK_FIELD(type, name, init) name.clear();
    PICPRK_PARTICLE_FIELDS(PICPRK_FIELD)
#undef PICPRK_FIELD
  }

  /// Unpacks one wire record onto the end of every column.
  void push_back(const Particle& p) {
#define PICPRK_FIELD(type, name, init) name.push_back(p.name);
    PICPRK_PARTICLE_FIELDS(PICPRK_FIELD)
#undef PICPRK_FIELD
  }

  /// Packs row `i` into a wire record.
  Particle get(std::size_t i) const {
    Particle p;
#define PICPRK_FIELD(type, name, init) p.name = name[i];
    PICPRK_PARTICLE_FIELDS(PICPRK_FIELD)
#undef PICPRK_FIELD
    return p;
  }

  /// Overwrites row `i` from a wire record.
  void set(std::size_t i, const Particle& p) {
#define PICPRK_FIELD(type, name, init) name[i] = p.name;
    PICPRK_PARTICLE_FIELDS(PICPRK_FIELD)
#undef PICPRK_FIELD
  }

  /// O(1) unordered removal: moves the last row into slot `i` and pops.
  /// Invalidates any tile index over the store (order changes).
  void swap_remove(std::size_t i) {
    const std::size_t last = size() - 1;
#define PICPRK_FIELD(type, name, init) name[i] = name[last];
    PICPRK_PARTICLE_FIELDS(PICPRK_FIELD)
#undef PICPRK_FIELD
#define PICPRK_FIELD(type, name, init) name.pop_back();
    PICPRK_PARTICLE_FIELDS(PICPRK_FIELD)
#undef PICPRK_FIELD
  }

  /// Drops rows [n, size()) — the tail half of a compaction.
  void truncate(std::size_t n) {
#define PICPRK_FIELD(type, name, init) name.resize(n);
    PICPRK_PARTICLE_FIELDS(PICPRK_FIELD)
#undef PICPRK_FIELD
  }

  /// Stable compaction: moves row `from` into slot `to` (to <= from).
  void move_row(std::size_t to, std::size_t from) {
    if (to == from) return;
#define PICPRK_FIELD(type, name, init) name[to] = name[from];
    PICPRK_PARTICLE_FIELDS(PICPRK_FIELD)
#undef PICPRK_FIELD
  }

  /// Appends a block of wire records (exchange/migration unpack side).
  void append(std::span<const Particle> records) {
    reserve(size() + records.size());
    for (const Particle& p : records) push_back(p);
  }

  /// Rebuilds the store from wire records (checkpoint restore).
  void assign(std::span<const Particle> records) {
    clear();
    append(records);
  }

  /// Packs the whole store into wire records (checkpoint/verify side).
  std::vector<Particle> to_vector() const {
    std::vector<Particle> out;
    out.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) out.push_back(get(i));
    return out;
  }

  /// PUP through the AoS wire form: the migration payload is the same
  /// length-prefixed run of 80-byte records regardless of layout, so a
  /// VP can be packed from either store. Templated so pic does not
  /// depend on vpr; any pupper with the vpr::Pup interface works.
  template <typename P>
  void pup(P& p) {
    std::vector<Particle> wire;
    if (!p.unpacking()) wire = to_vector();
    p(wire);
    if (p.unpacking()) assign(wire);
  }
};

/// Converts between layouts at non-hot boundaries (events, checkpoints,
/// verification, benches). Banned inside PICPRK_HOT bodies by the
/// picprk-lint `soa` rule.
inline ParticleSoA to_soa(const std::vector<Particle>& aos) {
  ParticleSoA soa;
  soa.append(std::span<const Particle>(aos));
  return soa;
}

inline std::vector<Particle> to_aos(const ParticleSoA& soa) { return soa.to_vector(); }

}  // namespace picprk::pic
