#include "pic/events.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace picprk::pic {

namespace {
constexpr std::uint64_t kInjectStream = 0x17EC7ull;
constexpr std::uint64_t kRemoveStream = 0xDE1E7Eull;
}  // namespace

EventSchedule::EventSchedule(std::vector<InjectionEvent> injections,
                             std::vector<RemovalEvent> removals)
    : injections_(std::move(injections)), removals_(std::move(removals)) {}

std::uint64_t EventSchedule::injected_in_cell(const Initializer& init,
                                              std::size_t event_index, std::int64_t cx,
                                              std::int64_t cy) const {
  PICPRK_EXPECTS(event_index < injections_.size());
  const InjectionEvent& ev = injections_[event_index];
  if (!ev.region.contains_cell(cx, cy)) return 0;
  const double mu =
      static_cast<double>(ev.count) / static_cast<double>(ev.region.area());
  const util::CounterRng rng(init.params().seed ^ kInjectStream ^
                                 (event_index * 0x9E3779B97F4A7C15ull),
                             static_cast<std::uint64_t>(cx), static_cast<std::uint64_t>(cy));
  return util::stochastic_round(mu, rng.double_at(0));
}

std::uint64_t EventSchedule::injection_total(const Initializer& init,
                                             std::size_t event_index) const {
  PICPRK_EXPECTS(event_index < injections_.size());
  const CellRegion& r = injections_[event_index].region;
  std::uint64_t total = 0;
  for (std::int64_t cx = r.x0; cx < r.x1; ++cx) {
    for (std::int64_t cy = r.y0; cy < r.y1; ++cy) {
      total += injected_in_cell(init, event_index, cx, cy);
    }
  }
  return total;
}

std::uint64_t EventSchedule::injection_first_id(const Initializer& init,
                                                std::size_t event_index) const {
  std::uint64_t id = init.total() + 1;
  for (std::size_t e = 0; e < event_index; ++e) id += injection_total(init, e);
  return id;
}

void EventSchedule::emplace_injection_block(const Initializer& init, std::size_t event_index,
                                            std::int64_t cx0, std::int64_t cx1,
                                            std::int64_t cy0, std::int64_t cy1,
                                            std::vector<Particle>& out) const {
  const InjectionEvent& ev = injections_[event_index];
  std::uint64_t id = injection_first_id(init, event_index);
  // Walk the whole region in canonical (column-major) order to keep ids
  // globally consistent; only materialise particles inside the block.
  for (std::int64_t cx = ev.region.x0; cx < ev.region.x1; ++cx) {
    for (std::int64_t cy = ev.region.y0; cy < ev.region.y1; ++cy) {
      const std::uint64_t count = injected_in_cell(init, event_index, cx, cy);
      if (cx >= cx0 && cx < cx1 && cy >= cy0 && cy < cy1) {
        for (std::uint64_t i = 0; i < count; ++i) {
          out.push_back(init.make_particle(cx, cy, id + i, ev.step));
        }
      }
      id += count;
    }
  }
}

bool EventSchedule::removes(const Initializer& init, std::size_t event_index,
                            std::uint64_t id) const {
  PICPRK_EXPECTS(event_index < removals_.size());
  const RemovalEvent& ev = removals_[event_index];
  const util::CounterRng rng(init.params().seed ^ kRemoveStream ^
                                 (event_index * 0x9E3779B97F4A7C15ull),
                             id, 0);
  return rng.double_at(0) < ev.fraction;
}

std::int64_t EventSchedule::apply_step(const Initializer& init, std::uint32_t step,
                                       std::int64_t cx0, std::int64_t cx1, std::int64_t cy0,
                                       std::int64_t cy1,
                                       std::vector<Particle>& particles) const {
  std::int64_t delta = 0;
  const GridSpec& grid = init.params().grid;

  for (std::size_t e = 0; e < removals_.size(); ++e) {
    if (removals_[e].step != step) continue;
    const CellRegion& region = removals_[e].region;
    const auto new_end = std::remove_if(
        particles.begin(), particles.end(), [&](const Particle& p) {
          const std::int64_t cx = grid.cell_of(p.x);
          const std::int64_t cy = grid.cell_of(p.y);
          return region.contains_cell(cx, cy) && removes(init, e, p.id);
        });
    delta -= static_cast<std::int64_t>(particles.end() - new_end);
    particles.erase(new_end, particles.end());
  }

  for (std::size_t e = 0; e < injections_.size(); ++e) {
    if (injections_[e].step != step) continue;
    const std::size_t before = particles.size();
    emplace_injection_block(init, e, cx0, cx1, cy0, cy1, particles);
    delta += static_cast<std::int64_t>(particles.size() - before);
  }
  return delta;
}

}  // namespace picprk::pic
