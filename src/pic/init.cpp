#include "pic/init.hpp"

#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace picprk::pic {

double charge_base(double h, double dt, double mesh_q, double xrel) {
  PICPRK_EXPECTS(h > 0.0 && dt > 0.0 && mesh_q != 0.0);
  PICPRK_EXPECTS(xrel > 0.0 && xrel < h);
  const double d1 = std::sqrt(h * h / 4.0 + xrel * xrel);
  const double d2 = std::sqrt(h * h / 4.0 + (h - xrel) * (h - xrel));
  const double cos_theta = xrel / d1;
  const double cos_phi = (h - xrel) / d2;
  const double denom = dt * dt * mesh_q * (cos_theta / (d1 * d1) + cos_phi / (d2 * d2));
  return h / denom;
}

std::string distribution_name(const Distribution& dist) {
  struct Visitor {
    std::string operator()(const Geometric& g) const {
      return "geometric(r=" + std::to_string(g.r) + ")";
    }
    std::string operator()(const Sinusoidal&) const { return "sinusoidal"; }
    std::string operator()(const Linear& l) const {
      return "linear(alpha=" + std::to_string(l.alpha) +
             ",beta=" + std::to_string(l.beta) + ")";
    }
    std::string operator()(const Patch&) const { return "patch"; }
    std::string operator()(const Uniform&) const { return "uniform"; }
  };
  return std::visit(Visitor{}, dist);
}

namespace {

/// Distinct RNG stream labels so draws never alias across purposes.
constexpr std::uint64_t kCountStream = 0xC0117ull;
constexpr std::uint64_t kSignStream = 0x51617ull;

}  // namespace

std::vector<double> column_cell_expectations(const InitParams& params_) {
  const auto c = params_.grid.cells;
  PICPRK_EXPECTS(params_.total_particles > 0);

  // Per-column expected count per cell. For the Patch distribution the
  // weight additionally depends on the row; the returned vector stores
  // the per-cell weight *inside* the patch and expected_in_cell applies
  // the row mask.
  std::vector<double> column_weight_(static_cast<std::size_t>(c), 0.0);
  const double n = static_cast<double>(params_.total_particles);
  const double dc = static_cast<double>(c);

  if (const auto* g = std::get_if<Geometric>(&params_.distribution)) {
    PICPRK_EXPECTS(g->r > 0.0);
    if (g->r == 1.0) {
      for (auto& w : column_weight_) w = n / (dc * dc);
    } else {
      // A chosen so that sum over all cells of A·r^i equals n (Eq. 7's A).
      const double a = n * (1.0 - g->r) / (dc * (1.0 - std::pow(g->r, dc)));
      double ri = 1.0;
      for (std::int64_t i = 0; i < c; ++i) {
        column_weight_[static_cast<std::size_t>(i)] = a * ri;
        ri *= g->r;
      }
    }
  } else if (std::holds_alternative<Sinusoidal>(params_.distribution)) {
    double norm = 0.0;
    for (std::int64_t j = 0; j < c; ++j) {
      norm += 1.0 + std::cos(2.0 * std::numbers::pi * static_cast<double>(j) / (dc - 1.0));
    }
    for (std::int64_t i = 0; i < c; ++i) {
      const double w =
          1.0 + std::cos(2.0 * std::numbers::pi * static_cast<double>(i) / (dc - 1.0));
      column_weight_[static_cast<std::size_t>(i)] = n * w / (dc * norm);
    }
  } else if (const auto* l = std::get_if<Linear>(&params_.distribution)) {
    double norm = 0.0;
    for (std::int64_t j = 0; j < c; ++j) {
      const double w = l->beta - l->alpha * static_cast<double>(j) / (dc - 1.0);
      norm += std::max(w, 0.0);
    }
    PICPRK_EXPECTS(norm > 0.0);
    for (std::int64_t i = 0; i < c; ++i) {
      const double w = l->beta - l->alpha * static_cast<double>(i) / (dc - 1.0);
      column_weight_[static_cast<std::size_t>(i)] = n * std::max(w, 0.0) / (dc * norm);
    }
  } else if (const auto* p = std::get_if<Patch>(&params_.distribution)) {
    PICPRK_EXPECTS(p->region.valid_within(params_.grid));
    const double per_cell = n / static_cast<double>(p->region.area());
    for (std::int64_t i = p->region.x0; i < p->region.x1; ++i) {
      column_weight_[static_cast<std::size_t>(i)] = per_cell;
    }
  } else {  // Uniform
    for (auto& w : column_weight_) w = n / (dc * dc);
  }
  return column_weight_;
}

Initializer::Initializer(InitParams params) : params_(std::move(params)) {
  const auto c = params_.grid.cells;
  q_base_ = charge_base(params_.grid.h, params_.dt, params_.mesh_q);
  column_weight_ = column_cell_expectations(params_);

  // Realised per-column totals and id prefixes.
  column_total_.assign(static_cast<std::size_t>(c), 0);
  column_prefix_.assign(static_cast<std::size_t>(c) + 1, 0);
  for (std::int64_t cx = 0; cx < c; ++cx) {
    std::uint64_t sum = 0;
    for (std::int64_t cy = 0; cy < c; ++cy) sum += count_in_cell(cx, cy);
    column_total_[static_cast<std::size_t>(cx)] = sum;
    column_prefix_[static_cast<std::size_t>(cx) + 1] =
        column_prefix_[static_cast<std::size_t>(cx)] + sum;
  }
  total_ = column_prefix_.back();
}

double Initializer::expected_in_cell(std::int64_t cx, std::int64_t cy) const {
  PICPRK_EXPECTS(cx >= 0 && cx < params_.grid.cells);
  PICPRK_EXPECTS(cy >= 0 && cy < params_.grid.cells);
  if (const auto* p = std::get_if<Patch>(&params_.distribution)) {
    if (!p->region.contains_cell(cx, cy)) return 0.0;
  }
  const std::int64_t skew_index = params_.rotate90 ? cy : cx;
  return column_weight_[static_cast<std::size_t>(skew_index)];
}

std::uint64_t Initializer::count_in_cell(std::int64_t cx, std::int64_t cy) const {
  const double mu = expected_in_cell(cx, cy);
  if (mu <= 0.0) return 0;
  const util::CounterRng rng(params_.seed ^ kCountStream, static_cast<std::uint64_t>(cx),
                             static_cast<std::uint64_t>(cy));
  return util::stochastic_round(mu, rng.double_at(0));
}

std::uint64_t Initializer::column_total(std::int64_t cx) const {
  PICPRK_EXPECTS(cx >= 0 && cx < params_.grid.cells);
  return column_total_[static_cast<std::size_t>(cx)];
}

std::uint64_t Initializer::column_first_id(std::int64_t cx) const {
  PICPRK_EXPECTS(cx >= 0 && cx < params_.grid.cells);
  return column_prefix_[static_cast<std::size_t>(cx)] + 1;
}

Particle Initializer::make_particle(std::int64_t cx, std::int64_t cy, std::uint64_t id,
                                    std::uint32_t birth) const {
  Particle p;
  p.x = p.x0 = params_.grid.cell_center(cx);
  p.y = p.y0 = params_.grid.cell_center(cy);
  p.vx = 0.0;
  p.vy = static_cast<double>(params_.m) * params_.grid.h / params_.dt;  // Eq. 4
  p.k = params_.k;
  p.m = params_.m;
  p.birth = birth;
  p.id = id;

  // Charge sign per the §III-E1 rule: with the column-parity sign the
  // whole cloud drifts +x; the opposite sign drifts −x; Random assigns a
  // per-particle sign from a hash of the id (decomposition independent).
  const double col_sign = (cx % 2 == 0) ? 1.0 : -1.0;
  double drift = 1.0;  // DriftRight; the switch covers every ChargeSign
  switch (params_.sign) {
    case ChargeSign::DriftRight:
      drift = 1.0;
      break;
    case ChargeSign::DriftLeft:
      drift = -1.0;
      break;
    case ChargeSign::Random: {
      const util::CounterRng rng(params_.seed ^ kSignStream, id, 0);
      drift = rng.double_at(0) < 0.5 ? 1.0 : -1.0;
      break;
    }
  }
  const double magnitude = static_cast<double>(2 * params_.k + 1) * q_base_;
  p.q = drift * col_sign * magnitude;
  p.dir = drift > 0.0 ? 1 : -1;  // sign of the initial x-acceleration
  return p;
}

void Initializer::emplace_cell(std::int64_t cx, std::int64_t cy, std::uint64_t first_id,
                               std::vector<Particle>& out) const {
  const std::uint64_t count = count_in_cell(cx, cy);
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(make_particle(cx, cy, first_id + i, /*birth=*/0));
  }
}

std::vector<Particle> Initializer::create_all() const {
  return create_block(0, params_.grid.cells, 0, params_.grid.cells);
}

std::vector<Particle> Initializer::create_block(std::int64_t cx0, std::int64_t cx1,
                                                std::int64_t cy0, std::int64_t cy1) const {
  PICPRK_EXPECTS(cx0 >= 0 && cx1 <= params_.grid.cells && cx0 <= cx1);
  PICPRK_EXPECTS(cy0 >= 0 && cy1 <= params_.grid.cells && cy0 <= cy1);
  std::vector<Particle> out;
  for (std::int64_t cx = cx0; cx < cx1; ++cx) {
    // Intra-column id offset: particles in cells below cy0 of this column.
    std::uint64_t id = column_first_id(cx);
    for (std::int64_t cy = 0; cy < cy0; ++cy) id += count_in_cell(cx, cy);
    for (std::int64_t cy = cy0; cy < cy1; ++cy) {
      emplace_cell(cx, cy, id, out);
      id += count_in_cell(cx, cy);
    }
  }
  return out;
}

}  // namespace picprk::pic
