#include "pic/verify.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace picprk::pic {

ExpectedPosition expected_position(const Particle& p, const GridSpec& grid,
                                   std::uint32_t final_step) {
  PICPRK_EXPECTS(final_step >= p.birth);
  const double s = static_cast<double>(final_step - p.birth);
  const double length = grid.length();
  ExpectedPosition e;
  e.x = wrap(p.x0 + static_cast<double>(p.dir) *
                        static_cast<double>(2 * p.k + 1) * s * grid.h,
             length);
  e.y = wrap(p.y0 + static_cast<double>(p.m) * s * grid.h, length);
  return e;
}

double periodic_distance(double a, double b, double length) {
  const double d = std::fabs(a - b);
  return std::min(d, length - d);
}

VerifyResult verify_particles(std::span<const Particle> particles, const GridSpec& grid,
                              std::uint32_t final_step, double epsilon) {
  VerifyResult r;
  const double length = grid.length();
  for (const Particle& p : particles) {
    const ExpectedPosition e = expected_position(p, grid, final_step);
    const double err = std::max(periodic_distance(p.x, e.x, length),
                                periodic_distance(p.y, e.y, length));
    r.max_position_error = std::max(r.max_position_error, err);
    if (err > epsilon) {
      r.positions_ok = false;
      ++r.position_failures;
    }
    ++r.checked;
    r.id_checksum += p.id;
  }
  return r;
}

VerifyResult merge(const VerifyResult& a, const VerifyResult& b) {
  VerifyResult r;
  r.positions_ok = a.positions_ok && b.positions_ok;
  r.checked = a.checked + b.checked;
  r.position_failures = a.position_failures + b.position_failures;
  r.max_position_error = std::max(a.max_position_error, b.max_position_error);
  r.id_checksum = a.id_checksum + b.id_checksum;
  return r;
}

}  // namespace picprk::pic
