#include "pic/simulation.hpp"

#include "pic/tiling.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace picprk::pic {

void serial_step(std::vector<Particle>& particles, const GridSpec& grid,
                 const AlternatingColumnCharges& charges, double dt) {
  move_all(std::span<Particle>(particles), grid, charges, dt);
}

SimulationResult run_serial(const SimulationConfig& config, bool use_soa) {
  const Initializer init(config.init);
  const GridSpec& grid = config.init.grid;
  const AlternatingColumnCharges charges(config.init.mesh_q);
  const double dt = config.init.dt;

  std::vector<Particle> particles = init.create_all();
  std::uint64_t expected_sum = expected_checksum(init.total());
  PICPRK_ASSERT_MSG(particles.size() == init.total(),
                    "initializer count mismatch");

  SimulationResult result;
  util::Timer timer;

  // SoA mode keeps the store and its tile index alive across the whole
  // run; the AoS form only reappears for event staging and verification.
  ParticleSoA soa;
  TileIndex tiles(CellRegion{0, grid.cells, 0, grid.cells});
  if (use_soa) {
    soa = to_soa(particles);
    particles.clear();
  }

  const bool has_events = !config.events.empty();
  for (std::uint32_t step = 0; step < config.steps; ++step) {
    if (has_events && config.events.scheduled_at(step)) {
      if (use_soa) particles = to_aos(soa);
      // Track the expected checksum through population changes: removals
      // subtract the ids they take out, injections add a known id range.
      for (std::size_t e = 0; e < config.events.removals().size(); ++e) {
        if (config.events.removals()[e].step != step) continue;
        const CellRegion& region = config.events.removals()[e].region;
        for (const Particle& p : particles) {
          const std::int64_t cx = grid.cell_of(p.x);
          const std::int64_t cy = grid.cell_of(p.y);
          if (region.contains_cell(cx, cy) && config.events.removes(init, e, p.id)) {
            expected_sum -= p.id;
          }
        }
      }
      for (std::size_t e = 0; e < config.events.injections().size(); ++e) {
        if (config.events.injections()[e].step != step) continue;
        const std::uint64_t first = config.events.injection_first_id(init, e);
        const std::uint64_t count = config.events.injection_total(init, e);
        // Sum of the contiguous id range [first, first+count).
        expected_sum += count * first + count * (count - 1) / 2;
      }
      config.events.apply_step(init, step, 0, grid.cells, 0, grid.cells, particles);
      if (use_soa) {
        soa.assign(particles);
        tiles.mark_dirty();
        particles.clear();
      }
    }

    if (use_soa) {
      move_all_tiled(soa, tiles, grid, charges, dt);
    } else {
      serial_step(particles, grid, charges, dt);
    }
  }
  if (use_soa) particles = to_aos(soa);

  result.seconds = timer.elapsed();
  result.final_particles = particles.size();
  result.expected_id_checksum = expected_sum;
  result.verification = verify_particles(std::span<const Particle>(particles), grid,
                                         config.steps, config.verify_epsilon);
  PICPRK_DEBUG("serial run: n=" << particles.size() << " steps=" << config.steps
                                << " max_err=" << result.verification.max_position_error
                                << " ok=" << result.ok());
  return result;
}

}  // namespace picprk::pic
