#include "pic/trajectory.hpp"

#include <algorithm>

namespace picprk::pic {

TrajectoryValidator::TrajectoryValidator(std::vector<std::uint64_t> ids, double epsilon)
    : ids_(std::move(ids)), epsilon_(epsilon) {
  std::sort(ids_.begin(), ids_.end());
}

bool TrajectoryValidator::tracked(std::uint64_t id) const {
  return ids_.empty() || std::binary_search(ids_.begin(), ids_.end(), id);
}

std::size_t TrajectoryValidator::check(std::span<const Particle> particles,
                                       const GridSpec& grid,
                                       std::uint32_t completed_steps) {
  std::size_t checked = 0;
  const double length = grid.length();
  for (const Particle& p : particles) {
    if (!tracked(p.id)) continue;
    if (std::binary_search(faulted_ids_.begin(), faulted_ids_.end(), p.id)) continue;
    ++checked;
    ++checks_;
    const ExpectedPosition e = expected_position(p, grid, completed_steps);
    const double err = std::max(periodic_distance(p.x, e.x, length),
                                periodic_distance(p.y, e.y, length));
    if (err > epsilon_) {
      TrajectoryFault fault;
      fault.id = p.id;
      fault.step = completed_steps;
      fault.error = err;
      fault.x = p.x;
      fault.y = p.y;
      fault.expected_x = e.x;
      fault.expected_y = e.y;
      faults_.push_back(fault);
      faulted_ids_.insert(
          std::upper_bound(faulted_ids_.begin(), faulted_ids_.end(), p.id), p.id);
    }
  }
  return checked;
}

}  // namespace picprk::pic
