// The computational heart of the PIC PRK (paper §III-B): for each
// particle, sum the Coulomb forces exerted by the four charges at the
// corners of its containing cell, then advance position and velocity by
// the kinematic formulas (Eqs. 1–2) under periodic boundaries. ke/m = 1
// by specification, so acceleration equals force.
//
// The force kernel is strength-reduced twice over: the per-corner
// contribution is written q1·q2/r³ · (dx, dy) (no normalisation divide),
// and the four corner reciprocals 1/r³ are recovered from a SINGLE
// divide — 1/(d₀d₁d₂d₃) multiplied back by partial products — so a
// particle costs four sqrts and one divide where the textbook form costs
// four sqrts and twelve divides (sqrt and divide share the divider unit
// on x86, so this is the bound that matters). The four corner charges
// come from a single `corners(cx, cy)` lookup when the charge source
// supports it (one parity test for the alternating-column pattern, one
// bounds check for a slab). All movers — serial, OpenMP, SoA — route
// through the same inlined per-particle kernel, so results are
// bit-identical across layouts within a build. The pre-optimization
// kernel is preserved in namespace `reference` for equivalence tests and
// the old-vs-new micro-benchmark (bench_hotpath).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

#include "pic/charge.hpp"
#include "pic/geometry.hpp"
#include "pic/particle.hpp"
#include "pic/tiling.hpp"
#include "util/annotations.hpp"

namespace picprk::pic {

struct Force {
  double fx = 0.0;
  double fy = 0.0;
};

/// Coulomb force of a charge q2 at displacement (dx, dy) from a charge q1
/// (ke = 1): magnitude q1·q2/r², directed along the joining line, repulsive
/// for like signs. Strength-reduced to the 1/r³ form: one divide and one
/// sqrt per corner.
PICPRK_HOT inline Force coulomb(double dx, double dy, double q1, double q2) {
  const double r2 = dx * dx + dy * dy;
  const double s = q1 * q2 / (r2 * std::sqrt(r2));
  return {s * dx, s * dy};
}

/// Fetches the four corner charges of cell (cx, cy), preferring the
/// charge source's fused `corners` fast path over four `at` calls.
template <typename Charges>
PICPRK_HOT inline CornerCharges corner_charges(const Charges& charges, std::int64_t cx,
                                    std::int64_t cy) {
  if constexpr (requires { charges.corners(cx, cy); }) {
    return charges.corners(cx, cy);
  } else {
    return {charges.at(cx, cy), charges.at(cx, cy + 1), charges.at(cx + 1, cy),
            charges.at(cx + 1, cy + 1)};
  }
}

/// Net force on a charge q at (rel_x, rel_y) within its cell from the
/// four corner charges (cell side h). The inner body of every mover.
///
/// The four 1/r³ reciprocals come from ONE divide: with dᵢ = rᵢ³,
/// inv = 1/(d₀₀d₀₁d₁₀d₁₁) and each 1/dᵢ is inv times the product of the
/// other three (tracked as two pair-products), trading three dependent
/// divides for a handful of pipelined multiplies. Corner order and the
/// summation order ((f00+f01)+f10)+f11 are fixed — the official PRK's
/// (cx,cy), (cx,cy+1), (cx+1,cy), (cx+1,cy+1) — so force summation is
/// deterministic across implementations.
PICPRK_HOT inline Force corner_force(double rel_x, double rel_y, double q, const CornerCharges& c,
                          double h) {
  const double dx_l = rel_x;      // x-displacement from the left corners
  const double dx_r = rel_x - h;  // ... and from the right corners
  const double dy_b = rel_y;      // y-displacement from the bottom corners
  const double dy_t = rel_y - h;  // ... and from the top corners

  const double r2_00 = dx_l * dx_l + dy_b * dy_b;
  const double r2_01 = dx_l * dx_l + dy_t * dy_t;
  const double r2_10 = dx_r * dx_r + dy_b * dy_b;
  const double r2_11 = dx_r * dx_r + dy_t * dy_t;
  const double d00 = r2_00 * std::sqrt(r2_00);  // r³
  const double d01 = r2_01 * std::sqrt(r2_01);
  const double d10 = r2_10 * std::sqrt(r2_10);
  const double d11 = r2_11 * std::sqrt(r2_11);

  const double left = d00 * d01;
  const double right = d10 * d11;
  const double inv = 1.0 / (left * right);
  const double s00 = q * c.q00 * (inv * d01 * right);
  const double s01 = q * c.q01 * (inv * d00 * right);
  const double s10 = q * c.q10 * (inv * left * d11);
  const double s11 = q * c.q11 * (inv * left * d10);

  Force f;
  f.fx = ((s00 * dx_l + s01 * dx_l) + s10 * dx_r) + s11 * dx_r;
  f.fy = ((s00 * dy_b + s01 * dy_t) + s10 * dy_b) + s11 * dy_t;
  return f;
}

/// Total force on particle `p` from the four corner charges of its cell.
/// `charges` is any charge source exposing `double at(px, py)` for global
/// mesh-point indices (AlternatingColumnCharges or ChargeSlab).
template <typename Charges>
PICPRK_HOT Force total_force(const Particle& p, const GridSpec& grid, const Charges& charges) {
  const std::int64_t cx = grid.cell_of(p.x);
  const std::int64_t cy = grid.cell_of(p.y);
  const double rel_x = p.x - static_cast<double>(cx) * grid.h;
  const double rel_y = p.y - static_cast<double>(cy) * grid.h;
  return corner_force(rel_x, rel_y, p.q, corner_charges(charges, cx, cy), grid.h);
}

/// Advances one particle by one time step dt given the force acting on it
/// (Eqs. 1–2), wrapping periodically into [0, L).
PICPRK_HOT inline void advance(Particle& p, const Force& f, const GridSpec& grid, double dt) {
  const double ax = f.fx;  // ke/m == 1 by specification
  const double ay = f.fy;
  const double length = grid.length();
  p.x = wrap(p.x + p.vx * dt + 0.5 * ax * dt * dt, length);
  p.y = wrap(p.y + p.vy * dt + 0.5 * ay * dt * dt, length);
  p.vx += ax * dt;
  p.vy += ay * dt;
}

/// The fused per-particle inner kernel on bare scalars: force + advance.
/// Every mover (AoS, OpenMP, SoA) routes through this one body, so the
/// layouts stay bit-identical within a build.
template <typename Charges>
PICPRK_HOT inline void move_scalars(double& x, double& y, double& vx, double& vy, double q,
                         const GridSpec& grid, const Charges& charges, double dt) {
  const std::int64_t cx = grid.cell_of(x);
  const std::int64_t cy = grid.cell_of(y);
  const double rel_x = x - static_cast<double>(cx) * grid.h;
  const double rel_y = y - static_cast<double>(cy) * grid.h;
  const Force f = corner_force(rel_x, rel_y, q, corner_charges(charges, cx, cy), grid.h);
  const double ax = f.fx;  // ke/m == 1 by specification
  const double ay = f.fy;

  const double length = grid.length();
  x = wrap(x + vx * dt + 0.5 * ax * dt * dt, length);
  y = wrap(y + vy * dt + 0.5 * ay * dt * dt, length);
  vx += ax * dt;
  vy += ay * dt;
}

/// Force + advance fused, the per-particle inner loop body.
template <typename Charges>
PICPRK_HOT void move_particle(Particle& p, const GridSpec& grid, const Charges& charges, double dt) {
  move_scalars(p.x, p.y, p.vx, p.vy, p.q, grid, charges, dt);
}

/// Moves a span of AoS wire records. Not a production hot path any
/// more — the drivers run on the SoA store (move_all_soa /
/// move_all_tiled) — but kept as the layout-equivalence oracle: it
/// routes through the same move_scalars kernel, so the SoA movers must
/// match it bit-for-bit.
template <typename Charges>
void move_all(std::span<Particle> particles, const GridSpec& grid,
              const Charges& charges, double dt) {
  for (Particle& p : particles) move_particle(p, grid, charges, dt);
}

/// AoS mover with an OpenMP-parallel loop: the per-rank thread team of a
/// hybrid (message-passing × threads) configuration. Static scheduling
/// is fine here — every particle costs the same, so shared-memory
/// imbalance cannot arise from a flat particle array (which is exactly
/// why the PRK's load-balancing problem is a distributed-memory one).
/// Like move_all, retained as a compatibility/oracle path.
template <typename Charges>
void move_all_omp(std::span<Particle> particles, const GridSpec& grid,
                  const Charges& charges, double dt) {
  const auto n = static_cast<std::int64_t>(particles.size());
#if defined(PICPRK_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t i = 0; i < n; ++i) {
    move_particle(particles[static_cast<std::size_t>(i)], grid, charges, dt);
  }
}

/// Structure-of-arrays mover: the vectorized fast path. Iterations are
/// independent, so the loop carries an `omp simd` hint (honoured by
/// -fopenmp or -fopenmp-simd builds; harmless otherwise); with OpenMP
/// enabled the loop is additionally thread-parallel. The body is the
/// same move_scalars kernel as the AoS movers.
template <typename Charges>
PICPRK_HOT void move_all_soa(ParticleSoA& soa, const GridSpec& grid, const Charges& charges, double dt) {
  const auto n = static_cast<std::int64_t>(soa.size());
  double* const x = soa.x.data();
  double* const y = soa.y.data();
  double* const vx = soa.vx.data();
  double* const vy = soa.vy.data();
  const double* const q = soa.q.data();
#if defined(PICPRK_HAVE_OPENMP)
#pragma omp parallel for simd schedule(static)
#else
#pragma omp simd
#endif
  for (std::int64_t i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(i);
    move_scalars(x[s], y[s], vx[s], vy[s], q[s], grid, charges, dt);
  }
}

/// One tile's unwrapped advance: the autovectorized inner loop of the
/// tiled mover. The four corner charges and the cell base coordinates
/// are loop invariants of the whole call, so the body is straight-line
/// arithmetic over the position/velocity/charge columns — no cell
/// lookup, no charge gather, no branches. A standalone function because
/// the vectorizer needs the `restrict` guarantee to come from PARAMETERS
/// (on block-scope pointers GCC drops it, and ten pairwise runtime alias
/// checks exceed the vectorizer's versioning budget). The periodic wrap
/// deliberately stays out: splitting it into the caller's scalar pass
/// changes nothing bit-wise (cx/cy come from the pre-move position and
/// the velocity update is wrap-independent).
PICPRK_HOT inline void move_tile(double* __restrict x, double* __restrict y,
                                 double* __restrict vx, double* __restrict vy,
                                 const double* __restrict q, std::size_t n,
                                 double base_x, double base_y, CornerCharges c, double h,
                                 double dt) {
  for (std::size_t i = 0; i < n; ++i) {
    const Force f = corner_force(x[i] - base_x, y[i] - base_y, q[i], c, h);
    x[i] = x[i] + vx[i] * dt + 0.5 * f.fx * dt * dt;
    y[i] = y[i] + vy[i] * dt + 0.5 * f.fy * dt * dt;
    vx[i] += f.fx * dt;
    vy[i] += f.fy * dt;
  }
}

/// Tail share of the store above which move_all_tiled re-sorts before
/// moving: immigrants/injected rows accumulate in the index tail (moved
/// by the scalar kernel) until re-tiling pays for itself. See
/// docs/PERFORMANCE.md for the cost model behind the cadence.
inline constexpr double kRetileTailFraction = 0.25;

/// Tiled SoA mover: the production hot path.
///
/// With the store grouped by cell (TileIndex), each tile runs the
/// vectorized move_tile kernel — GCC vectorizes it at the default
/// target ISA (the CI vectorization-report job and
/// tools/check_vectorization.sh pin this) — followed by a scalar
/// periodic-wrap pass. Results are bit-identical to
/// move_all/move_all_soa.
///
/// A dirty index is rebuilt first; rows in the index's untiled tail
/// (immigrants, injected particles, out-of-region residents) go through
/// the fused scalar kernel. After the move the index revalidates itself
/// (see tiling.hpp) so the common uniform-drift case never re-sorts.
template <typename Charges>
PICPRK_HOT void move_all_tiled(ParticleSoA& soa, TileIndex& tiles, const GridSpec& grid,
                               const Charges& charges, double dt) {
  if (!tiles.fresh() || tiles.tail_fraction(soa) > kRetileTailFraction) {
    tiles.rebuild(soa, grid);
  }
  const double h = grid.h;
  const double length = grid.length();
  double* const x = soa.x.data();
  double* const y = soa.y.data();
  double* const vx = soa.vx.data();
  double* const vy = soa.vy.data();
  const double* const q = soa.q.data();

  for (const TileIndex::Tile& t : tiles.tiles()) {
    const std::size_t begin = t.begin;
    const std::size_t end = t.end;
    const CornerCharges c = corner_charges(charges, t.cx, t.cy);
    const double base_x = static_cast<double>(t.cx) * h;
    const double base_y = static_cast<double>(t.cy) * h;
    move_tile(x + begin, y + begin, vx + begin, vy + begin, q + begin, end - begin,
              base_x, base_y, c, h, dt);
    // Periodic wrap: branchy, so a separate scalar pass.
    for (std::size_t i = begin; i < end; ++i) {
      x[i] = wrap(x[i], length);
      y[i] = wrap(y[i], length);
    }
  }

  const std::size_t n = soa.size();
  for (std::size_t i = tiles.tail_begin(); i < n; ++i) {
    move_scalars(x[i], y[i], vx[i], vy[i], q[i], grid, charges, dt);
  }
  tiles.revalidate_after_move(soa, grid);
}

// ------------------------------------------------------------ reference
// The pre-optimization hot path, verbatim: four `at` charge lookups, the
// f/r² · (dx/r, dy/r) force form, divide-based cell lookup and
// fmod-based periodic wrap. Kept as the ground truth for the
// ULP-equivalence tests and as the "old" side of bench_hotpath. Its
// results are bit-identical to the optimised kernels' geometry (the fast
// wrap/cell_of agree exactly with these forms — see geometry.hpp), so
// any divergence the equivalence test sees is from the force kernel.
namespace reference {

inline Force coulomb(double dx, double dy, double q1, double q2) {
  const double r2 = dx * dx + dy * dy;
  const double r = std::sqrt(r2);
  const double f = q1 * q2 / r2;
  return {f * dx / r, f * dy / r};
}

/// The old cell lookup: a divide per coordinate.
inline std::int64_t cell_of(double v, const GridSpec& grid) {
  auto c = static_cast<std::int64_t>(std::floor(v / grid.h));
  if (c >= grid.cells) c = grid.cells - 1;
  if (c < 0) c = 0;
  return c;
}

template <typename Charges>
Force total_force(const Particle& p, const GridSpec& grid, const Charges& charges) {
  const std::int64_t cx = reference::cell_of(p.x, grid);
  const std::int64_t cy = reference::cell_of(p.y, grid);
  const double rel_x = p.x - static_cast<double>(cx) * grid.h;
  const double rel_y = p.y - static_cast<double>(cy) * grid.h;

  Force total;
  const struct {
    double dx, dy;
    std::int64_t px, py;
  } corners[4] = {
      {rel_x, rel_y, cx, cy},
      {rel_x, rel_y - grid.h, cx, cy + 1},
      {rel_x - grid.h, rel_y, cx + 1, cy},
      {rel_x - grid.h, rel_y - grid.h, cx + 1, cy + 1},
  };
  for (const auto& c : corners) {
    const Force f = reference::coulomb(c.dx, c.dy, p.q, charges.at(c.px, c.py));
    total.fx += f.fx;
    total.fy += f.fy;
  }
  return total;
}

/// The old advance: full fmod wrap on every coordinate.
inline void advance(Particle& p, const Force& f, const GridSpec& grid, double dt) {
  const double ax = f.fx;
  const double ay = f.fy;
  const double length = grid.length();
  p.x = wrap_fmod(p.x + p.vx * dt + 0.5 * ax * dt * dt, length);
  p.y = wrap_fmod(p.y + p.vy * dt + 0.5 * ay * dt * dt, length);
  p.vx += ax * dt;
  p.vy += ay * dt;
}

template <typename Charges>
void move_particle(Particle& p, const GridSpec& grid, const Charges& charges, double dt) {
  reference::advance(p, reference::total_force(p, grid, charges), grid, dt);
}

template <typename Charges>
void move_all(std::span<Particle> particles, const GridSpec& grid, const Charges& charges,
              double dt) {
  for (Particle& p : particles) reference::move_particle(p, grid, charges, dt);
}

}  // namespace reference

}  // namespace picprk::pic
