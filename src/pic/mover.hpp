// The computational heart of the PIC PRK (paper §III-B): for each
// particle, sum the Coulomb forces exerted by the four charges at the
// corners of its containing cell, then advance position and velocity by
// the kinematic formulas (Eqs. 1–2) under periodic boundaries. ke/m = 1
// by specification, so acceleration equals force.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

#include "pic/charge.hpp"
#include "pic/geometry.hpp"
#include "pic/particle.hpp"

namespace picprk::pic {

struct Force {
  double fx = 0.0;
  double fy = 0.0;
};

/// Coulomb force of a charge q2 at displacement (dx, dy) from a charge q1
/// (ke = 1): magnitude q1·q2/r², directed along the joining line, repulsive
/// for like signs. Matches the official PRK's computeCoulomb.
inline Force coulomb(double dx, double dy, double q1, double q2) {
  const double r2 = dx * dx + dy * dy;
  const double r = std::sqrt(r2);
  const double f = q1 * q2 / r2;
  return {f * dx / r, f * dy / r};
}

/// Total force on particle `p` from the four corner charges of its cell.
/// `charges` is any charge source exposing `double at(px, py)` for global
/// mesh-point indices (AlternatingColumnCharges or ChargeSlab).
template <typename Charges>
Force total_force(const Particle& p, const GridSpec& grid, const Charges& charges) {
  const std::int64_t cx = grid.cell_of(p.x);
  const std::int64_t cy = grid.cell_of(p.y);
  const double rel_x = p.x - static_cast<double>(cx) * grid.h;
  const double rel_y = p.y - static_cast<double>(cy) * grid.h;

  Force total;
  // Corner order matches the official PRK: (cx,cy), (cx,cy+1),
  // (cx+1,cy), (cx+1,cy+1). The fixed order keeps force summation
  // deterministic across implementations.
  const struct {
    double dx, dy;
    std::int64_t px, py;
  } corners[4] = {
      {rel_x, rel_y, cx, cy},
      {rel_x, rel_y - grid.h, cx, cy + 1},
      {rel_x - grid.h, rel_y, cx + 1, cy},
      {rel_x - grid.h, rel_y - grid.h, cx + 1, cy + 1},
  };
  for (const auto& c : corners) {
    const Force f = coulomb(c.dx, c.dy, p.q, charges.at(c.px, c.py));
    total.fx += f.fx;
    total.fy += f.fy;
  }
  return total;
}

/// Advances one particle by one time step dt given the force acting on it
/// (Eqs. 1–2), wrapping periodically into [0, L).
inline void advance(Particle& p, const Force& f, const GridSpec& grid, double dt) {
  const double ax = f.fx;  // ke/m == 1 by specification
  const double ay = f.fy;
  const double length = grid.length();
  p.x = wrap(p.x + p.vx * dt + 0.5 * ax * dt * dt, length);
  p.y = wrap(p.y + p.vy * dt + 0.5 * ay * dt * dt, length);
  p.vx += ax * dt;
  p.vy += ay * dt;
}

/// Force + advance fused, the per-particle inner loop body.
template <typename Charges>
void move_particle(Particle& p, const GridSpec& grid, const Charges& charges, double dt) {
  advance(p, total_force(p, grid, charges), grid, dt);
}

/// Moves a span of particles (the serial kernel).
template <typename Charges>
void move_all(std::span<Particle> particles, const GridSpec& grid, const Charges& charges,
              double dt) {
  for (Particle& p : particles) move_particle(p, grid, charges, dt);
}

/// AoS mover with an OpenMP-parallel loop: the per-rank thread team of a
/// hybrid (message-passing × threads) configuration. Static scheduling
/// is fine here — every particle costs the same, so shared-memory
/// imbalance cannot arise from a flat particle array (which is exactly
/// why the PRK's load-balancing problem is a distributed-memory one).
template <typename Charges>
void move_all_omp(std::span<Particle> particles, const GridSpec& grid,
                  const Charges& charges, double dt) {
  const auto n = static_cast<std::int64_t>(particles.size());
#if defined(PICPRK_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t i = 0; i < n; ++i) {
    move_particle(particles[static_cast<std::size_t>(i)], grid, charges, dt);
  }
}

/// Structure-of-arrays mover; with OpenMP enabled the loop is parallel —
/// the shared-memory reference implementation (no load-balance issue in
/// shared memory with a static particle partition, which is exactly why
/// the paper targets distributed memory).
template <typename Charges>
void move_all_soa(ParticleSoA& soa, const GridSpec& grid, const Charges& charges, double dt) {
  const double length = grid.length();
  const auto n = static_cast<std::int64_t>(soa.size());
#if defined(PICPRK_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t i = 0; i < n; ++i) {
    Particle p;
    p.x = soa.x[static_cast<std::size_t>(i)];
    p.y = soa.y[static_cast<std::size_t>(i)];
    p.vx = soa.vx[static_cast<std::size_t>(i)];
    p.vy = soa.vy[static_cast<std::size_t>(i)];
    p.q = soa.q[static_cast<std::size_t>(i)];
    const Force f = total_force(p, grid, charges);
    const double ax = f.fx;
    const double ay = f.fy;
    soa.x[static_cast<std::size_t>(i)] = wrap(p.x + p.vx * dt + 0.5 * ax * dt * dt, length);
    soa.y[static_cast<std::size_t>(i)] = wrap(p.y + p.vy * dt + 0.5 * ay * dt * dt, length);
    soa.vx[static_cast<std::size_t>(i)] = p.vx + ax * dt;
    soa.vy[static_cast<std::size_t>(i)] = p.vy + ay * dt;
  }
}

}  // namespace picprk::pic
