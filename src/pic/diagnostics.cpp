#include "pic/diagnostics.hpp"

#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace picprk::pic {

std::vector<std::uint64_t> column_histogram(std::span<const Particle> particles,
                                            const GridSpec& grid) {
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(grid.cells), 0);
  for (const Particle& p : particles) {
    counts[static_cast<std::size_t>(grid.cell_of(p.x))]++;
  }
  return counts;
}

std::vector<std::uint64_t> row_histogram(std::span<const Particle> particles,
                                         const GridSpec& grid) {
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(grid.cells), 0);
  for (const Particle& p : particles) {
    counts[static_cast<std::size_t>(grid.cell_of(p.y))]++;
  }
  return counts;
}

CloudSummary summarize_cloud(std::span<const Particle> particles, const GridSpec& grid) {
  CloudSummary s;
  s.count = particles.size();
  if (particles.empty()) return s;
  const double length = grid.length();
  const double to_angle = 2.0 * std::numbers::pi / length;
  double cx = 0, sx = 0, cy = 0, sy = 0;
  for (const Particle& p : particles) {
    cx += std::cos(p.x * to_angle);
    sx += std::sin(p.x * to_angle);
    cy += std::cos(p.y * to_angle);
    sy += std::sin(p.y * to_angle);
  }
  const double n = static_cast<double>(particles.size());
  cx /= n;
  sx /= n;
  cy /= n;
  sy /= n;
  s.concentration_x = std::sqrt(cx * cx + sx * sx);
  s.concentration_y = std::sqrt(cy * cy + sy * sy);
  s.com_x = wrap(std::atan2(sx, cx) / to_angle, length);
  s.com_y = wrap(std::atan2(sy, cy) / to_angle, length);
  return s;
}

double periodic_displacement(double before, double after, double length) {
  double d = std::fmod(after - before, length);
  if (d > length / 2.0) d -= length;
  if (d < -length / 2.0) d += length;
  return d;
}

}  // namespace picprk::pic
