// Verification of the PIC PRK (paper §III-D): after s time steps a
// particle must be at
//     x_s = (x_0 + dir · (2k+1) · s · h) mod L          (Eq. 5)
//     y_s = (y_0 + m · s · h) mod L                     (Eq. 6)
// and the checksum of particle ids must equal n(n+1)/2 when the
// population is static. The position test is O(1) per particle yet
// catches a single force miscalculation in a single time step; the
// checksum catches any particle lost or duplicated in communication.
#pragma once

#include <cstdint>
#include <span>

#include "pic/geometry.hpp"
#include "pic/particle.hpp"

namespace picprk::pic {

/// Default absolute position tolerance; absorbs the non-associativity of
/// floating-point force summation (the official PRK uses the same idea).
inline constexpr double kVerifyEpsilon = 1.0e-5;

struct VerifyResult {
  bool positions_ok = true;
  std::uint64_t checked = 0;
  std::uint64_t position_failures = 0;
  double max_position_error = 0.0;
  /// Sum of ids of the checked particles.
  std::uint64_t id_checksum = 0;

  bool ok(std::uint64_t expected_checksum) const {
    return positions_ok && id_checksum == expected_checksum;
  }
};

/// Expected position of particle `p` after completing `final_step` steps
/// (a particle born at step b has moved final_step − b times).
struct ExpectedPosition {
  double x = 0.0;
  double y = 0.0;
};
ExpectedPosition expected_position(const Particle& p, const GridSpec& grid,
                                   std::uint32_t final_step);

/// Distance between two wrapped coordinates on a ring of circumference L.
double periodic_distance(double a, double b, double length);

/// Verifies a span of particles; results from disjoint spans can be
/// merged (trivially parallel, as the paper requires).
VerifyResult verify_particles(std::span<const Particle> particles, const GridSpec& grid,
                              std::uint32_t final_step, double epsilon = kVerifyEpsilon);

/// Merges partial results from disjoint particle sets.
VerifyResult merge(const VerifyResult& a, const VerifyResult& b);

/// n(n+1)/2 — the expected id checksum of a static population of n.
inline std::uint64_t expected_checksum(std::uint64_t n) { return n * (n + 1) / 2; }

}  // namespace picprk::pic
