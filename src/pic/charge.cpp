#include "pic/charge.hpp"

namespace picprk::pic {

ChargeSlab ChargeSlab::from_values(std::int64_t x0, std::int64_t y0, std::int64_t width,
                                   std::int64_t height, std::vector<double> values) {
  PICPRK_EXPECTS(width >= 1 && height >= 1);
  PICPRK_EXPECTS(values.size() == static_cast<std::size_t>(width * height));
  ChargeSlab slab;
  slab.x0_ = x0;
  slab.y0_ = y0;
  slab.width_ = width;
  slab.height_ = height;
  slab.values_ = std::move(values);
  return slab;
}

std::vector<double> ChargeSlab::extract_columns(std::int64_t cx0, std::int64_t cx1) const {
  PICPRK_EXPECTS(cx0 >= x0_ && cx1 <= x0_ + width_ && cx0 < cx1);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>((cx1 - cx0) * height_));
  for (std::int64_t px = cx0; px < cx1; ++px) {
    for (std::int64_t j = 0; j < height_; ++j) {
      out.push_back(values_[static_cast<std::size_t>(j * width_ + (px - x0_))]);
    }
  }
  return out;
}

std::vector<double> ChargeSlab::extract_rows(std::int64_t ry0, std::int64_t ry1) const {
  PICPRK_EXPECTS(ry0 >= y0_ && ry1 <= y0_ + height_ && ry0 < ry1);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>((ry1 - ry0) * width_));
  for (std::int64_t py = ry0; py < ry1; ++py) {
    for (std::int64_t i = 0; i < width_; ++i) {
      out.push_back(values_[static_cast<std::size_t>((py - y0_) * width_ + i)]);
    }
  }
  return out;
}

}  // namespace picprk::pic
