// Dynamic particle injection and removal (paper §III-E5): "at a
// particular time t' we uniformly inject/remove particles in/from a
// subdomain R'". These events adjust the local amount of work abruptly
// and stress the adaptiveness of a load-balancing strategy (the paper's
// category-2 imbalance source: local creation/destruction of work).
//
// Determinism contract (same as initialisation): which particles an event
// creates in a cell, and whether an existing particle is removed, are pure
// functions of (seed, event index, cell / particle id) — so serial and
// parallel runs apply identical events regardless of decomposition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pic/geometry.hpp"
#include "pic/init.hpp"
#include "pic/particle.hpp"

namespace picprk::pic {

/// Inject `count` particles uniformly over `region` at the start of time
/// step `step`. Injected particles use the same Eq.-3/Eq.-4 state as the
/// initial population (they verify via Eqs. 5–6 with s = T − step).
struct InjectionEvent {
  std::uint32_t step = 0;
  CellRegion region;
  std::uint64_t count = 0;
};

/// Remove, at the start of time step `step`, each particle residing in
/// `region` with probability `fraction` (decided by a hash of the
/// particle id, so the decision is decomposition-independent).
struct RemovalEvent {
  std::uint32_t step = 0;
  CellRegion region;
  double fraction = 0.5;
};

/// Event schedule plus the bookkeeping needed to keep ids unique and the
/// id-checksum verifiable when the population changes (§III-D notes the
/// plain n(n+1)/2 checksum only applies without injection/removal; the
/// ledger tracks the expected checksum incrementally).
class EventSchedule {
 public:
  EventSchedule() = default;
  EventSchedule(std::vector<InjectionEvent> injections, std::vector<RemovalEvent> removals);

  const std::vector<InjectionEvent>& injections() const { return injections_; }
  const std::vector<RemovalEvent>& removals() const { return removals_; }
  bool empty() const { return injections_.empty() && removals_.empty(); }

  /// Whether any event fires at `step` — the guard the SoA drivers use
  /// to skip the AoS staging round-trip on ordinary steps.
  bool scheduled_at(std::uint32_t step) const {
    for (const InjectionEvent& e : injections_) {
      if (e.step == step) return true;
    }
    for (const RemovalEvent& e : removals_) {
      if (e.step == step) return true;
    }
    return false;
  }

  /// Deterministic number of particles event `e` injects into cell (cx,cy).
  std::uint64_t injected_in_cell(const Initializer& init, std::size_t event_index,
                                 std::int64_t cx, std::int64_t cy) const;

  /// Exact total count injected by event `e` (sums injected_in_cell).
  std::uint64_t injection_total(const Initializer& init, std::size_t event_index) const;

  /// First id used by injection event `e`; ids continue after the initial
  /// population and all earlier injections.
  std::uint64_t injection_first_id(const Initializer& init, std::size_t event_index) const;

  /// Appends the particles event `e` injects into cells
  /// [cx0,cx1)×[cy0,cy1), with globally consistent ids (parallel-safe).
  void emplace_injection_block(const Initializer& init, std::size_t event_index,
                               std::int64_t cx0, std::int64_t cx1, std::int64_t cy0,
                               std::int64_t cy1, std::vector<Particle>& out) const;

  /// Whether removal event `e` removes a particle with this id that
  /// resides in the event's region.
  bool removes(const Initializer& init, std::size_t event_index, std::uint64_t id) const;

  /// Applies every event scheduled for `step` to a local particle vector
  /// restricted to the cell block [cx0,cx1)×[cy0,cy1) (the whole grid for
  /// serial). Returns the net change in local particle count.
  std::int64_t apply_step(const Initializer& init, std::uint32_t step, std::int64_t cx0,
                          std::int64_t cx1, std::int64_t cy0, std::int64_t cy1,
                          std::vector<Particle>& particles) const;

 private:
  std::vector<InjectionEvent> injections_;
  std::vector<RemovalEvent> removals_;
};

}  // namespace picprk::pic
