// Simulation-domain geometry of the PIC PRK (paper §III-B): a periodic
// L×L square mesh of cells of size h×h. We keep h general but the
// canonical configuration is h = 1, dt = 1, particles at cell centers,
// which makes per-step displacements exact integers of cells.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/annotations.hpp"
#include "util/assert.hpp"

namespace picprk::pic {

/// Full-range periodic wrap via fmod; the slow path of `wrap` and the
/// pre-optimization hot-path form (preserved verbatim as
/// pic::reference's wrap in mover.hpp).
inline double wrap_fmod(double v, double length) {
  double r = std::fmod(v, length);
  if (r < 0.0) r += length;
  // fmod of a value infinitesimally below length can round up to length.
  if (r >= length) r = 0.0;
  return r;
}

/// Wraps `v` into [0, L) (periodic boundary in one coordinate).
///
/// Fast path: a per-step displacement almost never exceeds one domain
/// length, so the common cases are "already in range" (no work) and "one
/// period out" (one add/sub — exact, and bit-identical to fmod: for
/// v ∈ [L, 2L) Sterbenz's lemma makes v−L exact, and for v ∈ [−L, 0)
/// fmod returns v itself before the +L correction, so both forms compute
/// the same sum). Anything further out falls back to fmod.
PICPRK_HOT inline double wrap(double v, double length) {
  if (v >= length) {
    v -= length;
    if (v >= length) return wrap_fmod(v, length);
  } else if (v < 0.0) {
    v += length;
    if (v < 0.0) return wrap_fmod(v, length);
  }
  // A tiny negative plus L can round up to exactly L; fold it to 0.
  if (v >= length) v = 0.0;
  return v;
}

/// Wraps an integer cell/mesh index into [0, n).
inline std::int64_t wrap_index(std::int64_t v, std::int64_t n) {
  std::int64_t r = v % n;
  return r < 0 ? r + n : r;
}

/// The L×L periodic mesh. `cells` is the number of cells per dimension
/// (the paper's c = L/h); it must be even so that the alternating column
/// charges are consistent across the periodic seam (§III-C: "L must be
/// an even multiple of h").
struct GridSpec {
  std::int64_t cells = 0;
  double h = 1.0;
  /// Cached 1/h: turns the two per-particle cell_of divides into
  /// multiplies. Derived from h in the constructor; h is never mutated
  /// after construction. In the canonical h = 1 configuration inv_h is
  /// exactly 1.0, so cell_of is bit-identical to the divide form.
  double inv_h = 1.0;

  GridSpec() = default;
  GridSpec(std::int64_t cells_in, double h_in = 1.0)
      : cells(cells_in), h(h_in), inv_h(1.0 / h_in) {
    PICPRK_EXPECTS(cells >= 2);
    PICPRK_EXPECTS(cells % 2 == 0);
    PICPRK_EXPECTS(h > 0.0);
  }

  /// Physical domain extent L = cells * h.
  double length() const { return static_cast<double>(cells) * h; }

  /// Cell index containing physical coordinate `v` (already in [0, L)).
  PICPRK_HOT std::int64_t cell_of(double v) const {
    // Truncating cast instead of std::floor: identical after the clamps
    // (trunc == floor for v ≥ 0, and any negative v·inv_h truncates to
    // a value the `< 0` clamp sends to 0 exactly as the floor form
    // does), but stays a single inline conversion where floor is a libm
    // call on baseline ISAs.
    auto c = static_cast<std::int64_t>(v * inv_h);
    // Guard the v == L fringe that floating rounding can produce.
    if (c >= cells) c = cells - 1;
    if (c < 0) c = 0;
    return c;
  }

  /// Physical coordinate of the center of cell index `c`.
  double cell_center(std::int64_t c) const {
    return (static_cast<double>(c) + 0.5) * h;
  }

  bool operator==(const GridSpec&) const = default;
};

/// Rectangular region of whole cells [x0, x1) × [y0, y1); used for the
/// patch distribution and for injection/removal events (§III-E4/5).
struct CellRegion {
  std::int64_t x0 = 0, x1 = 0, y0 = 0, y1 = 0;

  std::int64_t width() const { return x1 - x0; }
  std::int64_t height() const { return y1 - y0; }
  std::int64_t area() const { return width() * height(); }
  bool contains_cell(std::int64_t cx, std::int64_t cy) const {
    return cx >= x0 && cx < x1 && cy >= y0 && cy < y1;
  }
  bool valid_within(const GridSpec& grid) const {
    return x0 >= 0 && y0 >= 0 && x1 <= grid.cells && y1 <= grid.cells &&
           x1 > x0 && y1 > y0;
  }
};

}  // namespace picprk::pic
