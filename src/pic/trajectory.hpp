// Step-by-step trajectory validation: a strictly stronger instrument
// than the end-of-run check of §III-D. The closed form (Eqs. 5–6) holds
// after *every* step, so a tracked particle can be validated
// continuously — which pinpoints the exact step where an implementation
// diverges instead of reporting a failure 6,000 steps later. Used by the
// test suite; cheap enough (O(tracked) per step) to leave on in anger.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "pic/particle.hpp"
#include "pic/verify.hpp"

namespace picprk::pic {

/// Records the first detected divergence of a tracked particle.
struct TrajectoryFault {
  std::uint64_t id = 0;
  std::uint32_t step = 0;     ///< first step after which the check failed
  double error = 0.0;         ///< periodic position error at that step
  double x = 0.0, y = 0.0;    ///< observed position
  double expected_x = 0.0, expected_y = 0.0;
};

class TrajectoryValidator {
 public:
  /// Tracks the given particle ids (initial state captured on the first
  /// check). Empty set = track every particle seen.
  explicit TrajectoryValidator(std::vector<std::uint64_t> ids = {},
                               double epsilon = kVerifyEpsilon);

  /// Checks every tracked particle present in `particles` against the
  /// closed form after `completed_steps` steps. Returns the number of
  /// particles checked. Faults accumulate (first fault per id).
  std::size_t check(std::span<const Particle> particles, const GridSpec& grid,
                    std::uint32_t completed_steps);

  bool ok() const { return faults_.empty(); }
  const std::vector<TrajectoryFault>& faults() const { return faults_; }

  /// Steps × particles validated so far.
  std::uint64_t checks_performed() const { return checks_; }

 private:
  bool tracked(std::uint64_t id) const;

  std::vector<std::uint64_t> ids_;  // sorted; empty = all
  double epsilon_;
  std::vector<TrajectoryFault> faults_;
  std::vector<std::uint64_t> faulted_ids_;
  std::uint64_t checks_ = 0;
};

}  // namespace picprk::pic
