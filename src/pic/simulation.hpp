// Serial reference simulation of the PIC PRK: the paper-and-pencil
// specification executed directly (initialise → T steps of force+move,
// with optional injection/removal events → verify). This is the ground
// truth the parallel drivers are tested against, and the denominator of
// the speedup numbers in the paper's Figure 6.
#pragma once

#include <cstdint>
#include <vector>

#include "pic/charge.hpp"
#include "pic/events.hpp"
#include "pic/init.hpp"
#include "pic/mover.hpp"
#include "pic/verify.hpp"

namespace picprk::pic {

struct SimulationConfig {
  InitParams init;
  std::uint32_t steps = 10;
  EventSchedule events;
  double verify_epsilon = kVerifyEpsilon;
};

struct SimulationResult {
  VerifyResult verification;
  /// Expected id checksum, maintained through injections/removals.
  std::uint64_t expected_id_checksum = 0;
  std::uint64_t final_particles = 0;
  double seconds = 0.0;  ///< wall time of the timed stepping loop

  bool ok() const { return verification.ok(expected_id_checksum); }
};

/// Runs the serial simulation. When `use_soa` is true the SoA/OpenMP
/// mover is used (the shared-memory reference); results are identical.
SimulationResult run_serial(const SimulationConfig& config, bool use_soa = false);

/// One serial time step over a particle vector — exposed so tests can
/// inspect intermediate states.
void serial_step(std::vector<Particle>& particles, const GridSpec& grid,
                 const AlternatingColumnCharges& charges, double dt);

}  // namespace picprk::pic
