// The initialization framework of the PIC PRK (paper §III-C and §III-E):
// particle distributions with controllable skew, the Eq.-3 charge that
// makes every particle hop exactly (2k+1) cells per step, the Eq.-4
// initial velocity, and decomposition-independent deterministic placement.
//
// Determinism contract: the number of particles in a cell, their initial
// state and their globally unique ids are pure functions of
// (seed, distribution, cell coordinates) — a rank initialising only its
// own block produces bit-identical particles to a serial run. This is
// what lets the closed-form verification detect a single miscommunicated
// particle (paper §III-D).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "pic/geometry.hpp"
#include "pic/particle.hpp"
#include "util/rng.hpp"

namespace picprk::pic {

/// Base particle charge magnitude from paper Eq. (3): the charge for
/// which a resting particle at relative cell position (xrel, h/2) travels
/// exactly one cell in one step. Canonical xrel = h/2.
double charge_base(double h, double dt, double mesh_q, double xrel);

/// Convenience overload for the canonical cell-center placement.
inline double charge_base(double h = 1.0, double dt = 1.0, double mesh_q = 1.0) {
  return charge_base(h, dt, mesh_q, h / 2.0);
}

// ----------------------------------------------------- distributions

/// Exponential/geometric column distribution (§III-E1): cell in column i
/// holds A·r^i particles in expectation; r = 1 degenerates to uniform.
struct Geometric {
  double r = 0.999;
};

/// Sinusoidal column distribution (§III-E2).
struct Sinusoidal {};

/// Linear column distribution (§III-E3) with smoothness controls α, β.
struct Linear {
  double alpha = 1.0;
  double beta = 1.0;
};

/// Uniform distribution restricted to a rectangular subdomain (§III-E4);
/// the full-domain uniform case is Patch over the whole grid.
struct Patch {
  CellRegion region;
};

/// Uniform over the whole domain (the r = 1 degenerate case, spelled out).
struct Uniform {};

using Distribution = std::variant<Geometric, Sinusoidal, Linear, Patch, Uniform>;

std::string distribution_name(const Distribution& dist);

/// How particle charge signs are assigned per initial cell column
/// (§III-E1). DriftRight is the paper's experiment configuration: charge
/// +|q| in even columns, −|q| in odd columns, so the whole cloud shifts
/// +x by (2k+1) cells per step.
enum class ChargeSign {
  DriftRight,
  DriftLeft,
  /// Per-particle pseudo-random sign — spreads the cloud both ways;
  /// used in tests to exercise mixed-direction motion.
  Random,
};

struct InitParams {
  GridSpec grid;
  std::uint64_t total_particles = 0;  ///< requested n (realised count may differ by O(√cells))
  Distribution distribution = Uniform{};
  std::int32_t k = 0;  ///< horizontal speed parameter: (2k+1) cells/step
  std::int32_t m = 0;  ///< vertical speed parameter: m cells/step
  ChargeSign sign = ChargeSign::DriftRight;
  double dt = 1.0;
  double mesh_q = 1.0;
  std::uint64_t seed = 0x5EEDF00Dull;
  /// Rotate the (column-based) distribution by 90°: the skew is applied
  /// to rows instead of columns. The paper uses this to defeat a fixed
  /// 1-D decomposition aligned with the skew (§III-E1); combined with
  /// the unchanged +x drift it produces an imbalance that x-only
  /// diffusion cannot remove. No effect on Patch/Uniform.
  bool rotate90 = false;
};

/// Per-column expected particle count per cell — the distribution's
/// normalised column weights. For Patch the returned weight applies to
/// cells inside the patch rows only. O(cells); shared by the Initializer
/// and the performance model.
std::vector<double> column_cell_expectations(const InitParams& params);

/// Evaluates the initialisation: per-cell counts, id prefixes, particle
/// records. Construction is O(cells²) — it realises every cell's integer
/// count once to fix the id prefixes; per-cell queries are O(1).
class Initializer {
 public:
  explicit Initializer(InitParams params);

  const InitParams& params() const { return params_; }

  /// Deterministic number of particles initially in cell (cx, cy).
  std::uint64_t count_in_cell(std::int64_t cx, std::int64_t cy) const;

  /// Total particles in column cx (cached at construction).
  std::uint64_t column_total(std::int64_t cx) const;

  /// Exact realised total particle count n.
  std::uint64_t total() const { return total_; }

  /// First particle id (1-based) assigned to column cx; ids are assigned
  /// in cell-major order: column by column, cells bottom-to-top.
  std::uint64_t column_first_id(std::int64_t cx) const;

  /// Appends the particles of one cell given the first id to use.
  void emplace_cell(std::int64_t cx, std::int64_t cy, std::uint64_t first_id,
                    std::vector<Particle>& out) const;

  /// Serial initialisation: all particles, ids 1..n in canonical order.
  std::vector<Particle> create_all() const;

  /// Parallel initialisation for a block of cells [cx0,cx1) × [cy0,cy1):
  /// exactly the particles a serial run would place there, with the same
  /// ids. Cost O(width × cells) for the intra-column id prefixes.
  std::vector<Particle> create_block(std::int64_t cx0, std::int64_t cx1, std::int64_t cy0,
                                     std::int64_t cy1) const;

  /// Expected (continuous) per-cell particle count of the distribution.
  double expected_in_cell(std::int64_t cx, std::int64_t cy) const;

  /// Builds a single particle record; exposed for the injection events
  /// which reuse the same charge/velocity assignment with a later birth
  /// step.
  Particle make_particle(std::int64_t cx, std::int64_t cy, std::uint64_t id,
                         std::uint32_t birth) const;

 private:
  InitParams params_;
  double q_base_;                           // Eq. 3 magnitude for this grid
  std::vector<double> column_weight_;       // per-column expected count per cell
  std::vector<std::uint64_t> column_total_; // realised per-column totals
  std::vector<std::uint64_t> column_prefix_;// exclusive prefix of column totals
  std::uint64_t total_ = 0;
};

}  // namespace picprk::pic
