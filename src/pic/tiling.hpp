// Cell tiling of the SoA particle store: groups the rows of a
// ParticleSoA into contiguous runs ("tiles") of particles sharing a grid
// cell, so the mover and the charge gather/deposit can hoist the four
// corner values of a cell out of the inner loop — a per-tile broadcast
// instead of a per-particle gather — leaving a straight-line loop body
// the compiler vectorizes.
//
// A full re-sort (counting sort over the cells of a region, permuting
// all twelve columns) costs more than one tiled move at realistic
// populations, so the index is NOT rebuilt every step. Instead:
//
//  * rebuild()    — counting-sort the store by cell; rows whose cell
//                   falls outside the region land in an untiled tail.
//  * revalidate_after_move() — after a move, each tile's particles have
//                   usually drifted TOGETHER into one new cell (the
//                   PRK's motion is a uniform hop of (2k+1, m) cells for
//                   particles sharing (k, m, dir) — see verify.hpp
//                   Eqs. 5–6), so the grouping survives; this pass
//                   relabels each tile from its members and only marks
//                   the index dirty when a tile really scattered.
//  * compact_ranges() — the particle exchange removes emigrants by
//                   stable compaction; tile ranges shrink accordingly
//                   without re-sorting. Immigrants append to the tail.
//
// Policy (when to rebuild vs. ride the tail) lives with the caller; the
// mover rebuilds a dirty index and flat-moves the tail, so correctness
// never depends on the cadence. docs/PERFORMANCE.md discusses the cost
// model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pic/geometry.hpp"
#include "pic/particle.hpp"
#include "util/assert.hpp"

namespace picprk::pic {

class TileIndex {
 public:
  /// One tile: rows [begin, end) of the store, all in cell (cx, cy).
  struct Tile {
    std::int64_t cx = 0;
    std::int64_t cy = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  TileIndex() = default;
  explicit TileIndex(const CellRegion& region) : region_(region) {}

  const CellRegion& region() const { return region_; }

  /// Re-targets the index (e.g. after a load-balance boundary move).
  void reset_region(const CellRegion& region) {
    region_ = region;
    dirty_ = true;
  }

  /// False once any operation broke the tile ⇄ cell correspondence
  /// (scatter detected, swap_remove, restore...). A dirty index must be
  /// rebuilt before the tiles are trusted again.
  bool fresh() const { return !dirty_; }
  void mark_dirty() { dirty_ = true; }

  std::span<const Tile> tiles() const { return tiles_; }

  /// Rows [tail_begin(), soa.size()) are not covered by any tile:
  /// out-of-region residents and everything appended since the last
  /// rebuild (immigrants, injected particles). Callers move them with
  /// the flat kernel.
  std::size_t tail_begin() const { return tiled_end_; }

  /// Tail size as a fraction of the store; the drivers' rebuild trigger.
  double tail_fraction(const ParticleSoA& soa) const {
    const std::size_t n = soa.size();
    if (n == 0) return 0.0;
    return static_cast<double>(n - tiled_end_) / static_cast<double>(n);
  }

  /// Counting-sorts the store by containing cell (region cells in
  /// row-major order, then the out-of-region tail) and records one tile
  /// per occupied cell. All twelve columns are permuted; scratch is
  /// retained across calls, so steady-state rebuilds allocate nothing.
  void rebuild(ParticleSoA& soa, const GridSpec& grid) {
    const std::size_t n = soa.size();
    const std::int64_t w = region_.width();
    const auto area = static_cast<std::size_t>(region_.area());
    tiles_.clear();
    // Degenerate region/population: a bucket array much larger than the
    // store would cost more than tiling saves — leave everything in the
    // tail (the flat kernel handles it; still a valid, fresh index).
    if (n == 0 || area > kMaxBuckets || (area > 8 * n && area > 4096)) {
      tiled_end_ = 0;
      dirty_ = false;
      return;
    }

    // Pass 1: bucket key per row (region cell index, or `area` = tail).
    key_.resize(n);
    counts_.assign(area + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t cx = grid.cell_of(soa.x[i]);
      const std::int64_t cy = grid.cell_of(soa.y[i]);
      const std::size_t key =
          region_.contains_cell(cx, cy)
              ? static_cast<std::size_t>((cy - region_.y0) * w + (cx - region_.x0))
              : area;
      key_[i] = key;
      ++counts_[key];
    }

    // Pass 2: bucket start offsets, then the destination of every row.
    starts_.resize(area + 2);
    std::size_t offset = 0;
    for (std::size_t b = 0; b <= area; ++b) {
      starts_[b] = offset;
      offset += counts_[b];
    }
    starts_[area + 1] = offset;
    // Reuse counts_ as the per-bucket write cursor; walking rows in
    // order keeps the sort stable within a bucket.
    for (std::size_t b = 0; b <= area; ++b) counts_[b] = starts_[b];
    dest_.resize(n);
    for (std::size_t i = 0; i < n; ++i) dest_[i] = counts_[key_[i]]++;

    // Pass 3: permute every column through reusable scratch.
#define PICPRK_FIELD(type, name, init) permute(soa.name, scratch(soa.name));
    PICPRK_PARTICLE_FIELDS(PICPRK_FIELD)
#undef PICPRK_FIELD

    // Pass 4: one tile per occupied region cell.
    for (std::size_t b = 0; b < area; ++b) {
      if (starts_[b] == starts_[b + 1]) continue;
      Tile t;
      t.cx = region_.x0 + static_cast<std::int64_t>(b) % w;
      t.cy = region_.y0 + static_cast<std::int64_t>(b) / w;
      t.begin = starts_[b];
      t.end = starts_[b + 1];
      tiles_.push_back(t);
    }
    tiled_end_ = starts_[area];
    dirty_ = false;
  }

  /// After a move: relabel each tile from its members' new cells. The
  /// canonical PRK motion shifts a whole tile into one new cell, so this
  /// O(n) scan (two multiply-and-truncate per row) replaces a re-sort.
  /// Returns false — and marks the index dirty — if any tile scattered
  /// across cells (mixed per-particle (k, m, dir) populations do this).
  bool revalidate_after_move(const ParticleSoA& soa, const GridSpec& grid) {
    if (dirty_) return false;
    for (Tile& t : tiles_) {
      const std::int64_t cx = grid.cell_of(soa.x[t.begin]);
      const std::int64_t cy = grid.cell_of(soa.y[t.begin]);
      for (std::size_t i = t.begin; i < t.end; ++i) {
        if (grid.cell_of(soa.x[i]) != cx || grid.cell_of(soa.y[i]) != cy) {
          dirty_ = true;
          return false;
        }
      }
      t.cx = cx;
      t.cy = cy;
    }
    return true;
  }

  /// After a stable keeper-compaction (exchange): row i survived iff
  /// owner[i] == me. Shrinks every tile range in place — grouping and
  /// order are preserved by stability, so no re-sort is needed. `owner`
  /// is indexed by PRE-compaction rows and must cover the old store.
  void compact_ranges(std::span<const int> owner, int me) {
    if (dirty_) return;
    std::size_t removed_before = 0;
    for (Tile& t : tiles_) {
      std::size_t removed_here = 0;
      for (std::size_t i = t.begin; i < t.end; ++i) {
        if (owner[i] != me) ++removed_here;
      }
      t.begin -= removed_before;
      removed_before += removed_here;
      t.end -= removed_before;
    }
    tiled_end_ -= removed_before;
    // Drop tiles the exchange emptied entirely.
    std::erase_if(tiles_, [](const Tile& t) { return t.begin == t.end; });
  }

  /// Structural invariant, for tests and PICPRK_EXPENSIVE_CHECKS sweeps:
  /// tiles partition [0, tail_begin()) contiguously in order, and every
  /// tiled row's cell matches its tile label. Each row is therefore
  /// indexed exactly once (tiles) or left to the tail — never both.
  bool check(const ParticleSoA& soa, const GridSpec& grid) const {
    if (dirty_) return false;
    if (tiled_end_ > soa.size()) return false;
    std::size_t cursor = 0;
    for (const Tile& t : tiles_) {
      if (t.begin != cursor || t.end <= t.begin) return false;
      if (!region_.contains_cell(t.cx, t.cy) &&
          (t.cx < 0 || t.cx >= grid.cells || t.cy < 0 || t.cy >= grid.cells)) {
        return false;
      }
      for (std::size_t i = t.begin; i < t.end; ++i) {
        if (grid.cell_of(soa.x[i]) != t.cx || grid.cell_of(soa.y[i]) != t.cy) return false;
      }
      cursor = t.end;
    }
    return cursor == tiled_end_;
  }

 private:
  // Bucket-array ceiling: above this the counting sort's memory/clearing
  // cost is unreasonable for any realistic population.
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 24;

  template <typename T>
  void permute(std::vector<T>& column, std::vector<T>& tmp) {
    const std::size_t n = column.size();
    tmp.resize(n);
    for (std::size_t i = 0; i < n; ++i) tmp[dest_[i]] = column[i];
    column.swap(tmp);
  }

  // Typed scratch, selected by column type; swap() in permute() keeps
  // the retired buffer for the next column/rebuild.
  std::vector<double>& scratch(const std::vector<double>&) { return scratch_f64_; }
  std::vector<std::int32_t>& scratch(const std::vector<std::int32_t>&) { return scratch_i32_; }
  std::vector<std::uint32_t>& scratch(const std::vector<std::uint32_t>&) { return scratch_u32_; }
  std::vector<std::uint64_t>& scratch(const std::vector<std::uint64_t>&) { return scratch_u64_; }

  CellRegion region_;
  std::vector<Tile> tiles_;
  std::size_t tiled_end_ = 0;
  bool dirty_ = true;

  std::vector<std::size_t> key_, counts_, starts_, dest_;
  std::vector<double> scratch_f64_;
  std::vector<std::int32_t> scratch_i32_;
  std::vector<std::uint32_t> scratch_u32_;
  std::vector<std::uint64_t> scratch_u64_;
};

}  // namespace picprk::pic
