// In-memory checkpoint store for the PUP-based checkpoint/restart layer
// (docs/RESILIENCE.md). The store lives *outside* the world, so
// snapshots survive an aborted run and the recovery loop can roll a
// fresh run back to the last consistent checkpoint.
//
// Two copies per slot model buddy checkpointing (Charm++'s double
// in-memory scheme): each rank keeps its own snapshot (primary) and
// ships a copy to its buddy rank, which stores it here under the
// owner's slot id (buddy). When a rank dies, drop_primary() simulates
// the loss of its memory; restore then falls back to the buddy copy.
//
// A short history (two snapshots per slot) keeps a consistent recovery
// line available even when a failure interrupts the checkpoint round
// itself: consistent_step() returns the newest step for which *every*
// slot still has some copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/registry.hpp"

namespace picprk::ft {

class CheckpointStore {
 public:
  /// Snapshots kept per slot (per copy class); older ones are evicted.
  static constexpr std::size_t kHistoryDepth = 2;

  /// Stores `slot`'s own snapshot taken at `step`.
  void save(int slot, std::uint32_t step, std::vector<std::byte> bytes);

  /// Stores the buddy copy of `owner`'s snapshot (called by the buddy).
  void save_buddy(int owner, std::uint32_t step, std::vector<std::byte> bytes);

  /// Newest step S such that every slot in [0, slots) has a primary or
  /// buddy snapshot at S — the consistent recovery line.
  std::optional<std::uint32_t> consistent_step(int slots) const;

  /// Snapshot of `slot` at `step`; primary preferred, buddy fallback.
  std::optional<std::vector<std::byte>> load(int slot, std::uint32_t step) const;

  /// Simulates the loss of a dead rank's memory: all of `slot`'s primary
  /// snapshots vanish; only copies held by its buddy remain.
  void drop_primary(int slot);

  void clear();

  /// Total bytes currently held (both copy classes).
  std::uint64_t stored_bytes() const;
  /// Total save calls accepted (primary + buddy), over the store's life.
  std::uint64_t saves() const { return saves_->value(); }
  /// Successful load() calls — snapshots actually used for recovery.
  std::uint64_t restores() const { return restores_->value(); }

  /// Per-instance metric registry ("ft/checkpoint_saves", ...); stores
  /// are often test- or run-scoped, so counts stay with the instance.
  const obs::Registry& metrics() const { return metrics_; }

 private:
  struct Entry {
    std::uint32_t step = 0;
    std::vector<std::byte> bytes;
  };
  /// Newest-first, at most kHistoryDepth entries.
  using History = std::vector<Entry>;

  static void insert(History& history, std::uint32_t step, std::vector<std::byte> bytes);
  static const Entry* find(const History& history, std::uint32_t step);

  mutable std::mutex mutex_;
  std::unordered_map<int, History> primary_;
  std::unordered_map<int, History> buddy_;
  /// Lifetime tallies as obs counters (metrics_ owns the storage).
  obs::Registry metrics_;
  obs::Counter* saves_ = &metrics_.register_counter("ft/checkpoint_saves");
  obs::Counter* restores_ = &metrics_.register_counter("ft/checkpoint_restores");
  obs::Counter* saved_bytes_ = &metrics_.register_counter("ft/checkpoint_bytes_saved");
};

}  // namespace picprk::ft
