// Deterministic, scripted fault model for the PIC PRK — the disturbance
// generator of the resilience axis (docs/RESILIENCE.md). A FaultPlan
// scripts two families of faults:
//
//  * step faults — rank death (Kill) and slow-rank stalls (Stall) firing
//    at an exact (rank, step); drivers poll them via begin_step();
//  * message faults — Drop / Duplicate / Delay applied probabilistically
//    per message, decided by a counter-based hash of (seed, spec, src,
//    per-source sequence number), so the same seed always yields the
//    same fault trace regardless of thread scheduling.
//
// The injector implements comm::FaultHook, so a World with the hook
// installed perturbs every message — collectives included — while a
// plan-less run pays only a null-pointer test per send.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/fault_hook.hpp"
#include "obs/registry.hpp"

namespace picprk::ft {

enum class FaultKind { Kill, Stall, Drop, Duplicate, Delay };

const char* to_string(FaultKind kind);

/// One scripted fault. Kill/Stall use (rank, step[, ms]); message kinds
/// use probability plus optional src/dst endpoint filters.
struct FaultSpec {
  FaultKind kind = FaultKind::Kill;
  /// Target rank (world rank, or VP id under the vpr driver). Kill/Stall.
  int rank = -1;
  /// Fire step. Kill/Stall.
  std::uint32_t step = 0;
  /// Stall duration or per-message delay in ms. Stall with ms <= 0 means
  /// "stall until the world aborts" (the infinite-hang scenario the
  /// watchdog must convert into a CommTimeout).
  int ms = 0;
  /// Per-message fault probability in [0, 1]. Drop/Duplicate/Delay.
  double probability = 0.0;
  /// Endpoint filters for message faults (-1 = any world rank).
  int src = -1;
  int dst = -1;
};

/// A seeded script of faults. parse() accepts the CLI grammar:
///   spec  := entry (';' entry)*
///   entry := kind ':' key '=' value (',' key '=' value)*
///   kind  := kill | stall | drop | dup | delay
///   key   := rank | step | ms | prob | src | dst     (ms=inf allowed)
/// e.g. "kill:rank=1,step=40;drop:prob=0.01,src=0;stall:rank=2,step=5,ms=inf"
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }

  static FaultPlan parse(const std::string& text, std::uint64_t seed);
};

/// Thrown out of FaultInjector::begin_step when a Kill fires: the typed
/// "this rank just died" signal the recovery loop catches.
class RankKilled : public std::runtime_error {
 public:
  RankKilled(int rank, std::uint32_t step)
      : std::runtime_error("rank " + std::to_string(rank) +
                           " killed by fault injection at step " +
                           std::to_string(step)),
        rank_(rank),
        step_(step) {}

  int rank() const noexcept { return rank_; }
  std::uint32_t step() const noexcept { return step_; }

 private:
  int rank_;
  std::uint32_t step_;
};

/// One fired fault, for the deterministic trace. Message faults record
/// the per-source sequence number; step faults record the step.
struct FaultEvent {
  FaultKind kind = FaultKind::Kill;
  int rank = -1;  ///< victim rank (step faults) or sender (message faults)
  int peer = -1;  ///< receiver (message faults only)
  std::uint32_t step = 0;
  std::uint64_t seq = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

class FaultInjector final : public comm::FaultHook {
 public:
  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Called by a driver at the top of every step. Fires matching Kill
  /// (throws RankKilled) and Stall (sleeps; checks `abort` so a dying
  /// world cuts the stall short) specs. Step faults fire exactly once,
  /// so a recovery rerun proceeds past them.
  void begin_step(int rank, std::uint32_t step,
                  const std::atomic<bool>* abort = nullptr);

  /// comm::FaultHook: decides the fate of one outgoing message.
  comm::FaultDecision on_send(int src, int dst, int tag, std::size_t bytes) override;

  /// Deterministic fired-fault trace, sorted (rank, seq, step, kind) so
  /// two runs of the same seeded plan compare equal.
  std::vector<FaultEvent> trace() const;

  const FaultPlan& plan() const { return plan_; }

  std::uint64_t dropped() const { return dropped_->value(); }
  std::uint64_t duplicated() const { return duplicated_->value(); }
  std::uint64_t delayed() const { return delayed_->value(); }
  std::uint64_t kills() const { return kills_->value(); }
  std::uint64_t stalls() const { return stalls_->value(); }

  /// The injector's per-instance metric registry ("ft/dropped",
  /// "ft/kills", ...); sinks can export it alongside a run registry.
  /// Per-instance (not a caller-provided global) because injector
  /// lifetimes are test-scoped: each expects its own zeroed counts.
  const obs::Registry& metrics() const { return metrics_; }

 private:
  void record(FaultEvent event);

  FaultPlan plan_;
  /// One-shot latches for step faults (index-aligned with plan_.specs).
  std::vector<std::atomic<bool>> fired_;
  /// Per-source-rank message sequence numbers; each slot is written only
  /// by its own rank's thread.
  std::vector<std::uint64_t> send_seq_;
  mutable std::mutex trace_mutex_;
  std::vector<FaultEvent> trace_;
  /// Fired-fault tallies, kept as obs counters (relaxed atomics) instead
  /// of a hand-rolled atomic block; registered once in the constructor.
  obs::Registry metrics_;
  obs::Counter* dropped_;
  obs::Counter* duplicated_;
  obs::Counter* delayed_;
  obs::Counter* kills_;
  obs::Counter* stalls_;
};

}  // namespace picprk::ft
