// Recovery coordinator for localized rank-failure recovery — the middle
// rung of the resilience ladder (docs/RESILIENCE.md):
//
//   retry (comm::ReliableTransport)  →  localized recovery (this)
//                                    →  full-world rollback (par layer).
//
// Protocol: the victim rank catches its own RankKilled and calls
// declare_dead(), which records the dead rank and interrupts every
// blocked survivor (their blocking calls throw comm::RecvInterrupted).
// The victim's thread then continues as its own promoted spare: the
// pre-failure state is treated as lost and is rebuilt from the buddy
// checkpoint, but the execution resource stays in the world. Every rank
// — victim and survivors alike — then calls join(). The last arriver
// runs the serial repair section while the others wait:
//
//   1. flush the reliable transport (in-flight retransmit state of the
//      aborted step is garbage);
//   2. drain every mailbox (the replay regenerates those messages);
//   3. drop the dead ranks' primary checkpoints — their memory is gone,
//      only copies held by their buddies survive;
//   4. compute the newest consistent restore step across all slots.
//
// After the rendezvous each thread realigns its collective tag streams
// and acknowledges the interrupt epoch, restores from the checkpoint
// store and replays. With checkpoint cadence 1 (forced by the par layer
// in localized mode) the replay is at most one step: the top-of-step
// snapshot precedes the kill's begin_step, and the full-mesh count
// round of the particle exchange stops every survivor inside the
// victim's failure step.
//
// If the rendezvous times out or no consistent checkpoint line survives
// (e.g. a rank and its buddy both died), join() throws RecoveryFailed:
// the typed signal to fall back to the full-world rollback rung.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace picprk::comm {
class Comm;
struct WorldState;
}  // namespace picprk::comm

namespace picprk::ft {

class CheckpointStore;

/// Thrown out of RecoveryCoordinator::join when localized recovery
/// cannot proceed; the caller falls back to full-world rollback.
class RecoveryFailed : public std::runtime_error {
 public:
  explicit RecoveryFailed(const std::string& what) : std::runtime_error(what) {}
};

class RecoveryCoordinator {
 public:
  /// `store` must outlive the coordinator. `ranks` is the world size;
  /// the rendezvous completes only when all of them join.
  RecoveryCoordinator(CheckpointStore* store, int ranks,
                      int rendezvous_timeout_ms = 10000);

  RecoveryCoordinator(const RecoveryCoordinator&) = delete;
  RecoveryCoordinator& operator=(const RecoveryCoordinator&) = delete;

  /// Attaches the world whose mailboxes / transport / interrupt epoch
  /// the repair section manipulates. Call before World::run.
  void attach(comm::WorldState* state);

  /// Resets per-run rendezvous state. Call before each World::run (a
  /// rollback retry constructs fresh Comms but reuses the coordinator).
  void begin_run();

  /// Victim side: records `rank` as dead at `step` and interrupts every
  /// blocked rank. The caller then joins the rendezvous as its own
  /// spare.
  void declare_dead(int rank, std::uint32_t step);

  /// Rendezvous of all ranks; returns the step every rank must restore
  /// to. Throws RecoveryFailed when localized recovery cannot proceed
  /// and comm::WorldAborted when the world dies while waiting. On
  /// success the comm's collective sequences are realigned and the
  /// interrupt epoch acknowledged before returning.
  std::uint32_t join(comm::Comm& comm);

  /// Every rank ever declared dead (sorted) — the degraded set handed
  /// to placement-capable balancers.
  std::vector<int> dead_ranks() const;

  /// Completed localized recoveries.
  std::uint32_t recoveries() const;

  /// Stale messages drained from mailboxes by the repair sections.
  std::uint64_t drained_messages() const;

 private:
  CheckpointStore* store_;
  comm::WorldState* state_ = nullptr;
  const int ranks_;
  const std::chrono::milliseconds timeout_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Completed-rendezvous counter; waiters block until it advances.
  std::uint64_t round_ = 0;
  int arrived_ = 0;
  /// Outcome of the round that just completed, read by every waiter.
  std::optional<std::uint32_t> restore_step_;
  std::string failure_;
  /// Ranks declared dead since the last repair section (primaries still
  /// to drop) and over the coordinator's whole life.
  std::set<int> newly_dead_;
  std::set<int> all_dead_;
  std::uint32_t recoveries_ = 0;
  std::uint64_t drained_ = 0;
};

}  // namespace picprk::ft
