// Per-driver fault-tolerance options, embedded in par::DriverConfig.
// Pointer-only so that including this header pulls in no machinery;
// drivers with all fields defaulted pay a single branch per step.
#pragma once

#include <cstdint>

namespace picprk::ft {

class FaultInjector;
class CheckpointStore;
class RecoveryCoordinator;

struct FtOptions {
  /// Step-level fault source (kills, stalls); also installed as the
  /// world's message-level hook by the recovery wrapper. Not owned.
  FaultInjector* injector = nullptr;
  /// Snapshot destination; must outlive the world so recovery can read
  /// it after an abort. Not owned.
  CheckpointStore* store = nullptr;
  /// Localized-recovery coordinator (coordinator.hpp). When set, a
  /// driver catching RankKilled declares the victim dead and every rank
  /// joins the rendezvous instead of tearing the world down; null keeps
  /// the rollback-only behaviour. Installed by par::run_resilient under
  /// RecoveryMode::kLocal. Not owned.
  RecoveryCoordinator* coordinator = nullptr;
  /// Checkpoint at the start of every N-th step (0 = never).
  std::uint32_t checkpoint_every = 0;
  /// This run is a recovery attempt: restore from the store's last
  /// consistent checkpoint before stepping.
  bool resume = false;

  bool checkpointing() const { return store != nullptr && checkpoint_every > 0; }
  bool localized() const { return coordinator != nullptr && checkpointing(); }
  bool active() const { return injector != nullptr || checkpointing(); }
};

}  // namespace picprk::ft
