#include "ft/coordinator.hpp"

#include "comm/comm.hpp"
#include "comm/world.hpp"
#include "ft/checkpoint.hpp"
#include "util/assert.hpp"

namespace picprk::ft {

RecoveryCoordinator::RecoveryCoordinator(CheckpointStore* store, int ranks,
                                         int rendezvous_timeout_ms)
    : store_(store), ranks_(ranks), timeout_(rendezvous_timeout_ms) {
  PICPRK_EXPECTS(store != nullptr);
  PICPRK_EXPECTS(ranks >= 1);
  PICPRK_EXPECTS(rendezvous_timeout_ms > 0);
}

void RecoveryCoordinator::attach(comm::WorldState* state) {
  std::scoped_lock lock(mutex_);
  state_ = state;
}

void RecoveryCoordinator::begin_run() {
  std::scoped_lock lock(mutex_);
  arrived_ = 0;
  newly_dead_.clear();
  restore_step_.reset();
  failure_.clear();
}

void RecoveryCoordinator::declare_dead(int rank, std::uint32_t step) {
  {
    std::scoped_lock lock(mutex_);
    PICPRK_EXPECTS(state_ != nullptr);
    PICPRK_EXPECTS(rank >= 0 && rank < ranks_);
    newly_dead_.insert(rank);
    all_dead_.insert(rank);
    (void)step;  // the restore step is decided by the checkpoint store
  }
  // Drop here, not in join()'s serial section: if the rendezvous later
  // times out and the run falls back to full rollback, the stale
  // primary of the dead rank must already be invalid so the rollback
  // restores from the buddy copy. CheckpointStore is mutex-protected.
  store_->drop_primary(rank);
  // Outside the lock: wakes every blocked rank, whose next matching
  // failure makes it unwind into join().
  state_->raise_interrupt();
}

std::uint32_t RecoveryCoordinator::join(comm::Comm& comm) {
  std::unique_lock<std::mutex> lock(mutex_);
  PICPRK_EXPECTS(state_ != nullptr);
  const std::uint64_t round = round_;
  if (++arrived_ == ranks_) {
    // Serial repair section, run by the last arriver while every other
    // rank waits inside join(): no rank thread can send, so the drain
    // below observes the complete residue of the aborted step. Flush
    // the transport FIRST — once its unacked queues are empty the pump
    // thread cannot re-push a retransmission behind the drain.
    if (state_->transport != nullptr) state_->transport->flush();
    for (auto& box : state_->boxes) drained_ += box->drain().size();
    newly_dead_.clear();  // primaries already dropped in declare_dead()
    restore_step_ = store_->consistent_step(ranks_);
    if (restore_step_) {
      failure_.clear();
      ++recoveries_;
    } else {
      failure_ =
          "localized recovery: no consistent checkpoint line survives the "
          "failure (a rank and its buddy may both have died)";
    }
    arrived_ = 0;
    ++round_;
    cv_.notify_all();
  } else {
    const auto deadline = std::chrono::steady_clock::now() + timeout_;
    while (round_ == round) {
      if (state_->abort.load(std::memory_order_acquire)) {
        --arrived_;
        throw comm::WorldAborted{};
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        const int waiting = arrived_--;
        throw RecoveryFailed("localized recovery: rendezvous timed out after " +
                             std::to_string(timeout_.count()) + " ms with " +
                             std::to_string(waiting) + " of " +
                             std::to_string(ranks_) + " ranks arrived");
      }
      cv_.wait_for(lock, std::chrono::milliseconds(5));
    }
  }
  if (!restore_step_) throw RecoveryFailed(failure_);
  const std::uint32_t restore = *restore_step_;
  lock.unlock();
  // Per-thread realignment: collective tag streams restart from zero
  // (legal — the drain above emptied all in-flight traffic) and the
  // handled interrupt epoch stops raising RecvInterrupted.
  comm.reset_collective_sequences();
  comm.acknowledge_interrupt();
  return restore;
}

std::vector<int> RecoveryCoordinator::dead_ranks() const {
  std::scoped_lock lock(mutex_);
  return {all_dead_.begin(), all_dead_.end()};
}

std::uint32_t RecoveryCoordinator::recoveries() const {
  std::scoped_lock lock(mutex_);
  return recoveries_;
}

std::uint64_t RecoveryCoordinator::drained_messages() const {
  std::scoped_lock lock(mutex_);
  return drained_;
}

}  // namespace picprk::ft
