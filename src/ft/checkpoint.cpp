#include "ft/checkpoint.hpp"

#include <algorithm>

namespace picprk::ft {

void CheckpointStore::insert(History& history, std::uint32_t step,
                             std::vector<std::byte> bytes) {
  // Overwrite an existing snapshot at the same step (a re-checkpoint
  // after resume), else prepend and evict the oldest.
  for (auto& entry : history) {
    if (entry.step == step) {
      entry.bytes = std::move(bytes);
      return;
    }
  }
  history.insert(history.begin(), Entry{step, std::move(bytes)});
  std::sort(history.begin(), history.end(),
            [](const Entry& a, const Entry& b) { return a.step > b.step; });
  if (history.size() > kHistoryDepth) history.resize(kHistoryDepth);
}

const CheckpointStore::Entry* CheckpointStore::find(const History& history,
                                                    std::uint32_t step) {
  for (const auto& entry : history) {
    if (entry.step == step) return &entry;
  }
  return nullptr;
}

void CheckpointStore::save(int slot, std::uint32_t step, std::vector<std::byte> bytes) {
  std::scoped_lock lock(mutex_);
  saved_bytes_->add(bytes.size());
  insert(primary_[slot], step, std::move(bytes));
  saves_->add();
}

void CheckpointStore::save_buddy(int owner, std::uint32_t step,
                                 std::vector<std::byte> bytes) {
  std::scoped_lock lock(mutex_);
  saved_bytes_->add(bytes.size());
  insert(buddy_[owner], step, std::move(bytes));
  saves_->add();
}

std::optional<std::uint32_t> CheckpointStore::consistent_step(int slots) const {
  std::scoped_lock lock(mutex_);
  // Candidate steps: everything slot 0 still holds, newest first.
  std::vector<std::uint32_t> candidates;
  auto collect = [&](const std::unordered_map<int, History>& copies, int slot) {
    const auto it = copies.find(slot);
    if (it == copies.end()) return;
    for (const auto& entry : it->second) {
      if (std::find(candidates.begin(), candidates.end(), entry.step) ==
          candidates.end()) {
        candidates.push_back(entry.step);
      }
    }
  };
  collect(primary_, 0);
  collect(buddy_, 0);
  std::sort(candidates.begin(), candidates.end(), std::greater<>());

  for (const std::uint32_t step : candidates) {
    bool everyone = true;
    for (int slot = 0; slot < slots && everyone; ++slot) {
      const auto pit = primary_.find(slot);
      const auto bit = buddy_.find(slot);
      const bool has = (pit != primary_.end() && find(pit->second, step) != nullptr) ||
                       (bit != buddy_.end() && find(bit->second, step) != nullptr);
      everyone = has;
    }
    if (everyone) return step;
  }
  return std::nullopt;
}

std::optional<std::vector<std::byte>> CheckpointStore::load(int slot,
                                                            std::uint32_t step) const {
  std::scoped_lock lock(mutex_);
  if (const auto it = primary_.find(slot); it != primary_.end()) {
    if (const Entry* entry = find(it->second, step)) {
      restores_->add();
      return entry->bytes;
    }
  }
  if (const auto it = buddy_.find(slot); it != buddy_.end()) {
    if (const Entry* entry = find(it->second, step)) {
      restores_->add();
      return entry->bytes;
    }
  }
  return std::nullopt;
}

void CheckpointStore::drop_primary(int slot) {
  std::scoped_lock lock(mutex_);
  primary_.erase(slot);
}

void CheckpointStore::clear() {
  std::scoped_lock lock(mutex_);
  primary_.clear();
  buddy_.clear();
}

std::uint64_t CheckpointStore::stored_bytes() const {
  std::scoped_lock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [slot, history] : primary_) {
    for (const auto& entry : history) total += entry.bytes.size();
  }
  for (const auto& [slot, history] : buddy_) {
    for (const auto& entry : history) total += entry.bytes.size();
  }
  return total;
}

}  // namespace picprk::ft
