#include "ft/fault.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <tuple>

#include "comm/mailbox.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace picprk::ft {

namespace {

/// Upper bound on world size for the per-source sequence table.
constexpr int kMaxRanks = 4096;

bool is_step_fault(FaultKind kind) {
  return kind == FaultKind::Kill || kind == FaultKind::Stall;
}

FaultKind parse_kind(const std::string& name) {
  if (name == "kill") return FaultKind::Kill;
  if (name == "stall") return FaultKind::Stall;
  if (name == "drop") return FaultKind::Drop;
  if (name == "dup") return FaultKind::Duplicate;
  if (name == "delay") return FaultKind::Delay;
  throw std::invalid_argument("fault plan: unknown fault kind '" + name +
                              "' (kill|stall|drop|dup|delay)");
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::Kill: return "kill";
    case FaultKind::Stall: return "stall";
    case FaultKind::Drop: return "drop";
    case FaultKind::Duplicate: return "dup";
    case FaultKind::Delay: return "delay";
  }
  return "?";
}

FaultPlan FaultPlan::parse(const std::string& text, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t end = std::min(text.find(';', pos), text.size());
    const std::string entry = text.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const std::size_t colon = entry.find(':');
    FaultSpec spec;
    spec.kind = parse_kind(entry.substr(0, colon));
    std::size_t p = colon == std::string::npos ? entry.size() : colon + 1;
    while (p < entry.size()) {
      const std::size_t comma = std::min(entry.find(',', p), entry.size());
      const std::string kv = entry.substr(p, comma - p);
      p = comma + 1;
      if (kv.empty()) continue;
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("fault plan: expected key=value, got '" + kv + "'");
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      if (key == "rank") {
        spec.rank = std::stoi(value);
      } else if (key == "step") {
        spec.step = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "ms") {
        spec.ms = value == "inf" ? -1 : std::stoi(value);
      } else if (key == "prob") {
        spec.probability = std::stod(value);
      } else if (key == "src") {
        spec.src = std::stoi(value);
      } else if (key == "dst") {
        spec.dst = std::stoi(value);
      } else {
        throw std::invalid_argument("fault plan: unknown key '" + key + "'");
      }
    }
    if (is_step_fault(spec.kind) && spec.rank < 0) {
      throw std::invalid_argument(std::string("fault plan: ") + to_string(spec.kind) +
                                  " requires rank=");
    }
    if (!is_step_fault(spec.kind) &&
        (spec.probability < 0.0 || spec.probability > 1.0)) {
      throw std::invalid_argument("fault plan: prob must be in [0, 1]");
    }
    plan.specs.push_back(spec);
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      fired_(plan_.specs.size()),
      send_seq_(static_cast<std::size_t>(kMaxRanks), 0),
      dropped_(&metrics_.register_counter("ft/dropped")),
      duplicated_(&metrics_.register_counter("ft/duplicated")),
      delayed_(&metrics_.register_counter("ft/delayed")),
      kills_(&metrics_.register_counter("ft/kills")),
      stalls_(&metrics_.register_counter("ft/stalls")) {}

void FaultInjector::begin_step(int rank, std::uint32_t step,
                               const std::atomic<bool>* abort) {
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (!is_step_fault(spec.kind) || spec.rank != rank || spec.step != step) continue;
    if (fired_[i].exchange(true, std::memory_order_acq_rel)) continue;  // one-shot
    record(FaultEvent{spec.kind, rank, -1, step, 0});
    if (spec.kind == FaultKind::Stall) {
      stalls_->add();
      const bool forever = spec.ms <= 0;
      const auto until =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(spec.ms);
      for (;;) {
        if (abort && abort->load(std::memory_order_acquire)) throw comm::WorldAborted{};
        if (!forever && std::chrono::steady_clock::now() >= until) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    } else {
      kills_->add();
      throw RankKilled(rank, step);
    }
  }
}

comm::FaultDecision FaultInjector::on_send(int src, int dst, int /*tag*/,
                                           std::size_t /*bytes*/) {
  PICPRK_EXPECTS(src >= 0 && src < kMaxRanks);
  // One sequence number per send, shared by all specs: each rank thread
  // is the sole writer of its slot, so the sequence — and therefore the
  // whole fault trace — is a pure function of the plan seed.
  const std::uint64_t seq = send_seq_[static_cast<std::size_t>(src)]++;
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (is_step_fault(spec.kind) || spec.probability <= 0.0) continue;
    if (spec.src >= 0 && spec.src != src) continue;
    if (spec.dst >= 0 && spec.dst != dst) continue;
    const util::CounterRng rng(plan_.seed, i, static_cast<std::uint64_t>(src));
    if (rng.double_at(seq) >= spec.probability) continue;
    record(FaultEvent{spec.kind, src, dst, 0, seq});
    comm::FaultDecision decision;
    switch (spec.kind) {
      case FaultKind::Drop:
        dropped_->add();
        decision.kind = comm::FaultDecision::Kind::Drop;
        break;
      case FaultKind::Duplicate:
        duplicated_->add();
        decision.kind = comm::FaultDecision::Kind::Duplicate;
        break;
      default:
        delayed_->add();
        decision.kind = comm::FaultDecision::Kind::Delay;
        decision.delay_ms = std::max(spec.ms, 1);
        break;
    }
    return decision;  // first matching spec wins
  }
  return comm::FaultDecision{};
}

void FaultInjector::record(FaultEvent event) {
  std::scoped_lock lock(trace_mutex_);
  trace_.push_back(event);
}

std::vector<FaultEvent> FaultInjector::trace() const {
  std::scoped_lock lock(trace_mutex_);
  std::vector<FaultEvent> out = trace_;
  std::sort(out.begin(), out.end(), [](const FaultEvent& a, const FaultEvent& b) {
    return std::tie(a.rank, a.seq, a.step, a.kind) <
           std::tie(b.rank, b.seq, b.step, b.kind);
  });
  return out;
}

}  // namespace picprk::ft
