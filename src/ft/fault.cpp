#include "ft/fault.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <tuple>

#include "comm/mailbox.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace picprk::ft {

namespace {

/// Upper bound on world size for the per-source sequence table.
constexpr int kMaxRanks = 4096;

bool is_step_fault(FaultKind kind) {
  return kind == FaultKind::Kill || kind == FaultKind::Stall;
}

FaultKind parse_kind(const std::string& name) {
  if (name == "kill") return FaultKind::Kill;
  if (name == "stall") return FaultKind::Stall;
  if (name == "drop") return FaultKind::Drop;
  if (name == "dup") return FaultKind::Duplicate;
  if (name == "delay") return FaultKind::Delay;
  throw std::invalid_argument("fault plan: unknown fault kind '" + name +
                              "' (kill|stall|drop|dup|delay)");
}

int parse_int(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  int parsed = 0;
  try {
    parsed = std::stoi(value, &consumed);
  } catch (const std::exception&) {
    consumed = std::string::npos;
  }
  if (consumed != value.size()) {
    throw std::invalid_argument("fault plan: " + key + "= expects an integer, got '" +
                                value + "'");
  }
  return parsed;
}

double parse_prob(const std::string& value) {
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &consumed);
  } catch (const std::exception&) {
    consumed = std::string::npos;
  }
  if (consumed != value.size()) {
    throw std::invalid_argument("fault plan: prob= expects a number, got '" + value +
                                "'");
  }
  return parsed;
}

/// Which keys an entry spelled out explicitly — validation distinguishes
/// "defaulted" from "given a default-looking value".
struct SeenKeys {
  bool rank = false, step = false, ms = false, prob = false, src = false, dst = false;
};

/// Per-spec semantic validation; every rejection names the offending
/// construct so a CLI typo fails loudly at parse time instead of
/// silently producing a plan that never fires (mirrors the lb spec
/// parser's check_keys).
void validate_spec(const FaultSpec& spec, const SeenKeys& seen) {
  const std::string kind{to_string(spec.kind)};
  if (is_step_fault(spec.kind)) {
    if (!seen.rank) {
      throw std::invalid_argument("fault plan: " + kind + " requires rank=");
    }
    if (spec.rank < 0) {
      throw std::invalid_argument("fault plan: " + kind + " rank= must be >= 0, got " +
                                  std::to_string(spec.rank));
    }
    if (seen.prob) {
      throw std::invalid_argument("fault plan: " + kind +
                                  " fires at an exact (rank, step) and does not take "
                                  "prob= (message faults only)");
    }
    if (seen.src || seen.dst) {
      throw std::invalid_argument("fault plan: " + kind +
                                  " does not take src=/dst= (message faults only)");
    }
    if (spec.kind == FaultKind::Kill && seen.ms) {
      throw std::invalid_argument(
          "fault plan: kill does not take ms= (a killed rank never comes back; "
          "use stall for a timed hang)");
    }
  } else {
    if (!seen.prob) {
      throw std::invalid_argument("fault plan: " + kind + " requires prob=");
    }
    if (spec.probability < 0.0 || spec.probability > 1.0) {
      throw std::invalid_argument("fault plan: prob must be in [0, 1]");
    }
    if (seen.rank) {
      throw std::invalid_argument("fault plan: " + kind +
                                  " targets messages, not ranks — filter endpoints "
                                  "with src=/dst= instead of rank=");
    }
    if (seen.step) {
      throw std::invalid_argument("fault plan: " + kind +
                                  " does not take step= (message faults fire "
                                  "probabilistically per send)");
    }
    if (seen.ms && spec.kind != FaultKind::Delay) {
      throw std::invalid_argument("fault plan: " + kind +
                                  " does not take ms= (only stall and delay do)");
    }
    if (spec.kind == FaultKind::Delay && spec.ms < 0) {
      throw std::invalid_argument(
          "fault plan: delay ms= must be a finite number of milliseconds "
          "('inf' is only valid for stall)");
    }
    if (seen.src && spec.src < 0) {
      throw std::invalid_argument("fault plan: src= must be >= 0 (omit the key to "
                                  "match any sender), got " +
                                  std::to_string(spec.src));
    }
    if (seen.dst && spec.dst < 0) {
      throw std::invalid_argument("fault plan: dst= must be >= 0 (omit the key to "
                                  "match any receiver), got " +
                                  std::to_string(spec.dst));
    }
  }
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::Kill: return "kill";
    case FaultKind::Stall: return "stall";
    case FaultKind::Drop: return "drop";
    case FaultKind::Duplicate: return "dup";
    case FaultKind::Delay: return "delay";
  }
  return "?";
}

FaultPlan FaultPlan::parse(const std::string& text, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t end = std::min(text.find(';', pos), text.size());
    const std::string entry = text.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const std::size_t colon = entry.find(':');
    FaultSpec spec;
    spec.kind = parse_kind(entry.substr(0, colon));
    SeenKeys seen;
    std::size_t p = colon == std::string::npos ? entry.size() : colon + 1;
    while (p < entry.size()) {
      const std::size_t comma = std::min(entry.find(',', p), entry.size());
      const std::string kv = entry.substr(p, comma - p);
      p = comma + 1;
      if (kv.empty()) continue;
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("fault plan: expected key=value, got '" + kv + "'");
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      if (key == "rank") {
        spec.rank = parse_int(key, value);
        seen.rank = true;
      } else if (key == "step") {
        const int step = parse_int(key, value);
        if (step < 0) {
          throw std::invalid_argument("fault plan: step= must be >= 0, got " + value);
        }
        spec.step = static_cast<std::uint32_t>(step);
        seen.step = true;
      } else if (key == "ms") {
        spec.ms = value == "inf" ? -1 : parse_int(key, value);
        if (value != "inf" && spec.ms < 0) {
          throw std::invalid_argument("fault plan: ms= must be >= 0 or 'inf', got " +
                                      value);
        }
        seen.ms = true;
      } else if (key == "prob") {
        spec.probability = parse_prob(value);
        seen.prob = true;
      } else if (key == "src") {
        spec.src = parse_int(key, value);
        seen.src = true;
      } else if (key == "dst") {
        spec.dst = parse_int(key, value);
        seen.dst = true;
      } else {
        throw std::invalid_argument("fault plan: unknown key '" + key + "'");
      }
    }
    validate_spec(spec, seen);
    plan.specs.push_back(spec);
  }
  // Cross-spec checks: step faults are one-shot latches keyed by
  // (rank, step), so two targeting the same point would race for the
  // same firing slot — reject the plan instead of firing one silently.
  for (std::size_t i = 0; i < plan.specs.size(); ++i) {
    const FaultSpec& a = plan.specs[i];
    if (!is_step_fault(a.kind)) continue;
    for (std::size_t j = i + 1; j < plan.specs.size(); ++j) {
      const FaultSpec& b = plan.specs[j];
      if (!is_step_fault(b.kind) || a.rank != b.rank || a.step != b.step) continue;
      throw std::invalid_argument(
          std::string("fault plan: conflicting step faults — ") + to_string(a.kind) +
          " and " + to_string(b.kind) + " both target rank " + std::to_string(a.rank) +
          " at step " + std::to_string(a.step));
    }
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      fired_(plan_.specs.size()),
      send_seq_(static_cast<std::size_t>(kMaxRanks), 0),
      dropped_(&metrics_.register_counter("ft/dropped")),
      duplicated_(&metrics_.register_counter("ft/duplicated")),
      delayed_(&metrics_.register_counter("ft/delayed")),
      kills_(&metrics_.register_counter("ft/kills")),
      stalls_(&metrics_.register_counter("ft/stalls")) {}

void FaultInjector::begin_step(int rank, std::uint32_t step,
                               const std::atomic<bool>* abort) {
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (!is_step_fault(spec.kind) || spec.rank != rank || spec.step != step) continue;
    if (fired_[i].exchange(true, std::memory_order_acq_rel)) continue;  // one-shot
    record(FaultEvent{spec.kind, rank, -1, step, 0});
    if (spec.kind == FaultKind::Stall) {
      stalls_->add();
      const bool forever = spec.ms <= 0;
      const auto until =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(spec.ms);
      for (;;) {
        if (abort && abort->load(std::memory_order_acquire)) throw comm::WorldAborted{};
        if (!forever && std::chrono::steady_clock::now() >= until) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    } else {
      kills_->add();
      throw RankKilled(rank, step);
    }
  }
}

comm::FaultDecision FaultInjector::on_send(int src, int dst, int /*tag*/,
                                           std::size_t /*bytes*/) {
  PICPRK_EXPECTS(src >= 0 && src < kMaxRanks);
  // One sequence number per send, shared by all specs: each rank thread
  // is the sole writer of its slot, so the sequence — and therefore the
  // whole fault trace — is a pure function of the plan seed.
  const std::uint64_t seq = send_seq_[static_cast<std::size_t>(src)]++;
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (is_step_fault(spec.kind) || spec.probability <= 0.0) continue;
    if (spec.src >= 0 && spec.src != src) continue;
    if (spec.dst >= 0 && spec.dst != dst) continue;
    const util::CounterRng rng(plan_.seed, i, static_cast<std::uint64_t>(src));
    if (rng.double_at(seq) >= spec.probability) continue;
    record(FaultEvent{spec.kind, src, dst, 0, seq});
    comm::FaultDecision decision;
    switch (spec.kind) {
      case FaultKind::Drop:
        dropped_->add();
        decision.kind = comm::FaultDecision::Kind::Drop;
        break;
      case FaultKind::Duplicate:
        duplicated_->add();
        decision.kind = comm::FaultDecision::Kind::Duplicate;
        break;
      default:
        delayed_->add();
        decision.kind = comm::FaultDecision::Kind::Delay;
        decision.delay_ms = std::max(spec.ms, 1);
        break;
    }
    return decision;  // first matching spec wins
  }
  return comm::FaultDecision{};
}

void FaultInjector::record(FaultEvent event) {
  std::scoped_lock lock(trace_mutex_);
  trace_.push_back(event);
}

std::vector<FaultEvent> FaultInjector::trace() const {
  std::scoped_lock lock(trace_mutex_);
  std::vector<FaultEvent> out = trace_;
  std::sort(out.begin(), out.end(), [](const FaultEvent& a, const FaultEvent& b) {
    return std::tie(a.rank, a.seq, a.step, a.kind) <
           std::tie(b.rank, b.seq, b.step, b.kind);
  });
  return out;
}

}  // namespace picprk::ft
