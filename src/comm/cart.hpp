// 2-D Cartesian process topology with periodic boundaries and balanced
// block ranges — the decomposition scaffolding shared by the parallel PIC
// drivers (paper §IV-A: "arrange the P processors in a 2D Px×Py grid").
#pragma once

#include <cstdint>
#include <utility>

namespace picprk::comm {

/// Balanced 1-D block range: splits n items over p parts; part i gets
/// floor(n/p) items plus one extra for the first n%p parts.
struct BlockRange {
  std::int64_t lo = 0;  ///< inclusive
  std::int64_t hi = 0;  ///< exclusive

  std::int64_t count() const { return hi - lo; }
  bool contains(std::int64_t v) const { return v >= lo && v < hi; }
};

BlockRange block_range(std::int64_t n, int parts, int index);

/// Which part owns item `v` under the balanced block split (inverse of
/// block_range); O(1).
int block_owner(std::int64_t n, int parts, std::int64_t v);

/// Factorization of P into Px × Py with Px >= Py and the pair as close
/// to square as possible (minimises subdomain perimeter, §IV-B).
std::pair<int, int> near_square_factors(int p);

/// 2-D periodic Cartesian topology over `p` ranks.
class Cart2D {
 public:
  /// Chooses Px × Py = near_square_factors(p).
  explicit Cart2D(int p);
  /// Explicit process-grid shape; px*py must equal p.
  Cart2D(int px, int py);

  int px() const { return px_; }
  int py() const { return py_; }
  int size() const { return px_ * py_; }

  /// Rank of the process at grid coordinates (cx, cy); row-major in x.
  int rank_of(int cx, int cy) const;

  /// Grid coordinates of `rank`.
  std::pair<int, int> coords_of(int rank) const;

  /// Periodic neighbor of `rank` displaced by (dx, dy) grid steps.
  int neighbor(int rank, int dx, int dy) const;

 private:
  int px_;
  int py_;
};

}  // namespace picprk::comm
