#include "comm/mailbox.hpp"

#include <sstream>
#include <utility>

#include "comm/reliable.hpp"

namespace picprk::comm {

namespace {

/// True when the recovery coordinator has raised the interrupt epoch
/// past the caller's baseline.
bool interrupted(const Mailbox::WaitParams& wait) {
  return wait.interrupt != nullptr &&
         wait.interrupt->load(std::memory_order_acquire) != wait.interrupt_baseline;
}

/// True when the deadline expiry should be deferred: the reliable
/// transport still has in-budget retransmissions addressed to us, so
/// the awaited message may yet arrive in-band.
bool retries_in_flight(const Mailbox::WaitParams& wait) {
  return wait.transport != nullptr && wait.self >= 0 &&
         wait.transport->retry_pending_to(wait.self);
}

/// RAII publisher of a rank's blocked state. Constructed just before the
/// first cv wait (the fast path never touches the registry); the odd
/// generation marks the rank blocked until destruction restores even.
class BlockScope {
 public:
  BlockScope(BlockedSlot* slot, int kind, int context, int source, int tag)
      : slot_(slot) {
    if (!slot_) return;
    slot_->context.store(context, std::memory_order_relaxed);
    slot_->source.store(source, std::memory_order_relaxed);
    slot_->tag.store(tag, std::memory_order_relaxed);
    slot_->kind.store(kind, std::memory_order_relaxed);
    slot_->generation.fetch_add(1, std::memory_order_release);  // -> odd
  }

  ~BlockScope() {
    if (!slot_) return;
    slot_->kind.store(0, std::memory_order_relaxed);
    slot_->generation.fetch_add(1, std::memory_order_release);  // -> even
  }

  BlockScope(const BlockScope&) = delete;
  BlockScope& operator=(const BlockScope&) = delete;

 private:
  BlockedSlot* slot_;
};

[[noreturn]] void throw_timeout(const char* op, std::chrono::milliseconds deadline,
                                int context, int source, int tag) {
  std::ostringstream os;
  os << "threadcomm " << op << " timed out after " << deadline.count()
     << " ms (context " << context << ", source ";
  if (source == kAnySource) {
    os << "ANY";
  } else {
    os << source;
  }
  os << ", tag ";
  if (tag == kAnyTag) {
    os << "ANY";
  } else {
    os << tag;
  }
  os << ')';
  throw CommTimeout(os.str(), context, source, tag);
}

}  // namespace

std::optional<Message> Mailbox::take_match(int context, int source, int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, context, source, tag)) {
      Message msg = std::move(*it);
      queue_.erase(it);
      return msg;
    }
  }
  return std::nullopt;
}

std::optional<Status> Mailbox::find_match(int context, int source, int tag) const {
  for (const auto& m : queue_) {
    if (matches(m, context, source, tag)) {
      return Status{m.source, m.tag, m.payload.size()};
    }
  }
  return std::nullopt;
}

void Mailbox::push(Message msg) {
  {
    util::LockGuard lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::pop(int context, int source, int tag, const WaitParams& wait) {
  util::LockGuard lock(mutex_);
  std::optional<BlockScope> blocked;
  auto deadline_at = std::chrono::steady_clock::now() + wait.deadline;
  for (;;) {
    if (auto msg = take_match(context, source, tag)) return std::move(*msg);
    if (wait.abort && wait.abort->load(std::memory_order_acquire)) throw WorldAborted{};
    if (interrupted(wait)) throw RecvInterrupted{};
    if (!blocked) blocked.emplace(wait.slot, 1, context, source, tag);
    if (wait.deadline.count() > 0) {
      if (cv_.wait_until(mutex_, deadline_at) == std::cv_status::timeout) {
        // Re-scan once: a matching push may have raced the timeout.
        if (auto msg = take_match(context, source, tag)) return std::move(*msg);
        if (wait.abort && wait.abort->load(std::memory_order_acquire))
          throw WorldAborted{};
        if (interrupted(wait)) throw RecvInterrupted{};
        if (retries_in_flight(wait)) {
          // The transport is still retrying traffic to us; re-arm the
          // deadline so the timeout only fires once the budget is gone.
          deadline_at = std::chrono::steady_clock::now() + wait.deadline;
          continue;
        }
        throw_timeout("recv", wait.deadline, context, source, tag);
      }
    } else {
      cv_.wait(mutex_);
    }
  }
}

std::optional<Message> Mailbox::try_pop(int context, int source, int tag) {
  util::LockGuard lock(mutex_);
  return take_match(context, source, tag);
}

std::optional<Status> Mailbox::probe(int context, int source, int tag) const {
  util::LockGuard lock(mutex_);
  return find_match(context, source, tag);
}

Status Mailbox::probe_wait(int context, int source, int tag, const WaitParams& wait) {
  util::LockGuard lock(mutex_);
  std::optional<BlockScope> blocked;
  auto deadline_at = std::chrono::steady_clock::now() + wait.deadline;
  for (;;) {
    if (auto status = find_match(context, source, tag)) return *status;
    if (wait.abort && wait.abort->load(std::memory_order_acquire)) throw WorldAborted{};
    if (interrupted(wait)) throw RecvInterrupted{};
    if (!blocked) blocked.emplace(wait.slot, 2, context, source, tag);
    if (wait.deadline.count() > 0) {
      if (cv_.wait_until(mutex_, deadline_at) == std::cv_status::timeout) {
        if (auto status = find_match(context, source, tag)) return *status;
        if (wait.abort && wait.abort->load(std::memory_order_acquire))
          throw WorldAborted{};
        if (interrupted(wait)) throw RecvInterrupted{};
        if (retries_in_flight(wait)) {
          deadline_at = std::chrono::steady_clock::now() + wait.deadline;
          continue;
        }
        throw_timeout("probe", wait.deadline, context, source, tag);
      }
    } else {
      cv_.wait(mutex_);
    }
  }
}

std::size_t Mailbox::queued() const {
  util::LockGuard lock(mutex_);
  return queue_.size();
}

std::vector<Message> Mailbox::drain() {
  util::LockGuard lock(mutex_);
  std::vector<Message> out(std::make_move_iterator(queue_.begin()),
                           std::make_move_iterator(queue_.end()));
  queue_.clear();
  return out;
}

void Mailbox::notify_abort() { cv_.notify_all(); }

}  // namespace picprk::comm
