#include "comm/mailbox.hpp"

namespace picprk::comm {

void Mailbox::push(Message msg) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::pop(int context, int source, int tag, const std::atomic<bool>& abort) {
  std::unique_lock lock(mutex_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, context, source, tag)) {
        Message msg = std::move(*it);
        queue_.erase(it);
        return msg;
      }
    }
    if (abort.load(std::memory_order_acquire)) throw WorldAborted{};
    cv_.wait(lock);
  }
}

std::optional<Status> Mailbox::probe(int context, int source, int tag) const {
  std::scoped_lock lock(mutex_);
  for (const auto& m : queue_) {
    if (matches(m, context, source, tag)) {
      return Status{m.source, m.tag, m.payload.size()};
    }
  }
  return std::nullopt;
}

Status Mailbox::probe_wait(int context, int source, int tag,
                           const std::atomic<bool>& abort) {
  std::unique_lock lock(mutex_);
  for (;;) {
    for (const auto& m : queue_) {
      if (matches(m, context, source, tag)) {
        return Status{m.source, m.tag, m.payload.size()};
      }
    }
    if (abort.load(std::memory_order_acquire)) throw WorldAborted{};
    cv_.wait(lock);
  }
}

std::size_t Mailbox::queued() const {
  std::scoped_lock lock(mutex_);
  return queue_.size();
}

void Mailbox::notify_abort() { cv_.notify_all(); }

}  // namespace picprk::comm
