#include "comm/reliable.hpp"

#include <algorithm>
#include <utility>

#include "comm/mailbox.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace picprk::comm {

ReliableTransport::ReliableTransport(int size, const ReliabilityOptions& options,
                                     const std::vector<std::unique_ptr<Mailbox>>* boxes,
                                     std::atomic<std::uint64_t>* bytes_sent,
                                     std::atomic<std::uint64_t>* messages_sent)
    : size_(size),
      options_(options),
      boxes_(boxes),
      bytes_sent_(bytes_sent),
      messages_sent_(messages_sent),
      channels_(static_cast<std::size_t>(size) * static_cast<std::size_t>(size)),
      pending_to_(static_cast<std::size_t>(size)) {
  PICPRK_EXPECTS(size >= 1);
  PICPRK_EXPECTS(options.rto_ms > 0);
  PICPRK_EXPECTS(options.max_retransmits >= 1);
}

void ReliableTransport::push_locked(int dst, Message msg) {
  bytes_sent_->fetch_add(msg.payload.size(), std::memory_order_relaxed);
  messages_sent_->fetch_add(1, std::memory_order_relaxed);
  (*boxes_)[static_cast<std::size_t>(dst)]->push(std::move(msg));
}

void ReliableTransport::prune_locked(Channel& ch, int dst, std::uint64_t acked_up_to) {
  while (!ch.unacked.empty() && ch.unacked.front().seq <= acked_up_to) {
    ch.unacked.pop_front();
    pending_to_[static_cast<std::size_t>(dst)].fetch_sub(1, std::memory_order_acq_rel);
    ++stats_.acked;
  }
}

void ReliableTransport::deliver_locked(int src, int dst, Message msg) {
  // The piggybacked cumulative ack covers the reverse (dst -> src)
  // stream: everything src has already taken off its mailbox.
  prune_locked(chan(dst, src), src, msg.ack);

  Channel& fwd = chan(src, dst);
  if (msg.seq <= fwd.rx_delivered) {
    ++stats_.dup_dropped;  // dedup-window hit: already delivered
    return;
  }
  if (msg.seq == fwd.rx_delivered + 1) {
    fwd.rx_delivered = msg.seq;
    push_locked(dst, std::move(msg));
    // Flush the consecutive run the arrival unblocked.
    auto it = fwd.reorder.begin();
    while (it != fwd.reorder.end() && it->first == fwd.rx_delivered + 1) {
      fwd.rx_delivered = it->first;
      push_locked(dst, std::move(it->second));
      it = fwd.reorder.erase(it);
    }
    return;
  }
  // A gap precedes this message (an earlier copy is still in flight or
  // was dropped); stash until the retransmit pump fills the gap.
  const auto [it, inserted] = fwd.reorder.emplace(msg.seq, std::move(msg));
  (void)it;
  if (inserted) {
    ++stats_.reordered;
  } else {
    ++stats_.dup_dropped;
  }
}

void ReliableTransport::send(int src, int dst, Message msg, int copies) {
  PICPRK_EXPECTS(src >= 0 && src < size_);
  PICPRK_EXPECTS(dst >= 0 && dst < size_);
  PICPRK_EXPECTS(copies >= 0 && copies <= 2);
  std::scoped_lock lock(mutex_);
  Channel& fwd = chan(src, dst);
  msg.seq = ++fwd.tx_next;
  msg.ack = chan(dst, src).rx_delivered;
  msg.flags |= kFlagReliable;

  Unacked entry;
  entry.seq = msg.seq;
  entry.msg = msg;  // full copy retained until acknowledged
  entry.last_send = Clock::now();
  fwd.unacked.push_back(std::move(entry));
  pending_to_[static_cast<std::size_t>(dst)].fetch_add(1, std::memory_order_acq_rel);

  if (copies >= 2) {
    Message dup = msg;
    dup.flags |= kFlagInjectedDup;
    deliver_locked(src, dst, std::move(dup));
  }
  if (copies >= 1) deliver_locked(src, dst, std::move(msg));
  // copies == 0: dropped on the wire; the retained copy heals it.
}

ReliableTransport::Clock::duration ReliableTransport::backoff(
    std::size_t chan_index, std::uint64_t seq, int attempts) const {
  const int shift = std::min(attempts, 6);  // cap the exponential at 64x
  const std::int64_t base_ms = static_cast<std::int64_t>(options_.rto_ms) << shift;
  const util::CounterRng rng(options_.jitter_seed, chan_index, seq);
  const double jitter =
      rng.double_at(static_cast<std::uint64_t>(attempts)) * 0.25 *
      static_cast<double>(base_ms);
  return std::chrono::milliseconds(base_ms + static_cast<std::int64_t>(jitter));
}

void ReliableTransport::pump_once() {
  std::scoped_lock lock(mutex_);
  const auto now = Clock::now();
  for (int src = 0; src < size_; ++src) {
    for (int dst = 0; dst < size_; ++dst) {
      Channel& ch = chan(src, dst);
      if (ch.unacked.empty()) continue;
      // In-process shortcut for lost acks: the channel's own rx cursor
      // is ground truth for what the receiver has taken.
      prune_locked(ch, dst, ch.rx_delivered);
      const std::size_t chan_index =
          static_cast<std::size_t>(src) * static_cast<std::size_t>(size_) +
          static_cast<std::size_t>(dst);
      for (auto it = ch.unacked.begin(); it != ch.unacked.end();) {
        Unacked& u = *it;
        if (now - u.last_send < backoff(chan_index, u.seq, u.attempts)) {
          ++it;
          continue;
        }
        if (u.attempts >= options_.max_retransmits) {
          // Budget exhausted: give up so the receiver's CommTimeout can
          // finally surface the suspected-permanent failure.
          ++stats_.abandoned;
          pending_to_[static_cast<std::size_t>(dst)].fetch_sub(
              1, std::memory_order_acq_rel);
          it = ch.unacked.erase(it);
          continue;
        }
        ++u.attempts;
        u.last_send = now;
        ++stats_.retransmits;
        if (!options_.lose_retransmits) {
          Message copy = u.msg;
          copy.flags |= kFlagRetransmit;
          copy.ack = chan(dst, src).rx_delivered;  // refresh the piggyback
          deliver_locked(src, dst, std::move(copy));
        }
        ++it;
      }
    }
  }
}

void ReliableTransport::flush() {
  std::scoped_lock lock(mutex_);
  for (Channel& ch : channels_) {
    ch.unacked.clear();
    ch.reorder.clear();
    // Fast-forward the stream past every abandoned sequence number:
    // nothing below tx_next can arrive any more (all copies are gone),
    // so the next send must be the next in-order delivery.
    ch.rx_delivered = ch.tx_next;
  }
  for (auto& pending : pending_to_) pending.store(0, std::memory_order_release);
}

TransportStats ReliableTransport::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace picprk::comm
