// Nonblocking receive requests for threadcomm, mirroring MPI_Irecv /
// MPI_Test / MPI_Wait. Sends in threadcomm are buffered and complete
// immediately (like MPI_Bsend), so only the receive side needs a request
// object: post an irecv, overlap local work (e.g. moving interior
// particles), then wait for the immigrants.
#pragma once

#include <optional>
#include <vector>

#include "comm/comm.hpp"

namespace picprk::comm {

/// Handle to a pending typed receive. Move-only; must be waited on (or
/// abandoned — an unconsumed matching message then stays queued, exactly
/// like a never-posted MPI receive).
template <typename T>
class RecvRequest {
 public:
  RecvRequest(Comm& comm, int src, int tag) : comm_(&comm), src_(src), tag_(tag) {}

  /// True when a matching message is available; does not consume it.
  bool test() {
    if (done_) return true;
    return comm_->iprobe(src_, tag_).has_value();
  }

  /// Blocks until the message arrives and returns it. Idempotent: a
  /// second wait returns the same data.
  const std::vector<T>& wait() {
    if (!done_) {
      data_ = comm_->recv<T>(src_, tag_, &status_);
      done_ = true;
    }
    return data_;
  }

  /// Envelope of the completed receive (valid after wait()).
  const Status& status() const { return status_; }

 private:
  Comm* comm_;
  int src_;
  int tag_;
  bool done_ = false;
  std::vector<T> data_;
  Status status_{};
};

/// Posts a nonblocking typed receive.
template <typename T>
RecvRequest<T> irecv(Comm& comm, int src, int tag) {
  return RecvRequest<T>(comm, src, tag);
}

/// Waits on a set of requests in any completion order (MPI_Waitall).
template <typename T>
std::vector<std::vector<T>> wait_all(std::vector<RecvRequest<T>>& requests) {
  std::vector<std::vector<T>> results;
  results.reserve(requests.size());
  for (auto& r : requests) results.push_back(r.wait());
  return results;
}

}  // namespace picprk::comm
