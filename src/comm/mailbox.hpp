// Per-rank mailbox with MPI-style envelope matching: a recv with
// (context, source|ANY, tag|ANY) takes the *earliest* matching message,
// which gives the per-(source,tag) FIFO ordering MPI guarantees.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "comm/message.hpp"

namespace picprk::comm {

/// Thrown out of blocking operations when the world has been aborted
/// (another rank threw). Prevents deadlocks in tests and drivers.
class WorldAborted : public std::runtime_error {
 public:
  WorldAborted() : std::runtime_error("threadcomm world aborted by another rank") {}
};

class Mailbox {
 public:
  /// Enqueues a message and wakes matching receivers.
  void push(Message msg);

  /// Blocks until a message matching (context, source, tag) is available
  /// and removes it. Throws WorldAborted if the abort flag fires.
  Message pop(int context, int source, int tag, const std::atomic<bool>& abort);

  /// Non-destructive match test; returns envelope info of the earliest
  /// matching message, or nullopt if none is queued right now.
  std::optional<Status> probe(int context, int source, int tag) const;

  /// Blocking probe.
  Status probe_wait(int context, int source, int tag, const std::atomic<bool>& abort);

  /// Number of queued messages (test/diagnostic use).
  std::size_t queued() const;

  /// Wakes all waiters so they can observe the abort flag.
  void notify_abort();

 private:
  static bool matches(const Message& m, int context, int source, int tag) {
    return m.context == context && (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace picprk::comm
