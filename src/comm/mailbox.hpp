// Per-rank mailbox with MPI-style envelope matching: a recv with
// (context, source|ANY, tag|ANY) takes the *earliest* matching message,
// which gives the per-(source,tag) FIFO ordering MPI guarantees.
//
// Blocking waits are watchdog-aware: they honour the world abort flag,
// an optional per-call deadline (a hang becomes a typed CommTimeout
// instead of a stuck process), and publish the caller's blocked state to
// a registry the world-level deadlock detector reads.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/message.hpp"
#include "util/thread_annotations.hpp"

namespace picprk::comm {

/// Thrown out of blocking operations when the world has been aborted
/// (another rank threw). Prevents deadlocks in tests and drivers.
class WorldAborted : public std::runtime_error {
 public:
  WorldAborted() : std::runtime_error("threadcomm world aborted by another rank") {}
};

/// Thrown out of blocking operations when the recovery coordinator
/// raises the world's interrupt epoch: every surviving rank unwinds to
/// its driver's recovery handler and rendezvouses there. Messages that
/// are already deliverable are still delivered first (the interrupt is
/// only checked once matching fails), so e.g. a buddy-checkpoint copy
/// pushed before the raise is never lost to the interrupt.
class RecvInterrupted : public std::runtime_error {
 public:
  RecvInterrupted()
      : std::runtime_error("threadcomm recv interrupted for localized recovery") {}
};

/// Thrown out of a blocking recv/probe when the configured deadline
/// expires before a matching message arrives — the watchdog's per-call
/// conversion of a hang into a typed, catchable error.
class CommTimeout : public std::runtime_error {
 public:
  CommTimeout(const std::string& what, int context, int source, int tag)
      : std::runtime_error(what), context_(context), source_(source), tag_(tag) {}

  int context() const noexcept { return context_; }
  /// Requested source (world rank, or kAnySource).
  int source() const noexcept { return source_; }
  int tag() const noexcept { return tag_; }

 private:
  int context_;
  int source_;
  int tag_;
};

/// One rank's entry in the world's blocked-state registry. `generation`
/// is bumped when a rank enters (odd) and leaves (even) a blocking wait;
/// the deadlock detector declares a deadlock when every live rank's
/// generation is odd and unchanged across a full detection window.
struct BlockedSlot {
  std::atomic<std::uint64_t> generation{0};
  /// 0 = running, 1 = blocked in recv, 2 = blocked in probe,
  /// -1 = finished (returned from rank_main).
  std::atomic<int> kind{0};
  std::atomic<int> context{0};
  std::atomic<int> source{0};
  std::atomic<int> tag{0};
};

class ReliableTransport;

class Mailbox {
 public:
  /// Parameters of a blocking wait, bundled so call sites stay stable as
  /// watchdog features grow.
  struct WaitParams {
    const std::atomic<bool>* abort = nullptr;
    /// Zero = wait forever (legacy behaviour).
    std::chrono::milliseconds deadline{0};
    /// Registry entry of the waiting rank (may be null).
    BlockedSlot* slot = nullptr;
    /// Reliable transport of the world (null = off). A deadline expiry
    /// is deferred — the deadline re-arms — while the transport still
    /// has retransmit budget for traffic addressed to `self`, so
    /// CommTimeout only fires once in-band retries are exhausted.
    const ReliableTransport* transport = nullptr;
    /// World rank of the waiting thread (for retry_pending_to).
    int self = -1;
    /// Recovery-interrupt epoch of the world (null = never interrupts).
    /// When it differs from `interrupt_baseline`, blocked calls throw
    /// RecvInterrupted *after* failing to match — deliverable messages
    /// win over the interrupt.
    const std::atomic<std::uint64_t>* interrupt = nullptr;
    std::uint64_t interrupt_baseline = 0;
  };

  /// Enqueues a message and wakes matching receivers.
  void push(Message msg);

  /// Blocks until a message matching (context, source, tag) is available
  /// and removes it. Throws WorldAborted if the abort flag fires and
  /// CommTimeout if the deadline expires first.
  Message pop(int context, int source, int tag, const WaitParams& wait);

  /// Nonblocking pop: removes and returns the earliest message matching
  /// (context, source, tag) if one is queued right now, else nullopt.
  /// Never waits — the async engine's try-drain progress primitive.
  std::optional<Message> try_pop(int context, int source, int tag);

  /// Non-destructive match test; returns envelope info of the earliest
  /// matching message, or nullopt if none is queued right now.
  std::optional<Status> probe(int context, int source, int tag) const;

  /// Blocking probe with the same abort/deadline semantics as pop.
  Status probe_wait(int context, int source, int tag, const WaitParams& wait);

  /// Number of queued messages (test/diagnostic use).
  std::size_t queued() const;

  /// Removes and returns everything queued — used by World::run to clear
  /// residual messages after an aborted run instead of leaking them into
  /// the next one.
  std::vector<Message> drain();

  /// Wakes all waiters so they can observe the abort flag.
  void notify_abort();

 private:
  static bool matches(const Message& m, int context, int source, int tag) {
    return m.context == context && (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  /// Removes and returns the earliest matching message, if any queued.
  std::optional<Message> take_match(int context, int source, int tag)
      PICPRK_REQUIRES(mutex_);

  /// Envelope of the earliest matching message, without consuming it.
  std::optional<Status> find_match(int context, int source, int tag) const
      PICPRK_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<Message> queue_ PICPRK_GUARDED_BY(mutex_);
};

}  // namespace picprk::comm
