#include "comm/world.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <thread>

#include "comm/comm.hpp"
#include "util/assert.hpp"
#include "util/first_error.hpp"
#include "util/log.hpp"

namespace picprk::comm {

namespace {

/// Human-readable blocked-location line for one registry slot.
void describe_slot(std::ostringstream& os, int rank, const BlockedSlot& slot) {
  const int kind = slot.kind.load(std::memory_order_relaxed);
  os << "  rank " << rank << ": ";
  if (kind == -1) {
    os << "finished";
  } else if (kind == 0) {
    os << "running (not blocked)";
  } else {
    os << "blocked in " << (kind == 1 ? "recv" : "probe") << "(context="
       << slot.context.load(std::memory_order_relaxed) << ", source=";
    const int src = slot.source.load(std::memory_order_relaxed);
    if (src == kAnySource) {
      os << "ANY";
    } else {
      os << src;
    }
    os << ", tag=";
    const int tag = slot.tag.load(std::memory_order_relaxed);
    if (tag == kAnyTag) {
      os << "ANY";
    } else {
      os << tag;
    }
    os << ')';
  }
  os << '\n';
}

}  // namespace

WorldState::WorldState(int size_in, const WorldOptions& options_in)
    : size(size_in), options(options_in), blocked(static_cast<std::size_t>(size_in)) {
  boxes.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) boxes.push_back(std::make_unique<Mailbox>());
  if (options.reliable.enabled) {
    transport = std::make_unique<ReliableTransport>(size, options.reliable, &boxes,
                                                    &bytes_sent, &messages_sent);
  }
}

void WorldState::signal_abort() {
  abort.store(true, std::memory_order_release);
  for (auto& box : boxes) box->notify_abort();
}

void WorldState::raise_interrupt() {
  interrupt_epoch.fetch_add(1, std::memory_order_acq_rel);
  for (auto& box : boxes) box->notify_abort();
}

World::World(int size) : World(size, WorldOptions{}) {}

World::World(int size, const WorldOptions& options) : size_(size) {
  PICPRK_EXPECTS(size >= 1);
  PICPRK_EXPECTS(options.timeout_ms >= 0);
  PICPRK_EXPECTS(options.deadlock_ms >= 0);
  state_ = std::make_shared<WorldState>(size, options);
}

void World::run(const std::function<void(Comm&)>& rank_main) {
  // Mailboxes must be empty between runs: a correct program consumes
  // everything it is sent, and leftovers would corrupt message matching
  // in this run. (After an abort the previous run() already drained.)
  if (state_->options.check_clean_mailboxes) {
    for (int r = 0; r < size_; ++r) {
      const std::size_t queued = state_->boxes[static_cast<std::size_t>(r)]->queued();
      PICPRK_ASSERT_MSG(queued == 0,
                        "World::run entered with " + std::to_string(queued) +
                            " undelivered message(s) in rank " + std::to_string(r) +
                            "'s mailbox — the previous run leaked messages");
    }
  }

  state_->abort.store(false, std::memory_order_release);
  for (auto& slot : state_->blocked) slot.kind.store(0, std::memory_order_relaxed);

  util::FirstError first_error;
  auto record_error = [&](std::exception_ptr error) {
    first_error.record(std::move(error));
    state_->signal_abort();
  };

  // Deadlock detector: fires when every live rank stays blocked with no
  // mailbox progress (generations unchanged) for a full window.
  std::atomic<bool> stop_watchdog{false};
  std::thread watchdog;
  if (state_->options.deadlock_ms > 0) {
    watchdog = std::thread([this, &stop_watchdog, &record_error] {
      const auto window = std::chrono::milliseconds(state_->options.deadlock_ms);
      const auto poll = std::clamp<std::chrono::milliseconds>(
          window / 8, std::chrono::milliseconds(1), std::chrono::milliseconds(50));
      std::vector<std::uint64_t> last_gens(static_cast<std::size_t>(size_), 0);
      bool candidate = false;
      auto candidate_since = std::chrono::steady_clock::now();
      while (!stop_watchdog.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(poll);
        std::vector<std::uint64_t> gens(static_cast<std::size_t>(size_));
        bool any_live = false;
        bool all_blocked = true;
        for (int r = 0; r < size_; ++r) {
          const auto& slot = state_->blocked[static_cast<std::size_t>(r)];
          gens[static_cast<std::size_t>(r)] =
              slot.generation.load(std::memory_order_acquire);
          if (slot.kind.load(std::memory_order_relaxed) == -1) continue;
          any_live = true;
          if (gens[static_cast<std::size_t>(r)] % 2 == 0) all_blocked = false;
        }
        if (!any_live || !all_blocked) {
          candidate = false;
          continue;
        }
        if (!candidate || gens != last_gens) {
          last_gens = gens;
          candidate = true;
          candidate_since = std::chrono::steady_clock::now();
          continue;
        }
        if (std::chrono::steady_clock::now() - candidate_since >= window) {
          std::ostringstream os;
          os << "threadcomm deadlock: every live rank has been blocked for "
             << state_->options.deadlock_ms << " ms with no progress\n";
          for (int r = 0; r < size_; ++r) {
            describe_slot(os, r, state_->blocked[static_cast<std::size_t>(r)]);
          }
          record_error(std::make_exception_ptr(DeadlockDetected(os.str())));
          return;
        }
      }
    });
  }

  // Retransmit pump of the reliable transport: periodically retires
  // acknowledged copies and resends those past their backoff deadline.
  // Same lifetime pattern as the watchdog; stopped after the rank
  // threads join so a late retransmission cannot race the drain below.
  std::atomic<bool> stop_pump{false};
  std::thread pump;
  if (state_->transport != nullptr) {
    state_->transport->flush();  // no stale in-flight state from a previous run
    pump = std::thread([this, &stop_pump] {
      const auto poll = std::clamp<std::chrono::milliseconds>(
          std::chrono::milliseconds(state_->options.reliable.rto_ms) / 4,
          std::chrono::milliseconds(1), std::chrono::milliseconds(5));
      while (!stop_pump.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(poll);
        state_->transport->pump_once();
      }
    });
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &rank_main, &record_error] {
      try {
        Comm comm(state_.get(), r);
        rank_main(comm);
      } catch (...) {
        record_error(std::current_exception());
      }
      // Finished ranks (clean or dead) are excluded from deadlock
      // detection and drop out of collective blocking semantics.
      state_->blocked[static_cast<std::size_t>(r)].kind.store(
          -1, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  stop_watchdog.store(true, std::memory_order_release);
  if (watchdog.joinable()) watchdog.join();
  stop_pump.store(true, std::memory_order_release);
  if (pump.joinable()) pump.join();

  // After an aborted run the mailboxes may hold messages whose receivers
  // died mid-protocol. Drain and report them so the next run() starts
  // from a clean world instead of inheriting stale envelopes. Copies the
  // transport layer manufactured — injected duplicates a dedup window
  // would have swallowed, and retransmissions — are tallied separately:
  // they are healing debris, not application leaks.
  residual_messages_ = 0;
  residual_duplicates_ = 0;
  if (std::exception_ptr error = first_error.take()) {
    std::ostringstream os;
    for (int r = 0; r < size_; ++r) {
      const auto residue = state_->boxes[static_cast<std::size_t>(r)]->drain();
      std::uint64_t leaked = 0;
      for (const Message& msg : residue) {
        if ((msg.flags & (kFlagInjectedDup | kFlagRetransmit)) != 0) {
          ++residual_duplicates_;
        } else {
          ++leaked;
        }
      }
      if (leaked == 0) continue;
      if (residual_messages_ > 0) os << ", ";
      os << leaked << " to rank " << r;
      residual_messages_ += leaked;
    }
    if (state_->transport != nullptr) state_->transport->flush();
    if (residual_messages_ > 0 || residual_duplicates_ > 0) {
      PICPRK_WARN("threadcomm: drained " << residual_messages_
                                         << " residual message(s) after aborted run ("
                                         << os.str() << "; " << residual_duplicates_
                                         << " transport duplicate(s) excluded)");
    }
    std::rethrow_exception(error);
  }
}

std::uint64_t World::bytes_sent() const {
  return state_->bytes_sent.load(std::memory_order_relaxed);
}

std::uint64_t World::messages_sent() const {
  return state_->messages_sent.load(std::memory_order_relaxed);
}

TransportStats World::transport_stats() const {
  return state_->transport != nullptr ? state_->transport->stats() : TransportStats{};
}

}  // namespace picprk::comm
