#include "comm/world.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "comm/comm.hpp"
#include "util/assert.hpp"

namespace picprk::comm {

WorldState::WorldState(int size_in) : size(size_in) {
  boxes.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) boxes.push_back(std::make_unique<Mailbox>());
}

void WorldState::signal_abort() {
  abort.store(true, std::memory_order_release);
  for (auto& box : boxes) box->notify_abort();
}

World::World(int size) : size_(size) {
  PICPRK_EXPECTS(size >= 1);
  state_ = std::make_shared<WorldState>(size);
}

void World::run(const std::function<void(Comm&)>& rank_main) {
  // A fresh abort flag per run; mailboxes must be empty from the last run
  // (a correct program consumes everything it is sent).
  state_->abort.store(false, std::memory_order_release);

  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &rank_main, &first_error, &error_mutex] {
      try {
        Comm comm(state_.get(), r);
        rank_main(comm);
      } catch (...) {
        {
          std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        state_->signal_abort();
      }
    });
  }
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

std::uint64_t World::bytes_sent() const {
  return state_->bytes_sent.load(std::memory_order_relaxed);
}

std::uint64_t World::messages_sent() const {
  return state_->messages_sent.load(std::memory_order_relaxed);
}

}  // namespace picprk::comm
