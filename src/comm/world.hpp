// World: owns the per-rank mailboxes and spawns one thread per rank.
// This is the process-launcher half of threadcomm; Comm (comm.hpp) is the
// communication API handed to each rank's main function.
//
// Robustness features (all off by default, enabled via WorldOptions):
//  * per-call deadlines on blocking recv/probe (CommTimeout instead of a
//    hang);
//  * a world-level deadlock detector that notices when every live rank
//    is blocked with no progress and aborts with a per-rank blocked-
//    location dump (DeadlockDetected);
//  * a fault-injection hook on every message send (src/ft implements it).
// Independent of options, run() verifies mailboxes are empty between
// invocations and drains + reports residual messages after an aborted
// run instead of leaking them into the next one.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/fault_hook.hpp"
#include "comm/mailbox.hpp"
#include "comm/reliable.hpp"

namespace picprk::comm {

class Comm;

/// Thrown (from World::run) when the deadlock detector fires. what()
/// carries the per-rank blocked-location dump.
class DeadlockDetected : public std::runtime_error {
 public:
  explicit DeadlockDetected(const std::string& report) : std::runtime_error(report) {}
};

/// Knobs of the resilience layer; defaults preserve legacy behaviour.
struct WorldOptions {
  /// Per-call deadline for blocking recv/probe in ms (0 = wait forever).
  int timeout_ms = 0;
  /// Deadlock-detection window in ms (0 = detector off): if every live
  /// rank stays blocked with no mailbox progress for this long, the
  /// world aborts with a DeadlockDetected carrying each rank's location.
  int deadlock_ms = 0;
  /// Message-level fault injector (not owned; must outlive the World).
  FaultHook* fault_hook = nullptr;
  /// Verify mailboxes are empty when run() starts (a correct program
  /// consumes everything it is sent; leftovers are a bug).
  bool check_clean_mailboxes = true;
  /// Reliable in-band delivery (seq/ack/retransmit); off by default.
  ReliabilityOptions reliable;
};

/// Shared runtime state; lives for the duration of World::run.
struct WorldState {
  WorldState(int size, const WorldOptions& options);

  int size;
  WorldOptions options;
  std::vector<std::unique_ptr<Mailbox>> boxes;
  /// Per-rank blocked-state registry read by the deadlock detector.
  std::vector<BlockedSlot> blocked;
  /// Abort flag set when any rank throws; blocking calls bail out.
  std::atomic<bool> abort{false};
  /// Allocator for communicator context ids (Comm::split).
  std::atomic<int> next_context{1};
  /// Total payload bytes pushed through mailboxes (diagnostics).
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> messages_sent{0};
  /// Reliable transport (null when options.reliable.enabled is false).
  std::unique_ptr<ReliableTransport> transport;
  /// Localized-recovery interrupt epoch; bumped by raise_interrupt().
  /// Blocking calls compare it against their caller's baseline and
  /// throw RecvInterrupted on mismatch.
  std::atomic<std::uint64_t> interrupt_epoch{0};

  void signal_abort();

  /// Bumps the interrupt epoch and wakes every blocked rank so they can
  /// unwind into their driver's localized-recovery handler.
  void raise_interrupt();

  /// WaitParams for a blocking call by `world_rank`. The caller (Comm)
  /// fills interrupt_baseline with its last acknowledged epoch.
  Mailbox::WaitParams wait_params(int world_rank) {
    Mailbox::WaitParams wp;
    wp.abort = &abort;
    wp.deadline = std::chrono::milliseconds(options.timeout_ms);
    wp.slot = &blocked[static_cast<std::size_t>(world_rank)];
    wp.transport = transport.get();
    wp.self = world_rank;
    wp.interrupt = &interrupt_epoch;
    return wp;
  }
};

/// Runs `rank_main(comm)` on `size` ranks, each on its own thread, with a
/// world communicator (context 0) spanning all ranks. Blocks until every
/// rank returns. If any rank throws, the world aborts (other ranks'
/// blocking calls throw WorldAborted) and the first exception is
/// rethrown to the caller.
class World {
 public:
  explicit World(int size);
  World(int size, const WorldOptions& options);

  void run(const std::function<void(Comm&)>& rank_main);

  int size() const { return size_; }
  const WorldOptions& options() const { return state_->options; }

  /// Diagnostics accumulated over all run() invocations of this World.
  std::uint64_t bytes_sent() const;
  std::uint64_t messages_sent() const;

  /// Residual messages drained after the most recent aborted run
  /// (0 after a clean run). Transport-manufactured copies (injected
  /// duplicates, retransmissions) are excluded: a dedup-window hit left
  /// in a mailbox is healing debris, not a leak.
  std::uint64_t residual_messages() const { return residual_messages_; }

  /// Transport copies excluded from the residual tally of the most
  /// recent aborted run.
  std::uint64_t residual_duplicates() const { return residual_duplicates_; }

  /// Reliable-transport tallies (all zero when reliability is off).
  TransportStats transport_stats() const;

  /// Shared runtime state, for the recovery coordinator (src/ft): the
  /// drain/flush/interrupt hooks of localized recovery live there.
  WorldState& state() { return *state_; }

 private:
  int size_;
  std::shared_ptr<WorldState> state_;
  std::uint64_t residual_messages_ = 0;
  std::uint64_t residual_duplicates_ = 0;
};

}  // namespace picprk::comm
