// World: owns the per-rank mailboxes and spawns one thread per rank.
// This is the process-launcher half of threadcomm; Comm (comm.hpp) is the
// communication API handed to each rank's main function.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "comm/mailbox.hpp"

namespace picprk::comm {

class Comm;

/// Shared runtime state; lives for the duration of World::run.
struct WorldState {
  explicit WorldState(int size);

  int size;
  std::vector<std::unique_ptr<Mailbox>> boxes;
  /// Abort flag set when any rank throws; blocking calls bail out.
  std::atomic<bool> abort{false};
  /// Allocator for communicator context ids (Comm::split).
  std::atomic<int> next_context{1};
  /// Total payload bytes pushed through mailboxes (diagnostics).
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> messages_sent{0};

  void signal_abort();
};

/// Runs `rank_main(comm)` on `size` ranks, each on its own thread, with a
/// world communicator (context 0) spanning all ranks. Blocks until every
/// rank returns. If any rank throws, the world aborts (other ranks'
/// blocking calls throw WorldAborted) and the first exception is
/// rethrown to the caller.
class World {
 public:
  explicit World(int size);

  void run(const std::function<void(Comm&)>& rank_main);

  int size() const { return size_; }

  /// Diagnostics accumulated over all run() invocations of this World.
  std::uint64_t bytes_sent() const;
  std::uint64_t messages_sent() const;

 private:
  int size_;
  std::shared_ptr<WorldState> state_;
};

}  // namespace picprk::comm
