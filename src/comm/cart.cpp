#include "comm/cart.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace picprk::comm {

BlockRange block_range(std::int64_t n, int parts, int index) {
  PICPRK_EXPECTS(parts >= 1);
  PICPRK_EXPECTS(index >= 0 && index < parts);
  const std::int64_t base = n / parts;
  const std::int64_t extra = n % parts;
  BlockRange r;
  if (index < extra) {
    r.lo = index * (base + 1);
    r.hi = r.lo + base + 1;
  } else {
    r.lo = extra * (base + 1) + (index - extra) * base;
    r.hi = r.lo + base;
  }
  return r;
}

int block_owner(std::int64_t n, int parts, std::int64_t v) {
  PICPRK_EXPECTS(v >= 0 && v < n);
  const std::int64_t base = n / parts;
  const std::int64_t extra = n % parts;
  const std::int64_t boundary = extra * (base + 1);
  if (v < boundary) return static_cast<int>(v / (base + 1));
  PICPRK_ASSERT_MSG(base > 0, "more parts than items beyond the remainder region");
  return static_cast<int>(extra + (v - boundary) / base);
}

std::pair<int, int> near_square_factors(int p) {
  PICPRK_EXPECTS(p >= 1);
  int py = static_cast<int>(std::sqrt(static_cast<double>(p)));
  while (p % py != 0) --py;
  return {p / py, py};
}

Cart2D::Cart2D(int p) {
  auto [px, py] = near_square_factors(p);
  px_ = px;
  py_ = py;
}

Cart2D::Cart2D(int px, int py) : px_(px), py_(py) {
  PICPRK_EXPECTS(px >= 1 && py >= 1);
}

int Cart2D::rank_of(int cx, int cy) const {
  PICPRK_EXPECTS(cx >= 0 && cx < px_);
  PICPRK_EXPECTS(cy >= 0 && cy < py_);
  return cy * px_ + cx;
}

std::pair<int, int> Cart2D::coords_of(int rank) const {
  PICPRK_EXPECTS(rank >= 0 && rank < size());
  return {rank % px_, rank / px_};
}

int Cart2D::neighbor(int rank, int dx, int dy) const {
  auto [cx, cy] = coords_of(rank);
  const int nx = ((cx + dx) % px_ + px_) % px_;
  const int ny = ((cy + dy) % py_ + py_) % py_;
  return rank_of(nx, ny);
}

}  // namespace picprk::comm
