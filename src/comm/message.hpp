// Message envelope types for threadcomm, the thread-backed message-passing
// runtime that stands in for MPI (see DESIGN.md §2). Messages are value
// copies: rank state is thread-private and all inter-rank data flows
// through these envelopes, exactly as in a distributed-memory MPI program.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace picprk::comm {

/// Wildcard source for recv/probe, like MPI_ANY_SOURCE.
inline constexpr int kAnySource = -1;
/// Wildcard tag for recv/probe, like MPI_ANY_TAG.
inline constexpr int kAnyTag = -0x7FFFFFFF;

/// Envelope metadata returned by probe and recv.
struct Status {
  int source = kAnySource;
  int tag = 0;
  std::size_t bytes = 0;
};

/// A delivered message. `context` scopes communicators (Comm::split);
/// user tags are non-negative, internal collective tags are negative.
struct Message {
  int context = 0;
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

}  // namespace picprk::comm
