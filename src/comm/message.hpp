// Message envelope types for threadcomm, the thread-backed message-passing
// runtime that stands in for MPI (see DESIGN.md §2). Messages are value
// copies: rank state is thread-private and all inter-rank data flows
// through these envelopes, exactly as in a distributed-memory MPI program.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace picprk::comm {

/// Wildcard source for recv/probe, like MPI_ANY_SOURCE.
inline constexpr int kAnySource = -1;
/// Wildcard tag for recv/probe, like MPI_ANY_TAG.
inline constexpr int kAnyTag = -0x7FFFFFFF;

// --------------------------------------------------------- tag registry
// Every application-level message tag lives here, in one table, so
// subsystems cannot collide (internal collective tags are negative and
// never conflict). tools/picprk-lint enforces the registry statically:
// a send/recv/probe call site anywhere in src/ must name its tag with a
// k...Tag constant defined in this file, and no other file may define
// one. To add a tag, add a line below with the next free value.

/// Mesh-column/row migration between adjacent ranks (par/diffusion).
inline constexpr int kMeshTag = 1000;
/// Buddy-checkpoint snapshot payloads (par/resilient).
inline constexpr int kCheckpointTag = 1001;
/// Halo/fold traffic by travel direction (field/dist_field): the
/// receiver of a westward message fills or folds its east side, etc.
inline constexpr int kWestwardTag = 2001;
inline constexpr int kEastwardTag = 2002;
inline constexpr int kSouthwardTag = 2003;  ///< rows, incl. x-halo entries
inline constexpr int kNorthwardTag = 2004;
/// Async engine (par/async): step-stamped particle payloads between VPs.
inline constexpr int kAsyncParticlesTag = 3001;
/// Async engine: the Mattern termination-detection token on the rank ring.
inline constexpr int kAsyncTokenTag = 3002;
/// Async engine: rank 0's step-complete announcement.
inline constexpr int kAsyncTermTag = 3003;
/// Async engine: packed VP state moving to a new owner at an LB point.
inline constexpr int kAsyncMigrateTag = 3004;

/// Envelope metadata returned by probe and recv.
struct Status {
  int source = kAnySource;
  int tag = 0;
  std::size_t bytes = 0;
};

// ------------------------------------------------------ envelope flags
// Transport-level markers carried on the wire. Application code never
// sets them; the reliable transport and the fault injector do.

/// Stream-sequenced message of the reliable transport (seq/ack valid).
inline constexpr std::uint8_t kFlagReliable = 0x1;
/// Retransmitted copy (control-plane resend; excluded from the
/// residual-leak tally of World::run).
inline constexpr std::uint8_t kFlagRetransmit = 0x2;
/// Extra copy manufactured by an injected Duplicate fault. Without the
/// reliable transport the copy reaches the mailbox; marking it lets the
/// residual drain distinguish a dedup-window hit from a genuine leak.
inline constexpr std::uint8_t kFlagInjectedDup = 0x4;

/// A delivered message. `context` scopes communicators (Comm::split);
/// user tags are non-negative, internal collective tags are negative.
/// `seq`/`ack` belong to the reliable transport: per-(source, dest)
/// stream sequence number and cumulative acknowledgement piggybacked on
/// the reverse direction; both 0 on unreliable worlds.
struct Message {
  int context = 0;
  int source = 0;
  int tag = 0;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint8_t flags = 0;
  std::vector<std::byte> payload;
};

}  // namespace picprk::comm
