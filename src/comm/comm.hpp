// Comm: the communication API of threadcomm, the thread-backed
// message-passing runtime standing in for MPI (DESIGN.md §2).
//
// Semantics follow MPI where it matters for the PRK:
//  * sends are buffered (never block, like MPI_Bsend with enough buffer);
//  * receives block and match (source|ANY, tag|ANY) in FIFO order per
//    (source, tag);
//  * collectives must be called by every rank of the communicator in the
//    same order;
//  * Comm::split creates disjoint sub-communicators (MPI_Comm_split).
//
// All payloads are trivially-copyable element types moved by value between
// rank-private address spaces — there is no shared-state shortcut, so the
// drivers built on top are structurally identical to MPI codes.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>
#if defined(PICPRK_EXPENSIVE_CHECKS)
#include <thread>
#endif

#include "comm/world.hpp"
#include "util/assert.hpp"

namespace picprk::comm {

namespace detail {

/// Internal collective opcodes; encoded into negative tags.
enum class Op : int {
  Barrier = 0,
  Bcast,
  Reduce,
  Allreduce,
  Gather,
  Allgather,
  Alltoall,
  Split,
  Scan,
  Alltoallv,
  Count_,
};

inline constexpr int kNumOps = static_cast<int>(Op::Count_);
inline constexpr int kSeqMod = 1 << 16;

/// Internal tags are negative and never collide with user tags (>= 0).
inline int internal_tag(Op op, int seq) {
  return -(static_cast<int>(op) * kSeqMod + (seq % kSeqMod) + 1);
}

}  // namespace detail

/// Recycles message byte buffers between the receive and send sides of a
/// collective: payload vectors taken off the mailbox are `release`d here
/// and `acquire` hands them back as send staging, so steady-state
/// communication (stable message sizes, symmetric traffic) performs no
/// heap allocation. `allocations()` counts the acquires that had to grow
/// or create a buffer — the benchmark/test hook for the zero-allocation
/// claim.
///
/// Thread-confined, deliberately: each rank thread owns its pool, so the
/// hot path carries no lock. The confinement is an enforced invariant,
/// not a comment — PICPRK_EXPENSIVE_CHECKS builds assert that every
/// acquire/release comes from the thread that first used the pool.
class BufferPool {
 public:
  /// Returns a buffer of exactly `size` bytes, reusing pooled capacity
  /// when possible. Best-fit (smallest sufficient buffer): first-fit
  /// would let tiny requests (8-byte count messages) consume the large
  /// payload buffers and force a fresh payload allocation every step.
  std::vector<std::byte> acquire(std::size_t size) {
    check_owner();
    std::size_t best = free_.size();
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].capacity() < size) continue;
      if (best == free_.size() || free_[i].capacity() < free_[best].capacity()) best = i;
    }
    std::vector<std::byte> buf;
    if (best < free_.size()) {
      buf = std::move(free_[best]);
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
    } else {
      ++allocations_;
      if (!free_.empty()) {  // grow the smallest pooled buffer rather than leak it
        std::size_t smallest = 0;
        for (std::size_t i = 1; i < free_.size(); ++i) {
          if (free_[i].capacity() < free_[smallest].capacity()) smallest = i;
        }
        buf = std::move(free_[smallest]);
        free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(smallest));
      }
      // Grow with 50% headroom so bounded step-to-step fluctuation in
      // message sizes settles after one growth instead of reallocating
      // every time a new maximum is seen.
      buf.reserve(size + size / 2);
    }
    buf.resize(size);
    return buf;
  }

  void release(std::vector<std::byte> buf) {
    check_owner();
    if (buf.capacity() > 0) free_.push_back(std::move(buf));
  }

  /// Number of acquires that required a fresh heap allocation.
  std::uint64_t allocations() const { return allocations_; }

  std::size_t pooled() const { return free_.size(); }

 private:
#if defined(PICPRK_EXPENSIVE_CHECKS)
  void check_owner() {
    if (owner_ == std::thread::id{}) owner_ = std::this_thread::get_id();
    PICPRK_ASSERT_MSG(owner_ == std::this_thread::get_id(),
                      "BufferPool used from a second thread — pools are "
                      "thread-confined (one per rank)");
  }
  std::thread::id owner_{};
#else
  void check_owner() {}
#endif

  std::vector<std::vector<std::byte>> free_;
  std::uint64_t allocations_ = 0;
};

class Comm {
 public:
  /// World communicator over all ranks (context 0). Created by World::run.
  Comm(WorldState* state, int world_rank);

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;
  Comm(Comm&&) = default;
  Comm& operator=(Comm&&) = default;

  /// Rank within this communicator.
  int rank() const { return rank_; }
  /// Number of ranks in this communicator.
  int size() const { return static_cast<int>(group_.size()); }

  // ---------------------------------------------------------------- P2P

  /// Buffered send of a span of trivially-copyable elements.
  template <typename T>
  void send(std::span<const T> data, int dst, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    PICPRK_EXPECTS(tag >= 0);
    send_bytes(as_bytes_copy(data), dst, tag);
  }

  template <typename T>
  void send(const std::vector<T>& data, int dst, int tag) {
    send(std::span<const T>(data), dst, tag);
  }

  /// Sends a single value.
  template <typename T>
  void send_value(const T& value, int dst, int tag) {
    send(std::span<const T>(&value, 1), dst, tag);
  }

  /// Zero-copy send: moves the caller's byte buffer straight into the
  /// destination mailbox instead of copying it (`as_bytes_copy`). The
  /// buffer must already hold the packed payload; receivers see an
  /// ordinary typed message.
  void send_buffer(std::vector<std::byte>&& bytes, int dst, int tag) {
    PICPRK_EXPECTS(tag >= 0);
    send_bytes(std::move(bytes), dst, tag);
  }

  /// Blocking receive; the message length determines the element count.
  template <typename T>
  std::vector<T> recv(int src, int tag, Status* status = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message msg = recv_bytes(src, tag);
    if (status) *status = Status{group_index(msg.source), msg.tag, msg.payload.size()};
    return from_bytes<T>(msg.payload);
  }

  /// Blocking receive into a caller-owned vector, reusing its capacity:
  /// the allocation-free counterpart of `recv` for per-step receives.
  /// Returns the number of elements received.
  template <typename T>
  std::size_t recv_into(std::vector<T>& out, int src, int tag, Status* status = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message msg = recv_bytes(src, tag);
    if (status) *status = Status{group_index(msg.source), msg.tag, msg.payload.size()};
    PICPRK_ASSERT_MSG(msg.payload.size() % sizeof(T) == 0,
                      "payload length not a multiple of element size");
    const std::size_t count = msg.payload.size() / sizeof(T);
    out.resize(count);
    if (count > 0) std::memcpy(out.data(), msg.payload.data(), msg.payload.size());
    return count;
  }

  /// Blocking receive of exactly one value.
  template <typename T>
  T recv_value(int src, int tag, Status* status = nullptr) {
    auto v = recv<T>(src, tag, status);
    PICPRK_ASSERT_MSG(v.size() == 1, "recv_value expected exactly one element");
    return v.front();
  }

  /// Buffered-send + blocking-receive pair (cannot deadlock because sends
  /// are buffered).
  template <typename T>
  std::vector<T> sendrecv(std::span<const T> out, int dst, int src, int tag) {
    send(out, dst, tag);
    return recv<T>(src, tag);
  }

  /// Blocking probe: waits for a matching envelope without consuming it.
  Status probe(int src, int tag);

  /// Non-blocking probe.
  std::optional<Status> iprobe(int src, int tag);

  /// Nonblocking receive: removes and returns the earliest matching
  /// payload if one is queued right now, else nullopt — the try-drain
  /// progress primitive of the async engine (par/async). Matching the
  /// blocking path, a deliverable message wins over a pending abort or
  /// recovery interrupt: those are only surfaced (as WorldAborted /
  /// RecvInterrupted) when no message matches.
  std::optional<std::vector<std::byte>> try_recv_buffer(int src, int tag,
                                                        Status* status = nullptr);

  /// Typed nonblocking receive; the message length determines the count.
  template <typename T>
  std::optional<std::vector<T>> try_recv(int src, int tag, Status* status = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = try_recv_buffer(src, tag, status);
    if (!bytes) return std::nullopt;
    return from_bytes<T>(*bytes);
  }

  /// Nonblocking receive of exactly one value.
  template <typename T>
  std::optional<T> try_recv_value(int src, int tag, Status* status = nullptr) {
    auto v = try_recv<T>(src, tag, status);
    if (!v) return std::nullopt;
    PICPRK_ASSERT_MSG(v->size() == 1, "try_recv_value expected exactly one element");
    return v->front();
  }

  /// True while the reliable transport still has retransmit budget for
  /// traffic addressed to this rank (always false on unreliable worlds).
  /// A try-drain loop polls this to defer its progress timeout exactly
  /// like a blocking recv defers its deadline.
  bool transport_retry_pending() const;

  // --------------------------------------------------------- collectives

  /// Dissemination barrier, O(log P) rounds.
  void barrier();

  /// Binomial-tree broadcast of a whole vector (count travels with data).
  template <typename T>
  void bcast(std::vector<T>& data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int tag = next_tag(detail::Op::Bcast);
    const int vrank = (rank_ - root + size()) % size();
    int mask = 1;
    while (mask < size()) {
      if (vrank & mask) {
        Message msg = recv_internal((vrank - mask + root) % size(), tag);
        data = from_bytes<T>(msg.payload);
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vrank + mask < size()) {
        send_internal(as_bytes_copy(std::span<const T>(data)),
                      (vrank + mask + root) % size(), tag);
      }
      mask >>= 1;
    }
  }

  /// Element-wise binomial-tree reduction to `root` with a commutative
  /// combiner `op(T,T) -> T`. Non-root ranks return an empty vector.
  template <typename T, typename BinaryOp>
  std::vector<T> reduce(std::span<const T> data, BinaryOp op, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int tag = next_tag(detail::Op::Reduce);
    std::vector<T> acc(data.begin(), data.end());
    const int vrank = (rank_ - root + size()) % size();
    int mask = 1;
    while (mask < size()) {
      if ((vrank & mask) == 0) {
        const int vsrc = vrank | mask;
        if (vsrc < size()) {
          Message msg = recv_internal((vsrc + root) % size(), tag);
          auto partial = from_bytes<T>(msg.payload);
          PICPRK_ASSERT_MSG(partial.size() == acc.size(),
                            "reduce: mismatched vector lengths across ranks");
          for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] = op(acc[i], partial[i]);
        }
      } else {
        send_internal(as_bytes_copy(std::span<const T>(acc)),
                      ((vrank - mask) + root) % size(), tag);
        break;
      }
      mask <<= 1;
    }
    if (rank_ != root) acc.clear();
    return acc;
  }

  /// Reduce-to-0 followed by broadcast; every rank gets the result.
  template <typename T, typename BinaryOp>
  std::vector<T> allreduce(std::span<const T> data, BinaryOp op) {
    auto result = reduce(data, op, 0);
    next_tag(detail::Op::Allreduce);  // keep sequence aligned across ranks
    bcast(result, 0);
    return result;
  }

  template <typename T, typename BinaryOp>
  T allreduce_value(const T& value, BinaryOp op) {
    auto v = allreduce(std::span<const T>(&value, 1), op);
    return v.front();
  }

  /// Gather with per-rank variable lengths. Root receives one vector per
  /// rank (in rank order); non-root ranks return an empty outer vector.
  template <typename T>
  std::vector<std::vector<T>> gather(std::span<const T> data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int tag = next_tag(detail::Op::Gather);
    std::vector<std::vector<T>> result;
    if (rank_ == root) {
      result.resize(static_cast<std::size_t>(size()));
      result[static_cast<std::size_t>(root)].assign(data.begin(), data.end());
      for (int r = 0; r < size(); ++r) {
        if (r == root) continue;
        Message msg = recv_internal(r, tag);
        result[static_cast<std::size_t>(r)] = from_bytes<T>(msg.payload);
      }
    } else {
      send_internal(as_bytes_copy(data), root, tag);
    }
    return result;
  }

  /// Allgather with variable lengths: every rank gets every rank's vector.
  template <typename T>
  std::vector<std::vector<T>> allgather(std::span<const T> data) {
    auto gathered = gather(data, 0);
    next_tag(detail::Op::Allgather);  // sequence alignment
    // Flatten + lengths, then broadcast both.
    std::vector<std::uint64_t> lengths;
    std::vector<T> flat;
    if (rank_ == 0) {
      for (auto& v : gathered) {
        lengths.push_back(v.size());
        flat.insert(flat.end(), v.begin(), v.end());
      }
    }
    bcast(lengths, 0);
    bcast(flat, 0);
    std::vector<std::vector<T>> result(static_cast<std::size_t>(size()));
    std::size_t offset = 0;
    for (std::size_t r = 0; r < result.size(); ++r) {
      result[r].assign(flat.begin() + static_cast<std::ptrdiff_t>(offset),
                       flat.begin() + static_cast<std::ptrdiff_t>(offset + lengths[r]));
      offset += lengths[r];
    }
    return result;
  }

  /// Convenience: allgather of a single value per rank.
  template <typename T>
  std::vector<T> allgather_value(const T& value) {
    auto nested = allgather(std::span<const T>(&value, 1));
    std::vector<T> flat;
    flat.reserve(nested.size());
    for (auto& v : nested) {
      PICPRK_ASSERT(v.size() == 1);
      flat.push_back(v.front());
    }
    return flat;
  }

  /// Full variable-size exchange (MPI_Alltoallv): `outgoing[r]` goes to
  /// rank r; returns `incoming[r]` received from rank r. Empty vectors
  /// are exchanged too, so matching is deterministic.
  template <typename T>
  std::vector<std::vector<T>> alltoall(const std::vector<std::vector<T>>& outgoing) {
    static_assert(std::is_trivially_copyable_v<T>);
    PICPRK_EXPECTS(static_cast<int>(outgoing.size()) == size());
    const int tag = next_tag(detail::Op::Alltoall);
    // Pairwise-shifted send order spreads load; buffered sends cannot block.
    for (int shift = 0; shift < size(); ++shift) {
      const int dst = (rank_ + shift) % size();
      send_internal(as_bytes_copy(std::span<const T>(outgoing[static_cast<std::size_t>(dst)])),
                    dst, tag);
    }
    std::vector<std::vector<T>> incoming(static_cast<std::size_t>(size()));
    for (int i = 0; i < size(); ++i) {
      Message msg = recv_internal(kAnySource, tag);
      auto& slot = incoming[static_cast<std::size_t>(group_index(msg.source))];
      PICPRK_ASSERT_MSG(slot.empty() || msg.payload.empty(),
                        "alltoall: duplicate message from a source");
      slot = from_bytes<T>(msg.payload);
    }
    return incoming;
  }

  /// Flat-buffer variable alltoall (MPI_Alltoallv; the hot-path
  /// counterpart of `alltoall`'s vector-of-vectors): `send_data` holds
  /// the payload packed in destination-rank order, `send_counts[r]`
  /// elements for rank r. On return `recv_data` holds the received
  /// elements grouped by source rank in ascending order (this rank's own
  /// `send_counts[rank()]` slice is copied locally into position
  /// `rank()`), and `recv_counts[r]` is the element count from rank r.
  ///
  /// Wire protocol: one fixed 8-byte count message per peer, then one
  /// packed payload message per peer with a non-zero count — empty peers
  /// cost a count envelope but no payload, and payloads are moved (not
  /// copied) into the mailbox. Buffers are acquired from and released to
  /// `pool` when given, so steady-state calls with stable message sizes
  /// perform no heap allocation on this thread.
  template <typename T>
  void alltoallv(std::span<const T> send_data, std::span<const std::uint64_t> send_counts,
                 std::vector<T>& recv_data, std::vector<std::uint64_t>& recv_counts,
                 BufferPool* pool = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int p = size();
    PICPRK_EXPECTS(static_cast<int>(send_counts.size()) == p);
    std::uint64_t total_out = 0;
    for (const std::uint64_t c : send_counts) total_out += c;
    PICPRK_EXPECTS(send_data.size() == total_out);
    const int tag = next_tag(detail::Op::Alltoallv);

    // Round 1: per-peer element counts. Pairwise-shifted send order
    // spreads mailbox pressure; buffered sends cannot block.
    for (int shift = 1; shift < p; ++shift) {
      const int dst = (rank_ + shift) % p;
      std::vector<std::byte> buf = pool ? pool->acquire(sizeof(std::uint64_t))
                                        : std::vector<std::byte>(sizeof(std::uint64_t));
      const std::uint64_t count = send_counts[static_cast<std::size_t>(dst)];
      std::memcpy(buf.data(), &count, sizeof count);
      send_bytes(std::move(buf), dst, tag);
    }
    recv_counts.assign(static_cast<std::size_t>(p), 0);
    recv_counts[static_cast<std::size_t>(rank_)] =
        send_counts[static_cast<std::size_t>(rank_)];
    for (int shift = 1; shift < p; ++shift) {
      const int src = (rank_ - shift + p) % p;
      Message msg = recv_internal(src, tag);
      PICPRK_ASSERT_MSG(msg.payload.size() == sizeof(std::uint64_t),
                        "alltoallv: malformed count message");
      std::memcpy(&recv_counts[static_cast<std::size_t>(src)], msg.payload.data(),
                  sizeof(std::uint64_t));
      if (pool) pool->release(std::move(msg.payload));
    }

    // Round 2: payloads, skipping empty peers. Per-(source, tag) FIFO
    // matching guarantees each peer's count message was consumed before
    // its payload even though both share the tag.
    for (int shift = 1; shift < p; ++shift) {
      const int dst = (rank_ + shift) % p;
      const std::uint64_t count = send_counts[static_cast<std::size_t>(dst)];
      if (count == 0) continue;
      std::size_t offset = 0;  // O(P) per peer beats an O(P) scratch allocation
      for (int r = 0; r < dst; ++r) offset += send_counts[static_cast<std::size_t>(r)];
      const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
      std::vector<std::byte> buf =
          pool ? pool->acquire(bytes) : std::vector<std::byte>(bytes);
      std::memcpy(buf.data(), send_data.data() + offset, bytes);
      send_bytes(std::move(buf), dst, tag);
    }

    // Deterministic reassembly: sources in ascending rank order, so the
    // result layout is independent of message arrival order.
    std::uint64_t total_in = 0;
    for (const std::uint64_t c : recv_counts) total_in += c;
    recv_data.resize(static_cast<std::size_t>(total_in));
    std::size_t base = 0;
    for (int src = 0; src < p; ++src) {
      const std::uint64_t count = recv_counts[static_cast<std::size_t>(src)];
      if (count == 0) continue;
      const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
      if (src == rank_) {
        std::size_t offset = 0;
        for (int r = 0; r < rank_; ++r) offset += send_counts[static_cast<std::size_t>(r)];
        std::memcpy(recv_data.data() + base, send_data.data() + offset, bytes);
      } else {
        Message msg = recv_internal(src, tag);
        PICPRK_ASSERT_MSG(msg.payload.size() == bytes,
                          "alltoallv: payload size disagrees with its announced count");
        std::memcpy(recv_data.data() + base, msg.payload.data(), bytes);
        if (pool) pool->release(std::move(msg.payload));
      }
      base += static_cast<std::size_t>(count);
    }
  }

  /// Inclusive prefix reduction (MPI_Scan): rank r receives
  /// op(data_0, ..., data_r), element-wise. Hillis–Steele, O(log P)
  /// rounds; correct for non-commutative ops.
  template <typename T, typename BinaryOp>
  std::vector<T> scan(std::span<const T> data, BinaryOp op) {
    std::vector<T> inclusive;
    scan_impl(data, op, inclusive, static_cast<std::vector<T>*>(nullptr));
    return inclusive;
  }

  /// Exclusive prefix reduction (MPI_Exscan): rank r receives
  /// op(data_0, ..., data_{r-1}); rank 0 receives nullopt.
  template <typename T, typename BinaryOp>
  std::optional<std::vector<T>> exscan(std::span<const T> data, BinaryOp op) {
    std::vector<T> inclusive;
    std::vector<T> exclusive;
    const bool have = scan_impl(data, op, inclusive, &exclusive);
    if (!have) return std::nullopt;
    return exclusive;
  }

  /// Convenience single-value scans.
  template <typename T, typename BinaryOp>
  T scan_value(const T& value, BinaryOp op) {
    return scan(std::span<const T>(&value, 1), op).front();
  }

  template <typename T, typename BinaryOp>
  std::optional<T> exscan_value(const T& value, BinaryOp op) {
    auto v = exscan(std::span<const T>(&value, 1), op);
    if (!v) return std::nullopt;
    return v->front();
  }

  /// Splits this communicator into sub-communicators by `color`; ranks
  /// with the same color form a group ordered by (key, old rank).
  Comm split(int color, int key);

  // -------------------------------------------------------- diagnostics

  /// Global rank in the world (for logging).
  int world_rank() const { return world_rank_; }
  int context() const { return context_; }

  /// The world abort flag — lets long-running non-comm code (e.g. an
  /// injected slow-rank stall) observe a shutdown and bail out.
  const std::atomic<bool>& abort_flag() const { return state_->abort; }

  // ------------------------------------------------- localized recovery

  /// Adopts the current interrupt epoch: blocking calls stop throwing
  /// RecvInterrupted for the recovery event that has just been handled.
  /// Called by the recovery coordinator after the rendezvous.
  void acknowledge_interrupt() {
    interrupt_seen_ = state_->interrupt_epoch.load(std::memory_order_acquire);
  }

  /// Restarts the internal collective tag streams from zero. Only legal
  /// when all in-flight traffic has been drained (the coordinator's
  /// serial section does exactly that); afterwards every rank resumes
  /// with aligned sequence numbers regardless of how far its collective
  /// schedule had advanced before the failure.
  void reset_collective_sequences() { seq_.fill(0); }

 private:
  Comm(WorldState* state, int world_rank, int context, std::vector<int> group);

  template <typename T>
  static std::vector<std::byte> as_bytes_copy(std::span<const T> data) {
    std::vector<std::byte> bytes(data.size_bytes());
    if (!bytes.empty()) std::memcpy(bytes.data(), data.data(), bytes.size());
    return bytes;
  }

  template <typename T>
  static std::vector<T> from_bytes(const std::vector<std::byte>& bytes) {
    PICPRK_ASSERT_MSG(bytes.size() % sizeof(T) == 0,
                      "payload length not a multiple of element size");
    std::vector<T> out(bytes.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// Hillis–Steele prefix reduction. Fills `inclusive`; when `exclusive`
  /// is non-null also accumulates the exclusive prefix there and returns
  /// whether this rank has one (false only on rank 0).
  template <typename T, typename BinaryOp>
  bool scan_impl(std::span<const T> data, BinaryOp op, std::vector<T>& inclusive,
                 std::vector<T>* exclusive) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int tag = next_tag(detail::Op::Scan);
    inclusive.assign(data.begin(), data.end());
    bool have_exclusive = false;
    for (int k = 1; k < size(); k <<= 1) {
      if (rank_ + k < size()) {
        send_internal(as_bytes_copy(std::span<const T>(inclusive)), rank_ + k, tag);
      }
      if (rank_ - k >= 0) {
        Message msg = recv_internal(rank_ - k, tag);
        auto partial = from_bytes<T>(msg.payload);
        PICPRK_ASSERT_MSG(partial.size() == inclusive.size(),
                          "scan: mismatched vector lengths across ranks");
        for (std::size_t i = 0; i < inclusive.size(); ++i) {
          inclusive[i] = op(partial[i], inclusive[i]);
        }
        if (exclusive) {
          if (!have_exclusive) {
            *exclusive = partial;
            have_exclusive = true;
          } else {
            for (std::size_t i = 0; i < exclusive->size(); ++i) {
              (*exclusive)[i] = op(partial[i], (*exclusive)[i]);
            }
          }
        }
      }
    }
    return have_exclusive;
  }

  /// Index of a world rank within this communicator's group.
  int group_index(int wrank) const;

  int next_tag(detail::Op op) {
    auto& seq = seq_[static_cast<std::size_t>(op)];
    return detail::internal_tag(op, seq++);
  }

  /// dst/src below are ranks *within this communicator*.
  void send_bytes(std::vector<std::byte> bytes, int dst, int tag);
  void send_internal(std::vector<std::byte> bytes, int dst, int tag);
  Message recv_bytes(int src, int tag);
  Message recv_internal(int src, int tag);

  /// World wait params with this Comm's interrupt baseline filled in.
  Mailbox::WaitParams wait_params() const;

  WorldState* state_;
  int world_rank_;
  int context_;
  int rank_;                 // my index within group_
  std::vector<int> group_;   // world ranks of this communicator's members
  std::array<int, detail::kNumOps> seq_{};
  /// Last interrupt epoch this rank acknowledged (see mailbox.hpp).
  std::uint64_t interrupt_seen_ = 0;
};

}  // namespace picprk::comm
